package sttsv

import (
	"repro/internal/machine"
	"repro/internal/netwire"
)

// This file re-exports the packet-backend seam: the machine.Backend API a
// RunConfig selects its raw packet layer through, the in-memory simulator
// that is the default, and the real-socket loopback from internal/netwire.
// Every run shape — ParallelCompute, sessions, the serving pool — takes
// the backend through RunConfig (ParallelOptions.Machine), so switching a
// program from simulated mailboxes to real kernel sockets is a one-line
// configuration change:
//
//	opts.Machine.BackendFactory = sttsv.TCPLoopback
//
// See ExampleReplay and the cmd tools' shared -backend flag
// (internal/backendflag) for complete flows.

// Backend supplies the raw packet layer a machine runs on: one
// BackendWire per local rank. Nil in RunConfig selects the in-memory
// SimBackend.
type Backend = machine.Backend

// BackendWire is one rank's raw packet endpoint as a Backend provides
// it — pure packet movement; the machine layers metering, epoch fencing
// and abort semantics on top.
type BackendWire = machine.BackendWire

// SimBackend is the default in-memory mailbox backend (the simulator the
// paper's meters were built on).
type SimBackend = machine.SimBackend

// NewSimBackend returns an in-memory mailbox backend; inboxCap caps each
// rank's mailbox (<= 0 unbounded).
func NewSimBackend(inboxCap int) *SimBackend { return machine.NewSimBackend(inboxCap) }

// LoopbackBackend runs all P ranks of one process over real sockets —
// every packet framed, written to the kernel and decoded back — while the
// machine and everything above it run unchanged. Results and logical
// meters match the SimBackend bit for bit.
type LoopbackBackend = netwire.Loopback

// NewLoopbackBackend returns a single-process socket backend; network is
// "tcp" or "unix". Assign it to RunConfig.Backend (caller closes it), or
// use TCPLoopback/UnixLoopback as a RunConfig.BackendFactory so each
// machine incarnation builds and owns a fresh one.
func NewLoopbackBackend(network string) (*LoopbackBackend, error) {
	return netwire.NewLoopback(network)
}

// TCPLoopback is a RunConfig.BackendFactory building a fresh TCP loopback
// backend per machine incarnation.
func TCPLoopback() (Backend, error) { return netwire.NewLoopback("tcp") }

// UnixLoopback is a RunConfig.BackendFactory building a fresh unix-socket
// loopback backend per machine incarnation.
func UnixLoopback() (Backend, error) { return netwire.NewLoopback("unix") }
