package sttsv

import (
	"io"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// This file re-exports the observability layer (internal/obs): structured
// phase-scoped trace events, the α-β-γ replay engine, and the trace /
// metrics exporters. A typical flow:
//
//	var rec sttsv.TraceRecorder
//	opts.Machine = sttsv.RunConfig{Observer: rec.Observer()}
//	res, _ := sttsv.ParallelCompute(a, x, opts)
//	tl, _ := sttsv.Replay(rec.Trace(), sttsv.DefaultTimeModel())
//
// See ExampleReplay for a complete run.

// Event is one structured trace event of a simulated run: a logical send
// or receive, a barrier passing, a phase marker, or a local-compute
// completion (plus raw wire datagrams when RunConfig.WireEvents is set).
type Event = machine.Event

// EventKind discriminates trace events.
type EventKind = machine.EventKind

// Event kinds (see machine.EventKind).
const (
	EventSend         = machine.EventSend
	EventRecv         = machine.EventRecv
	EventBarrier      = machine.EventBarrier
	EventPhaseBegin   = machine.EventPhaseBegin
	EventPhaseEnd     = machine.EventPhaseEnd
	EventLocalCompute = machine.EventLocalCompute
)

// RunConfig configures a simulated machine run: stall watchdog, trace
// observer, wire-event emission, transport factory and mailbox capacity.
// Assign it to ParallelOptions.Machine.
type RunConfig = machine.RunConfig

// MachineReport carries a run's per-rank logical and wire communication
// meters.
type MachineReport = machine.Report

// TraceRecorder is a thread-safe collector of trace events; pass
// Observer() as RunConfig.Observer, then Trace() for analysis.
type TraceRecorder = obs.Recorder

// Trace is an ordered set of run events with phase/rank aggregation
// helpers and the trace-conformance check against a MachineReport.
type Trace = obs.Trace

// NewTrace canonicalizes a raw event slice into a Trace.
func NewTrace(events []Event) *Trace { return obs.NewTrace(events) }

// PhaseTotals aggregates one phase label's trace traffic (per-rank words,
// messages, ternary multiplications, and barrier step count).
type PhaseTotals = obs.PhaseTotals

// PhaseMeter is one labeled phase's per-rank meters in a ParallelResult:
// the run's traffic, compute and step count split by algorithm phase
// ("gather", "local", "reduce-scatter", …).
type PhaseMeter = parallel.PhaseMeter

// TimeModel is the α-β-γ cost model used to replay a trace on a
// simulated clock: per-message latency, per-word inverse bandwidth, and
// per-ternary-multiplication compute time (§3.1).
type TimeModel = obs.TimeModel

// DefaultTimeModel returns a plausible commodity-cluster operating point
// (2 µs latency, ≈6.4 GB/s bandwidth, 4·10⁹ ternary mults/s).
func DefaultTimeModel() TimeModel { return obs.DefaultTimeModel() }

// Timeline is a replayed trace: per-rank critical-path times, activity
// attribution (compute / send / recv-wait / barrier-wait / overlap),
// Gantt spans and per-phase step counts.
type Timeline = obs.Timeline

// Span is one interval of a rank's replayed timeline.
type Span = obs.Span

// Replay executes a complete logical trace on a simulated clock under
// the given α-β-γ model. For a fault-free point-to-point Algorithm 5 run
// each exchange phase replays to exactly the schedule's
// Σ(α + maxWords·β) makespan over its q³/2+3q²/2−1 steps.
func Replay(t *Trace, m TimeModel) (*Timeline, error) { return obs.Replay(t, m) }

// WriteChromeTrace writes a replayed timeline in the Chrome trace_event
// JSON format, loadable in chrome://tracing and Perfetto.
func WriteChromeTrace(w io.Writer, tl *Timeline) error { return obs.WriteChromeTrace(w, tl) }

// WriteTraceJSONL writes a trace as one JSON object per line; read back
// with ReadTraceJSONL (also the cmd/sttsvtrace interchange format).
func WriteTraceJSONL(w io.Writer, t *Trace) error { return obs.WriteTraceJSONL(w, t) }

// ReadTraceJSONL parses a JSONL trace written by WriteTraceJSONL.
func ReadTraceJSONL(r io.Reader) (*Trace, error) { return obs.ReadTraceJSONL(r) }

// WriteMetricsJSONL writes flat per-phase and per-rank metric records
// derived from a trace (and, when tl is non-nil, the replayed time
// attribution).
func WriteMetricsJSONL(w io.Writer, t *Trace, tl *Timeline) error {
	return obs.WriteMetricsJSONL(w, t, tl)
}

// WriteGantt renders an ASCII Gantt chart of a replayed timeline.
func WriteGantt(w io.Writer, tl *Timeline, width int) error { return obs.WriteGantt(w, tl, width) }
