// Ablation benchmarks for the design choices DESIGN.md calls out: the
// Steiner assignment vs an unstructured one, the fused vs columnwise
// MTTKRP kernel, message amortization in the multi-vector parallel run,
// and the d-dimensional generalization.
package sttsv

import (
	"fmt"
	"testing"

	"repro/internal/memsim"
	"repro/internal/partition"
)

// BenchmarkAblationSteinerVsRoundRobin quantifies why the partition uses
// Steiner systems: with identical work balance, the round-robin assignment
// inflates every processor's row-block footprint — and therefore its
// vector communication — well beyond the (q+1) minimum the Steiner blocks
// achieve.
func BenchmarkAblationSteinerVsRoundRobin(b *testing.B) {
	for _, q := range []int{3, 4} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			var steiner, rr partition.FootprintStats
			var part *Partition
			for i := 0; i < b.N; i++ {
				p, err := NewPartition(q)
				if err != nil {
					b.Fatal(err)
				}
				part = p
				steiner = part.SteinerFootprints()
				rr = partition.AssignmentFootprints(partition.RoundRobinAssignment(part.M, part.P))
			}
			blockEdge := q * (q + 1)
			b.ReportMetric(float64(steiner.Max), "steiner-footprint")
			b.ReportMetric(float64(rr.Max), "roundrobin-footprint")
			b.ReportMetric(
				float64(partition.VectorWordsForFootprint(rr.Max, blockEdge, part.M, part.P))/
					float64(partition.VectorWordsForFootprint(steiner.Max, blockEdge, part.M, part.P)),
				"comm-inflation")
		})
	}
}

// BenchmarkAblationMTTKRPFusion compares the fused one-pass MTTKRP kernel
// against r independent STTSV passes: identical operation counts,
// different tensor traffic.
func BenchmarkAblationMTTKRPFusion(b *testing.B) {
	n, r := 96, 8
	a := RandomTensor(n, 20)
	cols := make([][]float64, r)
	for l := range cols {
		c := make([]float64, n)
		for i := range c {
			c[i] = float64((l+i)%13) - 6
		}
		cols[l] = c
	}
	x := FactorsFromColumns(cols)
	b.Run("columnwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MTTKRPColumnwise(a, x, nil)
		}
	})
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MTTKRP(a, x, nil)
		}
	})
}

// BenchmarkAblationMultiVectorAmortization shows the parallel MTTKRP's
// latency amortization: r× the bandwidth of one STTSV at an unchanged
// message count.
func BenchmarkAblationMultiVectorAmortization(b *testing.B) {
	part, err := NewPartition(2)
	if err != nil {
		b.Fatal(err)
	}
	blockEdge := 6
	n := part.M * blockEdge
	r := 4
	x := make([]float64, n)
	var words, msgs float64
	for i := 0; i < b.N; i++ {
		single, err := ParallelCompute(nil, x, ParallelOptions{Part: part, B: blockEdge, Wiring: WiringP2P})
		if err != nil {
			b.Fatal(err)
		}
		_, multi, err := ParallelMTTKRP(nil, nil, r, ParallelOptions{Part: part, B: blockEdge, Wiring: WiringP2P})
		if err != nil {
			b.Fatal(err)
		}
		words = float64(multi.Report.MaxSentWords()) / float64(single.Report.MaxSentWords())
		msgs = float64(multi.Report.MaxSentMsgs()) / float64(single.Report.MaxSentMsgs())
	}
	b.ReportMetric(words, "words-ratio")
	b.ReportMetric(msgs, "msgs-ratio")
}

// BenchmarkDTensorApply measures the d-dimensional symmetric STTSV
// generalization across orders.
func BenchmarkDTensorApply(b *testing.B) {
	for _, c := range []struct{ n, d int }{{64, 3}, {24, 4}, {14, 5}} {
		a := RandomDTensor(c.n, c.d, 30)
		x := make([]float64, c.n)
		for i := range x {
			x[i] = 1
		}
		b.Run(fmt.Sprintf("n=%d/d=%d", c.n, c.d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DCompute(a, x)
			}
		})
	}
}

// BenchmarkAblationSequentialIO replays the kernels' address traces
// through an LRU cache: the tetrahedral-blocked schedule approaches
// compulsory traffic where the flat i-j-k loop thrashes.
func BenchmarkAblationSequentialIO(b *testing.B) {
	const n, blockEdge, cacheWords = 48, 8, 64
	var unblocked, blocked int64
	for i := 0; i < b.N; i++ {
		cu := memsim.NewCache(cacheWords, 1)
		unblocked = memsim.TracePacked(n, cu)
		cb := memsim.NewCache(cacheWords, 1)
		blocked = memsim.TraceBlocked(n, blockEdge, cb)
	}
	b.ReportMetric(float64(unblocked), "unblocked-words")
	b.ReportMetric(float64(blocked), "blocked-words")
	b.ReportMetric(float64(memsim.CompulsoryWords(n)), "compulsory-words")
}

// BenchmarkAblationSequenceApproach measures the §8 two-step alternative:
// Ω(n) words moved regardless of P, and no symmetry reuse.
func BenchmarkAblationSequenceApproach(b *testing.B) {
	n, p := 60, 10
	a := RandomTensor(n, 40)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	var res *ParallelResult
	for i := 0; i < b.N; i++ {
		r, err := SequenceBaselineCompute(a, x, p)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(res.Report.MaxSentWords()), "words/proc")
}
