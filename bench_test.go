// Benchmark harness: one benchmark per table, figure and analytic claim of
// the paper (the per-experiment index lives in DESIGN.md; measured-vs-paper
// numbers in EXPERIMENTS.md). Custom metrics attach the quantities the
// paper reports — words per processor, bound ratios, schedule steps — to
// the benchmark output, so `go test -bench=. -benchmem` regenerates every
// experiment row.
package sttsv

import (
	"fmt"
	"testing"
)

// BenchmarkTable1Partition regenerates Table 1: the processor sets
// (R_p, N_p, D_p) of the tetrahedral block partition for m=10, P=30
// (spherical Steiner system with q=3).
func BenchmarkTable1Partition(b *testing.B) {
	var part *Partition
	for i := 0; i < b.N; i++ {
		p, err := NewPartition(3)
		if err != nil {
			b.Fatal(err)
		}
		part = p
	}
	b.ReportMetric(float64(part.P), "processors")
	b.ReportMetric(float64(len(part.Rp[0])), "|Rp|")
	b.ReportMetric(float64(len(part.Np[0])), "|Np|")
}

// BenchmarkTable2RowBlockSets regenerates Table 2: the row-block sets Q_i,
// each of size q(q+1)=12 for q=3.
func BenchmarkTable2RowBlockSets(b *testing.B) {
	part, err := NewPartition(3)
	if err != nil {
		b.Fatal(err)
	}
	size := 0
	for i := 0; i < b.N; i++ {
		size = 0
		for _, qi := range part.Qi {
			size += len(qi)
		}
	}
	b.ReportMetric(float64(size/part.M), "|Qi|")
}

// BenchmarkTable3SQS8Partition regenerates Table 3 (Appendix A): the
// partition from the Steiner (8,4,3) system with m=8, P=14.
func BenchmarkTable3SQS8Partition(b *testing.B) {
	var part *Partition
	for i := 0; i < b.N; i++ {
		p, err := NewPartitionFromSteiner(SQS8())
		if err != nil {
			b.Fatal(err)
		}
		part = p
	}
	b.ReportMetric(float64(part.P), "processors")
	b.ReportMetric(float64(len(part.Np[0])), "|Np|")
}

// BenchmarkFigure1Schedule regenerates Figure 1: the 12-step point-to-point
// communication schedule of the P=14 SQS(8) example.
func BenchmarkFigure1Schedule(b *testing.B) {
	part, err := NewPartitionFromSteiner(SQS8())
	if err != nil {
		b.Fatal(err)
	}
	var steps int
	for i := 0; i < b.N; i++ {
		sch, err := BuildSchedule(part)
		if err != nil {
			b.Fatal(err)
		}
		steps = sch.NumSteps()
	}
	b.ReportMetric(float64(steps), "steps")
}

// BenchmarkAlg5CommOptimal is experiment E1: the measured per-processor
// words of Algorithm 5 with the point-to-point wiring against the
// Theorem 5.2 lower bound, for q ∈ {2, 3}.
func BenchmarkAlg5CommOptimal(b *testing.B) {
	for _, q := range []int{2, 3} {
		part, err := NewPartition(q)
		if err != nil {
			b.Fatal(err)
		}
		blockEdge := q * (q + 1)
		n := part.M * blockEdge
		x := make([]float64, n)
		b.Run(fmt.Sprintf("q=%d/n=%d", q, n), func(b *testing.B) {
			var res *ParallelResult
			for i := 0; i < b.N; i++ {
				r, err := ParallelCompute(nil, x, ParallelOptions{Part: part, B: blockEdge, Wiring: WiringP2P})
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			measured := float64(res.Report.MaxSentWords())
			b.ReportMetric(measured, "words/proc")
			b.ReportMetric(measured/LowerBoundWords(n, part.P), "vs-lower-bound")
			b.ReportMetric(measured/OptimalWords(n, q), "vs-model")
		})
	}
}

// BenchmarkAlg5AllToAll is experiment E4: the All-to-All wiring costs
// 4n/(q+1)·(1−1/P) — twice the lower bound's leading term.
func BenchmarkAlg5AllToAll(b *testing.B) {
	for _, q := range []int{2, 3} {
		part, err := NewPartition(q)
		if err != nil {
			b.Fatal(err)
		}
		blockEdge := q * (q + 1)
		n := part.M * blockEdge
		x := make([]float64, n)
		b.Run(fmt.Sprintf("q=%d/n=%d", q, n), func(b *testing.B) {
			var res *ParallelResult
			for i := 0; i < b.N; i++ {
				r, err := ParallelCompute(nil, x, ParallelOptions{Part: part, B: blockEdge, Wiring: WiringAllToAll})
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			measured := float64(res.Report.MaxSentWords())
			b.ReportMetric(measured, "words/proc")
			b.ReportMetric(measured/AllToAllWords(n, q), "vs-model")
			b.ReportMetric(measured/OptimalWords(n, q), "vs-optimal")
		})
	}
}

// BenchmarkAlg5LoadBalance is experiment E2: per-processor ternary
// multiplications against the n³/(2P) leading term of §7.1.
func BenchmarkAlg5LoadBalance(b *testing.B) {
	q := 3
	part, err := NewPartition(q)
	if err != nil {
		b.Fatal(err)
	}
	blockEdge := q * (q + 1)
	n := part.M * blockEdge
	a := RandomTensor(n, 1)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	var res *ParallelResult
	for i := 0; i < b.N; i++ {
		r, err := ParallelCompute(a, x, ParallelOptions{Part: part, B: blockEdge, Wiring: WiringP2P})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	var mx, total int64
	for _, tm := range res.Ternary {
		total += tm
		if tm > mx {
			mx = tm
		}
	}
	lead := float64(n) * float64(n) * float64(n) / (2 * float64(part.P))
	b.ReportMetric(float64(mx), "max-ternary")
	b.ReportMetric(float64(mx)/lead, "vs-n3-over-2P")
	b.ReportMetric(float64(total), "total-ternary")
}

// BenchmarkScheduleSteps is experiment E3: measured schedule length versus
// the q³/2 + 3q²/2 − 1 of §7.2.2.
func BenchmarkScheduleSteps(b *testing.B) {
	for _, q := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			part, err := NewPartition(q)
			if err != nil {
				b.Fatal(err)
			}
			var steps int
			for i := 0; i < b.N; i++ {
				sch, err := BuildSchedule(part)
				if err != nil {
					b.Fatal(err)
				}
				steps = sch.NumSteps()
			}
			b.ReportMetric(float64(steps), "steps")
			b.ReportMetric(float64(ScheduleSteps(q)), "theory")
			b.ReportMetric(float64(part.P-1), "alltoall-steps")
		})
	}
}

// BenchmarkNaiveVsSymmetric is experiment E5: Algorithm 4 performs half
// the ternary multiplications of Algorithm 3 and runs about twice as fast.
func BenchmarkNaiveVsSymmetric(b *testing.B) {
	for _, n := range []int{48, 96, 192} {
		a := RandomTensor(n, 2)
		d := a.Dense()
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ComputeNaive(d, x, nil)
			}
			b.ReportMetric(float64(n)*float64(n)*float64(n), "ternary")
		})
		b.Run(fmt.Sprintf("symmetric/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Compute(a, x, nil)
			}
			b.ReportMetric(float64(n)*float64(n)*float64(n+1)/2, "ternary")
		})
	}
}

// BenchmarkAlg5VsRowPartition is experiment E6: the 1D row baseline moves
// Θ(n) words per processor, Algorithm 5 only Θ(n/P^{1/3}).
func BenchmarkAlg5VsRowPartition(b *testing.B) {
	q := 3
	part, err := NewPartition(q)
	if err != nil {
		b.Fatal(err)
	}
	blockEdge := q * (q + 1)
	n := part.M * blockEdge
	a := RandomTensor(n, 3)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	b.Run("alg5", func(b *testing.B) {
		var res *ParallelResult
		for i := 0; i < b.N; i++ {
			r, err := ParallelCompute(a, x, ParallelOptions{Part: part, B: blockEdge, Wiring: WiringP2P})
			if err != nil {
				b.Fatal(err)
			}
			res = r
		}
		b.ReportMetric(float64(res.Report.MaxSentWords()), "words/proc")
	})
	b.Run("row-baseline", func(b *testing.B) {
		var res *ParallelResult
		for i := 0; i < b.N; i++ {
			r, err := RowBaselineCompute(a, x, part.P)
			if err != nil {
				b.Fatal(err)
			}
			res = r
		}
		b.ReportMetric(float64(res.Report.MaxSentWords()), "words/proc")
	})
}

// BenchmarkHOPM is experiment E7: the higher-order power method converging
// on a hypergraph adjacency tensor (the §1 eigenvector application).
func BenchmarkHOPM(b *testing.B) {
	a, err := RandomHypergraphTensor(60, 400, 4)
	if err != nil {
		b.Fatal(err)
	}
	var pair *Eigenpair
	for i := 0; i < b.N; i++ {
		p, err := PowerMethod(a, EigenOptions{Seed: 5, MaxIter: 500})
		if err != nil {
			b.Fatal(err)
		}
		pair = p
	}
	b.ReportMetric(float64(pair.Iterations), "iterations")
	b.ReportMetric(pair.Residual, "residual")
}

// BenchmarkCPGradient is experiment E8: one Algorithm 2 gradient
// evaluation (r STTSV calls plus the Gram/Hadamard updates).
func BenchmarkCPGradient(b *testing.B) {
	n, r := 60, 8
	a := RandomTensor(n, 6)
	x := NewFactors(n, r)
	for i := range x.Data {
		x.Data[i] = float64(i%11)/11 - 0.5
	}
	for i := 0; i < b.N; i++ {
		CPGradient(a, x)
	}
	b.ReportMetric(float64(r), "sttsv-calls")
}
