package sttsv

import (
	"math"
	"testing"
)

func TestFacadeMTTKRP(t *testing.T) {
	n, r := 15, 4
	a := RandomTensor(n, 10)
	cols := make([][]float64, r)
	for l := range cols {
		c := make([]float64, n)
		for i := range c {
			c[i] = math.Sin(float64(l*n + i))
		}
		cols[l] = c
	}
	x := FactorsFromColumns(cols)
	fused := MTTKRP(a, x, nil)
	colw := MTTKRPColumnwise(a, x, nil)
	for i := range fused.Data {
		if math.Abs(fused.Data[i]-colw.Data[i]) > 1e-10 {
			t.Fatalf("fused vs columnwise differ at %d", i)
		}
	}
	// Column ℓ equals STTSV of that column.
	for l := 0; l < r; l++ {
		y := Compute(a, cols[l], nil)
		for i := 0; i < n; i++ {
			if math.Abs(fused.At(i, l)-y[i]) > 1e-10 {
				t.Fatalf("column %d row %d mismatch", l, i)
			}
		}
	}
}

func TestFacadeParallelMTTKRP(t *testing.T) {
	part, err := NewPartition(2)
	if err != nil {
		t.Fatal(err)
	}
	b := 6
	n := part.M * b
	r := 2
	a := RandomTensor(n, 11)
	cols := make([][]float64, r)
	for l := range cols {
		c := make([]float64, n)
		for i := range c {
			c[i] = math.Cos(float64(l + i))
		}
		cols[l] = c
	}
	x := FactorsFromColumns(cols)
	want := MTTKRP(a, x, nil)
	y, res, err := ParallelMTTKRP(a, x, r, ParallelOptions{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(y.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("parallel MTTKRP differs at %d", i)
		}
	}
	if res.Report.MaxSentWords() == 0 {
		t.Fatal("no communication metered")
	}
}

func TestFacadeDTensor(t *testing.T) {
	// Rank-one identity at order 4 through the facade.
	n, d := 8, 4
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	a := RankOneDTensor(3, v, d)
	y := DCompute(a, v)
	for i := range y {
		if math.Abs(y[i]-3*v[i]) > 1e-9 {
			t.Fatalf("order-4 rank-one identity violated at %d", i)
		}
	}
	lambda, x, _, converged := DPowerMethod(a, 1, 0, 2000, 1e-12)
	if !converged || math.Abs(lambda-3) > 1e-6 {
		t.Fatalf("DPowerMethod: lambda=%g converged=%v", lambda, converged)
	}
	if a := math.Abs(dotVec(x, v)); math.Abs(a-1) > 1e-6 {
		t.Fatalf("alignment %g", a)
	}
	// Random tensor shape checks.
	rt := RandomDTensor(6, 5, 2)
	if rt.N != 6 || rt.D != 5 {
		t.Fatal("RandomDTensor shape wrong")
	}
	if NewDTensor(4, 3).At(1, 2, 3) != 0 {
		t.Fatal("zero tensor not zero")
	}
}

func TestFacadeDLowerBound(t *testing.T) {
	// d=3 must agree with the core formula.
	if math.Abs(DLowerBoundWords(120, 3, 30)-LowerBoundWords(120, 30)) > 1e-9 {
		t.Fatal("d=3 bound mismatch")
	}
}

func TestFactorsFromColumnsEmpty(t *testing.T) {
	m := FactorsFromColumns(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatal("empty factors wrong shape")
	}
}

func dotVec(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestFacadeDistributedPowerMethod(t *testing.T) {
	part, err := NewPartition(2)
	if err != nil {
		t.Fatal(err)
	}
	b := 6
	n := part.M * b
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(n))
	}
	a := RankOneTensor(2, v)
	res, err := DistributedPowerMethod(a,
		ParallelOptions{Part: part, B: b, Wiring: WiringP2P},
		PowerOptions{MaxIter: 100, Tol: 1e-12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.Lambda-2) > 1e-8 {
		t.Fatalf("lambda=%g converged=%v", res.Lambda, res.Converged)
	}
}
