package sttsv

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/partition"
)

// Property-based tests (testing/quick) over the core invariants of the
// public API: algebraic identities of the STTSV operator, partition chunk
// coverage for arbitrary block edges, and packed-storage round trips.

// TestPropertySTTSVBilinearInTensor: y is linear in A for fixed x, across
// random tensor pairs and scalars.
func TestPropertySTTSVBilinearInTensor(t *testing.T) {
	n := 9
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i) + 0.5)
	}
	f := func(seedA, seedB int64, cRaw uint8) bool {
		c := float64(cRaw%10) - 5
		a := RandomTensor(n, seedA)
		bb := RandomTensor(n, seedB)
		combo := NewTensor(n)
		for i := range combo.Data {
			combo.Data[i] = a.Data[i] + c*bb.Data[i]
		}
		ya := Compute(a, x, nil)
		yb := Compute(bb, x, nil)
		yc := Compute(combo, x, nil)
		for i := range yc {
			if math.Abs(yc[i]-(ya[i]+c*yb[i])) > 1e-9*(1+math.Abs(yc[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertySTTSVQuadraticInVector: y(c·x) = c²·y(x) for random scales.
func TestPropertySTTSVQuadraticInVector(t *testing.T) {
	n := 8
	a := RandomTensor(n, 99)
	f := func(seedX int64, cRaw int8) bool {
		c := float64(cRaw) / 16
		x := make([]float64, n)
		r := RandomTensor(n, seedX) // reuse deterministic generator for x entries
		copy(x, r.Data[:n])
		cx := make([]float64, n)
		for i := range x {
			cx[i] = c * x[i]
		}
		y := Compute(a, x, nil)
		ycx := Compute(a, cx, nil)
		for i := range y {
			if math.Abs(ycx[i]-c*c*y[i]) > 1e-9*(1+math.Abs(y[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLambdaIsSymmetricTrilinearForm: λ(x) = A×₁x×₂x×₃x equals
// the explicit trilinear sum on random inputs.
func TestPropertyLambdaIsSymmetricTrilinearForm(t *testing.T) {
	n := 6
	a := RandomTensor(n, 7)
	d := a.Dense()
	f := func(seed int64) bool {
		x := make([]float64, n)
		r := RandomTensor(n, seed)
		copy(x, r.Data[:n])
		want := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					want += d.At(i, j, k) * x[i] * x[j] * x[k]
				}
			}
		}
		return math.Abs(Lambda(a, x)-want) < 1e-8*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyChunksPartitionRowBlocks: for every admissible machine and
// arbitrary block edge, the per-processor chunks of each row block tile
// [0, b) exactly.
func TestPropertyChunksPartitionRowBlocks(t *testing.T) {
	parts := make([]*Partition, 0, 2)
	for _, q := range []int{2, 3} {
		p, err := NewPartition(q)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	f := func(bRaw uint8, which bool) bool {
		b := int(bRaw)%40 + 1
		part := parts[0]
		if which {
			part = parts[1]
		}
		for i := 0; i < part.M; i++ {
			pos := 0
			for _, ch := range part.RowBlockChunks(i, b) {
				if ch.Lo != pos || ch.Hi < ch.Lo {
					return false
				}
				pos = ch.Hi
			}
			if pos != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStorageConservation: for arbitrary block edges, the
// per-processor packed block storage of the partition sums to exactly the
// packed size of the padded tensor.
func TestPropertyStorageConservation(t *testing.T) {
	part, err := NewPartition(2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(bRaw uint8) bool {
		b := int(bRaw)%12 + 1
		total := 0
		for p := 0; p < part.P; p++ {
			total += part.StorageWords(p, b)
		}
		n := part.M * b
		return total == n*(n+1)*(n+2)/6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPropertySparseDenseAgree: sparsify-then-apply agrees with the dense
// kernel for random sparsity patterns.
func TestPropertySparseDenseAgree(t *testing.T) {
	n := 7
	f := func(seed int64, keepRaw uint8) bool {
		a := RandomTensor(n, seed)
		thresh := float64(keepRaw) / 256 // drop entries below a random threshold
		for i := range a.Data {
			if math.Abs(a.Data[i]) < thresh {
				a.Data[i] = 0
			}
		}
		sp := SparseFromTensor(a, 0)
		x := make([]float64, n)
		r := RandomTensor(n, seed+1)
		copy(x, r.Data[:n])
		ys := SparseCompute(sp, x, nil)
		yd := Compute(a, x, nil)
		for i := range ys {
			if math.Abs(ys[i]-yd[i]) > 1e-10*(1+math.Abs(yd[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMTTKRPColumnsAreSTTSV: every column of the fused MTTKRP is
// the STTSV of that column, for random factors.
func TestPropertyMTTKRPColumnsAreSTTSV(t *testing.T) {
	n, r := 8, 3
	a := RandomTensor(n, 55)
	f := func(seed int64) bool {
		cols := make([][]float64, r)
		for l := range cols {
			c := make([]float64, n)
			rt := RandomTensor(n, seed+int64(l))
			copy(c, rt.Data[:n])
			cols[l] = c
		}
		x := FactorsFromColumns(cols)
		y := MTTKRP(a, x, nil)
		for l := 0; l < r; l++ {
			want := Compute(a, cols[l], nil)
			for i := 0; i < n; i++ {
				if math.Abs(y.At(i, l)-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFootprintBound: for random subsets of off-diagonal blocks,
// the footprint respects the Lemma 4.2 bound f(f−1)(f−2)/6 >= |blocks|.
func TestPropertyFootprintBound(t *testing.T) {
	part, err := NewPartition(3)
	if err != nil {
		t.Fatal(err)
	}
	rr := partition.RoundRobinAssignment(part.M, part.P)
	f := func(idx uint8) bool {
		blocks := rr[int(idx)%len(rr)]
		fp := partition.Footprint(blocks)
		return fp*(fp-1)*(fp-2)/6 >= len(blocks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
