package sttsv

import (
	"math"
	"math/rand"
	"testing"
)

func bitsSame(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestFacadeSparseSession: the root-level sparse session must reproduce
// the sequential sparse oracle bit-for-bit end to end.
func TestFacadeSparseSession(t *testing.T) {
	part, err := NewPartition(2)
	if err != nil {
		t.Fatal(err)
	}
	const b = 5
	n := part.M * b
	sp, err := SparseRandomHypergraph(n, 4*n, 17)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenSparseSession(sp, ParallelOptions{Part: part, B: b})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(18))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	res, err := s.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := OpenSession(sp.Dense(), ParallelOptions{Part: part, B: b, ScalarKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dense.Close()
	dres, err := dense.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsSame(res.Y, dres.Y) {
		t.Fatal("facade sparse session differs from dense session")
	}
}

// TestFacadeWeightedPartition: nnz-weighted assignment reachable from the
// facade must reduce the load imbalance of a skewed hypergraph.
func TestFacadeWeightedPartition(t *testing.T) {
	const q, b = 2, 16
	uni, err := NewPartition(q)
	if err != nil {
		t.Fatal(err)
	}
	n := uni.M * b
	sp, err := SparseSkewedHypergraph(n, 32*n, 1.3, 19)
	if err != nil {
		t.Fatal(err)
	}
	weight := SparseBlockWeights(sp, b)
	wp, err := NewWeightedPartition(q, weight)
	if err != nil {
		t.Fatal(err)
	}

	loadsOf := func(p *Partition) LoadStats {
		srb, err := PackSparseRankBlocks(sp, p, b)
		if err != nil {
			t.Fatal(err)
		}
		return ComputeLoadStats(srb.Loads())
	}
	before, after := loadsOf(uni), loadsOf(wp)
	if after.Imbalance > before.Imbalance {
		t.Fatalf("weighted partition worsened imbalance: %.3f → %.3f", before.Imbalance, after.Imbalance)
	}
	if after.Imbalance > 1.3 {
		t.Fatalf("weighted imbalance %.3f exceeds the 1.3 gate", after.Imbalance)
	}
}

// TestFacadeCPSession: the root-level CP session must match the
// sequential factored apply oracle bit-for-bit.
func TestFacadeCPSession(t *testing.T) {
	const n, r, p = 90, 4, 3
	rng := rand.New(rand.NewSource(20))
	weights := make([]float64, r)
	vectors := make([][]float64, r)
	for k := 0; k < r; k++ {
		weights[k] = rng.NormFloat64()
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		vectors[k] = v
	}
	op, err := NewCPOperator(weights, vectors)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenCPSession(op, CPSessionOptions{P: p})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	res, err := s.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsSame(res.Y, op.ApplyChunked(x, p, nil)) {
		t.Fatal("facade CP session differs from ApplyChunked oracle")
	}
}

// TestFacadeFastPathPools: the sparse and CP serving pools must answer
// through the facade.
func TestFacadeFastPathPools(t *testing.T) {
	part, err := NewPartition(2)
	if err != nil {
		t.Fatal(err)
	}
	const b = 4
	n := part.M * b
	sp, err := SparseRandomHypergraph(n, 3*n, 21)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := OpenSparseServePool(sp, ServeOptions{Session: ParallelOptions{Part: part, B: b}})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	rng := rand.New(rand.NewSource(22))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	solo, err := OpenSparseSession(sp, ParallelOptions{Part: part, B: b})
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	want, err := solo.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := pool.Apply("tenant", x)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsSame(resp.Y, want.Y) {
		t.Fatal("sparse pool response differs from a solo sparse session")
	}

	op, err := NewCPOperator([]float64{1.5, -0.5}, [][]float64{make([]float64, n), make([]float64, n)})
	if err != nil {
		t.Fatal(err)
	}
	cpPool, err := OpenCPServePool(op, 2, ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cpPool.Close()
	if _, err := cpPool.Apply("tenant", x); err != nil {
		t.Fatal(err)
	}
}
