package sttsv_test

import (
	"fmt"
	"math"

	sttsv "repro"
)

// ExampleCompute evaluates y = A ×₂x ×₃x with the symmetry-exploiting
// kernel and checks it against the naive algorithm.
func ExampleCompute() {
	a := sttsv.RandomTensor(16, 1)
	x := make([]float64, 16)
	for i := range x {
		x[i] = 1
	}
	var stats sttsv.Stats
	y := sttsv.Compute(a, x, &stats)
	yn := sttsv.ComputeNaive(a.Dense(), x, nil)
	maxDiff := 0.0
	for i := range y {
		if d := math.Abs(y[i] - yn[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Println("ternary multiplications:", stats.TernaryMults)
	fmt.Println("agrees with naive:", maxDiff < 1e-10)
	// Output:
	// ternary multiplications: 2176
	// agrees with naive: true
}

// ExampleParallelCompute runs the communication-optimal Algorithm 5 on the
// simulated 10-processor machine and compares the metered words against
// the paper's model.
func ExampleParallelCompute() {
	part, _ := sttsv.NewPartition(2) // q=2: P = 10 processors
	b := 6                           // block edge divisible by q(q+1)
	n := part.M * b
	x := make([]float64, n)
	res, _ := sttsv.ParallelCompute(nil, x, sttsv.ParallelOptions{
		Part: part, B: b, Wiring: sttsv.WiringP2P,
	})
	fmt.Println("words per processor:", res.Report.MaxSentWords())
	fmt.Println("model 2(n(q+1)/(q²+1) − n/P):", sttsv.OptimalWords(n, 2))
	fmt.Println("steps per phase:", res.Steps)
	// Output:
	// words per processor: 30
	// model 2(n(q+1)/(q²+1) − n/P): 30
	// steps per phase: 9
}

// ExampleReplay traces an Algorithm 5 run, replays it under an α-β-γ
// time model, and reads off the per-phase step counts and meters that the
// cost model predicts in closed form.
func ExampleReplay() {
	part, _ := sttsv.NewPartition(2) // q=2: P = 10 processors
	b := 6
	n := part.M * b
	x := make([]float64, n)

	var rec sttsv.TraceRecorder
	res, _ := sttsv.ParallelCompute(nil, x, sttsv.ParallelOptions{
		Part: part, B: b, Wiring: sttsv.WiringP2P,
		Machine: sttsv.RunConfig{Observer: rec.Observer()},
	})
	trace := rec.Trace()

	// The trace's summed events equal the run's meters exactly.
	fmt.Println("trace conforms:", trace.CheckAgainstReport(res.Report) == nil)

	tl, _ := sttsv.Replay(trace, sttsv.DefaultTimeModel())
	fmt.Println("gather steps:", tl.PhaseSteps["gather"])
	fmt.Println("gather sent words (rank 0):", res.Phase("gather").SentWords[0])
	// Output:
	// trace conforms: true
	// gather steps: 9
	// gather sent words (rank 0): 15
}

// ExamplePowerMethod finds the dominant Z-eigenpair of a rank-one tensor.
func ExamplePowerMethod() {
	v := make([]float64, 25)
	for i := range v {
		v[i] = 0.2 // unit vector
	}
	a := sttsv.RankOneTensor(3, v)
	pair, _ := sttsv.PowerMethod(a, sttsv.EigenOptions{Seed: 1})
	fmt.Printf("lambda = %.4f, converged = %v\n", pair.Lambda, pair.Converged)
	// Output:
	// lambda = 3.0000, converged = true
}

// ExampleBestMachine asks the planner which machine to use for a
// 500-dimensional problem with at most 100 processors.
func ExampleBestMachine() {
	cfg, _ := sttsv.BestMachine(500, 100)
	fmt.Printf("family=%v P=%d m=%d steps=%d\n", cfg.Family, cfg.P, cfg.M, cfg.Steps)
	// Output:
	// family=spherical P=68 m=17 steps=55
}

// ExampleBuildSchedule reproduces the paper's Figure 1: the 12-step
// point-to-point schedule of the SQS(8) machine.
func ExampleBuildSchedule() {
	part, _ := sttsv.NewPartitionFromSteiner(sttsv.SQS8())
	sched, _ := sttsv.BuildSchedule(part)
	fmt.Println("processors:", part.P)
	fmt.Println("steps:", sched.NumSteps())
	fmt.Println("all-to-all would need:", part.P-1)
	// Output:
	// processors: 14
	// steps: 12
	// all-to-all would need: 13
}
