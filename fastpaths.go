package sttsv

import (
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/serve"
	"repro/internal/sparse"
	internalsttsv "repro/internal/sttsv"
)

// This file exposes the sparse and low-rank parallel fast paths: packed
// sparse rank blocks (a sparse session stores O(nnz/P) words per rank
// instead of O(n³/6P)), nnz-weighted diagonal assignment for skewed
// hypergraphs, and the rank-r CP operator whose parallel apply moves
// O(r) words per rank independent of n. All three run through the same
// Session engine and serving tier as the dense path, with bit-identical
// semantics pinned by the conformance suites. See DESIGN.md ("Sparse and
// low-rank fast paths").

// --- sparse sessions ---

// SparseRankBlocks is each rank's tetrahedral block set extracted from a
// sparse tensor as packed fiber blocks — the sparse analogue of
// RankBlocks, shareable read-only across sessions.
type SparseRankBlocks = parallel.SparseRankBlocks

// PackSparseRankBlocks packs a sparse tensor once and selects every
// rank's kind-grouped block set (set ParallelOptions.Sparse).
func PackSparseRankBlocks(sp *SparseTensor, part *Partition, b int) (*SparseRankBlocks, error) {
	return parallel.PackSparseRankBlocks(sp, part, b)
}

// OpenSparseSession launches a persistent parallel session over a sparse
// tensor: same schedule, meters, checkpoints and recovery as a dense
// session, but per-rank storage and local work scale with the rank's
// stored nonzeros. Results are bit-identical to a dense session running
// the scalar kernel on sp.Dense().
func OpenSparseSession(sp *SparseTensor, opts ParallelOptions) (*Session, error) {
	if opts.Sparse == nil && sp != nil {
		srb, err := parallel.PackSparseRankBlocks(sp, opts.Part, opts.B)
		if err != nil {
			return nil, err
		}
		opts.Sparse = srb
	}
	return parallel.OpenSession(nil, opts)
}

// SparseRandomHypergraph samples a uniform random 3-uniform hypergraph
// adjacency tensor with the given edge count.
func SparseRandomHypergraph(n, edges int, seed int64) (*SparseTensor, error) {
	return sparse.RandomHypergraph(n, edges, seed)
}

// SparseSkewedHypergraph samples a hypergraph with power-law vertex
// popularity (skew > 0 concentrates edges on low-index vertices) — the
// regime where nnz-weighted partitioning pays.
func SparseSkewedHypergraph(n, edges int, skew float64, seed int64) (*SparseTensor, error) {
	return sparse.SkewedHypergraph(n, edges, skew, seed)
}

// --- nnz-weighted partitioning ---

// PartitionCoord identifies one b×b×b block of the packed tetrahedron.
type PartitionCoord = partition.Coord

// NewWeightedPartition builds the tetrahedral partition with diagonal
// blocks assigned greedily by the supplied per-block weight (typically
// nnz from SparseBlockWeights) instead of by count. Off-diagonal
// assignment — and hence the communication-optimal schedule — is
// unchanged.
func NewWeightedPartition(q int, weight func(PartitionCoord) int64) (*Partition, error) {
	return partition.NewSphericalWeighted(q, weight)
}

// SparseBlockWeights returns the per-block stored-nonzero weight
// function of a sparse tensor at block edge b, for NewWeightedPartition.
func SparseBlockWeights(sp *SparseTensor, b int) func(PartitionCoord) int64 {
	counts := sparse.BlockCounts(sp, b)
	return func(c PartitionCoord) int64 { return counts[[3]int{c.I, c.J, c.K}] }
}

// LoadStats summarizes a per-rank load vector (max/mean imbalance).
type LoadStats = obs.LoadStats

// ComputeLoadStats reduces a per-rank load vector, e.g.
// SparseRankBlocks.Loads().
func ComputeLoadStats(loads []int64) LoadStats { return obs.ComputeLoadStats(loads) }

// --- low-rank CP sessions ---

// CPOperator is a symmetric rank-r CP tensor A = Σ_k λ_k v_k³ held in
// factored form: Apply runs in O(nr) instead of O(n³).
type CPOperator = internalsttsv.CPOperator

// NewCPOperator builds the operator from factor columns (vectors[k] is
// v_k, weights[k] its λ_k).
func NewCPOperator(weights []float64, vectors [][]float64) (*CPOperator, error) {
	return internalsttsv.NewCPOperator(weights, vectors)
}

// CPSessionOptions configures a low-rank CP session: rank count, machine
// config, batching width, crash recovery.
type CPSessionOptions = parallel.CPOptions

// OpenCPSession launches a P-rank session applying a CP operator with
// O(n/P · r) state per rank and O(r) words of communication per apply —
// independent of n. Results are bit-identical to the sequential
// CPOperator.ApplyChunked(x, P) oracle.
func OpenCPSession(op *CPOperator, opts CPSessionOptions) (*Session, error) {
	return parallel.OpenCPSession(op, opts)
}

// --- serving tier ---

// OpenSparseServePool packs the sparse tensor once and serves it from a
// coalescing session pool — the configuration for hypergraph centrality
// at n ≥ 10⁶, where a dense pool could not allocate one session.
func OpenSparseServePool(sp *SparseTensor, opts ServeOptions) (*ServePool, error) {
	return serve.OpenSparse(sp, opts)
}

// OpenCPServePool serves a shared low-rank CP operator from a coalescing
// pool of ranks-rank sessions.
func OpenCPServePool(op *CPOperator, ranks int, opts ServeOptions) (*ServePool, error) {
	return serve.OpenCP(op, ranks, opts)
}
