package sttsv_test

import (
	"testing"

	"repro"
)

// TestLoopbackBackendConformance drives the facade's socket backend: the
// same apply over the in-memory simulator and over a factory-built TCP
// loopback must produce bit-identical results and identical logical
// meters, the facade-level statement of the netwire conformance contract.
func TestLoopbackBackendConformance(t *testing.T) {
	part, err := sttsv.NewPartition(2)
	if err != nil {
		t.Fatal(err)
	}
	b := 6
	n := part.M * b
	a := sttsv.RandomTensor(n, 7)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%13) - 6
	}

	sim, err := sttsv.ParallelCompute(a, x, sttsv.ParallelOptions{
		Part: part, B: b, Wiring: sttsv.WiringP2P,
	})
	if err != nil {
		t.Fatal(err)
	}

	opts := sttsv.ParallelOptions{Part: part, B: b, Wiring: sttsv.WiringP2P}
	opts.Machine.BackendFactory = sttsv.TCPLoopback
	tcp, err := sttsv.ParallelCompute(a, x, opts)
	if err != nil {
		t.Fatal(err)
	}

	for i := range sim.Y {
		if sim.Y[i] != tcp.Y[i] {
			t.Fatalf("Y[%d]: tcp %v != sim %v", i, tcp.Y[i], sim.Y[i])
		}
	}
	if tcp.Report.MaxSentWords() != sim.Report.MaxSentWords() ||
		tcp.Report.MaxSentMsgs() != sim.Report.MaxSentMsgs() {
		t.Fatalf("logical meters diverge: tcp %dw/%dm, sim %dw/%dm",
			tcp.Report.MaxSentWords(), tcp.Report.MaxSentMsgs(),
			sim.Report.MaxSentWords(), sim.Report.MaxSentMsgs())
	}
}
