// Parallel simulation: runs the communication-optimal Algorithm 5 on the
// simulated distributed-memory machine for several machine sizes and
// prints measured communication against the paper's lower bound and cost
// model — the headline result of the paper as a table.
package main

import (
	"fmt"
	"log"
	"math"

	sttsv "repro"
)

func main() {
	fmt.Println("parallel STTSV on the simulated α-β-γ machine")
	fmt.Println()
	fmt.Printf("%3s %5s %6s | %14s %14s %12s | %10s %10s | %8s\n",
		"q", "P", "n", "p2p words/proc", "a2a words/proc", "lower bound", "p2p steps", "a2a steps", "max |Δy|")

	for _, q := range []int{2, 3, 4} {
		part, err := sttsv.NewPartition(q)
		if err != nil {
			log.Fatal(err)
		}
		b := q * (q + 1) // block edge divisible by |Qi| = q(q+1)
		n := part.M * b

		a := sttsv.RandomTensor(n, int64(q))
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(i + 1))
		}
		want := sttsv.Compute(a, x, nil)

		p2p, err := sttsv.ParallelCompute(a, x, sttsv.ParallelOptions{Part: part, B: b, Wiring: sttsv.WiringP2P})
		if err != nil {
			log.Fatal(err)
		}
		a2a, err := sttsv.ParallelCompute(a, x, sttsv.ParallelOptions{Part: part, B: b, Wiring: sttsv.WiringAllToAll})
		if err != nil {
			log.Fatal(err)
		}

		maxDiff := 0.0
		for i := range want {
			if d := math.Abs(p2p.Y[i] - want[i]); d > maxDiff {
				maxDiff = d
			}
			if d := math.Abs(a2a.Y[i] - want[i]); d > maxDiff {
				maxDiff = d
			}
		}

		fmt.Printf("%3d %5d %6d | %14d %14d %12.1f | %10d %10d | %8.1e\n",
			q, part.P, n,
			p2p.Report.MaxSentWords(), a2a.Report.MaxSentWords(),
			sttsv.LowerBoundWords(n, part.P),
			p2p.Steps, a2a.Steps, maxDiff)
	}

	fmt.Println()
	fmt.Println("p2p matches the model 2(n(q+1)/(q²+1) − n/P) exactly — the lower bound's")
	fmt.Println("leading term; the All-to-All wiring costs asymptotically twice as much.")
}
