// Parallel eigensolver: Algorithm 1 (higher-order power method) with every
// STTSV evaluation executed by Algorithm 5 on the simulated distributed-
// memory machine — the end-to-end pipeline the paper's introduction
// motivates. The per-iteration communication stays at the lower bound's
// leading term, so total eigensolver communication is
// iterations × 2n/P^{1/3} words instead of iterations × Θ(n).
package main

import (
	"fmt"
	"log"
	"math"

	sttsv "repro"
)

func main() {
	const q = 3
	part, err := sttsv.NewPartition(q)
	if err != nil {
		log.Fatal(err)
	}
	b := q * (q + 1)
	n := part.M * b // 120
	fmt.Printf("machine: P=%d simulated processors (q=%d), n=%d\n\n", part.P, q, n)

	// A planted dominant component plus noise: the power method should
	// recover it.
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Sin(float64(3*i + 1))
	}
	normalize(v)
	planted := sttsv.RankOneTensor(4, v)
	noise := sttsv.RandomTensor(n, 9)
	a := sttsv.NewTensor(n)
	for i := range a.Data {
		a.Data[i] = planted.Data[i] + 0.01*noise.Data[i]
	}

	// Build the schedule once; reuse it across iterations.
	sched, err := sttsv.BuildSchedule(part)
	if err != nil {
		log.Fatal(err)
	}
	opts := sttsv.ParallelOptions{Part: part, B: b, Sched: sched, Wiring: sttsv.WiringP2P}

	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	var lambda, prev float64
	prev = math.Inf(1)
	var totalWords int64
	iters := 0
	for it := 1; it <= 200; it++ {
		res, err := sttsv.ParallelCompute(a, x, opts)
		if err != nil {
			log.Fatal(err)
		}
		totalWords += res.Report.MaxSentWords()
		lambda = dot(x, res.Y)
		iters = it
		if math.Abs(lambda-prev) <= 1e-12*(1+math.Abs(lambda)) {
			break
		}
		prev = lambda
		copy(x, res.Y)
		normalize(x)
	}

	align := math.Abs(dot(x, v))
	fmt.Printf("power method: lambda = %.8f after %d simulated-parallel iterations\n", lambda, iters)
	fmt.Printf("alignment with planted component: %.6f\n", align)
	fmt.Printf("communication: %d words/processor total (%d per iteration; lower bound %.1f per iteration)\n",
		totalWords, totalWords/int64(iters), sttsv.LowerBoundWords(n, part.P))
	fmt.Printf("a Θ(n)-per-iteration 1D layout would have moved ≈ %d words/processor total\n",
		int64(2*float64(n)*(1-1/float64(part.P)))*int64(iters))
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func normalize(x []float64) {
	n := math.Sqrt(dot(x, x))
	for i := range x {
		x[i] /= n
	}
}
