// Hypergraph centrality: the adjacency tensor of a 3-uniform hypergraph is
// symmetric, and its dominant Z-eigenvector ranks vertices by how strongly
// they participate in well-connected triples (the "tensor times same
// vector" application of Shivakumar et al. cited in the paper's §1). The
// STTSV kernel is the bottleneck of every power-method iteration.
//
// The example builds a planted-community hypergraph — two groups of
// vertices where triples inside the first group are much more likely —
// and shows that the centrality scores separate the groups.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	sttsv "repro"
)

func main() {
	const (
		n         = 60
		community = 20 // vertices 0..19 form the dense community
	)

	// Sample hyperedges: triples within the community with high
	// probability, background triples uniformly.
	rng := rand.New(rand.NewSource(7))
	seen := map[[3]int]bool{}
	var edges [][3]int
	addEdge := func(a, b, c int) {
		if a == b || b == c || a == c {
			return
		}
		t := [3]int{a, b, c}
		sort.Ints(t[:])
		if seen[t] {
			return
		}
		seen[t] = true
		edges = append(edges, t)
	}
	for i := 0; i < 400; i++ { // dense community triples
		addEdge(rng.Intn(community), rng.Intn(community), rng.Intn(community))
	}
	for i := 0; i < 300; i++ { // sparse background
		addEdge(rng.Intn(n), rng.Intn(n), rng.Intn(n))
	}
	fmt.Printf("hypergraph: %d vertices, %d hyperedges\n", n, len(edges))

	a, err := sttsv.HypergraphTensor(n, edges)
	if err != nil {
		log.Fatal(err)
	}

	// Dominant Z-eigenvector = centrality scores. The adjacency tensor is
	// nonnegative, so the plain power method converges to the Perron
	// vector.
	pair, err := sttsv.PowerMethod(a, sttsv.EigenOptions{Seed: 1, MaxIter: 5000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("centrality eigenvalue: %.6f (%d iterations, residual %.2g)\n",
		pair.Lambda, pair.Iterations, pair.Residual)

	// Rank vertices by |score| and report how many of the top-`community`
	// fall inside the planted community.
	type vc struct {
		v     int
		score float64
	}
	ranked := make([]vc, n)
	for v := range ranked {
		s := pair.X[v]
		if s < 0 {
			s = -s
		}
		ranked[v] = vc{v, s}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })

	inCommunity := 0
	for _, r := range ranked[:community] {
		if r.v < community {
			inCommunity++
		}
	}
	fmt.Printf("top %d by centrality: %d/%d inside the planted community\n",
		community, inCommunity, community)
	fmt.Println("\ntop 10 vertices:")
	for _, r := range ranked[:10] {
		tag := ""
		if r.v < community {
			tag = "  <- community"
		}
		fmt.Printf("  vertex %2d  score %.4f%s\n", r.v, r.score, tag)
	}
}
