// Quickstart: build a symmetric tensor, compute y = A ×₂ x ×₃ x with the
// symmetry-exploiting kernel, check it against the naive algorithm, and
// find a Z-eigenpair with the higher-order power method.
package main

import (
	"fmt"
	"log"
	"math"

	sttsv "repro"
)

func main() {
	const n = 32

	// A random symmetric tensor (only the lower tetrahedron is stored:
	// n(n+1)(n+2)/6 values instead of n³).
	a := sttsv.RandomTensor(n, 42)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(float64(i))
	}

	// Algorithm 4: n²(n+1)/2 ternary multiplications.
	var stats sttsv.Stats
	y := sttsv.Compute(a, x, &stats)
	fmt.Printf("computed y = A ×₂x ×₃x with %d ternary multiplications (naive would use %d)\n",
		stats.TernaryMults, n*n*n)

	// Cross-check against the naive Algorithm 3 on the dense cube.
	yn := sttsv.ComputeNaive(a.Dense(), x, nil)
	maxDiff := 0.0
	for i := range y {
		if d := math.Abs(y[i] - yn[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("agreement with naive algorithm: max |Δ| = %.2g\n", maxDiff)

	// λ = A ×₁x ×₂x ×₃x for the same x.
	fmt.Printf("lambda(x) = %.6f\n", sttsv.Lambda(a, x))

	// Z-eigenpair via the shifted higher-order power method (Algorithm 1
	// with the SS-HOPM shift, guaranteed to converge).
	pair, err := sttsv.PowerMethod(a, sttsv.EigenOptions{
		Seed:    1,
		Shift:   sttsv.SuggestedShift(a),
		MaxIter: 50000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Z-eigenpair: lambda = %.8f after %d iterations (residual %.2g, converged=%v)\n",
		pair.Lambda, pair.Iterations, pair.Residual, pair.Converged)
}
