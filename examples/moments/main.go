// Method of moments: a symmetric CP decomposition of a third-moment-style
// tensor recovers latent components (the symmetric CP application behind
// the paper's Algorithm 2). The example plants an orthogonal rank-3
// symmetric tensor A = Σ_ℓ w_ℓ·v_ℓ∘v_ℓ∘v_ℓ, then recovers the components
// two ways:
//
//  1. power iteration + deflation (ExtractRankOnes), which provably works
//     for orthogonally decomposable tensors;
//  2. gradient descent on the Algorithm 2 gradient (SymmetricCP), refining
//     a perturbed start to machine-precision fit.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	sttsv "repro"
)

func main() {
	const (
		n = 24
		r = 3
	)

	// Plant r orthonormal components with separated weights by
	// Gram-Schmidt on random vectors.
	rng := rand.New(rand.NewSource(11))
	comps := make([][]float64, r)
	for l := 0; l < r; l++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		for m := 0; m < l; m++ {
			d := dot(v, comps[m])
			for i := range v {
				v[i] -= d * comps[m][i]
			}
		}
		normalize(v)
		comps[l] = v
	}
	weights := []float64{5, 3, 1.5}

	a, err := sttsv.CPTensor(weights, comps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planted symmetric rank-%d tensor, n=%d, weights %v\n\n", r, n, weights)

	// --- Recovery 1: power iteration + deflation ---
	w, v, err := sttsv.ExtractRankOnes(a, r, sttsv.EigenOptions{Seed: 3, MaxIter: 5000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deflation recovery (weight, alignment with planted component):")
	for l := 0; l < r; l++ {
		// Match to the closest planted component.
		best, align := -1, 0.0
		for m := 0; m < r; m++ {
			if d := math.Abs(dot(v[l], comps[m])); d > align {
				align, best = d, m
			}
		}
		fmt.Printf("  component %d: weight %.4f (planted %.1f), |<v, planted_%d>| = %.6f\n",
			l, w[l], weights[best], best, align)
	}

	// --- Recovery 2: gradient descent on the Algorithm 2 gradient ---
	x0 := sttsv.NewFactors(n, r)
	for l := 0; l < r; l++ {
		for i := 0; i < n; i++ {
			// cbrt(w)·v + noise: a perturbed start in the right basin.
			x0.Set(i, l, math.Cbrt(weights[l])*comps[l][i]+0.05*rng.NormFloat64())
		}
	}
	start := sttsv.CPObjective(a, x0)
	res, err := sttsv.SymmetricCP(a, r, sttsv.CPOptions{X0: x0, MaxIter: 5000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngradient descent (Algorithm 2): objective %.3g -> %.3g in %d steps (converged=%v)\n",
		start, res.Objective, res.Iterations, res.Converged)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func normalize(v []float64) {
	n := math.Sqrt(dot(v, v))
	for i := range v {
		v[i] /= n
	}
}
