package sttsv

import (
	"math"
	"testing"
)

func TestFacadeSparse(t *testing.T) {
	edges := [][3]int{{0, 1, 2}, {1, 2, 3}, {0, 3, 4}}
	sp, err := SparseFromHypergraph(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NNZ() != 3 {
		t.Fatalf("NNZ = %d", sp.NNZ())
	}
	dense, err := HypergraphTensor(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -1, 2, 0.5, 3}
	var st Stats
	ys := SparseCompute(sp, x, &st)
	yd := Compute(dense, x, nil)
	for i := range ys {
		if math.Abs(ys[i]-yd[i]) > 1e-12 {
			t.Fatalf("sparse and dense disagree at %d", i)
		}
	}
	if st.TernaryMults != 9 { // 3 strict entries × 3 ops
		t.Fatalf("ternary count %d, want 9", st.TernaryMults)
	}
	// Sparsify round trip.
	sp2 := SparseFromTensor(dense, 0)
	if sp2.NNZ() != 3 {
		t.Fatalf("SparseFromTensor NNZ = %d", sp2.NNZ())
	}
	// Power method parity.
	p1, err := SparsePowerMethod(sp, EigenOptions{Seed: 1, MaxIter: 3000})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PowerMethod(dense, EigenOptions{Seed: 1, MaxIter: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1.Lambda-p2.Lambda) > 1e-9 {
		t.Fatalf("sparse λ %g vs dense %g", p1.Lambda, p2.Lambda)
	}
}

func TestFacadeHEigen(t *testing.T) {
	n := 6
	a := NewTensor(n)
	for i := range a.Data {
		a.Data[i] = 1
	}
	pair, err := HEigenPowerMethod(a, 1000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Converged || math.Abs(pair.Lambda-float64(n*n)) > 1e-8 {
		t.Fatalf("H-eigen of all-ones: λ=%g converged=%v, want %d", pair.Lambda, pair.Converged, n*n)
	}
}

func TestFacadeAdaptiveAndEnumerate(t *testing.T) {
	v1 := make([]float64, 8)
	v1[0] = 1
	v2 := make([]float64, 8)
	v2[4] = 1
	a, err := CPTensor([]float64{5, 2}, [][]float64{v1, v2})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := AdaptivePowerMethod(a, SuggestedShift(a), EigenOptions{Seed: 2, MaxIter: 20000, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Converged {
		t.Fatal("adaptive did not converge")
	}
	pairs, err := EnumerateEigenpairs(a, 30, EigenOptions{Seed: 3, MaxIter: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) < 2 || math.Abs(pairs[0].Lambda-5) > 1e-6 {
		t.Fatalf("enumerate found %d pairs, dominant %g", len(pairs), pairs[0].Lambda)
	}
}

func TestFacadeSequenceBaseline(t *testing.T) {
	n := 20
	a := RandomTensor(n, 12)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%3) - 1
	}
	want := Compute(a, x, nil)
	res, err := SequenceBaselineCompute(a, x, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res.Y[i]-want[i]) > 1e-9 {
			t.Fatalf("sequence baseline differs at %d", i)
		}
	}
}

func TestFacadeSQSDoubled(t *testing.T) {
	s, err := SQSDoubled(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 16 || s.NumBlocks() != 140 {
		t.Fatalf("SQS(16): n=%d blocks=%d", s.N, s.NumBlocks())
	}
	part, err := NewPartitionFromSteiner(s)
	if err != nil {
		t.Fatal(err)
	}
	if part.P != 140 {
		t.Fatalf("P = %d", part.P)
	}
}
