package sttsv

import (
	"math"
	"testing"
)

func TestFacadeSequentialPipeline(t *testing.T) {
	// End-to-end through the public API: build, compute, cross-check.
	a := RandomTensor(20, 1)
	x := make([]float64, 20)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	var st Stats
	y := Compute(a, x, &st)
	if st.TernaryMults != 20*20*21/2 {
		t.Fatalf("ternary count %d", st.TernaryMults)
	}
	yn := ComputeNaive(a.Dense(), x, nil)
	yb := ComputeBlocked(a, x, 4, nil)
	for i := range y {
		if math.Abs(y[i]-yn[i]) > 1e-9 || math.Abs(y[i]-yb[i]) > 1e-9 {
			t.Fatalf("algorithms disagree at %d: %g %g %g", i, y[i], yn[i], yb[i])
		}
	}
	// λ = xᵀy.
	want := 0.0
	for i := range x {
		want += x[i] * y[i]
	}
	if got := Lambda(a, x); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Lambda = %g, want %g", got, want)
	}
}

func TestFacadeParallelPipeline(t *testing.T) {
	part, err := NewPartition(2)
	if err != nil {
		t.Fatal(err)
	}
	b := 6
	n := part.M * b
	a := RandomTensor(n, 2)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	want := Compute(a, x, nil)
	for _, w := range []Wiring{WiringP2P, WiringAllToAll} {
		res, err := ParallelCompute(a, x, ParallelOptions{Part: part, B: b, Wiring: w})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(res.Y[i]-want[i]) > 1e-9 {
				t.Fatalf("wiring %v differs at %d", w, i)
			}
		}
	}
	base, err := RowBaselineCompute(a, x, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(base.Y[i]-want[i]) > 1e-9 {
			t.Fatalf("baseline differs at %d", i)
		}
	}
}

func TestFacadeEigenAndCP(t *testing.T) {
	// Rank-one eigenpair through the facade.
	v := make([]float64, 12)
	for i := range v {
		v[i] = 1 / math.Sqrt(12)
	}
	a := RankOneTensor(2, v)
	pair, err := PowerMethod(a, EigenOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pair.Lambda-2) > 1e-8 {
		t.Fatalf("lambda = %g", pair.Lambda)
	}
	// CP gradient vanishes at the exact decomposition.
	f := NewFactors(12, 1)
	cbrt2 := math.Cbrt(2.0)
	for i := range v {
		f.Set(i, 0, cbrt2*v[i])
	}
	if g := CPGradient(a, f).FrobeniusNorm(); g > 1e-8 {
		t.Fatalf("gradient at exact fit %g", g)
	}
	if obj := CPObjective(a, f); obj > 1e-10 {
		t.Fatalf("objective at exact fit %g", obj)
	}
}

func TestFacadeCostModelConsistency(t *testing.T) {
	q := 3
	p := Processors(q)
	if p != 30 {
		t.Fatalf("Processors(3) = %d", p)
	}
	n := 120
	if ScheduleSteps(q) != 26 {
		t.Fatalf("ScheduleSteps(3) = %d", ScheduleSteps(q))
	}
	if OptimalWords(n, q) <= 0 || AllToAllWords(n, q) <= OptimalWords(n, q) {
		t.Fatal("cost ordering violated")
	}
	if LowerBoundWords(n, p) > OptimalWords(n, q)+1e-9 {
		// The optimal algorithm cannot beat the lower bound.
		t.Fatalf("lower bound %g above optimal cost %g", LowerBoundWords(n, p), OptimalWords(n, q))
	}
}

func TestFacadeSteinerAccess(t *testing.T) {
	s := SQS8()
	if s.N != 8 || s.NumBlocks() != 14 {
		t.Fatal("SQS8 wrong")
	}
	part, err := NewPartitionFromSteiner(s)
	if err != nil {
		t.Fatal(err)
	}
	if part.P != 14 {
		t.Fatalf("P = %d", part.P)
	}
	sch, err := BuildSchedule(part)
	if err != nil {
		t.Fatal(err)
	}
	if sch.NumSteps() != 12 {
		t.Fatalf("SQS8 schedule steps = %d, want 12 (Figure 1)", sch.NumSteps())
	}
	sys, err := SphericalSteiner(2)
	if err != nil {
		t.Fatal(err)
	}
	if sys.N != 5 {
		t.Fatalf("Spherical(2).N = %d", sys.N)
	}
}

func TestFacadeHypergraph(t *testing.T) {
	a, err := HypergraphTensor(4, [][3]int{{0, 1, 2}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if a.At(2, 1, 0) != 0.5 {
		t.Fatal("edge entry wrong")
	}
	r, err := RandomHypergraphTensor(10, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 10 {
		t.Fatal("dimension wrong")
	}
	if _, _, err := ExtractRankOnes(RandomTensor(5, 5), 1, EigenOptions{Seed: 6, Shift: 10, MaxIter: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSession(t *testing.T) {
	part, err := NewPartition(2)
	if err != nil {
		t.Fatal(err)
	}
	b := 6
	n := part.M * b
	a := RandomTensor(n, 3)
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(float64(i))
	}
	want := Compute(a, x, nil)
	s, err := OpenSession(a, ParallelOptions{Part: part, B: b, MaxCols: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for round := 0; round < 3; round++ {
		res, err := s.Apply(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(res.Y[i]-want[i]) > 1e-9 {
				t.Fatalf("round %d differs at %d", round, i)
			}
		}
	}
	batch, err := s.ApplyBatch([][]float64{x, x})
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range batch.Y {
		for i := range want {
			if math.Abs(col[i]-want[i]) > 1e-9 {
				t.Fatal("batch column differs")
			}
		}
	}
}
