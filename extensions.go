package sttsv

import (
	"math/rand"

	"repro/internal/dsym"
	"repro/internal/hopm"
	"repro/internal/la"
	"repro/internal/mttkrp"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/sparse"
	"repro/internal/steiner"
)

// This file exposes the extensions beyond the paper's core results — the
// two generalizations its §8 names as future work, implemented here:
// symmetric MTTKRP (multi-vector STTSV) and d-dimensional symmetric
// tensors.

// --- symmetric MTTKRP (§8) ---

// MTTKRP computes the symmetric Matricized-Tensor Times Khatri-Rao
// Product Y_iℓ = Σ_jk a_ijk·X_jℓ·X_kℓ in a single fused pass over the
// packed tensor (each column is an STTSV; the tensor is read once for all
// r columns).
func MTTKRP(a *Tensor, x *Factors, stats *Stats) *Factors {
	return mttkrp.Fused(a, x, stats)
}

// MTTKRPColumnwise computes the same result as r independent STTSV calls
// (r passes over the tensor) — the baseline the fused kernel is measured
// against.
func MTTKRPColumnwise(a *Tensor, x *Factors, stats *Stats) *Factors {
	return mttkrp.Columnwise(a, x, stats)
}

// ParallelMTTKRP runs the symmetric MTTKRP on the simulated machine with
// the tetrahedral partition: the same schedule as Algorithm 5 carrying all
// r columns per message, so bandwidth is exactly r× the single-vector cost
// at unchanged message counts.
func ParallelMTTKRP(a *Tensor, x *Factors, r int, opts ParallelOptions) (*Factors, *ParallelResult, error) {
	return parallel.RunMTTKRP(a, x, r, opts)
}

// --- d-dimensional symmetric tensors (§8) ---

// DTensor is a fully symmetric order-d tensor of dimension n in packed
// multiset storage (C(n+d−1, d) values); the d=3 layout matches Tensor.
type DTensor = dsym.Tensor

// NewDTensor returns the zero symmetric order-d tensor of dimension n.
func NewDTensor(n, d int) *DTensor { return dsym.New(n, d) }

// RandomDTensor fills the stored entries with uniform(-1,1) values drawn
// deterministically from seed.
func RandomDTensor(n, d int, seed int64) *DTensor {
	return dsym.Random(n, d, rand.New(rand.NewSource(seed)))
}

// RankOneDTensor returns w·x^{∘d}.
func RankOneDTensor(w float64, x []float64, d int) *DTensor { return dsym.RankOne(w, x, d) }

// DCompute evaluates the d-dimensional STTSV y = A ×₂x ⋯ ×_d x with the
// symmetry-exploiting generalization of Algorithm 4 (≈ d·n^d/d! merged
// operations instead of the naive n^d).
func DCompute(t *DTensor, x []float64) []float64 { return dsym.Apply(t, x, nil) }

// DLowerBoundWords returns the d-dimensional generalization of the
// Theorem 5.2 communication lower bound: 2·(d!·C(n,d)/P)^{1/d} − 2n/P.
func DLowerBoundWords(n, d, p int) float64 { return dsym.LowerBoundWords(n, d, p) }

// DPowerMethod runs the order-d higher-order power method on t, returning
// the eigenvalue estimate, unit vector, iteration count and convergence
// flag.
func DPowerMethod(t *DTensor, seed int64, shift float64, maxIter int, tol float64) (float64, []float64, int, bool) {
	return dsym.PowerMethod(t, seed, shift, maxIter, tol)
}

// --- sequence approach and extra Steiner families ---

// SequenceBaselineCompute runs the §8 two-step approach (M = A ×₃ x in
// parallel, then y = M·x) on the simulated machine: ≈ 2n³ elementary
// operations and Ω(n) words per processor — the trade-off Algorithm 5
// avoids.
func SequenceBaselineCompute(a *Tensor, x []float64, p int) (*ParallelResult, error) {
	return parallel.RunSequenceBaseline(a, x, p)
}

// SQSDoubled returns the Steiner quadruple system SQS(8·2^k) built by the
// classical doubling construction, extending the machine sizes the
// tetrahedral partition supports to P = 14, 140, 1240, …
func SQSDoubled(k int) (*SteinerSystem, error) { return steiner.SQSDoubled(k) }

// --- ergonomics ---

// FactorsFromColumns builds an n×r factor matrix from column vectors.
func FactorsFromColumns(cols [][]float64) *Factors {
	if len(cols) == 0 {
		return la.NewMatrix(0, 0)
	}
	m := la.NewMatrix(len(cols[0]), len(cols))
	for l, c := range cols {
		m.SetCol(l, c)
	}
	return m
}

// --- sparse tensors and additional eigensolvers ---

// SparseTensor is a symmetric 3-tensor in coordinate format: O(nnz) memory
// and STTSV work, the natural representation for hypergraph adjacency
// tensors.
type SparseTensor = sparse.Tensor

// SparseEntry is one stored nonzero of a SparseTensor.
type SparseEntry = sparse.Entry

// NewSparseTensor builds a sparse symmetric tensor from coordinate data
// (indices in any order; one entry per index multiset).
func NewSparseTensor(n int, coords []SparseEntry) (*SparseTensor, error) {
	return sparse.New(n, coords)
}

// SparseFromHypergraph builds the sparse adjacency tensor of a 3-uniform
// hypergraph.
func SparseFromHypergraph(n int, edges [][3]int) (*SparseTensor, error) {
	return sparse.FromHypergraph(n, edges)
}

// SparseFromTensor sparsifies packed storage, keeping |value| > threshold.
func SparseFromTensor(a *Tensor, threshold float64) *SparseTensor {
	return sparse.FromPacked(a, threshold)
}

// SparseCompute evaluates y = A ×₂x ×₃x in O(nnz) work.
func SparseCompute(a *SparseTensor, x []float64, stats *Stats) []float64 {
	return a.Apply(x, stats)
}

// SparsePowerMethod runs the higher-order power method on a sparse tensor.
func SparsePowerMethod(a *SparseTensor, opts EigenOptions) (*Eigenpair, error) {
	return hopm.PowerMethod(a.STTSV(), a.N, opts)
}

// HEigenpair is an H-eigenpair candidate (A×₂x×₃x = λ·x^[2], x >= 0).
type HEigenpair = hopm.HEigenpair

// HEigenPowerMethod runs the Ng–Qi–Zhou iteration for the largest
// H-eigenvalue of a nonnegative symmetric tensor — another of the §1
// applications whose bottleneck is the STTSV kernel.
func HEigenPowerMethod(a *Tensor, maxIter int, tol float64) (*HEigenpair, error) {
	return hopm.HEigenPowerMethod(hopm.PackedSTTSV(a), a.N, maxIter, tol)
}

// AdaptivePowerMethod runs SS-HOPM with a dynamically shrinking shift:
// as robust as the safe static shift, usually far fewer iterations.
func AdaptivePowerMethod(a *Tensor, initialShift float64, opts EigenOptions) (*Eigenpair, error) {
	return hopm.AdaptivePowerMethod(hopm.PackedSTTSV(a), a.N, initialShift, opts)
}

// EnumerateEigenpairs collects distinct converged Z-eigenpairs from many
// power-method restarts, sorted by decreasing |λ|.
func EnumerateEigenpairs(a *Tensor, restarts int, opts EigenOptions) ([]*Eigenpair, error) {
	return hopm.EnumerateEigenpairs(hopm.PackedSTTSV(a), a.N, restarts, opts, 1e-6)
}

// --- fully distributed power method ---

// PowerOptions configures the distributed higher-order power method.
type PowerOptions = parallel.PowerOptions

// EigenResult reports a distributed power-method run, including its
// communication meters.
type EigenResult = parallel.EigenResult

// DistributedPowerMethod runs Algorithm 1 end-to-end on the simulated
// machine: the iterate stays distributed in the tetrahedral chunk layout
// for the whole run, each iteration costing two communication-optimal
// exchanges plus a scalar all-reduce.
func DistributedPowerMethod(a *Tensor, opts ParallelOptions, po PowerOptions) (*EigenResult, error) {
	return parallel.RunPowerMethod(a, opts, po)
}

// --- machine planning ---

// MachineConfig is one admissible machine configuration with predicted
// costs (see internal/plan).
type MachineConfig = plan.Config

// EnumerateMachines lists every admissible tetrahedral-partition machine
// with P <= maxP, costed for problem dimension n.
func EnumerateMachines(n, maxP int) ([]MachineConfig, error) { return plan.Enumerate(n, maxP) }

// BestMachine recommends the configuration with the smallest predicted
// per-processor communication within the processor budget.
func BestMachine(n, maxP int) (MachineConfig, error) { return plan.Best(n, maxP) }
