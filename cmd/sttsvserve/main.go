// Command sttsvserve is the long-running multi-tenant STTSV server: it
// packs one random symmetric tensor, opens a serving pool (N resident
// sessions over the shared packed blocks, dual-trigger request batching)
// and serves y = A ×₂ x ×₃ x over HTTP/JSON. Concurrent requests from
// independent tenants are coalesced into multi-column ApplyBatch calls —
// r simultaneous users cost r× the words but 1× the messages of a solo
// apply — and every response is bit-identical to a solo Session.Apply.
//
// Besides the default dense tensor, the server can host the sparse and
// low-rank fast paths: -workload hypergraph serves a random 3-uniform
// hypergraph adjacency tensor through a pool of sparse sessions (packed
// once, O(nnz) storage — n ≥ 10⁶ is practical), and -workload cp serves
// a factored rank-r CP operator whose parallel apply moves O(r) words
// per rank regardless of n.
//
// Usage:
//
//	sttsvserve                          # q=3, b=4 tensor on :8347
//	sttsvserve -q 4 -b 6 -sessions 4    # bigger machine, four sessions
//	sttsvserve -maxcols 8 -maxwait 2ms  # batching policy
//	sttsvserve -workload hypergraph -n 1000000 -edges 10000000
//	sttsvserve -workload cp -n 1000000 -rank 16 -cpranks 8
//	sttsvserve -metrics serve.jsonl -metrics-interval 10s
//
// Endpoints:
//
//	POST /v1/apply    {"tenant":"acme","x":[...]} → result + batch stats
//	GET  /v1/metrics  serving counters as JSONL (obs serving schema)
//	GET  /v1/info     serving configuration
//
// A full admission queue answers 429 with a Retry-After header derived
// from the pool's measured batch service time. On SIGINT/SIGTERM the
// server stops admitting, drains every queued request, and exits.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/backendflag"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/serve"
	"repro/internal/sparse"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

type applyRequest struct {
	Tenant string    `json:"tenant"`
	X      []float64 `json:"x"`
}

type applyResponse struct {
	Y           []float64 `json:"y"`
	BatchCols   int       `json:"batch_cols"`
	Trigger     string    `json:"trigger"`
	QueueWaitUs float64   `json:"queue_wait_us"`
	ServiceUs   float64   `json:"service_us"`
	SentWords   int64     `json:"sent_words"`
	SentMsgs    float64   `json:"sent_msgs"`
	Steps       int       `json:"steps"`
}

type errorResponse struct {
	Error        string  `json:"error"`
	QueueDepth   int     `json:"queue_depth,omitempty"`
	QueueCap     int     `json:"queue_cap,omitempty"`
	RetryAfterMs float64 `json:"retry_after_ms,omitempty"`
}

type infoResponse struct {
	N         int     `json:"n"`
	Q         int     `json:"q"`
	P         int     `json:"p"`
	B         int     `json:"b"`
	Wiring    string  `json:"wiring"`
	Sessions  int     `json:"sessions"`
	MaxCols   int     `json:"max_cols"`
	MaxWaitUs float64 `json:"max_wait_us"`
	QueueCap  int     `json:"queue_cap"`
	Workload  string  `json:"workload"`
	NNZ       int     `json:"nnz,omitempty"`
	Rank      int     `json:"rank,omitempty"`
}

type server struct {
	pool *serve.Pool
	info infoResponse
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *server) handleApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req applyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad JSON: " + err.Error()})
		return
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get("X-Tenant")
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	resp, err := s.pool.Apply(req.Tenant, req.X)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, applyResponse{
			Y:           resp.Y,
			BatchCols:   resp.BatchCols,
			Trigger:     resp.Trigger.String(),
			QueueWaitUs: float64(resp.QueueWait.Nanoseconds()) / 1e3,
			ServiceUs:   float64(resp.Service.Nanoseconds()) / 1e3,
			SentWords:   resp.SentWords(),
			SentMsgs:    resp.SentMsgs(),
			Steps:       resp.Steps,
		})
	case errors.Is(err, serve.ErrPoolClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, parallel.ErrSessionBusy):
		var be *serve.BusyError
		resp := errorResponse{Error: err.Error()}
		if errors.As(err, &be) {
			resp.QueueDepth = be.QueueDepth
			resp.QueueCap = be.QueueCap
			resp.RetryAfterMs = float64(be.RetryAfter.Nanoseconds()) / 1e6
			// Retry-After is whole seconds; round up so the hint is never
			// an immediate retry into the same full queue.
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(math.Ceil(be.RetryAfter.Seconds()))))
		}
		writeJSON(w, http.StatusTooManyRequests, resp)
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.pool.Metrics()
	w.Header().Set("Content-Type", "application/jsonl")
	if err := obs.WriteServingMetricsJSONL(w, &snap); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func (s *server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.info)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sttsvserve:", err)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	q := flag.Int("q", 3, "prime power for the spherical tetrahedral partition")
	b := flag.Int("b", 4, "block edge (n = m·b)")
	seed := flag.Int64("seed", 1, "tensor random seed")
	wiring := flag.String("wiring", "p2p", "exchange wiring: p2p or alltoall")
	sessions := flag.Int("sessions", 2, "pool size: resident sessions sharing the packed tensor")
	maxCols := flag.Int("maxcols", 8, "size flush trigger: columns per coalesced batch")
	maxWait := flag.Duration("maxwait", 2*time.Millisecond, "latency flush trigger: max batching delay for the oldest queued request")
	queueCap := flag.Int("queue", 0, "admission queue bound (0 = 4 × sessions × maxcols)")
	metricsOut := flag.String("metrics", "", "append the final serving metrics snapshot as JSONL to this file on shutdown")
	metricsInterval := flag.Duration("metrics-interval", 0, "with -metrics: additionally append a snapshot every interval while serving (JSONL, obs serving schema)")
	workload := flag.String("workload", "dense", "served operator: dense (random tensor), hypergraph (sparse sessions over a random 3-uniform adjacency tensor), or cp (factored rank-r low-rank operator)")
	nFlag := flag.Int("n", 0, "with -workload hypergraph|cp: problem dimension (block edge is derived; 0 = m·b from -q/-b)")
	edges := flag.Int("edges", 0, "with -workload hypergraph: hyperedge count (0 = 10·n)")
	cpRank := flag.Int("rank", 16, "with -workload cp: CP rank r")
	cpRanks := flag.Int("cpranks", 8, "with -workload cp: parallel ranks per session")
	backend := backendflag.Register(flag.CommandLine)
	flag.Parse()
	if err := backend.Validate(false); err != nil {
		fatal(err)
	}
	if *metricsInterval > 0 && *metricsOut == "" {
		fatal(fmt.Errorf("-metrics-interval requires -metrics"))
	}

	part, err := partition.NewSpherical(*q)
	if err != nil {
		fatal(err)
	}
	wr := parallel.WiringP2P
	switch *wiring {
	case "p2p":
	case "alltoall":
		wr = parallel.WiringAllToAll
	default:
		fatal(fmt.Errorf("unknown wiring %q", *wiring))
	}
	n := part.M * *b
	if *nFlag > 0 {
		if *workload == "dense" {
			fatal(fmt.Errorf("-n applies to -workload hypergraph|cp only (dense: n = m·b)"))
		}
		n = *nFlag
		// Derive the block edge covering n on the chosen partition.
		*b = (n + part.M - 1) / part.M
	}
	if *queueCap < 1 {
		*queueCap = 4 * *sessions * *maxCols // mirror the pool default so /v1/info reports the effective bound
	}

	sessOpts := parallel.Options{Part: part, B: *b, Wiring: wr}
	backend.Apply(&sessOpts.Machine)
	poolOpts := serve.Options{
		Session:  sessOpts,
		Sessions: *sessions,
		MaxCols:  *maxCols,
		MaxWait:  *maxWait,
		QueueCap: *queueCap,
	}
	info := infoResponse{
		N: n, Q: *q, P: part.P, B: *b, Wiring: *wiring,
		Sessions: *sessions, MaxCols: *maxCols,
		MaxWaitUs: float64(maxWait.Nanoseconds()) / 1e3,
		QueueCap:  *queueCap,
		Workload:  *workload,
	}
	var pool *serve.Pool
	switch *workload {
	case "dense":
		rng := rand.New(rand.NewSource(*seed))
		pool, err = serve.Open(tensor.Random(n, rng), poolOpts)
	case "hypergraph":
		e := *edges
		if e < 1 {
			e = 10 * n
		}
		var sp *sparse.Tensor
		sp, err = sparse.RandomHypergraph(n, e, *seed)
		if err != nil {
			fatal(err)
		}
		info.NNZ = sp.NNZ()
		pool, err = serve.OpenSparse(sp, poolOpts)
	case "cp":
		rng := rand.New(rand.NewSource(*seed))
		weights := make([]float64, *cpRank)
		vectors := make([][]float64, *cpRank)
		for k := range vectors {
			weights[k] = rng.NormFloat64()
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			vectors[k] = v
		}
		var op *sttsv.CPOperator
		op, err = sttsv.NewCPOperator(weights, vectors)
		if err != nil {
			fatal(err)
		}
		info.Rank = *cpRank
		info.P = *cpRanks
		pool, err = serve.OpenCP(op, *cpRanks, poolOpts)
	default:
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}
	if err != nil {
		fatal(err)
	}

	srv := &server{pool: pool, info: info}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/apply", srv.handleApply)
	mux.HandleFunc("/v1/metrics", srv.handleMetrics)
	mux.HandleFunc("/v1/info", srv.handleInfo)
	hs := &http.Server{Addr: *addr, Handler: mux}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
		fmt.Println("sttsvserve: draining")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()

	// Periodic metrics appender: one snapshot per interval, same JSONL
	// schema as the shutdown export and /v1/metrics, so a scraper or a
	// post-mortem reads one stream. Stops with the HTTP server.
	tickerDone := make(chan struct{})
	if *metricsInterval > 0 {
		go func() {
			defer close(tickerDone)
			t := time.NewTicker(*metricsInterval)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					snap := pool.Metrics()
					if err := appendMetrics(*metricsOut, &snap); err != nil {
						fmt.Fprintln(os.Stderr, "sttsvserve: metrics append:", err)
					}
				}
			}
		}()
	} else {
		close(tickerDone)
	}

	switch *workload {
	case "cp":
		fmt.Printf("sttsvserve: cp n=%d r=%d (P=%d), %d sessions, batch ≤%d cols / %v, listening on %s\n",
			n, *cpRank, *cpRanks, *sessions, *maxCols, *maxWait, *addr)
	case "hypergraph":
		fmt.Printf("sttsvserve: hypergraph n=%d nnz=%d (q=%d, P=%d, b=%d, %s), %d sessions, batch ≤%d cols / %v, listening on %s\n",
			n, info.NNZ, *q, part.P, *b, *wiring, *sessions, *maxCols, *maxWait, *addr)
	default:
		fmt.Printf("sttsvserve: n=%d (q=%d, P=%d, b=%d, %s), %d sessions, batch ≤%d cols / %v, listening on %s\n",
			n, *q, part.P, *b, *wiring, *sessions, *maxCols, *maxWait, *addr)
	}
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done

	if err := pool.Close(); err != nil {
		fatal(err)
	}
	snap := pool.Metrics()
	fmt.Printf("sttsvserve: served %d requests in %d batches (avg occupancy %.2f, %d rejected)\n",
		snap.Requests, snap.Batches, snap.AvgOccupancy, snap.Rejected)
	<-tickerDone
	if *metricsOut != "" {
		if err := appendMetrics(*metricsOut, &snap); err != nil {
			fatal(err)
		}
		fmt.Printf("sttsvserve: metrics appended to %s\n", *metricsOut)
	}
}

// appendMetrics appends one serving snapshot to path as a JSONL line
// (obs serving schema) — the shared sink of the interval ticker, the
// shutdown export, and manual scrapes of /v1/metrics.
func appendMetrics(path string, snap *obs.ServingSnapshot) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := obs.WriteServingMetricsJSONL(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
