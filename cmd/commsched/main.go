// Command commsched builds and prints the point-to-point communication
// schedule of §7.2 in the style of the paper's Figure 1: one line per
// step, listing the simultaneous processor-to-processor transfers.
//
// Usage:
//
//	commsched -q 3      # 26-step schedule for the spherical system, P=30
//	commsched -sqs8     # the 12-step Figure 1 schedule, P=14
//	commsched -q 2 -v   # also list the row blocks each message carries
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/steiner"
)

func main() {
	q := flag.Int("q", 3, "prime power q for the spherical Steiner system")
	sqs8 := flag.Bool("sqs8", false, "use the Steiner (8,4,3) system (Figure 1) instead of -q")
	verbose := flag.Bool("v", false, "list the row blocks carried by each transfer")
	flag.Parse()

	var part *partition.Tetrahedral
	var err error
	if *sqs8 {
		part, err = partition.New(steiner.SQS8())
	} else {
		part, err = partition.NewSpherical(*q)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "commsched:", err)
		os.Exit(1)
	}
	sched, err := schedule.Build(part)
	if err != nil {
		fmt.Fprintln(os.Stderr, "commsched:", err)
		os.Exit(1)
	}
	if err := sched.Validate(part); err != nil {
		fmt.Fprintln(os.Stderr, "commsched: invalid schedule:", err)
		os.Exit(1)
	}

	fmt.Printf("Point-to-point schedule: P=%d processors, %d steps (all-to-all would use %d)\n",
		part.P, sched.NumSteps(), part.P-1)
	if !*sqs8 {
		fmt.Printf("Theory (q³/2+3q²/2−1 for q=%d): %d steps\n", *q, schedule.TheoreticalSteps(*q))
	}
	fmt.Println()
	for si, step := range sched.Steps {
		var parts []string
		for _, tr := range step {
			if *verbose {
				rows := make([]string, len(tr.Rows))
				for i, r := range tr.Rows {
					rows[i] = fmt.Sprint(r + 1)
				}
				parts = append(parts, fmt.Sprintf("%d->%d[%s]", tr.From+1, tr.To+1, strings.Join(rows, ",")))
			} else {
				parts = append(parts, fmt.Sprintf("%d->%d", tr.From+1, tr.To+1))
			}
		}
		fmt.Printf("step %2d: %s\n", si+1, strings.Join(parts, "  "))
	}
}
