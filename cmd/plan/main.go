// Command plan enumerates the admissible machine configurations for the
// tetrahedral-partition STTSV up to a processor budget and costs them for
// a given problem dimension, recommending the cheapest:
//
//	plan -n 1000 -maxp 400
//
// The predicted words/processor match the metered simulator runs exactly
// when the vector chunks divide evenly (cross-validated in
// internal/plan's tests).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/plan"
)

func main() {
	n := flag.Int("n", 1000, "problem dimension")
	maxP := flag.Int("maxp", 400, "processor budget")
	flag.Parse()

	cfgs, err := plan.Enumerate(*n, *maxP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plan:", err)
		os.Exit(1)
	}
	if len(cfgs) == 0 {
		fmt.Fprintf(os.Stderr, "plan: no admissible configuration with P <= %d\n", *maxP)
		os.Exit(1)
	}
	best, err := plan.Best(*n, *maxP)
	if err != nil {
		fmt.Fprintln(os.Stderr, "plan:", err)
		os.Exit(1)
	}

	fmt.Printf("machine configurations for n=%d, P <= %d\n\n", *n, *maxP)
	fmt.Printf("%-12s %-5s %4s %5s %7s %8s %12s %12s %7s %14s\n",
		"family", "q/k", "m", "P", "b", "padded", "words/proc", "lower bound", "steps", "tensor wds/p")
	for _, c := range cfgs {
		marker := " "
		if c == best {
			marker = "*"
		}
		fmt.Printf("%-12s %-5d %4d %5d %7d %8d %12.1f %12.1f %7d %14.0f %s\n",
			c.Family, c.Q, c.M, c.P, c.BlockEdge, c.PaddedN,
			c.Words, c.LowerBound, c.Steps, c.TensorWordsPerProc, marker)
	}
	fmt.Printf("\n* recommended: %v machine with P=%d (predicted %.1f words/processor, bound %.1f)\n",
		best.Family, best.P, best.Words, best.LowerBound)
}
