// Distributed modes of sttsvrun: with -backend=tcp|unix the power method
// can run as P real OS processes instead of P goroutines.
//
//	sttsvrun -q 2 -n 30 -backend=tcp -dist        # coordinator: forks one
//	                                              # process per rank, supervises
//	sttsvrun -q 2 -n 30 -backend=tcp -rank=3 \    # one rank process (forked by
//	         -addr=127.0.0.1:41234                # the coordinator; rarely by hand)
//
// The coordinator re-execs its own binary with -rank=K and the identical
// problem flags, so every process derives the same tensor, partition and
// start vector from the scalars alone. A rank process killed mid-run
// (kill -9) is respawned and the survivors replay from the last globally
// committed checkpoint in a new wire epoch; the committed result is
// bit-identical to the in-process simulator, which the coordinator
// verifies by default after the distributed run.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"

	"repro/internal/backendflag"
	"repro/internal/cluster"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// runRankMode hosts one machine rank: the whole process life is
// cluster.RunRank's resume/ready/go/iterate loop against the coordinator
// at -addr.
func runRankMode(bf *backendflag.Options, cfg cluster.Config) int {
	err := cluster.RunRank(cluster.RankOptions{
		Config:  cfg,
		CtlAddr: bf.Addr,
		Rank:    bf.Rank,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sttsvrun: rank %d: %v\n", bf.Rank, err)
		return 1
	}
	return 0
}

// rankProc adapts an exec'd rank process to cluster.Proc.
type rankProc struct{ cmd *exec.Cmd }

func (p rankProc) Kill() error { return p.cmd.Process.Kill() }
func (p rankProc) Wait() error { return p.cmd.Wait() }

// runDistMode is the coordinator: it forks one -rank=K re-exec of this
// binary per rank, supervises the distributed power method, and checks
// the committed outcome bit for bit against the in-process simulator.
func runDistMode(bf *backendflag.Options, cfg cluster.Config) int {
	if cfg.CkptDir == "" {
		dir, err := os.MkdirTemp("", "sttsv-ckpt")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sttsvrun:", err)
			return 1
		}
		defer os.RemoveAll(dir)
		cfg.CkptDir = dir
	}
	ctlAddr := bf.Addr
	if ctlAddr == "" && cfg.Network == "unix" {
		dir, err := os.MkdirTemp("", "sttsv-ctl")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sttsvrun:", err)
			return 1
		}
		defer os.RemoveAll(dir)
		ctlAddr = filepath.Join(dir, "ctl.sock")
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttsvrun:", err)
		return 1
	}

	var resolved string // control address the forked ranks dial
	out, err := cluster.Supervise(cluster.SuperviseOptions{
		Config:   cfg,
		CtlAddr:  ctlAddr,
		OnListen: func(addr string) { resolved = addr },
		Spawn: func(rank int) (cluster.Proc, error) {
			args := []string{
				"-backend=" + cfg.Network,
				"-addr=" + resolved,
				"-rank=" + strconv.Itoa(rank),
				"-q=" + strconv.Itoa(cfg.Q),
				"-n=" + strconv.Itoa(cfg.N),
				"-seed=" + strconv.FormatInt(cfg.Seed, 10),
				"-maxiter=" + strconv.Itoa(cfg.MaxIter),
				"-tol=" + strconv.FormatFloat(cfg.Tol, 'g', -1, 64),
				"-ckptdir=" + cfg.CkptDir,
			}
			if cfg.Faults != "" {
				args = append(args, "-faults="+cfg.Faults)
			}
			if bf.Hosts != "" {
				args = append(args, "-hosts="+bf.Hosts)
			}
			cmd := exec.Command(exe, args...)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return nil, err
			}
			return rankProc{cmd}, nil
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttsvrun: dist:", err)
		return 1
	}
	part, err := partition.NewSpherical(cfg.Q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttsvrun:", err)
		return 1
	}
	fmt.Printf("distributed power method (%s, %d processes): lambda=%.8g iterations=%d converged=%v respawns=%d epoch=%d\n",
		cfg.Network, part.P, out.Lambda, out.Iterations, out.Converged, out.Respawns, out.FinalEpoch)

	ref, err := simPowerReference(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttsvrun: sim reference:", err)
		return 1
	}
	exact := math.Float64bits(out.Lambda) == math.Float64bits(ref.Lambda) &&
		out.Iterations == ref.Iterations && out.Converged == ref.Converged &&
		len(out.X) == len(ref.X)
	if exact {
		for i := range out.X {
			if out.X[i] != ref.X[i] {
				exact = false
				break
			}
		}
	}
	fmt.Printf("  distributed lambda=%v  sim lambda=%v  bit-identical=%v\n", out.Lambda, ref.Lambda, exact)
	if !exact {
		fmt.Fprintln(os.Stderr, "sttsvrun: distributed outcome diverges from the in-process simulator")
		return 1
	}
	return 0
}

// simPowerReference runs the identical problem on the in-process
// simulated machine, the baseline the distributed run must match bit for
// bit.
func simPowerReference(cfg cluster.Config) (*parallel.EigenResult, error) {
	part, err := partition.NewSpherical(cfg.Q)
	if err != nil {
		return nil, err
	}
	b := (cfg.N + part.M - 1) / part.M
	a := tensor.Random(cfg.N, rand.New(rand.NewSource(cfg.Seed)))
	return parallel.RunPowerMethod(a, parallel.Options{
		Part: part, B: b, Wiring: parallel.WiringP2P,
	}, parallel.PowerOptions{MaxIter: cfg.MaxIter, Tol: cfg.Tol, Seed: cfg.Seed})
}
