// Command sttsvrun exercises the STTSV kernels and the higher-order power
// method on synthetic symmetric tensors from the command line.
//
// Usage:
//
//	sttsvrun -n 128                 # compare Algorithms 3 and 4 on a random tensor
//	sttsvrun -n 120 -q 3            # also run the simulated parallel Algorithm 5
//	sttsvrun -n 64 -hopm            # find a Z-eigenpair with (SS-)HOPM
//	sttsvrun -n 64 -hopm -shift 10  # shifted power method
//
// With -q, a fault schedule can be injected into the simulated machine;
// the run then repeats Algorithm 5 over the reliable transport and checks
// that results and logical communication meters match the fault-free run,
// reporting the wire-level recovery overhead:
//
//	sttsvrun -n 120 -q 3 -faults seed=7,drop=0.2,reorder=0.1
//
// The simulated runs can be traced and replayed under an α-β-γ time
// model; each wiring writes its own file (a .p2p / .all-to-all suffix is
// inserted before the extension):
//
//	sttsvrun -n 120 -q 3 -trace trace.json      # chrome://tracing / Perfetto
//	sttsvrun -n 120 -q 3 -events run.jsonl      # raw events, for sttsvtrace
//	sttsvrun -n 120 -q 3 -timeline              # replay summary + ASCII Gantt
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/backendflag"
	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/fault"
	"repro/internal/hopm"
	"repro/internal/machine"
	"repro/internal/netwire"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// obsConfig gathers the observability flags applied to the parallel runs.
type obsConfig struct {
	trace    string  // Chrome trace_event JSON path
	events   string  // raw trace JSONL path
	metrics  string  // flat metrics JSONL path
	timeline bool    // print replay summary + Gantt
	gate     float64 // fail if measured wall-clock exceeds gate × predicted makespan
	model    obs.TimeModel
}

func (o *obsConfig) active() bool {
	return o.trace != "" || o.events != "" || o.metrics != "" || o.timeline || o.gate > 0
}

func main() {
	n := flag.Int("n", 128, "tensor dimension")
	seed := flag.Int64("seed", 1, "random seed")
	q := flag.Int("q", 0, "also run parallel Algorithm 5 with this prime power (0 = skip)")
	faults := flag.String("faults", "", "fault schedule for the simulated machine (with -q), e.g. seed=7,drop=0.2,dup=0.1,reorder=0.1,corrupt=0.05,stall=0.01,crash=2@40")
	rec := flag.Bool("recover", false, "run the faulted configuration through a crash-recovering session: rank deaths are respawned and replayed instead of failing the run (with -q and -faults)")
	runHopm := flag.Bool("hopm", false, "run the higher-order power method")
	shift := flag.Float64("shift", 0, "SS-HOPM shift (with -hopm)")
	bf := backendflag.RegisterDistributed(flag.CommandLine)
	dist := flag.Bool("dist", false, "coordinator mode: fork one -rank=K process per rank and supervise a distributed power method (requires -q and -backend=tcp|unix)")
	ckptDir := flag.String("ckptdir", "", "checkpoint directory for distributed runs (default: a temporary directory)")
	maxIter := flag.Int("maxiter", 200, "power-method iteration bound (distributed modes)")
	tol := flag.Float64("tol", 1e-12, "power-method convergence tolerance (distributed modes)")
	def := obs.DefaultTimeModel()
	var oc obsConfig
	flag.StringVar(&oc.trace, "trace", "", "write a Chrome trace_event JSON of the replayed run (requires -q; load in chrome://tracing or Perfetto)")
	flag.StringVar(&oc.events, "events", "", "write the raw trace events as JSONL (requires -q; analyze with sttsvtrace)")
	flag.StringVar(&oc.metrics, "metrics", "", "write flat per-phase/per-rank metrics JSONL (requires -q)")
	flag.BoolVar(&oc.timeline, "timeline", false, "print the replayed α-β-γ timeline summary and Gantt chart (requires -q)")
	flag.Float64Var(&oc.gate, "gate-makespan", 0, "fail unless measured wall-clock makespan stays within this factor of the α-β-γ replay prediction (requires -q; 0 disables)")
	flag.Float64Var(&oc.model.Alpha, "alpha", def.Alpha, "replay time model: per-message latency in seconds")
	flag.Float64Var(&oc.model.Beta, "beta", def.Beta, "replay time model: per-word time in seconds")
	flag.Float64Var(&oc.model.Gamma, "gamma", def.Gamma, "replay time model: per-ternary-multiplication time in seconds")
	flag.Parse()

	if err := bf.Validate(true); err != nil {
		fmt.Fprintln(os.Stderr, "sttsvrun:", err)
		os.Exit(2)
	}
	if bf.Worker() || *dist {
		if *q <= 0 {
			fmt.Fprintln(os.Stderr, "sttsvrun: distributed modes require -q (the partition defines the process count)")
			os.Exit(2)
		}
		if *dist && bf.Sim() {
			fmt.Fprintln(os.Stderr, "sttsvrun: -dist requires -backend=tcp or -backend=unix")
			os.Exit(2)
		}
		ccfg := cluster.Config{
			Network: bf.Backend, Q: *q, N: *n, Seed: *seed,
			MaxIter: *maxIter, Tol: *tol, CkptDir: *ckptDir,
			Faults: *faults,
		}
		if bf.Hosts != "" {
			hosts, err := netwire.LoadHosts(bf.Hosts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sttsvrun: -hosts:", err)
				os.Exit(2)
			}
			ccfg.Hosts = hosts
		}
		if bf.Worker() {
			os.Exit(runRankMode(bf, ccfg))
		}
		os.Exit(runDistMode(bf, ccfg))
	}

	if oc.active() && *q <= 0 {
		fmt.Fprintln(os.Stderr, "sttsvrun: -trace/-events/-metrics/-timeline require -q (they observe the simulated machine)")
		os.Exit(2)
	}

	plan, err := fault.ParsePlan(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttsvrun: -faults:", err)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	fmt.Printf("building random symmetric tensor, n=%d (%d packed entries)\n",
		*n, (*n)*(*n+1)*(*n+2)/6)
	a := tensor.Random(*n, rng)
	x := make([]float64, *n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	var stNaive, stPacked sttsv.Stats
	t0 := time.Now()
	yn := sttsv.Naive(a.Dense(), x, &stNaive)
	tNaive := time.Since(t0)
	t0 = time.Now()
	yp := sttsv.Packed(a, x, &stPacked)
	tPacked := time.Since(t0)

	maxDiff := 0.0
	for i := range yn {
		if d := abs(yn[i] - yp[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("Algorithm 3 (naive):     %12d ternary mults  %v\n", stNaive.TernaryMults, tNaive)
	fmt.Printf("Algorithm 4 (symmetric): %12d ternary mults  %v\n", stPacked.TernaryMults, tPacked)
	fmt.Printf("agreement: max |Δy| = %.3g\n", maxDiff)

	if *rec && !plan.Active() {
		fmt.Fprintln(os.Stderr, "sttsvrun: -recover requires -faults (it changes how fault-injected runs handle crashes)")
		os.Exit(2)
	}
	if *q > 0 {
		runParallel(a, x, yp, *q, plan, *rec, &oc, bf)
	} else if plan.Active() {
		fmt.Fprintln(os.Stderr, "sttsvrun: -faults requires -q (faults apply to the simulated machine)")
		os.Exit(2)
	}
	if *runHopm {
		pair, err := hopm.PowerMethod(hopm.PackedSTTSV(a), *n, hopm.Options{Seed: *seed, Shift: *shift, MaxIter: 10000})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sttsvrun:", err)
			os.Exit(1)
		}
		fmt.Printf("HOPM: lambda=%.8g iterations=%d residual=%.3g converged=%v\n",
			pair.Lambda, pair.Iterations, pair.Residual, pair.Converged)
	}
}

func runParallel(a *tensor.Symmetric, x, want []float64, q int, plan fault.Plan, recoverCrash bool, oc *obsConfig, bf *backendflag.Options) {
	part, err := partition.NewSpherical(q)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttsvrun:", err)
		os.Exit(1)
	}
	n := len(x)
	b := (n + part.M - 1) / part.M
	fmt.Printf("\nparallel Algorithm 5: q=%d, P=%d, m=%d, b=%d (padded n=%d, backend=%s)\n",
		q, part.P, part.M, b, part.M*b, bf.Backend)
	for _, wiring := range []parallel.Wiring{parallel.WiringP2P, parallel.WiringAllToAll} {
		var rec obs.Recorder
		var cfg machine.RunConfig
		if oc.active() {
			cfg.Observer = rec.Observer()
		}
		bf.Apply(&cfg)
		res, err := parallel.Run(a, x, parallel.Options{Part: part, B: b, Wiring: wiring, Machine: cfg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sttsvrun:", err)
			os.Exit(1)
		}
		maxDiff := 0.0
		for i := range want {
			if d := abs(res.Y[i] - want[i]); d > maxDiff {
				maxDiff = d
			}
		}
		fmt.Printf("  %-11s steps/phase=%-3d max words sent=%-6d (lower bound %.1f)  max |Δy| = %.3g\n",
			wiring, res.Steps, res.Report.MaxSentWords(),
			costmodel.LowerBoundWords(n, part.P), maxDiff)
		fmt.Printf("              %s\n", res.Report)
		if oc.active() {
			exportObservability(rec.Trace(), res, wiring, oc)
		}
		if plan.Active() {
			runFaulted(a, x, wiring, part, b, plan, recoverCrash, res, bf)
		}
	}
}

// exportObservability replays one wiring's trace and writes/prints the
// requested artifacts.
func exportObservability(tr *obs.Trace, res *parallel.Result, wiring parallel.Wiring, oc *obsConfig) {
	if err := tr.CheckAgainstReport(res.Report); err != nil {
		fmt.Fprintln(os.Stderr, "sttsvrun: trace conformance:", err)
		os.Exit(1)
	}
	tl, err := obs.Replay(tr, oc.model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttsvrun: replay:", err)
		os.Exit(1)
	}
	if oc.events != "" {
		writeFile(wiringPath(oc.events, wiring), func(f *os.File) error {
			return obs.WriteTraceJSONL(f, tr)
		})
	}
	if oc.trace != "" {
		writeFile(wiringPath(oc.trace, wiring), func(f *os.File) error {
			return obs.WriteChromeTrace(f, tl)
		})
	}
	if oc.metrics != "" {
		writeFile(wiringPath(oc.metrics, wiring), func(f *os.File) error {
			return obs.WriteMetricsJSONL(f, tr, tl)
		})
	}
	if oc.timeline || oc.gate > 0 {
		measured := tr.WallSpan()
		predicted := tl.Makespan()
		ratio := 0.0
		if predicted > 0 {
			ratio = measured / predicted
		}
		fmt.Printf("              makespan: measured %.4gs, α-β-γ predicted %.4gs (×%.2f)\n",
			measured, predicted, ratio)
		if oc.gate > 0 && measured > oc.gate*predicted {
			fmt.Fprintf(os.Stderr, "sttsvrun: measured makespan %.4gs exceeds %.3g× the α-β-γ prediction %.4gs\n",
				measured, oc.gate, predicted)
			os.Exit(1)
		}
	}
	if oc.timeline {
		fmt.Printf("              replay (α=%.3g β=%.3g γ=%.3g): makespan %.4gs\n",
			oc.model.Alpha, oc.model.Beta, oc.model.Gamma, tl.Makespan())
		for _, label := range tl.PhaseOrder {
			fmt.Printf("                %-15s %.4gs", label, tl.PhaseTime(label))
			if s := tl.PhaseSteps[label]; s > 0 {
				fmt.Printf("  (%d steps)", s)
			}
			fmt.Println()
		}
		if err := obs.WriteGantt(os.Stdout, tl, 72); err != nil {
			fmt.Fprintln(os.Stderr, "sttsvrun:", err)
			os.Exit(1)
		}
	}
}

// wiringPath inserts the wiring name before the path's extension, so the
// two wirings of one invocation write distinct files.
func wiringPath(path string, w parallel.Wiring) string {
	ext := filepath.Ext(path)
	return strings.TrimSuffix(path, ext) + "." + w.String() + ext
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttsvrun:", err)
		os.Exit(1)
	}
	fmt.Printf("              wrote %s\n", path)
}

// runFaulted repeats one Algorithm 5 configuration over the reliable
// transport with the plan's faults injected and compares it against the
// fault-free run just completed.
func runFaulted(a *tensor.Symmetric, x []float64, wiring parallel.Wiring,
	part *partition.Tetrahedral, b int, plan fault.Plan, recoverCrash bool, clean *parallel.Result, bf *backendflag.Options) {
	fmt.Printf("  %-11s faults: %s\n", wiring, plan)
	// A retry budget far beyond the watchdog window: a crashed rank is
	// then reported by the progress monitor as one structured deadlock
	// (naming the crashed rank and every blocked peer) instead of a slow
	// cascade of per-sender retry exhaustions.
	opts := parallel.Options{
		Part: part, B: b, Wiring: wiring,
		Machine: machine.RunConfig{
			Transport: fault.TransportOpts(plan, fault.ReliableOptions{MaxAttempts: 1 << 20}),
			Timeout:   5 * time.Second,
		},
	}
	bf.Apply(&opts.Machine)
	var res *parallel.Result
	var err error
	if recoverCrash {
		// The recovering path: crashes are claimed once per rank by the
		// shared registry, so a respawned rank does not re-crash on the
		// replay.
		opts.Machine.Transport = fault.TransportRecoverable(plan, fault.ReliableOptions{MaxAttempts: 1 << 20})
		opts.Recovery = &parallel.RecoveryOptions{}
		var s *parallel.Session
		s, err = parallel.OpenSession(a, opts)
		if err == nil {
			res, err = s.Apply(x)
			if err == nil {
				st := s.RecoveryStats()
				fmt.Printf("              recovery: %d rank deaths, %d retries, %d rollbacks, %d respawns, %d relaunches (epoch %d)\n",
					st.RankDowns, st.Retries, st.Rollbacks, st.Restarts, st.Relaunches, st.Epoch)
			}
			s.Close()
		}
	} else {
		res, err = parallel.Run(a, x, opts)
	}
	if err != nil {
		fmt.Printf("              failed: %v\n", err)
		return
	}
	exact := true
	for i := range clean.Y {
		if res.Y[i] != clean.Y[i] {
			exact = false
			break
		}
	}
	metersMatch := res.Report.MaxSentWords() == clean.Report.MaxSentWords() &&
		res.Report.MaxSentMsgs() == clean.Report.MaxSentMsgs() &&
		res.Report.MaxRecvWords() == clean.Report.MaxRecvWords() &&
		res.Report.MaxRecvMsgs() == clean.Report.MaxRecvMsgs()
	fmt.Printf("              result bit-identical=%v, logical meters preserved=%v\n", exact, metersMatch)
	fmt.Printf("              %s\n", res.Report)
	fmt.Printf("              recovery overhead: %d words, %d packets beyond the %d logical messages\n",
		res.Report.OverheadWords(),
		res.Report.MaxWireSentMsgs()-res.Report.MaxSentMsgs(), res.Report.MaxSentMsgs())
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
