// Command steiner constructs and verifies the Steiner (n, r, 3) systems
// used to generate tetrahedral block partitions: the spherical geometries
// (q²+1, q+1, 3) for prime powers q, and the Boolean quadruple system
// SQS(8).
//
// Usage:
//
//	steiner -q 3        # the (10, 4, 3) system of the paper's Table 1
//	steiner -sqs8       # the (8, 4, 3) system of Appendix A
//	steiner -q 4 -stats # incidence statistics only, no block list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/steiner"
)

func main() {
	q := flag.Int("q", 3, "prime power q for the spherical Steiner system")
	sqs8 := flag.Bool("sqs8", false, "build the Steiner (8,4,3) system instead of -q")
	double := flag.Int("double", -1, "build SQS(8·2^k) by k rounds of the doubling construction")
	statsOnly := flag.Bool("stats", false, "print statistics only, not the block list")
	flag.Parse()

	var sys *steiner.System
	var err error
	switch {
	case *double >= 0:
		sys, err = steiner.SQSDoubled(*double)
	case *sqs8:
		sys = steiner.SQS8()
	default:
		sys, err = steiner.Spherical(*q)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "steiner:", err)
		os.Exit(1)
	}
	if err := sys.Verify(); err != nil {
		fmt.Fprintln(os.Stderr, "steiner: verification failed:", err)
		os.Exit(1)
	}

	fmt.Println(sys)
	fmt.Printf("every point lies in %d blocks; every pair lies in %d blocks; every triple in exactly 1\n",
		sys.ElementCount(), sys.PairCount())
	if *statsOnly {
		return
	}
	fmt.Println()
	for i, blk := range sys.Blocks {
		parts := make([]string, len(blk))
		for j, p := range blk {
			parts[j] = fmt.Sprint(p)
		}
		fmt.Printf("%3d: {%s}\n", i+1, strings.Join(parts, ","))
	}
}
