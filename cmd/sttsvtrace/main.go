// Command sttsvtrace summarizes and converts trace files recorded by
// sttsvrun -events (one JSON event per line). It replays the logical
// event stream under a configurable α-β-γ time model and can emit the
// Chrome trace_event JSON understood by chrome://tracing and Perfetto.
//
// Usage:
//
//	sttsvtrace run.jsonl                 # phase/rank summary
//	sttsvtrace -timeline run.jsonl       # per-rank replay attribution
//	sttsvtrace -gantt run.jsonl          # ASCII Gantt chart
//	sttsvtrace -chrome out.json run.jsonl
//	sttsvtrace -metrics out.jsonl run.jsonl
//	sttsvtrace -alpha 5e-6 -beta 2e-9 -gamma 0 -timeline run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	chrome := flag.String("chrome", "", "write Chrome trace_event JSON to this file")
	metrics := flag.String("metrics", "", "write flat metrics JSONL to this file")
	gantt := flag.Bool("gantt", false, "print an ASCII Gantt chart of the replayed timeline")
	timeline := flag.Bool("timeline", false, "print per-rank replay time attribution")
	width := flag.Int("width", 72, "Gantt chart width in columns")
	def := obs.DefaultTimeModel()
	alpha := flag.Float64("alpha", def.Alpha, "per-message latency (seconds)")
	beta := flag.Float64("beta", def.Beta, "per-word transfer time (seconds)")
	gamma := flag.Float64("gamma", def.Gamma, "per-ternary-multiplication compute time (seconds)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sttsvtrace [flags] trace.jsonl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	tr, err := obs.ReadTraceJSONL(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	model := obs.TimeModel{Alpha: *alpha, Beta: *beta, Gamma: *gamma}
	tl, err := obs.Replay(tr, model)
	if err != nil {
		fail(fmt.Errorf("replay: %w", err))
	}

	summarize(tr, tl, model)
	if *timeline {
		printTimeline(tl)
	}
	if *gantt {
		if err := obs.WriteGantt(os.Stdout, tl, *width); err != nil {
			fail(err)
		}
	}
	if *chrome != "" {
		writeTo(*chrome, func(f *os.File) error { return obs.WriteChromeTrace(f, tl) })
	}
	if *metrics != "" {
		writeTo(*metrics, func(f *os.File) error { return obs.WriteMetricsJSONL(f, tr, tl) })
	}
}

// summarize prints the phase table: traffic, steps and replayed time.
func summarize(tr *obs.Trace, tl *obs.Timeline, model obs.TimeModel) {
	fmt.Printf("trace: %d events, %d ranks; model α=%.3g β=%.3g γ=%.3g\n",
		len(tr.Events), tr.P, model.Alpha, model.Beta, model.Gamma)
	totals, order := tr.PhaseTotals()
	fmt.Println()
	fmt.Println("| phase | steps | max sent w | total sent w | max msgs | ternary | replay time |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, label := range order {
		pt := totals[label]
		var maxW, totW, maxM, tern int64
		for r := 0; r < tr.P; r++ {
			if pt.SentWords[r] > maxW {
				maxW = pt.SentWords[r]
			}
			if pt.SentMsgs[r] > maxM {
				maxM = pt.SentMsgs[r]
			}
			totW += pt.SentWords[r]
			tern += pt.Ternary[r]
		}
		fmt.Printf("| %s | %d | %d | %d | %d | %d | %.4gs |\n",
			label, pt.Steps, maxW, totW, maxM, tern, tl.PhaseTime(label))
	}
	fmt.Printf("\nmakespan %.4gs over %d ranks\n", tl.Makespan(), tl.P)
}

// printTimeline prints the per-rank critical-path attribution.
func printTimeline(tl *obs.Timeline) {
	fmt.Println()
	fmt.Println("| rank | finish | compute | send | recv-wait | barrier-wait | overlap | idle |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for r := 0; r < tl.P; r++ {
		fmt.Printf("| %d | %.4g | %.4g | %.4g | %.4g | %.4g | %.4g | %.1f%% |\n",
			r, tl.Finish[r], tl.Compute[r], tl.SendTime[r], tl.RecvWait[r],
			tl.BarrierWait[r], tl.Overlap[r], 100*tl.Idle(r)/tl.Makespan())
	}
}

func writeTo(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err == nil {
		err = write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fail(err)
	}
	fmt.Println("wrote", path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sttsvtrace:", err)
	os.Exit(1)
}
