// Command validate runs every structural validator in the library across
// a parameter sweep and reports a pass/fail line per artifact — the
// "trust but verify" tool for the combinatorial layers:
//
//   - Steiner systems (exhaustive triple-coverage check) for the spherical
//     family and the doubled SQS family;
//   - tetrahedral partitions (exclusive block ownership, N_p/D_p
//     compatibility, Q_i consistency, counting lemmas);
//   - communication schedules (executability and completeness);
//   - an end-to-end numerical check of Algorithm 5 against the sequential
//     kernel for each machine.
//
// Usage: validate [-qmax 4] [-double 1] [-numeric]
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/steiner"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

var failed bool

func report(name string, err error) {
	if err != nil {
		failed = true
		fmt.Printf("FAIL  %-40s %v\n", name, err)
		return
	}
	fmt.Printf("ok    %s\n", name)
}

func main() {
	qmax := flag.Int("qmax", 4, "largest prime power q to sweep")
	double := flag.Int("double", 1, "doubling rounds of SQS(8) to include")
	numeric := flag.Bool("numeric", true, "also run Algorithm 5 end-to-end against the sequential kernel")
	flag.Parse()

	var systems []*steiner.System
	for q := 2; q <= *qmax; q++ {
		sys, err := steiner.Spherical(q)
		if err != nil {
			// Non-prime-powers are skipped silently; real failures abort.
			continue
		}
		report(fmt.Sprintf("steiner spherical q=%d (%s)", q, sys), sys.Verify())
		systems = append(systems, sys)
	}
	sqs := steiner.SQS8()
	report(fmt.Sprintf("steiner %s", sqs), sqs.Verify())
	systems = append(systems, sqs)
	for k := 1; k <= *double; k++ {
		sys, err := steiner.SQSDoubled(k)
		if err != nil {
			report(fmt.Sprintf("steiner SQS(8·2^%d)", k), err)
			continue
		}
		report(fmt.Sprintf("steiner %s (doubled)", sys), sys.Verify())
		systems = append(systems, sys)
	}

	for _, sys := range systems {
		part, err := partition.New(sys)
		if err != nil {
			report(fmt.Sprintf("partition from %s", sys), err)
			continue
		}
		report(fmt.Sprintf("partition m=%d P=%d", part.M, part.P), part.Validate())

		sched, err := schedule.Build(part)
		if err != nil {
			report(fmt.Sprintf("schedule P=%d", part.P), err)
			continue
		}
		report(fmt.Sprintf("schedule P=%d (%d steps)", part.P, sched.NumSteps()), sched.Validate(part))

		if *numeric {
			report(fmt.Sprintf("algorithm5 P=%d end-to-end", part.P), endToEnd(part, sched))
		}
	}

	if failed {
		os.Exit(1)
	}
}

// endToEnd runs Algorithm 5 on a small random instance and compares with
// the sequential kernel.
func endToEnd(part *partition.Tetrahedral, sched *schedule.Schedule) error {
	b := 4
	n := part.M * b
	rng := rand.New(rand.NewSource(1))
	a := tensor.Random(n, rng)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := sttsv.Packed(a, x, nil)
	res, err := parallel.Run(a, x, parallel.Options{
		Part: part, Sched: sched, B: b, Wiring: parallel.WiringP2P,
	})
	if err != nil {
		return err
	}
	for i := range want {
		if d := math.Abs(res.Y[i] - want[i]); d > 1e-9 {
			return fmt.Errorf("y[%d] differs by %g", i, d)
		}
	}
	return nil
}
