// Command experiments regenerates every table, figure and analytic claim
// of the paper, printing paper-vs-measured rows in Markdown. It is the
// source of the numbers recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments            # run everything
//	experiments -e comm    # only experiment E1 (communication optimality)
//
// Experiments: tables (T1–T3), figure (F1), comm (E1), flops (E2),
// steps (E3), alltoall (E4), seq (E5), baseline (E6), hopm (E7), cp (E8),
// seqapproach (E9), io (E10), timeline (E11).
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"repro/internal/costmodel"
	"repro/internal/hopm"
	"repro/internal/la"
	"repro/internal/machine"
	"repro/internal/memsim"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/steiner"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

func main() {
	which := flag.String("e", "all", "experiment to run: tables|figure|comm|flops|steps|alltoall|seq|baseline|hopm|cp|seqapproach|io|timeline|all")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *which != "all" && *which != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("tables", tables)
	run("figure", figure)
	run("comm", comm)
	run("flops", flops)
	run("steps", steps)
	run("alltoall", alltoall)
	run("seq", seq)
	run("baseline", baseline)
	run("hopm", hopmExp)
	run("cp", cpExp)
	run("seqapproach", seqApproach)
	run("io", ioExp)
	run("timeline", timelineExp)
}

// timelineExp (E11) traces fault-free Algorithm 5 runs, replays them on
// the simulated α-β clock, and checks the observed barrier-step count and
// phase time against the closed-form schedule-length formulas: the P2P
// wiring's q³/2+3q²/2−1 steps replaying to Σ(α + maxWords·β), and the
// All-to-All wiring's nominal P−1 rounds (metered, barrier-free).
func timelineExp() error {
	fmt.Println("## E11: replayed timeline vs schedule-length formulas (α=10µs, β=10ns, γ=0)")
	fmt.Println()
	fmt.Println("| q | P | p2p replay steps | q³/2+3q²/2−1 | p2p replay time | Σ(α+maxW·β) | a2a meter steps | P−1 |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	model := obs.TimeModel{Alpha: 1e-5, Beta: 1e-8, Gamma: 0}
	for _, q := range []int{2, 3, 4} {
		part, err := partition.NewSpherical(q)
		if err != nil {
			return err
		}
		sched, err := schedule.Build(part)
		if err != nil {
			return err
		}
		b := q * (q + 1)
		n := part.M * b
		x := make([]float64, n)
		var rec obs.Recorder
		res, err := parallel.Run(nil, x, parallel.Options{
			Part: part, Sched: sched, B: b, Wiring: parallel.WiringP2P,
			Machine: machine.RunConfig{Timeout: time.Minute, Observer: rec.Observer()},
		})
		if err != nil {
			return err
		}
		tl, err := obs.Replay(rec.Trace(), model)
		if err != nil {
			return err
		}
		gotSteps := tl.PhaseSteps["gather"]
		wantSteps := schedule.TheoreticalSteps(q)
		gotTime := tl.PhaseTime("gather")
		wantTime := sched.Makespan(part, b, model.Alpha, model.Beta)
		if gotSteps != wantSteps || res.Steps != wantSteps {
			return fmt.Errorf("q=%d: replay counts %d steps, formula %d", q, gotSteps, wantSteps)
		}
		if math.Abs(gotTime-wantTime) > 1e-9*wantTime {
			return fmt.Errorf("q=%d: replay time %g, closed form %g", q, gotTime, wantTime)
		}
		resA, err := parallel.Run(nil, x, parallel.Options{
			Part: part, B: b, Wiring: parallel.WiringAllToAll,
			Machine: machine.RunConfig{Timeout: time.Minute},
		})
		if err != nil {
			return err
		}
		a2aSteps := resA.Phase("gather").Steps
		if a2aSteps != part.P-1 {
			return fmt.Errorf("q=%d: all-to-all meters %d steps, want P-1 = %d", q, a2aSteps, part.P-1)
		}
		fmt.Printf("| %d | %d | %d | %d | %.4gs | %.4gs | %d | %d |\n",
			q, part.P, gotSteps, wantSteps, gotTime, wantTime, a2aSteps, part.P-1)
	}
	return nil
}

func tables() error {
	fmt.Println("## T1–T3: tetrahedral block partitions (paper Tables 1–3)")
	fmt.Println()
	fmt.Println("| system | m | P | \\|Rp\\| | \\|Np\\| | central assigned | \\|Qi\\| | valid |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	row := func(name string, part *partition.Tetrahedral) {
		central := 0
		for p := 0; p < part.P; p++ {
			central += len(part.Dp[p])
		}
		valid := "yes"
		if err := part.Validate(); err != nil {
			valid = "NO: " + err.Error()
		}
		fmt.Printf("| %s | %d | %d | %d | %d | %d | %d | %s |\n",
			name, part.M, part.P, part.R, len(part.Np[0]), central, len(part.Qi[0]), valid)
	}
	for _, q := range []int{2, 3, 4} {
		part, err := partition.NewSpherical(q)
		if err != nil {
			return err
		}
		row(fmt.Sprintf("spherical q=%d", q), part)
	}
	part, err := partition.New(steiner.SQS8())
	if err != nil {
		return err
	}
	row("SQS(8) (Table 3)", part)
	s16, err := steiner.SQSDoubled(1)
	if err != nil {
		return err
	}
	p16, err := partition.New(s16)
	if err != nil {
		return err
	}
	row("SQS(16) (doubling)", p16)
	return nil
}

func seqApproach() error {
	fmt.Println("## E9: the §8 sequence approach (M = A×₃x, then y = M·x) moves Ω(n) words")
	fmt.Println()
	fmt.Println("| n | P | sequence words/proc | alg5 words/proc (q s.t. P=q(q²+1)) |")
	fmt.Println("|---|---|---|---|")
	for _, q := range []int{2, 3} {
		part, err := partition.NewSpherical(q)
		if err != nil {
			return err
		}
		b := q * (q + 1)
		n := part.M * b
		rng := rand.New(rand.NewSource(8))
		a := tensor.Random(n, rng)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		seqRes, err := parallel.RunSequenceBaseline(a, x, part.P)
		if err != nil {
			return err
		}
		optRes, err := parallel.Run(a, x, parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P})
		if err != nil {
			return err
		}
		fmt.Printf("| %d | %d | %d | %d |\n",
			n, part.P, seqRes.Report.MaxSentWords(), optRes.Report.MaxSentWords())
	}
	return nil
}

func ioExp() error {
	fmt.Println("## E10: sequential I/O of the blocked kernel (LRU cache simulation)")
	fmt.Println()
	fmt.Println("| cache words | unblocked traffic | blocked traffic (b=8) | compulsory |")
	fmt.Println("|---|---|---|---|")
	n, blockEdge := 48, 8
	for _, mWords := range []int{32, 64, 128, 1024} {
		cu := memsim.NewCache(mWords, 1)
		unblocked := memsim.TracePacked(n, cu)
		cb := memsim.NewCache(mWords, 1)
		blocked := memsim.TraceBlocked(n, blockEdge, cb)
		fmt.Printf("| %d | %d | %d | %d |\n", mWords, unblocked, blocked, memsim.CompulsoryWords(n))
	}
	return nil
}

func figure() error {
	fmt.Println("## F1: point-to-point schedule for SQS(8), P=14 (paper Figure 1)")
	fmt.Println()
	part, err := partition.New(steiner.SQS8())
	if err != nil {
		return err
	}
	sched, err := schedule.Build(part)
	if err != nil {
		return err
	}
	if err := sched.Validate(part); err != nil {
		return err
	}
	fmt.Printf("| quantity | paper | measured |\n|---|---|---|\n")
	fmt.Printf("| schedule steps | 12 | %d |\n", sched.NumSteps())
	fmt.Printf("| all-to-all steps (P−1) | 13 | %d |\n", part.P-1)
	return nil
}

func comm() error {
	fmt.Println("## E1: Algorithm 5 (p2p wiring) communication vs Theorem 5.2 lower bound")
	fmt.Println()
	fmt.Println("| q | P | n | measured words/proc | model 2(n(q+1)/(q²+1)−n/P) | lower bound | measured/bound |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, q := range []int{2, 3, 4} {
		part, err := partition.NewSpherical(q)
		if err != nil {
			return err
		}
		b := q * (q + 1)
		n := part.M * b
		x := make([]float64, n)
		res, err := parallel.Run(nil, x, parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P})
		if err != nil {
			return err
		}
		measured := res.Report.MaxSentWords()
		model := costmodel.OptimalWords(n, q)
		lb := costmodel.LowerBoundWords(n, part.P)
		fmt.Printf("| %d | %d | %d | %d | %.1f | %.1f | %.3f |\n",
			q, part.P, n, measured, model, lb, float64(measured)/lb)
	}
	return nil
}

func flops() error {
	fmt.Println("## E2: computational load balance vs n³/(2P) (§7.1)")
	fmt.Println()
	fmt.Println("| q | P | n | total ternary | n²(n+1)/2 | max/proc | n³/(2P) | max/leading |")
	fmt.Println("|---|---|---|---|---|---|---|---|")
	for _, q := range []int{2, 3} {
		part, err := partition.NewSpherical(q)
		if err != nil {
			return err
		}
		b := q * (q + 1) * 2
		n := part.M * b
		rng := rand.New(rand.NewSource(1))
		a := tensor.Random(n, rng)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		res, err := parallel.Run(a, x, parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P})
		if err != nil {
			return err
		}
		var total, mx int64
		for _, tm := range res.Ternary {
			total += tm
			if tm > mx {
				mx = tm
			}
		}
		lead := costmodel.TernaryLeading(n, part.P)
		fmt.Printf("| %d | %d | %d | %d | %d | %d | %.0f | %.3f |\n",
			q, part.P, n, total, costmodel.TernaryTotal(n), mx, lead, float64(mx)/lead)
	}
	return nil
}

func steps() error {
	fmt.Println("## E3: schedule length vs q³/2+3q²/2−1 (§7.2.2)")
	fmt.Println()
	fmt.Println("| q | P | measured steps | theory | all-to-all (P−1) |")
	fmt.Println("|---|---|---|---|---|")
	for _, q := range []int{2, 3, 4} {
		part, err := partition.NewSpherical(q)
		if err != nil {
			return err
		}
		sched, err := schedule.Build(part)
		if err != nil {
			return err
		}
		fmt.Printf("| %d | %d | %d | %d | %d |\n",
			q, part.P, sched.NumSteps(), schedule.TheoreticalSteps(q), part.P-1)
	}
	return nil
}

func alltoall() error {
	fmt.Println("## E4: All-to-All wiring costs 4n/(q+1)(1−1/P) ≈ 2× the bound's leading term (§7.2.2)")
	fmt.Println()
	fmt.Println("| q | n | measured words/proc | model | measured/optimal-wiring | 2(q²+1)/(q+1)² |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, q := range []int{2, 3, 4} {
		part, err := partition.NewSpherical(q)
		if err != nil {
			return err
		}
		b := q * (q + 1)
		n := part.M * b
		x := make([]float64, n)
		resA, err := parallel.Run(nil, x, parallel.Options{Part: part, B: b, Wiring: parallel.WiringAllToAll})
		if err != nil {
			return err
		}
		resP, err := parallel.Run(nil, x, parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P})
		if err != nil {
			return err
		}
		measured := resA.Report.MaxSentWords()
		fmt.Printf("| %d | %d | %d | %.1f | %.3f | %.3f |\n",
			q, n, measured, costmodel.AllToAllWords(n, q),
			float64(measured)/float64(resP.Report.MaxSentWords()),
			2*float64(q*q+1)/float64((q+1)*(q+1)))
	}
	return nil
}

func seq() error {
	fmt.Println("## E5: Algorithm 4 does ≈ half the ternary mults of Algorithm 3 (§3)")
	fmt.Println()
	fmt.Println("| n | naive ternary (n³) | symmetric ternary (n²(n+1)/2) | ratio | naive time | symmetric time |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, n := range []int{64, 128, 192} {
		rng := rand.New(rand.NewSource(2))
		a := tensor.Random(n, rng)
		d := a.Dense()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		var sn, sp sttsv.Stats
		t0 := time.Now()
		sttsv.Naive(d, x, &sn)
		tn := time.Since(t0)
		t0 = time.Now()
		sttsv.Packed(a, x, &sp)
		tp := time.Since(t0)
		fmt.Printf("| %d | %d | %d | %.3f | %v | %v |\n",
			n, sn.TernaryMults, sp.TernaryMults,
			float64(sp.TernaryMults)/float64(sn.TernaryMults), tn, tp)
	}
	return nil
}

func baseline() error {
	fmt.Println("## E6: Algorithm 5 vs 1D row partition (Θ(n/P^{1/3}) vs Θ(n) words)")
	fmt.Println()
	fmt.Println("| q | P | n | alg5 words/proc | baseline words/proc | ratio | P^{1/3} |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, q := range []int{2, 3} {
		part, err := partition.NewSpherical(q)
		if err != nil {
			return err
		}
		b := q * (q + 1)
		n := part.M * b
		rng := rand.New(rand.NewSource(3))
		a := tensor.Random(n, rng)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		opt, err := parallel.Run(a, x, parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P})
		if err != nil {
			return err
		}
		base, err := parallel.RunRowBaseline(a, x, part.P)
		if err != nil {
			return err
		}
		ow := float64(opt.Report.MaxSentWords())
		bw := float64(base.Report.MaxSentWords())
		fmt.Printf("| %d | %d | %d | %.0f | %.0f | %.2f | %.2f |\n",
			q, part.P, n, ow, bw, bw/ow, math.Cbrt(float64(part.P)))
	}
	return nil
}

func hopmExp() error {
	fmt.Println("## E7: higher-order power method (Algorithm 1) convergence")
	fmt.Println()
	fmt.Println("| workload | n | lambda | iterations | residual | converged |")
	fmt.Println("|---|---|---|---|---|---|")
	// Hypergraph centrality.
	rng := rand.New(rand.NewSource(4))
	hg, err := tensor.RandomHypergraph(60, 400, rng)
	if err != nil {
		return err
	}
	pair, err := hopm.PowerMethod(hopm.PackedSTTSV(hg), 60, hopm.Options{Seed: 5, MaxIter: 2000})
	if err != nil {
		return err
	}
	fmt.Printf("| hypergraph (60 vertices, 400 edges) | 60 | %.6g | %d | %.3g | %v |\n",
		pair.Lambda, pair.Iterations, pair.Residual, pair.Converged)
	// Planted rank-1.
	v := make([]float64, 80)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	la.Normalize(v)
	r1 := tensor.RankOne(3, v)
	pair2, err := hopm.PowerMethod(hopm.PackedSTTSV(r1), 80, hopm.Options{Seed: 6})
	if err != nil {
		return err
	}
	fmt.Printf("| planted rank-1 (λ=3) | 80 | %.6g | %d | %.3g | %v |\n",
		pair2.Lambda, pair2.Iterations, pair2.Residual, pair2.Converged)
	return nil
}

func cpExp() error {
	fmt.Println("## E8: symmetric CP gradient (Algorithm 2) and decomposition")
	fmt.Println()
	// Planted rank-3 recovery from a perturbed start.
	n, r := 12, 3
	rng := rand.New(rand.NewSource(7))
	planted := la.NewMatrix(n, r)
	for i := range planted.Data {
		planted.Data[i] = rng.NormFloat64()
	}
	vecs := make([][]float64, r)
	w := make([]float64, r)
	for l := 0; l < r; l++ {
		vecs[l] = planted.Col(l)
		w[l] = 1
	}
	a, err := tensor.CP(w, vecs)
	if err != nil {
		return err
	}
	x0 := planted.Clone()
	for i := range x0.Data {
		x0.Data[i] += 0.05 * rng.NormFloat64()
	}
	start := hopm.CPObjective(a, x0)
	res, err := hopm.SymmetricCP(a, r, hopm.CPOptions{X0: x0, MaxIter: 3000})
	if err != nil {
		return err
	}
	fmt.Println("| quantity | value |")
	fmt.Println("|---|---|")
	fmt.Printf("| planted rank | %d |\n", r)
	fmt.Printf("| start objective | %.6g |\n", start)
	fmt.Printf("| final objective | %.3g |\n", res.Objective)
	fmt.Printf("| gradient steps | %d |\n", res.Iterations)
	fmt.Printf("| gradient-vs-FD check | see internal/hopm tests |\n")
	return nil
}
