// Command partition prints tetrahedral block partitions in the format of
// the paper's Table 1 (processor sets R_p, N_p, D_p), Table 2 (row-block
// sets Q_i) and Table 3 (the SQS(8) example).
//
// Usage:
//
//	partition -q 3            # Tables 1 and 2 for the spherical system
//	partition -sqs8           # Table 3 (m=8, P=14)
//	partition -q 3 -qi=false  # suppress the Q_i table
//
// Indices are printed 1-based to match the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/partition"
	"repro/internal/steiner"
)

func main() {
	q := flag.Int("q", 3, "prime power q for the spherical Steiner (q²+1, q+1, 3) system")
	sqs8 := flag.Bool("sqs8", false, "use the Steiner (8,4,3) system (Table 3) instead of -q")
	showQi := flag.Bool("qi", true, "also print the row-block sets Q_i (Table 2)")
	flag.Parse()

	var part *partition.Tetrahedral
	var err error
	if *sqs8 {
		part, err = partition.New(steiner.SQS8())
	} else {
		part, err = partition.NewSpherical(*q)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
	if err := part.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "partition: invalid:", err)
		os.Exit(1)
	}

	fmt.Printf("Tetrahedral block partition: m=%d row blocks, P=%d processors, |Rp|=%d\n\n",
		part.M, part.P, part.R)
	fmt.Printf("%-4s %-22s %-40s %s\n", "p", "Rp", "Np", "Dp")
	for p := 0; p < part.P; p++ {
		fmt.Printf("%-4d %-22s %-40s %s\n",
			p+1, intSet(part.Rp[p]), coordSet(part.Np[p]), coordSet(part.Dp[p]))
	}

	if *showQi {
		fmt.Printf("\n%-4s %s\n", "i", "Qi")
		for i := 0; i < part.M; i++ {
			fmt.Printf("%-4d %s\n", i+1, intSet(part.Qi[i]))
		}
	}
}

// intSet formats a 0-based index list as a 1-based set.
func intSet(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprint(x + 1)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// coordSet formats block coordinates as 1-based triples.
func coordSet(cs []partition.Coord) string {
	parts := make([]string, len(cs))
	for i, c := range cs {
		parts[i] = fmt.Sprintf("(%d,%d,%d)", c.I+1, c.J+1, c.K+1)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
