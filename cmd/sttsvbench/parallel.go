package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// The -parallel mode benchmarks the session engine against per-call Run:
// a fixed-length power method driven from the host, once with a machine
// relaunch per application (the pre-session usage pattern) and once over a
// resident Session. Both loops perform identical arithmetic and identical
// simulated communication; the difference is pure engine overhead —
// goroutine launch, plan rebuild, and per-application allocation.

type parallelConfig struct {
	Q     int `json:"q"`
	P     int `json:"p"`
	M     int `json:"m"`
	B     int `json:"b"`
	N     int `json:"n"`
	Iters int `json:"iters"`
}

type powerMethodBench struct {
	// PerCall: each iteration calls parallel.Run (machine relaunch per
	// application, pre-packed blocks).
	PerCallNsPerIter   float64 `json:"percall_ns_per_iter"`
	PerCallItersPerSec float64 `json:"percall_iters_per_sec"`
	// Session: identical host-driven loop over one resident Session.
	SessionNsPerIter   float64 `json:"session_ns_per_iter"`
	SessionItersPerSec float64 `json:"session_iters_per_sec"`
	// SessionSpeedup = session iters/sec ÷ per-call iters/sec.
	SessionSpeedup float64 `json:"session_speedup"`
	// Resident: Session.PowerMethod — the whole iteration loop as one
	// resident operation (convergence control via scalar all-reduce).
	ResidentIters       int     `json:"resident_iters"`
	ResidentNsPerIter   float64 `json:"resident_ns_per_iter"`
	ResidentItersPerSec float64 `json:"resident_iters_per_sec"`
}

type batchBench struct {
	Cols        int     `json:"cols"`
	NsPerApply  float64 `json:"ns_per_apply"`
	NsPerCol    float64 `json:"ns_per_col"`
	MsgsPerCol  float64 `json:"msgs_per_col"`  // gather messages ÷ cols (rank 0)
	WordsPerCol int64   `json:"words_per_col"` // gather words ÷ cols (rank 0)
	SpeedupVs1  float64 `json:"speedup_vs_cols1,omitempty"`
}

type parallelReport struct {
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	NumCPU      int              `json:"num_cpu"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Timestamp   string           `json:"timestamp"`
	Config      parallelConfig   `json:"config"`
	PowerMethod powerMethodBench `json:"power_method"`
	Batch       []batchBench     `json:"batch"`
	// Recovery is filled by the -recover mode (runRecoveryDrill): the
	// incremental-checkpoint overhead profile and the crash-drill restore
	// latency. The -parallel mode leaves it untouched in an existing
	// baseline only if -recover is re-run afterwards — regenerate with
	// `-parallel` first, then `-recover`.
	Recovery *recoveryBench `json:"recovery,omitempty"`
}

// recoverySize is one problem size's checkpoint-overhead profile: the
// steady-state fault-free Apply cost with the supervisor off and on, and
// the dirty-word accounting that pins the incremental checkpointer's
// O(dirty) contract at this size.
type recoverySize struct {
	Q int `json:"q"`
	P int `json:"p"`
	B int `json:"b"`
	N int `json:"n"`
	// BaseNsPerApply / RecNsPerApply: min-of-reps steady-state Apply cost
	// without and with the recovery supervisor (fault-free transport, so
	// the difference is pure checkpoint overhead).
	BaseNsPerApply float64 `json:"base_ns_per_apply"`
	RecNsPerApply  float64 `json:"rec_ns_per_apply"`
	// OverheadRatio = recovery-on ÷ recovery-off; a same-host ratio, so
	// the CI gate transfers across runner hardware.
	OverheadRatio float64 `json:"overhead_ratio"`
	// ApplyCheckpointWords: arena words copied per Apply checkpoint —
	// zero, the dirtyNone contract (x/y arenas rebuild from host staging).
	ApplyCheckpointWords int64 `json:"apply_checkpoint_words"`
	// PowerCheckpointWords: arena words copied per power-method
	// checkpoint — the owned spans, exactly n, independent of the
	// replicated arena footprint the old full-copy checkpointer moved.
	PowerCheckpointWords int64 `json:"power_checkpoint_words"`
	// CheckpointNsPerApply: wall time the checkpoint path spent per Apply
	// during the recovery-on loop.
	CheckpointNsPerApply float64 `json:"checkpoint_ns_per_apply"`
}

// recoveryBench is the -recover mode's JSON section in
// BENCH_parallel.json.
type recoveryBench struct {
	Sizes []recoverySize `json:"sizes"`
	// Drill outcome under the seeded multi-rank crash plan.
	RestoreNsPerRollback float64 `json:"restore_ns_per_rollback"`
	RankDowns            int     `json:"rank_downs"`
	Rollbacks            int     `json:"rollbacks"`
	Relaunches           int     `json:"relaunches"`
}

// normalizeInto writes x/‖y‖ for the next iteration; the per-call and
// session loops share it so their host-side work is identical.
func normalizeInto(x, y []float64) {
	var nrm float64
	for _, v := range y {
		nrm += v * v
	}
	nrm = math.Sqrt(nrm)
	if nrm == 0 {
		nrm = 1
	}
	for i, v := range y {
		x[i] = v / nrm
	}
}

func runParallelBench(out, check string) {
	const (
		q     = 4
		b     = 6
		iters = 100
	)
	part, err := partition.NewSpherical(q)
	if err != nil {
		fatal(err)
	}
	n := part.M * b
	rng := rand.New(rand.NewSource(2026))
	a := tensor.Random(n, rng)
	opts := withBackend(parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P})
	// Pre-pack the block sets so the per-call loop is measured at its best:
	// the speedup quoted below is engine overhead, not tensor re-extraction.
	blocks, err := parallel.PackRankBlocks(a, part, b)
	if err != nil {
		fatal(err)
	}
	opts.Blocks = blocks

	rep := parallelReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Config:     parallelConfig{Q: q, P: part.P, M: part.M, B: b, N: n, Iters: iters},
	}
	fmt.Printf("sttsvbench -parallel: q=%d (P=%d, m=%d), b=%d, n=%d, %d power iterations\n",
		q, part.P, part.M, b, n, iters)

	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = math.Sin(float64(i+1) * 1.7)
	}
	normalizeInto(x0, x0)

	// Each loop runs reps times and the fastest repetition is kept: the
	// simulated machine's wall time is scheduler-noisy, and min-of-reps is
	// the standard way to expose the deterministic cost underneath.
	const reps = 3
	x := make([]float64, n)
	minOf := func(loop func()) time.Duration {
		best := time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			copy(x, x0)
			start := time.Now()
			loop()
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}

	// --- per-call Run: machine relaunch every application ---
	copy(x, x0)
	if _, err := parallel.Run(a, x, opts); err != nil { // warm-up
		fatal(err)
	}
	perCall := minOf(func() {
		for it := 0; it < iters; it++ {
			res, err := parallel.Run(a, x, opts)
			if err != nil {
				fatal(err)
			}
			normalizeInto(x, res.Y)
		}
	})

	// --- same loop over one resident session ---
	s, err := parallel.OpenSession(a, opts)
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	copy(x, x0)
	if _, err := s.Apply(x); err != nil { // warm-up
		fatal(err)
	}
	session := minOf(func() {
		for it := 0; it < iters; it++ {
			res, err := s.Apply(x)
			if err != nil {
				fatal(err)
			}
			normalizeInto(x, res.Y)
		}
	})

	// --- Session.PowerMethod: the loop resident on the machine ---
	var er *parallel.EigenResult
	resident := minOf(func() {
		if er, err = s.PowerMethod(parallel.PowerOptions{MaxIter: iters, Tol: 1e-300}); err != nil {
			fatal(err)
		}
	})

	pm := &rep.PowerMethod
	pm.PerCallNsPerIter = float64(perCall.Nanoseconds()) / iters
	pm.PerCallItersPerSec = iters / perCall.Seconds()
	pm.SessionNsPerIter = float64(session.Nanoseconds()) / iters
	pm.SessionItersPerSec = iters / session.Seconds()
	pm.SessionSpeedup = pm.SessionItersPerSec / pm.PerCallItersPerSec
	pm.ResidentIters = er.Iterations
	pm.ResidentNsPerIter = float64(resident.Nanoseconds()) / float64(er.Iterations)
	pm.ResidentItersPerSec = float64(er.Iterations) / resident.Seconds()
	fmt.Printf("  per-call Run   %10.0f ns/iter  %8.1f iters/s\n", pm.PerCallNsPerIter, pm.PerCallItersPerSec)
	fmt.Printf("  session Apply  %10.0f ns/iter  %8.1f iters/s  %.2fx vs per-call\n",
		pm.SessionNsPerIter, pm.SessionItersPerSec, pm.SessionSpeedup)
	fmt.Printf("  resident loop  %10.0f ns/iter  %8.1f iters/s  (%d iters)\n",
		pm.ResidentNsPerIter, pm.ResidentItersPerSec, pm.ResidentIters)

	// --- batch amortization: one schedule, r columns per message ---
	const batchApplies = 30
	var ns1 float64
	for _, cols := range []int{1, 2, 4, 8} {
		X := make([][]float64, cols)
		for l := range X {
			X[l] = append([]float64(nil), x0...)
		}
		if _, err := s.ApplyBatch(X); err != nil { // warm-up (grows arenas)
			fatal(err)
		}
		start := time.Now()
		var gatherMsgs, gatherWords int64
		for i := 0; i < batchApplies; i++ {
			br, err := s.ApplyBatch(X)
			if err != nil {
				fatal(err)
			}
			gatherMsgs, gatherWords = br.Phases[0].SentMsgs[0], br.Phases[0].SentWords[0]
		}
		el := time.Since(start)
		r := batchBench{
			Cols:        cols,
			NsPerApply:  float64(el.Nanoseconds()) / batchApplies,
			NsPerCol:    float64(el.Nanoseconds()) / (batchApplies * float64(cols)),
			MsgsPerCol:  float64(gatherMsgs) / float64(cols),
			WordsPerCol: gatherWords / int64(cols),
		}
		if cols == 1 {
			ns1 = r.NsPerCol
		} else if r.NsPerCol > 0 {
			r.SpeedupVs1 = ns1 / r.NsPerCol
		}
		rep.Batch = append(rep.Batch, r)
		fmt.Printf("  batch cols=%d   %10.0f ns/col   gather %5.1f msgs/col %5d words/col",
			cols, r.NsPerCol, r.MsgsPerCol, r.WordsPerCol)
		if r.SpeedupVs1 != 0 {
			fmt.Printf("  %.2fx vs cols=1", r.SpeedupVs1)
		}
		fmt.Println()
	}

	if check != "" {
		checkParallelRegression(check, &rep)
		return
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// checkParallelRegression compares the measured session speedup against a
// committed baseline: both numbers are machine-relative ratios (session
// vs per-call on the same host), so they transfer across hardware. A drop
// below 0.8× the baseline ratio fails the run.
func checkParallelRegression(path string, rep *parallelReport) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(fmt.Errorf("check baseline: %w", err))
	}
	var base parallelReport
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("check baseline %s: %w", path, err))
	}
	const slack = 0.8
	want := slack * base.PowerMethod.SessionSpeedup
	got := rep.PowerMethod.SessionSpeedup
	fmt.Printf("check: session speedup %.2fx, baseline %.2fx, floor %.2fx\n",
		got, base.PowerMethod.SessionSpeedup, want)
	if got < want {
		fatal(fmt.Errorf("session speedup regressed more than 20%%: %.2fx < %.2fx (baseline %.2fx in %s)",
			got, want, base.PowerMethod.SessionSpeedup, path))
	}
	fmt.Println("check: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sttsvbench:", err)
	os.Exit(1)
}

// measureRecoverySize profiles the incremental checkpointer at one
// problem size: steady-state fault-free Apply cost with the supervisor
// off vs on (the difference is pure checkpoint overhead), plus the
// dirty-word accounting for both operation classes.
func measureRecoverySize(q, b int) recoverySize {
	part, err := partition.NewSpherical(q)
	if err != nil {
		fatal(err)
	}
	n := part.M * b
	rng := rand.New(rand.NewSource(int64(3000 + q)))
	a := tensor.Random(n, rng)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	const (
		applies = 30
		reps    = 3
	)
	loop := func(s *parallel.Session) time.Duration {
		if _, err := s.Apply(x); err != nil { // warm-up
			fatal(err)
		}
		best := time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			start := time.Now()
			for i := 0; i < applies; i++ {
				if _, err := s.Apply(x); err != nil {
					fatal(err)
				}
			}
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}

	base := withBackend(parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P})
	sb, err := parallel.OpenSession(a, base)
	if err != nil {
		fatal(err)
	}
	baseT := loop(sb)
	sb.Close()

	rec := base
	rec.Recovery = &parallel.RecoveryOptions{}
	sr, err := parallel.OpenSession(a, rec)
	if err != nil {
		fatal(err)
	}
	recT := loop(sr)
	applyStats := sr.RecoveryStats()
	if applyStats.CheckpointWords != 0 {
		fatal(fmt.Errorf("recovery bench q=%d: Apply checkpoints copied %d arena words, want 0",
			q, applyStats.CheckpointWords))
	}
	// One resident power method pins the dirty-span cost: every checkpoint
	// copies the owned chunk spans, which tile the global vector exactly.
	if _, err := sr.PowerMethod(parallel.PowerOptions{MaxIter: 6, Tol: 1e-300}); err != nil {
		fatal(err)
	}
	pmWords := sr.RecoveryStats().CheckpointWords
	sr.Close()
	if pmWords <= 0 || pmWords%int64(n) != 0 {
		fatal(fmt.Errorf("recovery bench q=%d: power-method checkpoint words %d not a positive multiple of n=%d",
			q, pmWords, n))
	}

	totalApplies := (1 + reps*applies) // warm-up + measured reps
	sz := recoverySize{
		Q: q, P: part.P, B: b, N: n,
		BaseNsPerApply:       float64(baseT.Nanoseconds()) / applies,
		RecNsPerApply:        float64(recT.Nanoseconds()) / applies,
		ApplyCheckpointWords: 0,
		PowerCheckpointWords: int64(n),
		CheckpointNsPerApply: float64(applyStats.CheckpointNanos) / float64(totalApplies),
	}
	sz.OverheadRatio = sz.RecNsPerApply / sz.BaseNsPerApply
	return sz
}

// checkRecoveryRegression gates the recovery-on vs recovery-off
// steady-state overhead ratio against the committed baseline: a measured
// ratio above 1.25x the baseline's at the same (q, b) fails the run. Both
// sides are same-host ratios, so the gate transfers across hardware. A
// baseline without a recovery section passes gracefully (first run after
// the section was introduced).
func checkRecoveryRegression(path string, bench *recoveryBench) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(fmt.Errorf("check baseline: %w", err))
	}
	var base parallelReport
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("check baseline %s: %w", path, err))
	}
	if base.Recovery == nil {
		fmt.Printf("check: baseline %s has no recovery section yet — skipping the overhead gate\n", path)
		return
	}
	const slack = 1.25
	for _, got := range bench.Sizes {
		var want *recoverySize
		for i := range base.Recovery.Sizes {
			if bs := &base.Recovery.Sizes[i]; bs.Q == got.Q && bs.B == got.B {
				want = bs
				break
			}
		}
		if want == nil {
			fmt.Printf("check: baseline has no q=%d b=%d recovery size — skipping it\n", got.Q, got.B)
			continue
		}
		ceiling := want.OverheadRatio * slack
		fmt.Printf("check: q=%d checkpoint overhead %.3fx, baseline %.3fx, ceiling %.3fx\n",
			got.Q, got.OverheadRatio, want.OverheadRatio, ceiling)
		if got.OverheadRatio > ceiling {
			fatal(fmt.Errorf("recovery-on steady-state overhead regressed at q=%d: %.3fx > %.3fx (baseline %.3fx in %s)",
				got.Q, got.OverheadRatio, ceiling, want.OverheadRatio, path))
		}
	}
	fmt.Println("check: ok")
}

// runRecoveryDrill (the -recover mode) measures what crash recovery
// costs. Two parts: (1) the checkpoint-overhead profile — steady-state
// fault-free Apply with the supervisor off vs on at two problem sizes,
// plus the dirty-word accounting that shows checkpoint cost scaling with
// the dirty footprint, not the replicated arenas; (2) the crash drill —
// the same Apply sequence over one resident session, once clean and once
// under a seeded multi-rank crash plan, verifying bit-identical results
// and reporting the rollback-replay cost. With out set the results merge
// into the parallel benchmark JSON; with check set they gate against the
// committed baseline instead.
func runRecoveryDrill(out, check string) {
	const (
		q       = 3
		b       = 4
		applies = 20
	)
	part, err := partition.NewSpherical(q)
	if err != nil {
		fatal(err)
	}
	n := part.M * b
	rng := rand.New(rand.NewSource(2026))
	a := tensor.Random(n, rng)
	xs := make([][]float64, applies)
	for k := range xs {
		xs[k] = make([]float64, n)
		for i := range xs[k] {
			xs[k][i] = rng.NormFloat64()
		}
	}
	fmt.Printf("sttsvbench -recover: q=%d (P=%d, m=%d), b=%d, n=%d, %d applies\n",
		q, part.P, part.M, b, n, applies)

	run := func(opts parallel.Options) ([][]float64, *machine.Report, parallel.RecoveryStats, time.Duration) {
		s, err := parallel.OpenSession(a, opts)
		if err != nil {
			fatal(err)
		}
		ys := make([][]float64, applies)
		start := time.Now()
		for k, x := range xs {
			res, err := s.Apply(x)
			if err != nil {
				fatal(err)
			}
			ys[k] = res.Y
		}
		el := time.Since(start)
		stats := s.RecoveryStats()
		if err := s.Close(); err != nil {
			fatal(err)
		}
		return ys, s.Report(), stats, el
	}

	base := withBackend(parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P})
	cleanY, cleanRep, _, cleanT := run(base)

	// Crash three ranks at three depths: mid first exchange, mid-run, and
	// deep enough to land several applies in (the supervisor sees them as
	// separate incidents, each one abort-respawn-rollback-replay cycle).
	plan := fault.Plan{Seed: 7, Crash: map[int]int{1: 10, 4: 90, 7: 400}}
	faulted := base
	faulted.Machine = machine.RunConfig{
		Transport: fault.TransportRecoverable(plan, fault.ReliableOptions{MaxAttempts: 1 << 20}),
		Timeout:   5 * time.Second,
	}
	backend.Apply(&faulted.Machine)
	faulted.Recovery = &parallel.RecoveryOptions{}
	recY, recRep, stats, recT := run(faulted)

	for k := range cleanY {
		for i := range cleanY[k] {
			if recY[k][i] != cleanY[k][i] {
				fatal(fmt.Errorf("recovery drill: apply %d diverged from the clean run at element %d", k, i))
			}
		}
	}
	var cleanWire, recWire int64
	for r := 0; r < part.P; r++ {
		cleanWire += cleanRep.WireSentWords[r]
		recWire += recRep.WireSentWords[r]
	}
	fmt.Printf("  clean session      %10v  (%d wire words)\n", cleanT, cleanWire)
	fmt.Printf("  crashed+recovered  %10v  (%d wire words, +%d recovery traffic)\n",
		recT, recWire, recWire-cleanWire)
	fmt.Printf("  recovery: %d rank deaths, %d retries, %d rollbacks, %d respawns, %d relaunches (epoch %d)\n",
		stats.RankDowns, stats.Retries, stats.Rollbacks, stats.Restarts, stats.Relaunches, stats.Epoch)
	fmt.Printf("  verification: %d fingerprint passes, %d mismatches\n", stats.Verifications, stats.Mismatches)
	fmt.Printf("  results bit-identical across all %d applies; logical meters preserved=%v\n",
		applies, cleanRep.TotalSentWords() == recRep.TotalSentWords() &&
			cleanRep.MaxSentMsgs() == recRep.MaxSentMsgs())

	bench := &recoveryBench{
		RankDowns:  stats.RankDowns,
		Rollbacks:  stats.Rollbacks,
		Relaunches: stats.Relaunches,
	}
	if stats.Rollbacks > 0 {
		bench.RestoreNsPerRollback = float64(stats.RestoreNanos) / float64(stats.Rollbacks)
		fmt.Printf("  restore latency: %.0f ns/rollback (verified)\n", bench.RestoreNsPerRollback)
	}
	for _, size := range []struct{ q, b int }{{3, 4}, {4, 6}} {
		sz := measureRecoverySize(size.q, size.b)
		bench.Sizes = append(bench.Sizes, sz)
		fmt.Printf("  overhead q=%d (P=%d, n=%d): base %8.0f ns/apply, recovery-on %8.0f ns/apply (%.3fx);"+
			" ckpt %d words/apply, %d words/power-iter, %.0f ns/apply in checkpoint\n",
			sz.Q, sz.P, sz.N, sz.BaseNsPerApply, sz.RecNsPerApply, sz.OverheadRatio,
			sz.ApplyCheckpointWords, sz.PowerCheckpointWords, sz.CheckpointNsPerApply)
	}

	if check != "" {
		checkRecoveryRegression(check, bench)
		return
	}
	// Merge into the parallel benchmark baseline: keep the -parallel
	// sections of an existing file and replace only the recovery section.
	rep := parallelReport{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &rep); err != nil {
			fatal(fmt.Errorf("existing %s: %w", out, err))
		}
	}
	rep.Recovery = bench
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
