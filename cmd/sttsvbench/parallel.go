package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// The -parallel mode benchmarks the session engine against per-call Run:
// a fixed-length power method driven from the host, once with a machine
// relaunch per application (the pre-session usage pattern) and once over a
// resident Session. Both loops perform identical arithmetic and identical
// simulated communication; the difference is pure engine overhead —
// goroutine launch, plan rebuild, and per-application allocation.

type parallelConfig struct {
	Q     int `json:"q"`
	P     int `json:"p"`
	M     int `json:"m"`
	B     int `json:"b"`
	N     int `json:"n"`
	Iters int `json:"iters"`
}

type powerMethodBench struct {
	// PerCall: each iteration calls parallel.Run (machine relaunch per
	// application, pre-packed blocks).
	PerCallNsPerIter   float64 `json:"percall_ns_per_iter"`
	PerCallItersPerSec float64 `json:"percall_iters_per_sec"`
	// Session: identical host-driven loop over one resident Session.
	SessionNsPerIter   float64 `json:"session_ns_per_iter"`
	SessionItersPerSec float64 `json:"session_iters_per_sec"`
	// SessionSpeedup = session iters/sec ÷ per-call iters/sec.
	SessionSpeedup float64 `json:"session_speedup"`
	// Resident: Session.PowerMethod — the whole iteration loop as one
	// resident operation (convergence control via scalar all-reduce).
	ResidentIters       int     `json:"resident_iters"`
	ResidentNsPerIter   float64 `json:"resident_ns_per_iter"`
	ResidentItersPerSec float64 `json:"resident_iters_per_sec"`
}

type batchBench struct {
	Cols        int     `json:"cols"`
	NsPerApply  float64 `json:"ns_per_apply"`
	NsPerCol    float64 `json:"ns_per_col"`
	MsgsPerCol  float64 `json:"msgs_per_col"`  // gather messages ÷ cols (rank 0)
	WordsPerCol int64   `json:"words_per_col"` // gather words ÷ cols (rank 0)
	SpeedupVs1  float64 `json:"speedup_vs_cols1,omitempty"`
}

type parallelReport struct {
	GOOS        string           `json:"goos"`
	GOARCH      string           `json:"goarch"`
	NumCPU      int              `json:"num_cpu"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Timestamp   string           `json:"timestamp"`
	Config      parallelConfig   `json:"config"`
	PowerMethod powerMethodBench `json:"power_method"`
	Batch       []batchBench     `json:"batch"`
}

// normalizeInto writes x/‖y‖ for the next iteration; the per-call and
// session loops share it so their host-side work is identical.
func normalizeInto(x, y []float64) {
	var nrm float64
	for _, v := range y {
		nrm += v * v
	}
	nrm = math.Sqrt(nrm)
	if nrm == 0 {
		nrm = 1
	}
	for i, v := range y {
		x[i] = v / nrm
	}
}

func runParallelBench(out, check string) {
	const (
		q     = 4
		b     = 6
		iters = 100
	)
	part, err := partition.NewSpherical(q)
	if err != nil {
		fatal(err)
	}
	n := part.M * b
	rng := rand.New(rand.NewSource(2026))
	a := tensor.Random(n, rng)
	opts := parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P}
	// Pre-pack the block sets so the per-call loop is measured at its best:
	// the speedup quoted below is engine overhead, not tensor re-extraction.
	blocks, err := parallel.PackRankBlocks(a, part, b)
	if err != nil {
		fatal(err)
	}
	opts.Blocks = blocks

	rep := parallelReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Config:     parallelConfig{Q: q, P: part.P, M: part.M, B: b, N: n, Iters: iters},
	}
	fmt.Printf("sttsvbench -parallel: q=%d (P=%d, m=%d), b=%d, n=%d, %d power iterations\n",
		q, part.P, part.M, b, n, iters)

	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = math.Sin(float64(i+1) * 1.7)
	}
	normalizeInto(x0, x0)

	// Each loop runs reps times and the fastest repetition is kept: the
	// simulated machine's wall time is scheduler-noisy, and min-of-reps is
	// the standard way to expose the deterministic cost underneath.
	const reps = 3
	x := make([]float64, n)
	minOf := func(loop func()) time.Duration {
		best := time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			copy(x, x0)
			start := time.Now()
			loop()
			if el := time.Since(start); el < best {
				best = el
			}
		}
		return best
	}

	// --- per-call Run: machine relaunch every application ---
	copy(x, x0)
	if _, err := parallel.Run(a, x, opts); err != nil { // warm-up
		fatal(err)
	}
	perCall := minOf(func() {
		for it := 0; it < iters; it++ {
			res, err := parallel.Run(a, x, opts)
			if err != nil {
				fatal(err)
			}
			normalizeInto(x, res.Y)
		}
	})

	// --- same loop over one resident session ---
	s, err := parallel.OpenSession(a, opts)
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	copy(x, x0)
	if _, err := s.Apply(x); err != nil { // warm-up
		fatal(err)
	}
	session := minOf(func() {
		for it := 0; it < iters; it++ {
			res, err := s.Apply(x)
			if err != nil {
				fatal(err)
			}
			normalizeInto(x, res.Y)
		}
	})

	// --- Session.PowerMethod: the loop resident on the machine ---
	var er *parallel.EigenResult
	resident := minOf(func() {
		if er, err = s.PowerMethod(parallel.PowerOptions{MaxIter: iters, Tol: 1e-300}); err != nil {
			fatal(err)
		}
	})

	pm := &rep.PowerMethod
	pm.PerCallNsPerIter = float64(perCall.Nanoseconds()) / iters
	pm.PerCallItersPerSec = iters / perCall.Seconds()
	pm.SessionNsPerIter = float64(session.Nanoseconds()) / iters
	pm.SessionItersPerSec = iters / session.Seconds()
	pm.SessionSpeedup = pm.SessionItersPerSec / pm.PerCallItersPerSec
	pm.ResidentIters = er.Iterations
	pm.ResidentNsPerIter = float64(resident.Nanoseconds()) / float64(er.Iterations)
	pm.ResidentItersPerSec = float64(er.Iterations) / resident.Seconds()
	fmt.Printf("  per-call Run   %10.0f ns/iter  %8.1f iters/s\n", pm.PerCallNsPerIter, pm.PerCallItersPerSec)
	fmt.Printf("  session Apply  %10.0f ns/iter  %8.1f iters/s  %.2fx vs per-call\n",
		pm.SessionNsPerIter, pm.SessionItersPerSec, pm.SessionSpeedup)
	fmt.Printf("  resident loop  %10.0f ns/iter  %8.1f iters/s  (%d iters)\n",
		pm.ResidentNsPerIter, pm.ResidentItersPerSec, pm.ResidentIters)

	// --- batch amortization: one schedule, r columns per message ---
	const batchApplies = 30
	var ns1 float64
	for _, cols := range []int{1, 2, 4, 8} {
		X := make([][]float64, cols)
		for l := range X {
			X[l] = append([]float64(nil), x0...)
		}
		if _, err := s.ApplyBatch(X); err != nil { // warm-up (grows arenas)
			fatal(err)
		}
		start := time.Now()
		var gatherMsgs, gatherWords int64
		for i := 0; i < batchApplies; i++ {
			br, err := s.ApplyBatch(X)
			if err != nil {
				fatal(err)
			}
			gatherMsgs, gatherWords = br.Phases[0].SentMsgs[0], br.Phases[0].SentWords[0]
		}
		el := time.Since(start)
		r := batchBench{
			Cols:        cols,
			NsPerApply:  float64(el.Nanoseconds()) / batchApplies,
			NsPerCol:    float64(el.Nanoseconds()) / (batchApplies * float64(cols)),
			MsgsPerCol:  float64(gatherMsgs) / float64(cols),
			WordsPerCol: gatherWords / int64(cols),
		}
		if cols == 1 {
			ns1 = r.NsPerCol
		} else if r.NsPerCol > 0 {
			r.SpeedupVs1 = ns1 / r.NsPerCol
		}
		rep.Batch = append(rep.Batch, r)
		fmt.Printf("  batch cols=%d   %10.0f ns/col   gather %5.1f msgs/col %5d words/col",
			cols, r.NsPerCol, r.MsgsPerCol, r.WordsPerCol)
		if r.SpeedupVs1 != 0 {
			fmt.Printf("  %.2fx vs cols=1", r.SpeedupVs1)
		}
		fmt.Println()
	}

	if check != "" {
		checkParallelRegression(check, &rep)
		return
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// checkParallelRegression compares the measured session speedup against a
// committed baseline: both numbers are machine-relative ratios (session
// vs per-call on the same host), so they transfer across hardware. A drop
// below 0.8× the baseline ratio fails the run.
func checkParallelRegression(path string, rep *parallelReport) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(fmt.Errorf("check baseline: %w", err))
	}
	var base parallelReport
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("check baseline %s: %w", path, err))
	}
	const slack = 0.8
	want := slack * base.PowerMethod.SessionSpeedup
	got := rep.PowerMethod.SessionSpeedup
	fmt.Printf("check: session speedup %.2fx, baseline %.2fx, floor %.2fx\n",
		got, base.PowerMethod.SessionSpeedup, want)
	if got < want {
		fatal(fmt.Errorf("session speedup regressed more than 20%%: %.2fx < %.2fx (baseline %.2fx in %s)",
			got, want, base.PowerMethod.SessionSpeedup, path))
	}
	fmt.Println("check: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sttsvbench:", err)
	os.Exit(1)
}

// runRecoveryDrill (the -recover mode) measures what crash recovery
// costs: the same Apply sequence over one resident session, once on a
// clean machine and once under a seeded multi-rank crash plan with the
// recovery supervisor enabled. The drill verifies the recovered results
// bit-match the clean ones, then reports the wall-clock and wire-traffic
// overhead of the respawn-rollback-replay cycle.
func runRecoveryDrill() {
	const (
		q       = 3
		b       = 4
		applies = 20
	)
	part, err := partition.NewSpherical(q)
	if err != nil {
		fatal(err)
	}
	n := part.M * b
	rng := rand.New(rand.NewSource(2026))
	a := tensor.Random(n, rng)
	xs := make([][]float64, applies)
	for k := range xs {
		xs[k] = make([]float64, n)
		for i := range xs[k] {
			xs[k][i] = rng.NormFloat64()
		}
	}
	fmt.Printf("sttsvbench -recover: q=%d (P=%d, m=%d), b=%d, n=%d, %d applies\n",
		q, part.P, part.M, b, n, applies)

	run := func(opts parallel.Options) ([][]float64, *machine.Report, parallel.RecoveryStats, time.Duration) {
		s, err := parallel.OpenSession(a, opts)
		if err != nil {
			fatal(err)
		}
		ys := make([][]float64, applies)
		start := time.Now()
		for k, x := range xs {
			res, err := s.Apply(x)
			if err != nil {
				fatal(err)
			}
			ys[k] = res.Y
		}
		el := time.Since(start)
		stats := s.RecoveryStats()
		if err := s.Close(); err != nil {
			fatal(err)
		}
		return ys, s.Report(), stats, el
	}

	base := parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P}
	cleanY, cleanRep, _, cleanT := run(base)

	// Crash three ranks at three depths: mid first exchange, mid-run, and
	// deep enough to land several applies in (the supervisor sees them as
	// separate incidents, each one abort-respawn-rollback-replay cycle).
	plan := fault.Plan{Seed: 7, Crash: map[int]int{1: 10, 4: 90, 7: 400}}
	faulted := base
	faulted.Machine = machine.RunConfig{
		Transport: fault.TransportRecoverable(plan, fault.ReliableOptions{MaxAttempts: 1 << 20}),
		Timeout:   5 * time.Second,
	}
	faulted.Recovery = &parallel.RecoveryOptions{}
	recY, recRep, stats, recT := run(faulted)

	for k := range cleanY {
		for i := range cleanY[k] {
			if recY[k][i] != cleanY[k][i] {
				fatal(fmt.Errorf("recovery drill: apply %d diverged from the clean run at element %d", k, i))
			}
		}
	}
	var cleanWire, recWire int64
	for r := 0; r < part.P; r++ {
		cleanWire += cleanRep.WireSentWords[r]
		recWire += recRep.WireSentWords[r]
	}
	fmt.Printf("  clean session      %10v  (%d wire words)\n", cleanT, cleanWire)
	fmt.Printf("  crashed+recovered  %10v  (%d wire words, +%d recovery traffic)\n",
		recT, recWire, recWire-cleanWire)
	fmt.Printf("  recovery: %d rank deaths, %d retries, %d rollbacks, %d respawns, %d relaunches (epoch %d)\n",
		stats.RankDowns, stats.Retries, stats.Rollbacks, stats.Restarts, stats.Relaunches, stats.Epoch)
	fmt.Printf("  results bit-identical across all %d applies; logical meters preserved=%v\n",
		applies, cleanRep.TotalSentWords() == recRep.TotalSentWords() &&
			cleanRep.MaxSentMsgs() == recRep.MaxSentMsgs())
}
