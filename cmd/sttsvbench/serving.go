package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// The -serve mode is the serving-tier load generator: closed-loop
// concurrent clients drive a serve.Pool (session pool + dual-trigger
// request batching) and every point is quoted against the sequential
// one-session baseline measured in the same process. The headline ratio
// is the coalescing win: a schedule step's message count is independent
// of how many columns the message carries, so r coalesced requests cost
// 1× the messages of a solo apply, and batched request throughput pulls
// away from the serial session by roughly the per-message overhead share.
//
// Every response is checked bit-identical to a solo Session.Apply of the
// same vector while the load runs — the generator doubles as a
// correctness harness under concurrency.
//
// Gates (with -check, compared on same-host ratios so they transfer
// across runner hardware):
//   - gate "throughput"   (8 clients, 1 session, MaxCols=8): batched
//     request throughput ≥3× the sequential baseline — the paper's
//     "r users for 1× messages" turned into a serving-rate floor.
//   - gate "throughput64" (64 clients): the same ≥3× floor at scale,
//     plus ≥0.8× the committed baseline's measured speedup.
//   - gate "latency" (capacity-provisioned: clients = MaxCols, 2
//     sessions): p99 request latency ≤ 1.5 × (MaxWait + p99 batch
//     service) — the dual trigger's promise that batching delay stays
//     bounded by the window plus one apply.

type servingPoint struct {
	Clients   int     `json:"clients"`
	Sessions  int     `json:"sessions"`
	MaxCols   int     `json:"max_cols"`
	MaxWaitUs float64 `json:"max_wait_us"`
	QueueCap  int     `json:"queue_cap"`
	// Gate marks the points the -check mode enforces.
	Gate string `json:"gate,omitempty"`

	// Client-side counts over the measured window.
	Requests   int64   `json:"requests"`
	Rejected   int64   `json:"rejected"`
	ReqsPerSec float64 `json:"reqs_per_sec"`
	// Request latency percentiles (admission to response).
	P50Us float64 `json:"p50_us"`
	P95Us float64 `json:"p95_us"`
	P99Us float64 `json:"p99_us"`
	// Batch service time (one ApplyBatch call) seen by the requests.
	ServiceAvgUs float64 `json:"service_avg_us"`
	ServiceP99Us float64 `json:"service_p99_us"`
	// Pool-side batching counters for the whole point (includes priming).
	Batches      int64   `json:"batches"`
	AvgOccupancy float64 `json:"avg_occupancy"`
	SizeFlushes  int64   `json:"size_flushes"`
	WaitFlushes  int64   `json:"wait_flushes"`

	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

type servingReport struct {
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	NumCPU     int            `json:"num_cpu"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Timestamp  string         `json:"timestamp"`
	Config     parallelConfig `json:"config"`
	WindowMs   float64        `json:"window_ms"`
	// Serial baseline: one resident session, one closed-loop client, no
	// batching tier — the denominator of every speedup.
	SerialReqsPerSec float64 `json:"serial_reqs_per_sec"`
	SerialNsPerApply float64 `json:"serial_ns_per_apply"`

	Points []servingPoint `json:"points"`
}

func percentileUs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e3
}

// loadPoint drives one (clients, pool-config) point: closed-loop clients
// issuing back-to-back requests for the window, each response checked
// bit-identical against the solo-session reference for its vector.
func loadPoint(pool *serve.Pool, clients int, window time.Duration, xs, wants [][]float64) (servingPoint, error) {
	// Prime: one request through the pool warms every session's staging
	// before the timed window opens.
	if _, err := pool.Apply("prime", xs[0]); err != nil {
		return servingPoint{}, err
	}

	lats := make([][]time.Duration, clients)
	svcs := make([][]time.Duration, clients)
	var rejected atomic.Int64
	var mismatches atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(window)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			x := xs[c%len(xs)]
			want := wants[c%len(wants)]
			tenant := fmt.Sprintf("tenant-%02d", c%16)
			for time.Now().Before(deadline) {
				t0 := time.Now()
				resp, err := pool.Apply(tenant, x)
				if err != nil {
					var be *serve.BusyError
					if errors.As(err, &be) {
						rejected.Add(1)
						// The hint can span several batches; a bounded nap
						// keeps the closed loop live without hammering the
						// full queue.
						nap := be.RetryAfter
						if nap > time.Millisecond {
							nap = time.Millisecond
						}
						time.Sleep(nap)
						continue
					}
					firstErr.CompareAndSwap(nil, err)
					return
				}
				lats[c] = append(lats[c], time.Since(t0))
				svcs[c] = append(svcs[c], resp.Service)
				if !bitsIdentical(resp.Y, want) {
					mismatches.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return servingPoint{}, err
	}
	if n := mismatches.Load(); n > 0 {
		return servingPoint{}, fmt.Errorf("%d responses were not bit-identical to the solo session", n)
	}

	var all, allSvc []time.Duration
	for c := range lats {
		all = append(all, lats[c]...)
		allSvc = append(allSvc, svcs[c]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	sort.Slice(allSvc, func(i, j int) bool { return allSvc[i] < allSvc[j] })
	var svcSum time.Duration
	for _, s := range allSvc {
		svcSum += s
	}
	pt := servingPoint{
		Clients:  clients,
		Requests: int64(len(all)),
		Rejected: rejected.Load(),
		P50Us:    percentileUs(all, 0.50),
		P95Us:    percentileUs(all, 0.95),
		P99Us:    percentileUs(all, 0.99),
	}
	if elapsed > 0 {
		pt.ReqsPerSec = float64(len(all)) / elapsed.Seconds()
	}
	if len(allSvc) > 0 {
		pt.ServiceAvgUs = float64(svcSum.Nanoseconds()) / float64(len(allSvc)) / 1e3
		pt.ServiceP99Us = percentileUs(allSvc, 0.99)
	}
	return pt, nil
}

func bitsIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func runServingBench(out, check string, window time.Duration) {
	const (
		q = 3
		b = 4
	)
	part, err := partition.NewSpherical(q)
	if err != nil {
		fatal(err)
	}
	n := part.M * b
	rng := rand.New(rand.NewSource(2026))
	a := tensor.Random(n, rng)
	opts := withBackend(parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P})
	blocks, err := parallel.PackRankBlocks(a, part, b)
	if err != nil {
		fatal(err)
	}
	opts.Blocks = blocks

	rep := servingReport{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Config:     parallelConfig{Q: q, P: part.P, M: part.M, B: b, N: n},
		WindowMs:   float64(window.Nanoseconds()) / 1e6,
	}
	fmt.Printf("sttsvbench -serve: q=%d (P=%d, m=%d), b=%d, n=%d, %s window per point\n",
		q, part.P, part.M, b, n, window)

	// Request vectors (16 distinct tenant workloads) and their
	// solo-session reference results — the bit-identity oracle.
	const distinct = 16
	xs := make([][]float64, distinct)
	wants := make([][]float64, distinct)
	solo, err := parallel.OpenSession(a, opts)
	if err != nil {
		fatal(err)
	}
	for i := range xs {
		xs[i] = make([]float64, n)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64()
		}
		res, err := solo.Apply(xs[i])
		if err != nil {
			fatal(err)
		}
		wants[i] = append([]float64(nil), res.Y...)
	}

	// --- serial baseline: one session, one client, no batching tier ---
	var serialReqs int64
	serialStart := time.Now()
	for time.Since(serialStart) < window {
		if _, err := solo.Apply(xs[int(serialReqs)%distinct]); err != nil {
			fatal(err)
		}
		serialReqs++
	}
	serialElapsed := time.Since(serialStart)
	if err := solo.Close(); err != nil {
		fatal(err)
	}
	rep.SerialReqsPerSec = float64(serialReqs) / serialElapsed.Seconds()
	rep.SerialNsPerApply = float64(serialElapsed.Nanoseconds()) / float64(serialReqs)
	fmt.Printf("  serial 1 session, 1 client: %8.1f req/s  (%.2f ms/apply)\n",
		rep.SerialReqsPerSec, rep.SerialNsPerApply/1e6)

	points := []struct {
		clients, sessions, maxCols int
		maxWait                    time.Duration
		queueCap                   int
		gate                       string
	}{
		{8, 1, 8, 2 * time.Millisecond, 0, "throughput"},
		{8, 2, 8, 2 * time.Millisecond, 0, "latency"},
		{64, 2, 8, 2 * time.Millisecond, 0, "throughput64"},
		{64, 2, 4, 500 * time.Microsecond, 0, ""},
		{256, 2, 8, time.Millisecond, 512, ""},
	}
	for _, pc := range points {
		pool, err := serve.Open(a, serve.Options{
			Session:  opts,
			Sessions: pc.sessions,
			MaxCols:  pc.maxCols,
			MaxWait:  pc.maxWait,
			QueueCap: pc.queueCap,
		})
		if err != nil {
			fatal(err)
		}
		pt, err := loadPoint(pool, pc.clients, window, xs, wants)
		if err != nil {
			pool.Close()
			fatal(fmt.Errorf("point clients=%d: %w", pc.clients, err))
		}
		m := pool.Metrics()
		if err := pool.Close(); err != nil {
			fatal(err)
		}
		pt.Sessions = pc.sessions
		pt.MaxCols = pc.maxCols
		pt.MaxWaitUs = float64(pc.maxWait.Nanoseconds()) / 1e3
		pt.QueueCap = pc.queueCap
		if pt.QueueCap == 0 {
			pt.QueueCap = 4 * pc.sessions * pc.maxCols
		}
		pt.Gate = pc.gate
		pt.Batches = m.Batches
		pt.AvgOccupancy = m.AvgOccupancy
		pt.SizeFlushes = m.SizeFlushes
		pt.WaitFlushes = m.WaitFlushes
		if rep.SerialReqsPerSec > 0 {
			pt.SpeedupVsSerial = pt.ReqsPerSec / rep.SerialReqsPerSec
		}
		rep.Points = append(rep.Points, pt)
		fmt.Printf("  %3d clients, %d sess, ≤%d cols/%v: %8.1f req/s  %5.2fx  occ %.2f  p50 %6.0fµs  p99 %7.0fµs  (%d rejected)\n",
			pc.clients, pc.sessions, pc.maxCols, pc.maxWait,
			pt.ReqsPerSec, pt.SpeedupVsSerial, pt.AvgOccupancy, pt.P50Us, pt.P99Us, pt.Rejected)
	}

	if check != "" {
		checkServingRegression(check, &rep)
		return
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}

// checkServingRegression enforces the serving gates on a fresh
// measurement against the committed baseline. All thresholds are
// same-host ratios (batched vs serial measured in this very process), so
// the gate transfers across runner hardware.
func checkServingRegression(path string, rep *servingReport) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(fmt.Errorf("check baseline: %w", err))
	}
	var base servingReport
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("check baseline %s: %w", path, err))
	}
	baseSpeedup := make(map[string]float64)
	for _, pt := range base.Points {
		if pt.Gate != "" {
			baseSpeedup[pt.Gate] = pt.SpeedupVsSerial
		}
	}
	const (
		minSpeedup   = 3.0 // the issue's acceptance floor: batched ≥3× serial
		relSlack     = 0.8 // and no >20% regression vs the committed baseline
		latencySlack = 1.5 // p99 ≤ 1.5 × (MaxWait + p99 service)
	)
	failed := false
	for _, pt := range rep.Points {
		switch pt.Gate {
		case "throughput", "throughput64":
			floor := minSpeedup
			if bs, ok := baseSpeedup[pt.Gate]; ok && relSlack*bs > floor {
				floor = relSlack * bs
			}
			fmt.Printf("check %-13s %3d clients: %.2fx vs serial, floor %.2fx\n",
				pt.Gate, pt.Clients, pt.SpeedupVsSerial, floor)
			if pt.SpeedupVsSerial < floor {
				fmt.Fprintf(os.Stderr, "sttsvbench: gate %s: batched throughput %.2fx below floor %.2fx\n",
					pt.Gate, pt.SpeedupVsSerial, floor)
				failed = true
			}
		case "latency":
			bound := latencySlack * (pt.MaxWaitUs + pt.ServiceP99Us)
			fmt.Printf("check %-13s %3d clients: p99 %.0fµs, bound %.0fµs (MaxWait %.0fµs + service p99 %.0fµs, ×%.1f)\n",
				pt.Gate, pt.Clients, pt.P99Us, bound, pt.MaxWaitUs, pt.ServiceP99Us, latencySlack)
			if pt.P99Us > bound {
				fmt.Fprintf(os.Stderr, "sttsvbench: gate latency: p99 %.0fµs exceeds MaxWait+service bound %.0fµs\n",
					pt.P99Us, bound)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("check: ok")
}
