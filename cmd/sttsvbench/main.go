// Command sttsvbench is the local-kernel regression harness: it measures
// the per-kind block kernels (seed scalar reference vs register-tiled) and
// the packed-operator local phase (scalar baseline vs tiled at several
// worker counts), then writes BENCH_kernels.json for the experiment log.
//
// Cost accounting follows the paper's §3 unit — one ternary multiplication
// a_ijk·x_j·x_k contributing to an output row. Each ternary multiplication
// is two multiplies plus one add on the critical path, so GFLOP/s is
// reported with the documented convention of 3 flops per ternary op.
//
// The -parallel flag switches to the session-engine benchmark instead: a
// fixed-length distributed power method measured once with a machine
// relaunch per application (per-call Run) and once over a resident
// parallel.Session, plus the multi-column batch amortization sweep. It
// writes BENCH_parallel.json; with -check it compares the measured
// session speedup against a committed baseline and fails on a >20%
// regression (see cmd/sttsvbench/parallel.go).
//
// Usage:
//
//	sttsvbench                      # full sweep, writes BENCH_kernels.json
//	sttsvbench -out bench.json      # alternate output path
//	sttsvbench -benchtime 2s        # longer per-measurement budget
//	sttsvbench -parallel            # session engine, writes BENCH_parallel.json
//	sttsvbench -parallel -check BENCH_parallel.json   # regression gate
//	sttsvbench -recover             # crash-recovery drill + checkpoint overhead,
//	                                # merges a recovery section into BENCH_parallel.json
//	sttsvbench -recover -check BENCH_parallel.json    # overhead regression gate
//	sttsvbench -sparse              # sparse/CP fast paths, writes BENCH_sparse.json
//	sttsvbench -sparse -check gate  # additionally enforce the absolute fast-path gates
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/backendflag"
	"repro/internal/parallel"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// flopsPerTernary is the reporting convention: a_ijk·x_j·x_k accumulated
// into y is 2 multiplies + 1 add.
const flopsPerTernary = 3

// backend is the shared -backend=sim|tcp|unix selection; the parallel and
// serving benchmarks run their machines over it, so socket-backend numbers
// come from the same harness as the simulator's.
var backend *backendflag.Options

// withBackend applies the -backend selection to one benchmark's machine
// configuration.
func withBackend(opts parallel.Options) parallel.Options {
	backend.Apply(&opts.Machine)
	return opts
}

type kernelResult struct {
	Kind        string  `json:"kind"`
	Variant     string  `json:"variant"` // "scalar" (seed baseline) or "tiled"
	BlockEdge   int     `json:"block_edge"`
	TernaryOps  int64   `json:"ternary_ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerTern   float64 `json:"ns_per_ternary"`
	GFLOPs      float64 `json:"gflop_per_s"`
	SpeedupVsSc float64 `json:"speedup_vs_scalar,omitempty"`
}

type localResult struct {
	M           int     `json:"m"`
	BlockEdge   int     `json:"block_edge"`
	N           int     `json:"n"`
	Variant     string  `json:"variant"` // "scalar" or "workers=k"
	Workers     int     `json:"workers,omitempty"`
	TernaryOps  int64   `json:"ternary_ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerTern   float64 `json:"ns_per_ternary"`
	GFLOPs      float64 `json:"gflop_per_s"`
	SpeedupVsSc float64 `json:"speedup_vs_scalar,omitempty"`
}

type report struct {
	GOOS            string         `json:"goos"`
	GOARCH          string         `json:"goarch"`
	NumCPU          int            `json:"num_cpu"`
	GOMAXPROCS      int            `json:"gomaxprocs"`
	FlopsPerTernary int            `json:"flops_per_ternary"`
	Timestamp       string         `json:"timestamp"`
	Kernels         []kernelResult `json:"kernels"`
	LocalPhase      []localResult  `json:"local_phase"`
}

var kinds = []struct {
	name    string
	I, J, K int
}{
	{"off-diagonal", 3, 2, 1},
	{"diag-pair-high", 2, 2, 1},
	{"diag-pair-low", 2, 1, 1},
	{"central", 1, 1, 1},
}

type kernelFn func(blk *tensor.Block, xI, xJ, xK, yI, yJ, yK []float64, stats *sttsv.Stats)

func measureKernel(I, J, K, edge int, fn kernelFn) testing.BenchmarkResult {
	rng := rand.New(rand.NewSource(7))
	blk := tensor.NewBlock(I, J, K, edge)
	for i := range blk.Data {
		blk.Data[i] = rng.NormFloat64()
	}
	x := make([]float64, edge)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, edge)
	return testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fn(blk, x, x, x, y, y, y, nil)
		}
	})
}

// scalarLocalPhase applies the seed scalar kernel to every packed block —
// the single-thread baseline all speedups are quoted against.
func scalarLocalPhase(op *sttsv.Operator, x []float64) {
	n, m, b := op.N(), op.M(), op.B()
	xp := make([]float64, m*b)
	copy(xp, x[:n])
	yp := make([]float64, m*b)
	for _, blk := range op.Packed().Blocks {
		I, J, K := blk.I, blk.J, blk.K
		sttsv.BlockContributeScalar(blk,
			xp[I*b:(I+1)*b], xp[J*b:(J+1)*b], xp[K*b:(K+1)*b],
			yp[I*b:(I+1)*b], yp[J*b:(J+1)*b], yp[K*b:(K+1)*b], nil)
	}
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	if r.N == 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func main() {
	out := flag.String("out", "", "output JSON path (default BENCH_kernels.json, or BENCH_parallel.json with -parallel)")
	benchtime := flag.Duration("benchtime", 500*time.Millisecond, "per-measurement budget")
	parallelMode := flag.Bool("parallel", false, "benchmark the session engine instead of the local kernels")
	check := flag.String("check", "", "with -parallel or -recover: compare against this baseline JSON and fail on regression instead of writing output; with -sparse: any non-empty value enforces the absolute fast-path gates")
	recoverDrill := flag.Bool("recover", false, "run the crash-recovery drill: checkpoint overhead at two problem sizes plus a resident session under a seeded multi-rank crash plan")
	serveMode := flag.Bool("serve", false, "benchmark the serving tier: concurrent closed-loop clients against the session pool + dual-trigger batcher, quoted vs the sequential one-session baseline")
	sparseMode := flag.Bool("sparse", false, "benchmark the sparse and low-rank fast paths: dense-vs-sparse crossover, CP scaling, nnz imbalance before/after weighting, and two n≥10⁶ acceptance runs through the session engine")
	backend = backendflag.Register(flag.CommandLine)
	flag.Parse()
	if err := backend.Validate(false); err != nil {
		fmt.Fprintln(os.Stderr, "sttsvbench:", err)
		os.Exit(2)
	}
	if *sparseMode {
		if *out == "" {
			*out = "BENCH_sparse.json"
		}
		runSparseBench(*out, *check, *benchtime)
		return
	}
	if *serveMode {
		if *out == "" {
			*out = "BENCH_serving.json"
		}
		runServingBench(*out, *check, *benchtime)
		return
	}
	if *recoverDrill {
		if *out == "" {
			*out = "BENCH_parallel.json"
		}
		runRecoveryDrill(*out, *check)
		return
	}
	if *parallelMode {
		if *out == "" {
			*out = "BENCH_parallel.json"
		}
		runParallelBench(*out, *check)
		return
	}
	if *out == "" {
		*out = "BENCH_kernels.json"
	}
	// testing.Benchmark honours the package-level -test.benchtime flag;
	// register the testing flags and set it so the tool is self-contained.
	testing.Init()
	if err := flag.CommandLine.Set("test.benchtime", benchtime.String()); err != nil {
		// The testing flags are registered by the testing package import;
		// failure here means the Go toolchain changed underneath us.
		fmt.Fprintln(os.Stderr, "sttsvbench:", err)
		os.Exit(1)
	}

	rep := report{
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		FlopsPerTernary: flopsPerTernary,
		Timestamp:       time.Now().UTC().Format(time.RFC3339),
	}

	fmt.Printf("sttsvbench: %s/%s, %d CPU, GOMAXPROCS=%d, benchtime=%s\n",
		rep.GOOS, rep.GOARCH, rep.NumCPU, rep.GOMAXPROCS, benchtime)

	// Per-kind kernels: scalar (seed) first so the tiled row can quote its
	// speedup against the matching baseline.
	for _, k := range kinds {
		for _, edge := range []int{8, 16, 32, 64} {
			ternary := sttsv.BlockTernaryCount(tensor.KindOfBlock(k.I, k.J, k.K), edge)
			scalarNs := nsPerOp(measureKernel(k.I, k.J, k.K, edge, sttsv.BlockContributeScalar))
			tiledNs := nsPerOp(measureKernel(k.I, k.J, k.K, edge, sttsv.BlockContribute))
			for _, v := range []struct {
				variant string
				ns      float64
			}{{"scalar", scalarNs}, {"tiled", tiledNs}} {
				r := kernelResult{
					Kind: k.name, Variant: v.variant, BlockEdge: edge,
					TernaryOps: ternary,
					NsPerOp:    v.ns,
					NsPerTern:  v.ns / float64(ternary),
					GFLOPs:     flopsPerTernary * float64(ternary) / v.ns,
				}
				if v.variant == "tiled" && tiledNs > 0 {
					r.SpeedupVsSc = scalarNs / tiledNs
				}
				rep.Kernels = append(rep.Kernels, r)
				fmt.Printf("  %-15s %-6s b=%-3d %10.0f ns/op  %6.3f ns/ternary  %6.2f GFLOP/s",
					k.name, v.variant, edge, r.NsPerOp, r.NsPerTern, r.GFLOPs)
				if r.SpeedupVsSc != 0 {
					fmt.Printf("  %.2fx vs scalar", r.SpeedupVsSc)
				}
				fmt.Println()
			}
		}
	}

	// Local phase: one rank's full STTSV application. Three shapes: the
	// paper's q=3 grid (m = 10 row blocks) at a small edge; a
	// cache-resident b=32 shape (m=4 ⇒ ~2.9 MB packed) where the kernel
	// speedup is visible; and the large streamed m=10, b=32 shape
	// (~44 MB packed), which is DRAM-bandwidth-bound — both variants
	// stream the packed tensor once, so the speedup compresses toward
	// the memory roofline there.
	for _, shape := range []struct{ m, edge int }{{10, 8}, {4, 32}, {10, 32}} {
		n := shape.m * shape.edge
		rng := rand.New(rand.NewSource(9))
		a := tensor.Random(n, rng)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ternary := sttsv.PackedTernaryCount(n)

		opSeq := sttsv.NewOperator(a, shape.m, 1)
		scalarNs := nsPerOp(testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				scalarLocalPhase(opSeq, x)
			}
		}))
		add := func(variant string, workers int, ns float64) {
			r := localResult{
				M: shape.m, BlockEdge: shape.edge, N: n,
				Variant: variant, Workers: workers,
				TernaryOps: ternary,
				NsPerOp:    ns,
				NsPerTern:  ns / float64(ternary),
				GFLOPs:     flopsPerTernary * float64(ternary) / ns,
			}
			if variant != "scalar" && ns > 0 {
				r.SpeedupVsSc = scalarNs / ns
			}
			rep.LocalPhase = append(rep.LocalPhase, r)
			fmt.Printf("  local m=%d b=%-3d %-10s %12.0f ns/op  %6.3f ns/ternary  %6.2f GFLOP/s",
				shape.m, shape.edge, variant, r.NsPerOp, r.NsPerTern, r.GFLOPs)
			if r.SpeedupVsSc != 0 {
				fmt.Printf("  %.2fx vs scalar", r.SpeedupVsSc)
			}
			fmt.Println()
		}
		add("scalar", 0, scalarNs)
		for _, workers := range []int{1, 2, 4} {
			op := sttsv.NewOperator(a, shape.m, workers)
			ns := nsPerOp(testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					op.Apply(x, nil)
				}
			}))
			add(fmt.Sprintf("workers=%d", workers), workers, ns)
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "sttsvbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "sttsvbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
