// Sparse and low-rank fast-path benchmark (-sparse): quantifies the three
// claims the fast paths make — (1) packed sparse apply beats the dense
// kernels once the tensor is sparse enough (the crossover curve), (2) the
// factored CP apply is orders of magnitude cheaper than any dense
// evaluation at the same dimension (quoted against a predicted dense time
// from the measured dense ns/ternary, since materializing the dense
// tensor at n=4096 would be absurd), and (3) nnz-weighted diagonal
// assignment flattens the per-rank load skew of a power-law hypergraph.
// It finishes with two in-process acceptance runs at n ≥ 10⁶ — a
// hypergraph power iteration through a sparse session and a CP power
// iteration — sizes at which a dense session could not allocate a single
// rank's blocks. Writes BENCH_sparse.json; with -check the gates are
// enforced and the process fails on a violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/sttsv"
)

type crossoverPoint struct {
	N          int     `json:"n"`
	BlockEdge  int     `json:"block_edge"`
	NNZ        int     `json:"nnz"`
	DensityPct float64 `json:"density_pct"` // nnz / dense packed entries × 100
	DenseNs    float64 `json:"dense_ns_per_apply"`
	SparseNs   float64 `json:"sparse_ns_per_apply"`
	Speedup    float64 `json:"speedup_vs_dense"`
	Gate       string  `json:"gate,omitempty"`
}

type cpScalingPoint struct {
	N                int     `json:"n"`
	R                int     `json:"r"`
	CPNs             float64 `json:"cp_ns_per_apply"`
	DenseNsPerTern   float64 `json:"dense_ns_per_ternary"`
	DenseTernary     int64   `json:"dense_ternary_ops"`
	PredictedDenseNs float64 `json:"predicted_dense_ns_per_apply"`
	PredictedSpeedup float64 `json:"predicted_speedup_vs_dense"`
	Gate             string  `json:"gate,omitempty"`
}

type imbalanceResult struct {
	Q         int     `json:"q"`
	BlockEdge int     `json:"block_edge"`
	N         int     `json:"n"`
	Edges     int     `json:"edges"`
	Skew      float64 `json:"skew"`
	Before    float64 `json:"imbalance_uniform"`
	After     float64 `json:"imbalance_weighted"`
	Gate      string  `json:"gate,omitempty"`
}

type acceptanceRun struct {
	Kind     string  `json:"kind"` // "hypergraph" or "cp"
	N        int     `json:"n"`
	NNZ      int     `json:"nnz,omitempty"`
	R        int     `json:"r,omitempty"`
	P        int     `json:"p"`
	Lambda   float64 `json:"lambda"`
	IterNs   float64 `json:"power_iter_ns"`
	SetupNs  float64 `json:"setup_ns"`
	RankMaxW int     `json:"rank_max_words,omitempty"` // largest per-rank packed storage
}

type sparseReport struct {
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	NumCPU     int              `json:"num_cpu"`
	Timestamp  string           `json:"timestamp"`
	Crossover  []crossoverPoint `json:"crossover"`
	CP         cpScalingPoint   `json:"cp_scaling"`
	Imbalance  imbalanceResult  `json:"imbalance"`
	Acceptance []acceptanceRun  `json:"acceptance"`
}

// randSparse keeps each packed coordinate (i ≥ j ≥ k) with probability
// density — exact control of nnz/dense-entries for the crossover sweep.
func randSparse(n int, density float64, seed int64) *sparse.Tensor {
	rng := rand.New(rand.NewSource(seed))
	var entries []sparse.Entry
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= j; k++ {
				if rng.Float64() < density {
					entries = append(entries, sparse.Entry{I: i, J: j, K: k, V: rng.NormFloat64()})
				}
			}
		}
	}
	sp, err := sparse.New(n, entries)
	if err != nil {
		fatal(err)
	}
	return sp
}

func runSparseBench(out, check string, benchtime time.Duration) {
	testing.Init()
	if err := flag.CommandLine.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}
	rep := sparseReport{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	// --- dense-vs-sparse crossover ---
	// One dimension, one dense baseline, a density sweep on the sparse
	// side: the dense apply touches every packed entry regardless of
	// zeros, the packed sparse apply touches nnz stored values.
	const (
		xoN = 256
		xoM = 8
		xoB = xoN / xoM
	)
	denseEntries := xoN * (xoN + 1) * (xoN + 2) / 6
	rng := rand.New(rand.NewSource(31))
	x := make([]float64, xoN)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// Dense baseline: the production operator, single worker (the sparse
	// path is also single-threaded here — kernel vs kernel).
	denseRef := randSparse(xoN, 0.10, 32).Dense()
	denseOp := sttsv.NewOperator(denseRef, xoM, 1)
	denseNs := nsPerOp(testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			denseOp.Apply(x, nil)
		}
	}))
	denseTernPerNs := denseNs / float64(sttsv.PackedTernaryCount(xoN))

	fmt.Printf("sttsvbench -sparse: crossover at n=%d (dense %d entries, %.0f ns/apply)\n",
		xoN, denseEntries, denseNs)
	for _, density := range []float64{0.10, 0.03, 0.01, 0.003, 0.001} {
		sp := randSparse(xoN, density, 33)
		pk, err := sparse.Pack(sp, xoB)
		if err != nil {
			fatal(err)
		}
		sparseNs := nsPerOp(testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pk.ApplyPacked(x, nil)
			}
		}))
		pt := crossoverPoint{
			N: xoN, BlockEdge: xoB, NNZ: sp.NNZ(),
			DensityPct: 100 * float64(sp.NNZ()) / float64(denseEntries),
			DenseNs:    denseNs,
			SparseNs:   sparseNs,
			Speedup:    denseNs / sparseNs,
		}
		// The first point at or below 1% density carries the gate.
		if pt.DensityPct <= 1.0 {
			tagged := false
			for _, prev := range rep.Crossover {
				if prev.Gate == "crossover" {
					tagged = true
				}
			}
			if !tagged {
				pt.Gate = "crossover"
			}
		}
		rep.Crossover = append(rep.Crossover, pt)
		fmt.Printf("  density %6.3f%%  nnz %8d  sparse %10.0f ns/apply  %6.2fx vs dense%s\n",
			pt.DensityPct, pt.NNZ, pt.SparseNs, pt.Speedup, gateTag(pt.Gate))
	}

	// --- CP low-rank scaling ---
	// n=4096 is far past any dense evaluation; the dense time is predicted
	// from the measured dense ns/ternary at n=256 times the n=4096 ternary
	// count — a *favourable* estimate for dense (larger problems run
	// slower per ternary, not faster).
	{
		const cpN, cpR = 4096, 16
		op := randCPBench(cpN, cpR, 34)
		xc := make([]float64, cpN)
		for i := range xc {
			xc[i] = rng.NormFloat64()
		}
		cpNs := nsPerOp(testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op.Apply(xc, nil)
			}
		}))
		denseTern := sttsv.PackedTernaryCount(cpN)
		rep.CP = cpScalingPoint{
			N: cpN, R: cpR,
			CPNs:             cpNs,
			DenseNsPerTern:   denseTernPerNs,
			DenseTernary:     denseTern,
			PredictedDenseNs: denseTernPerNs * float64(denseTern),
			Gate:             "cp",
		}
		rep.CP.PredictedSpeedup = rep.CP.PredictedDenseNs / cpNs
		fmt.Printf("  cp n=%d r=%d: %0.f ns/apply, predicted dense %.3g ns → %.0fx [gate cp]\n",
			cpN, cpR, cpNs, rep.CP.PredictedDenseNs, rep.CP.PredictedSpeedup)
	}

	// --- nnz imbalance before/after weighting ---
	{
		const q, b, skew = 2, 16, 1.3
		uni, err := partition.NewSpherical(q)
		if err != nil {
			fatal(err)
		}
		n := uni.M * b
		edges := 32 * n
		sp, err := sparse.SkewedHypergraph(n, edges, skew, 35)
		if err != nil {
			fatal(err)
		}
		counts := sparse.BlockCounts(sp, b)
		weight := func(c partition.Coord) int64 { return counts[[3]int{c.I, c.J, c.K}] }
		wp, err := partition.NewSphericalWeighted(q, weight)
		if err != nil {
			fatal(err)
		}
		imb := func(p *partition.Tetrahedral) float64 {
			srb, err := parallel.PackSparseRankBlocks(sp, p, b)
			if err != nil {
				fatal(err)
			}
			return obs.ComputeLoadStats(srb.Loads()).Imbalance
		}
		rep.Imbalance = imbalanceResult{
			Q: q, BlockEdge: b, N: n, Edges: edges, Skew: skew,
			Before: imb(uni), After: imb(wp), Gate: "imbalance",
		}
		fmt.Printf("  imbalance skew=%.1f: uniform %.3f → weighted %.3f [gate imbalance]\n",
			skew, rep.Imbalance.Before, rep.Imbalance.After)
	}

	// --- acceptance: n ≥ 10⁶ through the session engine ---
	{
		const (
			accN     = 1_000_000
			accEdges = 10 * accN // nnz ~ 10·n
			q        = 2
		)
		part, err := partition.NewSpherical(q)
		if err != nil {
			fatal(err)
		}
		b := (accN + part.M - 1) / part.M
		setup := time.Now()
		sp, err := sparse.RandomHypergraph(accN, accEdges, 36)
		if err != nil {
			fatal(err)
		}
		srb, err := parallel.PackSparseRankBlocks(sp, part, b)
		if err != nil {
			fatal(err)
		}
		s, err := parallel.OpenSession(nil, parallel.Options{
			Part: part, B: b, Wiring: parallel.WiringP2P, Sparse: srb,
		})
		if err != nil {
			fatal(err)
		}
		setupNs := float64(time.Since(setup).Nanoseconds())
		maxW := 0
		for p := 0; p < part.P; p++ {
			w := 0
			for _, blk := range srb.Rank(p) {
				w += blk.Words()
			}
			if w > maxW {
				maxW = w
			}
		}
		start := time.Now()
		eig, err := s.PowerMethod(parallel.PowerOptions{MaxIter: 1, Seed: 1})
		if err != nil {
			fatal(err)
		}
		iterNs := float64(time.Since(start).Nanoseconds())
		s.Close()
		rep.Acceptance = append(rep.Acceptance, acceptanceRun{
			Kind: "hypergraph", N: accN, NNZ: sp.NNZ(), P: part.P,
			Lambda: eig.Lambda, IterNs: iterNs, SetupNs: setupNs, RankMaxW: maxW,
		})
		fmt.Printf("  acceptance hypergraph n=%d nnz=%d P=%d: power iter %.2fs (setup %.2fs), λ=%.3g\n",
			accN, sp.NNZ(), part.P, iterNs/1e9, setupNs/1e9, eig.Lambda)
	}
	{
		const accN, accR, accP = 1_000_000, 16, 8
		setup := time.Now()
		op := randCPBench(accN, accR, 37)
		s, err := parallel.OpenCPSession(op, parallel.CPOptions{P: accP})
		if err != nil {
			fatal(err)
		}
		setupNs := float64(time.Since(setup).Nanoseconds())
		start := time.Now()
		eig, err := s.PowerMethod(parallel.PowerOptions{MaxIter: 1, Seed: 1})
		if err != nil {
			fatal(err)
		}
		iterNs := float64(time.Since(start).Nanoseconds())
		s.Close()
		rep.Acceptance = append(rep.Acceptance, acceptanceRun{
			Kind: "cp", N: accN, R: accR, P: accP,
			Lambda: eig.Lambda, IterNs: iterNs, SetupNs: setupNs,
		})
		fmt.Printf("  acceptance cp n=%d r=%d P=%d: power iter %.2fs (setup %.2fs), λ=%.3g\n",
			accN, accR, accP, iterNs/1e9, setupNs/1e9, eig.Lambda)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", out)

	if check != "" {
		checkSparseGates(&rep)
	}
}

// checkSparseGates enforces the fast-path acceptance gates on a fresh
// report. The gates are absolute (no baseline file): the claims are
// asymptotic, not machine-tuned.
func checkSparseGates(rep *sparseReport) {
	const (
		minSparseSpeedup = 5.0  // sparse ≥ 5× dense at ≤ 1% density
		minCPSpeedup     = 50.0 // CP ≥ 50× predicted dense at n=4096
		maxImbalance     = 1.3  // weighted nnz makespan / mean
	)
	failed := false
	for _, pt := range rep.Crossover {
		if pt.Gate != "crossover" {
			continue
		}
		fmt.Printf("check crossover: %.2fx vs dense at %.3f%% density, floor %.1fx\n",
			pt.Speedup, pt.DensityPct, minSparseSpeedup)
		if pt.Speedup < minSparseSpeedup {
			fmt.Fprintf(os.Stderr, "sttsvbench: gate crossover: sparse %.2fx below %.1fx at %.3f%% density\n",
				pt.Speedup, minSparseSpeedup, pt.DensityPct)
			failed = true
		}
	}
	fmt.Printf("check cp: %.0fx vs predicted dense, floor %.0fx\n", rep.CP.PredictedSpeedup, minCPSpeedup)
	if rep.CP.PredictedSpeedup < minCPSpeedup {
		fmt.Fprintf(os.Stderr, "sttsvbench: gate cp: %.0fx below %.0fx\n", rep.CP.PredictedSpeedup, minCPSpeedup)
		failed = true
	}
	fmt.Printf("check imbalance: weighted %.3f (uniform %.3f), ceiling %.1f\n",
		rep.Imbalance.After, rep.Imbalance.Before, maxImbalance)
	if rep.Imbalance.After > maxImbalance {
		fmt.Fprintf(os.Stderr, "sttsvbench: gate imbalance: weighted %.3f exceeds %.1f\n",
			rep.Imbalance.After, maxImbalance)
		failed = true
	}
	if rep.Imbalance.After > rep.Imbalance.Before {
		fmt.Fprintf(os.Stderr, "sttsvbench: gate imbalance: weighting worsened load (%.3f → %.3f)\n",
			rep.Imbalance.Before, rep.Imbalance.After)
		failed = true
	}
	if len(rep.Acceptance) != 2 {
		fmt.Fprintf(os.Stderr, "sttsvbench: gate acceptance: %d of 2 n≥10⁶ runs completed\n", len(rep.Acceptance))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("check: ok")
}

func gateTag(g string) string {
	if g == "" {
		return ""
	}
	return " [gate " + g + "]"
}

// randCPBench builds a random rank-r CP operator for benchmarking.
func randCPBench(n, r int, seed int64) *sttsv.CPOperator {
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, r)
	vectors := make([][]float64, r)
	for k := 0; k < r; k++ {
		weights[k] = rng.NormFloat64()
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		vectors[k] = v
	}
	op, err := sttsv.NewCPOperator(weights, vectors)
	if err != nil {
		fatal(err)
	}
	return op
}
