// Package sttsv is a Go library for Symmetric-Tensor-Times-Same-Vector
// computation, reproducing "Minimizing Communication for Parallel Symmetric
// Tensor Times Same Vector Computation" (Al Daas, Ballard, Grigori, Kumar,
// Rouse, Vérité — SPAA 2025).
//
// The package computes y = A ×₂ x ×₃ x for a fully symmetric n×n×n tensor
// A — elementwise y_i = Σ_{j,k} a_ijk·x_j·x_k — which is the bottleneck of
// the higher-order power method for tensor Z-eigenpairs and of symmetric CP
// gradient methods. It provides:
//
//   - packed symmetric tensor storage and sequential kernels (the paper's
//     Algorithms 3 and 4);
//   - the communication-optimal parallel algorithm (Algorithm 5) on a
//     simulated distributed-memory machine with exact communication
//     metering, built on tetrahedral block partitions generated from
//     Steiner (q²+1, q+1, 3) systems;
//   - the applications of §1: the higher-order power method (plus the
//     shifted SS-HOPM variant) and the symmetric CP gradient with a
//     gradient-descent decomposition driver;
//   - the closed-form cost model of the paper (lower bounds, algorithm
//     costs, schedule lengths) for experiment regeneration.
//
// This root package is a facade: the implementation lives in internal
// packages (tensor, sttsv, partition, schedule, machine, collective,
// parallel, hopm, steiner, gf, costmodel) and the most useful entry points
// are re-exported here under stable names.
package sttsv

import (
	"math/rand"

	"repro/internal/costmodel"
	"repro/internal/hopm"
	"repro/internal/la"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/steiner"
	internalsttsv "repro/internal/sttsv"
	"repro/internal/tensor"
)

// Tensor is a fully symmetric 3-tensor in packed lower-tetrahedron storage
// (n(n+1)(n+2)/6 values for dimension n).
type Tensor = tensor.Symmetric

// Dense is a full n×n×n cube, used by the naive algorithm and as an
// oracle.
type Dense = tensor.Dense

// Partition is a tetrahedral block partition (§6 of the paper).
type Partition = partition.Tetrahedral

// Schedule is a point-to-point communication schedule (§7.2).
type Schedule = schedule.Schedule

// SteinerSystem is a verified Steiner (n, r, 3) system.
type SteinerSystem = steiner.System

// Stats accumulates ternary-multiplication counts.
type Stats = internalsttsv.Stats

// Factors is a dense n×r factor matrix for symmetric CP.
type Factors = la.Matrix

// EigenOptions configures the higher-order power method.
type EigenOptions = hopm.Options

// Eigenpair is a Z-eigenpair candidate from the power method.
type Eigenpair = hopm.Eigenpair

// CPOptions configures the symmetric CP gradient-descent driver.
type CPOptions = hopm.CPOptions

// CPResult reports a symmetric CP decomposition attempt.
type CPResult = hopm.CPResult

// ParallelOptions configures a simulated parallel run of Algorithm 5.
type ParallelOptions = parallel.Options

// ParallelResult reports a simulated parallel run, including the per-rank
// communication meters.
type ParallelResult = parallel.Result

// Wiring selects how Algorithm 5 realizes its two vector exchanges.
type Wiring = parallel.Wiring

// Wiring constants: the communication-optimal point-to-point schedule and
// the fixed-width All-to-All of the pseudocode (2× the optimal bandwidth).
const (
	WiringP2P      = parallel.WiringP2P
	WiringAllToAll = parallel.WiringAllToAll
)

// --- tensor construction ---

// NewTensor returns the zero symmetric tensor of dimension n.
func NewTensor(n int) *Tensor { return tensor.NewSymmetric(n) }

// RandomTensor returns a symmetric tensor with uniform(-1,1) lower-
// tetrahedron entries drawn deterministically from seed.
func RandomTensor(n int, seed int64) *Tensor {
	return tensor.Random(n, rand.New(rand.NewSource(seed)))
}

// RankOneTensor returns w·v∘v∘v.
func RankOneTensor(w float64, v []float64) *Tensor { return tensor.RankOne(w, v) }

// CPTensor returns Σ_ℓ w_ℓ·v_ℓ∘v_ℓ∘v_ℓ.
func CPTensor(weights []float64, vectors [][]float64) (*Tensor, error) {
	return tensor.CP(weights, vectors)
}

// HypergraphTensor returns the adjacency tensor of a 3-uniform hypergraph
// (entries 1/2 at each hyperedge, the standard centrality normalization).
func HypergraphTensor(n int, edges [][3]int) (*Tensor, error) {
	return tensor.HypergraphAdjacency(n, edges)
}

// RandomHypergraphTensor samples m distinct hyperedges on n vertices.
func RandomHypergraphTensor(n, m int, seed int64) (*Tensor, error) {
	return tensor.RandomHypergraph(n, m, rand.New(rand.NewSource(seed)))
}

// --- sequential computation ---

// Compute evaluates y = A ×₂ x ×₃ x with the symmetry-exploiting
// Algorithm 4 (n²(n+1)/2 ternary multiplications). A nil stats disables
// operation counting.
func Compute(a *Tensor, x []float64, stats *Stats) []float64 {
	return internalsttsv.Packed(a, x, stats)
}

// ComputeNaive evaluates STTSV with Algorithm 3 on a dense cube (all n³
// ternary multiplications) — the correctness oracle and baseline.
func ComputeNaive(a *Dense, x []float64, stats *Stats) []float64 {
	return internalsttsv.Naive(a, x, stats)
}

// ComputeBlocked evaluates STTSV through the tetrahedral block kernels on
// an m×m×m block grid — the sequential skeleton of Algorithm 5's local
// phase.
func ComputeBlocked(a *Tensor, x []float64, m int, stats *Stats) []float64 {
	return internalsttsv.Blocked(a, x, m, stats)
}

// ComputeBlockedParallel evaluates STTSV through the block kernels with
// the shared-memory executor: blocks are distributed across `workers`
// goroutines (0 selects GOMAXPROCS) with per-worker accumulators and a
// deterministic tree reduction, so output bits are reproducible for a
// fixed worker count. For repeated applications of one tensor, build a
// BlockedOperator instead.
func ComputeBlockedParallel(a *Tensor, x []float64, m, workers int, stats *Stats) []float64 {
	return internalsttsv.BlockedParallel(a, x, m, workers, stats)
}

// BlockedOperator is a reusable blocked STTSV applier: the tensor is
// extracted once into contiguous kind-grouped block storage and every
// Apply reuses it, optionally multicore. Not safe for concurrent Apply
// calls.
type BlockedOperator = internalsttsv.Operator

// NewBlockedOperator packs a on an m×m×m block grid for repeated
// applications with `workers` local-compute goroutines (0 = GOMAXPROCS,
// 1 = sequential).
func NewBlockedOperator(a *Tensor, m, workers int) *BlockedOperator {
	return internalsttsv.NewOperator(a, m, workers)
}

// Lambda returns A ×₁x ×₂x ×₃x = xᵀ(A ×₂x ×₃x).
func Lambda(a *Tensor, x []float64) float64 {
	return internalsttsv.Dot(x, internalsttsv.Packed(a, x, nil))
}

// --- partitions and parallel computation ---

// NewPartition builds the tetrahedral block partition for prime power q:
// m = q²+1 row blocks, P = q(q²+1) processors (the spherical Steiner
// family of §6).
func NewPartition(q int) (*Partition, error) { return partition.NewSpherical(q) }

// NewPartitionFromSteiner builds a partition from any Steiner (m, r, 3)
// system (for example steiner.SQS8() with P = 14, the paper's Appendix A).
func NewPartitionFromSteiner(sys *SteinerSystem) (*Partition, error) {
	return partition.New(sys)
}

// SQS8 returns the Steiner (8,4,3) quadruple system of the paper's
// Appendix A example.
func SQS8() *SteinerSystem { return steiner.SQS8() }

// SphericalSteiner returns the Steiner (q²+1, q+1, 3) system for prime
// power q.
func SphericalSteiner(q int) (*SteinerSystem, error) { return steiner.Spherical(q) }

// BuildSchedule constructs the point-to-point communication schedule of
// §7.2 for a partition.
func BuildSchedule(part *Partition) (*Schedule, error) { return schedule.Build(part) }

// ParallelCompute runs Algorithm 5 on the simulated machine. The tensor
// may be nil for pure communication measurements (all blocks zero).
func ParallelCompute(a *Tensor, x []float64, opts ParallelOptions) (*ParallelResult, error) {
	return parallel.Run(a, x, opts)
}

// Session is a persistent parallel STTSV engine: the simulated machine is
// launched once against a fixed (tensor, partition, schedule, block edge,
// wiring) configuration and then serves a stream of operations — Apply,
// ApplyBatch, PowerMethod, MTTKRP — until Close. Every result is
// bit-identical to the corresponding one-shot call (ParallelCompute,
// DistributedPowerMethod, ParallelMTTKRP), but the machine launch, plan
// precomputation and all message buffers are paid once: the steady-state
// exchange path performs no allocations.
type Session = parallel.Session

// BatchResult reports a multi-column session application.
type BatchResult = parallel.BatchResult

// RecoveryOptions opts a session into crash recovery (set
// ParallelOptions.Recovery): rank deaths are absorbed by checkpointed
// rollback and replay behind an epoch fence, with bounded retries and a
// degraded full-relaunch fallback. Committed results stay bit-identical
// to the crash-free session and logical meters count committed work
// exactly once; recovery overhead appears only on the wire meters.
type RecoveryOptions = parallel.RecoveryOptions

// RecoveryStats counts the supervisor's interventions over a session's
// lifetime (Session.RecoveryStats).
type RecoveryStats = parallel.RecoveryStats

// ErrSessionBusy is returned (wrapped) by Session operations invoked
// while another operation is in flight; match with errors.Is.
var ErrSessionBusy = parallel.ErrSessionBusy

// OpenSession launches a persistent session. The tensor may be nil for
// pure communication measurements. Callers must Close the session to stop
// the resident ranks.
func OpenSession(a *Tensor, opts ParallelOptions) (*Session, error) {
	return parallel.OpenSession(a, opts)
}

// RankBlocks caches per-rank extracted block sets so repeated
// ParallelCompute calls on one tensor skip re-extraction (set
// ParallelOptions.Blocks).
type RankBlocks = parallel.RankBlocks

// PackRankBlocks extracts every rank's tetrahedral block set once for
// reuse across simulated applications.
func PackRankBlocks(a *Tensor, part *Partition, b int) (*RankBlocks, error) {
	return parallel.PackRankBlocks(a, part, b)
}

// RowBaselineCompute runs the 1D row-partition baseline (Θ(n) words per
// processor) on the simulated machine.
func RowBaselineCompute(a *Tensor, x []float64, p int) (*ParallelResult, error) {
	return parallel.RunRowBaseline(a, x, p)
}

// --- applications ---

// PowerMethod runs Algorithm 1 (higher-order power method; SS-HOPM when
// opts.Shift != 0) to find a Z-eigenpair of a.
func PowerMethod(a *Tensor, opts EigenOptions) (*Eigenpair, error) {
	return hopm.PowerMethod(hopm.PackedSTTSV(a), a.N, opts)
}

// PowerMethodBlocked runs Algorithm 1 through a reusable block-packed
// operator: the tensor is tiled once and every iteration reuses it, with
// `workers` local-compute goroutines (0 = GOMAXPROCS, 1 = sequential).
func PowerMethodBlocked(a *Tensor, m, workers int, opts EigenOptions) (*Eigenpair, error) {
	return hopm.PowerMethod(hopm.BlockedSTTSV(a, m, workers), a.N, opts)
}

// SuggestedShift returns a shift making SS-HOPM provably convergent on a.
func SuggestedShift(a *Tensor) float64 { return hopm.SuggestedShift(a) }

// CPGradient computes Algorithm 2: the gradient of the symmetric CP
// objective f(X) = 1/6·‖A − Σ_ℓ x_ℓ∘x_ℓ∘x_ℓ‖².
func CPGradient(a *Tensor, x *Factors) *Factors { return hopm.CPGradientTensor(a, x) }

// CPObjective evaluates the symmetric CP objective without forming the
// residual tensor.
func CPObjective(a *Tensor, x *Factors) float64 { return hopm.CPObjective(a, x) }

// SymmetricCP fits a rank-r symmetric CP model by gradient descent on the
// Algorithm 2 gradient.
func SymmetricCP(a *Tensor, r int, opts CPOptions) (*CPResult, error) {
	return hopm.SymmetricCP(a, r, opts)
}

// ExtractRankOnes pulls r rank-one components out of a by power iteration
// with deflation.
func ExtractRankOnes(a *Tensor, r int, opts EigenOptions) ([]float64, [][]float64, error) {
	return hopm.ExtractRankOnes(a, r, opts)
}

// NewFactors returns a zero n×r factor matrix.
func NewFactors(n, r int) *Factors { return la.NewMatrix(n, r) }

// --- cost model (paper formulas) ---

// LowerBoundWords returns the Theorem 5.2 communication lower bound
// 2·(n(n−1)(n−2)/P)^{1/3} − 2n/P.
func LowerBoundWords(n, p int) float64 { return costmodel.LowerBoundWords(n, p) }

// OptimalWords returns Algorithm 5's per-processor bandwidth with the
// point-to-point wiring: 2·(n(q+1)/(q²+1) − n/P).
func OptimalWords(n, q int) float64 { return costmodel.OptimalWords(n, q) }

// AllToAllWords returns the All-to-All wiring's bandwidth
// 4n/(q+1)·(1−1/P) — twice the lower bound's leading term.
func AllToAllWords(n, q int) float64 { return costmodel.AllToAllWords(n, q) }

// Processors returns P = q(q²+1).
func Processors(q int) int { return costmodel.Processors(q) }

// ScheduleSteps returns the §7.2.2 point-to-point step count
// q³/2 + 3q²/2 − 1.
func ScheduleSteps(q int) int { return schedule.TheoreticalSteps(q) }
