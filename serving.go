package sttsv

import (
	"repro/internal/serve"
)

// This file exposes the multi-tenant serving tier (internal/serve): a
// pool of resident Sessions over one shared packed tensor, fronted by an
// admission queue and a dual-trigger batching scheduler that coalesces
// concurrent single-vector requests into multi-column ApplyBatch calls.
// A schedule step's message count does not depend on how many columns
// the message carries, so r coalesced tenants cost r× the words but 1×
// the messages of r solo applies — the serving tier turns that property
// into request throughput. See cmd/sttsvserve for the HTTP front end and
// DESIGN.md ("Serving tier") for the batching policy and its guarantees.

// ServePool is the serving tier: Apply coalesces concurrent callers into
// shared batches, with every response bit-identical to a solo
// Session.Apply of the same vector.
type ServePool = serve.Pool

// ServeOptions configures a pool: the Session template, pool size, and
// the dual flush triggers (MaxCols / MaxWait) with the admission bound.
type ServeOptions = serve.Options

// ServeResponse is one caller's demultiplexed slice of a coalesced
// batch: the result vector plus its amortized share of the phase meters.
type ServeResponse = serve.Response

// ServeBusyError is the structured admission rejection (queue depth,
// bound, retry hint); it matches errors.Is(err, ErrSessionBusy).
type ServeBusyError = serve.BusyError

// ErrServePoolClosed is returned by ServePool.Apply after Close.
var ErrServePoolClosed = serve.ErrPoolClosed

// OpenServePool packs the tensor once, shares it across the pool's
// sessions, and starts the batching scheduler.
func OpenServePool(a *Tensor, opts ServeOptions) (*ServePool, error) {
	return serve.Open(a, opts)
}
