package serve

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// metrics aggregates the pool's admission and batching counters. One
// mutex suffices: every update happens once per request (admission /
// rejection) or once per batch (flush), never inside the per-step
// exchange path, so contention is bounded by the request rate, not the
// schedule length.
type metrics struct {
	mu sync.Mutex

	requests    int64
	rejected    int64
	batches     int64
	batchErrors int64

	sizeFlushes  int64
	waitFlushes  int64
	drainFlushes int64

	occupancySum int64
	maxOccupancy int

	queueWaitNs    int64
	queueWaitMaxNs int64
	serviceNs      int64
	serviceMaxNs   int64

	tenants map[string]*tenantAgg
}

type tenantAgg struct {
	requests       int64
	rejected       int64
	sentWords      int64
	sentMsgs       float64
	queueWaitNs    int64
	queueWaitMaxNs int64
}

func newMetrics() *metrics {
	return &metrics{tenants: make(map[string]*tenantAgg)}
}

func (m *metrics) tenant(name string) *tenantAgg {
	t := m.tenants[name]
	if t == nil {
		t = &tenantAgg{}
		m.tenants[name] = t
	}
	return t
}

func (m *metrics) reject(tenant string) {
	m.mu.Lock()
	m.rejected++
	m.tenant(tenant).rejected++
	m.mu.Unlock()
}

// flush records one completed batch: the trigger that fired it, its
// occupancy, each member's queue wait, and — on success — each tenant's
// amortized share of the batch's traffic.
func (m *metrics) flush(batch []*request, trig Trigger, service time.Duration, shares []parallel.PhaseShare, start time.Time, failed bool) {
	var shareWords int64
	var shareMsgs float64
	for _, sh := range shares {
		shareWords += sh.SentWords
		shareMsgs += sh.SentMsgs
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	if failed {
		m.batchErrors++
	}
	switch trig {
	case TriggerSize:
		m.sizeFlushes++
	case TriggerWait:
		m.waitFlushes++
	case TriggerDrain:
		m.drainFlushes++
	}
	m.occupancySum += int64(len(batch))
	if len(batch) > m.maxOccupancy {
		m.maxOccupancy = len(batch)
	}
	m.serviceNs += service.Nanoseconds()
	if ns := service.Nanoseconds(); ns > m.serviceMaxNs {
		m.serviceMaxNs = ns
	}
	for _, r := range batch {
		m.requests++
		wait := start.Sub(r.enq).Nanoseconds()
		if wait < 0 {
			wait = 0
		}
		m.queueWaitNs += wait
		if wait > m.queueWaitMaxNs {
			m.queueWaitMaxNs = wait
		}
		t := m.tenant(r.tenant)
		t.requests++
		t.queueWaitNs += wait
		if wait > t.queueWaitMaxNs {
			t.queueWaitMaxNs = wait
		}
		if !failed {
			t.sentWords += shareWords
			t.sentMsgs += shareMsgs
		}
	}
}

// avgServiceNs is the measured mean per-batch service time, feeding the
// BusyError retry hint. Zero before the first completed batch.
func (m *metrics) avgServiceNs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.batches == 0 {
		return 0
	}
	return m.serviceNs / m.batches
}

const nsPerUs = 1e3

// snapshot flattens the counters into the obs serving-metrics shape,
// tenants sorted by name for stable output.
func (m *metrics) snapshot(sessions, maxCols int, maxWait time.Duration) obs.ServingSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := obs.ServingSnapshot{
		Sessions:  sessions,
		MaxCols:   maxCols,
		MaxWaitUs: float64(maxWait.Nanoseconds()) / nsPerUs,
		Requests:  m.requests, Rejected: m.rejected,
		Batches: m.batches, BatchErrors: m.batchErrors,
		SizeFlushes: m.sizeFlushes, WaitFlushes: m.waitFlushes, DrainFlushes: m.drainFlushes,
		MaxOccupancy:   m.maxOccupancy,
		QueueWaitMaxUs: float64(m.queueWaitMaxNs) / nsPerUs,
		ServiceMaxUs:   float64(m.serviceMaxNs) / nsPerUs,
	}
	if m.batches > 0 {
		s.AvgOccupancy = float64(m.occupancySum) / float64(m.batches)
		s.ServiceAvgUs = float64(m.serviceNs) / float64(m.batches) / nsPerUs
	}
	if m.requests > 0 {
		s.QueueWaitAvgUs = float64(m.queueWaitNs) / float64(m.requests) / nsPerUs
	}
	names := make([]string, 0, len(m.tenants))
	for name := range m.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := m.tenants[name]
		tn := obs.ServingTenant{
			Tenant: name, Requests: t.requests, Rejected: t.rejected,
			SentWords: t.sentWords, SentMsgs: t.sentMsgs,
			QueueWaitMaxUs: float64(t.queueWaitMaxNs) / nsPerUs,
		}
		if t.requests > 0 {
			tn.QueueWaitAvgUs = float64(t.queueWaitNs) / float64(t.requests) / nsPerUs
		}
		s.Tenants = append(s.Tenants, tn)
	}
	return s
}
