package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/sparse"
	"repro/internal/sttsv"
)

func sparseSetup(t testing.TB, q, b int, density float64, seed int64) (*sparse.Tensor, parallel.Options) {
	t.Helper()
	part, err := partition.NewSpherical(q)
	if err != nil {
		t.Fatal(err)
	}
	n := part.M * b
	rng := rand.New(rand.NewSource(seed))
	var entries []sparse.Entry
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= j; k++ {
				if rng.Float64() < density {
					entries = append(entries, sparse.Entry{I: i, J: j, K: k, V: rng.NormFloat64()})
				}
			}
		}
	}
	sp, err := sparse.New(n, entries)
	if err != nil {
		t.Fatal(err)
	}
	return sp, parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P}
}

// TestSparsePoolBitIdentical: responses served through a sparse pool —
// coalesced or not — must be bit-identical to a solo sparse
// Session.Apply, which the parallel conformance suite in turn pins to
// the dense scalar-kernel session.
func TestSparsePoolBitIdentical(t *testing.T) {
	sp, so := sparseSetup(t, 2, 5, 0.15, 1200)
	n := sp.N
	srb, err := parallel.PackSparseRankBlocks(sp, so.Part, so.B)
	if err != nil {
		t.Fatal(err)
	}
	soloOpts := so
	soloOpts.Sparse = srb
	solo, err := parallel.OpenSession(nil, soloOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()

	pool, err := OpenSparse(sp, Options{
		Session:  so,
		Sessions: 2,
		MaxCols:  4,
		MaxWait:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Dim() != n {
		t.Fatalf("Dim() = %d, want %d", pool.Dim(), n)
	}

	const reqs = 12
	rng := rand.New(rand.NewSource(1201))
	xs := make([][]float64, reqs)
	want := make([][]float64, reqs)
	for i := range xs {
		xs[i] = randVec(n, rng)
		res, err := solo.Apply(xs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Y
	}

	var wg sync.WaitGroup
	errs := make([]error, reqs)
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := pool.Apply(fmt.Sprintf("tenant-%d", i%3), xs[i])
			if err != nil {
				errs[i] = err
				return
			}
			if !bitsEqual(resp.Y, want[i]) {
				errs[i] = fmt.Errorf("request %d: pooled sparse response differs from solo apply", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSparsePoolSharesPackedBlocks: OpenSparse must pack once and share
// the cache across sessions, and a caller-supplied cache must be used
// as-is (no repacking).
func TestSparsePoolSharesPackedBlocks(t *testing.T) {
	sp, so := sparseSetup(t, 2, 4, 0.2, 1300)
	srb, err := parallel.PackSparseRankBlocks(sp, so.Part, so.B)
	if err != nil {
		t.Fatal(err)
	}
	so.Sparse = srb
	pool, err := OpenSparse(sp, Options{Session: so, Sessions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	rng := rand.New(rand.NewSource(1301))
	if _, err := pool.Apply("t", randVec(sp.N, rng)); err != nil {
		t.Fatal(err)
	}
}

// TestCPPoolBitIdentical: a CP pool's responses must be bit-identical to
// the sequential ApplyChunked oracle at the pool's rank count.
func TestCPPoolBitIdentical(t *testing.T) {
	const n, r, ranks = 120, 6, 4
	rng := rand.New(rand.NewSource(1400))
	weights := make([]float64, r)
	vectors := make([][]float64, r)
	for k := 0; k < r; k++ {
		weights[k] = rng.NormFloat64()
		vectors[k] = randVec(n, rng)
	}
	op, err := sttsv.NewCPOperator(weights, vectors)
	if err != nil {
		t.Fatal(err)
	}

	pool, err := OpenCP(op, ranks, Options{
		Sessions: 2,
		MaxCols:  4,
		MaxWait:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Dim() != n {
		t.Fatalf("Dim() = %d, want %d", pool.Dim(), n)
	}

	const reqs = 10
	xs := make([][]float64, reqs)
	want := make([][]float64, reqs)
	for i := range xs {
		xs[i] = randVec(n, rng)
		want[i] = op.ApplyChunked(xs[i], ranks, nil)
	}

	var wg sync.WaitGroup
	errs := make([]error, reqs)
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := pool.Apply(fmt.Sprintf("tenant-%d", i%2), xs[i])
			if err != nil {
				errs[i] = err
				return
			}
			if !bitsEqual(resp.Y, want[i]) {
				errs[i] = fmt.Errorf("request %d: pooled CP response differs from ApplyChunked oracle", i)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	snap := pool.Metrics()
	if snap.Requests != reqs {
		t.Fatalf("metrics recorded %d requests, want %d", snap.Requests, reqs)
	}
}

// TestOpenVariantsRejectNil pins fail-fast validation on the new
// constructors.
func TestOpenVariantsRejectNil(t *testing.T) {
	if _, err := OpenSparse(nil, Options{}); err == nil {
		t.Error("OpenSparse(nil) accepted")
	}
	if _, err := OpenCP(nil, 2, Options{}); err == nil {
		t.Error("OpenCP(nil) accepted")
	}
}
