package serve

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/tensor"
)

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func randVec(n int, rng *rand.Rand) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func testSetup(t testing.TB, q, b int, seed int64) (*tensor.Symmetric, parallel.Options) {
	t.Helper()
	part, err := partition.NewSpherical(q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	a := tensor.Random(part.M*b, rng)
	return a, parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P}
}

// TestPoolBitIdentical is the serving-tier correctness bar: every
// response served through the coalescing pool — whatever batch its
// request landed in — must be bit-identical to a solo Session.Apply of
// the same vector.
func TestPoolBitIdentical(t *testing.T) {
	a, so := testSetup(t, 2, 4, 1100)
	n := a.N

	solo, err := parallel.OpenSession(a, so)
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()

	pool, err := Open(a, Options{
		Session:  so,
		Sessions: 2,
		MaxCols:  4,
		MaxWait:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Dim() != n {
		t.Fatalf("Dim() = %d, want %d", pool.Dim(), n)
	}

	const tenants = 6
	const perTenant = 5
	rng := rand.New(rand.NewSource(1101))
	xs := make([][]float64, tenants*perTenant)
	want := make([][]float64, len(xs))
	for i := range xs {
		xs[i] = randVec(n, rng)
		res, err := solo.Apply(xs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append([]float64(nil), res.Y...)
	}

	var wg sync.WaitGroup
	errc := make(chan error, len(xs))
	var maxBatch atomic.Int64
	for ti := 0; ti < tenants; ti++ {
		for k := 0; k < perTenant; k++ {
			i := ti*perTenant + k
			wg.Add(1)
			go func(ti, i int) {
				defer wg.Done()
				resp, err := pool.Apply(string(rune('A'+ti)), xs[i])
				if err != nil {
					errc <- err
					return
				}
				if !bitsEqual(resp.Y, want[i]) {
					t.Errorf("request %d: pooled Y not bit-identical to solo Apply", i)
				}
				if resp.BatchCols < 1 || resp.BatchCols > 4 {
					t.Errorf("request %d: BatchCols = %d outside [1,MaxCols]", i, resp.BatchCols)
				}
				if int64(resp.BatchCols) > maxBatch.Load() {
					maxBatch.Store(int64(resp.BatchCols))
				}
				if resp.SentWords() <= 0 {
					t.Errorf("request %d: SentWords share %d", i, resp.SentWords())
				}
				if resp.SentMsgs() <= 0 {
					t.Errorf("request %d: SentMsgs share %g", i, resp.SentMsgs())
				}
			}(ti, i)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if !errors.Is(err, parallel.ErrSessionBusy) {
			t.Fatalf("pool.Apply: %v", err)
		}
	}

	m := pool.Metrics()
	if m.Requests+m.Rejected == 0 {
		t.Fatal("no requests recorded")
	}
	if m.Batches != m.SizeFlushes+m.WaitFlushes+m.DrainFlushes {
		t.Errorf("batches %d != size %d + wait %d + drain %d",
			m.Batches, m.SizeFlushes, m.WaitFlushes, m.DrainFlushes)
	}
	var tenantReqs int64
	for _, tn := range m.Tenants {
		tenantReqs += tn.Requests
	}
	if tenantReqs != m.Requests {
		t.Errorf("tenant request sum %d != pool requests %d", tenantReqs, m.Requests)
	}
	if m.MaxOccupancy != int(maxBatch.Load()) {
		t.Errorf("MaxOccupancy %d, responses saw %d", m.MaxOccupancy, maxBatch.Load())
	}
}

// TestWaitTrigger: with a size trigger far out of reach, a lone request
// must still be served within (roughly) MaxWait — the latency trigger
// fires, and the batch reports it.
func TestWaitTrigger(t *testing.T) {
	a, so := testSetup(t, 2, 2, 1102)
	pool, err := Open(a, Options{Session: so, MaxCols: 64, MaxWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	rng := rand.New(rand.NewSource(1103))
	resp, err := pool.Apply("loner", randVec(a.N, rng))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Trigger != TriggerWait {
		t.Errorf("Trigger = %v, want %v", resp.Trigger, TriggerWait)
	}
	if resp.BatchCols != 1 {
		t.Errorf("BatchCols = %d, want 1", resp.BatchCols)
	}
	if m := pool.Metrics(); m.WaitFlushes != 1 {
		t.Errorf("WaitFlushes = %d, want 1", m.WaitFlushes)
	}
}

// TestSizeTrigger: with the latency window effectively infinite, a
// saturating burst must flush on size alone, at full occupancy.
func TestSizeTrigger(t *testing.T) {
	a, so := testSetup(t, 2, 2, 1104)
	const cols = 4
	pool, err := Open(a, Options{Session: so, MaxCols: cols, MaxWait: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1105))
	var wg sync.WaitGroup
	for i := 0; i < cols; i++ {
		x := randVec(a.N, rng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := pool.Apply("burst", x)
			if err != nil {
				t.Errorf("Apply: %v", err)
				return
			}
			if resp.Trigger != TriggerSize {
				t.Errorf("Trigger = %v, want %v", resp.Trigger, TriggerSize)
			}
			if resp.BatchCols != cols {
				t.Errorf("BatchCols = %d, want %d", resp.BatchCols, cols)
			}
		}()
	}
	wg.Wait()
	m := pool.Metrics()
	if m.SizeFlushes != 1 || m.Batches != 1 {
		t.Errorf("SizeFlushes = %d, Batches = %d, want 1, 1", m.SizeFlushes, m.Batches)
	}
	if m.AvgOccupancy != cols {
		t.Errorf("AvgOccupancy = %g, want %d", m.AvgOccupancy, cols)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestQueueFullBusy: a burst beyond QueueCap must fail fast with a
// structured *BusyError that still matches parallel.ErrSessionBusy, and
// the pool must keep serving afterwards.
func TestQueueFullBusy(t *testing.T) {
	a, so := testSetup(t, 2, 2, 1106)
	pool, err := Open(a, Options{
		Session:  so,
		MaxCols:  2,
		MaxWait:  50 * time.Millisecond,
		QueueCap: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	rng := rand.New(rand.NewSource(1107))
	x := randVec(a.N, rng)
	const burst = 64
	var wg sync.WaitGroup
	var busy, served atomic.Int64
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := pool.Apply("flood", x)
			switch {
			case err == nil:
				served.Add(1)
			case errors.Is(err, parallel.ErrSessionBusy):
				busy.Add(1)
				var be *BusyError
				if !errors.As(err, &be) {
					t.Errorf("busy rejection is %T, want *BusyError", err)
					return
				}
				if be.QueueCap != 2 {
					t.Errorf("BusyError.QueueCap = %d, want 2", be.QueueCap)
				}
				if be.RetryAfter <= 0 {
					t.Errorf("BusyError.RetryAfter = %v, want > 0", be.RetryAfter)
				}
			default:
				t.Errorf("Apply: %v", err)
			}
		}()
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Error("no request was ever served")
	}
	if busy.Load() == 0 {
		t.Error("no request was ever rejected; queue bound untested (raise burst)")
	}
	m := pool.Metrics()
	if m.Rejected != busy.Load() {
		t.Errorf("Metrics.Rejected = %d, callers saw %d", m.Rejected, busy.Load())
	}

	// The pool is not poisoned by rejections: a quiet follow-up succeeds.
	if _, err := pool.Apply("after", x); err != nil {
		t.Fatalf("Apply after rejections: %v", err)
	}
}

// TestCloseSemantics: Close drains already-admitted requests (served,
// not errored), later Applies get ErrPoolClosed, and Close is
// idempotent.
func TestCloseSemantics(t *testing.T) {
	a, so := testSetup(t, 2, 2, 1108)
	pool, err := Open(a, Options{Session: so, MaxCols: 8, MaxWait: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1109))
	const inflight = 3
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		x := randVec(a.N, rng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := pool.Apply("drain", x)
			if err != nil {
				t.Errorf("admitted request errored on close: %v", err)
				return
			}
			if resp.Trigger != TriggerDrain {
				t.Errorf("Trigger = %v, want %v", resp.Trigger, TriggerDrain)
			}
		}()
	}
	// Give the requests time to be admitted (the minute-long window
	// guarantees they are still queued, not flushed).
	time.Sleep(20 * time.Millisecond)
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if _, err := pool.Apply("late", randVec(a.N, rng)); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Apply after Close: %v, want ErrPoolClosed", err)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if m := pool.Metrics(); m.DrainFlushes == 0 {
		t.Error("DrainFlushes = 0 after draining close")
	}
}

// TestApplyValidation: a wrong-length vector is rejected before
// admission — no queue slot consumed, no batch formed.
func TestApplyValidation(t *testing.T) {
	a, so := testSetup(t, 2, 2, 1110)
	pool, err := Open(a, Options{Session: so})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.Apply("bad", make([]float64, a.N+1)); err == nil {
		t.Fatal("oversized vector accepted")
	}
	if m := pool.Metrics(); m.Requests != 0 || m.Batches != 0 {
		t.Errorf("validation failure reached the scheduler: %+v", m)
	}
}

// TestOpenSharedBlocks: the pool packs the tensor once and shares the
// blocks across sessions; a caller-packed RankBlocks is used as-is.
func TestOpenSharedBlocks(t *testing.T) {
	a, so := testSetup(t, 2, 3, 1111)
	blocks, err := parallel.PackRankBlocks(a, so.Part, so.B)
	if err != nil {
		t.Fatal(err)
	}
	so.Blocks = blocks
	pool, err := Open(a, Options{Session: so, Sessions: 3, MaxCols: 2, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	rng := rand.New(rand.NewSource(1112))
	x := randVec(a.N, rng)
	solo, err := parallel.OpenSession(a, so)
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	want, err := solo.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := pool.Apply("t", x)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(resp.Y, want.Y) {
		t.Fatal("shared-blocks pool Y not bit-identical to solo Apply")
	}
}
