package serve

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/parallel"
)

// ErrPoolClosed is returned by Apply on a pool that has been Closed.
var ErrPoolClosed = errors.New("serve: pool closed")

// BusyError is the serving tier's structured admission rejection: the
// queue was full when the request arrived. It replaces the engine's bare
// ErrSessionBusy at this layer with actionable context — how deep the
// queue was and how long the caller should back off before retrying —
// while still matching errors.Is(err, parallel.ErrSessionBusy), so
// callers written against the single-tenant session keep working.
type BusyError struct {
	// QueueDepth is the admission-queue occupancy observed at rejection.
	QueueDepth int
	// QueueCap is the queue bound the pool was opened with.
	QueueCap int
	// RetryAfter is the pool's backoff hint: the estimated time for the
	// queued backlog to drain through the batching scheduler (one batching
	// window plus the measured per-batch service time per MaxCols queued
	// requests). Zero when the pool has no service-time history yet.
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("serve: admission queue full (%d/%d queued, retry after %v)",
		e.QueueDepth, e.QueueCap, e.RetryAfter)
}

// Is makes errors.Is(err, parallel.ErrSessionBusy) hold: a full queue is
// the pool-level incarnation of "the engine is busy".
func (e *BusyError) Is(target error) bool {
	return target == parallel.ErrSessionBusy
}
