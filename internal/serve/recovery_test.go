package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/parallel"
)

// TestBatchRecoveryComposition fires a crash plan during a coalesced
// multi-tenant ApplyBatch with the recovery supervisor armed. Every
// tenant's committed result must be bit-identical to a solo Apply on a
// crash-free session, and the recovery incident must be attributed once
// — to the batch that absorbed it — not once per coalesced column.
func TestBatchRecoveryComposition(t *testing.T) {
	a, so := testSetup(t, 2, 4, 1200)
	n := a.N

	clean, err := parallel.OpenSession(a, so)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()

	const tenants = 4
	rng := rand.New(rand.NewSource(1201))
	xs := make([][]float64, tenants)
	want := make([][]float64, tenants)
	for i := range xs {
		xs[i] = randVec(n, rng)
		res, err := clean.Apply(xs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = append([]float64(nil), res.Y...)
	}

	// One session, one batch: the generous latency window coalesces all
	// four tenants into a single flush, and the crash plan kills rank 1
	// mid-schedule inside that flush.
	crashed := so
	crashed.Machine = machine.RunConfig{
		Transport: fault.TransportRecoverable(fault.Plan{Seed: 7, Crash: map[int]int{1: 4}},
			fault.ReliableOptions{MaxAttempts: 1 << 20}),
		Timeout: 2 * time.Second,
	}
	crashed.Recovery = &parallel.RecoveryOptions{}
	pool, err := Open(a, Options{
		Session:  crashed,
		Sessions: 1,
		MaxCols:  tenants,
		MaxWait:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	var wg sync.WaitGroup
	got := make([]*Response, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := pool.Apply("tenant", xs[i])
			if err != nil {
				t.Errorf("tenant %d: %v", i, err)
				return
			}
			got[i] = resp
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i := range got {
		if !bitsEqual(got[i].Y, want[i]) {
			t.Errorf("tenant %d: recovered batch Y not bit-identical to crash-free solo Apply", i)
		}
	}

	st := pool.RecoveryStats()
	if st.RankDowns != 1 {
		t.Errorf("RankDowns = %d, want exactly 1: one crash, one incident, however many columns rode the batch", st.RankDowns)
	}
	if st.Retries == 0 && st.Rollbacks == 0 && st.Restarts == 0 {
		t.Error("recovery supervisor recorded no intervention; crash plan never fired")
	}
}
