// Package serve is the multi-tenant serving tier over the resident
// session engine: a pool of N parallel.Sessions sharing one immutable
// packed tensor (parallel.RankBlocks), an admission queue, and a
// dual-trigger batching scheduler that coalesces concurrent Apply
// requests from independent clients into single multi-column ApplyBatch
// calls.
//
// The economics come straight from the paper's schedule: a step's message
// count is independent of how many columns the message carries, so r
// coalesced requests cost r× the words but 1× the messages of a solo
// apply — the α (per-message) term, which dominates at the paper's block
// sizes, is split r ways. The batcher turns that property into serving
// throughput: under concurrent load the pool's request rate approaches
// MaxCols× the single-session serial rate.
//
// Batching policy (dual trigger): an arriving request opens a batch; the
// batch flushes when it reaches MaxCols columns (size trigger) or when
// its oldest member has waited MaxWait (latency trigger), whichever comes
// first. Requests are admitted in FIFO order and batches are formed from
// consecutive arrivals, so no request can be overtaken by a later one
// into an earlier flush; a drained batch (pool closing) flushes whatever
// it holds. Each flush claims a free session, runs one ApplyBatch, and
// demultiplexes the per-column outputs — and each request's amortized
// share of the phase meters — back to the callers.
//
// Every response is bit-identical to a solo Session.Apply of the same
// vector: ApplyBatch's column independence (proved by the session
// conformance suite) is what makes transparent coalescing sound.
package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sparse"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// Options configures a serving pool.
type Options struct {
	// Session is the engine configuration template every pooled session
	// is opened with: partition, block edge, wiring, machine config,
	// workers, recovery. Session.Blocks, when nil, is packed once at pool
	// open and shared read-only across all sessions — the tensor is
	// extracted once, not once per session. Session.MaxCols is raised to
	// the pool's MaxCols so arenas are presized for full batches.
	Session parallel.Options
	// Sessions is the pool size N. Default 1.
	Sessions int
	// MaxCols is the size flush trigger: a batch flushes the moment it
	// holds this many columns. Default 8.
	MaxCols int
	// MaxWait is the latency flush trigger: a batch flushes once its
	// oldest request has waited this long, full or not. Default 500µs.
	MaxWait time.Duration
	// QueueCap bounds the admission queue; a request arriving on a full
	// queue is rejected with *BusyError rather than queued without bound.
	// Default 4 × Sessions × MaxCols.
	QueueCap int
}

func (o Options) withDefaults() Options {
	if o.Sessions < 1 {
		o.Sessions = 1
	}
	if o.MaxCols < 1 {
		o.MaxCols = 8
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 500 * time.Microsecond
	}
	if o.QueueCap < 1 {
		o.QueueCap = 4 * o.Sessions * o.MaxCols
	}
	return o
}

// Trigger records which of the two flush conditions fired a batch.
type Trigger uint8

const (
	// TriggerSize: the batch reached MaxCols columns.
	TriggerSize Trigger = iota
	// TriggerWait: the oldest request hit the MaxWait deadline.
	TriggerWait
	// TriggerDrain: the pool was closing and flushed the remainder.
	TriggerDrain
)

func (t Trigger) String() string {
	switch t {
	case TriggerSize:
		return "size"
	case TriggerWait:
		return "wait"
	case TriggerDrain:
		return "drain"
	}
	return fmt.Sprintf("Trigger(%d)", uint8(t))
}

// Response is one tenant's demultiplexed slice of a coalesced batch.
type Response struct {
	// Y is the result vector, bit-identical to a solo Session.Apply of
	// the request vector.
	Y []float64
	// BatchCols is how many requests shared the flush that served this
	// one (1 = the request rode alone).
	BatchCols int
	// Trigger is the flush condition that fired the batch.
	Trigger Trigger
	// QueueWait is the time from admission to flush dispatch — bounded by
	// MaxWait plus the wait for a free session.
	QueueWait time.Duration
	// Service is the wall time of the batch's ApplyBatch call.
	Service time.Duration
	// Shares is this request's amortized slice of the batch's per-phase
	// meters (exact per-column words and compute, 1/cols messages).
	Shares []parallel.PhaseShare
	// Steps is the schedule length per exchange phase.
	Steps int
}

// SentWords sums the response's per-phase word shares.
func (r *Response) SentWords() int64 {
	var w int64
	for _, sh := range r.Shares {
		w += sh.SentWords
	}
	return w
}

// SentMsgs sums the response's amortized per-phase message shares.
func (r *Response) SentMsgs() float64 {
	var m float64
	for _, sh := range r.Shares {
		m += sh.SentMsgs
	}
	return m
}

type outcome struct {
	resp *Response
	err  error
}

type request struct {
	tenant string
	x      []float64
	enq    time.Time
	done   chan outcome
}

// Pool is the serving tier: call Apply from any number of goroutines;
// Close drains the queue, flushes the remainder, and retires the
// sessions.
type Pool struct {
	opts   Options
	n      int // required request vector length
	sess   []*parallel.Session
	free   chan *parallel.Session
	queue  chan *request
	met    *metrics
	booted time.Time

	mu     sync.RWMutex // guards closed against queue sends
	closed bool

	schedDone chan struct{}
	flushes   sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// Open packs the tensor once, launches the session pool, and starts the
// batching scheduler. The tensor may be nil (zero blocks — the serving
// dimension is then the padded partition dimension m·b).
func Open(a *tensor.Symmetric, opts Options) (*Pool, error) {
	o := opts.withDefaults()
	so := o.Session
	if so.Part == nil {
		return nil, fmt.Errorf("serve: nil partition")
	}
	if so.B < 1 {
		return nil, fmt.Errorf("serve: block edge %d", so.B)
	}
	if so.MaxCols < o.MaxCols {
		so.MaxCols = o.MaxCols
	}
	if so.Blocks == nil {
		blocks, err := parallel.PackRankBlocks(a, so.Part, so.B)
		if err != nil {
			return nil, err
		}
		so.Blocks = blocks
	}
	o.Session = so
	n := so.Part.M * so.B
	if a != nil {
		n = a.N
	}
	return openPool(n, o, func(int) (*parallel.Session, error) {
		return parallel.OpenSession(a, so)
	})
}

// OpenSparse launches a pool of sparse sessions over one shared packed
// sparse block set: the tensor's nonzeros are packed once (CSF fiber
// blocks, O(nnz) words) and every pooled session reads the same
// immutable cache — the sparse analogue of Open's one-time dense
// extraction, and the configuration that serves hypergraph problems at
// n ≥ 10⁶ where a dense pool could not allocate a single session.
// Responses are bit-identical to a solo sparse Session.Apply, which the
// parallel conformance suite pins to the dense scalar-kernel session.
func OpenSparse(sp *sparse.Tensor, opts Options) (*Pool, error) {
	if sp == nil {
		return nil, fmt.Errorf("serve: nil sparse tensor")
	}
	o := opts.withDefaults()
	so := o.Session
	if so.Part == nil {
		return nil, fmt.Errorf("serve: nil partition")
	}
	if so.B < 1 {
		return nil, fmt.Errorf("serve: block edge %d", so.B)
	}
	if so.MaxCols < o.MaxCols {
		so.MaxCols = o.MaxCols
	}
	if so.Sparse == nil {
		srb, err := parallel.PackSparseRankBlocks(sp, so.Part, so.B)
		if err != nil {
			return nil, err
		}
		so.Sparse = srb
	}
	o.Session = so
	return openPool(sp.N, o, func(int) (*parallel.Session, error) {
		return parallel.OpenSession(nil, so)
	})
}

// OpenCP launches a pool of low-rank CP sessions over one shared
// operator (O(nr) words, read-only). ranks is the per-session rank
// count; the pool Options' Machine and Recovery settings carry over from
// the Session template, while partitioning fields are ignored — a CP
// session synthesizes its own row layout. Per-request communication is
// O(r) words per rank regardless of n, so a CP pool batches exactly like
// a tetrahedral one but serves n ≥ 10⁶ from megabytes of state.
func OpenCP(op *sttsv.CPOperator, ranks int, opts Options) (*Pool, error) {
	if op == nil {
		return nil, fmt.Errorf("serve: nil CP operator")
	}
	o := opts.withDefaults()
	maxCols := o.Session.MaxCols
	if maxCols < o.MaxCols {
		maxCols = o.MaxCols
	}
	copts := parallel.CPOptions{
		P:        ranks,
		Machine:  o.Session.Machine,
		MaxCols:  maxCols,
		Recovery: o.Session.Recovery,
	}
	return openPool(op.N, o, func(int) (*parallel.Session, error) {
		return parallel.OpenCPSession(op, copts)
	})
}

// openPool is the shared pool-construction core: it launches Sessions
// sessions via open, wires the free list and admission queue, and starts
// the batching scheduler. n is the serving dimension.
func openPool(n int, o Options, open func(i int) (*parallel.Session, error)) (*Pool, error) {
	p := &Pool{
		opts:      o,
		n:         n,
		free:      make(chan *parallel.Session, o.Sessions),
		queue:     make(chan *request, o.QueueCap),
		met:       newMetrics(),
		booted:    time.Now(),
		schedDone: make(chan struct{}),
	}
	for i := 0; i < o.Sessions; i++ {
		s, err := open(i)
		if err != nil {
			for _, prev := range p.sess {
				prev.Close()
			}
			return nil, fmt.Errorf("serve: session %d: %w", i, err)
		}
		p.sess = append(p.sess, s)
		p.free <- s
	}
	go p.scheduler()
	return p, nil
}

// Dim returns the request vector length the pool serves.
func (p *Pool) Dim() int { return p.n }

// Apply submits one tenant request and blocks until its batch completes.
// The call is safe from any number of goroutines; requests are admitted
// FIFO and coalesced with concurrent arrivals. A full queue fails fast
// with *BusyError (matching errors.Is(err, parallel.ErrSessionBusy)); a
// closed pool fails with ErrPoolClosed.
func (p *Pool) Apply(tenant string, x []float64) (*Response, error) {
	if len(x) != p.n {
		return nil, fmt.Errorf("serve: vector length %d, serving dimension %d", len(x), p.n)
	}
	req := &request{tenant: tenant, x: x, enq: time.Now(), done: make(chan outcome, 1)}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrPoolClosed
	}
	select {
	case p.queue <- req:
		p.mu.RUnlock()
	default:
		depth := len(p.queue)
		p.mu.RUnlock()
		p.met.reject(tenant)
		return nil, &BusyError{QueueDepth: depth, QueueCap: p.opts.QueueCap, RetryAfter: p.retryHint(depth)}
	}
	out := <-req.done
	return out.resp, out.err
}

// retryHint estimates how long a rejected caller should back off: the
// queued backlog in batches times the measured per-batch service time,
// plus one batching window. Before any batch has completed it falls back
// to the batching window alone.
func (p *Pool) retryHint(depth int) time.Duration {
	hint := p.opts.MaxWait
	if avg := p.met.avgServiceNs(); avg > 0 {
		batches := int64(depth/p.opts.MaxCols + 1)
		hint += time.Duration(batches * avg)
	}
	return hint
}

// scheduler is the single batching goroutine: it forms batches from the
// FIFO queue under the dual trigger and hands each to a free session.
// Forming the next batch does not require a session — the fill window
// overlaps fully with in-flight batches — but dispatch blocks until one
// frees up, which is what backpressures the queue.
func (p *Pool) scheduler() {
	defer close(p.schedDone)
	for {
		first, ok := <-p.queue
		if !ok {
			return
		}
		batch, trig := p.fill(first)
		sess := <-p.free
		p.flushes.Add(1)
		go p.flush(sess, batch, trig)
	}
}

// fill grows a batch from consecutive queue arrivals until the size
// trigger (MaxCols reached), the latency trigger (the first request's
// MaxWait deadline), or the drain trigger (queue closed) fires.
//
// Already-queued requests join unconditionally first: under backlog the
// oldest request is past its MaxWait deadline the moment it is dequeued,
// and consulting the deadline before draining would flush singleton
// batches exactly when coalescing matters most. The latency trigger only
// bounds how long a non-full batch waits for requests that have not
// arrived yet.
func (p *Pool) fill(first *request) ([]*request, Trigger) {
	batch := []*request{first}
	for len(batch) < p.opts.MaxCols {
		select {
		case r, ok := <-p.queue:
			if !ok {
				return batch, TriggerDrain
			}
			batch = append(batch, r)
			continue
		default:
		}
		break
	}
	if len(batch) == p.opts.MaxCols {
		return batch, TriggerSize
	}
	wait := p.opts.MaxWait - time.Since(first.enq)
	if wait <= 0 {
		return batch, TriggerWait
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for len(batch) < p.opts.MaxCols {
		select {
		case r, ok := <-p.queue:
			if !ok {
				return batch, TriggerDrain
			}
			batch = append(batch, r)
		case <-timer.C:
			return batch, TriggerWait
		}
	}
	return batch, TriggerSize
}

// flush runs one coalesced batch on sess and demultiplexes the outcome.
// The session returns to the free list as soon as ApplyBatch is done
// (the batch result owns fresh column copies), before the per-request
// fan-out.
func (p *Pool) flush(sess *parallel.Session, batch []*request, trig Trigger) {
	defer p.flushes.Done()
	X := make([][]float64, len(batch))
	for i, r := range batch {
		X[i] = r.x
	}
	start := time.Now()
	br, err := sess.ApplyBatch(X)
	service := time.Since(start)
	p.free <- sess
	if err != nil {
		err = fmt.Errorf("serve: batch of %d failed: %w", len(batch), err)
		p.met.flush(batch, trig, service, nil, start, true)
		for _, r := range batch {
			r.done <- outcome{err: err}
		}
		return
	}
	shares := br.Shares()
	p.met.flush(batch, trig, service, shares, start, false)
	for l, r := range batch {
		r.done <- outcome{resp: &Response{
			Y:         br.Y[l],
			BatchCols: len(batch),
			Trigger:   trig,
			QueueWait: start.Sub(r.enq),
			Service:   service,
			Shares:    shares,
			Steps:     br.Steps,
		}}
	}
}

// Metrics returns the pool's serving counters so far, in the obs
// serving-metrics shape (exportable with obs.WriteServingMetricsJSONL).
func (p *Pool) Metrics() obs.ServingSnapshot {
	return p.met.snapshot(p.opts.Sessions, p.opts.MaxCols, p.opts.MaxWait)
}

// RecoveryStats sums the crash-recovery supervisor counters across the
// pooled sessions (all zero unless Options.Session.Recovery was set).
// Each recovery incident is attributed once to the session that absorbed
// it, regardless of how many tenant columns the aborted batch carried.
func (p *Pool) RecoveryStats() parallel.RecoveryStats {
	var total parallel.RecoveryStats
	for _, s := range p.sess {
		st := s.RecoveryStats()
		total.RankDowns += st.RankDowns
		total.Retries += st.Retries
		total.Rollbacks += st.Rollbacks
		total.Restarts += st.Restarts
		total.Relaunches += st.Relaunches
		total.Verifications += st.Verifications
		total.Mismatches += st.Mismatches
		total.Refences += st.Refences
		total.FullRebinds += st.FullRebinds
		total.CheckpointWords += st.CheckpointWords
		total.CheckpointNanos += st.CheckpointNanos
		total.RestoreNanos += st.RestoreNanos
		if st.Epoch > total.Epoch {
			total.Epoch = st.Epoch
		}
	}
	return total
}

// Close stops admission, drains the queue (every already-admitted
// request is served), waits for in-flight batches, and retires the
// sessions. Safe to call more than once; Apply after Close returns
// ErrPoolClosed.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		close(p.queue)
		p.mu.Unlock()
		<-p.schedDone
		p.flushes.Wait()
		for _, s := range p.sess {
			if err := s.Close(); err != nil && p.closeErr == nil {
				p.closeErr = err
			}
		}
	})
	return p.closeErr
}
