// nnz-aware diagonal assignment. The Steiner system fixes the
// communication structure — which processor owns which off-diagonal
// blocks and row-block chunks — but §6.1.3's diagonal placement is free:
// any processor whose R_p contains a diagonal block's row indices may own
// it. The count-balanced Dinic assignment of New treats all blocks as
// equal dense volume; for sparse workloads (skewed hypergraphs
// especially) that can hot-spot one rank with most of the nonzeros. The
// weighted variant keeps the Steiner skeleton and assigns diagonal
// blocks by longest-processing-time greedy over per-block weights (nnz),
// seeding each processor's load with the weight of its fixed
// off-diagonal blocks.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/steiner"
)

// NewWeighted builds the tetrahedral partition with the diagonal blocks
// placed to balance total per-processor weight. weight(c) is the cost of
// block c (typically its nonzero count; zero for empty blocks). Ownership
// of off-diagonal blocks and the row-block distribution are identical to
// New — only N_p and D_p placement changes, so every layout/schedule
// built from the partition remains valid.
func NewWeighted(sys *steiner.System, weight func(Coord) int64) (*Tetrahedral, error) {
	if weight == nil {
		return nil, fmt.Errorf("partition: NewWeighted requires a weight function")
	}
	t := newSkeleton(sys)
	t.Weighted = true

	// Seed loads with the fixed off-diagonal weight per processor.
	loads := make([]int64, t.P)
	for p := 0; p < t.P; p++ {
		for _, c := range t.OffDiagonalBlocks(p) {
			loads[p] += weight(c)
		}
	}
	if err := t.assignNonCentralWeighted(weight, loads); err != nil {
		return nil, err
	}
	if err := t.assignCentralWeighted(weight, loads); err != nil {
		return nil, err
	}
	return t, nil
}

// NewSphericalWeighted is NewWeighted over the spherical Steiner system
// for prime power q.
func NewSphericalWeighted(q int, weight func(Coord) int64) (*Tetrahedral, error) {
	sys, err := steiner.Spherical(q)
	if err != nil {
		return nil, err
	}
	return NewWeighted(sys, weight)
}

type weightedItem struct {
	c     Coord
	w     int64
	procs []int // admissible processors, ascending
}

// sortLPT orders items heaviest first with a deterministic coordinate
// tie-break so assignment is reproducible.
func sortLPT(items []weightedItem) {
	sort.Slice(items, func(a, b int) bool {
		ia, ib := items[a], items[b]
		if ia.w != ib.w {
			return ia.w > ib.w
		}
		ca, cb := ia.c, ib.c
		if ca.I != cb.I {
			return ca.I < cb.I
		}
		if ca.J != cb.J {
			return ca.J < cb.J
		}
		return ca.K < cb.K
	})
}

// assignNonCentralWeighted places each non-central diagonal block
// (a,a,b)/(a,b,b) on the admissible processor (R_p ∋ a, b — the Steiner
// pair blocks) with the least accumulated weight, heaviest blocks first.
// Admissibility is never relaxed, so coverage and the communication
// pattern match the unweighted partition; only per-processor counts may
// exceed ⌈m(m−1)/P⌉ when that lowers the weight makespan.
func (t *Tetrahedral) assignNonCentralWeighted(weight func(Coord) int64, loads []int64) error {
	items := make([]weightedItem, 0, t.M*(t.M-1))
	for a := 1; a < t.M; a++ {
		for b := 0; b < a; b++ {
			procs := append([]int(nil), t.Sys.BlocksWithPair(a+1, b+1)...)
			sort.Ints(procs)
			if len(procs) == 0 {
				return fmt.Errorf("partition: no processor admits diagonal pair (%d,%d)", a, b)
			}
			for _, c := range []Coord{{a, a, b}, {a, b, b}} {
				items = append(items, weightedItem{c: c, w: weight(c), procs: procs})
			}
		}
	}
	sortLPT(items)
	t.Np = make([][]Coord, t.P)
	for _, it := range items {
		best := it.procs[0]
		for _, p := range it.procs[1:] {
			if loads[p] < loads[best] {
				best = p
			}
		}
		t.Np[best] = append(t.Np[best], it.c)
		loads[best] += it.w
	}
	for pi := range t.Np {
		sortCoords(t.Np[pi])
	}
	return nil
}

// assignCentralWeighted places the m central blocks (i,i,i) greedily by
// weight under the at-most-one-per-processor cap. Greedy can paint
// itself into a corner that Hall's theorem says a matching avoids; on
// failure it falls back to the flow-based count assignment (correct,
// weight-oblivious for the central blocks only).
func (t *Tetrahedral) assignCentralWeighted(weight func(Coord) int64, loads []int64) error {
	items := make([]weightedItem, 0, t.M)
	for i := 0; i < t.M; i++ {
		c := Coord{i, i, i}
		items = append(items, weightedItem{c: c, w: weight(c), procs: t.Qi[i]})
	}
	sortLPT(items)
	used := make([]bool, t.P)
	dp := make([][]Coord, t.P)
	ok := true
	for _, it := range items {
		best := -1
		for _, p := range it.procs {
			if used[p] {
				continue
			}
			if best < 0 || loads[p] < loads[best] {
				best = p
			}
		}
		if best < 0 {
			ok = false
			break
		}
		used[best] = true
		dp[best] = append(dp[best], it.c)
		loads[best] += it.w
	}
	if ok {
		t.Dp = dp
		return nil
	}
	return t.assignCentral()
}

// Loads returns the total weight each processor carries under the given
// per-block weight function — the load-accounting half of nnz-aware
// partitioning, usable against any partition (weighted or not).
func (t *Tetrahedral) Loads(weight func(Coord) int64) []int64 {
	loads := make([]int64, t.P)
	for p := 0; p < t.P; p++ {
		for _, c := range t.Blocks(p) {
			loads[p] += weight(c)
		}
	}
	return loads
}
