package partition

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// This file holds the ablation machinery for the design choice at the
// heart of §6: assigning off-diagonal blocks by Steiner blocks (so that a
// processor's (q+1)q(q−1)/6 blocks touch only q+1 distinct row blocks)
// versus any ad-hoc balanced assignment. The row-block *footprint* of a
// processor — how many distinct row blocks its tensor blocks touch —
// controls its vector communication: every touched row block must be
// gathered (and the partial results returned), so per-vector words ≈
// footprint·b − owned. Lemma 4.2 of the paper says a processor computing
// W off-diagonal block-triples needs footprint ≥ (6W)^{1/3}; the Steiner
// assignment meets that bound with equality.

// Footprint returns the number of distinct row-block indices appearing in
// a set of block coordinates.
func Footprint(blocks []Coord) int {
	seen := make(map[int]bool)
	for _, c := range blocks {
		seen[c.I] = true
		seen[c.J] = true
		seen[c.K] = true
	}
	return len(seen)
}

// FootprintLowerBound returns ⌈(6·W)^{1/3}⌉ rounded *down* conservatively:
// the smallest f with f(f−1)(f−2)/6 >= W, i.e. the minimum footprint any
// assignment of W off-diagonal blocks can achieve (the block-level
// instance of Lemma 4.2).
func FootprintLowerBound(w int) int {
	f := 3
	for f*(f-1)*(f-2)/6 < w {
		f++
	}
	if w == 0 {
		return 0
	}
	return f
}

// RoundRobinAssignment deals the off-diagonal blocks of an m×m×m block
// tetrahedron to p processors in enumeration order — the "no structure"
// baseline an implementer might reach for. It returns the per-processor
// block lists.
func RoundRobinAssignment(m, p int) [][]Coord {
	if m < 1 || p < 1 {
		panic(fmt.Sprintf("partition: RoundRobinAssignment(%d, %d)", m, p))
	}
	out := make([][]Coord, p)
	next := 0
	tensor.BlocksOfTetrahedron(m, func(I, J, K int) {
		if tensor.KindOfBlock(I, J, K) != tensor.OffDiagonal {
			return
		}
		out[next%p] = append(out[next%p], Coord{I, J, K})
		next++
	})
	return out
}

// FootprintStats summarizes per-processor footprints of an assignment.
type FootprintStats struct {
	Min, Max int
	Mean     float64
}

// AssignmentFootprints computes footprint statistics for a per-processor
// block assignment.
func AssignmentFootprints(assign [][]Coord) FootprintStats {
	if len(assign) == 0 {
		return FootprintStats{}
	}
	fs := make([]int, len(assign))
	total := 0
	for i, blocks := range assign {
		fs[i] = Footprint(blocks)
		total += fs[i]
	}
	sort.Ints(fs)
	return FootprintStats{
		Min:  fs[0],
		Max:  fs[len(fs)-1],
		Mean: float64(total) / float64(len(fs)),
	}
}

// SteinerFootprints returns the footprint statistics of this partition's
// off-diagonal assignment (all equal to q+1 for the spherical family).
func (t *Tetrahedral) SteinerFootprints() FootprintStats {
	assign := make([][]Coord, t.P)
	for p := 0; p < t.P; p++ {
		assign[p] = t.OffDiagonalBlocks(p)
	}
	return AssignmentFootprints(assign)
}

// VectorWordsForFootprint returns the per-vector communication a
// footprint implies for block edge b on P processors over m row blocks:
// the processor must assemble footprint·b words of x of which it owns
// m·b/P, and symmetrically for y.
func VectorWordsForFootprint(footprint, b, m, p int) int {
	owned := m * b / p
	words := footprint*b - owned
	if words < 0 {
		return 0
	}
	return words
}
