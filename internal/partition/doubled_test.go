package partition

import (
	"testing"

	"repro/internal/steiner"
)

func TestSQS16Partition(t *testing.T) {
	// The doubled system SQS(16) gives a P=140 machine; the non-central
	// diagonal load (240 blocks) does not divide P, so processors carry
	// 1 or 2 each.
	sys, err := steiner.SQSDoubled(1)
	if err != nil {
		t.Fatal(err)
	}
	part, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	if part.M != 16 || part.P != 140 {
		t.Fatalf("m=%d P=%d", part.M, part.P)
	}
	if err := part.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < part.P; p++ {
		if l := len(part.Np[p]); l > 2 {
			t.Fatalf("|N_%d| = %d exceeds ceil(240/140) = 2", p, l)
		}
		total += len(part.Np[p])
	}
	if total != 240 {
		t.Fatalf("non-central total %d, want 240", total)
	}
	// Row-block demand: every row block needed by ElementCount = 35
	// processors.
	for i := 0; i < part.M; i++ {
		if len(part.Qi[i]) != 35 {
			t.Fatalf("|Q_%d| = %d, want 35", i, len(part.Qi[i]))
		}
	}
}

func TestSQS16Footprints(t *testing.T) {
	sys, err := steiner.SQSDoubled(1)
	if err != nil {
		t.Fatal(err)
	}
	part, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	stats := part.SteinerFootprints()
	// Every processor's 4 off-diagonal blocks (C(4,3) = 4) touch exactly
	// its 4 row blocks: minimum possible for 4 block-triples.
	if stats.Min != 4 || stats.Max != 4 {
		t.Fatalf("footprints min=%d max=%d, want 4", stats.Min, stats.Max)
	}
}
