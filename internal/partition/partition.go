// Package partition implements the tetrahedral block partition of §6: the
// assignment of every block of the lower block-tetrahedron of a symmetric
// tensor to exactly one processor, driven by a Steiner (m, r, 3) system,
// together with the compatible distribution of the input and output
// vectors.
//
// Processor p (one per Steiner block R_p) owns:
//
//   - the off-diagonal blocks TB₃(R_p) = {(i,j,k) : i > j > k ∈ R_p}
//     (§6.1.1) — the Steiner property guarantees each off-diagonal block
//     lands on exactly one processor;
//   - a set N_p of non-central diagonal blocks (i,i,k)/(i,k,k) with
//     i, k ∈ R_p, found via a capacitated matching (Hall's theorem /
//     Corollary 6.7 guarantee a perfect, balanced assignment) (§6.1.3);
//   - at most one central diagonal block (i,i,i) with i ∈ R_p, found via a
//     bipartite matching (§6.1.3).
//
// Row block i of each vector is shared by the processors Q_i = {p : i ∈
// R_p} and split evenly among them (§6.1.2).
//
// Row blocks and block coordinates are 0-based here (the paper is
// 1-based); Steiner system points are converted at construction.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/flow"
	"repro/internal/intmath"
	"repro/internal/steiner"
	"repro/internal/tensor"
)

// Coord is a block coordinate (I >= J >= K) in the block tetrahedron.
type Coord struct{ I, J, K int }

// Kind returns the block kind of the coordinate.
func (c Coord) Kind() tensor.BlockKind { return tensor.KindOfBlock(c.I, c.J, c.K) }

// Tetrahedral is a complete tetrahedral block partition.
type Tetrahedral struct {
	// Sys is the generating Steiner system (points 1..M).
	Sys *steiner.System
	// M is the number of row blocks per mode (q²+1 for the spherical
	// family).
	M int
	// P is the number of processors, one per Steiner block.
	P int
	// R is the Steiner block size (q+1 for the spherical family).
	R int

	// Rp[p] lists processor p's row blocks (0-based, sorted): the Steiner
	// block R_p.
	Rp [][]int
	// Np[p] lists processor p's non-central diagonal blocks.
	Np [][]Coord
	// Dp[p] lists processor p's central diagonal blocks (length 0 or 1).
	Dp [][]Coord
	// Qi[i] lists the processors that require row block i (sorted): all p
	// with i ∈ Rp.
	Qi [][]int

	// Weighted records that the diagonal assignment balanced per-block
	// weights (e.g. nnz) instead of block counts; Validate then skips the
	// count-balance invariant (weight balance replaces it) while keeping
	// coverage and admissibility checks.
	Weighted bool

	rpSet []map[int]bool
}

// New builds the partition for a Steiner (m, r, 3) system. The m(m−1)
// non-central diagonal blocks are spread over the processors with loads
// differing by at most one (exactly q each for the spherical family,
// exactly 4 for SQS(8)).
func New(sys *steiner.System) (*Tetrahedral, error) {
	t := newSkeleton(sys)
	if err := t.assignNonCentral(); err != nil {
		return nil, err
	}
	if err := t.assignCentral(); err != nil {
		return nil, err
	}
	return t, nil
}

// newSkeleton builds the Steiner-determined part of the partition — row
// block ownership Rp/Qi and the off-diagonal blocks they imply — leaving
// the diagonal assignment (the only placement freedom §6.1.3 grants) to
// the caller.
func newSkeleton(sys *steiner.System) *Tetrahedral {
	m := sys.N
	p := sys.NumBlocks()
	t := &Tetrahedral{Sys: sys, M: m, P: p, R: sys.R}

	t.Rp = make([][]int, p)
	t.rpSet = make([]map[int]bool, p)
	for pi, blk := range sys.Blocks {
		rp := make([]int, len(blk))
		set := make(map[int]bool, len(blk))
		for i, pt := range blk {
			rp[i] = pt - 1
			set[pt-1] = true
		}
		t.Rp[pi] = rp
		t.rpSet[pi] = set
	}

	t.Qi = make([][]int, m)
	for i := 0; i < m; i++ {
		procs := append([]int(nil), sys.BlocksWithElement(i+1)...)
		sort.Ints(procs)
		t.Qi[i] = procs
	}
	return t
}

// NewSpherical builds the partition from the spherical Steiner system for
// prime power q: m = q²+1 row blocks and P = q(q²+1) processors.
func NewSpherical(q int) (*Tetrahedral, error) {
	sys, err := steiner.Spherical(q)
	if err != nil {
		return nil, err
	}
	return New(sys)
}

// assignNonCentral distributes the m(m−1) non-central diagonal blocks,
// at most ⌈m(m−1)/P⌉ per processor, each to a processor whose R_p contains
// both distinct row indices of the block (§6.1.3). For the spherical
// family the count divides evenly at exactly q per processor; for other
// systems (e.g. the doubled SQS family) the load differs by at most one.
func (t *Tetrahedral) assignNonCentral() error {
	total := t.M * (t.M - 1)
	perProc := intmath.CeilDiv(total, t.P)

	// Items: for each pair a > b, item 2·pairIdx is (a,a,b) and
	// 2·pairIdx+1 is (a,b,b).
	items := make([]Coord, 0, total)
	adj := make([][]int, t.P)
	for a := 1; a < t.M; a++ {
		for b := 0; b < a; b++ {
			hi := len(items)
			items = append(items, Coord{a, a, b}, Coord{a, b, b})
			for _, pi := range t.Sys.BlocksWithPair(a+1, b+1) {
				adj[pi] = append(adj[pi], hi, hi+1)
			}
		}
	}
	caps := make([]int, t.P)
	for i := range caps {
		caps[i] = perProc
	}
	assign, err := flow.AssignWithCapacities(t.P, len(items), caps, adj)
	if err != nil {
		return fmt.Errorf("partition: non-central diagonal assignment: %w", err)
	}
	t.Np = make([][]Coord, t.P)
	for item, proc := range assign {
		t.Np[proc] = append(t.Np[proc], items[item])
	}
	for pi := range t.Np {
		sortCoords(t.Np[pi])
	}
	return nil
}

// assignCentral gives each of the m central diagonal blocks (i,i,i) to a
// distinct processor p with i ∈ R_p (§6.1.3, second application of Hall's
// theorem).
func (t *Tetrahedral) assignCentral() error {
	adj := make([][]int, t.P)
	for pi, rp := range t.Rp {
		for _, i := range rp {
			adj[pi] = append(adj[pi], i)
		}
	}
	caps := make([]int, t.P)
	for i := range caps {
		caps[i] = 1
	}
	assign, err := flow.AssignWithCapacities(t.P, t.M, caps, adj)
	if err != nil {
		return fmt.Errorf("partition: central diagonal assignment: %w", err)
	}
	t.Dp = make([][]Coord, t.P)
	for i, proc := range assign {
		t.Dp[proc] = append(t.Dp[proc], Coord{i, i, i})
	}
	return nil
}

func sortCoords(cs []Coord) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if a.I != b.I {
			return a.I < b.I
		}
		if a.J != b.J {
			return a.J < b.J
		}
		return a.K < b.K
	})
}

// OffDiagonalBlocks returns TB₃(R_p): processor p's off-diagonal blocks,
// in deterministic order.
func (t *Tetrahedral) OffDiagonalBlocks(p int) []Coord {
	rp := t.Rp[p]
	var out []Coord
	for x := 0; x < len(rp); x++ {
		for y := x + 1; y < len(rp); y++ {
			for z := y + 1; z < len(rp); z++ {
				// rp sorted ascending: rp[z] > rp[y] > rp[x].
				out = append(out, Coord{rp[z], rp[y], rp[x]})
			}
		}
	}
	sortCoords(out)
	return out
}

// Blocks returns every tensor block processor p owns: the extended
// tetrahedral block of Algorithm 5's input (off-diagonal ∪ N_p ∪ D_p).
func (t *Tetrahedral) Blocks(p int) []Coord {
	out := t.OffDiagonalBlocks(p)
	out = append(out, t.Np[p]...)
	out = append(out, t.Dp[p]...)
	sortCoords(out)
	return out
}

// Owns reports whether row block i is in R_p.
func (t *Tetrahedral) Owns(p, i int) bool { return t.rpSet[p][i] }

// SharedRowBlocks returns |R_p ∩ R_p'|: the number of row blocks two
// processors both require, which drives the communication schedule (§7.2).
func (t *Tetrahedral) SharedRowBlocks(p1, p2 int) int {
	n := 0
	for _, i := range t.Rp[p1] {
		if t.rpSet[p2][i] {
			n++
		}
	}
	return n
}

// Chunk is a processor's owned piece of one row block of a vector.
type Chunk struct {
	Proc   int
	Lo, Hi int // local element range [Lo, Hi) within the row block
}

// RowBlockChunks splits row block i of a length-(M·b) vector among the
// processors of Q_i, in Q_i order, as evenly as possible (the first
// len%|Qi| processors receive one extra element). b is the row block
// length.
func (t *Tetrahedral) RowBlockChunks(i, b int) []Chunk {
	procs := t.Qi[i]
	nproc := len(procs)
	base := b / nproc
	rem := b % nproc
	chunks := make([]Chunk, nproc)
	pos := 0
	for idx, p := range procs {
		size := base
		if idx < rem {
			size++
		}
		chunks[idx] = Chunk{Proc: p, Lo: pos, Hi: pos + size}
		pos += size
	}
	return chunks
}

// OwnedRange returns processor p's chunk [lo, hi) of row block i, or ok ==
// false when p ∉ Q_i.
func (t *Tetrahedral) OwnedRange(p, i, b int) (lo, hi int, ok bool) {
	if !t.Owns(p, i) {
		return 0, 0, false
	}
	for _, ch := range t.RowBlockChunks(i, b) {
		if ch.Proc == p {
			return ch.Lo, ch.Hi, true
		}
	}
	return 0, 0, false
}

// StorageWords returns the number of tensor words processor p stores for
// block edge b — the §6.1.3 quantity that approaches n³/(6P).
func (t *Tetrahedral) StorageWords(p, b int) int {
	words := 0
	for _, c := range t.Blocks(p) {
		words += tensor.BlockLen(c.Kind(), b)
	}
	return words
}

// Validate checks the partition invariants exhaustively:
// every block of the lower block-tetrahedron is owned by exactly one
// processor; N_p and D_p indices lie within R_p; N_p sizes are balanced;
// each D_p has at most one block; Q_i matches R_p membership.
func (t *Tetrahedral) Validate() error {
	owner := make(map[Coord]int)
	for p := 0; p < t.P; p++ {
		for _, c := range t.Blocks(p) {
			if c.I < c.J || c.J < c.K || c.K < 0 || c.I >= t.M {
				return fmt.Errorf("partition: processor %d owns invalid coord %v", p, c)
			}
			if prev, dup := owner[c]; dup {
				return fmt.Errorf("partition: block %v owned by %d and %d", c, prev, p)
			}
			owner[c] = p
		}
	}
	if want := intmath.Tetrahedral(t.M); len(owner) != want {
		return fmt.Errorf("partition: %d blocks owned, want %d", len(owner), want)
	}

	perProc := intmath.CeilDiv(t.M*(t.M-1), t.P)
	npTotal := 0
	for p := 0; p < t.P; p++ {
		npTotal += len(t.Np[p])
		if !t.Weighted && len(t.Np[p]) > perProc {
			return fmt.Errorf("partition: |N_%d| = %d exceeds %d", p, len(t.Np[p]), perProc)
		}
		for _, c := range t.Np[p] {
			if c.Kind() != tensor.DiagPairHigh && c.Kind() != tensor.DiagPairLow {
				return fmt.Errorf("partition: N_%d contains %v of kind %v", p, c, c.Kind())
			}
			if !t.Owns(p, c.I) || !t.Owns(p, c.K) {
				return fmt.Errorf("partition: N_%d block %v outside R_p", p, c)
			}
		}
		if len(t.Dp[p]) > 1 {
			return fmt.Errorf("partition: |D_%d| = %d > 1", p, len(t.Dp[p]))
		}
		for _, c := range t.Dp[p] {
			if c.Kind() != tensor.Central {
				return fmt.Errorf("partition: D_%d contains %v of kind %v", p, c, c.Kind())
			}
			if !t.Owns(p, c.I) {
				return fmt.Errorf("partition: D_%d block %v outside R_p", p, c)
			}
		}
	}
	if npTotal != t.M*(t.M-1) {
		return fmt.Errorf("partition: %d non-central blocks assigned, want %d", npTotal, t.M*(t.M-1))
	}

	for i := 0; i < t.M; i++ {
		if len(t.Qi[i]) != t.Sys.ElementCount() {
			return fmt.Errorf("partition: |Q_%d| = %d, want %d", i, len(t.Qi[i]), t.Sys.ElementCount())
		}
		for _, p := range t.Qi[i] {
			if !t.Owns(p, i) {
				return fmt.Errorf("partition: Q_%d contains %d but %d ∉ R_p", i, p, i)
			}
		}
	}
	return nil
}
