package partition

import (
	"testing"

	"repro/internal/intmath"
	"repro/internal/steiner"
	"repro/internal/tensor"
)

func mustSpherical(t testing.TB, q int) *Tetrahedral {
	t.Helper()
	part, err := NewSpherical(q)
	if err != nil {
		t.Fatal(err)
	}
	return part
}

func TestTable1Shape(t *testing.T) {
	// Table 1 of the paper: q=3, m=10, P=30, |Rp|=4, |Np|=3 per
	// processor, and exactly 10 processors hold a central diagonal block.
	part := mustSpherical(t, 3)
	if part.M != 10 || part.P != 30 || part.R != 4 {
		t.Fatalf("m=%d P=%d r=%d", part.M, part.P, part.R)
	}
	central := 0
	for p := 0; p < part.P; p++ {
		if len(part.Rp[p]) != 4 {
			t.Fatalf("|R_%d| = %d", p, len(part.Rp[p]))
		}
		if len(part.Np[p]) != 3 {
			t.Fatalf("|N_%d| = %d", p, len(part.Np[p]))
		}
		central += len(part.Dp[p])
	}
	if central != 10 {
		t.Fatalf("central blocks assigned: %d, want 10", central)
	}
	if err := part.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTable2Shape(t *testing.T) {
	// Table 2: every row block of a vector is required by q(q+1) = 12
	// processors for q=3.
	part := mustSpherical(t, 3)
	for i := 0; i < part.M; i++ {
		if len(part.Qi[i]) != 12 {
			t.Fatalf("|Q_%d| = %d, want 12", i, len(part.Qi[i]))
		}
	}
}

func TestTable3SQS8Shape(t *testing.T) {
	// Table 3 (Appendix A): the Steiner (8,4,3) system gives m=8, P=14,
	// |Np|=4, 8 central blocks assigned, and |Qi|=7.
	part, err := New(steiner.SQS8())
	if err != nil {
		t.Fatal(err)
	}
	if part.M != 8 || part.P != 14 {
		t.Fatalf("m=%d P=%d", part.M, part.P)
	}
	central := 0
	for p := 0; p < part.P; p++ {
		if len(part.Np[p]) != 4 {
			t.Fatalf("|N_%d| = %d, want 4", p, len(part.Np[p]))
		}
		central += len(part.Dp[p])
	}
	if central != 8 {
		t.Fatalf("central blocks: %d, want 8", central)
	}
	for i := 0; i < part.M; i++ {
		if len(part.Qi[i]) != 7 {
			t.Fatalf("|Q_%d| = %d, want 7", i, len(part.Qi[i]))
		}
	}
	if err := part.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAcrossQ(t *testing.T) {
	for _, q := range []int{2, 3, 4} {
		part := mustSpherical(t, q)
		if err := part.Validate(); err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
	}
}

func TestOffDiagonalBlockCounts(t *testing.T) {
	// Each processor owns (q+1)q(q−1)/6 off-diagonal blocks (§6.1.1), and
	// the union over processors covers all off-diagonal blocks exactly
	// once (Steiner property).
	for _, q := range []int{2, 3, 4} {
		part := mustSpherical(t, q)
		want := (q + 1) * q * (q - 1) / 6
		total := 0
		for p := 0; p < part.P; p++ {
			got := len(part.OffDiagonalBlocks(p))
			if got != want {
				t.Fatalf("q=%d: processor %d owns %d off-diagonal blocks, want %d", q, p, got, want)
			}
			total += got
		}
		if wantTotal := intmath.StrictTetrahedral(part.M); total != wantTotal {
			t.Fatalf("q=%d: %d off-diagonal blocks total, want %d", q, total, wantTotal)
		}
	}
}

func TestBlockTypeCounts(t *testing.T) {
	// §6.1: the lower block tetrahedron splits into (q²+1)q²(q²−1)/6
	// off-diagonal, q²(q²+1) non-central diagonal, and q²+1 central
	// blocks.
	part := mustSpherical(t, 3)
	m := part.M
	off, non, cen := 0, 0, 0
	tensor.BlocksOfTetrahedron(m, func(I, J, K int) {
		switch tensor.KindOfBlock(I, J, K) {
		case tensor.OffDiagonal:
			off++
		case tensor.Central:
			cen++
		default:
			non++
		}
	})
	q2 := 9
	if off != (q2+1)*q2*(q2-1)/6 {
		t.Errorf("off-diagonal count %d", off)
	}
	if non != q2*(q2+1) {
		t.Errorf("non-central count %d", non)
	}
	if cen != q2+1 {
		t.Errorf("central count %d", cen)
	}
}

func TestRowBlockChunksCoverExactly(t *testing.T) {
	part := mustSpherical(t, 2) // |Qi| = 6
	for _, b := range []int{6, 12, 7, 5, 1} {
		for i := 0; i < part.M; i++ {
			chunks := part.RowBlockChunks(i, b)
			pos := 0
			for _, ch := range chunks {
				if ch.Lo != pos {
					t.Fatalf("b=%d row %d: chunk gap at %d", b, i, pos)
				}
				if ch.Hi < ch.Lo {
					t.Fatalf("b=%d row %d: negative chunk", b, i)
				}
				pos = ch.Hi
				if !part.Owns(ch.Proc, i) {
					t.Fatalf("b=%d row %d: chunk owner %d not in Q_i", b, i, ch.Proc)
				}
			}
			if pos != b {
				t.Fatalf("b=%d row %d: chunks cover %d of %d", b, i, pos, b)
			}
		}
	}
}

func TestVectorWordsPerProcessor(t *testing.T) {
	// §6.1.2: with b divisible by q(q+1), each processor owns exactly
	// (q+1)·b/(q(q+1)) = n/P elements of each vector.
	for _, q := range []int{2, 3} {
		part := mustSpherical(t, q)
		b := q * (q + 1) * 2 // divisible by |Qi| = q(q+1)
		n := part.M * b
		want := n / part.P
		owned := make([]int, part.P)
		for i := 0; i < part.M; i++ {
			for _, ch := range part.RowBlockChunks(i, b) {
				owned[ch.Proc] += ch.Hi - ch.Lo
			}
		}
		for p, w := range owned {
			if w != want {
				t.Fatalf("q=%d: processor %d owns %d vector words, want %d", q, p, w, want)
			}
		}
	}
}

func TestOwnedRange(t *testing.T) {
	part := mustSpherical(t, 2)
	b := 12
	for i := 0; i < part.M; i++ {
		for p := 0; p < part.P; p++ {
			lo, hi, ok := part.OwnedRange(p, i, b)
			if ok != part.Owns(p, i) {
				t.Fatalf("OwnedRange ok mismatch at p=%d i=%d", p, i)
			}
			if ok && (lo < 0 || hi > b || lo >= hi) {
				t.Fatalf("OwnedRange p=%d i=%d: [%d,%d)", p, i, lo, hi)
			}
		}
	}
}

func TestStorageWordsApproachesTheory(t *testing.T) {
	// §6.1.3: each processor stores ≈ n³/(6P) tensor words; exact bound:
	// (q+1)q(q−1)/6·b³ + q·b²(b+1)/2 + b(b+1)(b+2)/6.
	for _, q := range []int{2, 3} {
		part := mustSpherical(t, q)
		b := 8
		bound := (q+1)*q*(q-1)/6*b*b*b + q*b*b*(b+1)/2 + b*(b+1)*(b+2)/6
		totalStored := 0
		for p := 0; p < part.P; p++ {
			w := part.StorageWords(p, b)
			if w > bound {
				t.Fatalf("q=%d: processor %d stores %d > bound %d", q, p, w, bound)
			}
			totalStored += w
		}
		// All blocks stored exactly once: total == Tetrahedral(m·b).
		if want := intmath.Tetrahedral(part.M * b); totalStored != want {
			t.Fatalf("q=%d: total storage %d, want %d", q, totalStored, want)
		}
	}
}

func TestSharedRowBlocksDistribution(t *testing.T) {
	// §7.2: for the spherical family each processor shares 2 row blocks
	// with q²(q+1)/2 processors and exactly 1 with q²−1 processors.
	for _, q := range []int{2, 3} {
		part := mustSpherical(t, q)
		wantTwo := q * q * (q + 1) / 2
		wantOne := q*q - 1
		for p := 0; p < part.P; p++ {
			two, one := 0, 0
			for p2 := 0; p2 < part.P; p2++ {
				if p2 == p {
					continue
				}
				switch part.SharedRowBlocks(p, p2) {
				case 2:
					two++
				case 1:
					one++
				case 0:
				default:
					// Two distinct Steiner blocks share at most 2 points
					// (3 shared points would violate the Steiner
					// property).
					t.Fatalf("q=%d: processors %d,%d share %d row blocks",
						q, p, p2, part.SharedRowBlocks(p, p2))
				}
			}
			if two != wantTwo || one != wantOne {
				t.Fatalf("q=%d processor %d: 2-sharing %d (want %d), 1-sharing %d (want %d)",
					q, p, two, wantTwo, one, wantOne)
			}
		}
	}
}

func TestSQS8SharingMatchesFigure1(t *testing.T) {
	// Appendix A: in SQS(8) every processor shares 2 row blocks with 12
	// processors and is disjoint from 1 — hence the 12-step schedule of
	// Figure 1.
	part, err := New(steiner.SQS8())
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < part.P; p++ {
		two, zero := 0, 0
		for p2 := 0; p2 < part.P; p2++ {
			if p2 == p {
				continue
			}
			switch part.SharedRowBlocks(p, p2) {
			case 2:
				two++
			case 0:
				zero++
			default:
				t.Fatalf("processors %d,%d share %d row blocks", p, p2, part.SharedRowBlocks(p, p2))
			}
		}
		if two != 12 || zero != 1 {
			t.Fatalf("processor %d: 2-sharing %d, disjoint %d", p, two, zero)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := mustSpherical(t, 2)
	b := mustSpherical(t, 2)
	for p := 0; p < a.P; p++ {
		ab, bb := a.Blocks(p), b.Blocks(p)
		if len(ab) != len(bb) {
			t.Fatalf("processor %d: nondeterministic block count", p)
		}
		for i := range ab {
			if ab[i] != bb[i] {
				t.Fatalf("processor %d block %d: %v vs %v", p, i, ab[i], bb[i])
			}
		}
	}
}

func TestCoordKind(t *testing.T) {
	if (Coord{3, 2, 1}).Kind() != tensor.OffDiagonal {
		t.Error("off-diagonal kind")
	}
	if (Coord{2, 2, 2}).Kind() != tensor.Central {
		t.Error("central kind")
	}
}

func BenchmarkNewSphericalQ3(b *testing.B) {
	sys, err := steiner.Spherical(3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(sys); err != nil {
			b.Fatal(err)
		}
	}
}
