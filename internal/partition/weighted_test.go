package partition

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// skewWeight builds a per-block nnz weight function from a skewed
// hypergraph at the partition's block edge.
func skewWeight(t *testing.T, part *Tetrahedral, b int) (func(Coord) int64, int64) {
	t.Helper()
	n := part.M * b
	// skew 1.3 concentrates nonzeros on low-index blocks while leaving
	// the (Steiner-fixed) off-diagonal load near the balance floor —
	// harder skews are bounded below by the off-diagonal hot spot no
	// diagonal placement can move.
	sp, err := sparse.SkewedHypergraph(n, 32*n, 1.3, 99)
	if err != nil {
		t.Fatal(err)
	}
	counts := sparse.BlockCounts(sp, b)
	var total int64
	for _, c := range counts {
		total += c
	}
	return func(c Coord) int64 { return counts[[3]int{c.I, c.J, c.K}] }, total
}

// TestWeightedPartitionValid: the weighted assignment must keep every
// partition invariant except count balance — full coverage, exactly-once
// ownership, admissibility of every diagonal block.
func TestWeightedPartitionValid(t *testing.T) {
	for _, q := range []int{2, 3} {
		part, err := NewSpherical(q)
		if err != nil {
			t.Fatal(err)
		}
		weight, _ := skewWeight(t, part, 16)
		wp, err := NewSphericalWeighted(q, weight)
		if err != nil {
			t.Fatal(err)
		}
		if err := wp.Validate(); err != nil {
			t.Fatalf("q=%d: weighted partition invalid: %v", q, err)
		}
		if !wp.Weighted {
			t.Fatal("Weighted flag not set")
		}
		// The Steiner-fixed structure must be untouched.
		if !reflect.DeepEqual(wp.Rp, part.Rp) || !reflect.DeepEqual(wp.Qi, part.Qi) {
			t.Fatalf("q=%d: weighted partition changed row-block ownership", q)
		}
		for p := 0; p < part.P; p++ {
			if !reflect.DeepEqual(wp.OffDiagonalBlocks(p), part.OffDiagonalBlocks(p)) {
				t.Fatalf("q=%d: off-diagonal blocks of processor %d changed", q, p)
			}
		}
	}
}

// TestWeightedPartitionBalancesSkew: on a skewed hypergraph the weighted
// assignment's nnz makespan must beat (or at worst match) the
// count-balanced assignment, and stay within the 1.3× imbalance the
// bench gates on.
func TestWeightedPartitionBalancesSkew(t *testing.T) {
	for _, q := range []int{2, 3} {
		part, err := NewSpherical(q)
		if err != nil {
			t.Fatal(err)
		}
		weight, total := skewWeight(t, part, 16)
		wp, err := NewSphericalWeighted(q, weight)
		if err != nil {
			t.Fatal(err)
		}
		before := obs.ComputeLoadStats(part.Loads(weight))
		after := obs.ComputeLoadStats(wp.Loads(weight))
		if after.Max > before.Max {
			t.Errorf("q=%d: weighted makespan %d worse than unweighted %d", q, after.Max, before.Max)
		}
		if after.Imbalance > 1.3 {
			t.Errorf("q=%d: weighted imbalance %.3f exceeds 1.3", q, after.Imbalance)
		}
		// Loads must account for every nonzero exactly once.
		var sum int64
		for _, l := range wp.Loads(weight) {
			sum += l
		}
		if sum != total {
			t.Errorf("q=%d: loads sum %d, want %d nonzeros", q, sum, total)
		}
	}
}

// TestWeightedPartitionDeterministic: identical inputs must produce an
// identical assignment (LPT ties broken by coordinate).
func TestWeightedPartitionDeterministic(t *testing.T) {
	part, err := NewSpherical(2)
	if err != nil {
		t.Fatal(err)
	}
	weight, _ := skewWeight(t, part, 4)
	a, err := NewSphericalWeighted(2, weight)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSphericalWeighted(2, weight)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Np, b.Np) || !reflect.DeepEqual(a.Dp, b.Dp) {
		t.Fatal("weighted assignment not deterministic")
	}
}
