package partition

import (
	"testing"

	"repro/internal/intmath"
)

func TestFootprint(t *testing.T) {
	if got := Footprint(nil); got != 0 {
		t.Errorf("empty footprint = %d", got)
	}
	blocks := []Coord{{5, 3, 1}, {5, 4, 1}, {4, 3, 1}}
	if got := Footprint(blocks); got != 4 { // distinct indices {1,3,4,5}
		t.Errorf("footprint = %d, want 4", got)
	}
}

func TestFootprintLowerBound(t *testing.T) {
	if FootprintLowerBound(0) != 0 {
		t.Error("W=0")
	}
	cases := []struct{ w, want int }{
		{1, 3}, {2, 4}, {4, 4}, {5, 5}, {10, 5}, {11, 6}, {20, 6}, {21, 7},
	}
	for _, c := range cases {
		if got := FootprintLowerBound(c.w); got != c.want {
			t.Errorf("FootprintLowerBound(%d) = %d, want %d", c.w, got, c.want)
		}
	}
	// Consistency: bound f satisfies C(f,3) >= W > C(f-1,3).
	for w := 1; w <= 200; w++ {
		f := FootprintLowerBound(w)
		if intmath.Binomial(f, 3) < w {
			t.Fatalf("W=%d: C(%d,3) < W", w, f)
		}
		if f > 3 && intmath.Binomial(f-1, 3) >= w {
			t.Fatalf("W=%d: bound %d not tight", w, f)
		}
	}
}

func TestSteinerMeetsFootprintBoundExactly(t *testing.T) {
	// The design-choice claim: the Steiner assignment achieves the
	// minimum possible row-block footprint for its per-processor work.
	for _, q := range []int{2, 3, 4} {
		part := mustSpherical(t, q)
		stats := part.SteinerFootprints()
		w := (q + 1) * q * (q - 1) / 6 // off-diagonal blocks per processor
		bound := FootprintLowerBound(w)
		if stats.Min != stats.Max || stats.Min != q+1 {
			t.Fatalf("q=%d: Steiner footprints min=%d max=%d, want all %d",
				q, stats.Min, stats.Max, q+1)
		}
		if stats.Min != bound {
			t.Fatalf("q=%d: Steiner footprint %d != lower bound %d", q, stats.Min, bound)
		}
	}
}

func TestRoundRobinFootprintMuchWorse(t *testing.T) {
	// Ablation: dealing blocks round-robin balances the work identically
	// but inflates the footprint (and hence the vector communication).
	// q=2 is degenerate — one block per processor, footprint 3 for any
	// assignment — so the gap appears from q=3 on.
	for _, q := range []int{3, 4} {
		part := mustSpherical(t, q)
		rr := RoundRobinAssignment(part.M, part.P)
		// Same balance of work...
		for p := 0; p < part.P; p++ {
			if len(rr[p]) != len(part.OffDiagonalBlocks(p)) {
				t.Fatalf("q=%d: round-robin gives processor %d %d blocks, Steiner %d",
					q, p, len(rr[p]), len(part.OffDiagonalBlocks(p)))
			}
		}
		// ...but a strictly larger footprint on average.
		rrStats := AssignmentFootprints(rr)
		stStats := part.SteinerFootprints()
		if rrStats.Mean <= stStats.Mean {
			t.Fatalf("q=%d: round-robin mean footprint %.2f not worse than Steiner %.2f",
				q, rrStats.Mean, stStats.Mean)
		}
		// The implied vector communication gap at a representative block
		// edge.
		b := q * (q + 1)
		st := VectorWordsForFootprint(stStats.Max, b, part.M, part.P)
		rrw := VectorWordsForFootprint(rrStats.Max, b, part.M, part.P)
		if rrw <= st {
			t.Fatalf("q=%d: round-robin words %d not worse than Steiner %d", q, rrw, st)
		}
	}
}

func TestRoundRobinCoversAllOffDiagonal(t *testing.T) {
	m, p := 10, 30
	rr := RoundRobinAssignment(m, p)
	total := 0
	seen := make(map[Coord]bool)
	for _, blocks := range rr {
		for _, c := range blocks {
			if seen[c] {
				t.Fatalf("block %v assigned twice", c)
			}
			seen[c] = true
			total++
		}
	}
	if want := intmath.StrictTetrahedral(m); total != want {
		t.Fatalf("round-robin covered %d blocks, want %d", total, want)
	}
}

func TestVectorWordsForFootprint(t *testing.T) {
	// footprint 4, b=12, m=10, P=30: 4·12 − 120/30 = 44.
	if got := VectorWordsForFootprint(4, 12, 10, 30); got != 44 {
		t.Errorf("got %d, want 44", got)
	}
	if got := VectorWordsForFootprint(0, 12, 10, 30); got != 0 {
		t.Errorf("negative clamped: got %d", got)
	}
}

func TestRoundRobinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RoundRobinAssignment(0, 3)
}
