// Package schedule constructs the point-to-point communication schedule of
// §7.2: a sequence of steps in which every processor sends at most one
// message and receives at most one message (the bidirectional-link model of
// §3.1), such that every pair of processors that shares row blocks
// exchanges exactly one message pair.
//
// Processors sharing two row blocks (their Steiner blocks intersect in a
// pair) exchange both blocks' chunks in a single message; processors
// sharing one row block exchange one chunk. Theorem 7.2 turns each d-regular
// communication class into d steps by decomposing its bipartite double
// cover into d disjoint perfect matchings (Lemma 7.1). For the spherical
// family the two classes have degrees q²(q+1)/2 and q²−1, giving the
// paper's total of q³/2 + 3q²/2 − 1 steps; for SQS(8) there is a single
// 12-step class (Figure 1).
//
// Irregular peer graphs (possible for exotic Steiner systems) fall back to
// a maximal-matching decomposition, which remains a valid schedule but may
// use more steps.
package schedule

import (
	"fmt"

	"repro/internal/bipartite"
	"repro/internal/partition"
)

// Transfer is one directed message: From sends its owned chunks of the
// listed row blocks to To.
type Transfer struct {
	From, To int
	// Rows lists the shared row blocks (sorted ascending) whose chunks
	// ride in this message.
	Rows []int
}

// Step is a set of transfers executable simultaneously: each processor
// appears at most once as a sender and at most once as a receiver.
type Step []Transfer

// Schedule is the full point-to-point plan.
type Schedule struct {
	P     int
	Steps []Step
}

// NumSteps returns the schedule length.
func (s *Schedule) NumSteps() int { return len(s.Steps) }

// Build constructs the schedule for a tetrahedral partition. Peers are
// grouped by how many row blocks they share (2 or 1 — two distinct Steiner
// blocks intersect in at most 2 points), and each class is decomposed into
// matchings separately, mirroring the two-phase argument of §7.2.2.
func Build(part *partition.Tetrahedral) (*Schedule, error) {
	p := part.P
	sched := &Schedule{P: p}
	for _, class := range []int{2, 1} {
		steps, err := classSteps(part, class)
		if err != nil {
			return nil, fmt.Errorf("schedule: class %d: %w", class, err)
		}
		sched.Steps = append(sched.Steps, steps...)
	}
	return sched, nil
}

// classSteps schedules all exchanges between pairs sharing exactly `class`
// row blocks.
func classSteps(part *partition.Tetrahedral, class int) ([]Step, error) {
	p := part.P
	// Bipartite double cover: X = senders, Y = receivers. Each unordered
	// pair in the class produces two directed edges, one per direction.
	g := bipartite.NewGraph(p, p)
	degree := make([]int, p)
	for a := 0; a < p; a++ {
		for b := a + 1; b < p; b++ {
			if part.SharedRowBlocks(a, b) == class {
				g.AddEdge(a, b)
				g.AddEdge(b, a)
				degree[a]++
				degree[b]++
			}
		}
	}
	if g.NumEdges() == 0 {
		return nil, nil
	}

	regular := true
	for _, d := range degree {
		if d != degree[0] {
			regular = false
			break
		}
	}

	var matchings []*bipartite.Matching
	if regular {
		ms, err := bipartite.DisjointPerfectMatchings(g)
		if err != nil {
			return nil, err
		}
		matchings = ms
	} else {
		matchings = bipartite.MaximalMatchingDecomposition(g)
	}

	steps := make([]Step, 0, len(matchings))
	for _, m := range matchings {
		var step Step
		for from, to := range m.XtoY {
			if to < 0 {
				continue
			}
			step = append(step, Transfer{From: from, To: to, Rows: sharedRows(part, from, to)})
		}
		steps = append(steps, step)
	}
	return steps, nil
}

// sharedRows returns R_a ∩ R_b sorted ascending.
func sharedRows(part *partition.Tetrahedral, a, b int) []int {
	var rows []int
	for _, i := range part.Rp[a] { // Rp is sorted
		if part.Owns(b, i) {
			rows = append(rows, i)
		}
	}
	return rows
}

// Validate checks that the schedule is executable and complete for the
// partition: within each step every processor sends at most one message
// and receives at most one; across the schedule every ordered pair that
// shares at least one row block communicates exactly once, carrying
// exactly the shared rows; no other pair communicates.
func (s *Schedule) Validate(part *partition.Tetrahedral) error {
	seen := make(map[[2]int][]int)
	for si, step := range s.Steps {
		sendBusy := make(map[int]bool)
		recvBusy := make(map[int]bool)
		for _, tr := range step {
			if tr.From == tr.To {
				return fmt.Errorf("schedule: step %d: self transfer at %d", si, tr.From)
			}
			if sendBusy[tr.From] {
				return fmt.Errorf("schedule: step %d: processor %d sends twice", si, tr.From)
			}
			if recvBusy[tr.To] {
				return fmt.Errorf("schedule: step %d: processor %d receives twice", si, tr.To)
			}
			sendBusy[tr.From] = true
			recvBusy[tr.To] = true
			key := [2]int{tr.From, tr.To}
			if _, dup := seen[key]; dup {
				return fmt.Errorf("schedule: pair %v communicates twice", key)
			}
			seen[key] = tr.Rows
		}
	}
	for a := 0; a < part.P; a++ {
		for b := 0; b < part.P; b++ {
			if a == b {
				continue
			}
			want := sharedRows(part, a, b)
			got, ok := seen[[2]int{a, b}]
			if len(want) == 0 {
				if ok {
					return fmt.Errorf("schedule: pair (%d,%d) shares nothing but communicates", a, b)
				}
				continue
			}
			if !ok {
				return fmt.Errorf("schedule: pair (%d,%d) shares %v but never communicates", a, b, want)
			}
			if len(got) != len(want) {
				return fmt.Errorf("schedule: pair (%d,%d) carries %v, want %v", a, b, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					return fmt.Errorf("schedule: pair (%d,%d) carries %v, want %v", a, b, got, want)
				}
			}
		}
	}
	return nil
}

// TheoreticalSteps returns the §7.2.2 step count q³/2 + 3q²/2 − 1 for the
// spherical family with parameter q.
func TheoreticalSteps(q int) int {
	return q*q*(q+1)/2 + q*q - 1
}
