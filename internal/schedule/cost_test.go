package schedule

import (
	"math"
	"testing"

	"repro/internal/intmath"
)

func TestStepWords(t *testing.T) {
	q := 3
	part := sphericalPartition(t, q)
	s := buildFor(t, part)
	b := q * (q + 1) // chunks divide evenly: every chunk is b/(q(q+1)) = 1 word
	words := s.StepWords(part, b)
	if len(words) != s.NumSteps() {
		t.Fatalf("%d step words for %d steps", len(words), s.NumSteps())
	}
	chunk := b / (q * (q + 1))
	twoSteps := q * q * (q + 1) / 2
	for si, w := range words {
		want := 2 * chunk
		if si >= twoSteps {
			want = chunk
		}
		if w != want {
			t.Fatalf("step %d: %d words, want %d", si, w, want)
		}
	}
	// Total across steps = per-vector sent words of §7.2.2.
	total := 0
	for _, w := range words {
		total += w
	}
	n := part.M * b
	if want := n*(q+1)/(q*q+1) - n/part.P; total != want {
		t.Fatalf("summed step words %d, want %d", total, want)
	}
}

func TestMakespanDominatesAllToAll(t *testing.T) {
	// The direct schedule beats (or ties) the fixed-width All-to-All for
	// every α, β >= 0: fewer (or equal) steps AND less data per step.
	for _, q := range []int{2, 3} {
		part := sphericalPartition(t, q)
		s := buildFor(t, part)
		b := q * (q + 1)
		width := 2 * intmath.CeilDiv(b, q*(q+1))
		for _, ab := range [][2]float64{{0, 1}, {1, 0}, {10, 1}, {1, 10}, {100, 0.01}} {
			alpha, beta := ab[0], ab[1]
			direct := s.Makespan(part, b, alpha, beta)
			a2a := AllToAllMakespan(part.P, width, alpha, beta)
			if direct > a2a+1e-9 {
				t.Fatalf("q=%d α=%g β=%g: direct %g > all-to-all %g", q, alpha, beta, direct, a2a)
			}
		}
	}
}

func TestMakespanComponents(t *testing.T) {
	// With β=0 the makespan is α·steps; with α=0 it is β·(sent words).
	q := 2
	part := sphericalPartition(t, q)
	s := buildFor(t, part)
	b := q * (q + 1)
	if got := s.Makespan(part, b, 1, 0); math.Abs(got-float64(s.NumSteps())) > 1e-12 {
		t.Fatalf("latency-only makespan %g, want %d", got, s.NumSteps())
	}
	words := s.StepWords(part, b)
	total := 0
	for _, w := range words {
		total += w
	}
	if got := s.Makespan(part, b, 0, 1); math.Abs(got-float64(total)) > 1e-12 {
		t.Fatalf("bandwidth-only makespan %g, want %d", got, total)
	}
}

func TestStepWordsPanicsOnMismatch(t *testing.T) {
	part2 := sphericalPartition(t, 2)
	part3 := sphericalPartition(t, 3)
	s := buildFor(t, part2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.StepWords(part3, 12)
}
