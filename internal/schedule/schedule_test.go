package schedule

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/steiner"
)

func buildFor(t testing.TB, part *partition.Tetrahedral) *Schedule {
	t.Helper()
	s, err := Build(part)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sphericalPartition(t testing.TB, q int) *partition.Tetrahedral {
	t.Helper()
	part, err := partition.NewSpherical(q)
	if err != nil {
		t.Fatal(err)
	}
	return part
}

func TestFigure1SQS8TwelveSteps(t *testing.T) {
	// Appendix A / Figure 1: the SQS(8) partition with P=14 needs exactly
	// 12 communication steps — fewer than P−1 = 13.
	part, err := partition.New(steiner.SQS8())
	if err != nil {
		t.Fatal(err)
	}
	s := buildFor(t, part)
	if s.NumSteps() != 12 {
		t.Fatalf("schedule has %d steps, want 12", s.NumSteps())
	}
	if s.NumSteps() >= part.P-1 {
		t.Fatalf("schedule no better than all-to-all: %d steps", s.NumSteps())
	}
	if err := s.Validate(part); err != nil {
		t.Fatal(err)
	}
	// In SQS(8) every peer pair shares exactly 2 row blocks; every step
	// must be a perfect matching on all 14 processors.
	for si, step := range s.Steps {
		if len(step) != part.P {
			t.Fatalf("step %d has %d transfers, want %d", si, len(step), part.P)
		}
		for _, tr := range step {
			if len(tr.Rows) != 2 {
				t.Fatalf("step %d transfer %d->%d carries %d rows", si, tr.From, tr.To, len(tr.Rows))
			}
		}
	}
}

func TestSphericalStepCounts(t *testing.T) {
	// §7.2.2: q³/2 + 3q²/2 − 1 steps: 9 for q=2, 26 for q=3.
	for _, c := range []struct{ q, want int }{{2, 9}, {3, 26}, {4, 55}} {
		if got := TheoreticalSteps(c.q); got != c.want {
			t.Fatalf("TheoreticalSteps(%d) = %d, want %d", c.q, got, c.want)
		}
		part := sphericalPartition(t, c.q)
		s := buildFor(t, part)
		if got := s.NumSteps(); got != c.want {
			t.Fatalf("q=%d: schedule has %d steps, want %d", c.q, got, c.want)
		}
		if err := s.Validate(part); err != nil {
			t.Fatalf("q=%d: %v", c.q, err)
		}
	}
}

func TestScheduleBeatsAllToAllLatency(t *testing.T) {
	// The direct schedule needs at most the P−1 steps of an all-to-all:
	// q³/2 + 3q²/2 − 1 <= q³ + q − 1 = P − 1, with equality only at q=2
	// and a strict win from q=3 on.
	for _, q := range []int{2, 3, 4} {
		part := sphericalPartition(t, q)
		s := buildFor(t, part)
		if s.NumSteps() > part.P-1 {
			t.Fatalf("q=%d: %d steps > P-1 = %d", q, s.NumSteps(), part.P-1)
		}
		if q >= 3 && s.NumSteps() >= part.P-1 {
			t.Fatalf("q=%d: expected strictly fewer than P-1 = %d steps, got %d", q, part.P-1, s.NumSteps())
		}
	}
}

func TestTwoClassStructure(t *testing.T) {
	// For the spherical family the first q²(q+1)/2 steps carry 2-row
	// messages and the remaining q²−1 carry 1-row messages.
	for _, q := range []int{2, 3} {
		part := sphericalPartition(t, q)
		s := buildFor(t, part)
		twoSteps := q * q * (q + 1) / 2
		for si, step := range s.Steps {
			wantRows := 2
			if si >= twoSteps {
				wantRows = 1
			}
			for _, tr := range step {
				if len(tr.Rows) != wantRows {
					t.Fatalf("q=%d step %d: transfer %d->%d carries %d rows, want %d",
						q, si, tr.From, tr.To, len(tr.Rows), wantRows)
				}
			}
		}
	}
}

func TestPerProcessorMessageCounts(t *testing.T) {
	// Each processor sends q²(q+1)/2 two-row messages and q²−1 one-row
	// messages (§7.2.2) — the per-processor latency cost.
	q := 3
	part := sphericalPartition(t, q)
	s := buildFor(t, part)
	sent := make([]int, part.P)
	recv := make([]int, part.P)
	for _, step := range s.Steps {
		for _, tr := range step {
			sent[tr.From]++
			recv[tr.To]++
		}
	}
	want := q*q*(q+1)/2 + q*q - 1
	for p := 0; p < part.P; p++ {
		if sent[p] != want || recv[p] != want {
			t.Fatalf("processor %d: sent %d recv %d, want %d", p, sent[p], recv[p], want)
		}
	}
}

func TestTransfersAreSymmetricWithinSchedule(t *testing.T) {
	// If a sends to b, then b sends to a somewhere in the schedule with
	// the same row set (exchange symmetry).
	part := sphericalPartition(t, 2)
	s := buildFor(t, part)
	rows := make(map[[2]int][]int)
	for _, step := range s.Steps {
		for _, tr := range step {
			rows[[2]int{tr.From, tr.To}] = tr.Rows
		}
	}
	for key, r := range rows {
		back, ok := rows[[2]int{key[1], key[0]}]
		if !ok {
			t.Fatalf("no reverse transfer for %v", key)
		}
		if len(back) != len(r) {
			t.Fatalf("asymmetric rows for %v: %v vs %v", key, r, back)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	part := sphericalPartition(t, 2)
	s := buildFor(t, part)

	// Duplicate send in one step.
	broken := &Schedule{P: s.P, Steps: append([]Step(nil), s.Steps...)}
	step0 := append(Step(nil), s.Steps[0]...)
	step0 = append(step0, Transfer{From: step0[0].From, To: step0[1].To, Rows: []int{0}})
	broken.Steps[0] = step0
	if err := broken.Validate(part); err == nil {
		t.Fatal("duplicate sender accepted")
	}

	// Missing step.
	broken2 := &Schedule{P: s.P, Steps: s.Steps[1:]}
	if err := broken2.Validate(part); err == nil {
		t.Fatal("incomplete schedule accepted")
	}

	// Wrong rows.
	broken3 := &Schedule{P: s.P}
	for _, step := range s.Steps {
		cp := make(Step, len(step))
		copy(cp, step)
		broken3.Steps = append(broken3.Steps, cp)
	}
	tr := &broken3.Steps[0][0]
	tr.Rows = append([]int(nil), tr.Rows...)
	tr.Rows[0] = (tr.Rows[0] + 1) % part.M
	if err := broken3.Validate(part); err == nil {
		t.Fatal("wrong rows accepted")
	}
}

func BenchmarkBuildQ3(b *testing.B) {
	part := sphericalPartition(b, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(part); err != nil {
			b.Fatal(err)
		}
	}
}
