package schedule

import (
	"fmt"

	"repro/internal/partition"
)

// This file evaluates schedules under the full α-β cost model of §3.1:
// a step in which some processor sends W words costs α + W·β (latency plus
// bandwidth), and steps execute one after another. It lets the two wirings
// of Algorithm 5 be compared as a single number instead of separate
// latency/bandwidth columns.

// StepWords returns, for each step, the largest message (in words) sent in
// that step, for block edge b: a transfer of rows costs the sum of the
// sender's owned chunk sizes of those rows.
func (s *Schedule) StepWords(part *partition.Tetrahedral, b int) []int {
	if part.P != s.P {
		panic(fmt.Sprintf("schedule: partition has P=%d, schedule P=%d", part.P, s.P))
	}
	out := make([]int, len(s.Steps))
	for si, step := range s.Steps {
		maxW := 0
		for _, tr := range step {
			w := 0
			for _, row := range tr.Rows {
				lo, hi, ok := part.OwnedRange(tr.From, row, b)
				if !ok {
					panic(fmt.Sprintf("schedule: transfer %d->%d row %d not owned", tr.From, tr.To, row))
				}
				w += hi - lo
			}
			if w > maxW {
				maxW = w
			}
		}
		out[si] = maxW
	}
	return out
}

// Makespan returns the α-β execution time of one phase of the schedule:
// Σ over steps of (α + maxWords·β).
func (s *Schedule) Makespan(part *partition.Tetrahedral, b int, alpha, beta float64) float64 {
	t := 0.0
	for _, w := range s.StepWords(part, b) {
		t += alpha + float64(w)*beta
	}
	return t
}

// AllToAllMakespan returns the α-β time of one phase realized as a
// fixed-width All-to-All: (P−1) steps of width words each.
func AllToAllMakespan(p, width int, alpha, beta float64) float64 {
	return float64(p-1) * (alpha + float64(width)*beta)
}
