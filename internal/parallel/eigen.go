package parallel

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/tensor"
)

// PowerOptions configures the distributed higher-order power method.
type PowerOptions struct {
	// MaxIter bounds the iteration count (default 200).
	MaxIter int
	// Tol is the eigenvalue convergence tolerance (default 1e-12).
	Tol float64
	// Seed determines the (deterministic) starting vector.
	Seed int64
}

// EigenResult reports a distributed power-method run.
type EigenResult struct {
	// Lambda is the Z-eigenvalue estimate.
	Lambda float64
	// X is the unit eigenvector estimate (assembled on the host at the
	// end).
	X []float64
	// Iterations is the number of STTSV rounds executed. A run stopped by
	// the MaxIter cap reports exactly MaxIter.
	Iterations int
	// Converged reports whether the eigenvalue stabilized within Tol. It
	// stays false for the MaxIter cap exit and for the singular exit.
	Converged bool
	// Singular reports the degenerate exit: ‖y‖ vanished, so the iterate
	// could not be renormalized and the method stopped without
	// converging.
	Singular bool
	// Report carries the communication meters for the whole run, all
	// iterations included.
	Report *machine.Report
	// Phases carries the per-phase meters summed over all iterations:
	// "gather", "local", "reduce-scatter", "all-reduce". Steps on the two
	// exchange meters is the schedule length scaled by the iterations
	// executed.
	Phases []PhaseMeter
}

// Phase returns the meter with the given label, or nil.
func (r *EigenResult) Phase(label string) *PhaseMeter {
	for i := range r.Phases {
		if r.Phases[i].Label == label {
			return &r.Phases[i]
		}
	}
	return nil
}

// RunPowerMethod executes Algorithm 1 entirely on the simulated machine:
// the iterate x lives distributed in the tetrahedral-partition chunk
// layout for the whole run — each iteration performs the two Algorithm 5
// exchanges plus one scalar all-reduce (for λ and the normalization), and
// no vector ever visits a single processor. This is the composition the
// paper's introduction motivates: the per-iteration bandwidth stays at the
// lower bound's leading term.
//
// RunPowerMethod is the one-shot form of Session.PowerMethod: it opens a
// session, runs the method as a single resident operation, and closes.
func RunPowerMethod(a *tensor.Symmetric, opts Options, po PowerOptions) (*EigenResult, error) {
	part := opts.Part
	if part == nil {
		return nil, fmt.Errorf("parallel: nil partition")
	}
	if a == nil {
		return nil, fmt.Errorf("parallel: power method requires a tensor")
	}
	b := opts.B
	if b < 1 {
		return nil, fmt.Errorf("parallel: block edge %d", b)
	}
	if a.N > part.M*b {
		return nil, fmt.Errorf("parallel: n=%d exceeds padded dimension %d", a.N, part.M*b)
	}
	if opts.Wiring != WiringP2P {
		return nil, fmt.Errorf("parallel: power method supports the p2p wiring only")
	}
	s, err := OpenSession(a, opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.PowerMethod(po)
}
