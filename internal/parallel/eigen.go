package parallel

import (
	"fmt"
	"math"

	"repro/internal/collective"
	"repro/internal/machine"
	"repro/internal/schedule"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// PowerOptions configures the distributed higher-order power method.
type PowerOptions struct {
	// MaxIter bounds the iteration count (default 200).
	MaxIter int
	// Tol is the eigenvalue convergence tolerance (default 1e-12).
	Tol float64
	// Seed determines the (deterministic) starting vector.
	Seed int64
}

// EigenResult reports a distributed power-method run.
type EigenResult struct {
	// Lambda is the Z-eigenvalue estimate.
	Lambda float64
	// X is the unit eigenvector estimate (assembled on the host at the
	// end).
	X []float64
	// Iterations is the number of STTSV rounds executed.
	Iterations int
	// Converged reports whether the eigenvalue stabilized within Tol.
	Converged bool
	// Report carries the communication meters for the whole run, all
	// iterations included.
	Report *machine.Report
	// Phases carries the per-phase meters summed over all iterations:
	// "gather", "local", "reduce-scatter", "all-reduce". Steps on the two
	// exchange meters is the per-iteration schedule length.
	Phases []PhaseMeter
}

// Phase returns the meter with the given label, or nil.
func (r *EigenResult) Phase(label string) *PhaseMeter {
	for i := range r.Phases {
		if r.Phases[i].Label == label {
			return &r.Phases[i]
		}
	}
	return nil
}

// RunPowerMethod executes Algorithm 1 entirely on the simulated machine:
// the iterate x lives distributed in the tetrahedral-partition chunk
// layout for the whole run — each iteration performs the two Algorithm 5
// exchanges plus one scalar all-reduce (for λ and the normalization), and
// no vector ever visits a single processor. This is the composition the
// paper's introduction motivates: the per-iteration bandwidth stays at the
// lower bound's leading term.
func RunPowerMethod(a *tensor.Symmetric, opts Options, po PowerOptions) (*EigenResult, error) {
	part := opts.Part
	if part == nil {
		return nil, fmt.Errorf("parallel: nil partition")
	}
	if a == nil {
		return nil, fmt.Errorf("parallel: power method requires a tensor")
	}
	b := opts.B
	if b < 1 {
		return nil, fmt.Errorf("parallel: block edge %d", b)
	}
	n := a.N
	padded := part.M * b
	if n > padded {
		return nil, fmt.Errorf("parallel: n=%d exceeds padded dimension %d", n, padded)
	}
	if po.MaxIter <= 0 {
		po.MaxIter = 200
	}
	if po.Tol <= 0 {
		po.Tol = 1e-12
	}
	if opts.Wiring != WiringP2P {
		return nil, fmt.Errorf("parallel: power method supports the p2p wiring only")
	}
	sched := opts.Sched
	if sched == nil {
		s, err := schedule.Build(part)
		if err != nil {
			return nil, err
		}
		sched = s
	}
	plans := buildPlans(part, sched)

	// Deterministic unit start, padded region zero.
	x0 := make([]float64, padded)
	norm := 0.0
	for i := 0; i < n; i++ {
		x0[i] = math.Sin(float64(i+1)*1.7 + float64(po.Seed))
		norm += x0[i] * x0[i]
	}
	norm = math.Sqrt(norm)
	for i := 0; i < n; i++ {
		x0[i] /= norm
	}

	// The rank block sets are packed once for the whole run — every power
	// iteration reuses them (and a caller-supplied cache survives across
	// RunPowerMethod calls too).
	blocks, err := rankBlocksFor(&opts, a, part, b)
	if err != nil {
		return nil, err
	}
	exec := opts.executor()

	lambdas := make([]float64, part.P)
	iters := make([]int, part.P)
	converged := make([]bool, part.P)
	finalChunks := make([]map[int][]float64, part.P)
	pr := newPhaseRecorder(part.P, "gather", "local", "reduce-scatter", "all-reduce")

	report, err := machine.RunWith(part.P, opts.Machine, func(c *machine.Comm) {
		me := c.Rank()
		myRows := part.Rp[me]
		world := collective.World(c)

		// Owned chunks of the iterate.
		xChunk := make(map[int][]float64, len(myRows))
		for _, i := range myRows {
			lo, hi, _ := part.OwnedRange(me, i, b)
			xChunk[i] = append([]float64(nil), x0[i*b+lo:i*b+hi]...)
		}

		lambda, prev := 0.0, math.Inf(1)
		done := false
		it := 0
		for it = 1; it <= po.MaxIter && !done; it++ {
			// Assemble full x rows from chunks.
			xRows := make(map[int][]float64, len(myRows))
			for _, i := range myRows {
				row := make([]float64, b)
				lo, _, _ := part.OwnedRange(me, i, b)
				copy(row[lo:], xChunk[i])
				xRows[i] = row
			}
			pr.comm(c, "gather", func() {
				runScheduledPhase(c, plans[me], 100, func(peer int, rows []int) []float64 {
					var payload []float64
					for _, row := range rows {
						payload = append(payload, xChunk[row]...)
					}
					return payload
				}, func(peer int, rows []int, payload []float64) {
					pos := 0
					for _, row := range rows {
						lo, hi, _ := part.OwnedRange(peer, row, b)
						copy(xRows[row][lo:hi], payload[pos:pos+hi-lo])
						pos += hi - lo
					}
				})
			})

			// Local STTSV contributions.
			yRows := make(map[int][]float64, len(myRows))
			for _, i := range myRows {
				yRows[i] = make([]float64, b)
			}
			pr.local(c, "local", func() int64 {
				var st sttsv.Stats
				exec.Contribute(blocks.Rank(me), b,
					func(i int) []float64 { return xRows[i] },
					func(i int) []float64 { return yRows[i] }, &st)
				return st.TernaryMults
			})

			// Reduce partial y into owned chunks.
			pr.comm(c, "reduce-scatter", func() {
				runScheduledPhase(c, plans[me], 200, func(peer int, rows []int) []float64 {
					var payload []float64
					for _, row := range rows {
						lo, hi, _ := part.OwnedRange(peer, row, b)
						payload = append(payload, yRows[row][lo:hi]...)
					}
					return payload
				}, func(peer int, rows []int, payload []float64) {
					pos := 0
					for _, row := range rows {
						lo, hi, _ := part.OwnedRange(me, row, b)
						dst := yRows[row]
						for t := lo; t < hi; t++ {
							dst[t] += payload[pos]
							pos++
						}
					}
				})
			})

			// λ = xᵀy and ‖y‖² from owned chunks, combined globally.
			partial := []float64{0, 0}
			for _, i := range myRows {
				lo, hi, _ := part.OwnedRange(me, i, b)
				yc := yRows[i][lo:hi]
				xc := xChunk[i]
				for t := range yc {
					partial[0] += xc[t] * yc[t]
					partial[1] += yc[t] * yc[t]
				}
			}
			var sums []float64
			pr.comm(c, "all-reduce", func() { sums = world.AllReduceSum(300, partial) })
			lambda = sums[0]
			ynorm := math.Sqrt(sums[1])

			if math.Abs(lambda-prev) <= po.Tol*(1+math.Abs(lambda)) {
				done = true
				break
			}
			prev = lambda
			if ynorm == 0 {
				done = true // singular tensor; keep current iterate
				break
			}
			for _, i := range myRows {
				lo, hi, _ := part.OwnedRange(me, i, b)
				yc := yRows[i][lo:hi]
				xc := xChunk[i]
				for t := range xc {
					xc[t] = yc[t] / ynorm
				}
			}
		}

		lambdas[me] = lambda
		iters[me] = it
		converged[me] = done
		out := make(map[int][]float64, len(myRows))
		for _, i := range myRows {
			out[i] = append([]float64(nil), xChunk[i]...)
		}
		finalChunks[me] = out
	})
	if err != nil {
		return nil, err
	}

	// All ranks agree (they all see the same all-reduced scalars).
	pr.meter("gather").Steps = sched.NumSteps()
	pr.meter("reduce-scatter").Steps = sched.NumSteps()
	res := &EigenResult{
		Lambda:     lambdas[0],
		Iterations: iters[0],
		Converged:  converged[0],
		Report:     report,
		Phases:     pr.results(),
	}
	xp := make([]float64, padded)
	for i := 0; i < part.M; i++ {
		for _, ch := range part.RowBlockChunks(i, b) {
			copy(xp[i*b+ch.Lo:i*b+ch.Hi], finalChunks[ch.Proc][i])
		}
	}
	res.X = xp[:n]
	return res, nil
}
