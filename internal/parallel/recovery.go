package parallel

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/machine"
)

// ErrSessionBusy is returned by Session operations invoked while another
// operation is still in flight. A Session is a single-host-goroutine
// engine; the guard turns concurrent misuse into a structured error
// instead of a data race on the staging buffers.
var ErrSessionBusy = errors.New("parallel: session operation already in flight")

// RecoveryOptions tunes the session crash-recovery supervisor (see
// Options.Recovery). The zero value selects all defaults.
type RecoveryOptions struct {
	// MaxRetries bounds in-place replays of one operation (abort, respawn
	// dead ranks, roll back, re-dispatch). Exhausting it triggers the
	// degraded path: one full machine relaunch and a final replay.
	// Default 3.
	MaxRetries int
	// Backoff is the pause before the first replay; it doubles per retry.
	// Default 1ms.
	Backoff time.Duration
	// MaxBackoff caps the doubling. Default 50ms.
	MaxBackoff time.Duration
	// QuiesceTimeout bounds how long the supervisor waits for surviving
	// ranks to unwind to their park after an abort. Default 2s.
	QuiesceTimeout time.Duration
}

func (o RecoveryOptions) withDefaults() RecoveryOptions {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 50 * time.Millisecond
	}
	if o.QuiesceTimeout <= 0 {
		o.QuiesceTimeout = 2 * time.Second
	}
	return o
}

// RecoveryStats counts the supervisor's interventions over a session's
// lifetime. Logical meters are unaffected by any of them — recovery work
// shows only on the wire meters and in these counters.
type RecoveryStats struct {
	// RankDowns counts rank deaths observed (one crash hitting three
	// ranks counts three).
	RankDowns int
	// Retries counts replay attempts after a failed dispatch.
	Retries int
	// Rollbacks counts checkpoint restorations.
	Rollbacks int
	// Restarts counts individual rank respawns (in-place recovery).
	Restarts int
	// Relaunches counts degraded-mode full machine relaunches.
	Relaunches int
	// Epoch is the machine's wire epoch (0 until the first in-place
	// recovery; resets with a relaunch).
	Epoch int64
	// Verifications counts fingerprint verification passes over restored
	// chunk arenas — one per rollback and one per degraded-relaunch
	// restore.
	Verifications int
	// Mismatches counts restores whose fingerprint verification failed
	// (each surfaced a RestoreMismatchError instead of replaying).
	Mismatches int
	// Refences counts partial transport refences at epoch changes (one
	// per surviving rank picking up a new epoch; only disturbed peer
	// pairs had their sequence state reset).
	Refences int
	// FullRebinds counts full transport rebuilds at epoch changes — the
	// fallback for transports without partial-reset support.
	FullRebinds int
	// CheckpointWords counts dirty words the incremental checkpointer
	// copied over the session lifetime. Apply-style operations contribute
	// zero; power-method iterations contribute their owned spans.
	CheckpointWords int64
	// CheckpointNanos and RestoreNanos accumulate wall time spent in the
	// checkpoint capture and the rollback-restore paths.
	CheckpointNanos int64
	RestoreNanos    int64
}

// RecoveryStats reports the supervisor counters so far. Call between
// operations (or after Close).
func (s *Session) RecoveryStats() RecoveryStats {
	st := s.stats
	st.Refences = int(s.refences.Load())
	st.FullRebinds = int(s.rebinds.Load())
	if s.cur != nil {
		st.Epoch = s.cur.h.Epoch()
	}
	return st
}

// launch is one incarnation of the resident machine. A fail-fast session
// has exactly one; a recovering session replaces it wholesale when it
// degrades (the in-place path keeps the launch and respawns ranks inside
// it).
type launch struct {
	h       *machine.Handle
	ops     []chan *sessionOp
	runDone chan struct{}
	report  *machine.Report
	runErr  error

	// resets holds, per rank, the peers whose transport pair state was
	// disturbed by the last aborted epoch; a surviving rank reads its
	// entry when it picks up the first operation of the new epoch and
	// resets exactly those pairs (Comm.Refence). Guarded by mu because a
	// rank that raced the recovery with a stale queued op may read while
	// the supervisor installs the next epoch's lists.
	mu     sync.Mutex
	resets [][]int
}

func (l *launch) setResets(r [][]int) {
	l.mu.Lock()
	l.resets = r
	l.mu.Unlock()
}

func (l *launch) resetsFor(me int) []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.resets == nil {
		return nil
	}
	return l.resets[me]
}

// rankDown is a crash notification from the machine's OnRankDown hook.
type rankDown struct {
	rank int
	err  error
}

// launchMachine starts a fresh machine incarnation and installs it as
// s.cur. For recovering sessions the config gains the OnRankDown hook
// that feeds s.crashCh (which also flips the machine into supervised
// mode: a crashed rank no longer poisons host-quiescence detection).
func (s *Session) launchMachine() error {
	ops := make([]chan *sessionOp, s.part.P)
	for r := range ops {
		ops[r] = make(chan *sessionOp, 1)
	}
	l := &launch{ops: ops, runDone: make(chan struct{})}
	cfg := s.opts.Machine
	if s.rec != nil {
		cfg.OnRankDown = func(rank int, err error) {
			select {
			case s.crashCh <- rankDown{rank: rank, err: err}:
			default: // supervisor scans diagnostics anyway; never block a dying rank
			}
		}
	}
	h, err := machine.StartWith(s.part.P, cfg, s.rankBodyFor(l))
	if err != nil {
		return err
	}
	l.h = h
	go func() {
		l.report, l.runErr = h.Wait()
		close(l.runDone)
	}()
	s.cur = l
	return nil
}

// rankBodyFor is the resident body every simulated rank of launch l runs:
// serve host-fed operations until the op channel closes. The body tracks
// the machine's wire epoch; when a recovery advanced it while the rank
// was parked, the rank refences its transport before touching the wire:
// only pairs the supervisor found disturbed by the aborted epoch have
// their sequence state reset, while clean survivor↔survivor pairs keep
// their counters (every exchange they completed was acknowledged on both
// ends, so the state is consistent). Transports without partial-reset
// support fall back to a full Rebind. A rank respawned by RestartRank
// starts inside the new epoch and needs neither.
func (s *Session) rankBodyFor(l *launch) func(c *machine.Comm) {
	return func(c *machine.Comm) {
		me := c.Rank()
		epoch := c.Epoch()
		for {
			var op *sessionOp
			c.AwaitHost(func() { op = <-l.ops[me] })
			if op == nil {
				return
			}
			if e := c.Epoch(); e != epoch {
				if c.Refence(l.resetsFor(me)) {
					s.refences.Add(1)
				} else {
					s.rebinds.Add(1)
				}
				epoch = e
			}
			runSessionOp(op, me, c)
		}
	}
}

// runSessionOp runs one op, absorbing an epoch abort: the sentinel
// unwinds the op body mid-communication, and the rank re-parks without
// completing the op (no pending decrement — the supervisor abandoned
// that op object and will dispatch a fresh one after rollback). Any
// other panic (an injected CrashError, a genuine bug) propagates and
// kills the rank.
func runSessionOp(op *sessionOp, me int, c *machine.Comm) {
	aborted := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if machine.IsAbort(r) {
					aborted = true
					return
				}
				panic(r)
			}
		}()
		op.run(me, c)
	}()
	if !aborted {
		if op.pending.Add(-1) == 0 {
			close(op.done)
		}
	}
}

// dispatch hands one operation to every rank and waits for completion,
// supervising the run when recovery is armed. pr may be nil for
// operations without phase meters; dk declares which checkpointed state
// the operation mutates, bounding what the checkpointer copies.
func (s *Session) dispatch(pr *phaseRecorder, dk dirtyKind, run func(me int, c *machine.Comm)) error {
	if s.rec == nil {
		return s.dispatchOnce(run)
	}
	return s.dispatchRecover(pr, dk, run)
}

// dispatchOnce is the fail-fast path: one attempt, any machine death is
// the operation's error.
func (s *Session) dispatchOnce(run func(me int, c *machine.Comm)) error {
	l := s.cur
	op := &sessionOp{run: run, done: make(chan struct{})}
	op.pending.Store(int64(s.part.P))
	for r := range l.ops {
		select {
		case l.ops[r] <- op:
		case <-l.runDone:
			return s.sessionErr()
		}
	}
	select {
	case <-op.done:
		return nil
	case <-l.runDone:
		return s.sessionErr()
	}
}

func (s *Session) sessionErr() error {
	if err := s.cur.runErr; err != nil {
		return err
	}
	return fmt.Errorf("parallel: session machine exited")
}

// dispatchRecover is the supervised path: checkpoint, attempt, and on a
// rank death abort the epoch, respawn the dead ranks, roll every rank
// back to the checkpoint and replay — up to MaxRetries times with
// exponential backoff. If the retry budget runs out or the machine
// itself dies (watchdog fired, or survivors would not quiesce), it
// degrades: a fresh machine is launched carrying the committed meters,
// and the operation replays once more from the same checkpoint.
func (s *Session) dispatchRecover(pr *phaseRecorder, dk dirtyKind, run func(me int, c *machine.Comm)) error {
	ck := s.checkpoint(pr, dk)
	backoff := s.rec.Backoff
	attempt := 0
	for {
		if attempt == 0 && len(s.cur.h.CrashedRanks()) > 0 {
			// A rank died while parked (crashes can fire while a parked
			// transport services a peer's retransmission): recover before
			// feeding it an operation it can never run.
			s.stats.Retries++
			if !s.recoverInPlace(1) {
				break
			}
			if err := s.restore(ck, pr); err != nil {
				return err
			}
			attempt = 1
		}
		ok, dead := s.tryOnce(run)
		if ok {
			return nil
		}
		if dead {
			break
		}
		attempt++
		if attempt > s.rec.MaxRetries {
			break
		}
		s.stats.Retries++
		if !s.recoverInPlace(attempt) {
			break
		}
		if err := s.restore(ck, pr); err != nil {
			return err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > s.rec.MaxBackoff {
			backoff = s.rec.MaxBackoff
		}
	}
	if err := s.degrade(ck); err != nil {
		return err
	}
	if err := s.restore(ck, pr); err != nil {
		return err
	}
	return s.dispatchOnce(run)
}

// tryOnce feeds one op to every rank and waits for completion, a crash
// notification, or machine death.
func (s *Session) tryOnce(run func(me int, c *machine.Comm)) (ok, dead bool) {
	l := s.cur
	op := &sessionOp{run: run, done: make(chan struct{})}
	op.pending.Store(int64(s.part.P))
	for r := range l.ops {
		select {
		case l.ops[r] <- op:
		case <-l.runDone:
			return false, true
		}
	}
	select {
	case <-op.done:
		return true, false
	case <-l.runDone:
		return false, true
	case <-s.crashCh:
		return false, false
	}
}

// recoverInPlace executes one abort-respawn-refence cycle on the current
// launch: abort the epoch (every rank blocked in a machine operation
// unwinds to its park), wait for quiescence, respawn each crashed rank
// on a fresh mailbox, and roll the machine into a new epoch that fences
// all stale wire traffic. Returns false when the machine cannot be
// saved in place (survivors stuck past the quiesce window, or a respawn
// failed) — the caller degrades to a relaunch.
func (s *Session) recoverInPlace(attempt int) bool {
	l := s.cur
	l.h.Abort()
	if err := l.h.Quiesce(s.rec.QuiesceTimeout); err != nil {
		return false
	}
	s.drainCrashes()
	dead := l.h.CrashedRanks()
	for _, r := range dead {
		l.h.Emit(r, machine.Event{Kind: machine.EventRankDown, From: r, To: r, Step: -1})
	}
	// The supervisor abandoned the aborted op object; any rank (dead or
	// parked) that never consumed its copy must not replay it after the
	// rollback.
	for r := range l.ops {
		select {
		case <-l.ops[r]:
		default:
		}
	}
	l.h.Emit(0, machine.Event{Kind: machine.EventRecoveryBegin, From: 0, To: 0, Step: attempt})
	// Publish the disturbed-pair lists before the epoch advances: a rank
	// observing the new epoch is then guaranteed to see its reset list.
	l.setResets(s.computeResets(dead))
	l.h.BeginEpoch()
	for _, r := range dead {
		if err := l.h.RestartRank(r); err != nil {
			return false
		}
	}
	s.stats.RankDowns += len(dead)
	s.stats.Restarts += len(dead)
	return true
}

// computeResets derives the transport pairs disturbed by the aborted
// epoch — the only pairs whose sequence state a surviving rank must
// rebase when it refences into the new epoch. Three evidence sources,
// each symmetrized (a reset must land on both ends of a pair or the
// survivors' counters diverge):
//
//  1. every (dead rank, static peer) pair: the respawned rank's fresh
//     transport starts all its counters in the new epoch's namespace, so
//     every survivor it can ever exchange with must rebase its side;
//  2. every pair a survivor was unwound out of mid-Send or mid-Recv (the
//     abort context its park recorded): the message in flight was rolled
//     back, so both ends' counters refer to an abandoned conversation;
//  3. every pair with buffered transport state on the receiving side —
//     payloads released but never consumed, or packets parked out of
//     order: consumed-and-acked is the only boundary at which a pair's
//     counters are provably consistent.
//
// Pairs outside all three sets completed their exchanges with both ends
// acknowledged, so their counters continue seamlessly across the epoch —
// that is the partial-rebind win.
func (s *Session) computeResets(dead []int) [][]int {
	p := s.part.P
	l := s.cur
	mark := make([][]bool, p)
	for i := range mark {
		mark[i] = make([]bool, p)
	}
	pair := func(i, j int) {
		if i == j || i < 0 || j < 0 || i >= p || j >= p {
			return
		}
		mark[i][j], mark[j][i] = true, true
	}
	for _, d := range dead {
		for _, q := range s.staticPeers[d] {
			pair(d, q)
		}
	}
	for r := 0; r < p; r++ {
		if k, peer := l.h.TakeAbortContext(r); k == machine.BlockSend || k == machine.BlockRecv {
			pair(r, peer)
		}
		for _, pe := range l.h.RankPending(r) {
			pair(r, pe.From)
		}
	}
	resets := make([][]int, p)
	for i := range resets {
		for j := 0; j < p; j++ {
			if mark[i][j] {
				resets[i] = append(resets[i], j)
			}
		}
	}
	return resets
}

// buildStaticPeers precomputes, per rank, every peer the session's wiring
// can ever exchange with — the schedule's matching structure plus the
// collectives the session's operations run. When a rank dies, exactly
// these pairs must rebase on its respawn; ranks outside a dead rank's
// static set never shared a conversation with it. Under the All-to-All
// wiring the fixed exchange ring touches every pair, so the graph is
// complete; under the point-to-point wiring it is the schedule's step
// pairs plus the scalar all-reduce tree (a gather into rank 0 and a
// binomial broadcast) the power method runs each iteration.
func (s *Session) buildStaticPeers() [][]int {
	p := s.part.P
	adj := make([][]bool, p)
	for i := range adj {
		adj[i] = make([]bool, p)
	}
	pair := func(i, j int) {
		if j >= 0 && j < p && i != j {
			adj[i][j], adj[j][i] = true, true
		}
	}
	if s.opts.Wiring == WiringAllToAll {
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				if i != j {
					adj[i][j] = true
				}
			}
		}
	} else {
		for r := 0; r < p; r++ {
			for _, st := range s.lay.perRank[r].steps {
				pair(r, st.sendTo)
				pair(r, st.recvFrom)
			}
		}
		for r := 1; r < p; r++ {
			pair(r, 0) // all-reduce gather into the group root
		}
		for bit := 1; bit < p; bit <<= 1 {
			for a := 0; a < bit && a+bit < p; a++ {
				pair(a, a+bit) // binomial broadcast edges
			}
		}
	}
	out := make([][]int, p)
	for i := range out {
		for j := 0; j < p; j++ {
			if adj[i][j] {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

// degrade retires the current machine incarnation entirely and launches
// a fresh one that carries the meters forward: logical counters resume
// from the checkpoint (committed work only), wire counters resume from
// the old machine's cumulative totals (recovery traffic stays visible).
func (s *Session) degrade(ck *ckSlot) error {
	old := s.cur
	dead := old.h.CrashedRanks()
	// Unstick anything still blocked in a machine operation, then release
	// the parked survivors; the old machine's goroutines all exit.
	old.h.Abort()
	for r := range old.ops {
		close(old.ops[r])
	}
	<-old.runDone
	s.drainCrashes()

	carried := make([]machine.Meters, s.part.P)
	seqs := make([]int64, s.part.P)
	for r := range carried {
		mt := ck.meters[r]
		wm := old.h.RankMeters(r)
		mt.WireSentWords, mt.WireRecvWords = wm.WireSentWords, wm.WireRecvWords
		mt.WireSentMsgs, mt.WireRecvMsgs = wm.WireSentMsgs, wm.WireRecvMsgs
		carried[r] = mt
		seqs[r] = old.h.RankEventSeq(r)
	}
	if err := s.launchMachine(); err != nil {
		return err
	}
	for r, mt := range carried {
		s.cur.h.RestoreMeters(r, mt, true)
		// Carry per-rank trace ordering onto the fresh machine: its event
		// counters would otherwise restart at zero and scramble the
		// canonical (rank, seq) order across incarnations.
		s.cur.h.RestoreEventSeq(r, seqs[r])
	}
	s.stats.Relaunches++
	s.stats.RankDowns += len(dead)
	for _, r := range dead {
		s.cur.h.Emit(r, machine.Event{Kind: machine.EventRankDown, From: r, To: r, Step: -1})
	}
	s.cur.h.Emit(0, machine.Event{Kind: machine.EventRecoveryBegin, From: 0, To: 0, Step: s.rec.MaxRetries + 1})
	return nil
}

func (s *Session) drainCrashes() {
	for {
		select {
		case <-s.crashCh:
		default:
			return
		}
	}
}

// The checkpoint store itself — incremental capture, shadow mirrors, page
// fingerprints, and verified restore — lives in checkpoint.go.
