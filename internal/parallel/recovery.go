package parallel

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/machine"
)

// ErrSessionBusy is returned by Session operations invoked while another
// operation is still in flight. A Session is a single-host-goroutine
// engine; the guard turns concurrent misuse into a structured error
// instead of a data race on the staging buffers.
var ErrSessionBusy = errors.New("parallel: session operation already in flight")

// RecoveryOptions tunes the session crash-recovery supervisor (see
// Options.Recovery). The zero value selects all defaults.
type RecoveryOptions struct {
	// MaxRetries bounds in-place replays of one operation (abort, respawn
	// dead ranks, roll back, re-dispatch). Exhausting it triggers the
	// degraded path: one full machine relaunch and a final replay.
	// Default 3.
	MaxRetries int
	// Backoff is the pause before the first replay; it doubles per retry.
	// Default 1ms.
	Backoff time.Duration
	// MaxBackoff caps the doubling. Default 50ms.
	MaxBackoff time.Duration
	// QuiesceTimeout bounds how long the supervisor waits for surviving
	// ranks to unwind to their park after an abort. Default 2s.
	QuiesceTimeout time.Duration
}

func (o RecoveryOptions) withDefaults() RecoveryOptions {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	if o.Backoff <= 0 {
		o.Backoff = time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 50 * time.Millisecond
	}
	if o.QuiesceTimeout <= 0 {
		o.QuiesceTimeout = 2 * time.Second
	}
	return o
}

// RecoveryStats counts the supervisor's interventions over a session's
// lifetime. Logical meters are unaffected by any of them — recovery work
// shows only on the wire meters and in these counters.
type RecoveryStats struct {
	// RankDowns counts rank deaths observed (one crash hitting three
	// ranks counts three).
	RankDowns int
	// Retries counts replay attempts after a failed dispatch.
	Retries int
	// Rollbacks counts checkpoint restorations.
	Rollbacks int
	// Restarts counts individual rank respawns (in-place recovery).
	Restarts int
	// Relaunches counts degraded-mode full machine relaunches.
	Relaunches int
	// Epoch is the machine's wire epoch (0 until the first in-place
	// recovery; resets with a relaunch).
	Epoch int64
}

// RecoveryStats reports the supervisor counters so far. Call between
// operations (or after Close).
func (s *Session) RecoveryStats() RecoveryStats {
	st := s.stats
	if s.cur != nil {
		st.Epoch = s.cur.h.Epoch()
	}
	return st
}

// launch is one incarnation of the resident machine. A fail-fast session
// has exactly one; a recovering session replaces it wholesale when it
// degrades (the in-place path keeps the launch and respawns ranks inside
// it).
type launch struct {
	h       *machine.Handle
	ops     []chan *sessionOp
	runDone chan struct{}
	report  *machine.Report
	runErr  error
}

// rankDown is a crash notification from the machine's OnRankDown hook.
type rankDown struct {
	rank int
	err  error
}

// launchMachine starts a fresh machine incarnation and installs it as
// s.cur. For recovering sessions the config gains the OnRankDown hook
// that feeds s.crashCh (which also flips the machine into supervised
// mode: a crashed rank no longer poisons host-quiescence detection).
func (s *Session) launchMachine() error {
	ops := make([]chan *sessionOp, s.part.P)
	for r := range ops {
		ops[r] = make(chan *sessionOp, 1)
	}
	l := &launch{ops: ops, runDone: make(chan struct{})}
	cfg := s.opts.Machine
	if s.rec != nil {
		cfg.OnRankDown = func(rank int, err error) {
			select {
			case s.crashCh <- rankDown{rank: rank, err: err}:
			default: // supervisor scans diagnostics anyway; never block a dying rank
			}
		}
	}
	h, err := machine.StartWith(s.part.P, cfg, s.rankBodyFor(l))
	if err != nil {
		return err
	}
	l.h = h
	go func() {
		l.report, l.runErr = h.Wait()
		close(l.runDone)
	}()
	s.cur = l
	return nil
}

// rankBodyFor is the resident body every simulated rank of launch l runs:
// serve host-fed operations until the op channel closes. The body tracks
// the machine's wire epoch; when a recovery advanced it while the rank
// was parked, the rank rebuilds its transport before touching the wire,
// so protocol state (sequence numbers, parked packets, retransmission
// windows) never crosses an epoch fence. A rank respawned by RestartRank
// starts inside the new epoch and needs no rebind.
func (s *Session) rankBodyFor(l *launch) func(c *machine.Comm) {
	return func(c *machine.Comm) {
		me := c.Rank()
		epoch := c.Epoch()
		for {
			var op *sessionOp
			c.AwaitHost(func() { op = <-l.ops[me] })
			if op == nil {
				return
			}
			if e := c.Epoch(); e != epoch {
				c.Rebind()
				epoch = e
			}
			runSessionOp(op, me, c)
		}
	}
}

// runSessionOp runs one op, absorbing an epoch abort: the sentinel
// unwinds the op body mid-communication, and the rank re-parks without
// completing the op (no pending decrement — the supervisor abandoned
// that op object and will dispatch a fresh one after rollback). Any
// other panic (an injected CrashError, a genuine bug) propagates and
// kills the rank.
func runSessionOp(op *sessionOp, me int, c *machine.Comm) {
	aborted := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if machine.IsAbort(r) {
					aborted = true
					return
				}
				panic(r)
			}
		}()
		op.run(me, c)
	}()
	if !aborted {
		if op.pending.Add(-1) == 0 {
			close(op.done)
		}
	}
}

// dispatch hands one operation to every rank and waits for completion,
// supervising the run when recovery is armed. pr may be nil for
// operations without phase meters.
func (s *Session) dispatch(pr *phaseRecorder, run func(me int, c *machine.Comm)) error {
	if s.rec == nil {
		return s.dispatchOnce(run)
	}
	return s.dispatchRecover(pr, run)
}

// dispatchOnce is the fail-fast path: one attempt, any machine death is
// the operation's error.
func (s *Session) dispatchOnce(run func(me int, c *machine.Comm)) error {
	l := s.cur
	op := &sessionOp{run: run, done: make(chan struct{})}
	op.pending.Store(int64(s.part.P))
	for r := range l.ops {
		select {
		case l.ops[r] <- op:
		case <-l.runDone:
			return s.sessionErr()
		}
	}
	select {
	case <-op.done:
		return nil
	case <-l.runDone:
		return s.sessionErr()
	}
}

func (s *Session) sessionErr() error {
	if err := s.cur.runErr; err != nil {
		return err
	}
	return fmt.Errorf("parallel: session machine exited")
}

// dispatchRecover is the supervised path: checkpoint, attempt, and on a
// rank death abort the epoch, respawn the dead ranks, roll every rank
// back to the checkpoint and replay — up to MaxRetries times with
// exponential backoff. If the retry budget runs out or the machine
// itself dies (watchdog fired, or survivors would not quiesce), it
// degrades: a fresh machine is launched carrying the committed meters,
// and the operation replays once more from the same checkpoint.
func (s *Session) dispatchRecover(pr *phaseRecorder, run func(me int, c *machine.Comm)) error {
	ck := s.checkpoint(pr)
	backoff := s.rec.Backoff
	attempt := 0
	for {
		if attempt == 0 && len(s.cur.h.CrashedRanks()) > 0 {
			// A rank died while parked (crashes can fire while a parked
			// transport services a peer's retransmission): recover before
			// feeding it an operation it can never run.
			s.stats.Retries++
			if !s.recoverInPlace(1) {
				break
			}
			s.restore(ck, pr)
			attempt = 1
		}
		ok, dead := s.tryOnce(run)
		if ok {
			return nil
		}
		if dead {
			break
		}
		attempt++
		if attempt > s.rec.MaxRetries {
			break
		}
		s.stats.Retries++
		if !s.recoverInPlace(attempt) {
			break
		}
		s.restore(ck, pr)
		time.Sleep(backoff)
		if backoff *= 2; backoff > s.rec.MaxBackoff {
			backoff = s.rec.MaxBackoff
		}
	}
	if err := s.degrade(ck); err != nil {
		return err
	}
	s.restore(ck, pr)
	return s.dispatchOnce(run)
}

// tryOnce feeds one op to every rank and waits for completion, a crash
// notification, or machine death.
func (s *Session) tryOnce(run func(me int, c *machine.Comm)) (ok, dead bool) {
	l := s.cur
	op := &sessionOp{run: run, done: make(chan struct{})}
	op.pending.Store(int64(s.part.P))
	for r := range l.ops {
		select {
		case l.ops[r] <- op:
		case <-l.runDone:
			return false, true
		}
	}
	select {
	case <-op.done:
		return true, false
	case <-l.runDone:
		return false, true
	case <-s.crashCh:
		return false, false
	}
}

// recoverInPlace executes one abort-respawn-refence cycle on the current
// launch: abort the epoch (every rank blocked in a machine operation
// unwinds to its park), wait for quiescence, respawn each crashed rank
// on a fresh mailbox, and roll the machine into a new epoch that fences
// all stale wire traffic. Returns false when the machine cannot be
// saved in place (survivors stuck past the quiesce window, or a respawn
// failed) — the caller degrades to a relaunch.
func (s *Session) recoverInPlace(attempt int) bool {
	l := s.cur
	l.h.Abort()
	if err := l.h.Quiesce(s.rec.QuiesceTimeout); err != nil {
		return false
	}
	s.drainCrashes()
	dead := l.h.CrashedRanks()
	for _, r := range dead {
		l.h.Emit(r, machine.Event{Kind: machine.EventRankDown, From: r, To: r, Step: -1})
		// A rank that crashed before consuming a fed op leaves it in the
		// channel buffer; the respawned body must not replay a stale op.
		select {
		case <-l.ops[r]:
		default:
		}
	}
	l.h.Emit(0, machine.Event{Kind: machine.EventRecoveryBegin, From: 0, To: 0, Step: attempt})
	l.h.BeginEpoch()
	for _, r := range dead {
		if err := l.h.RestartRank(r); err != nil {
			return false
		}
	}
	s.stats.RankDowns += len(dead)
	s.stats.Restarts += len(dead)
	return true
}

// degrade retires the current machine incarnation entirely and launches
// a fresh one that carries the meters forward: logical counters resume
// from the checkpoint (committed work only), wire counters resume from
// the old machine's cumulative totals (recovery traffic stays visible).
func (s *Session) degrade(ck *sessionCheckpoint) error {
	old := s.cur
	dead := old.h.CrashedRanks()
	// Unstick anything still blocked in a machine operation, then release
	// the parked survivors; the old machine's goroutines all exit.
	old.h.Abort()
	for r := range old.ops {
		close(old.ops[r])
	}
	<-old.runDone
	s.drainCrashes()

	carried := make([]machine.Meters, s.part.P)
	for r := range carried {
		mt := ck.meters[r]
		wm := old.h.RankMeters(r)
		mt.WireSentWords, mt.WireRecvWords = wm.WireSentWords, wm.WireRecvWords
		mt.WireSentMsgs, mt.WireRecvMsgs = wm.WireSentMsgs, wm.WireRecvMsgs
		carried[r] = mt
	}
	if err := s.launchMachine(); err != nil {
		return err
	}
	for r, mt := range carried {
		s.cur.h.RestoreMeters(r, mt, true)
	}
	s.stats.Relaunches++
	s.stats.RankDowns += len(dead)
	for _, r := range dead {
		s.cur.h.Emit(r, machine.Event{Kind: machine.EventRankDown, From: r, To: r, Step: -1})
	}
	s.cur.h.Emit(0, machine.Event{Kind: machine.EventRecoveryBegin, From: 0, To: 0, Step: s.rec.MaxRetries + 1})
	return nil
}

func (s *Session) drainCrashes() {
	for {
		select {
		case <-s.crashCh:
		default:
			return
		}
	}
}

// sessionCheckpoint is the state needed to replay one dispatch: per-rank
// logical meters, the distributed power-method iterate and its
// convergence scalars, and the phase recorder's accumulated rows. The
// x/y arenas need no checkpoint — stage+gather rebuild the x arena from
// host staging (or the chunk iterate) and zeroY+publish fully overwrite
// the y path on every attempt.
type sessionCheckpoint struct {
	meters   []machine.Meters
	chunk    [][]float64
	pmLambda []float64
	pmPrev   []float64
	phases   []phaseSnap
}

// checkpoint captures the committed state at a dispatch boundary (all
// ranks parked, so the host may read their counters and chunk state).
func (s *Session) checkpoint(pr *phaseRecorder) *sessionCheckpoint {
	p := s.part.P
	ck := &sessionCheckpoint{
		meters:   make([]machine.Meters, p),
		chunk:    make([][]float64, p),
		pmLambda: make([]float64, p),
		pmPrev:   make([]float64, p),
	}
	for r := 0; r < p; r++ {
		ck.meters[r] = s.cur.h.RankMeters(r)
		ck.chunk[r] = append([]float64(nil), s.rk[r].chunk...)
		ck.pmLambda[r] = s.rk[r].pmLambda
		ck.pmPrev[r] = s.rk[r].pmPrev
	}
	if pr != nil {
		ck.phases = pr.snapshot()
	}
	return ck
}

// restore rolls every rank back to the checkpoint: logical meters (wire
// meters keep running — that is where recovery overhead belongs), the
// chunk iterate and power-method scalars, and the phase recorder rows.
// Collective groups are dropped so they rebind to the current Comm on
// the next use (a respawned rank and a relaunched machine both carry
// fresh Comms).
func (s *Session) restore(ck *sessionCheckpoint, pr *phaseRecorder) {
	l := s.cur
	for r := 0; r < s.part.P; r++ {
		l.h.RestoreMeters(r, ck.meters[r], false)
		copy(s.rk[r].chunk, ck.chunk[r])
		s.rk[r].pmLambda = ck.pmLambda[r]
		s.rk[r].pmPrev = ck.pmPrev[r]
		s.rk[r].world = nil
	}
	if pr != nil {
		pr.restore(ck.phases)
	}
	s.stats.Rollbacks++
	l.h.Emit(0, machine.Event{Kind: machine.EventRecoveryEnd, From: 0, To: 0, Step: -1})
}
