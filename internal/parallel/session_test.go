package parallel

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/la"
	"repro/internal/machine"
	"repro/internal/tensor"
)

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestSessionApplyConformance is the session correctness bar: 50 Apply
// calls on one resident session must produce bit-identical Y, identical
// per-phase meters, and an identical per-operation report compared to 50
// independent Run calls — for both wirings and two partition sizes.
func TestSessionApplyConformance(t *testing.T) {
	for _, q := range []int{2, 3} {
		for _, wiring := range []Wiring{WiringP2P, WiringAllToAll} {
			part := sphericalPart(t, q)
			b := 7 // non-divisible chunking exercises uneven segments
			n := part.M * b
			rng := rand.New(rand.NewSource(900 + int64(q)))
			a := tensor.Random(n, rng)
			opts := Options{Part: part, B: b, Wiring: wiring}

			s, err := OpenSession(a, opts)
			if err != nil {
				t.Fatalf("q=%d wiring=%v: open: %v", q, wiring, err)
			}
			for iter := 0; iter < 50; iter++ {
				x := randVec(n, rng)
				got, err := s.Apply(x)
				if err != nil {
					t.Fatalf("q=%d wiring=%v iter=%d: session apply: %v", q, wiring, iter, err)
				}
				want, err := Run(a, x, opts)
				if err != nil {
					t.Fatalf("q=%d wiring=%v iter=%d: run: %v", q, wiring, iter, err)
				}
				if !bitsEqual(got.Y, want.Y) {
					t.Fatalf("q=%d wiring=%v iter=%d: session Y not bit-identical to Run", q, wiring, iter)
				}
				if !reflect.DeepEqual(got.Phases, want.Phases) {
					t.Fatalf("q=%d wiring=%v iter=%d: phase meters differ:\nsession %+v\nrun     %+v",
						q, wiring, iter, got.Phases, want.Phases)
				}
				if !reflect.DeepEqual(got.Report, want.Report) {
					t.Fatalf("q=%d wiring=%v iter=%d: reports differ:\nsession %+v\nrun     %+v",
						q, wiring, iter, got.Report, want.Report)
				}
				if got.Steps != want.Steps {
					t.Fatalf("q=%d wiring=%v iter=%d: steps %d vs %d", q, wiring, iter, got.Steps, want.Steps)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatalf("q=%d wiring=%v: close: %v", q, wiring, err)
			}
		}
	}
}

// TestSessionApplyWorkersConformance repeats the conformance check with a
// multi-worker local executor: the reused Scratch accumulators must
// reproduce the fresh-buffer tree reduction bit for bit.
func TestSessionApplyWorkersConformance(t *testing.T) {
	part := sphericalPart(t, 2)
	b := 9
	n := part.M * b
	rng := rand.New(rand.NewSource(17))
	a := tensor.Random(n, rng)
	opts := Options{Part: part, B: b, Wiring: WiringP2P, Workers: 3}
	s, err := OpenSession(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for iter := 0; iter < 10; iter++ {
		x := randVec(n, rng)
		got, err := s.Apply(x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(a, x, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(got.Y, want.Y) {
			t.Fatalf("iter %d: multi-worker session Y not bit-identical to Run", iter)
		}
	}
}

// TestSessionBatchColumns: ApplyBatch column l must be bit-identical to
// Apply(X[l]), while the per-phase message count is that of a single
// application (the α amortization) and the words are cols× one column.
func TestSessionBatchColumns(t *testing.T) {
	for _, wiring := range []Wiring{WiringP2P, WiringAllToAll} {
		part := sphericalPart(t, 2)
		b := 8
		n := part.M * b
		rng := rand.New(rand.NewSource(23))
		a := tensor.Random(n, rng)
		s, err := OpenSession(a, Options{Part: part, B: b, Wiring: wiring})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()

		const cols = 3
		X := make([][]float64, cols)
		for l := range X {
			X[l] = randVec(n, rng)
		}
		batch, err := s.ApplyBatch(X)
		if err != nil {
			t.Fatal(err)
		}
		single := make([]*Result, cols)
		for l := range X {
			if single[l], err = s.Apply(X[l]); err != nil {
				t.Fatal(err)
			}
		}
		for l := range X {
			if !bitsEqual(batch.Y[l], single[l].Y) {
				t.Fatalf("wiring=%v: batch column %d not bit-identical to single apply", wiring, l)
			}
		}
		// Amortization: same message count as ONE application, cols× words.
		bg := batch.Phases[0] // gather
		sg := single[0].Phases[0]
		for r := 0; r < part.P; r++ {
			if bg.SentMsgs[r] != sg.SentMsgs[r] {
				t.Fatalf("wiring=%v rank %d: batch gather msgs %d, single %d — batching must not add messages",
					wiring, r, bg.SentMsgs[r], sg.SentMsgs[r])
			}
			if bg.SentWords[r] != cols*sg.SentWords[r] {
				t.Fatalf("wiring=%v rank %d: batch gather words %d, want %d (cols×single)",
					wiring, r, bg.SentWords[r], cols*sg.SentWords[r])
			}
		}
	}
}

// TestSessionMTTKRPMatchesRun: the session's batched MTTKRP must agree
// with the one-shot wrapper (which itself runs on a fresh session) to the
// bit, including growing the column capacity on demand.
func TestSessionMTTKRPMatchesRun(t *testing.T) {
	part := sphericalPart(t, 2)
	b := 6
	n := part.M * b
	rng := rand.New(rand.NewSource(31))
	a := tensor.Random(n, rng)
	r := 4
	x := la.NewMatrix(n, r)
	for i := 0; i < n; i++ {
		for l := 0; l < r; l++ {
			x.Set(i, l, rng.NormFloat64())
		}
	}
	opts := Options{Part: part, B: b, Wiring: WiringP2P}
	s, err := OpenSession(a, opts) // MaxCols deliberately left at 1: exercises growth
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gotY, gotRes, err := s.MTTKRP(x, r)
	if err != nil {
		t.Fatal(err)
	}
	wantY, wantRes, err := RunMTTKRP(a, x, r, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(gotY.Data, wantY.Data) {
		t.Fatal("session MTTKRP not bit-identical to RunMTTKRP")
	}
	if !reflect.DeepEqual(gotRes.Phases, wantRes.Phases) {
		t.Fatalf("MTTKRP phase meters differ:\nsession %+v\nrun     %+v", gotRes.Phases, wantRes.Phases)
	}
}

// TestSessionPowerMethodMatchesRun: one resident session serving a power
// method op must reproduce the one-shot wrapper exactly, and a second
// invocation on the same warm session must reproduce it again.
func TestSessionPowerMethodMatchesRun(t *testing.T) {
	part := sphericalPart(t, 2)
	b := 6
	n := part.M * b
	rng := rand.New(rand.NewSource(41))
	a := tensor.Random(n, rng)
	opts := Options{Part: part, B: b, Wiring: WiringP2P}
	po := PowerOptions{MaxIter: 30, Seed: 7}
	want, err := RunPowerMethod(a, opts, po)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenSession(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for round := 0; round < 2; round++ {
		got, err := s.PowerMethod(po)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Lambda) != math.Float64bits(want.Lambda) {
			t.Fatalf("round %d: lambda %v vs %v", round, got.Lambda, want.Lambda)
		}
		if !bitsEqual(got.X, want.X) {
			t.Fatalf("round %d: eigenvector not bit-identical", round)
		}
		if got.Iterations != want.Iterations || got.Converged != want.Converged {
			t.Fatalf("round %d: iterations/converged %d/%v vs %d/%v",
				round, got.Iterations, got.Converged, want.Iterations, want.Converged)
		}
		if !reflect.DeepEqual(got.Phases, want.Phases) {
			t.Fatalf("round %d: phase meters differ", round)
		}
	}
}

// TestSessionPackUnpackZeroAlloc pins the zero-allocation property of the
// steady-state pack/unpack path: after one warm-up application, packing
// and unpacking every step of both phases allocates nothing.
func TestSessionPackUnpackZeroAlloc(t *testing.T) {
	part := sphericalPart(t, 3)
	b := 7
	n := part.M * b
	rng := rand.New(rand.NewSource(57))
	a := tensor.Random(n, rng)
	s, err := OpenSession(a, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Apply(randVec(n, rng)); err != nil { // warm-up
		t.Fatal(err)
	}
	rk := s.rk[0]
	allocs := testing.AllocsPerRun(100, func() {
		for si := range rk.lay.steps {
			st := &rk.lay.steps[si]
			if st.sendTo >= 0 {
				n := rk.pack(rk.sendBuf, rk.xA, st.gSend, 1)
				_ = rk.sendBuf[:n]
				rk.pack(rk.sendBuf, rk.yA, st.sSend, 1)
			}
			if st.recvFrom >= 0 {
				rk.unpackCopy(rk.recvBuf[:st.gRecvW], rk.xA, st.gRecv, 1)
				rk.unpackAdd(rk.recvBuf[:st.sRecvW], rk.yA, st.sRecv, 1)
			}
		}
		rk.stage(s.stageX, 1)
		rk.publish(s.stageY, 1)
		rk.zeroY()
	})
	if allocs != 0 {
		t.Fatalf("steady-state pack/unpack path allocates %.1f objects per application, want 0", allocs)
	}
}

// TestSessionApplySteadyStateAllocs bounds the whole warm Apply: total
// allocations must not scale with the schedule length — only the small
// constant host-side overhead (op dispatch, result assembly, meters)
// remains once the exchange path is warm.
func TestSessionApplySteadyStateAllocs(t *testing.T) {
	part := sphericalPart(t, 3)
	b := 6
	n := part.M * b
	rng := rand.New(rand.NewSource(58))
	a := tensor.Random(n, rng)
	s, err := OpenSession(a, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	x := randVec(n, rng)
	for i := 0; i < 3; i++ { // warm-up
		if _, err := s.Apply(x); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.Apply(x); err != nil {
			t.Fatal(err)
		}
	})
	// The schedule has q³/2+3q²/2−1 = 26 steps and P = 13 ranks; a per-
	// message or per-step allocation would push this into the thousands.
	// The observed warm overhead is host-side result assembly plus the
	// executor's per-op bookkeeping, all independent of schedule length.
	const budget = 700
	if allocs > budget {
		t.Fatalf("warm Session.Apply allocates %.0f objects, budget %d — steady-state path is allocating per step or per message", allocs, budget)
	}
}

// TestSessionClosedErrors: operations on a closed session fail cleanly.
func TestSessionClosedErrors(t *testing.T) {
	part := sphericalPart(t, 2)
	b := 6
	s, err := OpenSession(nil, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := s.Apply(make([]float64, part.M*b)); err == nil {
		t.Fatal("Apply on closed session succeeded")
	}
	if _, err := s.PowerMethod(PowerOptions{}); err == nil {
		t.Fatal("PowerMethod on closed session succeeded")
	}
}

// TestSessionNilTensor: a tensor-free session still runs the full
// communication pattern (all blocks zero) — the pure-measurement mode.
func TestSessionNilTensor(t *testing.T) {
	part := sphericalPart(t, 2)
	b := 5
	n := part.M * b
	s, err := OpenSession(nil, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Apply(make([]float64, n))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Y {
		if v != 0 {
			t.Fatal("zero tensor produced nonzero output")
		}
	}
	if res.Report.TotalSentWords() == 0 {
		t.Fatal("communication pattern did not run")
	}
}

// TestSessionWatchdogIdle: an armed stall watchdog must tolerate a
// session sitting idle (ranks parked on the host queue) longer than the
// timeout window, then keep serving operations.
func TestSessionWatchdogIdle(t *testing.T) {
	part := sphericalPart(t, 2)
	b := 5
	n := part.M * b
	s, err := OpenSession(nil, Options{
		Part: part, B: b, Wiring: WiringP2P,
		Machine: machine.RunConfig{Timeout: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	x := make([]float64, n)
	if _, err := s.Apply(x); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // idle well past the watchdog window
	if _, err := s.Apply(x); err != nil {
		t.Fatalf("apply after idle period: %v", err)
	}
}

// TestApplyBatchValidation: malformed batches — empty, ragged, oversized,
// or mis-sized against the tensor — must return a clean error before any
// host-op is dispatched (no deadlocked ranks, no staged state), and the
// session must remain immediately usable for well-formed operations.
func TestApplyBatchValidation(t *testing.T) {
	part := sphericalPart(t, 2)
	b := 4
	n := part.M * b
	rng := rand.New(rand.NewSource(77))
	a := tensor.Random(n, rng)
	s, err := OpenSession(a, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	x := randVec(n, rng)
	want, err := s.Apply(x)
	if err != nil {
		t.Fatal(err)
	}

	bad := []struct {
		name string
		X    [][]float64
	}{
		{"r=0 nil", nil},
		{"r=0 empty", [][]float64{}},
		{"empty column", [][]float64{{}}},
		{"nil column", [][]float64{x, nil}},
		{"ragged", [][]float64{x, x[:n-1]}},
		{"oversized", [][]float64{make([]float64, n+b)}},
		{"tensor mismatch", [][]float64{x[:n-b]}},
	}
	for _, tc := range bad {
		if _, err := s.ApplyBatch(tc.X); err == nil {
			t.Fatalf("%s: ApplyBatch accepted a malformed batch", tc.name)
		} else if errors.Is(err, ErrSessionBusy) {
			t.Fatalf("%s: validation error misreported as busy: %v", tc.name, err)
		}
		// The guard must reject before taking the in-flight slot: the very
		// next operation wins it and produces the usual bits.
		got, err := s.Apply(x)
		if err != nil {
			t.Fatalf("%s: session unusable after validation error: %v", tc.name, err)
		}
		if !bitsEqual(got.Y, want.Y) {
			t.Fatalf("%s: post-error Apply diverged", tc.name)
		}
	}
}

// TestBatchShares: the per-column demux of a batch's phase meters. Words
// and ternary multiplications scale exactly linearly with the column
// count, so a column's share equals a solo Apply; messages are paid once
// per step for the whole batch, so the share is the 1/cols split.
func TestBatchShares(t *testing.T) {
	part := sphericalPart(t, 2)
	b := 6
	n := part.M * b
	rng := rand.New(rand.NewSource(78))
	a := tensor.Random(n, rng)
	s, err := OpenSession(a, Options{Part: part, B: b, Wiring: WiringP2P, MaxCols: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	x := randVec(n, rng)
	solo, err := s.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	const cols = 4
	X := make([][]float64, cols)
	for l := range X {
		X[l] = x
	}
	br, err := s.ApplyBatch(X)
	if err != nil {
		t.Fatal(err)
	}
	shares := br.Shares()
	if len(shares) != len(solo.Phases) {
		t.Fatalf("got %d shares, want %d phases", len(shares), len(solo.Phases))
	}
	for i, sh := range shares {
		pm := &solo.Phases[i]
		if sh.Label != pm.Label {
			t.Fatalf("share %d label %q, want %q", i, sh.Label, pm.Label)
		}
		var soloW, soloM, soloT int64
		for r := range pm.SentWords {
			soloW += pm.SentWords[r]
			soloM += pm.SentMsgs[r]
			soloT += pm.Ternary[r]
		}
		if sh.SentWords != soloW {
			t.Fatalf("phase %q: share words %d, solo words %d", sh.Label, sh.SentWords, soloW)
		}
		if sh.Ternary != soloT {
			t.Fatalf("phase %q: share ternary %d, solo %d", sh.Label, sh.Ternary, soloT)
		}
		if want := float64(soloM); soloM > 0 && sh.SentMsgs*cols != want*1 {
			// cols columns share the solo run's message count exactly.
			t.Fatalf("phase %q: share msgs %.3f × %d ≠ solo msgs %d", sh.Label, sh.SentMsgs, cols, soloM)
		}
	}
}
