package parallel

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/sparse"
)

// SparseRankBlocks is the sparse analogue of RankBlocks: each rank's
// tetrahedral block set (TB₃(R_p) ∪ N_p ∪ D_p) extracted from a sparse
// tensor as packed fiber blocks (sparse.Pack) instead of dense b³ panels.
// A rank holds only the nonzeros its blocks contain — O(nnz/P + fibers)
// words where the dense extraction needs ≈ n³/6P — which is what lets a
// session serve hypergraph problems at n ≥ 10⁶, where a single dense
// block would already be too large to allocate.
//
// The per-rank block lists are kind-grouped in exactly the order
// tensor.PackBlocks groups dense blocks, and each sparse block kernel
// reproduces the scalar dense kernel's association order over the stored
// nonzeros — so a sparse session's results are bit-identical to a dense
// session running the scalar kernel on the materialized tensor (the
// conformance suite pins this).
//
// The blocks are read-only after packing and safe to share across
// sessions (a serving pool packs once).
type SparseRankBlocks struct {
	// P and B identify the configuration the cache was built for; a
	// session rejects a mismatched cache.
	P, B int
	// N is the tensor dimension.
	N   int
	per [][]*sparse.Block
}

// PackSparseRankBlocks packs the tensor once (one pass over the sorted
// entries) and selects every rank's kind-grouped block set from the
// shared packing.
func PackSparseRankBlocks(sp *sparse.Tensor, part *partition.Tetrahedral, b int) (*SparseRankBlocks, error) {
	if sp == nil {
		return nil, fmt.Errorf("parallel: nil sparse tensor")
	}
	if part == nil {
		return nil, fmt.Errorf("parallel: nil partition")
	}
	if b < 1 {
		return nil, fmt.Errorf("parallel: block edge %d", b)
	}
	if sp.N > part.M*b {
		return nil, fmt.Errorf("parallel: n=%d exceeds padded dimension %d (m=%d, b=%d)", sp.N, part.M*b, part.M, b)
	}
	pk, err := sparse.Pack(sp, b)
	if err != nil {
		return nil, err
	}
	srb := &SparseRankBlocks{P: part.P, B: b, N: sp.N, per: make([][]*sparse.Block, part.P)}
	for p := 0; p < part.P; p++ {
		cs := part.Blocks(p)
		coords := make([][3]int, len(cs))
		for i, c := range cs {
			coords[i] = [3]int{c.I, c.J, c.K}
		}
		srb.per[p] = pk.Select(coords)
	}
	return srb, nil
}

// Rank returns rank p's packed sparse block set.
func (srb *SparseRankBlocks) Rank(p int) []*sparse.Block { return srb.per[p] }

// Words returns the total packed storage across all ranks in 8-byte
// words (values, fiber indices, and fiber headers).
func (srb *SparseRankBlocks) Words() int {
	total := 0
	for _, blocks := range srb.per {
		for _, blk := range blocks {
			total += blk.Words()
		}
	}
	return total
}

// NNZ returns the total stored nonzeros across all ranks. Every stored
// entry lands on exactly one rank, so this equals the tensor's NNZ.
func (srb *SparseRankBlocks) NNZ() int64 {
	var total int64
	for _, blocks := range srb.per {
		for _, blk := range blocks {
			total += int64(blk.NNZ())
		}
	}
	return total
}

// Loads returns each rank's stored-nonzero count — the load vector the
// nnz-aware partition balances (obs.ComputeLoadStats summarizes it).
func (srb *SparseRankBlocks) Loads() []int64 {
	loads := make([]int64, srb.P)
	for p, blocks := range srb.per {
		for _, blk := range blocks {
			loads[p] += int64(blk.NNZ())
		}
	}
	return loads
}

// sparseBlocksFor validates a supplied cache against the run
// configuration.
func sparseBlocksFor(srb *SparseRankBlocks, part *partition.Tetrahedral, b int) (*SparseRankBlocks, error) {
	if srb.P != part.P || srb.B != b {
		return nil, fmt.Errorf("parallel: cached sparse blocks built for (P=%d, b=%d), run needs (P=%d, b=%d)",
			srb.P, srb.B, part.P, b)
	}
	if srb.N > part.M*b {
		return nil, fmt.Errorf("parallel: n=%d exceeds padded dimension %d (m=%d, b=%d)", srb.N, part.M*b, part.M, b)
	}
	return srb, nil
}
