// Low-rank CP sessions. A symmetric rank-r CP operator A = Σ_k λ_k v_k³
// applies in O(nr) work as y = V·diag(λ)·(Vᵀx)², and its parallel
// structure is nothing like the tetrahedral schedule: rank p owns a
// contiguous chunk of ⌈n/P⌉ rows of V and of the vectors, forms the
// r-word partial projection z_p = V_pᵀx_p locally, all-reduces the
// r-vector (O(r) words per rank — independent of n), and finishes with
// the local rank-r update on its rows. OpenCPSession wires that shape
// into the same resident Session machinery — host-dispatched ops, arena
// staging, phase meters, dirty-region checkpoints, crash recovery — by
// synthesizing a one-row-per-rank layout: rank p's single "row block" is
// its chunk, it owns the whole chunk (no chunk sharing), and the
// point-to-point schedule is empty, leaving the all-reduce as the only
// communication. The result bits equal sttsv.CPOperator.ApplyChunked(x, P)
// exactly: the collective sums the per-rank partials in rank order, which
// is the chunk order the oracle reproduces.
package parallel

import (
	"fmt"
	"time"

	"repro/internal/collective"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/sttsv"
)

// CPOptions configures a low-rank CP session.
type CPOptions struct {
	// P is the rank count. Default 1.
	P int
	// Machine configures the simulated run (see Options.Machine).
	Machine machine.RunConfig
	// MaxCols presizes arenas and the projection buffers for batched
	// applications (ApplyBatch). Defaults to 1; grows on demand.
	MaxCols int
	// Recovery, when non-nil, arms the crash-recovery supervisor exactly
	// as on a dense session; checkpoints cover the owned iterate chunks
	// and the convergence scalars.
	Recovery *RecoveryOptions
}

// cpRuntime is the CP session's operator state: the shared read-only
// operator, each rank's global row span, and a per-rank length-r scratch
// for the weighted squares of the update.
type cpRuntime struct {
	op *sttsv.CPOperator
	lo []int // global row span per rank
	hi []int
	wk [][]float64
}

// OpenCPSession launches a resident P-rank session applying a low-rank
// CP operator. Apply, ApplyBatch and PowerMethod work as on a dense
// session and their outputs are bit-identical to the sequential
// ApplyChunked(x, P) oracle; per-rank state is O(n/P · r), so n ≥ 10⁶
// problems run where a dense tensor could never be materialized.
func OpenCPSession(op *sttsv.CPOperator, copts CPOptions) (*Session, error) {
	if op == nil {
		return nil, fmt.Errorf("parallel: nil CP operator")
	}
	p := copts.P
	if p < 1 {
		p = 1
	}
	b := (op.N + p - 1) / p // chunk width = block edge of the synthetic layout

	// Synthetic one-row-per-rank partition: only P and M are consulted by
	// the session machinery (dispatch width, error messages); the layout
	// below is built by hand, not derived from it.
	part := &partition.Tetrahedral{P: p, M: p}
	part.Rp = make([][]int, p)
	part.Qi = make([][]int, p)
	for r := 0; r < p; r++ {
		part.Rp[r] = []int{r}
		part.Qi[r] = []int{r}
	}

	lay := &sessionLayout{perRank: make([]rankLayout, p), maxChunk: b}
	rt := &cpRuntime{op: op, lo: make([]int, p), hi: make([]int, p), wk: make([][]float64, p)}
	for r := 0; r < p; r++ {
		lo := r * b
		hi := lo + b
		if lo > op.N {
			lo = op.N
		}
		if hi > op.N {
			hi = op.N
		}
		rt.lo[r], rt.hi[r] = lo, hi
		rt.wk[r] = make([]float64, op.R)

		rk := &lay.perRank[r]
		rk.rows = []int{r}
		rk.rowIdx = make([]int, p)
		for i := range rk.rowIdx {
			rk.rowIdx[i] = -1
		}
		rk.rowIdx[r] = 0
		rk.myLo = []int{0}
		rk.myHi = []int{hi - lo}
		rk.steps = []sessStep{} // no scheduled exchange
		rk.maxMsgW = op.R       // sendBuf doubles as the z-partial buffer
	}

	opts := Options{
		Part:     part,
		B:        b,
		Wiring:   WiringP2P,
		Machine:  copts.Machine,
		MaxCols:  copts.MaxCols,
		Recovery: copts.Recovery,
	}
	s := &Session{
		opts:   opts,
		part:   part,
		b:      b,
		padded: p * b,
		n:      op.N,
		cp:     rt,
		lay:    lay,
	}
	maxCols := opts.MaxCols
	if maxCols < 1 {
		maxCols = 1
	}
	s.grow(maxCols)

	if opts.Recovery != nil {
		rec := opts.Recovery.withDefaults()
		s.rec = &rec
		s.crashCh = make(chan rankDown, p)
		if s.opts.Machine.Timeout == 0 {
			// Same watchdog backstop a recovering dense session arms.
			s.opts.Machine.Timeout = 5 * time.Second
		}
		s.ck = newCkStore(s.rk)
		s.staticPeers = s.buildStaticPeers()
	}
	if err := s.launchMachine(); err != nil {
		return nil, err
	}
	return s, nil
}

// cpProject forms this rank's partial projections for cols staged
// columns into the (zeroed) z buffer: z[l·r+k] = Σ_i V[i,k]·x_l[i] over
// the rank's rows. Counted as (hi−lo)·r ternary-equivalent
// multiplications per column — the projection half of the 2nr apply.
func (s *Session) cpProject(me int, rk *sessionRank, z []float64, cols int) int64 {
	op := s.cp.op
	lo, hi := s.cp.lo[me], s.cp.hi[me]
	r := op.R
	for l := 0; l < cols; l++ {
		op.Project(lo, hi, rk.xRowCol(me, l)[:hi-lo], z[l*r:(l+1)*r])
	}
	return int64(hi-lo) * int64(r) * int64(cols)
}

// cpUpdate finishes the apply on this rank's rows from the all-reduced
// projections: y_l += V·(λ∘z_l²). The update half of the 2nr accounting.
func (s *Session) cpUpdate(me int, rk *sessionRank, sums []float64, cols int) int64 {
	op := s.cp.op
	lo, hi := s.cp.lo[me], s.cp.hi[me]
	r := op.R
	for l := 0; l < cols; l++ {
		op.Update(lo, hi, sums[l*r:(l+1)*r], s.cp.wk[me], rk.yRowCol(me, l)[:hi-lo])
	}
	return int64(hi-lo) * int64(r) * int64(cols)
}

// cpApplyOp is the rank closure of one (possibly batched) CP application:
// stage → local projection → r·cols-word all-reduce → local update →
// publish. The per-rank communication is O(r·cols) words, independent of
// n — the low-rank analogue of the paper's Θ(n/P^{1/3}) bound.
func (s *Session) cpApplyOp(cols int, pr *phaseRecorder, deltas []machine.Meters) func(me int, c *machine.Comm) {
	return func(me int, c *machine.Comm) {
		rk := s.rk[me]
		m0 := c.Meters()
		if rk.world == nil || rk.world.Comm() != c {
			rk.world = collective.World(c)
		}
		rk.stage(s.stageX, cols)
		rk.zeroY()
		z := rk.sendBuf[:s.cp.op.R*cols]
		clear(z)
		pr.local(c, "local", func() int64 { return s.cpProject(me, rk, z, cols) })
		var sums []float64
		pr.comm(c, "all-reduce", func() { sums = rk.world.AllReduceSum(310, z) })
		pr.local(c, "local", func() int64 { return s.cpUpdate(me, rk, sums, cols) })
		rk.publish(s.stageY, cols)
		deltas[me] = c.Meters().Sub(m0)
	}
}

// cpPowerIterOp is the CP power-method iteration: the iterate stays
// distributed in the chunk layout, each iteration is projection →
// all-reduce → update, and the convergence tail (λ and ‖y‖² all-reduce,
// test, normalize) is powerAdvance — the identical code the dense and
// sparse paths run, so convergence semantics cannot drift between
// operator flavors.
func (s *Session) cpPowerIterOp(tol float64, pr *phaseRecorder, st *powerIterState) func(me int, c *machine.Comm) {
	return func(me int, c *machine.Comm) {
		rk := s.rk[me]
		if rk.world == nil || rk.world.Comm() != c {
			rk.world = collective.World(c)
		}
		w := rk.lay.myHi[0]
		copy(rk.xA[:w], rk.chunk[:w])
		rk.zeroY()
		z := rk.sendBuf[:s.cp.op.R]
		clear(z)
		pr.local(c, "local", func() int64 { return s.cpProject(me, rk, z, 1) })
		var sums []float64
		pr.comm(c, "all-reduce", func() { sums = rk.world.AllReduceSum(310, z) })
		pr.local(c, "local", func() int64 { return s.cpUpdate(me, rk, sums, 1) })
		st.stop[me], st.converged[me], st.singular[me] = rk.powerAdvance(c, tol, pr)
	}
}
