package parallel

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/netwire"
	"repro/internal/sparse"
	"repro/internal/tensor"
)

// randSparseTensor draws a random symmetric sparse tensor: every packed
// coordinate (i ≥ j ≥ k) is kept with probability density.
func randSparseTensor(t testing.TB, n int, density float64, rng *rand.Rand) *sparse.Tensor {
	t.Helper()
	var entries []sparse.Entry
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			for k := 0; k <= j; k++ {
				if rng.Float64() < density {
					entries = append(entries, sparse.Entry{I: i, J: j, K: k, V: rng.NormFloat64()})
				}
			}
		}
	}
	sp, err := sparse.New(n, entries)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// sparseSessionPair opens the sparse session under test and its oracle:
// a dense session on the materialized tensor running the scalar kernel,
// whose association order the sparse kernels reproduce exactly.
func sparseSessionPair(t testing.TB, q, b int, density float64, seed int64) (sp *sparse.Tensor, sparseSess, denseSess *Session) {
	t.Helper()
	part := sphericalPart(t, q)
	n := part.M * b
	rng := rand.New(rand.NewSource(seed))
	sp = randSparseTensor(t, n, density, rng)
	srb, err := PackSparseRankBlocks(sp, part, b)
	if err != nil {
		t.Fatal(err)
	}
	sparseSess, err = OpenSession(nil, Options{Part: part, B: b, Wiring: WiringP2P, Sparse: srb})
	if err != nil {
		t.Fatal(err)
	}
	denseSess, err = OpenSession(sp.Dense(), Options{Part: part, B: b, Wiring: WiringP2P, ScalarKernel: true})
	if err != nil {
		sparseSess.Close()
		t.Fatal(err)
	}
	return sp, sparseSess, denseSess
}

// TestSparseSessionConformance is the parallel sparse conformance grid:
// at q ∈ {2, 3}, a sparse session's Apply, ApplyBatch and PowerMethod
// must be bit-identical to a dense scalar-kernel session on the
// materialized tensor — same schedule, same communication, same local
// association order, so every intermediate (and hence every output bit
// and every logical meter) coincides.
func TestSparseSessionConformance(t *testing.T) {
	for _, tc := range []struct {
		q, b    int
		density float64
	}{
		{q: 2, b: 6, density: 0.15},
		{q: 3, b: 4, density: 0.10},
	} {
		sp, ss, ds := sparseSessionPair(t, tc.q, tc.b, tc.density, int64(900+tc.q))
		rng := rand.New(rand.NewSource(int64(910 + tc.q)))
		n := sp.N

		// Apply: bitwise, and the sparse ternary meters must count the
		// multiplicity-weighted nonzero work, not the dense block volume.
		x := randVec(n, rng)
		got, err := ss.Apply(x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ds.Apply(x)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(got.Y, want.Y) {
			t.Fatalf("q=%d: sparse Apply differs from dense scalar session", tc.q)
		}
		var sparseTern, denseTern int64
		for r := range got.Ternary {
			sparseTern += got.Ternary[r]
			denseTern += want.Ternary[r]
		}
		if sparseTern <= 0 || sparseTern >= denseTern {
			t.Fatalf("q=%d: sparse ternary %d not in (0, dense %d)", tc.q, sparseTern, denseTern)
		}

		// ApplyBatch: each column bit-identical to the dense batch.
		X := [][]float64{randVec(n, rng), randVec(n, rng), randVec(n, rng)}
		gb, err := ss.ApplyBatch(X)
		if err != nil {
			t.Fatal(err)
		}
		wb, err := ds.ApplyBatch(X)
		if err != nil {
			t.Fatal(err)
		}
		for l := range X {
			if !bitsEqual(gb.Y[l], wb.Y[l]) {
				t.Fatalf("q=%d: sparse ApplyBatch column %d differs", tc.q, l)
			}
		}

		// PowerMethod: identical iterate trajectory, λ and flags.
		ge, err := ss.PowerMethod(PowerOptions{MaxIter: 8, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		we, err := ds.PowerMethod(PowerOptions{MaxIter: 8, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(ge.Lambda) != math.Float64bits(we.Lambda) {
			t.Fatalf("q=%d: sparse power λ=%g, dense scalar λ=%g", tc.q, ge.Lambda, we.Lambda)
		}
		if !bitsEqual(ge.X, we.X) {
			t.Fatalf("q=%d: sparse power iterate differs", tc.q)
		}
		if ge.Iterations != we.Iterations || ge.Converged != we.Converged {
			t.Fatalf("q=%d: sparse power flags differ", tc.q)
		}

		ss.Close()
		ds.Close()
	}
}

// TestSparseSessionCrashRecovery: a rank crash mid-operation on a sparse
// session must recover to bit-identical results — the checkpoint store
// and replay machinery are operator-agnostic.
func TestSparseSessionCrashRecovery(t *testing.T) {
	part := sphericalPart(t, 2)
	const b = 6
	n := part.M * b
	rng := rand.New(rand.NewSource(77))
	sp := randSparseTensor(t, n, 0.15, rng)
	srb, err := PackSparseRankBlocks(sp, part, b)
	if err != nil {
		t.Fatal(err)
	}

	clean, err := OpenSession(nil, Options{Part: part, B: b, Wiring: WiringP2P, Sparse: srb})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()

	faulty, err := OpenSession(nil, Options{
		Part: part, B: b, Wiring: WiringP2P, Sparse: srb,
		Machine: machine.RunConfig{
			Transport: fault.TransportRecoverable(fault.Plan{Seed: 7, Crash: map[int]int{1: 4}},
				fault.ReliableOptions{MaxAttempts: 1 << 20}),
			Timeout: 2 * time.Second,
		},
		Recovery: &RecoveryOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()

	x := randVec(n, rng)
	want, err := clean.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := faulty.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got.Y, want.Y) {
		t.Fatal("recovered sparse Apply differs from crash-free run")
	}

	we, err := clean.PowerMethod(PowerOptions{MaxIter: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ge, err := faulty.PowerMethod(PowerOptions{MaxIter: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(ge.Lambda) != math.Float64bits(we.Lambda) || !bitsEqual(ge.X, we.X) {
		t.Fatal("recovered sparse PowerMethod differs from crash-free run")
	}
	if st := faulty.RecoveryStats(); st.Restarts == 0 {
		t.Error("crash plan injected no rank restarts; recovery untested")
	}
}

// TestSparseSessionTCPLoopback runs the sparse session over real TCP
// sockets (the loopback backend): the transport must not perturb a
// single output bit relative to the in-memory machine.
func TestSparseSessionTCPLoopback(t *testing.T) {
	part := sphericalPart(t, 2)
	const b = 6
	n := part.M * b
	rng := rand.New(rand.NewSource(88))
	sp := randSparseTensor(t, n, 0.15, rng)
	srb, err := PackSparseRankBlocks(sp, part, b)
	if err != nil {
		t.Fatal(err)
	}

	mem, err := OpenSession(nil, Options{Part: part, B: b, Wiring: WiringP2P, Sparse: srb})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()

	tcp, err := OpenSession(nil, Options{
		Part: part, B: b, Wiring: WiringP2P, Sparse: srb,
		Machine: machine.RunConfig{
			BackendFactory: func() (machine.Backend, error) { return netwire.NewLoopback("tcp") },
			Timeout:        10 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()

	x := randVec(n, rng)
	want, err := mem.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tcp.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got.Y, want.Y) {
		t.Fatal("sparse Apply over TCP loopback differs from in-memory run")
	}
	var wire int64
	for _, w := range got.Report.WireSentWords {
		wire += w
	}
	if wire == 0 {
		t.Error("TCP loopback reported no wire traffic; backend not engaged")
	}
}

// TestSparseSessionRejectsMisuse pins the open-time validation: a dense
// tensor alongside Sparse, a mismatched cache, and an oversized n must
// all fail fast.
func TestSparseSessionRejectsMisuse(t *testing.T) {
	part := sphericalPart(t, 2)
	const b = 4
	rng := rand.New(rand.NewSource(99))
	sp := randSparseTensor(t, part.M*b, 0.2, rng)
	srb, err := PackSparseRankBlocks(sp, part, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSession(tensor.Random(part.M*b, rng), Options{Part: part, B: b, Sparse: srb}); err == nil {
		t.Error("sparse session with a dense tensor accepted")
	}
	if _, err := OpenSession(nil, Options{Part: part, B: b + 1, Sparse: srb}); err == nil {
		t.Error("mismatched sparse cache accepted")
	}
	if _, err := PackSparseRankBlocks(sp, part, 1); err == nil {
		t.Error("n exceeding the padded dimension accepted")
	}
}
