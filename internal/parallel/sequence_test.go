package parallel

import (
	"math/rand"
	"testing"

	"repro/internal/sttsv"
	"repro/internal/tensor"
)

func TestSequenceBaselineCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, c := range []struct{ n, p int }{{20, 4}, {15, 15}, {9, 1}} {
		a := tensor.Random(c.n, rng)
		x := randVec(c.n, rng)
		want := sttsv.Packed(a, x, nil)
		res, err := RunSequenceBaseline(a, x, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(res.Y, want); d > 1e-9 {
			t.Fatalf("n=%d P=%d: sequence baseline differs by %g", c.n, c.p, d)
		}
	}
}

func TestSequenceBaselineCommIsAllGatherOnly(t *testing.T) {
	// The approach communicates only x: each processor sends its chunk to
	// P−1 peers, (P−1)·n/P ≈ n words — no y exchange.
	rng := rand.New(rand.NewSource(71))
	n, p := 40, 8
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	res, err := RunSequenceBaseline(a, x, p)
	if err != nil {
		t.Fatal(err)
	}
	want := int64((p - 1) * (n / p))
	for r := 0; r < p; r++ {
		if res.Report.SentWords[r] != want {
			t.Fatalf("rank %d sent %d words, want %d", r, res.Report.SentWords[r], want)
		}
	}
	// Ω(n) regardless of P: compare against Algorithm 5's Θ(n/P^{1/3}).
	if res.Report.MaxSentWords() < int64(n)/2 {
		t.Fatalf("sequence baseline moved only %d words for n=%d", res.Report.MaxSentWords(), n)
	}
}

func TestSequenceBaselineValidation(t *testing.T) {
	a := tensor.NewSymmetric(4)
	x := make([]float64, 4)
	if _, err := RunSequenceBaseline(nil, x, 2); err == nil {
		t.Error("nil tensor accepted")
	}
	if _, err := RunSequenceBaseline(a, x[:3], 2); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := RunSequenceBaseline(a, x, 5); err == nil {
		t.Error("P > n accepted")
	}
}
