package parallel

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

// checkTraceMatchesPhases verifies the trace-conformance invariant at
// phase granularity: the summed trace events of each phase equal the
// Result's snapshot-based PhaseMeters exactly, per rank — two independent
// measurement paths (event stream vs counter deltas) agreeing on every
// number.
func checkTraceMatchesPhases(t *testing.T, tr *obs.Trace, phases []PhaseMeter, p int) {
	t.Helper()
	totals, _ := tr.PhaseTotals()
	for _, m := range phases {
		pt := totals[m.Label]
		if pt == nil {
			if m.TotalSentWords() == 0 && m.TotalTernary() == 0 {
				continue // a phase with no traffic need not appear in the trace
			}
			t.Fatalf("phase %q missing from trace", m.Label)
		}
		for r := 0; r < p; r++ {
			if pt.SentWords[r] != m.SentWords[r] || pt.SentMsgs[r] != m.SentMsgs[r] {
				t.Errorf("phase %q rank %d: trace sent %dw/%dm, meter %dw/%dm",
					m.Label, r, pt.SentWords[r], pt.SentMsgs[r], m.SentWords[r], m.SentMsgs[r])
			}
			if pt.RecvWords[r] != m.RecvWords[r] || pt.RecvMsgs[r] != m.RecvMsgs[r] {
				t.Errorf("phase %q rank %d: trace recv %dw/%dm, meter %dw/%dm",
					m.Label, r, pt.RecvWords[r], pt.RecvMsgs[r], m.RecvWords[r], m.RecvMsgs[r])
			}
			if pt.Ternary[r] != m.Ternary[r] {
				t.Errorf("phase %q rank %d: trace ternary %d, meter %d",
					m.Label, r, pt.Ternary[r], m.Ternary[r])
			}
		}
		// The trace counts barrier generations; only the stepwise P2P
		// schedule barriers per step, so compare only when the phase
		// synchronized at all (All-to-All collectives run barrier-free).
		if pt.Steps > 0 && m.Steps > 0 && pt.Steps != m.Steps {
			t.Errorf("phase %q: trace counts %d steps, meter %d", m.Label, pt.Steps, m.Steps)
		}
	}
}

// TestTraceConformanceP2P is the headline acceptance check: for fault-free
// point-to-point runs the trace events sum to the Report meters exactly
// (per rank and per phase), the replayed step count equals the
// q³/2+3q²/2−1 schedule length, and the replayed phase time equals the
// closed-form α-β makespan.
func TestTraceConformanceP2P(t *testing.T) {
	for _, q := range []int{2, 3} {
		part := sphericalPart(t, q)
		sched, err := schedule.Build(part)
		if err != nil {
			t.Fatal(err)
		}
		b := q * (q + 1) * 2
		n := part.M * b
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		var rec obs.Recorder
		res, err := Run(nil, x, Options{
			Part: part, Sched: sched, B: b, Wiring: WiringP2P,
			Machine: machine.RunConfig{Timeout: 10 * time.Second, Observer: rec.Observer()},
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := rec.Trace()

		if err := tr.CheckAgainstReport(res.Report); err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		checkTraceMatchesPhases(t, tr, res.Phases, part.P)

		// γ=0 keeps every rank's phase entry synchronized, so each phase
		// replays to exactly the closed-form stepwise makespan (with γ>0
		// the compute imbalance would bleed wait time into the second
		// exchange's first barrier).
		model := obs.TimeModel{Alpha: 1e-5, Beta: 1e-8, Gamma: 0}
		tl, err := obs.Replay(tr, model)
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		wantSteps := schedule.TheoreticalSteps(q)
		if q == 3 && wantSteps != 26 {
			t.Fatalf("q=3 schedule length %d, want 26 = q³/2+3q²/2−1", wantSteps)
		}
		for _, label := range []string{"gather", "reduce-scatter"} {
			if tl.PhaseSteps[label] != wantSteps {
				t.Errorf("q=%d phase %q: replay counts %d steps, want %d",
					q, label, tl.PhaseSteps[label], wantSteps)
			}
		}
		if res.Steps != wantSteps {
			t.Errorf("q=%d: Result.Steps = %d, want %d", q, res.Steps, wantSteps)
		}

		// The replay semantics reproduce the closed-form stepwise cost: a
		// phase of the schedule replays to exactly Σ(α + maxWords·β).
		want := sched.Makespan(part, b, model.Alpha, model.Beta)
		for _, label := range []string{"gather", "reduce-scatter"} {
			got := tl.PhaseTime(label)
			if math.Abs(got-want) > 1e-9*want {
				t.Errorf("q=%d phase %q: replay time %g, closed-form makespan %g", q, label, got, want)
			}
		}
	}
}

// TestTraceConformanceAllToAll repeats the invariant under the All-to-All
// wiring: P−1 steps per phase and phase meters that match the trace.
func TestTraceConformanceAllToAll(t *testing.T) {
	q := 2
	part := sphericalPart(t, q)
	b := q * (q + 1)
	n := part.M * b
	x := make([]float64, n)
	var rec obs.Recorder
	res, err := Run(nil, x, Options{
		Part: part, B: b, Wiring: WiringAllToAll,
		Machine: machine.RunConfig{Timeout: 10 * time.Second, Observer: rec.Observer()},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()
	if err := tr.CheckAgainstReport(res.Report); err != nil {
		t.Fatal(err)
	}
	checkTraceMatchesPhases(t, tr, res.Phases, part.P)

	// The All-to-All wiring synchronizes nowhere inside a phase, so the
	// replay observes zero barrier steps; the nominal P−1 lives on the
	// meter instead.
	tl, err := obs.Replay(tr, obs.DefaultTimeModel())
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"gather", "reduce-scatter"} {
		if tl.PhaseSteps[label] != 0 {
			t.Errorf("phase %q: replay observed %d barrier steps in a barrier-free wiring", label, tl.PhaseSteps[label])
		}
		if m := res.Phase(label); m == nil || m.Steps != part.P-1 {
			t.Errorf("phase %q: meter steps = %+v, want P-1 = %d", label, m, part.P-1)
		}
	}
}

// TestTraceConformanceUnderFaults runs Algorithm 5 over a lossy wire with
// the reliable transport and wire events enabled: the logical trace and
// phase meters must be bit-identical to a fault-free run's accounting
// (the logical-vs-wire invariant), while the wire trace shows the
// recovery traffic.
func TestTraceConformanceUnderFaults(t *testing.T) {
	q := 2
	part := sphericalPart(t, q)
	b := q * (q + 1)
	n := part.M * b
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	plan := fault.Plan{Seed: 42, Drop: 0.08, Dup: 0.05, Reorder: 0.05, MaxFaults: 200}
	var rec obs.Recorder
	res, err := Run(nil, x, Options{
		Part: part, B: b, Wiring: WiringP2P,
		Machine: machine.RunConfig{
			Timeout:    20 * time.Second,
			Observer:   rec.Observer(),
			WireEvents: true,
			Transport:  fault.Transport(plan),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Trace()

	// Logical accounting is untouched by the faults.
	if err := tr.CheckAgainstReport(res.Report); err != nil {
		t.Fatal(err)
	}
	checkTraceMatchesPhases(t, tr, res.Phases, part.P)

	// The wire actually diverged: acks at minimum, plus retransmissions
	// and duplicates, mean strictly more wire packets than logical
	// messages.
	var logicalMsgs, wireMsgs int64
	rank := tr.RankTotals()
	for r := 0; r < part.P; r++ {
		logicalMsgs += rank.SentMsgs[r]
	}
	wireTotals, _ := tr.WireTotals()
	for _, wt := range wireTotals {
		for r := 0; r < part.P; r++ {
			wireMsgs += wt.SentMsgs[r]
		}
	}
	if wireMsgs <= logicalMsgs {
		t.Errorf("wire trace records %d packets vs %d logical messages; expected recovery overhead",
			wireMsgs, logicalMsgs)
	}

	// The replayed logical timeline still counts the schedule's steps.
	tl, err := obs.Replay(tr, obs.DefaultTimeModel())
	if err != nil {
		t.Fatal(err)
	}
	if want := schedule.TheoreticalSteps(q); tl.PhaseSteps["gather"] != want {
		t.Errorf("gather steps %d under faults, want %d", tl.PhaseSteps["gather"], want)
	}
}

// TestTraceConformancePowerMethod extends the invariant to the resident
// power method: the summed trace of a full multi-iteration run matches
// both the run report and the accumulated per-phase meters — in
// particular the exchange meters' step counts, which must scale with the
// iterations executed (the seed reported a single application's worth).
func TestTraceConformancePowerMethod(t *testing.T) {
	q := 2
	part := sphericalPart(t, q)
	b := q * (q + 1)
	n := part.M * b
	rng := rand.New(rand.NewSource(17))
	a := tensor.Random(n, rng)
	const iters = 4
	var rec obs.Recorder
	res, err := RunPowerMethod(a,
		Options{
			Part: part, B: b, Wiring: WiringP2P,
			Machine: machine.RunConfig{Timeout: 10 * time.Second, Observer: rec.Observer()},
		},
		PowerOptions{MaxIter: iters, Tol: 1e-300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != iters {
		t.Fatalf("Iterations = %d, want the full cap %d", res.Iterations, iters)
	}
	tr := rec.Trace()
	if err := tr.CheckAgainstReport(res.Report); err != nil {
		t.Fatal(err)
	}
	checkTraceMatchesPhases(t, tr, res.Phases, part.P)

	wantSteps := schedule.TheoreticalSteps(q) * iters
	for _, label := range []string{"gather", "reduce-scatter"} {
		if m := res.Phase(label); m == nil || m.Steps != wantSteps {
			t.Errorf("phase %q: meter steps = %+v, want schedule length × iterations = %d",
				label, m, wantSteps)
		}
	}
}
