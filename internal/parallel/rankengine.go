package parallel

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// RankEngine is one rank's share of the distributed power method, packaged
// for a process that hosts exactly that rank over a real-network backend.
// It owns the rank's packed block set, arenas and message buffers, and
// drives iterations through the same sessionRank.powerIterate body the
// in-process Session dispatches — so a multi-process TCP run computes
// bit-for-bit the arithmetic of the simulated reference.
//
// Unlike a Session, a RankEngine has no host: the embedding runtime (see
// internal/cluster) supplies the machine.Comm of a distributed machine
// whose only local rank is this one, calls Iterate once per round, and
// persists State between rounds so a killed process can resume from its
// last durable checkpoint.
type RankEngine struct {
	part   *partition.Tetrahedral
	rank   int
	b      int
	padded int
	n      int

	exec   *sttsv.Executor
	blocks []*tensor.Block
	rk     *sessionRank
	pr     *phaseRecorder
}

// NewRankEngine validates the configuration and packs only this rank's
// tetrahedral block set (≈ 1/P of the tensor — the point of a distributed
// run is that no process materializes everything).
func NewRankEngine(a *tensor.Symmetric, opts Options, rank int) (*RankEngine, error) {
	part := opts.Part
	if part == nil {
		return nil, fmt.Errorf("parallel: nil partition")
	}
	if rank < 0 || rank >= part.P {
		return nil, fmt.Errorf("parallel: rank %d of %d", rank, part.P)
	}
	b := opts.B
	if b < 1 {
		return nil, fmt.Errorf("parallel: block edge %d", b)
	}
	if a == nil {
		return nil, fmt.Errorf("parallel: power method requires a tensor")
	}
	if opts.Wiring != WiringP2P {
		return nil, fmt.Errorf("parallel: power method supports the p2p wiring only")
	}
	padded := part.M * b
	if a.N > padded {
		return nil, fmt.Errorf("parallel: n=%d exceeds padded dimension %d", a.N, padded)
	}
	sched := opts.Sched
	if sched == nil {
		s, err := schedule.Build(part)
		if err != nil {
			return nil, err
		}
		sched = s
	}
	lay, err := buildLayout(part, sched, WiringP2P, b)
	if err != nil {
		return nil, err
	}

	cs := part.Blocks(rank)
	coords := make([][3]int, len(cs))
	for i, c := range cs {
		coords[i] = [3]int{c.I, c.J, c.K}
	}
	packed := tensor.PackBlocks(a, coords, b)

	rk := &sessionRank{lay: &lay.perRank[rank], b: b, maxCols: 1, scratch: sttsv.NewScratch()}
	rows := len(rk.lay.rows)
	rk.xA = make([]float64, rows*b)
	rk.yA = make([]float64, rows*b)
	rk.chunk = make([]float64, rows*b)
	if rk.lay.maxMsgW > 0 {
		rk.sendBuf = make([]float64, rk.lay.maxMsgW)
		rk.recvBuf = make([]float64, rk.lay.maxMsgW)
	}

	return &RankEngine{
		part:   part,
		rank:   rank,
		b:      b,
		padded: padded,
		n:      a.N,
		exec:   opts.executor(),
		blocks: packed.Blocks,
		rk:     rk,
		pr:     newPhaseRecorder(part.P, "gather", "local", "reduce-scatter", "all-reduce"),
	}, nil
}

// SeedPower initializes the rank's iterate chunks from the deterministic
// unit start vector of PowerMethod — the full x0 is generated and
// normalized exactly as the host does, then restricted to the owned spans,
// so the distributed seed is bit-identical to the simulated one.
func (e *RankEngine) SeedPower(seed int64) {
	x0 := make([]float64, e.padded)
	norm := 0.0
	for i := 0; i < e.n; i++ {
		x0[i] = math.Sin(float64(i+1)*1.7 + float64(seed))
		norm += x0[i] * x0[i]
	}
	norm = math.Sqrt(norm)
	for i := 0; i < e.n; i++ {
		x0[i] /= norm
	}
	rk := e.rk
	for k, row := range rk.lay.rows {
		lo, hi := rk.lay.myLo[k], rk.lay.myHi[k]
		copy(rk.chunk[k*e.b+lo:k*e.b+hi], x0[row*e.b+lo:row*e.b+hi])
	}
	rk.pmLambda, rk.pmPrev = 0, math.Inf(1)
}

// Iterate runs one power-method round on the supplied communicator (whose
// machine must span the partition's P ranks with this engine's rank
// local). It returns the convergence flags every rank derives identically
// from the all-reduced scalars.
func (e *RankEngine) Iterate(c *machine.Comm, tol float64) (stop, converged, singular bool) {
	if tol <= 0 {
		tol = 1e-12
	}
	return e.rk.powerIterate(c, func() int64 {
		var stats sttsv.Stats
		e.exec.ContributeCols(e.rk.scratch, e.blocks, e.b, 1, e.rk.xRowCol, e.rk.yRowCol, &stats)
		return stats.TernaryMults
	}, tol, e.pr)
}

// Lambda returns the current eigenvalue estimate.
func (e *RankEngine) Lambda() float64 { return e.rk.pmLambda }

// PowerRankState is the complete restartable state of one rank's power
// method between iterations: the owned iterate chunks (arena layout) and
// the two convergence scalars. It is what a distributed rank persists per
// checkpoint and restores after a kill.
type PowerRankState struct {
	Lambda float64
	Prev   float64
	Chunk  []float64
}

// State captures the rank's restartable state (the chunk is copied).
func (e *RankEngine) State() PowerRankState {
	return PowerRankState{
		Lambda: e.rk.pmLambda,
		Prev:   e.rk.pmPrev,
		Chunk:  append([]float64(nil), e.rk.chunk...),
	}
}

// Restore overwrites the rank's state with a checkpoint captured by State
// on an engine of the same configuration.
func (e *RankEngine) Restore(st PowerRankState) error {
	if len(st.Chunk) != len(e.rk.chunk) {
		return fmt.Errorf("parallel: checkpoint chunk %d words, engine needs %d", len(st.Chunk), len(e.rk.chunk))
	}
	copy(e.rk.chunk, st.Chunk)
	e.rk.pmLambda, e.rk.pmPrev = st.Lambda, st.Prev
	return nil
}

// OwnedWords returns the rank's owned spans of the iterate, concatenated
// in (local row, chunk) order — the payload a rank ships to the
// coordinator for final assembly. The returned slice is freshly allocated.
func (e *RankEngine) OwnedWords() []float64 {
	rk := e.rk
	var out []float64
	for k := range rk.lay.rows {
		lo, hi := rk.lay.myLo[k], rk.lay.myHi[k]
		out = append(out, rk.chunk[k*e.b+lo:k*e.b+hi]...)
	}
	return out
}

// Phases returns the per-phase meters accumulated so far (this rank's
// slots only; the other ranks' slots stay zero).
func (e *RankEngine) Phases() []PhaseMeter { return e.pr.results() }

// AssemblePower reassembles the global iterate from every rank's
// OwnedWords payload, inverting the span order exactly. owned[p] must come
// from rank p of the same partition and block edge; the result has length
// n.
func AssemblePower(part *partition.Tetrahedral, b, n int, owned [][]float64) ([]float64, error) {
	if part == nil {
		return nil, fmt.Errorf("parallel: nil partition")
	}
	if len(owned) != part.P {
		return nil, fmt.Errorf("parallel: %d owned payloads for %d ranks", len(owned), part.P)
	}
	padded := part.M * b
	if n > padded {
		return nil, fmt.Errorf("parallel: n=%d exceeds padded dimension %d", n, padded)
	}
	x := make([]float64, padded)
	for p := 0; p < part.P; p++ {
		off := 0
		for _, row := range part.Rp[p] {
			lo, hi, ok := part.OwnedRange(p, row, b)
			if !ok {
				return nil, fmt.Errorf("parallel: rank %d has no chunk of its row %d", p, row)
			}
			w := hi - lo
			if off+w > len(owned[p]) {
				return nil, fmt.Errorf("parallel: rank %d payload %d words, needs at least %d", p, len(owned[p]), off+w)
			}
			copy(x[row*b+lo:row*b+hi], owned[p][off:off+w])
			off += w
		}
		if off != len(owned[p]) {
			return nil, fmt.Errorf("parallel: rank %d payload %d words, expected %d", p, len(owned[p]), off)
		}
	}
	return x[:n], nil
}
