package parallel

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sttsv"
)

// randCPOperator draws a random rank-r symmetric CP operator.
func randCPOperator(t testing.TB, n, r int, rng *rand.Rand) *sttsv.CPOperator {
	t.Helper()
	weights := make([]float64, r)
	vectors := make([][]float64, r)
	for k := 0; k < r; k++ {
		weights[k] = rng.NormFloat64()
		vectors[k] = randVec(n, rng)
	}
	op, err := sttsv.NewCPOperator(weights, vectors)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// TestCPSessionMatchesChunkedOracle: a P-rank CP session's Apply and
// ApplyBatch must be bit-identical to the sequential ApplyChunked(x, P)
// oracle — the all-reduce sums the per-rank partial projections in rank
// order, which is exactly the chunk order the oracle reproduces — and
// the ternary meters must sum to the 2nr work of one low-rank apply.
func TestCPSessionMatchesChunkedOracle(t *testing.T) {
	const n, r = 101, 5
	rng := rand.New(rand.NewSource(41))
	op := randCPOperator(t, n, r, rng)

	for _, p := range []int{1, 4, 10} {
		s, err := OpenCPSession(op, CPOptions{P: p})
		if err != nil {
			t.Fatal(err)
		}

		x := randVec(n, rng)
		want := op.ApplyChunked(x, p, nil)
		got, err := s.Apply(x)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEqual(got.Y, want) {
			t.Fatalf("P=%d: CP session Apply differs from ApplyChunked oracle", p)
		}
		var tern int64
		for _, v := range got.Ternary {
			tern += v
		}
		if tern != op.TernaryEquiv() {
			t.Fatalf("P=%d: ternary meters %d, want 2nr = %d", p, tern, op.TernaryEquiv())
		}

		X := [][]float64{randVec(n, rng), randVec(n, rng), randVec(n, rng)}
		gb, err := s.ApplyBatch(X)
		if err != nil {
			t.Fatal(err)
		}
		for l := range X {
			if !bitsEqual(gb.Y[l], op.ApplyChunked(X[l], p, nil)) {
				t.Fatalf("P=%d: CP session ApplyBatch column %d differs from oracle", p, l)
			}
		}

		s.Close()
	}
}

// TestCPSessionCommunicationIsRankIndependent pins the low-rank
// communication bound: per-rank apply traffic is O(r·cols) words,
// independent of n — doubling n must not change any rank's sent words.
func TestCPSessionCommunicationIsRankIndependent(t *testing.T) {
	const r, p = 6, 4
	rng := rand.New(rand.NewSource(42))

	words := func(n int) []int64 {
		op := randCPOperator(t, n, r, rng)
		s, err := OpenCPSession(op, CPOptions{P: p})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		res, err := s.Apply(randVec(n, rng))
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.SentWords
	}

	small, large := words(200), words(400)
	for rank := range small {
		if small[rank] != large[rank] {
			t.Fatalf("rank %d: apply traffic changed with n (%d → %d words); CP exchange is not O(r)",
				rank, small[rank], large[rank])
		}
		if small[rank] == 0 && p > 1 {
			t.Fatalf("rank %d: no all-reduce traffic recorded", rank)
		}
	}
}

// TestCPSessionPowerMethod: the CP power method must agree with a dense
// session iterating the expanded tensor (same deterministic seed, same
// convergence tail) to floating-point tolerance, and be bit-reproducible
// across independent CP sessions.
func TestCPSessionPowerMethod(t *testing.T) {
	const n, r = 40, 3
	rng := rand.New(rand.NewSource(43))
	op := randCPOperator(t, n, r, rng)

	cp1, err := OpenCPSession(op, CPOptions{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cp1.Close()
	cp2, err := OpenCPSession(op, CPOptions{P: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()

	po := PowerOptions{MaxIter: 60, Tol: 1e-12, Seed: 9}
	e1, err := cp1.PowerMethod(po)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := cp2.PowerMethod(po)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(e1.Lambda) != math.Float64bits(e2.Lambda) || !bitsEqual(e1.X, e2.X) {
		t.Fatal("CP power method is not bit-reproducible across sessions")
	}

	dense, err := op.Dense()
	if err != nil {
		t.Fatal(err)
	}
	part := sphericalPart(t, 2)
	b := (n + part.M - 1) / part.M
	ds, err := OpenSession(dense, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ed, err := ds.PowerMethod(po)
	if err != nil {
		t.Fatal(err)
	}
	if !e1.Converged || !ed.Converged {
		t.Fatalf("power methods did not converge (cp %v, dense %v)", e1.Converged, ed.Converged)
	}
	if d := math.Abs(e1.Lambda - ed.Lambda); d > 1e-8*(1+math.Abs(ed.Lambda)) {
		t.Fatalf("CP λ=%g, dense λ=%g (diff %g)", e1.Lambda, ed.Lambda, d)
	}
}

// TestCPSessionCrashRecovery: a rank crash on a CP session recovers to
// bit-identical results through the same checkpoint machinery as the
// tetrahedral sessions (the synthetic layout's owned spans are the
// chunks, so dirty-region checkpoints cover exactly the iterate).
func TestCPSessionCrashRecovery(t *testing.T) {
	const n, r, p = 80, 4, 4
	rng := rand.New(rand.NewSource(44))
	op := randCPOperator(t, n, r, rng)

	clean, err := OpenCPSession(op, CPOptions{P: p})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()

	faulty, err := OpenCPSession(op, CPOptions{
		P: p,
		Machine: machine.RunConfig{
			Transport: fault.TransportRecoverable(fault.Plan{Seed: 7, Crash: map[int]int{1: 3}},
				fault.ReliableOptions{MaxAttempts: 1 << 20}),
			Timeout: 2 * time.Second,
		},
		Recovery: &RecoveryOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()

	x := randVec(n, rng)
	want, err := clean.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := faulty.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(got.Y, want.Y) {
		t.Fatal("recovered CP Apply differs from crash-free run")
	}

	po := PowerOptions{MaxIter: 12, Seed: 11}
	we, err := clean.PowerMethod(po)
	if err != nil {
		t.Fatal(err)
	}
	ge, err := faulty.PowerMethod(po)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(ge.Lambda) != math.Float64bits(we.Lambda) || !bitsEqual(ge.X, we.X) {
		t.Fatal("recovered CP PowerMethod differs from crash-free run")
	}
	if st := faulty.RecoveryStats(); st.Restarts == 0 {
		t.Error("crash plan injected no rank restarts; recovery untested")
	}
}
