package parallel

import (
	"math"
	"testing"

	"repro/internal/la"
	"repro/internal/tensor"
)

func TestDistributedPowerMethodRankOne(t *testing.T) {
	part := sphericalPart(t, 2)
	b := 6
	n := part.M * b
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Cos(float64(2*i + 1))
	}
	la.Normalize(v)
	a := tensor.RankOne(3, v)
	res, err := RunPowerMethod(a, Options{Part: part, B: b, Wiring: WiringP2P},
		PowerOptions{MaxIter: 100, Tol: 1e-13, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(res.Lambda-3) > 1e-8 {
		t.Fatalf("lambda = %g, want 3", res.Lambda)
	}
	if a := math.Abs(la.Dot(res.X, v)); math.Abs(a-1) > 1e-7 {
		t.Fatalf("alignment %g", a)
	}
	if math.Abs(la.Norm(res.X)-1) > 1e-9 {
		t.Fatalf("‖x‖ = %g", la.Norm(res.X))
	}
}

func TestDistributedPowerMethodMatchesSequential(t *testing.T) {
	// The distributed iteration must track the sequential power method
	// exactly (same start, same updates), so the eigenvalues agree.
	part := sphericalPart(t, 2)
	b := 6
	n := part.M * b
	v1 := make([]float64, n)
	v2 := make([]float64, n)
	v1[3] = 1
	v2[17] = 1
	a, err := tensor.CP([]float64{5, 2}, [][]float64{v1, v2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPowerMethod(a, Options{Part: part, B: b, Wiring: WiringP2P},
		PowerOptions{MaxIter: 300, Tol: 1e-13, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.Lambda-5) > 1e-8 {
		t.Fatalf("lambda = %g converged=%v, want 5", res.Lambda, res.Converged)
	}
}

func TestDistributedPowerMethodCommPerIteration(t *testing.T) {
	// Per iteration: two optimal exchanges plus the O(1)-word all-reduce.
	part := sphericalPart(t, 2)
	b := q2b(2)
	n := part.M * b
	v := make([]float64, n)
	v[0] = 1
	a := tensor.RankOne(1, v)
	res, err := RunPowerMethod(a, Options{Part: part, B: b, Wiring: WiringP2P},
		PowerOptions{MaxIter: 50, Tol: 1e-13, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := 2
	perVector := int64(n*(q+1)/(q*q+1) - n/part.P)
	// Max sent: iterations × (2 per-vector exchanges + all-reduce share).
	// The all-reduce adds at most 2 + log contributions of 2 words.
	maxAllowed := int64(res.Iterations) * (2*perVector + 8)
	if got := res.Report.MaxSentWords(); got > maxAllowed {
		t.Fatalf("max sent %d exceeds budget %d over %d iterations", got, maxAllowed, res.Iterations)
	}
}

func q2b(q int) int { return q * (q + 1) }

func TestDistributedPowerMethodValidation(t *testing.T) {
	part := sphericalPart(t, 2)
	a := tensor.NewSymmetric(part.M * 6)
	if _, err := RunPowerMethod(nil, Options{Part: part, B: 6}, PowerOptions{}); err == nil {
		t.Error("nil tensor accepted")
	}
	if _, err := RunPowerMethod(a, Options{Part: nil, B: 6}, PowerOptions{}); err == nil {
		t.Error("nil partition accepted")
	}
	if _, err := RunPowerMethod(a, Options{Part: part, B: 6, Wiring: WiringAllToAll}, PowerOptions{}); err == nil {
		t.Error("all-to-all wiring accepted")
	}
	if _, err := RunPowerMethod(a, Options{Part: part, B: 0}, PowerOptions{}); err == nil {
		t.Error("bad block edge accepted")
	}
}

func TestDistributedPowerMethodZeroTensor(t *testing.T) {
	part := sphericalPart(t, 2)
	b := 6
	a := tensor.NewSymmetric(part.M * b)
	res, err := RunPowerMethod(a, Options{Part: part, B: b, Wiring: WiringP2P},
		PowerOptions{MaxIter: 10, Tol: 1e-13, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda != 0 {
		t.Fatalf("zero tensor lambda = %g", res.Lambda)
	}
}
