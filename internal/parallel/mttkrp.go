package parallel

import (
	"fmt"

	"repro/internal/la"
	"repro/internal/tensor"
)

// RunMTTKRP executes the symmetric MTTKRP Y_iℓ = Σ_jk a_ijk·X_jℓ·X_kℓ on
// the simulated machine — the paper's §8 generalization target. The same
// tetrahedral partition, vector distribution and communication schedule as
// Algorithm 5 are reused with messages carrying all r factor columns at
// once, so the per-processor bandwidth is exactly r times the single-
// vector cost while the latency (message count) stays that of a single
// STTSV — the amortization that makes the blocked layout attractive for
// CP-decomposition workloads.
//
// The factor matrix may be nil for pure communication measurements
// (rank r zero columns).
//
// RunMTTKRP is the one-shot form of Session.MTTKRP: the batched product is
// a multi-column application of the session engine.
func RunMTTKRP(a *tensor.Symmetric, x *la.Matrix, r int, opts Options) (*la.Matrix, *Result, error) {
	part := opts.Part
	if part == nil {
		return nil, nil, fmt.Errorf("parallel: nil partition")
	}
	b := opts.B
	if b < 1 {
		return nil, nil, fmt.Errorf("parallel: block edge %d", b)
	}
	if x != nil {
		r = x.Cols
	}
	if r < 1 {
		return nil, nil, fmt.Errorf("parallel: rank %d", r)
	}
	if opts.MaxCols < r {
		opts.MaxCols = r
	}
	s, err := OpenSession(a, opts)
	if err != nil {
		return nil, nil, err
	}
	defer s.Close()
	return s.MTTKRP(x, r)
}
