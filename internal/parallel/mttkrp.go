package parallel

import (
	"fmt"

	"repro/internal/la"
	"repro/internal/machine"
	"repro/internal/schedule"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// RunMTTKRP executes the symmetric MTTKRP Y_iℓ = Σ_jk a_ijk·X_jℓ·X_kℓ on
// the simulated machine — the paper's §8 generalization target. The same
// tetrahedral partition, vector distribution and communication schedule as
// Algorithm 5 are reused with messages carrying all r factor columns at
// once, so the per-processor bandwidth is exactly r times the single-
// vector cost while the latency (message count) stays that of a single
// STTSV — the amortization that makes the blocked layout attractive for
// CP-decomposition workloads.
//
// The factor matrix may be nil for pure communication measurements
// (rank r zero columns).
func RunMTTKRP(a *tensor.Symmetric, x *la.Matrix, r int, opts Options) (*la.Matrix, *Result, error) {
	part := opts.Part
	if part == nil {
		return nil, nil, fmt.Errorf("parallel: nil partition")
	}
	b := opts.B
	if b < 1 {
		return nil, nil, fmt.Errorf("parallel: block edge %d", b)
	}
	if x != nil {
		r = x.Cols
	}
	if r < 1 {
		return nil, nil, fmt.Errorf("parallel: rank %d", r)
	}
	var n int
	switch {
	case x != nil:
		n = x.Rows
	case a != nil:
		n = a.N
	default:
		n = part.M * b
	}
	padded := part.M * b
	if n > padded {
		return nil, nil, fmt.Errorf("parallel: n=%d exceeds padded dimension %d", n, padded)
	}
	if a != nil && a.N != n {
		return nil, nil, fmt.Errorf("parallel: tensor dimension %d, factor rows %d", a.N, n)
	}

	sched := opts.Sched
	if opts.Wiring == WiringP2P && sched == nil {
		s, err := schedule.Build(part)
		if err != nil {
			return nil, nil, err
		}
		sched = s
	}

	// Host-side setup: padded columns and per-processor blocks.
	cols := make([][]float64, r)
	for l := 0; l < r; l++ {
		col := make([]float64, padded)
		if x != nil {
			for i := 0; i < n; i++ {
				col[i] = x.At(i, l)
			}
		}
		cols[l] = col
	}
	blocks, err := rankBlocksFor(&opts, a, part, b)
	if err != nil {
		return nil, nil, err
	}
	exec := opts.executor()

	var plans [][]plannedTransfer
	steps := part.P - 1
	if opts.Wiring == WiringP2P {
		plans = buildPlans(part, sched)
		steps = sched.NumSteps()
	}

	finalChunks := make([]map[int][][]float64, part.P) // rank -> row -> per-column chunk
	pr := newPhaseRecorder(part.P, "gather", "local", "reduce-scatter")

	report, err := machine.RunWith(part.P, opts.Machine, func(c *machine.Comm) {
		me := c.Rank()
		myRows := part.Rp[me]

		// xRows[row][l] is the full row block of column l; start with the
		// owned chunk.
		xRows := make(map[int][][]float64, len(myRows))
		for _, i := range myRows {
			perCol := make([][]float64, r)
			lo, hi, _ := part.OwnedRange(me, i, b)
			for l := 0; l < r; l++ {
				row := make([]float64, b)
				copy(row[lo:hi], cols[l][i*b+lo:i*b+hi])
				perCol[l] = row
			}
			xRows[i] = perCol
		}

		gatherPack := func(peer int, rows []int) []float64 {
			var payload []float64
			for _, row := range rows {
				lo, hi, _ := part.OwnedRange(me, row, b)
				for l := 0; l < r; l++ {
					payload = append(payload, xRows[row][l][lo:hi]...)
				}
			}
			return payload
		}
		gatherUnpack := func(peer int, rows []int, payload []float64) {
			pos := 0
			for _, row := range rows {
				lo, hi, _ := part.OwnedRange(peer, row, b)
				for l := 0; l < r; l++ {
					copy(xRows[row][l][lo:hi], payload[pos:pos+hi-lo])
					pos += hi - lo
				}
			}
		}
		pr.comm(c, "gather", func() {
			switch opts.Wiring {
			case WiringP2P:
				runScheduledPhase(c, plans[me], 100, gatherPack, gatherUnpack)
			case WiringAllToAll:
				runAllToAllPhase(c, part, 1, widthAllToAll(part, b, r), gatherPack, gatherUnpack)
			}
		})

		// Local compute: one BlockContribute per (block, column).
		yRows := make(map[int][][]float64, len(myRows))
		for _, i := range myRows {
			perCol := make([][]float64, r)
			for l := 0; l < r; l++ {
				perCol[l] = make([]float64, b)
			}
			yRows[i] = perCol
		}
		pr.local(c, "local", func() int64 {
			var st sttsv.Stats
			for l := 0; l < r; l++ {
				exec.Contribute(blocks.Rank(me), b,
					func(i int) []float64 { return xRows[i][l] },
					func(i int) []float64 { return yRows[i][l] }, &st)
			}
			return st.TernaryMults
		})

		scatterPack := func(peer int, rows []int) []float64 {
			var payload []float64
			for _, row := range rows {
				lo, hi, _ := part.OwnedRange(peer, row, b)
				for l := 0; l < r; l++ {
					payload = append(payload, yRows[row][l][lo:hi]...)
				}
			}
			return payload
		}
		scatterUnpack := func(peer int, rows []int, payload []float64) {
			pos := 0
			for _, row := range rows {
				lo, hi, _ := part.OwnedRange(me, row, b)
				for l := 0; l < r; l++ {
					dst := yRows[row][l]
					for t := lo; t < hi; t++ {
						dst[t] += payload[pos]
						pos++
					}
				}
			}
		}
		pr.comm(c, "reduce-scatter", func() {
			switch opts.Wiring {
			case WiringP2P:
				runScheduledPhase(c, plans[me], 200, scatterPack, scatterUnpack)
			case WiringAllToAll:
				runAllToAllPhase(c, part, 2, widthAllToAll(part, b, r), scatterPack, scatterUnpack)
			}
		})

		chunks := make(map[int][][]float64, len(myRows))
		for _, i := range myRows {
			lo, hi, _ := part.OwnedRange(me, i, b)
			perCol := make([][]float64, r)
			for l := 0; l < r; l++ {
				perCol[l] = append([]float64(nil), yRows[i][l][lo:hi]...)
			}
			chunks[i] = perCol
		}
		finalChunks[me] = chunks
	})
	if err != nil {
		return nil, nil, err
	}

	y := la.NewMatrix(n, r)
	for i := 0; i < part.M; i++ {
		for _, ch := range part.RowBlockChunks(i, b) {
			perCol := finalChunks[ch.Proc][i]
			for l := 0; l < r; l++ {
				for t := ch.Lo; t < ch.Hi; t++ {
					gi := i*b + t
					if gi < n {
						y.Set(gi, l, perCol[l][t-ch.Lo])
					}
				}
			}
		}
	}

	pr.meter("gather").Steps = steps
	pr.meter("reduce-scatter").Steps = steps
	res := &Result{
		Report:  report,
		Phases:  pr.results(),
		Ternary: pr.meter("local").Ternary,
		Steps:   steps,
	}
	return y, res, nil
}
