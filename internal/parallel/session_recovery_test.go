package parallel

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tensor"
)

// TestSessionApplyConcurrentGuard: a Session is a single-host-goroutine
// engine; concurrent Apply misuse must surface as ErrSessionBusy, never
// as a data race on the staging arenas. Run under -race this test also
// proves the guard closes the race window.
func TestSessionApplyConcurrentGuard(t *testing.T) {
	part := sphericalPart(t, 2)
	const b = 2
	n := part.M * b
	rng := rand.New(rand.NewSource(41))
	a := tensor.Random(n, rng)
	s, err := OpenSession(a, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	x := randVec(n, rng)
	want, err := s.Apply(x)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	var busy, applied atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := s.Apply(x)
				switch {
				case errors.Is(err, ErrSessionBusy):
					busy.Add(1)
				case err != nil:
					t.Errorf("concurrent Apply: %v", err)
				default:
					applied.Add(1)
					if !bitsEqual(res.Y, want.Y) {
						t.Error("concurrent Apply produced wrong bits")
					}
				}
			}
		}()
	}
	wg.Wait()
	if applied.Load() == 0 {
		t.Error("no Apply ever won the guard")
	}
	if busy.Load() == 0 {
		t.Error("no Apply was ever rejected; guard untested (raise workers)")
	}
}

// TestPowerMethodCapExit pins the MaxIter exit: an unconverged run
// reports exactly MaxIter iterations (not MaxIter+1) and Converged
// false.
func TestPowerMethodCapExit(t *testing.T) {
	part := sphericalPart(t, 2)
	const b = 2
	n := part.M * b
	rng := rand.New(rand.NewSource(42))
	a := tensor.Random(n, rng)
	res, err := RunPowerMethod(a,
		Options{Part: part, B: b, Wiring: WiringP2P},
		PowerOptions{MaxIter: 3, Tol: 1e-300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 {
		t.Errorf("Iterations = %d, want exactly MaxIter = 3", res.Iterations)
	}
	if res.Converged {
		t.Error("Converged = true on the MaxIter cap exit")
	}
	if res.Singular {
		t.Error("Singular = true on the MaxIter cap exit")
	}
}

// TestPowerMethodSingularExit pins the degenerate exit: the zero tensor
// annihilates every iterate, so the method must stop after the first
// iteration reporting Singular — and never Converged, which the seed
// implementation claimed.
func TestPowerMethodSingularExit(t *testing.T) {
	part := sphericalPart(t, 2)
	const b = 2
	n := part.M * b
	a := tensor.NewSymmetric(n) // identically zero
	res, err := RunPowerMethod(a,
		Options{Part: part, B: b, Wiring: WiringP2P},
		PowerOptions{MaxIter: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Singular {
		t.Error("Singular = false for the zero tensor")
	}
	if res.Converged {
		t.Error("Converged = true on the singular exit")
	}
	if res.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1 (first y vanishes)", res.Iterations)
	}
	if res.Lambda != 0 {
		t.Errorf("Lambda = %g, want 0", res.Lambda)
	}
}
