package parallel

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/collective"
	"repro/internal/la"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// Session is a resident parallel STTSV engine: it launches the P simulated
// ranks once against a fixed (tensor, partition, schedule, B, wiring) and
// serves a stream of operations — Apply, ApplyBatch, PowerMethod, MTTKRP —
// until Close. Between operations the ranks park on a host-fed op queue
// (Comm.AwaitHost), so the machine, its transports, the packed tensor
// blocks, and every pack/unpack buffer survive from one application to the
// next. After one warm-up application the per-rank exchange path (pack →
// Send → RecvInto → unpack → Barrier) performs no allocations.
//
// Results are bit-identical to the one-shot Run/RunPowerMethod/RunMTTKRP
// (which are implemented on top of Session), and each operation's Result
// carries exactly the meters a fresh run would: per-rank counter snapshots
// are taken at the op boundaries and differenced.
//
// A Session is not safe for concurrent use: operations are dispatched one
// at a time by a single host goroutine.
type Session struct {
	a      *tensor.Symmetric
	opts   Options
	part   *partition.Tetrahedral
	sched  *schedule.Schedule
	b      int
	padded int
	n      int // logical operator dimension; 0 when unknown (nil tensor)

	op  localOperator // rank-local compute seam (dense or sparse)
	cp  *cpRuntime    // non-nil for CP sessions (their own exchange shape)
	lay *sessionLayout

	maxCols int
	rk      []*sessionRank
	stageX  [][]float64 // host staging, maxCols × padded
	stageY  [][]float64

	cur      *launch          // current machine incarnation
	rec      *RecoveryOptions // nil: fail fast on any crash
	crashCh  chan rankDown
	stats    RecoveryStats
	inflight atomic.Bool
	report   *machine.Report
	closed   bool
	closeErr error

	// Recovery-only state (nil / unused on fail-fast sessions): the
	// incremental checkpoint store, the static exchange graph feeding the
	// partial-rebind reset computation, and the refence counters (atomics
	// because rank goroutines increment them).
	ck          *ckStore
	staticPeers [][]int
	refences    atomic.Int64
	rebinds     atomic.Int64
}

// sessionOp is one host-dispatched operation: every rank runs the closure,
// and the last one to finish releases the host.
type sessionOp struct {
	run     func(me int, c *machine.Comm)
	pending atomic.Int64
	done    chan struct{}
}

// sessionRank is one rank's resident state: dense arenas replacing the
// seed's per-run map[int][]float64 row blocks, and reusable exact-size
// message buffers. Arena layout: owned row k, column l occupies
// [k·maxCols·b + l·b, …+b).
type sessionRank struct {
	lay     *rankLayout
	b       int
	maxCols int

	xA    []float64 // input row-block arena
	yA    []float64 // output row-block arena
	chunk []float64 // owned-chunk iterate (power method), k·b-indexed

	// pmLambda and pmPrev are the power method's convergence scalars;
	// they live here (not in an op closure) because the method dispatches
	// one operation per iteration and the state must survive between
	// dispatches — and be checkpointable for crash recovery.
	pmLambda float64
	pmPrev   float64

	sendBuf []float64 // one message, reused across steps (Send copies)
	recvBuf []float64

	// All-to-All wiring: full-width per-peer buffers (tails stay zero —
	// the collective's padding) plus the reusable width-resliced views.
	a2aSendBack [][]float64
	a2aRecvBack [][]float64
	a2aSend     [][]float64
	a2aRecv     [][]float64
	a2aPay      []int // high-water payload per peer, for stale-tail zeroing

	scratch *sttsv.Scratch
	world   *collective.Group
	pbuf    [2]float64
}

func (rk *sessionRank) stride() int { return rk.maxCols * rk.b }

// OpenSession validates the configuration, precomputes the steady-state
// layout, and launches the resident ranks. The tensor may be nil (zero
// blocks — pure communication measurement). Options.MaxCols presizes the
// arenas for batched operations; ApplyBatch grows them on demand.
func OpenSession(a *tensor.Symmetric, opts Options) (*Session, error) {
	part := opts.Part
	if part == nil {
		return nil, fmt.Errorf("parallel: nil partition")
	}
	b := opts.B
	if b < 1 {
		return nil, fmt.Errorf("parallel: block edge %d", b)
	}
	sched := opts.Sched
	if opts.Wiring == WiringP2P && sched == nil {
		s, err := schedule.Build(part)
		if err != nil {
			return nil, err
		}
		sched = s
	}
	var op localOperator
	n := 0
	if srb := opts.Sparse; srb != nil {
		if a != nil {
			return nil, fmt.Errorf("parallel: sparse session takes no dense tensor")
		}
		if opts.Blocks != nil {
			return nil, fmt.Errorf("parallel: Options.Blocks and Options.Sparse are mutually exclusive")
		}
		srb, err := sparseBlocksFor(srb, part, b)
		if err != nil {
			return nil, err
		}
		op = &sparseOp{blocks: srb}
		n = srb.N
	} else {
		blocks, err := rankBlocksFor(&opts, a, part, b)
		if err != nil {
			return nil, err
		}
		op = &denseOp{exec: opts.executor(), blocks: blocks}
		if a != nil {
			n = a.N
		}
	}
	lay, err := buildLayout(part, sched, opts.Wiring, b)
	if err != nil {
		return nil, err
	}
	if opts.Wiring == WiringAllToAll {
		for p := range lay.perRank {
			for _, ap := range lay.perRank[p].peers {
				if ap.myW > 2*lay.maxChunk || ap.peerW > 2*lay.maxChunk {
					return nil, fmt.Errorf("parallel: rank %d shares %d+%d words with rank %d, exceeding All-to-All width %d",
						p, ap.myW, ap.peerW, ap.peer, 2*lay.maxChunk)
				}
			}
		}
	}

	s := &Session{
		a:      a,
		opts:   opts,
		part:   part,
		sched:  sched,
		b:      b,
		padded: part.M * b,
		n:      n,
		op:     op,
		lay:    lay,
	}
	maxCols := opts.MaxCols
	if maxCols < 1 {
		maxCols = 1
	}
	s.grow(maxCols)

	if opts.Recovery != nil {
		rec := opts.Recovery.withDefaults()
		s.rec = &rec
		s.crashCh = make(chan rankDown, part.P)
		if s.opts.Machine.Timeout == 0 {
			// A crashed rank can strand a peer in a parked transport wait
			// the abort fence cannot reach; the watchdog is the recovery
			// supervisor's backstop, so a recovering session always runs
			// with one.
			s.opts.Machine.Timeout = 5 * time.Second
		}
		s.ck = newCkStore(s.rk)
		s.staticPeers = s.buildStaticPeers()
	}
	if err := s.launchMachine(); err != nil {
		return nil, err
	}
	return s, nil
}

// grow (re)allocates arenas and message buffers for maxCols columns. Only
// called while no operation is in flight; the op-channel handoff publishes
// the new buffers to the rank goroutines.
func (s *Session) grow(maxCols int) {
	s.maxCols = maxCols
	if s.rk == nil {
		s.rk = make([]*sessionRank, s.part.P)
		for p := range s.rk {
			s.rk[p] = &sessionRank{lay: &s.lay.perRank[p], b: s.b, scratch: sttsv.NewScratch()}
		}
	}
	for _, rk := range s.rk {
		rk.maxCols = maxCols
		rows := len(rk.lay.rows)
		rk.xA = make([]float64, rows*maxCols*s.b)
		rk.yA = make([]float64, rows*maxCols*s.b)
		rk.chunk = make([]float64, rows*s.b)
		if rk.lay.maxMsgW > 0 {
			rk.sendBuf = make([]float64, rk.lay.maxMsgW*maxCols)
			rk.recvBuf = make([]float64, rk.lay.maxMsgW*maxCols)
		}
		if s.opts.Wiring == WiringAllToAll {
			width := 2 * s.lay.maxChunk * maxCols
			rk.a2aSendBack = make([][]float64, s.part.P)
			rk.a2aRecvBack = make([][]float64, s.part.P)
			rk.a2aSend = make([][]float64, s.part.P)
			rk.a2aRecv = make([][]float64, s.part.P)
			rk.a2aPay = make([]int, s.part.P)
			for i := 0; i < s.part.P; i++ {
				rk.a2aSendBack[i] = make([]float64, width)
				rk.a2aRecvBack[i] = make([]float64, width)
			}
		}
	}
	s.stageX = make([][]float64, maxCols)
	s.stageY = make([][]float64, maxCols)
	for l := 0; l < maxCols; l++ {
		s.stageX[l] = make([]float64, s.padded)
		s.stageY[l] = make([]float64, s.padded)
	}
	if s.ck != nil {
		// The chunk arenas above were reallocated (and zeroed); the shadow
		// mirrors and their fingerprints must follow.
		s.ck.resync(s.rk)
	}
}

func (s *Session) ensureCols(cols int) {
	if cols > s.maxCols {
		s.grow(cols)
	}
}

// Close retires the resident ranks and waits for the machine to finish.
// Safe to call more than once.
func (s *Session) Close() error {
	if s.closed {
		return s.closeErr
	}
	s.closed = true
	l := s.cur
	for r := range l.ops {
		close(l.ops[r])
	}
	<-l.runDone
	s.report = l.report
	s.closeErr = l.runErr
	return s.closeErr
}

// Report returns the whole-session machine report (all operations summed).
// Only valid after Close.
func (s *Session) Report() *machine.Report { return s.report }

// ---------------------------------------------------------------------------
// Steady-state pack/unpack/exchange path. After warm-up, nothing here
// allocates: pack and unpack are copies over precomputed segments, Send
// draws its payload copy from the machine's pool, and RecvInto returns it.

// pack copies the segments' chunks (per row, then per column — the seed's
// payload order) from the arena into buf, returning the payload length.
func (rk *sessionRank) pack(buf, arena []float64, segs []segment, cols int) int {
	b, stride := rk.b, rk.stride()
	pos := 0
	for _, sg := range segs {
		base := sg.k * stride
		n := sg.hi - sg.lo
		for l := 0; l < cols; l++ {
			o := base + l*b
			copy(buf[pos:pos+n], arena[o+sg.lo:o+sg.hi])
			pos += n
		}
	}
	return pos
}

// unpackCopy writes a received payload into the arena segments (gather).
func (rk *sessionRank) unpackCopy(payload, arena []float64, segs []segment, cols int) {
	b, stride := rk.b, rk.stride()
	pos := 0
	for _, sg := range segs {
		base := sg.k * stride
		n := sg.hi - sg.lo
		for l := 0; l < cols; l++ {
			o := base + l*b
			copy(arena[o+sg.lo:o+sg.hi], payload[pos:pos+n])
			pos += n
		}
	}
}

// unpackAdd accumulates a received payload into the arena segments
// (reduce-scatter), in the seed's ascending-index order.
func (rk *sessionRank) unpackAdd(payload, arena []float64, segs []segment, cols int) {
	b, stride := rk.b, rk.stride()
	pos := 0
	for _, sg := range segs {
		base := sg.k * stride
		for l := 0; l < cols; l++ {
			o := base + l*b
			for t := sg.lo; t < sg.hi; t++ {
				arena[o+t] += payload[pos]
				pos++
			}
		}
	}
}

// gatherP2P runs the gather phase over the point-to-point schedule.
func (rk *sessionRank) gatherP2P(c *machine.Comm, cols int) {
	for si := range rk.lay.steps {
		st := &rk.lay.steps[si]
		tag := 100 + si
		if st.sendTo >= 0 {
			n := rk.pack(rk.sendBuf, rk.xA, st.gSend, cols)
			c.Send(st.sendTo, tag, rk.sendBuf[:n])
		}
		if st.recvFrom >= 0 {
			w := st.gRecvW * cols
			c.RecvInto(st.recvFrom, tag, rk.recvBuf[:w])
			rk.unpackCopy(rk.recvBuf[:w], rk.xA, st.gRecv, cols)
		}
		c.Barrier() // stepwise semantics of §7.2
	}
}

// scatterP2P runs the reduce-scatter phase over the schedule.
func (rk *sessionRank) scatterP2P(c *machine.Comm, cols int) {
	for si := range rk.lay.steps {
		st := &rk.lay.steps[si]
		tag := 200 + si
		if st.sendTo >= 0 {
			n := rk.pack(rk.sendBuf, rk.yA, st.sSend, cols)
			c.Send(st.sendTo, tag, rk.sendBuf[:n])
		}
		if st.recvFrom >= 0 {
			w := st.sRecvW * cols
			c.RecvInto(st.recvFrom, tag, rk.recvBuf[:w])
			rk.unpackAdd(rk.recvBuf[:w], rk.yA, st.sRecv, cols)
		}
		c.Barrier()
	}
}

// exchangeA2A runs one phase over the fixed-width All-to-All collective.
// gather selects direction: pack my chunks / copy in the peer's for the
// gather phase; pack the peer's chunks / add into mine for reduce-scatter.
func (rk *sessionRank) exchangeA2A(c *machine.Comm, maxChunk, tag, cols int, gather bool) {
	width := 2 * maxChunk * cols
	for i := range rk.a2aSend {
		rk.a2aSend[i] = rk.a2aSendBack[i][:width]
		rk.a2aRecv[i] = rk.a2aRecvBack[i][:width]
	}
	arena := rk.xA
	if !gather {
		arena = rk.yA
	}
	for pi := range rk.lay.peers {
		ap := &rk.lay.peers[pi]
		segs := ap.mySegs
		if !gather {
			segs = ap.peerSegs
		}
		n := rk.pack(rk.a2aSend[ap.peer], arena, segs, cols)
		// Keep the padding invariant: words past the payload must be zero,
		// exactly as the seed's freshly allocated padded buffers were.
		if rk.a2aPay[ap.peer] > n {
			clear(rk.a2aSend[ap.peer][n:rk.a2aPay[ap.peer]])
		}
		rk.a2aPay[ap.peer] = n
	}
	rk.world.AllToAllFixedInto(tag, width, rk.a2aSend, rk.a2aRecv)
	for pi := range rk.lay.peers {
		ap := &rk.lay.peers[pi]
		if gather {
			rk.unpackCopy(rk.a2aRecv[ap.peer], rk.xA, ap.peerSegs, cols)
		} else {
			rk.unpackAdd(rk.a2aRecv[ap.peer], rk.yA, ap.mySegs, cols)
		}
	}
}

// stage copies the host-staged input columns' owned chunks into the x
// arena. The gather phase overwrites every other chunk of every owned row
// (schedule completeness), so no clearing is needed.
func (rk *sessionRank) stage(stageX [][]float64, cols int) {
	b, stride := rk.b, rk.stride()
	for k, row := range rk.lay.rows {
		lo, hi := rk.lay.myLo[k], rk.lay.myHi[k]
		base := k * stride
		for l := 0; l < cols; l++ {
			o := base + l*b
			copy(rk.xA[o+lo:o+hi], stageX[l][row*b+lo:row*b+hi])
		}
	}
}

// publish writes the owned output chunks into the host's staging columns.
// Chunk ownership is a partition of every row block, so each word has
// exactly one writer.
func (rk *sessionRank) publish(stageY [][]float64, cols int) {
	b, stride := rk.b, rk.stride()
	for k, row := range rk.lay.rows {
		lo, hi := rk.lay.myLo[k], rk.lay.myHi[k]
		base := k * stride
		for l := 0; l < cols; l++ {
			o := base + l*b
			copy(stageY[l][row*b+lo:row*b+hi], rk.yA[o+lo:o+hi])
		}
	}
}

func (rk *sessionRank) zeroY() { clear(rk.yA) }

// xRowCol and yRowCol are the executor's arena accessors.
func (rk *sessionRank) xRowCol(i, l int) []float64 {
	base := rk.lay.rowIdx[i]*rk.stride() + l*rk.b
	return rk.xA[base : base+rk.b]
}

func (rk *sessionRank) yRowCol(i, l int) []float64 {
	base := rk.lay.rowIdx[i]*rk.stride() + l*rk.b
	return rk.yA[base : base+rk.b]
}

// ---------------------------------------------------------------------------
// Operations.

// applyOp is the rank closure of one (possibly batched) STTSV application.
func (s *Session) applyOp(cols int, pr *phaseRecorder, deltas []machine.Meters) func(me int, c *machine.Comm) {
	return func(me int, c *machine.Comm) {
		rk := s.rk[me]
		m0 := c.Meters()
		if s.opts.Wiring == WiringAllToAll && (rk.world == nil || rk.world.Comm() != c) {
			rk.world = collective.World(c)
		}
		rk.stage(s.stageX, cols)
		pr.comm(c, "gather", func() {
			if s.opts.Wiring == WiringP2P {
				rk.gatherP2P(c, cols)
			} else {
				rk.exchangeA2A(c, s.lay.maxChunk, 1, cols, true)
			}
		})
		rk.zeroY()
		pr.local(c, "local", func() int64 {
			return s.op.contribute(me, rk, s.b, cols)
		})
		pr.comm(c, "reduce-scatter", func() {
			if s.opts.Wiring == WiringP2P {
				rk.scatterP2P(c, cols)
			} else {
				rk.exchangeA2A(c, s.lay.maxChunk, 2, cols, false)
			}
		})
		rk.publish(s.stageY, cols)
		deltas[me] = c.Meters().Sub(m0)
	}
}

// applyCols stages the input columns, dispatches one application, and
// leaves the padded outputs in s.stageY. Column l of the output is
// bit-identical to a single-column application of X[l].
func (s *Session) applyCols(X [][]float64) ([]machine.Meters, *phaseRecorder, error) {
	if s.closed {
		return nil, nil, fmt.Errorf("parallel: session closed")
	}
	cols := len(X)
	if cols < 1 {
		return nil, nil, fmt.Errorf("parallel: empty batch")
	}
	// Every column is validated before the dispatch (and before the
	// in-flight guard is taken): a malformed batch must surface as a clean
	// error with the session untouched and immediately reusable, never as
	// a host-op handed to the ranks with inconsistent staging.
	for l, x := range X {
		if len(x) == 0 {
			return nil, nil, fmt.Errorf("parallel: batch column %d is empty", l)
		}
		if len(x) != len(X[0]) {
			return nil, nil, fmt.Errorf("parallel: ragged batch: column %d has %d elements, column 0 has %d", l, len(x), len(X[0]))
		}
		if len(x) > s.padded {
			return nil, nil, fmt.Errorf("parallel: n=%d exceeds padded dimension %d (m=%d, b=%d)", len(x), s.padded, s.part.M, s.b)
		}
		if s.a != nil && s.a.N != len(x) {
			return nil, nil, fmt.Errorf("parallel: tensor dimension %d, vector length %d", s.a.N, len(x))
		}
		if s.n > 0 && s.n != len(x) {
			return nil, nil, fmt.Errorf("parallel: operator dimension %d, vector length %d", s.n, len(x))
		}
	}
	if !s.inflight.CompareAndSwap(false, true) {
		return nil, nil, ErrSessionBusy
	}
	defer s.inflight.Store(false)
	s.ensureCols(cols)
	for l, x := range X {
		copy(s.stageX[l], x)
		clear(s.stageX[l][len(x):])
	}
	deltas := make([]machine.Meters, s.part.P)
	if s.cp != nil {
		pr := newPhaseRecorder(s.part.P, "local", "all-reduce")
		if err := s.dispatch(pr, dirtyNone, s.cpApplyOp(cols, pr, deltas)); err != nil {
			return nil, nil, err
		}
		return deltas, pr, nil
	}
	pr := newPhaseRecorder(s.part.P, "gather", "local", "reduce-scatter")
	if err := s.dispatch(pr, dirtyNone, s.applyOp(cols, pr, deltas)); err != nil {
		return nil, nil, err
	}
	pr.meter("gather").Steps = s.lay.steps
	pr.meter("reduce-scatter").Steps = s.lay.steps
	return deltas, pr, nil
}

// Apply computes y = A ×₂ x ×₃ x on the resident machine. The result (Y
// bits, per-phase meters, report) is exactly what a fresh Run would
// produce.
func (s *Session) Apply(x []float64) (*Result, error) {
	deltas, pr, err := s.applyCols([][]float64{x})
	if err != nil {
		return nil, err
	}
	return &Result{
		Y:       append([]float64(nil), s.stageY[0][:len(x)]...),
		Report:  reportFromDeltas(deltas),
		Phases:  pr.results(),
		Ternary: pr.meter("local").Ternary,
		Steps:   s.lay.steps,
	}, nil
}

// BatchResult reports one multi-column application.
type BatchResult struct {
	// Y holds one output column per input column, each len(X[l]).
	Y [][]float64
	// Report, Phases, Ternary, Steps are as in Result, for the whole
	// batch: per-column words match cols independent applications, while
	// the message count stays that of a single one (messages ÷ cols).
	Report  *machine.Report
	Phases  []PhaseMeter
	Ternary []int64
	Steps   int
}

// PhaseShare is one column's amortized slice of a batch's PhaseMeter,
// summed over ranks: the communication bill a single tenant foots when its
// request rides a coalesced ApplyBatch. Words and ternary multiplications
// scale exactly linearly with the column count, so the per-column word and
// compute shares are exact integers; messages are paid once per schedule
// step for the whole batch, so the per-column message share is the
// fractional 1/cols split that makes batching worth coalescing for.
type PhaseShare struct {
	Label     string
	SentWords int64   // this column's sent words, summed over ranks (exact)
	RecvWords int64   // this column's received words, summed over ranks (exact)
	SentMsgs  float64 // amortized messages: batch total ÷ columns
	RecvMsgs  float64
	Ternary   int64 // this column's ternary multiplications (exact)
	Steps     int
}

// Shares splits the batch's phase meters into one per-column share. Every
// column's share is identical — the batch carries all columns through the
// same schedule steps — so the slice indexes phases, not columns.
func (br *BatchResult) Shares() []PhaseShare {
	cols := int64(len(br.Y))
	if cols == 0 {
		return nil
	}
	out := make([]PhaseShare, len(br.Phases))
	for i := range br.Phases {
		m := &br.Phases[i]
		sh := PhaseShare{Label: m.Label, Steps: m.Steps}
		var sw, rw, sm, rm, tern int64
		for r := range m.SentWords {
			sw += m.SentWords[r]
			rw += m.RecvWords[r]
			sm += m.SentMsgs[r]
			rm += m.RecvMsgs[r]
			tern += m.Ternary[r]
		}
		sh.SentWords = sw / cols
		sh.RecvWords = rw / cols
		sh.SentMsgs = float64(sm) / float64(cols)
		sh.RecvMsgs = float64(rm) / float64(cols)
		sh.Ternary = tern / cols
		out[i] = sh
	}
	return out
}

// ApplyBatch computes y_l = A ×₂ x_l ×₃ x_l for every column at once: one
// message per schedule step carrying all columns, amortizing the α (per-
// message) cost cols-fold. Output column l is bit-identical to Apply(X[l]).
func (s *Session) ApplyBatch(X [][]float64) (*BatchResult, error) {
	deltas, pr, err := s.applyCols(X)
	if err != nil {
		return nil, err
	}
	ys := make([][]float64, len(X))
	for l, x := range X {
		ys[l] = append([]float64(nil), s.stageY[l][:len(x)]...)
	}
	return &BatchResult{
		Y:       ys,
		Report:  reportFromDeltas(deltas),
		Phases:  pr.results(),
		Ternary: pr.meter("local").Ternary,
		Steps:   s.lay.steps,
	}, nil
}

// powerIterState carries one iteration's per-rank outcome flags from the
// dispatched op back to the host loop. Every rank writes only its own
// slot; the slots agree across ranks because the convergence test runs on
// the all-reduced scalars.
type powerIterState struct {
	stop      []bool
	converged []bool
	singular  []bool
}

// powerIterate runs one power-method iteration on this rank: stage the
// owned iterate chunks, gather, local compute (the operator-specific
// closure), reduce-scatter, then the scalar all-reduce for λ and the
// normalization. It is shared between the Session's dispatched op (dense
// or sparse) and the distributed RankEngine, so a rank process on real
// sockets executes bit-for-bit the arithmetic of the simulated run.
func (rk *sessionRank) powerIterate(c *machine.Comm, compute func() int64, tol float64, pr *phaseRecorder) (stop, converged, singular bool) {
	// The cached group must wrap this incarnation's Comm: a RankEngine
	// survives machine restarts, and a group bound to a dead epoch's
	// machine would panic with that machine's abort sentinel.
	if rk.world == nil || rk.world.Comm() != c {
		rk.world = collective.World(c)
	}
	b := rk.b
	rows := rk.lay.rows
	stride := rk.stride()

	// Stage the owned chunks; gather fills every other chunk.
	for k := range rows {
		lo, hi := rk.lay.myLo[k], rk.lay.myHi[k]
		copy(rk.xA[k*stride+lo:k*stride+hi], rk.chunk[k*b+lo:k*b+hi])
	}
	pr.comm(c, "gather", func() { rk.gatherP2P(c, 1) })

	rk.zeroY()
	pr.local(c, "local", compute)

	pr.comm(c, "reduce-scatter", func() { rk.scatterP2P(c, 1) })

	return rk.powerAdvance(c, tol, pr)
}

// powerAdvance is the operator-agnostic tail of one power iteration: the
// convergence scalars from the finished y arena, their all-reduce, the
// shared convergence test, and the normalization of the owned iterate
// chunks. The CP iteration (its own exchange shape) shares it with the
// scheduled dense/sparse path.
func (rk *sessionRank) powerAdvance(c *machine.Comm, tol float64, pr *phaseRecorder) (stop, converged, singular bool) {
	b := rk.b
	rows := rk.lay.rows
	stride := rk.stride()

	// λ = xᵀy and ‖y‖² from owned chunks, combined globally.
	rk.pbuf[0], rk.pbuf[1] = 0, 0
	for k := range rows {
		lo, hi := rk.lay.myLo[k], rk.lay.myHi[k]
		yc := rk.yA[k*stride+lo : k*stride+hi]
		xc := rk.chunk[k*b+lo : k*b+hi]
		for t := range yc {
			rk.pbuf[0] += xc[t] * yc[t]
			rk.pbuf[1] += yc[t] * yc[t]
		}
	}
	var sums []float64
	pr.comm(c, "all-reduce", func() { sums = rk.world.AllReduceSum(300, rk.pbuf[:]) })
	lambda := sums[0]
	ynorm := math.Sqrt(sums[1])
	rk.pmLambda = lambda

	if math.Abs(lambda-rk.pmPrev) <= tol*(1+math.Abs(lambda)) {
		return true, true, false
	}
	rk.pmPrev = lambda
	if ynorm == 0 {
		// Singular: y vanished, so the iterate cannot be renormalized.
		// Keep the current iterate and stop — this is not convergence.
		return true, false, true
	}
	for k := range rows {
		lo, hi := rk.lay.myLo[k], rk.lay.myHi[k]
		yc := rk.yA[k*stride+lo : k*stride+hi]
		xc := rk.chunk[k*b+lo : k*b+hi]
		for t := range xc {
			xc[t] = yc[t] / ynorm
		}
	}
	return false, false, false
}

// powerIterOp is the rank closure of one power-method iteration. Making
// each iteration its own dispatch keeps the crash-recovery checkpoint
// granularity at one STTSV round: a crash replays the iteration it hit,
// not the whole method.
func (s *Session) powerIterOp(tol float64, pr *phaseRecorder, st *powerIterState) func(me int, c *machine.Comm) {
	return func(me int, c *machine.Comm) {
		rk := s.rk[me]
		st.stop[me], st.converged[me], st.singular[me] = rk.powerIterate(c, func() int64 {
			return s.op.contribute(me, rk, s.b, 1)
		}, tol, pr)
	}
}

// PowerMethod runs the distributed higher-order power method (Algorithm 1)
// on the resident machine: the iterate stays distributed in the chunk
// layout across iterations, each iteration is one dispatched operation
// reusing the session's arenas and message buffers, and the host drives
// the convergence loop on flags the ranks derive from the all-reduced
// scalars. Results and meters are exactly those of RunPowerMethod.
func (s *Session) PowerMethod(po PowerOptions) (*EigenResult, error) {
	if s.closed {
		return nil, fmt.Errorf("parallel: session closed")
	}
	if s.n == 0 {
		return nil, fmt.Errorf("parallel: power method requires a tensor")
	}
	if s.opts.Wiring != WiringP2P {
		return nil, fmt.Errorf("parallel: power method supports the p2p wiring only")
	}
	n := s.n
	if n > s.padded {
		return nil, fmt.Errorf("parallel: n=%d exceeds padded dimension %d", n, s.padded)
	}
	if po.MaxIter <= 0 {
		po.MaxIter = 200
	}
	if po.Tol <= 0 {
		po.Tol = 1e-12
	}
	if !s.inflight.CompareAndSwap(false, true) {
		return nil, ErrSessionBusy
	}
	defer s.inflight.Store(false)

	// Deterministic unit start, padded region zero.
	x0 := make([]float64, s.padded)
	norm := 0.0
	for i := 0; i < n; i++ {
		x0[i] = math.Sin(float64(i+1)*1.7 + float64(po.Seed))
		norm += x0[i] * x0[i]
	}
	norm = math.Sqrt(norm)
	for i := 0; i < n; i++ {
		x0[i] /= norm
	}

	p := s.part.P
	b := s.b
	// Seed the distributed iterate host-side (every rank is parked
	// between operations, so its chunk arena is the host's to write).
	for _, rk := range s.rk {
		for k, row := range rk.lay.rows {
			lo, hi := rk.lay.myLo[k], rk.lay.myHi[k]
			copy(rk.chunk[k*b+lo:k*b+hi], x0[row*b+lo:row*b+hi])
		}
		rk.pmLambda, rk.pmPrev = 0, math.Inf(1)
	}

	var pr *phaseRecorder
	if s.cp != nil {
		pr = newPhaseRecorder(p, "local", "all-reduce")
	} else {
		pr = newPhaseRecorder(p, "gather", "local", "reduce-scatter", "all-reduce")
	}
	base := make([]machine.Meters, p)
	for r := range base {
		base[r] = s.cur.h.RankMeters(r)
	}

	st := &powerIterState{stop: make([]bool, p), converged: make([]bool, p), singular: make([]bool, p)}
	iterOp := s.powerIterOp
	if s.cp != nil {
		iterOp = s.cpPowerIterOp
	}
	iterations := 0
	for iterations < po.MaxIter {
		iterations++
		if err := s.dispatch(pr, dirtyIterate, iterOp(po.Tol, pr, st)); err != nil {
			return nil, err
		}
		if st.stop[0] {
			break
		}
	}

	// Iterations counts dispatched STTSV rounds exactly: a run stopped by
	// the MaxIter cap reports MaxIter, not MaxIter+1, and Converged stays
	// false for both the cap exit and the singular exit.
	deltas := make([]machine.Meters, p)
	for r := range deltas {
		deltas[r] = s.cur.h.RankMeters(r).Sub(base[r])
	}
	xOut := make([]float64, s.padded)
	for _, rk := range s.rk {
		for k, row := range rk.lay.rows {
			lo, hi := rk.lay.myLo[k], rk.lay.myHi[k]
			copy(xOut[row*b+lo:row*b+hi], rk.chunk[k*b+lo:k*b+hi])
		}
	}

	// The two exchanges ran the full schedule once per iteration (CP
	// sessions have no scheduled exchange — their all-reduce is the whole
	// communication).
	if s.cp == nil {
		pr.meter("gather").Steps = s.lay.steps * iterations
		pr.meter("reduce-scatter").Steps = s.lay.steps * iterations
	}
	return &EigenResult{
		Lambda:     s.rk[0].pmLambda,
		X:          xOut[:n],
		Iterations: iterations,
		Converged:  st.converged[0],
		Singular:   st.singular[0],
		Report:     reportFromDeltas(deltas),
		Phases:     pr.results(),
	}, nil
}

// MTTKRP computes the symmetric MTTKRP Y_iℓ = Σ_jk a_ijk·X_jℓ·X_kℓ as one
// batched application over the factor columns (see RunMTTKRP for the cost
// model). x may be nil for pure communication measurements at rank r.
func (s *Session) MTTKRP(x *la.Matrix, r int) (*la.Matrix, *Result, error) {
	if x != nil {
		r = x.Cols
	}
	if r < 1 {
		return nil, nil, fmt.Errorf("parallel: rank %d", r)
	}
	var n int
	switch {
	case x != nil:
		n = x.Rows
	case s.n > 0:
		n = s.n
	default:
		n = s.padded
	}
	if n > s.padded {
		return nil, nil, fmt.Errorf("parallel: n=%d exceeds padded dimension %d", n, s.padded)
	}
	if s.a != nil && s.a.N != n {
		return nil, nil, fmt.Errorf("parallel: tensor dimension %d, factor rows %d", s.a.N, n)
	}
	X := make([][]float64, r)
	for l := 0; l < r; l++ {
		col := make([]float64, n)
		if x != nil {
			for i := 0; i < n; i++ {
				col[i] = x.At(i, l)
			}
		}
		X[l] = col
	}
	deltas, pr, err := s.applyCols(X)
	if err != nil {
		return nil, nil, err
	}
	y := la.NewMatrix(n, r)
	for l := 0; l < r; l++ {
		for i := 0; i < n; i++ {
			y.Set(i, l, s.stageY[l][i])
		}
	}
	res := &Result{
		Report:  reportFromDeltas(deltas),
		Phases:  pr.results(),
		Ternary: pr.meter("local").Ternary,
		Steps:   s.lay.steps,
	}
	return y, res, nil
}

// reportFromDeltas assembles a per-operation machine report from the
// ranks' counter deltas: identical to what a fresh run of just that
// operation would report.
func reportFromDeltas(d []machine.Meters) *machine.Report {
	p := len(d)
	rep := &machine.Report{
		P:             p,
		SentWords:     make([]int64, p),
		RecvWords:     make([]int64, p),
		SentMsgs:      make([]int64, p),
		RecvMsgs:      make([]int64, p),
		WireSentWords: make([]int64, p),
		WireRecvWords: make([]int64, p),
		WireSentMsgs:  make([]int64, p),
		WireRecvMsgs:  make([]int64, p),
	}
	for i, m := range d {
		rep.SentWords[i] = m.SentWords
		rep.RecvWords[i] = m.RecvWords
		rep.SentMsgs[i] = m.SentMsgs
		rep.RecvMsgs[i] = m.RecvMsgs
		rep.WireSentWords[i] = m.WireSentWords
		rep.WireRecvWords[i] = m.WireRecvWords
		rep.WireSentMsgs[i] = m.WireSentMsgs
		rep.WireRecvMsgs[i] = m.WireRecvMsgs
	}
	return rep
}
