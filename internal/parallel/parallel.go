// Package parallel implements the communication-optimal parallel STTSV
// computation of §7 (Algorithm 5) on the simulated α-β-γ machine, plus the
// baselines it is compared against.
//
// Algorithm 5 in outline, per processor p:
//
//  1. Gather: p owns a 1/|Q_i| chunk of row block x[i] for each i ∈ R_p;
//     it exchanges chunks with the other processors of Q_i until it holds
//     the q+1 full row blocks x[R_p].
//  2. Local compute: p applies its extended tetrahedral block set
//     (TB₃(R_p) ∪ N_p ∪ D_p) to x[R_p], producing partial results for the
//     full row blocks y[R_p].
//  3. Reduce-scatter: the partial y chunks are exchanged over the same
//     pattern and summed, leaving p with its final chunk of y[i] for each
//     i ∈ R_p.
//
// Two wirings of the two communication phases are provided:
//
//   - WiringP2P: the direct point-to-point schedule of §7.2.2 (package
//     schedule), whose measured bandwidth matches the Theorem 5.2 lower
//     bound's leading term exactly;
//   - WiringAllToAll: the fixed-width All-to-All collectives of the
//     pseudocode (lines 10–21 and 38–50), which cost twice the leading
//     term (§7.2.2, "Communication cost of our algorithm with All-to-All
//     collectives").
//
// RunRowBaseline implements the natural 1D row partition (all-gather x,
// reduce-scatter y): Θ(n) words per processor versus Θ(n/P^{1/3}) for
// Algorithm 5.
package parallel

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/intmath"
	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// Wiring selects how the two vector exchanges are realized.
type Wiring int

const (
	// WiringP2P uses the direct point-to-point schedule (communication
	// optimal, q³/2+3q²/2−1 steps for the spherical family).
	WiringP2P Wiring = iota
	// WiringAllToAll uses fixed-width All-to-All collectives (P−1 steps,
	// 2× the optimal bandwidth) as written in Algorithm 5's pseudocode.
	WiringAllToAll
)

func (w Wiring) String() string {
	switch w {
	case WiringP2P:
		return "p2p"
	case WiringAllToAll:
		return "all-to-all"
	}
	return fmt.Sprintf("Wiring(%d)", int(w))
}

// Options configures a parallel STTSV run.
type Options struct {
	// Part is the tetrahedral block partition (determines P and m).
	Part *partition.Tetrahedral
	// Sched is the point-to-point schedule; built on demand when nil and
	// the wiring is WiringP2P.
	Sched *schedule.Schedule
	// B is the block edge length; the padded dimension is m·B, which must
	// be at least len(x).
	B int
	// Wiring selects the communication realization.
	Wiring Wiring
	// Machine configures the simulated run: stall watchdog, transport
	// factory (fault injection / reliable transport — see package
	// fault), observer, and mailbox capacity. The zero value is the
	// perfect direct-wire machine with no watchdog.
	Machine machine.RunConfig
	// Blocks optionally supplies pre-packed per-rank block sets
	// (PackRankBlocks), so repeated applications of the same tensor skip
	// re-extraction. Must match the partition, block edge and tensor of
	// the run.
	Blocks *RankBlocks
	// Workers sets the per-rank local-compute worker count (the shared-
	// memory executor inside each simulated rank). 0 or 1 runs the local
	// phase sequentially; values above 1 distribute blocks across that
	// many workers with a deterministic tree reduction.
	Workers int
}

// executor returns the rank-local compute executor for the options.
func (o *Options) executor() *sttsv.Executor {
	w := o.Workers
	if w < 1 {
		w = 1
	}
	return sttsv.NewExecutor(w)
}

// Result reports the outcome of a simulated parallel STTSV.
type Result struct {
	// Y is the computed output vector (length n).
	Y []float64
	// Report carries the per-rank communication meters for the whole run.
	Report *machine.Report
	// Phases carries one labeled meter per algorithm phase in execution
	// order — "gather", "local", "reduce-scatter" for Algorithm 5 runs;
	// the baselines use collective labels ("all-gather", …). Each meter
	// splits the run's traffic, compute and step count by phase; the sums
	// over phases equal the Report's logical meters. (This replaces the
	// former GatherSentWords/ScatterSentWords pair.)
	Phases []PhaseMeter
	// Ternary counts ternary multiplications per rank.
	Ternary []int64
	// Steps is the number of communication steps per exchange phase
	// (schedule length for WiringP2P, P−1 for WiringAllToAll).
	Steps int
}

// Phase returns the meter with the given label, or nil if the run had no
// such phase.
func (r *Result) Phase(label string) *PhaseMeter {
	for i := range r.Phases {
		if r.Phases[i].Label == label {
			return &r.Phases[i]
		}
	}
	return nil
}

// plannedTransfer is one rank's role in a schedule step.
type plannedTransfer struct {
	sendTo   int // -1 when idle
	sendRows []int
	recvFrom int // -1 when idle
	recvRows []int
}

// Run executes Algorithm 5 for y = A ×₂ x ×₃ x. The tensor may be nil, in
// which case all blocks are zero (useful for pure communication
// measurements at sizes where materializing A would be wasteful).
func Run(a *tensor.Symmetric, x []float64, opts Options) (*Result, error) {
	part := opts.Part
	if part == nil {
		return nil, fmt.Errorf("parallel: nil partition")
	}
	b := opts.B
	if b < 1 {
		return nil, fmt.Errorf("parallel: block edge %d", b)
	}
	n := len(x)
	padded := part.M * b
	if n > padded {
		return nil, fmt.Errorf("parallel: n=%d exceeds padded dimension %d (m=%d, b=%d)", n, padded, part.M, b)
	}
	if a != nil && a.N != n {
		return nil, fmt.Errorf("parallel: tensor dimension %d, vector length %d", a.N, n)
	}

	sched := opts.Sched
	if opts.Wiring == WiringP2P && sched == nil {
		s, err := schedule.Build(part)
		if err != nil {
			return nil, err
		}
		sched = s
	}

	// Host-side setup (the "input distribution" that Algorithm 5 assumes;
	// not metered, exactly as the paper's model assumes the data starts
	// distributed).
	xp := make([]float64, padded)
	copy(xp, x)
	blocks, err := rankBlocksFor(&opts, a, part, b)
	if err != nil {
		return nil, err
	}
	exec := opts.executor()

	var plans [][]plannedTransfer
	steps := part.P - 1
	if opts.Wiring == WiringP2P {
		plans = buildPlans(part, sched)
		steps = sched.NumSteps()
	}

	// Shared result buffers, one writer per slot.
	finalChunks := make([]map[int][]float64, part.P) // per rank: row -> owned chunk values
	pr := newPhaseRecorder(part.P, "gather", "local", "reduce-scatter")

	report, err := machine.RunWith(part.P, opts.Machine, func(c *machine.Comm) {
		me := c.Rank()
		myRows := part.Rp[me]

		// Assemble full x row blocks, starting from the owned chunks.
		xRows := make(map[int][]float64, len(myRows))
		for _, i := range myRows {
			row := make([]float64, b)
			lo, hi, _ := part.OwnedRange(me, i, b)
			copy(row[lo:hi], xp[i*b+lo:i*b+hi])
			xRows[i] = row
		}

		// Phase 1: gather x chunks.
		gatherPack := func(peer int, rows []int) []float64 {
			var payload []float64
			for _, row := range rows {
				lo, hi, _ := part.OwnedRange(me, row, b)
				payload = append(payload, xRows[row][lo:hi]...)
			}
			return payload
		}
		gatherUnpack := func(peer int, rows []int, payload []float64) {
			pos := 0
			for _, row := range rows {
				lo, hi, _ := part.OwnedRange(peer, row, b)
				copy(xRows[row][lo:hi], payload[pos:pos+hi-lo])
				pos += hi - lo
			}
		}
		pr.comm(c, "gather", func() {
			switch opts.Wiring {
			case WiringP2P:
				runScheduledPhase(c, plans[me], 100, gatherPack, gatherUnpack)
			case WiringAllToAll:
				runAllToAllPhase(c, part, 1, widthAllToAll(part, b, 1), gatherPack, gatherUnpack)
			}
		})

		// Local computation: partial contributions to full y row blocks.
		yRows := make(map[int][]float64, len(myRows))
		for _, i := range myRows {
			yRows[i] = make([]float64, b)
		}
		pr.local(c, "local", func() int64 {
			var st sttsv.Stats
			exec.Contribute(blocks.Rank(me), b,
				func(i int) []float64 { return xRows[i] },
				func(i int) []float64 { return yRows[i] }, &st)
			return st.TernaryMults
		})

		// Phase 2: exchange partial y chunks and reduce into the owned
		// chunk. The sender transmits the *receiver's* chunk of its
		// partial values.
		scatterPack := func(peer int, rows []int) []float64 {
			var payload []float64
			for _, row := range rows {
				lo, hi, _ := part.OwnedRange(peer, row, b)
				payload = append(payload, yRows[row][lo:hi]...)
			}
			return payload
		}
		scatterUnpack := func(peer int, rows []int, payload []float64) {
			pos := 0
			for _, row := range rows {
				lo, hi, _ := part.OwnedRange(me, row, b)
				dst := yRows[row]
				for t := lo; t < hi; t++ {
					dst[t] += payload[pos]
					pos++
				}
			}
		}
		pr.comm(c, "reduce-scatter", func() {
			switch opts.Wiring {
			case WiringP2P:
				runScheduledPhase(c, plans[me], 200, scatterPack, scatterUnpack)
			case WiringAllToAll:
				runAllToAllPhase(c, part, 2, widthAllToAll(part, b, 1), scatterPack, scatterUnpack)
			}
		})

		// Publish the final owned chunks.
		chunks := make(map[int][]float64, len(myRows))
		for _, i := range myRows {
			lo, hi, _ := part.OwnedRange(me, i, b)
			chunks[i] = append([]float64(nil), yRows[i][lo:hi]...)
		}
		finalChunks[me] = chunks
	})
	if err != nil {
		return nil, err
	}

	// Host-side assembly of y from the owned chunks.
	yp := make([]float64, padded)
	for i := 0; i < part.M; i++ {
		for _, ch := range part.RowBlockChunks(i, b) {
			vals := finalChunks[ch.Proc][i]
			if len(vals) != ch.Hi-ch.Lo {
				return nil, fmt.Errorf("parallel: rank %d published %d words for row %d, want %d",
					ch.Proc, len(vals), i, ch.Hi-ch.Lo)
			}
			copy(yp[i*b+ch.Lo:i*b+ch.Hi], vals)
		}
	}

	pr.meter("gather").Steps = steps
	pr.meter("reduce-scatter").Steps = steps
	return &Result{
		Y:       yp[:n],
		Report:  report,
		Phases:  pr.results(),
		Ternary: pr.meter("local").Ternary,
		Steps:   steps,
	}, nil
}

// buildPlans converts a schedule into per-rank step plans.
func buildPlans(part *partition.Tetrahedral, sched *schedule.Schedule) [][]plannedTransfer {
	plans := make([][]plannedTransfer, part.P)
	for p := range plans {
		plans[p] = make([]plannedTransfer, sched.NumSteps())
		for s := range plans[p] {
			plans[p][s] = plannedTransfer{sendTo: -1, recvFrom: -1}
		}
	}
	for si, step := range sched.Steps {
		for _, tr := range step {
			plans[tr.From][si].sendTo = tr.To
			plans[tr.From][si].sendRows = tr.Rows
			plans[tr.To][si].recvFrom = tr.From
			plans[tr.To][si].recvRows = tr.Rows
		}
	}
	return plans
}

// runScheduledPhase executes one phase of the point-to-point schedule.
// pack builds the message for a destination (given the shared rows, in
// sorted order); unpack consumes a received message from a source.
func runScheduledPhase(c *machine.Comm, plan []plannedTransfer, tagBase int,
	pack func(to int, rows []int) []float64,
	unpack func(from int, rows []int, payload []float64),
) {
	for si, tr := range plan {
		tag := tagBase + si
		if tr.sendTo >= 0 {
			c.Send(tr.sendTo, tag, pack(tr.sendTo, tr.sendRows))
		}
		if tr.recvFrom >= 0 {
			unpack(tr.recvFrom, tr.recvRows, c.Recv(tr.recvFrom, tag))
		}
		c.Barrier() // enforce the stepwise semantics of §7.2
	}
}

// runAllToAllPhase executes one phase with the fixed-width All-to-All
// collective of the pseudocode: every ordered pair exchanges exactly
// width words (§7.2.2's accounting), with pack/unpack handling the shared
// rows of each peer.
func runAllToAllPhase(c *machine.Comm, part *partition.Tetrahedral, tag, width int,
	pack func(peer int, rows []int) []float64,
	unpack func(peer int, rows []int, payload []float64),
) {
	me := c.Rank()
	world := collective.World(c)
	send := make([][]float64, part.P)
	for peer := 0; peer < part.P; peer++ {
		if peer == me {
			continue
		}
		if rows := sharedRowsOf(part, me, peer); len(rows) > 0 {
			send[peer] = pack(peer, rows)
		}
	}
	recv := world.AllToAllFixed(tag, width, send)
	for peer := 0; peer < part.P; peer++ {
		if peer == me {
			continue
		}
		if rows := sharedRowsOf(part, me, peer); len(rows) > 0 {
			unpack(peer, rows, recv[peer])
		}
	}
}

// widthAllToAll returns the fixed message width for the All-to-All wiring
// with cols vector columns: two maximal chunks per column per message —
// 2·b/(q(q+1)) per column when chunks divide evenly.
func widthAllToAll(part *partition.Tetrahedral, b, cols int) int {
	maxChunk := 0
	for i := 0; i < part.M; i++ {
		if w := intmath.CeilDiv(b, len(part.Qi[i])); w > maxChunk {
			maxChunk = w
		}
	}
	return 2 * maxChunk * cols
}

// sharedRowsOf returns R_a ∩ R_b in ascending order.
func sharedRowsOf(part *partition.Tetrahedral, a, b int) []int {
	var rows []int
	for _, i := range part.Rp[a] {
		if part.Owns(b, i) {
			rows = append(rows, i)
		}
	}
	return rows
}
