// Package parallel implements the communication-optimal parallel STTSV
// computation of §7 (Algorithm 5) on the simulated α-β-γ machine, plus the
// baselines it is compared against.
//
// Algorithm 5 in outline, per processor p:
//
//  1. Gather: p owns a 1/|Q_i| chunk of row block x[i] for each i ∈ R_p;
//     it exchanges chunks with the other processors of Q_i until it holds
//     the q+1 full row blocks x[R_p].
//  2. Local compute: p applies its extended tetrahedral block set
//     (TB₃(R_p) ∪ N_p ∪ D_p) to x[R_p], producing partial results for the
//     full row blocks y[R_p].
//  3. Reduce-scatter: the partial y chunks are exchanged over the same
//     pattern and summed, leaving p with its final chunk of y[i] for each
//     i ∈ R_p.
//
// Two wirings of the two communication phases are provided:
//
//   - WiringP2P: the direct point-to-point schedule of §7.2.2 (package
//     schedule), whose measured bandwidth matches the Theorem 5.2 lower
//     bound's leading term exactly;
//   - WiringAllToAll: the fixed-width All-to-All collectives of the
//     pseudocode (lines 10–21 and 38–50), which cost twice the leading
//     term (§7.2.2, "Communication cost of our algorithm with All-to-All
//     collectives").
//
// RunRowBaseline implements the natural 1D row partition (all-gather x,
// reduce-scatter y): Θ(n) words per processor versus Θ(n/P^{1/3}) for
// Algorithm 5.
package parallel

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// Wiring selects how the two vector exchanges are realized.
type Wiring int

const (
	// WiringP2P uses the direct point-to-point schedule (communication
	// optimal, q³/2+3q²/2−1 steps for the spherical family).
	WiringP2P Wiring = iota
	// WiringAllToAll uses fixed-width All-to-All collectives (P−1 steps,
	// 2× the optimal bandwidth) as written in Algorithm 5's pseudocode.
	WiringAllToAll
)

func (w Wiring) String() string {
	switch w {
	case WiringP2P:
		return "p2p"
	case WiringAllToAll:
		return "all-to-all"
	}
	return fmt.Sprintf("Wiring(%d)", int(w))
}

// Options configures a parallel STTSV run.
type Options struct {
	// Part is the tetrahedral block partition (determines P and m).
	Part *partition.Tetrahedral
	// Sched is the point-to-point schedule; built on demand when nil and
	// the wiring is WiringP2P.
	Sched *schedule.Schedule
	// B is the block edge length; the padded dimension is m·B, which must
	// be at least len(x).
	B int
	// Wiring selects the communication realization.
	Wiring Wiring
	// Machine configures the simulated run: stall watchdog, transport
	// factory (fault injection / reliable transport — see package
	// fault), observer, and mailbox capacity. The zero value is the
	// perfect direct-wire machine with no watchdog.
	Machine machine.RunConfig
	// Blocks optionally supplies pre-packed per-rank block sets
	// (PackRankBlocks), so repeated applications of the same tensor skip
	// re-extraction. Must match the partition, block edge and tensor of
	// the run.
	Blocks *RankBlocks
	// Sparse selects the sparse fast path: the session's local compute
	// runs the packed sparse block kernels over these per-rank block sets
	// (PackSparseRankBlocks) and never materializes a dense block. The
	// tensor argument must be nil and Blocks unset; the communication
	// structure, meters, checkpointing and recovery are identical to a
	// dense session, and the output bits match a dense scalar-kernel
	// session on the materialized tensor.
	Sparse *SparseRankBlocks
	// Workers sets the per-rank local-compute worker count (the shared-
	// memory executor inside each simulated rank). 0 or 1 runs the local
	// phase sequentially; values above 1 distribute blocks across that
	// many workers with a deterministic tree reduction.
	Workers int
	// ScalarKernel makes the dense executor use the scalar reference
	// kernel (sttsv.BlockContributeScalar) instead of the tiled kernels.
	// Slower, but its association order is the one the sparse kernels
	// reproduce — a dense scalar session is the bit-exact conformance
	// oracle for a sparse session.
	ScalarKernel bool
	// MaxCols presizes a Session's arenas and message buffers for batched
	// applications of up to this many columns (ApplyBatch / MTTKRP).
	// Defaults to 1; the session grows on demand when exceeded.
	MaxCols int
	// Recovery, when non-nil, arms the session's crash-recovery
	// supervisor: injected rank crashes (and genuine panics) are caught,
	// dead ranks are respawned onto fresh mailboxes in a new wire epoch,
	// every rank rolls back to the last dispatch-boundary checkpoint, and
	// the operation replays under bounded retries with exponential
	// backoff, degrading to a full machine relaunch as the last resort.
	// The zero RecoveryOptions value selects all defaults. Nil (the
	// default) keeps the fail-fast semantics: any crash kills the run.
	Recovery *RecoveryOptions
}

// executor returns the rank-local compute executor for the options.
func (o *Options) executor() *sttsv.Executor {
	w := o.Workers
	if w < 1 {
		w = 1
	}
	if o.ScalarKernel {
		return sttsv.NewScalarExecutor(w)
	}
	return sttsv.NewExecutor(w)
}

// Result reports the outcome of a simulated parallel STTSV.
type Result struct {
	// Y is the computed output vector (length n).
	Y []float64
	// Report carries the per-rank communication meters for the whole run.
	Report *machine.Report
	// Phases carries one labeled meter per algorithm phase in execution
	// order — "gather", "local", "reduce-scatter" for Algorithm 5 runs;
	// the baselines use collective labels ("all-gather", …). Each meter
	// splits the run's traffic, compute and step count by phase; the sums
	// over phases equal the Report's logical meters. (This replaces the
	// former GatherSentWords/ScatterSentWords pair.)
	Phases []PhaseMeter
	// Ternary counts ternary multiplications per rank.
	Ternary []int64
	// Steps is the number of communication steps per exchange phase
	// (schedule length for WiringP2P, P−1 for WiringAllToAll).
	Steps int
}

// Phase returns the meter with the given label, or nil if the run had no
// such phase.
func (r *Result) Phase(label string) *PhaseMeter {
	for i := range r.Phases {
		if r.Phases[i].Label == label {
			return &r.Phases[i]
		}
	}
	return nil
}

// plannedTransfer is one rank's role in a schedule step.
type plannedTransfer struct {
	sendTo   int // -1 when idle
	sendRows []int
	recvFrom int // -1 when idle
	recvRows []int
}

// Run executes Algorithm 5 for y = A ×₂ x ×₃ x. The tensor may be nil, in
// which case all blocks are zero (useful for pure communication
// measurements at sizes where materializing A would be wasteful).
//
// Run is a one-shot convenience over Session: it opens a session, applies
// x once, and closes. Callers applying the same configuration repeatedly
// should hold a Session open instead — the machine launch, plan
// precomputation, and all buffers are then paid once rather than per
// application. The results are identical either way, bit for bit.
func Run(a *tensor.Symmetric, x []float64, opts Options) (*Result, error) {
	part := opts.Part
	if part == nil {
		return nil, fmt.Errorf("parallel: nil partition")
	}
	b := opts.B
	if b < 1 {
		return nil, fmt.Errorf("parallel: block edge %d", b)
	}
	n := len(x)
	padded := part.M * b
	if n > padded {
		return nil, fmt.Errorf("parallel: n=%d exceeds padded dimension %d (m=%d, b=%d)", n, padded, part.M, b)
	}
	if a != nil && a.N != n {
		return nil, fmt.Errorf("parallel: tensor dimension %d, vector length %d", a.N, n)
	}
	s, err := OpenSession(a, opts)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Apply(x)
}

// buildPlans converts a schedule into per-rank step plans.
func buildPlans(part *partition.Tetrahedral, sched *schedule.Schedule) [][]plannedTransfer {
	plans := make([][]plannedTransfer, part.P)
	for p := range plans {
		plans[p] = make([]plannedTransfer, sched.NumSteps())
		for s := range plans[p] {
			plans[p][s] = plannedTransfer{sendTo: -1, recvFrom: -1}
		}
	}
	for si, step := range sched.Steps {
		for _, tr := range step {
			plans[tr.From][si].sendTo = tr.To
			plans[tr.From][si].sendRows = tr.Rows
			plans[tr.To][si].recvFrom = tr.From
			plans[tr.To][si].recvRows = tr.Rows
		}
	}
	return plans
}

// runScheduledPhase executes one phase of the point-to-point schedule.
// pack builds the message for a destination (given the shared rows, in
// sorted order); unpack consumes a received message from a source.
func runScheduledPhase(c *machine.Comm, plan []plannedTransfer, tagBase int,
	pack func(to int, rows []int) []float64,
	unpack func(from int, rows []int, payload []float64),
) {
	for si, tr := range plan {
		tag := tagBase + si
		if tr.sendTo >= 0 {
			c.Send(tr.sendTo, tag, pack(tr.sendTo, tr.sendRows))
		}
		if tr.recvFrom >= 0 {
			unpack(tr.recvFrom, tr.recvRows, c.Recv(tr.recvFrom, tag))
		}
		c.Barrier() // enforce the stepwise semantics of §7.2
	}
}

// The former runAllToAllPhase and its per-peer sharedRowsOf/OwnedRange
// scans (O(P·q) repeated work per phase) are gone: the All-to-All wiring
// now runs on the Session's precomputed a2aPeer tables (see layout.go),
// and the fixed message width 2·maxChunk·cols is derived once at session
// open from sessionLayout.maxChunk.
