package parallel

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// openRecovering opens a session with the crash-recovery supervisor armed
// on the default (fault-free) transport: checkpoints are taken at every
// dispatch boundary but no restore ever runs — the configuration that
// measures pure checkpoint overhead.
func openRecovering(t *testing.T, q, b int, seed int64) (*Session, []float64, *rand.Rand) {
	t.Helper()
	part := sphericalPart(t, q)
	n := part.M * b
	rng := rand.New(rand.NewSource(seed))
	a := tensor.Random(n, rng)
	s, err := OpenSession(a, Options{Part: part, B: b, Wiring: WiringP2P, Recovery: &RecoveryOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	return s, randVec(n, rng), rng
}

// TestCheckpointSteadyStateZeroAlloc pins the incremental checkpointer's
// allocation contract: after the double-buffered slots warmed up (two
// captures per operation shape), the checkpoint path allocates nothing —
// not for the scalar snapshot, not for the dirty-span copy, not for the
// phase-recorder rows.
func TestCheckpointSteadyStateZeroAlloc(t *testing.T) {
	s, x, _ := openRecovering(t, 3, 6, 61)
	defer s.Close()
	for i := 0; i < 3; i++ { // warm-up: session arenas and both ck slots
		if _, err := s.Apply(x); err != nil {
			t.Fatal(err)
		}
	}
	pr := newPhaseRecorder(s.part.P, "gather", "local", "reduce-scatter", "all-gather")
	s.checkpoint(pr, dirtyIterate)
	s.checkpoint(pr, dirtyIterate) // second capture warms the other slot
	for _, dk := range []dirtyKind{dirtyNone, dirtyIterate} {
		dk := dk
		allocs := testing.AllocsPerRun(100, func() {
			s.checkpoint(pr, dk)
		})
		if allocs != 0 {
			t.Errorf("warm checkpoint (dirtyKind %d) allocates %.1f objects per capture, want 0", dk, allocs)
		}
	}
}

// TestCheckpointCostScalesWithDirty pins the O(dirty) contract from both
// sides: Apply-style operations checkpoint zero arena words however many
// times they run, while a power-method iteration checkpoints exactly the
// owned chunk spans — strictly less than the replicated arena footprint
// the old full-copy checkpointer moved.
func TestCheckpointCostScalesWithDirty(t *testing.T) {
	s, x, _ := openRecovering(t, 3, 7, 62)
	defer s.Close()
	for i := 0; i < 5; i++ {
		if _, err := s.Apply(x); err != nil {
			t.Fatal(err)
		}
	}
	if w := s.RecoveryStats().CheckpointWords; w != 0 {
		t.Fatalf("5 Applies checkpointed %d arena words, want 0 (dirtyNone)", w)
	}

	var owned, arena int
	for _, rk := range s.rk {
		arena += len(rk.chunk)
		for k := range rk.lay.rows {
			owned += rk.lay.myHi[k] - rk.lay.myLo[k]
		}
	}
	if owned <= 0 || owned >= arena {
		t.Fatalf("owned span total %d outside (0, arena %d): layout lost its replication", owned, arena)
	}
	res, err := s.PowerMethod(PowerOptions{MaxIter: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	words := s.RecoveryStats().CheckpointWords
	if words <= 0 {
		t.Fatal("power method checkpointed no arena words")
	}
	if words%int64(owned) != 0 {
		t.Errorf("CheckpointWords %d not a multiple of the owned span total %d", words, owned)
	}
	if n := words / int64(owned); n < int64(res.Iterations) {
		t.Errorf("%d dirty checkpoints for %d iterations", n, res.Iterations)
	}
	// A second Apply stream keeps the count flat again.
	before := s.RecoveryStats().CheckpointWords
	if _, err := s.Apply(x); err != nil {
		t.Fatal(err)
	}
	if after := s.RecoveryStats().CheckpointWords; after != before {
		t.Errorf("Apply after power method grew CheckpointWords %d → %d", before, after)
	}
}

// TestRestoreMismatchDetected injects corruption between a checkpoint and
// its restore: the fingerprint verification must identify the damaged
// rank and page in a structured RestoreMismatchError and count it in
// RecoveryStats, never hand corrupted state back to a replay.
func TestRestoreMismatchDetected(t *testing.T) {
	s, x, _ := openRecovering(t, 2, 4, 63)
	defer s.Close()
	if _, err := s.Apply(x); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PowerMethod(PowerOptions{MaxIter: 2, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	ck := s.checkpoint(nil, dirtyIterate)
	const wantRank = 1
	pg := len(s.ck.prints[wantRank]) - 1 // last page: exercises the short-tail bounds
	lo := pg * checkpointPageWords
	s.ck.shadow[wantRank][lo] += 1.5 // flip bits after the fingerprint was taken

	base := s.RecoveryStats()
	err := s.restore(ck, nil)
	var mm *RestoreMismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("restore over corrupted shadow returned %v, want *RestoreMismatchError", err)
	}
	if mm.Rank != wantRank || mm.Page != pg {
		t.Errorf("mismatch located at rank %d page %d, corruption was rank %d page %d",
			mm.Rank, mm.Page, wantRank, pg)
	}
	st := s.RecoveryStats()
	if st.Mismatches != base.Mismatches+1 {
		t.Errorf("Mismatches %d → %d, want +1", base.Mismatches, st.Mismatches)
	}
	if st.Verifications != base.Verifications+1 {
		t.Errorf("Verifications %d → %d, want +1", base.Verifications, st.Verifications)
	}
	if st.Rollbacks != base.Rollbacks {
		t.Errorf("Rollbacks %d → %d: a failed verification must not count as a completed rollback",
			base.Rollbacks, st.Rollbacks)
	}

	// Undamaged shadow verifies again: repair the word and re-sync.
	s.ck.shadow[wantRank][lo] -= 1.5
	ck = s.checkpoint(nil, dirtyIterate)
	if err := s.restore(ck, nil); err != nil {
		t.Fatalf("restore after repair: %v", err)
	}
	if st := s.RecoveryStats(); st.Rollbacks != base.Rollbacks+1 {
		t.Errorf("repaired restore did not complete a rollback: %d → %d", base.Rollbacks, st.Rollbacks)
	}
}
