package parallel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// TestRunWithCachedBlocks: supplying pre-packed rank blocks must reproduce
// the self-extracting run bit-for-bit (same block sets, same kernel order)
// while skipping re-extraction.
func TestRunWithCachedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	part := sphericalPart(t, 2) // m=5, P=10
	b := 6
	n := part.M * b
	a := tensor.Random(n, rng)
	x := randVec(n, rng)

	plain, err := Run(a, x, Options{Part: part, B: b})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := PackRankBlocks(a, part, b)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ { // the cache survives repeated applications
		cached, err := Run(a, x, Options{Part: part, B: b, Blocks: rb})
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain.Y {
			if math.Float64bits(cached.Y[i]) != math.Float64bits(plain.Y[i]) {
				t.Fatalf("rep %d: y[%d] bits differ between cached and plain run", rep, i)
			}
		}
	}
	if want := sttsv.Packed(a, x, nil); maxAbsDiff(plain.Y, want) > tol {
		t.Fatal("run differs from Algorithm 4")
	}
}

// TestRunRejectsMismatchedBlocks: a cache built for a different block edge
// or tensor must be rejected, not silently misused.
func TestRunRejectsMismatchedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	part := sphericalPart(t, 2)
	b := 6
	n := part.M * b
	a := tensor.Random(n, rng)
	x := randVec(n, rng)

	rb, err := PackRankBlocks(a, part, b-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(a, x, Options{Part: part, B: b, Blocks: rb}); err == nil {
		t.Fatal("mismatched block edge accepted")
	}
	rbNil, err := PackRankBlocks(nil, part, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(a, x, Options{Part: part, B: b, Blocks: rbNil}); err == nil {
		t.Fatal("cache packed from nil tensor accepted for a tensor run")
	}
}

// TestRunMulticoreLocalPhase: Workers > 1 distributes each rank's local
// compute across the shared-memory executor; the result must match the
// Algorithm 4 oracle and stay bit-deterministic across runs for a fixed
// worker count.
func TestRunMulticoreLocalPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	part := sphericalPart(t, 2)
	b := 7 // non-divisible chunking
	n := part.M*b - 3
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	want := sttsv.Packed(a, x, nil)

	var first []float64
	for run := 0; run < 3; run++ {
		res, err := Run(a, x, Options{Part: part, B: b, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(res.Y, want); d > tol {
			t.Fatalf("run %d: differs from Algorithm 4 by %g", run, d)
		}
		if first == nil {
			first = res.Y
			continue
		}
		for i := range res.Y {
			if math.Float64bits(res.Y[i]) != math.Float64bits(first[i]) {
				t.Fatalf("run %d: y[%d] bits differ across repeated multicore runs", run, i)
			}
		}
	}
}

// TestPowerMethodWithCachedBlocksAndWorkers: the distributed HOPM accepts
// the same cache and executor plumbing.
func TestPowerMethodWithCachedBlocksAndWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	part := sphericalPart(t, 2)
	b := 4
	n := part.M * b
	// A near-rank-one tensor so the power method converges quickly.
	v := randVec(n, rng)
	norm := 0.0
	for _, t := range v {
		norm += t * t
	}
	norm = math.Sqrt(norm)
	for i := range v {
		v[i] /= norm
	}
	a := tensor.RankOne(3, v)

	rb, err := PackRankBlocks(a, part, b)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunPowerMethod(a, Options{Part: part, B: b}, PowerOptions{MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := RunPowerMethod(a, Options{Part: part, B: b, Blocks: rb, Workers: 2},
		PowerOptions{MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !cached.Converged {
		t.Fatalf("convergence: plain=%v cached=%v", plain.Converged, cached.Converged)
	}
	if d := math.Abs(plain.Lambda - cached.Lambda); d > 1e-8 {
		t.Fatalf("lambda differs by %g between plain and cached/multicore runs", d)
	}
}

// TestMTTKRPWithCachedBlocks: the multi-vector product reuses the cache
// across all r columns.
func TestMTTKRPWithCachedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	part := sphericalPart(t, 2)
	b := 4
	n := part.M * b
	r := 3
	a := tensor.Random(n, rng)
	xm := la.NewMatrix(n, r)
	for i := range xm.Data {
		xm.Data[i] = rng.NormFloat64()
	}

	rb, err := PackRankBlocks(a, part, b)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := RunMTTKRP(a, xm, r, Options{Part: part, B: b})
	if err != nil {
		t.Fatal(err)
	}
	cached, _, err := RunMTTKRP(a, xm, r, Options{Part: part, B: b, Blocks: rb, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for l := 0; l < r; l++ {
			if d := math.Abs(plain.At(i, l) - cached.At(i, l)); d > tol {
				t.Fatalf("Y[%d,%d] differs by %g", i, l, d)
			}
		}
	}
}
