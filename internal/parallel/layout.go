package parallel

import (
	"fmt"

	"repro/internal/intmath"
	"repro/internal/partition"
	"repro/internal/schedule"
)

// This file precomputes the steady-state exchange layout a Session rank
// runs on: which arena words each schedule step moves, in which order, and
// how many. Everything the seed Run derived per message inside the hot
// loop — sharedRowsOf scans, OwnedRange lookups, append-grown payloads —
// is resolved here once at session open, so the per-application path is
// pure copy/add over precomputed segments.

// segment addresses one row-block chunk inside a rank's arena: local row
// index k (position in the rank's owned-row list) and the chunk bounds
// within the b-long block. Pack and unpack iterate segments in the exact
// order the seed code iterated (row, then range), so payload bytes are
// bit-identical.
type segment struct {
	k      int
	lo, hi int
}

func (s segment) words() int { return s.hi - s.lo }

// sessStep is one rank's role in one point-to-point schedule step, with
// segment lists for both phases: the gather phase sends the rank's own
// chunks (gSend) and copies in the peer's chunks (gRecv); the
// reduce-scatter phase sends the peer's chunks of the partial results
// (sSend) and adds received partials into the rank's own chunks (sRecv).
type sessStep struct {
	sendTo   int // -1 when idle
	recvFrom int // -1 when idle
	gSend    []segment
	gRecv    []segment
	sSend    []segment
	sRecv    []segment
	// words per column of each message (exact payload sizes)
	gSendW, gRecvW, sSendW, sRecvW int
}

// a2aPeer is one rank's precomputed exchange with one peer under the
// All-to-All wiring: mySegs are the rank's own chunks of the shared rows
// (gather pack / scatter unpack), peerSegs the peer's chunks (gather
// unpack / scatter pack). Replaces the per-peer sharedRowsOf + OwnedRange
// scans of the former runAllToAllPhase.
type a2aPeer struct {
	peer     int
	mySegs   []segment
	peerSegs []segment
	myW      int // words per column of my chunks
	peerW    int // words per column of the peer's chunks
}

// rankLayout is one rank's full precomputed layout.
type rankLayout struct {
	rows   []int // owned row blocks, partition order
	rowIdx []int // global row block -> local k, -1 when unowned
	myLo   []int // owned chunk bounds per local row
	myHi   []int
	steps  []sessStep // point-to-point wiring; nil otherwise
	peers  []a2aPeer  // all-to-all wiring; nil otherwise
	// maxMsgW is the largest single-message word count per column this
	// rank sends or receives — the step-buffer size.
	maxMsgW int
}

// sessionLayout is the whole machine's layout.
type sessionLayout struct {
	perRank  []rankLayout
	steps    int // communication steps per exchange phase
	maxChunk int // largest chunk width (All-to-All message sizing)
}

// buildLayout precomputes every rank's layout for the wiring. The shared
// rows of each pair are derived in one O(P·q²) pass over the partition
// (each row names its q+1 sharers) instead of the O(P²·q) pairwise scans
// of the seed.
func buildLayout(part *partition.Tetrahedral, sched *schedule.Schedule, wiring Wiring, b int) (*sessionLayout, error) {
	L := &sessionLayout{perRank: make([]rankLayout, part.P)}
	for p := 0; p < part.P; p++ {
		rk := &L.perRank[p]
		rk.rows = part.Rp[p]
		rk.rowIdx = make([]int, part.M)
		for i := range rk.rowIdx {
			rk.rowIdx[i] = -1
		}
		rk.myLo = make([]int, len(rk.rows))
		rk.myHi = make([]int, len(rk.rows))
		for k, row := range rk.rows {
			rk.rowIdx[row] = k
			lo, hi, ok := part.OwnedRange(p, row, b)
			if !ok {
				return nil, fmt.Errorf("parallel: rank %d has no chunk of its row %d", p, row)
			}
			rk.myLo[k], rk.myHi[k] = lo, hi
		}
	}
	L.maxChunk = 0
	for i := 0; i < part.M; i++ {
		if w := intmath.CeilDiv(b, len(part.Qi[i])); w > L.maxChunk {
			L.maxChunk = w
		}
	}

	switch wiring {
	case WiringP2P:
		if err := buildP2PLayout(L, part, sched, b); err != nil {
			return nil, err
		}
	case WiringAllToAll:
		buildA2ALayout(L, part, b)
	default:
		return nil, fmt.Errorf("parallel: unknown wiring %v", wiring)
	}
	return L, nil
}

// segsFor builds the segment list for rows with chunk bounds taken from
// owner's ranges, using owner's local row indexing from lay.
func segsFor(part *partition.Tetrahedral, lay *rankLayout, owner int, rows []int, b int) ([]segment, int, error) {
	segs := make([]segment, len(rows))
	words := 0
	for si, row := range rows {
		k := lay.rowIdx[row]
		if k < 0 {
			return nil, 0, fmt.Errorf("parallel: schedule names row %d a rank does not own", row)
		}
		lo, hi, ok := part.OwnedRange(owner, row, b)
		if !ok {
			return nil, 0, fmt.Errorf("parallel: rank %d owns no chunk of row %d", owner, row)
		}
		segs[si] = segment{k: k, lo: lo, hi: hi}
		words += hi - lo
	}
	return segs, words, nil
}

func buildP2PLayout(L *sessionLayout, part *partition.Tetrahedral, sched *schedule.Schedule, b int) error {
	plans := buildPlans(part, sched)
	L.steps = sched.NumSteps()
	for p := 0; p < part.P; p++ {
		rk := &L.perRank[p]
		rk.steps = make([]sessStep, L.steps)
		for si, tr := range plans[p] {
			st := &rk.steps[si]
			st.sendTo, st.recvFrom = tr.sendTo, tr.recvFrom
			var err error
			if tr.sendTo >= 0 {
				// Gather sends my chunks; scatter sends the receiver's.
				if st.gSend, st.gSendW, err = segsFor(part, rk, p, tr.sendRows, b); err != nil {
					return err
				}
				if st.sSend, st.sSendW, err = segsFor(part, rk, tr.sendTo, tr.sendRows, b); err != nil {
					return err
				}
			}
			if tr.recvFrom >= 0 {
				// Gather receives the sender's chunks; scatter receives
				// partials for my chunks.
				if st.gRecv, st.gRecvW, err = segsFor(part, rk, tr.recvFrom, tr.recvRows, b); err != nil {
					return err
				}
				if st.sRecv, st.sRecvW, err = segsFor(part, rk, p, tr.recvRows, b); err != nil {
					return err
				}
			}
			for _, w := range [...]int{st.gSendW, st.gRecvW, st.sSendW, st.sRecvW} {
				if w > rk.maxMsgW {
					rk.maxMsgW = w
				}
			}
		}
	}
	return nil
}

func buildA2ALayout(L *sessionLayout, part *partition.Tetrahedral, b int) {
	L.steps = part.P - 1
	// shared[p][peer] lists R_p ∩ R_peer in R_p order — one pass over each
	// rank's rows and their sharer lists.
	shared := make([][][]int, part.P)
	for p := range shared {
		shared[p] = make([][]int, part.P)
	}
	for p := 0; p < part.P; p++ {
		for _, row := range part.Rp[p] {
			for _, peer := range part.Qi[row] {
				if peer != p {
					shared[p][peer] = append(shared[p][peer], row)
				}
			}
		}
	}
	for p := 0; p < part.P; p++ {
		rk := &L.perRank[p]
		for peer := 0; peer < part.P; peer++ {
			rows := shared[p][peer]
			if peer == p || len(rows) == 0 {
				continue
			}
			ap := a2aPeer{peer: peer}
			// Both owners hold every shared row, so segsFor cannot fail.
			ap.mySegs, ap.myW, _ = segsFor(part, rk, p, rows, b)
			ap.peerSegs, ap.peerW, _ = segsFor(part, rk, peer, rows, b)
			rk.peers = append(rk.peers, ap)
			for _, w := range [...]int{ap.myW, ap.peerW} {
				if w > rk.maxMsgW {
					rk.maxMsgW = w
				}
			}
		}
	}
}
