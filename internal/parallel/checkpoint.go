package parallel

import (
	"fmt"
	"math"
	"time"

	"repro/internal/machine"
)

// This file is the session's incremental checkpoint store. The PR 5
// supervisor copied every rank's full chunk arena at every dispatch
// boundary — O(P·b·chunk) per operation whether or not anything changed.
// The store replaces that with dirty-region tracking: each operation
// declares (via dirtyKind) which state it mutates, and the checkpointer
// copies only those regions into a persistent per-rank shadow mirror.
// Apply/ApplyBatch/MTTKRP never touch the checkpointed state at all (the
// x/y arenas are rebuilt from host staging on every attempt), so their
// steady-state checkpoint cost is a handful of scalar snapshots — zero
// words copied and zero allocations. The power method rewrites only the
// owned spans of the chunk iterate plus two convergence scalars per rank,
// so its cost is O(owned words), independent of arena padding.
//
// Every chunk arena additionally carries Merkle-style page fingerprints
// (FNV-1a leaves over fixed-size pages, matching the wire checksum's
// constants). Dirty pages are re-hashed at checkpoint time; every restore
// re-verifies the full restored arena against the stored fingerprints, so
// a corrupted rollback surfaces as a structured RestoreMismatchError
// instead of silently replaying bad state.

// checkpointPageWords is the fingerprint page granularity in float64
// words. Small enough to localize a mismatch, large enough that hashing
// stays a small fraction of the copy it guards.
const checkpointPageWords = 64

// dirtyKind declares which checkpointed state a dispatched operation can
// mutate; the checkpointer copies only that.
type dirtyKind int

const (
	// dirtyNone: the operation leaves the chunk iterate and the
	// power-method scalars untouched (Apply, ApplyBatch, MTTKRP — their
	// x/y arenas are rebuilt from host staging on every attempt and need
	// no checkpoint).
	dirtyNone dirtyKind = iota
	// dirtyIterate: the operation rewrites the owned spans of the chunk
	// iterate and the convergence scalars (a power-method iteration, and
	// the host-side seeding that precedes one).
	dirtyIterate
)

// RestoreMismatchError reports a checkpoint page whose fingerprint did
// not survive a rollback or a degraded relaunch: the restored arena
// differs from the state the checkpoint captured. The supervisor returns
// it instead of replaying on corrupt state; the failing location is also
// emitted as a machine.EventRestoreMismatch trace event and counted in
// RecoveryStats.Mismatches.
type RestoreMismatchError struct {
	// Rank owns the corrupted chunk arena; Page is the failing
	// checkpointPageWords-sized page index within it.
	Rank, Page int
}

func (e *RestoreMismatchError) Error() string {
	return fmt.Sprintf("parallel: restore verification failed: rank %d chunk page %d does not match its checkpoint fingerprint", e.Rank, e.Page)
}

// ckSlot is one generation of the double-buffered checkpoint state that
// is cheap enough to capture wholesale each dispatch: per-rank logical
// meters, power-method scalars, per-rank trace sequence numbers (the
// rollback markers need them to segment committed from aborted events),
// and the phase recorder's accumulated rows. All storage is pooled in the
// slot and reused — after the first checkpoint of each operation shape
// the capture path performs no allocations.
type ckSlot struct {
	meters   []machine.Meters
	pmLambda []float64
	pmPrev   []float64
	seqs     []int64
	phases   []phaseSnap
	backing  []int64
}

// ckStore is the session's incremental checkpoint store: two alternating
// scalar slots plus a single persistent per-rank shadow mirror of the
// chunk arenas with page fingerprints. One shadow suffices because a
// rollback always targets the latest dispatch boundary, and the host
// syncs the shadow only while every rank is parked — the copy cannot be
// torn by a rank crash.
type ckStore struct {
	slots [2]ckSlot
	turn  int
	// shadow[r] mirrors rank r's committed chunk arena; prints[r] holds
	// its page fingerprints, maintained incrementally (only pages under a
	// dirty span are re-hashed at checkpoint time).
	shadow [][]float64
	prints [][]uint64
}

func newCkStore(rks []*sessionRank) *ckStore {
	ck := &ckStore{
		shadow: make([][]float64, len(rks)),
		prints: make([][]uint64, len(rks)),
	}
	ck.resync(rks)
	return ck
}

// resync rebuilds the shadow mirrors against freshly (re)allocated chunk
// arenas (session open, or an arena-growing ApplyBatch). Chunk arenas
// start zeroed and are only ever written inside their owned spans, so a
// zeroed shadow is already a faithful mirror — no full-arena copy is
// needed here or anywhere else.
func (ck *ckStore) resync(rks []*sessionRank) {
	for r, rk := range rks {
		n := len(rk.chunk)
		if len(ck.shadow[r]) != n {
			ck.shadow[r] = make([]float64, n)
			ck.prints[r] = make([]uint64, (n+checkpointPageWords-1)/checkpointPageWords)
		} else {
			sh := ck.shadow[r]
			for i := range sh {
				sh[i] = 0
			}
		}
		sh := ck.shadow[r]
		for pg := range ck.prints[r] {
			lo, hi := pageBounds(pg, n)
			ck.prints[r][pg] = pageprint(sh[lo:hi])
		}
	}
}

// syncDirty folds rank r's owned chunk spans into the shadow and
// re-fingerprints exactly the pages they cover, returning the word count
// copied. Spans are visited in ascending arena order (owned rows are laid
// out by local index k), so the page dedup below only needs to remember
// the last page hashed.
func (ck *ckStore) syncDirty(r int, rk *sessionRank) int64 {
	sh := ck.shadow[r]
	var words int64
	for k := range rk.lay.rows {
		lo := k*rk.b + rk.lay.myLo[k]
		hi := k*rk.b + rk.lay.myHi[k]
		if hi <= lo {
			continue
		}
		copy(sh[lo:hi], rk.chunk[lo:hi])
		words += int64(hi - lo)
	}
	// Re-hash after all spans landed: adjacent spans may share a page, and
	// hashing it mid-copy would freeze a stale prefix into the fingerprint.
	prints := ck.prints[r]
	last := -1
	for k := range rk.lay.rows {
		lo := k*rk.b + rk.lay.myLo[k]
		hi := k*rk.b + rk.lay.myHi[k]
		if hi <= lo {
			continue
		}
		for pg := lo / checkpointPageWords; pg <= (hi-1)/checkpointPageWords; pg++ {
			if pg <= last {
				continue
			}
			plo, phi := pageBounds(pg, len(sh))
			prints[pg] = pageprint(sh[plo:phi])
			last = pg
		}
	}
	return words
}

func pageBounds(pg, n int) (lo, hi int) {
	lo = pg * checkpointPageWords
	hi = lo + checkpointPageWords
	if hi > n {
		hi = n
	}
	return lo, hi
}

// pageprint is FNV-1a over a page's IEEE-754 bit patterns — the same
// construction (and constants) the reliable transport uses for payload
// checksums, applied here as the Merkle leaf over a checkpoint page.
func pageprint(words []float64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, v := range words {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= 0x100000001b3
		}
	}
	return h
}

// checkpoint captures the committed state at a dispatch boundary (all
// ranks parked, so the host may read their counters and arenas). Only
// state the operation's dirtyKind can mutate is copied: a dirtyNone
// checkpoint moves no arena words at all. Steady state this path
// allocates nothing — the slots are double-buffered and pooled.
func (s *Session) checkpoint(pr *phaseRecorder, dk dirtyKind) *ckSlot {
	start := time.Now()
	ck := s.ck
	slot := &ck.slots[ck.turn]
	ck.turn ^= 1
	p := s.part.P
	if slot.meters == nil {
		slot.meters = make([]machine.Meters, p)
		slot.pmLambda = make([]float64, p)
		slot.pmPrev = make([]float64, p)
		slot.seqs = make([]int64, p)
	}
	for r := 0; r < p; r++ {
		slot.meters[r] = s.cur.h.RankMeters(r)
		slot.pmLambda[r] = s.rk[r].pmLambda
		slot.pmPrev[r] = s.rk[r].pmPrev
		slot.seqs[r] = s.cur.h.RankEventSeq(r)
	}
	if dk == dirtyIterate {
		var words int64
		for r := 0; r < p; r++ {
			words += ck.syncDirty(r, s.rk[r])
		}
		s.stats.CheckpointWords += words
	}
	if pr != nil {
		slot.phases, slot.backing = pr.snapshotInto(slot.phases, slot.backing)
	} else {
		slot.phases = slot.phases[:0]
	}
	s.stats.CheckpointNanos += time.Since(start).Nanoseconds()
	return slot
}

// restore rolls every rank back to the checkpoint: logical meters (wire
// meters keep running — that is where recovery overhead belongs), the
// chunk iterate from the shadow mirror, the power-method scalars, and the
// phase recorder rows. Collective groups are dropped so they rebind to
// the current Comm on the next use (a respawned rank and a relaunched
// machine both carry fresh Comms).
//
// Every restored arena is then re-verified page by page against the
// checkpoint-time fingerprints — on the in-place rollback path and on the
// degraded-relaunch path alike. A mismatch is surfaced as a
// RestoreMismatchError (plus a trace event and a stats counter), never
// absorbed into a replay.
func (s *Session) restore(ck *ckSlot, pr *phaseRecorder) error {
	start := time.Now()
	l := s.cur
	p := s.part.P
	for r := 0; r < p; r++ {
		l.h.RestoreMeters(r, ck.meters[r], false)
		copy(s.rk[r].chunk, s.ck.shadow[r])
		s.rk[r].pmLambda = ck.pmLambda[r]
		s.rk[r].pmPrev = ck.pmPrev[r]
		s.rk[r].world = nil
	}
	if pr != nil {
		pr.restore(ck.phases)
	}
	s.stats.Verifications++
	pages := 0
	for r := 0; r < p; r++ {
		chunk := s.rk[r].chunk
		prints := s.ck.prints[r]
		for pg := range prints {
			lo, hi := pageBounds(pg, len(chunk))
			if pageprint(chunk[lo:hi]) != prints[pg] {
				s.stats.Mismatches++
				l.h.Emit(r, machine.Event{Kind: machine.EventRestoreMismatch, From: r, To: r, Step: pg})
				return &RestoreMismatchError{Rank: r, Page: pg}
			}
		}
		pages += len(prints)
	}
	l.h.Emit(0, machine.Event{Kind: machine.EventRestoreVerify, From: 0, To: 0, Words: pages, Step: -1})
	s.stats.Rollbacks++
	s.stats.RestoreNanos += time.Since(start).Nanoseconds()
	// Per-rank rollback markers carrying the checkpoint-time event
	// sequence: every logical event a rank emitted at or after Step
	// belongs to the aborted attempt (see obs.CheckCommittedAgainstReport).
	for r := 0; r < p; r++ {
		l.h.Emit(r, machine.Event{Kind: machine.EventRecoveryEnd, From: r, To: r, Step: int(ck.seqs[r])})
	}
	return nil
}
