package parallel

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/machine"
	"repro/internal/tensor"
)

// RunRowBaseline executes the natural 1D row-partition parallel STTSV on
// the simulator: processor p owns a contiguous range of leading indices i,
// stores the packed lower-tetrahedron rows a_ijk (i in range, i >= j >= k),
// and owns the matching ranges of x and y.
//
// Because an element a_ijk contributes to y_i, y_j and y_k, every
// processor needs the full input vector (an all-gather, ≈ n words
// received) and produces partial results across the whole output (a
// reduce-scatter, ≈ n words sent): Θ(n) communication per processor
// independent of P. This is the baseline Algorithm 5's Θ(n/P^{1/3})
// improves upon (experiment E6).
func RunRowBaseline(a *tensor.Symmetric, x []float64, p int) (*Result, error) {
	return RunRowBaselineWith(a, x, p, machine.RunConfig{})
}

// RunRowBaselineWith is RunRowBaseline on a configured machine (fault
// transport, watchdog, observer).
func RunRowBaselineWith(a *tensor.Symmetric, x []float64, p int, cfg machine.RunConfig) (*Result, error) {
	if a == nil {
		return nil, fmt.Errorf("parallel: row baseline requires a tensor")
	}
	n := a.N
	if len(x) != n {
		return nil, fmt.Errorf("parallel: tensor dimension %d, vector length %d", n, len(x))
	}
	if p < 1 || p > n {
		return nil, fmt.Errorf("parallel: row baseline needs 1 <= P <= n, got P=%d n=%d", p, n)
	}

	// Contiguous row ranges, as even as possible.
	bounds := make([]int, p+1)
	for r := 0; r <= p; r++ {
		bounds[r] = r * n / p
	}

	finalY := make([][]float64, p)
	pr := newPhaseRecorder(p, "all-gather", "local", "reduce-scatter")

	report, err := machine.RunWith(p, cfg, func(c *machine.Comm) {
		me := c.Rank()
		lo, hi := bounds[me], bounds[me+1]

		// All-gather x: every rank contributes its owned range.
		world := collective.World(c)
		var pieces [][]float64
		pr.comm(c, "all-gather", func() { pieces = world.AllGatherV(1, x[lo:hi]) })
		xs := make([]float64, n)
		pos := 0
		for _, piece := range pieces {
			pos += copy(xs[pos:], piece)
		}

		// Local compute over owned packed rows (the Algorithm 4 update
		// rules restricted to leading index i in [lo, hi)).
		partial := make([]float64, n)
		pr.local(c, "local", func() int64 {
			var count int64
			for i := lo; i < hi; i++ {
				xi := xs[i]
				for j := 0; j < i; j++ {
					xj := xs[j]
					for k := 0; k < j; k++ {
						v := a.At(i, j, k)
						xk := xs[k]
						partial[i] += 2 * v * xj * xk
						partial[j] += 2 * v * xi * xk
						partial[k] += 2 * v * xi * xj
					}
					count += 3 * int64(j)
					v := a.At(i, j, j)
					partial[i] += v * xj * xj
					partial[j] += 2 * v * xi * xj
					count += 2
				}
				for k := 0; k < i; k++ {
					v := a.At(i, i, k)
					partial[i] += 2 * v * xi * xs[k]
					partial[k] += v * xi * xi
				}
				count += 2 * int64(i)
				partial[i] += a.At(i, i, i) * xi * xi
				count++
			}
			return count
		})

		// Reduce-scatter the partials to the row owners.
		contrib := make([][]float64, p)
		for r := 0; r < p; r++ {
			contrib[r] = partial[bounds[r]:bounds[r+1]]
		}
		pr.comm(c, "reduce-scatter", func() { finalY[me] = world.ReduceScatterSum(2, contrib) })
	})
	if err != nil {
		return nil, err
	}

	y := make([]float64, n)
	for r := 0; r < p; r++ {
		copy(y[bounds[r]:bounds[r+1]], finalY[r])
	}
	pr.meter("all-gather").Steps = p - 1
	pr.meter("reduce-scatter").Steps = p - 1
	return &Result{
		Y:       y,
		Report:  report,
		Phases:  pr.results(),
		Ternary: pr.meter("local").Ternary,
		Steps:   2 * (p - 1),
	}, nil
}

// RunSequenceBaseline executes the two-step "sequence approach" discussed
// in §8: first M = A ×₃ x as a parallel matricized product, then
// y = M·x. Processor p owns the dense (non-symmetric) slab of rows
// A[i, :, :] for its contiguous i-range plus the matching ranges of x and
// y; it all-gathers x (the only communication, ≈ n words per processor),
// forms its slab of M locally and multiplies.
//
// The trade-off the paper describes: ≈ 2n³ elementary operations (no
// symmetry reuse — twice Algorithm 5's work) and Ω(n) bandwidth when
// P <= n, versus Algorithm 5's n³ operations and Θ(n/P^{1/3}) words.
func RunSequenceBaseline(a *tensor.Symmetric, x []float64, p int) (*Result, error) {
	return RunSequenceBaselineWith(a, x, p, machine.RunConfig{})
}

// RunSequenceBaselineWith is RunSequenceBaseline on a configured machine.
func RunSequenceBaselineWith(a *tensor.Symmetric, x []float64, p int, cfg machine.RunConfig) (*Result, error) {
	if a == nil {
		return nil, fmt.Errorf("parallel: sequence baseline requires a tensor")
	}
	n := a.N
	if len(x) != n {
		return nil, fmt.Errorf("parallel: tensor dimension %d, vector length %d", n, len(x))
	}
	if p < 1 || p > n {
		return nil, fmt.Errorf("parallel: sequence baseline needs 1 <= P <= n, got P=%d n=%d", p, n)
	}
	bounds := make([]int, p+1)
	for r := 0; r <= p; r++ {
		bounds[r] = r * n / p
	}

	finalY := make([][]float64, p)
	pr := newPhaseRecorder(p, "all-gather", "local")
	report, err := machine.RunWith(p, cfg, func(c *machine.Comm) {
		me := c.Rank()
		lo, hi := bounds[me], bounds[me+1]

		// All-gather x — the only communication of the approach.
		world := collective.World(c)
		var pieces [][]float64
		pr.comm(c, "all-gather", func() { pieces = world.AllGatherV(1, x[lo:hi]) })
		xs := make([]float64, n)
		pos := 0
		for _, piece := range pieces {
			pos += copy(xs[pos:], piece)
		}

		// M[i, j] = Σ_k a_ijk x_k for owned rows, then y_i = Σ_j M[i,j] x_j.
		y := make([]float64, hi-lo)
		pr.local(c, "local", func() int64 {
			mrow := make([]float64, n)
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					s := 0.0
					for k := 0; k < n; k++ {
						s += a.At(i, j, k) * xs[k]
					}
					mrow[j] = s
				}
				acc := 0.0
				for j := 0; j < n; j++ {
					acc += mrow[j] * xs[j]
				}
				y[i-lo] = acc
			}
			// The dense two-step product performs ~2n³/P multiply pairs per
			// rank; report the ternary-equivalent a·x·x count for the slab.
			return int64(hi-lo) * int64(n) * int64(n)
		})
		finalY[me] = y
	})
	if err != nil {
		return nil, err
	}

	y := make([]float64, n)
	for r := 0; r < p; r++ {
		copy(y[bounds[r]:bounds[r+1]], finalY[r])
	}
	pr.meter("all-gather").Steps = p - 1
	return &Result{
		Y:       y,
		Report:  report,
		Phases:  pr.results(),
		Ternary: pr.meter("local").Ternary,
		Steps:   p - 1,
	}, nil
}
