package parallel

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/tensor"
)

// RankBlocks caches the extracted per-rank tetrahedral block sets
// (TB₃(R_p) ∪ N_p ∪ D_p) of one tensor under one partition and block edge.
// Repeated simulated applications — the higher-order power method driving
// Run once per iteration, or repeated MTTKRP products — pass it via
// Options.Blocks so the tensor is packed once instead of once per
// application. Each rank's set is a contiguous kind-grouped
// tensor.BlockPacked, exactly the ≈ n³/6P share of §6.1.3.
//
// The blocks are read-only after packing and safe to share across
// concurrent runs.
type RankBlocks struct {
	// P and B identify the configuration the cache was built for; Run
	// rejects a mismatched cache.
	P, B int
	// N is the dimension of the packed tensor (0 when packed from nil).
	N   int
	per []*tensor.BlockPacked
}

// PackRankBlocks extracts every rank's block set. A nil tensor yields zero
// blocks (pure communication measurements).
func PackRankBlocks(a *tensor.Symmetric, part *partition.Tetrahedral, b int) (*RankBlocks, error) {
	if part == nil {
		return nil, fmt.Errorf("parallel: nil partition")
	}
	if b < 1 {
		return nil, fmt.Errorf("parallel: block edge %d", b)
	}
	rb := &RankBlocks{P: part.P, B: b, per: make([]*tensor.BlockPacked, part.P)}
	if a != nil {
		rb.N = a.N
	}
	for p := 0; p < part.P; p++ {
		cs := part.Blocks(p)
		coords := make([][3]int, len(cs))
		for i, c := range cs {
			coords[i] = [3]int{c.I, c.J, c.K}
		}
		rb.per[p] = tensor.PackBlocks(a, coords, b)
	}
	return rb, nil
}

// Rank returns rank p's packed block set.
func (rb *RankBlocks) Rank(p int) []*tensor.Block { return rb.per[p].Blocks }

// Words returns the total packed storage across all ranks in 8-byte words.
func (rb *RankBlocks) Words() int {
	total := 0
	for _, bp := range rb.per {
		total += bp.Words()
	}
	return total
}

// rankBlocksFor resolves the per-rank block sets for a run: the supplied
// cache when compatible, otherwise a fresh extraction.
func rankBlocksFor(opts *Options, a *tensor.Symmetric, part *partition.Tetrahedral, b int) (*RankBlocks, error) {
	if rb := opts.Blocks; rb != nil {
		n := 0
		if a != nil {
			n = a.N
		}
		if rb.P != part.P || rb.B != b || rb.N != n {
			return nil, fmt.Errorf("parallel: cached blocks built for (P=%d, b=%d, n=%d), run needs (P=%d, b=%d, n=%d)",
				rb.P, rb.B, rb.N, part.P, b, n)
		}
		return rb, nil
	}
	return PackRankBlocks(a, part, b)
}
