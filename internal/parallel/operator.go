package parallel

import (
	"repro/internal/sparse"
	"repro/internal/sttsv"
)

// localOperator is the session's rank-local compute seam: the one point
// where the staged x arena is turned into partial y contributions. The
// communication structure around it — gather, reduce-scatter, the power
// method's all-reduce, checkpointing, recovery — is operator-agnostic,
// so a dense tensor, a packed sparse tensor, and (with its own exchange
// shape) a low-rank CP operator all run through the same Session.
type localOperator interface {
	// contribute runs rank me's local compute for cols staged columns,
	// reading x row blocks and accumulating y row blocks through the
	// rank's arena accessors, and returns the ternary-multiplication
	// count for the logical compute meters.
	contribute(me int, rk *sessionRank, b, cols int) int64
}

// denseOp applies a rank's dense packed block set through the shared
// executor (tiled kernels, or the scalar reference kernel under
// Options.ScalarKernel).
type denseOp struct {
	exec   *sttsv.Executor
	blocks *RankBlocks
}

func (o *denseOp) contribute(me int, rk *sessionRank, b, cols int) int64 {
	var st sttsv.Stats
	o.exec.ContributeCols(rk.scratch, o.blocks.Rank(me), b, cols, rk.xRowCol, rk.yRowCol, &st)
	return st.TernaryMults
}

// sparseOp applies a rank's packed sparse block set. Blocks are walked
// sequentially in their kind-grouped order and each sparse kernel
// reproduces the scalar dense kernel's association order, so the output
// bits match a dense scalar session exactly while the work is O(nnz)
// instead of O(b³) per block. The arena accessors return reslices of the
// resident arenas, so the steady state allocates nothing.
type sparseOp struct {
	blocks *SparseRankBlocks
}

func (o *sparseOp) contribute(me int, rk *sessionRank, b, cols int) int64 {
	var st sttsv.Stats
	blocks := o.blocks.Rank(me)
	for l := 0; l < cols; l++ {
		for _, blk := range blocks {
			sparse.BlockApply(blk,
				rk.xRowCol(blk.I, l), rk.xRowCol(blk.J, l), rk.xRowCol(blk.K, l),
				rk.yRowCol(blk.I, l), rk.yRowCol(blk.J, l), rk.yRowCol(blk.K, l), &st)
		}
	}
	return st.TernaryMults
}
