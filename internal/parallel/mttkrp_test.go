package parallel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
	"repro/internal/mttkrp"
	"repro/internal/partition"
	"repro/internal/steiner"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

func TestParallelMTTKRPCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	part := sphericalPart(t, 2)
	b := 6
	n := part.M * b
	r := 3
	a := tensor.Random(n, rng)
	x := la.NewMatrix(n, r)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := mttkrp.Fused(a, x, nil)
	for _, wiring := range []Wiring{WiringP2P, WiringAllToAll} {
		y, _, err := RunMTTKRP(a, x, r, Options{Part: part, B: b, Wiring: wiring})
		if err != nil {
			t.Fatalf("wiring %v: %v", wiring, err)
		}
		for i := range want.Data {
			if math.Abs(y.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("wiring %v: differs at %d: %g vs %g", wiring, i, y.Data[i], want.Data[i])
			}
		}
	}
}

func TestParallelMTTKRPCommIsRTimesSTTSV(t *testing.T) {
	// The multi-vector run must send exactly r times the single-vector
	// words, with the same message count (latency amortization).
	part := sphericalPart(t, 2)
	b := 6
	n := part.M * b
	r := 4
	x := make([]float64, n)
	single, err := Run(nil, x, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	_, multi, err := RunMTTKRP(nil, nil, r, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < part.P; rank++ {
		if multi.Report.SentWords[rank] != int64(r)*single.Report.SentWords[rank] {
			t.Fatalf("rank %d: multi sent %d, single sent %d (r=%d)",
				rank, multi.Report.SentWords[rank], single.Report.SentWords[rank], r)
		}
		if multi.Report.SentMsgs[rank] != single.Report.SentMsgs[rank] {
			t.Fatalf("rank %d: message counts differ: %d vs %d",
				rank, multi.Report.SentMsgs[rank], single.Report.SentMsgs[rank])
		}
	}
}

func TestParallelMTTKRPTernaryTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	part := sphericalPart(t, 2)
	b := 6
	n := part.M * b
	r := 2
	a := tensor.Random(n, rng)
	x := la.NewMatrix(n, r)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	_, res, err := RunMTTKRP(a, x, r, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, tm := range res.Ternary {
		total += tm
	}
	if want := mttkrp.TernaryCount(n, r); total != want {
		t.Fatalf("total ternary %d, want %d", total, want)
	}
}

func TestParallelMTTKRPValidation(t *testing.T) {
	part := sphericalPart(t, 2)
	if _, _, err := RunMTTKRP(nil, nil, 2, Options{Part: nil, B: 6}); err == nil {
		t.Error("nil partition accepted")
	}
	if _, _, err := RunMTTKRP(nil, nil, 0, Options{Part: part, B: 6}); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, _, err := RunMTTKRP(nil, la.NewMatrix(part.M*6+1, 2), 2, Options{Part: part, B: 6}); err == nil {
		t.Error("oversized factors accepted")
	}
	a := tensor.NewSymmetric(3)
	if _, _, err := RunMTTKRP(a, la.NewMatrix(5, 2), 2, Options{Part: part, B: 6}); err == nil {
		t.Error("mismatched tensor accepted")
	}
}

func TestParallelMTTKRPWithPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	part := sphericalPart(t, 2)
	b := 6
	n := part.M*b - 5
	r := 2
	a := tensor.Random(n, rng)
	x := la.NewMatrix(n, r)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := mttkrp.Fused(a, x, nil)
	y, _, err := RunMTTKRP(a, x, r, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(y.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("padded MTTKRP differs at %d", i)
		}
	}
}

func TestAlg5OnDoubledSystem(t *testing.T) {
	// End-to-end correctness on a partition from the doubled SQS(16)
	// system: P=140 simulated processors, uneven vector chunks (b < |Qi|).
	sys, err := steiner.SQSDoubled(1)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.New(sys)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(63))
	b := 7
	n := part.M * b // 112
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	want := sttsv.Packed(a, x, nil)
	res, err := Run(a, x, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Y, want); d > 1e-9 {
		t.Fatalf("SQS(16) run differs by %g", d)
	}
	// Every pair of distinct SQS(16) blocks shares 0 or 2 points, so the
	// schedule carries 2 rows per transfer; steps = peers = 2-sharing
	// count.
	if res.Steps >= part.P-1 {
		t.Fatalf("schedule uses %d steps, all-to-all would use %d", res.Steps, part.P-1)
	}
}
