package parallel

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/schedule"
)

// TestExecutedMessagesConformToSchedule traces every message of an
// Algorithm 5 run and checks that the gather and reduce phases execute
// exactly the planned schedule: same (from, to) pairs at the same steps,
// and nothing else — end-to-end evidence that the simulator runs the §7.2
// communication plan rather than merely counting like it.
func TestExecutedMessagesConformToSchedule(t *testing.T) {
	part := sphericalPart(t, 2)
	sched, err := schedule.Build(part)
	if err != nil {
		t.Fatal(err)
	}
	b := 6

	// Re-run the algorithm under tracing. We duplicate the Run wiring via
	// RunTraced by invoking Run with a pre-built schedule and collecting
	// events through the machine hook exposed for this purpose.
	var trace machine.Trace
	origRun := func() error {
		// Run() uses machine.RunTimeout internally; to trace we inline
		// the same call path through a tiny shim: execute Run normally
		// and separately execute the communication plan under RunTraced
		// to compare. Instead, simplest faithful approach: use RunTraced
		// with the exact same per-rank plan execution.
		plans := buildPlans(part, sched)
		_, err := machine.RunTraced(part.P, 0, trace.Observer(), func(c *machine.Comm) {
			me := c.Rank()
			// Execute only the communication skeleton (empty chunks are
			// enough to validate the pattern; word counts are checked by
			// other tests).
			chunk := func(row int) []float64 {
				lo, hi, _ := part.OwnedRange(me, row, b)
				return make([]float64, hi-lo)
			}
			runScheduledPhase(c, plans[me], 100, func(peer int, rows []int) []float64 {
				var payload []float64
				for _, row := range rows {
					payload = append(payload, chunk(row)...)
				}
				return payload
			}, func(peer int, rows []int, payload []float64) {})
		})
		return err
	}
	if err := origRun(); err != nil {
		t.Fatal(err)
	}

	// Index the planned transfers by (step, from, to).
	type key struct{ step, from, to int }
	planned := make(map[key]bool)
	for si, step := range sched.Steps {
		for _, tr := range step {
			planned[key{si, tr.From, tr.To}] = true
		}
	}

	events := trace.Events()
	if len(events) != len(planned) {
		t.Fatalf("executed %d messages, schedule plans %d", len(events), len(planned))
	}
	for _, e := range events {
		step := e.Tag - 100
		if step < 0 || step >= sched.NumSteps() {
			t.Fatalf("message with unexpected tag %d", e.Tag)
		}
		k := key{step, e.From, e.To}
		if !planned[k] {
			t.Fatalf("executed unplanned transfer %+v", k)
		}
		delete(planned, k)
	}
	if len(planned) != 0 {
		t.Fatalf("%d planned transfers never executed", len(planned))
	}
}

// TestTraceCollector exercises the Trace helper directly.
func TestTraceCollector(t *testing.T) {
	var trace machine.Trace
	_, err := machine.RunTraced(2, 0, trace.Observer(), func(c *machine.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2})
		} else {
			c.Recv(0, 7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := trace.Events()
	if len(ev) != 1 || ev[0].From != 0 || ev[0].To != 1 || ev[0].Tag != 7 || ev[0].Words != 2 {
		t.Fatalf("trace = %+v", ev)
	}
}
