package parallel

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/schedule"
)

// TestExecutedMessagesConformToSchedule traces every message of an
// Algorithm 5 run and checks that the gather and reduce phases execute
// exactly the planned schedule: same (from, to) pairs at the same steps,
// and nothing else — end-to-end evidence that the simulator runs the §7.2
// communication plan rather than merely counting like it.
func TestExecutedMessagesConformToSchedule(t *testing.T) {
	part := sphericalPart(t, 2)
	sched, err := schedule.Build(part)
	if err != nil {
		t.Fatal(err)
	}
	b := 6

	// Execute only the communication skeleton under an observer (empty
	// chunks are enough to validate the pattern; word counts are checked
	// by other tests).
	var rec obs.Recorder
	plans := buildPlans(part, sched)
	_, err = machine.RunWith(part.P, machine.RunConfig{Observer: rec.Observer()}, func(c *machine.Comm) {
		me := c.Rank()
		chunk := func(row int) []float64 {
			lo, hi, _ := part.OwnedRange(me, row, b)
			return make([]float64, hi-lo)
		}
		runScheduledPhase(c, plans[me], 100, func(peer int, rows []int) []float64 {
			var payload []float64
			for _, row := range rows {
				payload = append(payload, chunk(row)...)
			}
			return payload
		}, func(peer int, rows []int, payload []float64) {})
	})
	if err != nil {
		t.Fatal(err)
	}

	// Index the planned transfers by (step, from, to).
	type key struct{ step, from, to int }
	planned := make(map[key]bool)
	for si, step := range sched.Steps {
		for _, tr := range step {
			planned[key{si, tr.From, tr.To}] = true
		}
	}

	var events []machine.Event
	for _, e := range rec.Trace().Events {
		if e.Kind == machine.EventSend && !e.Wire {
			events = append(events, e)
		}
	}
	if len(events) != len(planned) {
		t.Fatalf("executed %d messages, schedule plans %d", len(events), len(planned))
	}
	for _, e := range events {
		step := e.Tag - 100
		if step < 0 || step >= sched.NumSteps() {
			t.Fatalf("message with unexpected tag %d", e.Tag)
		}
		k := key{step, e.From, e.To}
		if !planned[k] {
			t.Fatalf("executed unplanned transfer %+v", k)
		}
		delete(planned, k)
	}
	if len(planned) != 0 {
		t.Fatalf("%d planned transfers never executed", len(planned))
	}
}

// TestTraceCollector exercises the deprecated machine.Trace shim: its
// Sends view must keep reporting exactly the logical sends so pre-obs
// callers survive the richer event stream.
func TestTraceCollector(t *testing.T) {
	var trace machine.Trace
	_, err := machine.RunWith(2, machine.RunConfig{Observer: trace.Observer()}, func(c *machine.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2})
		} else {
			c.Recv(0, 7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ev := trace.Sends()
	if len(ev) != 1 || ev[0].From != 0 || ev[0].To != 1 || ev[0].Tag != 7 || ev[0].Words != 2 {
		t.Fatalf("trace = %+v", ev)
	}
}
