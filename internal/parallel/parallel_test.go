package parallel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/partition"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

const tol = 1e-9

func randVec(n int, rng *rand.Rand) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func maxAbsDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}

func sphericalPart(t testing.TB, q int) *partition.Tetrahedral {
	t.Helper()
	part, err := partition.NewSpherical(q)
	if err != nil {
		t.Fatal(err)
	}
	return part
}

func TestAlg5CorrectBothWirings(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	part := sphericalPart(t, 2) // m=5, P=10, |Qi|=6
	for _, wiring := range []Wiring{WiringP2P, WiringAllToAll} {
		for _, b := range []int{6, 12, 7} { // divisible and non-divisible chunking
			n := part.M * b
			a := tensor.Random(n, rng)
			x := randVec(n, rng)
			want := sttsv.Packed(a, x, nil)
			res, err := Run(a, x, Options{Part: part, B: b, Wiring: wiring})
			if err != nil {
				t.Fatalf("wiring=%v b=%d: %v", wiring, b, err)
			}
			if d := maxAbsDiff(res.Y, want); d > tol {
				t.Fatalf("wiring=%v b=%d: differs from sequential by %g", wiring, b, d)
			}
		}
	}
}

func TestAlg5CorrectWithPadding(t *testing.T) {
	// n not a multiple of m·b handled via zero padding.
	rng := rand.New(rand.NewSource(51))
	part := sphericalPart(t, 2)
	b := 6
	n := part.M*b - 4
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	want := sttsv.Packed(a, x, nil)
	for _, wiring := range []Wiring{WiringP2P, WiringAllToAll} {
		res, err := Run(a, x, Options{Part: part, B: b, Wiring: wiring})
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(res.Y, want); d > tol {
			t.Fatalf("wiring=%v: padded run differs by %g", wiring, d)
		}
	}
}

func TestAlg5CorrectQ3(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	part := sphericalPart(t, 3) // m=10, P=30, |Qi|=12
	b := 12
	n := part.M * b // 120
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	want := sttsv.Packed(a, x, nil)
	res, err := Run(a, x, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Y, want); d > tol {
		t.Fatalf("q=3 run differs by %g", d)
	}
}

func TestAlg5CommMatchesTheoremExactly(t *testing.T) {
	// E1: with q²+1 | n and q(q+1) | b, every processor sends exactly
	// n(q+1)/(q²+1) − n/P words per vector with the P2P wiring — the
	// §7.2.2 value whose total matches the lower bound's leading term.
	for _, q := range []int{2, 3} {
		part := sphericalPart(t, q)
		b := q * (q + 1) * 2
		n := part.M * b
		x := make([]float64, n)
		res, err := Run(nil, x, Options{Part: part, B: b, Wiring: WiringP2P})
		if err != nil {
			t.Fatal(err)
		}
		perVector := int64(n*(q+1)/(q*q+1) - n/part.P)
		gather, scatter := res.Phase("gather"), res.Phase("reduce-scatter")
		if gather == nil || scatter == nil {
			t.Fatalf("q=%d: missing phase meters: %+v", q, res.Phases)
		}
		for r := 0; r < part.P; r++ {
			if gather.SentWords[r] != perVector {
				t.Fatalf("q=%d rank %d: gather sent %d, want %d", q, r, gather.SentWords[r], perVector)
			}
			if scatter.SentWords[r] != perVector {
				t.Fatalf("q=%d rank %d: scatter sent %d, want %d", q, r, scatter.SentWords[r], perVector)
			}
			if res.Report.RecvWords[r] != 2*perVector {
				t.Fatalf("q=%d rank %d: received %d, want %d", q, r, res.Report.RecvWords[r], 2*perVector)
			}
		}
		// Against the cost model.
		if got, want := float64(2*perVector), costmodel.OptimalWords(n, q); math.Abs(got-want) > 1e-9 {
			t.Fatalf("q=%d: measured %g vs model %g", q, got, want)
		}
	}
}

func TestAlg5AllToAllCostsTwice(t *testing.T) {
	// E4: the All-to-All wiring sends 2·b/(q(q+1))·(P−1) words per vector
	// per processor = 2n/(q+1)·(1−1/P), twice the optimal leading term.
	for _, q := range []int{2, 3} {
		part := sphericalPart(t, q)
		b := q * (q + 1)
		n := part.M * b
		x := make([]float64, n)
		res, err := Run(nil, x, Options{Part: part, B: b, Wiring: WiringAllToAll})
		if err != nil {
			t.Fatal(err)
		}
		perVector := int64(2 * b / (q * (q + 1)) * (part.P - 1))
		gather, scatter := res.Phase("gather"), res.Phase("reduce-scatter")
		for r := 0; r < part.P; r++ {
			if gather.SentWords[r] != perVector {
				t.Fatalf("q=%d rank %d: gather sent %d, want %d", q, r, gather.SentWords[r], perVector)
			}
		}
		total := float64(gather.SentWords[0] + scatter.SentWords[0])
		if want := costmodel.AllToAllWords(n, q); math.Abs(total-want) > 1e-9 {
			t.Fatalf("q=%d: measured %g vs model %g", q, total, want)
		}
		// Ratio to the optimal wiring tends to 2 as q grows; the exact
		// finite-q value (ignoring the -n/P terms) is 2(q²+1)/(q+1)².
		ratio := costmodel.AllToAllWords(n, q) / costmodel.OptimalWords(n, q)
		approx := 2 * float64(q*q+1) / float64((q+1)*(q+1))
		if math.Abs(ratio-approx) > 0.2 {
			t.Fatalf("q=%d: all-to-all/optimal ratio %g, want ≈ %g", q, ratio, approx)
		}
	}
}

func TestAlg5StepCounts(t *testing.T) {
	part := sphericalPart(t, 3)
	b := 12
	n := part.M * b
	x := make([]float64, n)
	res, err := Run(nil, x, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	if want := 26; res.Steps != want { // q³/2+3q²/2−1 for q=3
		t.Fatalf("P2P steps = %d, want %d", res.Steps, want)
	}
	res2, err := Run(nil, x, Options{Part: part, B: b, Wiring: WiringAllToAll})
	if err != nil {
		t.Fatal(err)
	}
	if want := part.P - 1; res2.Steps != want {
		t.Fatalf("all-to-all steps = %d, want %d", res2.Steps, want)
	}
}

func TestAlg5MessageLatency(t *testing.T) {
	// With the P2P wiring a processor sends one message per schedule step
	// per phase: 2·(q³/2+3q²/2−1) messages.
	part := sphericalPart(t, 2)
	b := 6
	x := make([]float64, part.M*b)
	res, err := Run(nil, x, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2 * 9) // q=2: 9 steps per phase
	for r := 0; r < part.P; r++ {
		if res.Report.SentMsgs[r] != want {
			t.Fatalf("rank %d sent %d messages, want %d", r, res.Report.SentMsgs[r], want)
		}
	}
}

func TestAlg5LoadBalance(t *testing.T) {
	// E2: per-processor ternary multiplications are bounded by the §7.1
	// bound and sum to the n²(n+1)/2 total of Algorithm 4.
	rng := rand.New(rand.NewSource(53))
	for _, q := range []int{2, 3} {
		part := sphericalPart(t, q)
		b := q * (q + 1)
		n := part.M * b
		a := tensor.Random(n, rng)
		x := randVec(n, rng)
		res, err := Run(a, x, Options{Part: part, B: b, Wiring: WiringP2P})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		bound := costmodel.TernaryPerProcessorBound(q, b)
		for r, tm := range res.Ternary {
			total += tm
			if tm > bound {
				t.Fatalf("q=%d rank %d: %d ternary mults > bound %d", q, r, tm, bound)
			}
		}
		if want := costmodel.TernaryTotal(n); total != want {
			t.Fatalf("q=%d: total ternary %d, want %d", q, total, want)
		}
		// Leading-term balance: max/P-th within 20% of n³/2P for these
		// parameters.
		var mx int64
		for _, tm := range res.Ternary {
			if tm > mx {
				mx = tm
			}
		}
		lead := costmodel.TernaryLeading(n, part.P)
		if r := float64(mx) / lead; r > 1.6 {
			t.Fatalf("q=%d: max/leading = %g", q, r)
		}
	}
}

func TestAlg5ConservationAndTotals(t *testing.T) {
	part := sphericalPart(t, 2)
	b := 6
	x := make([]float64, part.M*b)
	for _, wiring := range []Wiring{WiringP2P, WiringAllToAll} {
		res, err := Run(nil, x, Options{Part: part, B: b, Wiring: wiring})
		if err != nil {
			t.Fatal(err)
		}
		var sent, recv int64
		for r := 0; r < part.P; r++ {
			sent += res.Report.SentWords[r]
			recv += res.Report.RecvWords[r]
		}
		if sent != recv {
			t.Fatalf("wiring=%v: sent %d != recv %d", wiring, sent, recv)
		}
	}
}

func TestRowBaselineCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for _, c := range []struct{ n, p int }{{30, 5}, {30, 30}, {17, 4}, {8, 1}} {
		a := tensor.Random(c.n, rng)
		x := randVec(c.n, rng)
		want := sttsv.Packed(a, x, nil)
		res, err := RunRowBaseline(a, x, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(res.Y, want); d > tol {
			t.Fatalf("n=%d P=%d: baseline differs by %g", c.n, c.p, d)
		}
	}
}

func TestRowBaselineCommIsThetaN(t *testing.T) {
	// E6: baseline sends ≈ 2n(1−1/P) words per processor; Algorithm 5
	// beats it by ≈ P^{1/3}.
	rng := rand.New(rand.NewSource(55))
	q := 3
	part := sphericalPart(t, q)
	b := q * (q + 1)
	n := part.M * b // 120
	a := tensor.Random(n, rng)
	x := randVec(n, rng)

	base, err := RunRowBaseline(a, x, part.P)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Run(a, x, Options{Part: part, B: b, Wiring: WiringP2P})
	if err != nil {
		t.Fatal(err)
	}
	baseWords := float64(base.Report.MaxSentWords())
	optWords := float64(opt.Report.MaxSentWords())
	if model := costmodel.RowPartitionWords(n, part.P); math.Abs(baseWords-model) > 0.05*model {
		t.Fatalf("baseline words %g vs model %g", baseWords, model)
	}
	ratio := baseWords / optWords
	cbrtP := math.Cbrt(float64(part.P))
	if ratio < 0.6*cbrtP || ratio > 1.8*cbrtP {
		t.Fatalf("baseline/optimal = %g, want ≈ P^(1/3) = %g", ratio, cbrtP)
	}
}

func TestRowBaselineTernaryTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	n, p := 24, 6
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	res, err := RunRowBaseline(a, x, p)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, tm := range res.Ternary {
		total += tm
	}
	if want := costmodel.TernaryTotal(n); total != want {
		t.Fatalf("ternary total %d, want %d", total, want)
	}
}

func TestRunValidation(t *testing.T) {
	part := sphericalPart(t, 2)
	x := make([]float64, part.M*6)
	if _, err := Run(nil, x, Options{Part: nil, B: 6}); err == nil {
		t.Error("nil partition accepted")
	}
	if _, err := Run(nil, x, Options{Part: part, B: 0}); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := Run(nil, make([]float64, part.M*6+1), Options{Part: part, B: 6}); err == nil {
		t.Error("oversized vector accepted")
	}
	a := tensor.NewSymmetric(10)
	if _, err := Run(a, x, Options{Part: part, B: 6}); err == nil {
		t.Error("mismatched tensor accepted")
	}
	if _, err := RunRowBaseline(nil, x, 3); err == nil {
		t.Error("nil tensor baseline accepted")
	}
	if _, err := RunRowBaseline(tensor.NewSymmetric(4), make([]float64, 4), 9); err == nil {
		t.Error("P > n baseline accepted")
	}
}

func BenchmarkAlg5Q2(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	part := sphericalPart(b, 2)
	blockEdge := 12
	n := part.M * blockEdge
	a := tensor.Random(n, rng)
	x := randVec(n, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(a, x, Options{Part: part, B: blockEdge, Wiring: WiringP2P}); err != nil {
			b.Fatal(err)
		}
	}
}
