package parallel

import "repro/internal/machine"

// PhaseMeter carries one labeled phase's per-rank communication and
// compute meters, measured from the machine's logical counters (snapshot
// deltas around the phase body — an independent code path from the trace
// events, which is what makes the trace-conformance suite meaningful).
// Phases with the same label accumulate: a power-method run reports one
// "gather" meter summed over all iterations.
type PhaseMeter struct {
	// Label names the phase: "gather", "local", "reduce-scatter",
	// "all-gather", "all-reduce".
	Label string
	// SentWords, RecvWords, SentMsgs, RecvMsgs are per-rank logical
	// traffic attributable to the phase.
	SentWords []int64
	RecvWords []int64
	SentMsgs  []int64
	RecvMsgs  []int64
	// Ternary counts ternary multiplications per rank (compute phases).
	Ternary []int64
	// Steps is the phase's communication step count: the schedule length
	// for a scheduled exchange (q³/2+3q²/2−1 for the spherical family),
	// P−1 per All-to-All, 0 for compute phases.
	Steps int
}

// MaxSentWords returns the phase's critical-path sent words.
func (m *PhaseMeter) MaxSentWords() int64 {
	var max int64
	for _, w := range m.SentWords {
		if w > max {
			max = w
		}
	}
	return max
}

// TotalSentWords sums the phase's sent words over all ranks.
func (m *PhaseMeter) TotalSentWords() int64 {
	var sum int64
	for _, w := range m.SentWords {
		sum += w
	}
	return sum
}

// TotalTernary sums the phase's ternary multiplications over all ranks.
func (m *PhaseMeter) TotalTernary() int64 {
	var sum int64
	for _, t := range m.Ternary {
		sum += t
	}
	return sum
}

// phaseRecorder builds the []PhaseMeter of a Result. All labels are
// registered host-side before the run, so during the run each rank only
// reads the shared index map and writes its own slice slots — no locks.
type phaseRecorder struct {
	p      int
	meters []*PhaseMeter
	index  map[string]int
}

func newPhaseRecorder(p int, labels ...string) *phaseRecorder {
	pr := &phaseRecorder{p: p, index: make(map[string]int, len(labels))}
	for _, label := range labels {
		if _, ok := pr.index[label]; ok {
			continue
		}
		pr.index[label] = len(pr.meters)
		pr.meters = append(pr.meters, &PhaseMeter{
			Label:     label,
			SentWords: make([]int64, p),
			RecvWords: make([]int64, p),
			SentMsgs:  make([]int64, p),
			RecvMsgs:  make([]int64, p),
			Ternary:   make([]int64, p),
		})
	}
	return pr
}

// meter returns the registered meter for label; it panics on an
// unregistered label (a driver bug, not a runtime condition).
func (pr *phaseRecorder) meter(label string) *PhaseMeter {
	return pr.meters[pr.index[label]]
}

// comm runs body inside BeginPhase/EndPhase markers and attributes the
// rank's logical meter deltas to the label.
func (pr *phaseRecorder) comm(c *machine.Comm, label string, body func()) {
	m := pr.meter(label)
	r := c.Rank()
	sw, rw, sm, rm := c.SentWords(), c.RecvWords(), c.SentMsgs(), c.RecvMsgs()
	c.BeginPhase(label)
	body()
	c.EndPhase()
	m.SentWords[r] += c.SentWords() - sw
	m.RecvWords[r] += c.RecvWords() - rw
	m.SentMsgs[r] += c.SentMsgs() - sm
	m.RecvMsgs[r] += c.RecvMsgs() - rm
}

// local runs a compute stage returning its ternary count, emitting the
// phase markers and the LocalCompute trace event, and attributes the
// count to the label.
func (pr *phaseRecorder) local(c *machine.Comm, label string, body func() int64) {
	m := pr.meter(label)
	c.BeginPhase(label)
	t := body()
	c.LocalCompute(t)
	c.EndPhase()
	m.Ternary[c.Rank()] += t
}

// phaseSnap is one phase meter's counters at a checkpoint. The recovery
// supervisor snapshots the recorder at each dispatch boundary and rolls
// it back before a replay: ranks that completed phases of the aborted
// attempt already accumulated into the meters, and without the rollback
// the replay would double-count them.
type phaseSnap struct {
	sentW, recvW, sentM, recvM, tern []int64
}

// snapshotInto copies every registered meter's per-rank counters into
// the caller-pooled snaps/backing storage, growing it only when capacity
// is short (first checkpoint of each operation shape); at steady state
// the capture allocates nothing. The returned slices must be stored back
// by the caller — they may have been regrown.
func (pr *phaseRecorder) snapshotInto(snaps []phaseSnap, backing []int64) ([]phaseSnap, []int64) {
	need := len(pr.meters) * 5 * pr.p
	if cap(backing) < need {
		backing = make([]int64, need)
	}
	backing = backing[:need]
	if cap(snaps) < len(pr.meters) {
		snaps = make([]phaseSnap, len(pr.meters))
	}
	snaps = snaps[:len(pr.meters)]
	off := 0
	take := func() []int64 {
		sl := backing[off : off+pr.p : off+pr.p]
		off += pr.p
		return sl
	}
	for i, m := range pr.meters {
		sn := &snaps[i]
		sn.sentW, sn.recvW, sn.sentM, sn.recvM, sn.tern = take(), take(), take(), take(), take()
		copy(sn.sentW, m.SentWords)
		copy(sn.recvW, m.RecvWords)
		copy(sn.sentM, m.SentMsgs)
		copy(sn.recvM, m.RecvMsgs)
		copy(sn.tern, m.Ternary)
	}
	return snaps, backing
}

// restore overwrites the meters with a snapshot taken by the same
// recorder (label registration is fixed at construction, so index i in
// the snapshot is meter i).
func (pr *phaseRecorder) restore(snaps []phaseSnap) {
	for i, sn := range snaps {
		m := pr.meters[i]
		copy(m.SentWords, sn.sentW)
		copy(m.RecvWords, sn.recvW)
		copy(m.SentMsgs, sn.sentM)
		copy(m.RecvMsgs, sn.recvM)
		copy(m.Ternary, sn.tern)
	}
}

// results finalizes the meters in registration order.
func (pr *phaseRecorder) results() []PhaseMeter {
	out := make([]PhaseMeter, len(pr.meters))
	for i, m := range pr.meters {
		out[i] = *m
	}
	return out
}
