package sparse

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hopm"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

const tol = 1e-10

func TestApplyMatchesDenseKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(12) + 3
		a := tensor.Random(n, rng)
		// Sparsify: drop ~70% of entries.
		for idx := range a.Data {
			if rng.Float64() < 0.7 {
				a.Data[idx] = 0
			}
		}
		sp := FromPacked(a, 0)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := sttsv.Packed(a, x, nil)
		got := sp.Apply(x, nil)
		for i := range want {
			if math.Abs(got[i]-want[i]) > tol {
				t.Fatalf("trial %d: sparse differs at %d: %g vs %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestWorkProportionalToNNZ(t *testing.T) {
	coords := []Entry{
		{3, 2, 1, 1.0}, // strict: 3 ops
		{2, 2, 1, 1.0}, // pair-high: 2
		{2, 1, 1, 1.0}, // pair-low: 2
		{1, 1, 1, 1.0}, // central: 1
	}
	sp, err := New(4, coords)
	if err != nil {
		t.Fatal(err)
	}
	var st sttsv.Stats
	sp.Apply(make([]float64, 4), &st)
	if st.TernaryMults != 8 {
		t.Fatalf("counted %d ternary mults, want 8", st.TernaryMults)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3, []Entry{{0, 1, 3, 1}}); err == nil {
		t.Error("out-of-range entry accepted")
	}
	if _, err := New(4, []Entry{{1, 2, 3, 1}, {3, 2, 1, 2}}); err == nil {
		t.Error("duplicate multiset accepted")
	}
}

func TestNewSortsIndices(t *testing.T) {
	sp, err := New(5, []Entry{{1, 4, 2, 7}})
	if err != nil {
		t.Fatal(err)
	}
	e := sp.Entries()[0]
	if e.I != 4 || e.J != 2 || e.K != 1 {
		t.Fatalf("entry not sorted: %+v", e)
	}
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := tensor.Random(6, rng)
	sp := FromPacked(a, 0)
	back := sp.Dense()
	for i := range a.Data {
		if a.Data[i] != back.Data[i] {
			t.Fatalf("round trip differs at %d", i)
		}
	}
	if sp.NNZ() != len(a.Data) {
		// Random entries are almost surely nonzero.
		t.Fatalf("NNZ = %d, want %d", sp.NNZ(), len(a.Data))
	}
}

func TestFromHypergraphMatchesDense(t *testing.T) {
	edges := [][3]int{{0, 1, 2}, {1, 2, 3}, {0, 2, 4}}
	sp, err := FromHypergraph(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := tensor.HypergraphAdjacency(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3, 4, 5}
	want := sttsv.Packed(dense, x, nil)
	got := sp.Apply(x, nil)
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("hypergraph sparse differs at %d", i)
		}
	}
	if _, err := FromHypergraph(5, [][3]int{{1, 1, 2}}); err == nil {
		t.Error("degenerate edge accepted")
	}
}

func TestSparsePowerMethod(t *testing.T) {
	// The sparse kernel plugs into the power method via STTSV(): find the
	// dominant eigenpair of a sparse nonnegative tensor.
	rng := rand.New(rand.NewSource(3))
	dense, err := tensor.RandomHypergraph(30, 120, rng)
	if err != nil {
		t.Fatal(err)
	}
	sp := FromPacked(dense, 0)
	pair, err := hopm.PowerMethod(sp.STTSV(), 30, hopm.Options{Seed: 4, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Converged {
		t.Fatal("sparse power method did not converge")
	}
	// Same eigenvalue as the dense path.
	densePair, err := hopm.PowerMethod(hopm.PackedSTTSV(dense), 30, hopm.Options{Seed: 4, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pair.Lambda-densePair.Lambda) > 1e-8 {
		t.Fatalf("sparse lambda %g vs dense %g", pair.Lambda, densePair.Lambda)
	}
}

func TestApplyPanicsOnBadVector(t *testing.T) {
	sp, _ := New(3, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	sp.Apply(make([]float64, 2), nil)
}

func BenchmarkSparseApply(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	dense, err := tensor.RandomHypergraph(500, 5000, rng)
	if err != nil {
		b.Fatal(err)
	}
	sp := FromPacked(dense, 0)
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Apply(x, nil)
	}
}

func BenchmarkDenseApplySameTensor(b *testing.B) {
	// The dense path on the same hypergraph: ~n³/6 work vs NNZ.
	rng := rand.New(rand.NewSource(5))
	dense, err := tensor.RandomHypergraph(500, 5000, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sttsv.Packed(dense, x, nil)
	}
}
