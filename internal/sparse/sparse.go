// Package sparse provides a coordinate-format symmetric 3-tensor and an
// STTSV kernel over it. The hypergraph workloads that motivate the paper's
// eigenvector application (§1) are extremely sparse — a 3-uniform
// hypergraph on n vertices has O(n) to O(n²) hyperedges versus the
// C(n+2,3) entries of dense packed storage — so a production STTSV library
// needs a sparse path: work and memory proportional to the number of
// nonzeros instead of n³/6.
//
// Entries are stored once per multiset of indices (sorted i >= j >= k),
// and the kernel applies the same permutation-multiplicity update rules as
// Algorithm 4, so Apply agrees exactly with the dense kernels on the same
// tensor.
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/intmath"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// Entry is one stored nonzero with sorted indices I >= J >= K.
type Entry struct {
	I, J, K int
	V       float64
}

// Tensor is a symmetric 3-tensor in coordinate format. Entries are unique
// per index multiset and kept sorted for deterministic iteration.
type Tensor struct {
	N       int
	entries []Entry
}

// New builds a sparse symmetric tensor from (possibly unsorted-index)
// coordinate data. Duplicate multisets are an error; indices must lie in
// [0, n).
func New(n int, coords []Entry) (*Tensor, error) {
	t := &Tensor{N: n, entries: make([]Entry, 0, len(coords))}
	for _, e := range coords {
		i, j, k := intmath.SortTriple(e.I, e.J, e.K)
		if k < 0 || i >= n {
			return nil, fmt.Errorf("sparse: entry (%d,%d,%d) out of range [0,%d)", e.I, e.J, e.K, n)
		}
		t.entries = append(t.entries, Entry{I: i, J: j, K: k, V: e.V})
	}
	sort.Slice(t.entries, func(a, b int) bool {
		ea, eb := t.entries[a], t.entries[b]
		if ea.I != eb.I {
			return ea.I < eb.I
		}
		if ea.J != eb.J {
			return ea.J < eb.J
		}
		return ea.K < eb.K
	})
	for i := 1; i < len(t.entries); i++ {
		a, b := t.entries[i-1], t.entries[i]
		if a.I == b.I && a.J == b.J && a.K == b.K {
			return nil, fmt.Errorf("sparse: duplicate entry (%d,%d,%d)", a.I, a.J, a.K)
		}
	}
	return t, nil
}

// FromPacked converts a packed symmetric tensor, keeping entries with
// |value| strictly greater than threshold. A negative threshold is
// clamped to zero and therefore means "keep every nonzero": explicitly
// stored zeros are never kept, and entries with |value| exactly equal to
// a non-negative threshold are dropped (strict inequality).
func FromPacked(a *tensor.Symmetric, threshold float64) *Tensor {
	if threshold < 0 {
		threshold = 0
	}
	var coords []Entry
	a.ForEach(func(i, j, k int, v float64) {
		if v > threshold || v < -threshold {
			coords = append(coords, Entry{I: i, J: j, K: k, V: v})
		}
	})
	t, err := New(a.N, coords)
	if err != nil {
		panic("sparse: FromPacked produced invalid coordinates: " + err.Error())
	}
	return t
}

// FromHypergraph builds the sparse adjacency tensor of a 3-uniform
// hypergraph directly (entries 1/2 per hyperedge, the centrality
// normalization of package tensor).
func FromHypergraph(n int, edges [][3]int) (*Tensor, error) {
	coords := make([]Entry, 0, len(edges))
	for ei, e := range edges {
		i, j, k := intmath.SortTriple(e[0], e[1], e[2])
		if i == j || j == k {
			return nil, fmt.Errorf("sparse: edge %d = %v has repeated vertices", ei, e)
		}
		coords = append(coords, Entry{I: i, J: j, K: k, V: 0.5})
	}
	return New(n, coords)
}

// NNZ returns the number of stored entries.
func (t *Tensor) NNZ() int { return len(t.entries) }

// Entries returns a copy of the stored entries in sorted order. Mutating
// the returned slice cannot corrupt the tensor's sorted/unique invariant;
// use ForEach for zero-copy read-only iteration.
func (t *Tensor) Entries() []Entry {
	out := make([]Entry, len(t.entries))
	copy(out, t.entries)
	return out
}

// ForEach visits the stored entries in sorted (I,J,K) order without
// copying. The callback must not retain or mutate tensor state.
func (t *Tensor) ForEach(fn func(e Entry)) {
	for _, e := range t.entries {
		fn(e)
	}
}

// Dense expands to packed symmetric storage.
func (t *Tensor) Dense() *tensor.Symmetric {
	out := tensor.NewSymmetric(t.N)
	for _, e := range t.entries {
		out.Set(e.I, e.J, e.K, e.V)
	}
	return out
}

// Apply computes y = A ×₂ x ×₃ x in O(nnz) work using the Algorithm 4
// multiplicity rules per stored entry.
func (t *Tensor) Apply(x []float64, stats *sttsv.Stats) []float64 {
	if len(x) != t.N {
		panic(fmt.Sprintf("sparse: vector length %d, dimension %d", len(x), t.N))
	}
	y := make([]float64, t.N)
	var count int64
	for _, e := range t.entries {
		i, j, k, v := e.I, e.J, e.K, e.V
		switch {
		case i > j && j > k:
			y[i] += 2 * v * x[j] * x[k]
			y[j] += 2 * v * x[i] * x[k]
			y[k] += 2 * v * x[i] * x[j]
			count += 3
		case i == j && j > k:
			y[i] += 2 * v * x[i] * x[k]
			y[k] += v * x[i] * x[i]
			count += 2
		case i > j && j == k:
			y[i] += v * x[j] * x[j]
			y[j] += 2 * v * x[i] * x[j]
			count += 2
		default:
			y[i] += v * x[i] * x[i]
			count++
		}
	}
	if stats != nil {
		stats.TernaryMults += count
	}
	return y
}

// STTSV adapts Apply to the hopm.STTSV function shape.
func (t *Tensor) STTSV() func(x []float64) []float64 {
	return func(x []float64) []float64 { return t.Apply(x, nil) }
}
