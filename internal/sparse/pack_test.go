package sparse

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sttsv"
	"repro/internal/tensor"
)

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// randSparse builds a random sparsified tensor of dimension n.
func randSparse(n int, drop float64, rng *rand.Rand) (*tensor.Symmetric, *Tensor) {
	a := tensor.Random(n, rng)
	for idx := range a.Data {
		if rng.Float64() < drop {
			a.Data[idx] = 0
		}
	}
	return a, FromPacked(a, 0)
}

// TestPackTernaryOracle: the packed blocks' exact ternary count must
// equal the COO Apply count — the nnz/Stats accounting oracle.
func TestPackTernaryOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(30) + 3
		b := rng.Intn(5) + 1
		_, sp := randSparse(n, 0.8, rng)
		pk, err := Pack(sp, b)
		if err != nil {
			t.Fatal(err)
		}
		var coo sttsv.Stats
		sp.Apply(make([]float64, n), &coo)
		if pk.TernaryCount() != coo.TernaryMults {
			t.Fatalf("n=%d b=%d: packed ternary %d, COO %d", n, b, pk.TernaryCount(), coo.TernaryMults)
		}
		if pk.NNZ() != sp.NNZ() {
			t.Fatalf("n=%d b=%d: packed nnz %d, tensor nnz %d", n, b, pk.NNZ(), sp.NNZ())
		}
		var st sttsv.Stats
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		pk.ApplyPacked(x, &st)
		if st.TernaryMults != coo.TernaryMults {
			t.Fatalf("n=%d b=%d: ApplyPacked counted %d, COO %d", n, b, st.TernaryMults, coo.TernaryMults)
		}
	}
}

// TestBlockApplyBitwiseScalarOracle: BlockApply on a sparse block must be
// bit-for-bit BlockContributeScalar on the dense expansion of the same
// block — across all four kinds, paddings and sparsity levels.
func TestBlockApplyBitwiseScalarOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(40) + 4
		b := rng.Intn(6) + 2
		drop := []float64{0.3, 0.8, 0.97}[trial%3]
		a, sp := randSparse(n, drop, rng)
		pk, err := Pack(sp, b)
		if err != nil {
			t.Fatal(err)
		}
		m := pk.M
		padded := m * b
		// Padded dense copy for block extraction.
		ad := tensor.NewSymmetric(padded)
		a.ForEach(func(i, j, k int, v float64) { ad.Set(i, j, k, v) })
		x := make([]float64, padded)
		for i := 0; i < n; i++ {
			x[i] = rng.NormFloat64()
		}
		row := func(buf []float64, i int) []float64 { return buf[i*b : (i+1)*b] }
		kinds := make(map[tensor.BlockKind]bool)
		for _, c := range pk.Coords() {
			blk := pk.Block(c[0], c[1], c[2])
			dblk := tensor.ExtractBlock(ad, c[0], c[1], c[2], b)
			ys := make([]float64, padded)
			yd := make([]float64, padded)
			BlockApply(blk, row(x, blk.I), row(x, blk.J), row(x, blk.K),
				row(ys, blk.I), row(ys, blk.J), row(ys, blk.K), nil)
			sttsv.BlockContributeScalar(dblk, row(x, dblk.I), row(x, dblk.J), row(x, dblk.K),
				row(yd, dblk.I), row(yd, dblk.J), row(yd, dblk.K), nil)
			if !bitsEqual(ys, yd) {
				t.Fatalf("trial %d: block (%d,%d,%d) kind %v: sparse kernel not bit-identical to scalar kernel", trial, c[0], c[1], c[2], blk.Kind)
			}
			kinds[blk.Kind] = true
		}
		if trial == 0 && len(kinds) < 4 {
			t.Logf("trial 0 covered %d kinds", len(kinds))
		}
	}
}

// TestApplyPackedBitwiseBlockedOracle: the full packed apply must be
// bit-identical to running the dense scalar kernel over the dense
// expansion's blocks in the same kind-grouped order.
func TestApplyPackedBitwiseBlockedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(30) + 6
		b := rng.Intn(4) + 2
		a, sp := randSparse(n, 0.85, rng)
		pk, err := Pack(sp, b)
		if err != nil {
			t.Fatal(err)
		}
		padded := pk.M * b
		ad := tensor.NewSymmetric(padded)
		a.ForEach(func(i, j, k int, v float64) { ad.Set(i, j, k, v) })
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := pk.ApplyPacked(x, nil)

		xp := make([]float64, padded)
		copy(xp, x)
		yp := make([]float64, padded)
		row := func(buf []float64, i int) []float64 { return buf[i*b : (i+1)*b] }
		for _, blk := range pk.Select(pk.Coords()) {
			dblk := tensor.ExtractBlock(ad, blk.I, blk.J, blk.K, b)
			sttsv.BlockContributeScalar(dblk, row(xp, blk.I), row(xp, blk.J), row(xp, blk.K),
				row(yp, blk.I), row(yp, blk.J), row(yp, blk.K), nil)
		}
		if !bitsEqual(got, yp[:n]) {
			t.Fatalf("trial %d (n=%d b=%d): ApplyPacked not bit-identical to dense scalar blocked apply", trial, n, b)
		}
		// And within tolerance of the entry-order COO kernel (different
		// association order, so ulps not bits).
		coo := sp.Apply(x, nil)
		for i := range coo {
			if math.Abs(coo[i]-got[i]) > 1e-9*math.Max(1, math.Abs(coo[i])) {
				t.Fatalf("trial %d: packed vs COO differ at %d: %g vs %g", trial, i, got[i], coo[i])
			}
		}
	}
}

// TestPackBlocksSelect: PackBlocks restricted to a coordinate subset
// returns exactly those blocks, kind-grouped, and Select skips empty
// coordinates.
func TestPackBlocksSelect(t *testing.T) {
	sp, err := New(8, []Entry{
		{7, 3, 1, 1.0}, // block (3,1,0) off-diagonal at b=2
		{5, 4, 1, 2.0}, // block (2,2,0) diag-pair-high
		{1, 1, 0, 3.0}, // block (0,0,0) central
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks, err := PackBlocks(sp, [][3]int{{0, 0, 0}, {3, 1, 0}, {1, 1, 1}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 2 {
		t.Fatalf("selected %d blocks, want 2 (empty (1,1,1) skipped)", len(blocks))
	}
	// Kind grouping: off-diagonal before central.
	if blocks[0].Kind != tensor.OffDiagonal || blocks[1].Kind != tensor.Central {
		t.Fatalf("kind order = %v, %v", blocks[0].Kind, blocks[1].Kind)
	}
	if blocks[0].NNZ() != 1 || blocks[1].NNZ() != 1 {
		t.Fatalf("nnz = %d, %d, want 1, 1", blocks[0].NNZ(), blocks[1].NNZ())
	}
}

// TestBlockCounts: direct per-block nnz counting must agree with the
// packed form's accounting.
func TestBlockCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	_, sp := randSparse(25, 0.7, rng)
	pk, err := Pack(sp, 3)
	if err != nil {
		t.Fatal(err)
	}
	direct := BlockCounts(sp, 3)
	fromPack := pk.BlockCounts()
	if len(direct) != len(fromPack) {
		t.Fatalf("BlockCounts has %d blocks, packed %d", len(direct), len(fromPack))
	}
	var total int64
	for c, cnt := range direct {
		if fromPack[c] != cnt {
			t.Fatalf("block %v: direct %d, packed %d", c, cnt, fromPack[c])
		}
		total += cnt
	}
	if total != int64(sp.NNZ()) {
		t.Fatalf("counts sum %d, nnz %d", total, sp.NNZ())
	}
}

// TestEntriesReturnsCopy: mutating the slice returned by Entries must
// not corrupt the tensor's sorted invariant (regression: the seed
// returned the internal slice).
func TestEntriesReturnsCopy(t *testing.T) {
	sp, err := New(4, []Entry{{3, 2, 1, 1.0}, {2, 1, 0, 2.0}})
	if err != nil {
		t.Fatal(err)
	}
	es := sp.Entries()
	es[0] = Entry{I: 99, J: 99, K: 99, V: -1}
	again := sp.Entries()
	if again[0].I == 99 {
		t.Fatal("Entries() aliases internal state: external mutation corrupted the tensor")
	}
	if again[0].I != 2 || again[1].I != 3 {
		t.Fatalf("entries out of order after external mutation: %+v", again)
	}
	var seen int
	sp.ForEach(func(e Entry) {
		if e.I == 99 {
			t.Fatal("ForEach observed the external mutation")
		}
		seen++
	})
	if seen != 2 {
		t.Fatalf("ForEach visited %d entries, want 2", seen)
	}
}

// TestFromPackedThreshold pins the threshold semantics: strict |v| >
// threshold, negative threshold means keep all nonzero, and explicit
// zeros are never kept.
func TestFromPackedThreshold(t *testing.T) {
	a := tensor.NewSymmetric(4)
	a.Set(1, 0, 0, 0.5)
	a.Set(2, 1, 0, -0.5)
	a.Set(3, 2, 1, 0.25)
	a.Set(2, 2, 2, 1.5)
	a.Set(3, 3, 3, 0) // explicit zero

	if got := FromPacked(a, 0.5).NNZ(); got != 1 {
		t.Errorf("threshold 0.5: kept %d entries, want 1 (strict >: both ±0.5 dropped)", got)
	}
	if got := FromPacked(a, 0.25).NNZ(); got != 3 {
		t.Errorf("threshold 0.25: kept %d entries, want 3 (0.25 itself dropped)", got)
	}
	if got := FromPacked(a, 0).NNZ(); got != 4 {
		t.Errorf("threshold 0: kept %d entries, want 4 (all nonzero)", got)
	}
	if got := FromPacked(a, -1).NNZ(); got != 4 {
		t.Errorf("threshold -1: kept %d entries, want 4 (negative = keep all nonzero, zeros never kept)", got)
	}
}
