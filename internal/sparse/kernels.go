// Sparse block kernels: BlockApply is the sparse analogue of
// sttsv.BlockContributeScalar. It visits only the stored nonzeros but
// reproduces the scalar kernel's association order exactly — fibers in
// (di, dj) ascending order, dk ascending within a fiber, the same fused
// update expressions per Algorithm-4 multiplicity case. Skipping a zero
// element is bitwise neutral for finite inputs: a zero tensor entry
// contributes ±0.0 to every accumulator it touches, the kernel's
// accumulators are never -0.0 (they start at +0.0 and IEEE-754
// round-to-nearest addition never produces -0.0 from a +0.0 start), and
// adding ±0.0 to a finite non-(-0.0) float is the identity. BlockApply
// on a sparse block is therefore bit-for-bit BlockContributeScalar on
// the dense expansion of the same block — the property the parallel
// conformance grid pins against a dense scalar-kernel session.
package sparse

import (
	"fmt"

	"repro/internal/sttsv"
	"repro/internal/tensor"
)

func checkBlockLens(blk *Block, xI, xJ, xK, yI, yJ, yK []float64) {
	b := blk.B
	if len(xI) != b || len(xJ) != b || len(xK) != b || len(yI) != b || len(yJ) != b || len(yK) != b {
		panic(fmt.Sprintf("sparse: BlockApply slice lengths (%d,%d,%d,%d,%d,%d), want %d",
			len(xI), len(xJ), len(xK), len(yI), len(yJ), len(yK), b))
	}
}

// BlockApply accumulates one sparse block's contribution into the three
// output row blocks, in O(nnz) work. Slice contract is identical to
// sttsv.BlockContributeScalar: xI/xJ/xK and yI/yJ/yK are the length-b
// row blocks for the block's I, J, K coordinates (aliased when they
// coincide; the kernel only accumulates, so aliasing is safe).
func BlockApply(blk *Block, xI, xJ, xK, yI, yJ, yK []float64, stats *sttsv.Stats) {
	checkBlockLens(blk, xI, xJ, xK, yI, yJ, yK)
	dks, vals := blk.DKs, blk.Vals
	switch blk.Kind {
	case tensor.OffDiagonal:
		// Every element is a strict global triple i > j > k. The dense
		// kernel keeps a per-di accumulator across the dj row; fibers
		// sharing a di are contiguous, so one outer pass per di group
		// reproduces it.
		f, nf := 0, len(blk.Fibers)
		for f < nf {
			di := blk.Fibers[f].Di
			xi := xI[di]
			acc := 0.0
			for ; f < nf && blk.Fibers[f].Di == di; f++ {
				fb := &blk.Fibers[f]
				xj := xJ[fb.Dj]
				s := 0.0
				txi2 := 2 * xi
				txij2 := 2 * xi * xj
				for t := fb.Lo; t < fb.Hi; t++ {
					v := vals[t]
					s += v * xK[dks[t]]
					yK[dks[t]] += txij2 * v
				}
				acc += s * xj
				yJ[fb.Dj] += txi2 * s
			}
			yI[di] += 2 * acc
		}
	case tensor.DiagPairHigh:
		// I == J > K: di > dj is a strict triple, di == dj is i == j > k.
		for f := range blk.Fibers {
			fb := &blk.Fibers[f]
			di, dj := fb.Di, fb.Dj
			xi := xI[di]
			if di > dj {
				xj := xJ[dj]
				s := 0.0
				txij2 := 2 * xi * xj
				for t := fb.Lo; t < fb.Hi; t++ {
					v := vals[t]
					s += v * xK[dks[t]]
					yK[dks[t]] += txij2 * v
				}
				yI[di] += 2 * s * xj
				yJ[dj] += 2 * s * xi
			} else {
				s := 0.0
				xi2 := xi * xi
				for t := fb.Lo; t < fb.Hi; t++ {
					v := vals[t]
					s += v * xK[dks[t]]
					yK[dks[t]] += xi2 * v
				}
				yI[di] += 2 * s * xi
			}
		}
	case tensor.DiagPairLow:
		// I > J == K: dk <= dj within a fiber; the dk == dj diagonal
		// element (ascending order puts it last when stored) folds into
		// the dense kernel's fused row updates, so it is split off the
		// s-loop and substituted — 0.0 when absent, which leaves the
		// fused expressions bitwise unchanged.
		for f := range blk.Fibers {
			fb := &blk.Fibers[f]
			di, dj := fb.Di, fb.Dj
			xi, xj := xI[di], xJ[dj]
			txij2 := 2 * xi * xj
			s := 0.0
			vd := 0.0
			hi := fb.Hi
			if hi > fb.Lo && dks[hi-1] == dj {
				vd = vals[hi-1]
				hi--
			}
			for t := fb.Lo; t < hi; t++ {
				v := vals[t]
				s += v * xK[dks[t]]
				yK[dks[t]] += txij2 * v
			}
			yI[di] += 2*s*xj + vd*xj*xj
			yJ[dj] += 2*s*xi + 2*vd*xi*xj
		}
	case tensor.Central:
		// I == J == K: full element-level classification, split per
		// fiber exactly as the dense scalar kernel splits its rows.
		for f := range blk.Fibers {
			fb := &blk.Fibers[f]
			di, dj := fb.Di, fb.Dj
			xi := xI[di]
			if di > dj {
				xj := xJ[dj]
				txij2 := 2 * xi * xj
				s := 0.0
				vd := 0.0
				hi := fb.Hi
				if hi > fb.Lo && dks[hi-1] == dj {
					vd = vals[hi-1]
					hi--
				}
				for t := fb.Lo; t < hi; t++ {
					v := vals[t]
					s += v * xK[dks[t]]
					yK[dks[t]] += txij2 * v
				}
				yI[di] += 2*s*xj + vd*xj*xj
				yJ[dj] += 2*s*xi + 2*vd*xi*xj
			} else {
				xi2 := xi * xi
				s := 0.0
				vc := 0.0
				hi := fb.Hi
				if hi > fb.Lo && dks[hi-1] == di {
					vc = vals[hi-1]
					hi--
				}
				for t := fb.Lo; t < hi; t++ {
					v := vals[t]
					s += v * xK[dks[t]]
					yK[dks[t]] += xi2 * v
				}
				yI[di] += 2*s*xi + vc*xi2
			}
		}
	default:
		panic("sparse: unknown block kind")
	}
	if stats != nil {
		stats.TernaryMults += blk.Ternary
	}
}

// Contribute applies a block list against padded row-major vectors:
// x and y hold m·b words with row block i at [i·b, (i+1)·b). Blocks are
// applied sequentially in input order — the sequential oracle the
// parallel sparse session is conformance-tested against.
func Contribute(blocks []*Block, b int, x, y []float64, stats *sttsv.Stats) {
	row := func(buf []float64, i int) []float64 { return buf[i*b : (i+1)*b] }
	for _, blk := range blocks {
		BlockApply(blk,
			row(x, blk.I), row(x, blk.J), row(x, blk.K),
			row(y, blk.I), row(y, blk.J), row(y, blk.K), stats)
	}
}

// ApplyPacked computes y = A ×₂ x ×₃ x through the packed blocks (all
// blocks, sequential coordinate order grouped by kind), returning a
// length-N result. It must agree exactly with the COO Apply on ternary
// counts and with the dense scalar block path on bits.
func (p *Packed) ApplyPacked(x []float64, stats *sttsv.Stats) []float64 {
	if len(x) != p.N {
		panic(fmt.Sprintf("sparse: vector length %d, dimension %d", len(x), p.N))
	}
	padded := p.M * p.B
	xp := make([]float64, padded)
	copy(xp, x)
	yp := make([]float64, padded)
	Contribute(p.Select(p.coords), p.B, xp, yp, stats)
	return yp[:p.N]
}
