// CSF-style packed sparse blocks: the sparse analogue of
// tensor.BlockPacked. The tensor's stored nonzeros are grouped into the
// same b×b×b lower-tetrahedral blocks the dense partition machinery
// assigns to ranks (block coordinates I >= J >= K, the four BlockKind
// shapes), but each block stores only its nonzeros in a compressed
// fiber format: one Fiber per occupied local (di, dj) pair, holding a
// contiguous run of ascending dk indices and values. Storage and kernel
// work are O(nnz) per block instead of O(b³), while the block-to-rank
// assignment, layout tables and exchange schedule of the dense session
// engine apply unchanged.
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// Fiber is one occupied local (di, dj) pair of a sparse block: entries
// Vals[Lo:Hi] with local k indices DKs[Lo:Hi] in ascending order.
type Fiber struct {
	Di, Dj int32
	Lo, Hi int32
}

// Block holds the stored nonzeros of one b×b×b lower-tetrahedral block.
// Fibers are sorted by (Di, Dj) ascending; within a fiber the dk indices
// ascend — exactly the dense scalar kernel's element visit order
// restricted to the stored entries, which is what makes BlockApply
// bit-identical to sttsv.BlockContributeScalar on the expanded block.
type Block struct {
	Kind    tensor.BlockKind
	I, J, K int // block coordinates, I >= J >= K
	B       int
	Fibers  []Fiber
	DKs     []int32
	Vals    []float64
	// Ternary is the exact Algorithm-4 ternary-multiplication count over
	// the stored nonzeros (3 per strict triple, 2 per pairwise-equal, 1
	// per central element) — the sparse analogue of
	// sttsv.BlockTernaryCount.
	Ternary int64
}

// NNZ returns the number of stored nonzeros in the block.
func (blk *Block) NNZ() int { return len(blk.Vals) }

// Words returns the payload words of the block (values only; index
// overhead is reported separately by Packed.IndexWords).
func (blk *Block) Words() int { return len(blk.Vals) }

// entryTernary classifies one stored entry by its global index equality
// structure, mirroring the COO Apply multiplicity rules.
func entryTernary(i, j, k int) int64 {
	switch {
	case i > j && j > k:
		return 3
	case i == j && j > k:
		return 2
	case i > j && j == k:
		return 2
	default:
		return 1
	}
}

// Packed is a sparse tensor regrouped into per-block-coordinate sparse
// blocks, the unit the tetrahedral partition assigns to ranks. It is
// built in one pass over the tensor and then sliced per rank with
// Select — mirroring how tensor.PackBlocks extracts a rank's dense
// blocks from the full tensor.
type Packed struct {
	N int // logical dimension of the underlying tensor
	M int // row blocks: ceil(N / B)
	B int

	blocks map[[3]int]*Block
	coords [][3]int // occupied block coordinates, sorted (I, J, K)
}

// Pack groups the tensor's nonzeros into b×b×b sparse blocks. Every
// stored entry (i >= j >= k) lands in block (i/b, j/b, k/b) with local
// coordinates (i%b, j%b, k%b); the sorted entry order of the tensor
// makes each block's fibers come out sorted without further work.
func Pack(t *Tensor, b int) (*Packed, error) {
	if b < 1 {
		return nil, fmt.Errorf("sparse: block edge %d, want >= 1", b)
	}
	p := &Packed{
		N:      t.N,
		M:      (t.N + b - 1) / b,
		B:      b,
		blocks: make(map[[3]int]*Block),
	}
	for _, e := range t.entries {
		bi, bj, bk := e.I/b, e.J/b, e.K/b
		di, dj, dk := int32(e.I%b), int32(e.J%b), int32(e.K%b)
		c := [3]int{bi, bj, bk}
		blk := p.blocks[c]
		if blk == nil {
			blk = &Block{Kind: blockKind(bi, bj, bk), I: bi, J: bj, K: bk, B: b}
			p.blocks[c] = blk
			p.coords = append(p.coords, c)
		}
		nf := len(blk.Fibers)
		if nf == 0 || blk.Fibers[nf-1].Di != di || blk.Fibers[nf-1].Dj != dj {
			blk.Fibers = append(blk.Fibers, Fiber{Di: di, Dj: dj, Lo: int32(len(blk.DKs))})
			nf++
		}
		blk.DKs = append(blk.DKs, dk)
		blk.Vals = append(blk.Vals, e.V)
		blk.Fibers[nf-1].Hi = int32(len(blk.DKs))
		blk.Ternary += entryTernary(e.I, e.J, e.K)
	}
	sort.Slice(p.coords, func(a, b int) bool {
		ca, cb := p.coords[a], p.coords[b]
		if ca[0] != cb[0] {
			return ca[0] < cb[0]
		}
		if ca[1] != cb[1] {
			return ca[1] < cb[1]
		}
		return ca[2] < cb[2]
	})
	return p, nil
}

func blockKind(bi, bj, bk int) tensor.BlockKind {
	switch {
	case bi == bj && bj == bk:
		return tensor.Central
	case bi == bj:
		return tensor.DiagPairHigh
	case bj == bk:
		return tensor.DiagPairLow
	default:
		return tensor.OffDiagonal
	}
}

// Block returns the sparse block at the given block coordinates, or nil
// when no stored entry falls inside it.
func (p *Packed) Block(i, j, k int) *Block { return p.blocks[[3]int{i, j, k}] }

// Coords returns the occupied block coordinates in sorted order.
func (p *Packed) Coords() [][3]int {
	out := make([][3]int, len(p.coords))
	copy(out, p.coords)
	return out
}

// selectKindOrder mirrors tensor.PackBlocks's kind grouping so a rank's
// sparse blocks stream in the same kind-major order as its dense blocks.
var selectKindOrder = [...]tensor.BlockKind{
	tensor.OffDiagonal, tensor.DiagPairHigh, tensor.DiagPairLow, tensor.Central,
}

// Select returns the sparse blocks for the given block coordinates,
// grouped by kind (off-diagonal, diag-pair-high, diag-pair-low, central)
// with the caller's coordinate order preserved within each kind — the
// same streaming order tensor.PackBlocks produces. Coordinates with no
// stored entries are skipped: an empty block contributes nothing.
func (p *Packed) Select(coords [][3]int) []*Block {
	var out []*Block
	for _, kind := range selectKindOrder {
		for _, c := range coords {
			blk := p.blocks[c]
			if blk != nil && blk.Kind == kind {
				out = append(out, blk)
			}
		}
	}
	return out
}

// PackBlocks packs only the entries falling inside the given block
// coordinates — the sparse mirror of tensor.PackBlocks' signature. For
// packing many ranks from one tensor, build a Packed once and call
// Select per rank instead.
func PackBlocks(t *Tensor, coords [][3]int, b int) ([]*Block, error) {
	p, err := Pack(t, b)
	if err != nil {
		return nil, err
	}
	return p.Select(coords), nil
}

// NNZ returns the total stored nonzeros across all blocks.
func (p *Packed) NNZ() int {
	n := 0
	for _, blk := range p.blocks {
		n += len(blk.Vals)
	}
	return n
}

// TernaryCount returns the exact total ternary multiplications one apply
// performs over all blocks — by construction equal to the count the COO
// Apply oracle reports for the same tensor.
func (p *Packed) TernaryCount() int64 {
	var n int64
	for _, blk := range p.blocks {
		n += blk.Ternary
	}
	return n
}

// BlockCounts returns per-block-coordinate nnz counts — the weights the
// nnz-aware partition assignment consumes.
func (p *Packed) BlockCounts() map[[3]int]int64 {
	out := make(map[[3]int]int64, len(p.blocks))
	for c, blk := range p.blocks {
		out[c] = int64(len(blk.Vals))
	}
	return out
}

// BlockCounts computes per-block nnz counts for block edge b directly
// from the tensor, without building the packed form — used to weight the
// partition before any rank blocks exist.
func BlockCounts(t *Tensor, b int) map[[3]int]int64 {
	out := make(map[[3]int]int64)
	for _, e := range t.entries {
		out[[3]int{e.I / b, e.J / b, e.K / b}]++
	}
	return out
}
