package sparse

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RandomHypergraph generates a 3-uniform hypergraph adjacency tensor
// with the given number of hyperedges, scaling to n ≥ 10⁶ and nnz ≥ 10⁷
// where a rejection-sampling generator's dedup map would dominate. It
// draws distinct "offset families" (o1, o2) with 1 <= o1 < o2 < n and
// emits the translates {v, v+o1, v+o2}: triples from different families
// differ in their index gaps and triples within a family differ in v,
// so the construction is collision-free — no dedup structure, O(nnz)
// memory, one final sort.
func RandomHypergraph(n, edges int, seed int64) (*Tensor, error) {
	if n < 3 {
		return nil, fmt.Errorf("sparse: hypergraph needs n >= 3, got %d", n)
	}
	if edges < 0 {
		return nil, fmt.Errorf("sparse: negative edge count %d", edges)
	}
	rng := rand.New(rand.NewSource(seed))
	type family struct{ o1, o2 int }
	seen := make(map[family]bool)
	t := &Tensor{N: n, entries: make([]Entry, 0, edges)}
	attempts := 0
	for len(t.entries) < edges {
		if attempts++; attempts > 1000+16*edges/(n/2+1)+len(seen)*4 {
			return nil, fmt.Errorf("sparse: could not place %d edges on n=%d (families exhausted)", edges, n)
		}
		o1 := 1 + rng.Intn(n-2)
		o2 := o1 + 1 + rng.Intn(n-1-o1)
		f := family{o1, o2}
		if seen[f] {
			continue
		}
		seen[f] = true
		take := n - o2 // translates that fit without wraparound
		if rem := edges - len(t.entries); take > rem {
			take = rem
		}
		for v := 0; v < take; v++ {
			t.entries = append(t.entries, Entry{I: v + o2, J: v + o1, K: v, V: 0.5})
		}
	}
	sortEntries(t.entries)
	return t, nil
}

// SkewedHypergraph generates a hypergraph whose edges concentrate on
// low-index vertices: each vertex is drawn as ⌊n·u^skew⌋ for uniform u,
// so skew > 1 hot-spots the low diagonal blocks — the adversarial input
// for nnz-aware partition weighting. Rejection sampling with a dedup
// map; intended for moderate sizes (benchmarks and tests), not the 10⁷
// nnz regime RandomHypergraph covers.
func SkewedHypergraph(n, edges int, skew float64, seed int64) (*Tensor, error) {
	if n < 3 {
		return nil, fmt.Errorf("sparse: hypergraph needs n >= 3, got %d", n)
	}
	if skew <= 0 {
		return nil, fmt.Errorf("sparse: skew must be positive, got %g", skew)
	}
	rng := rand.New(rand.NewSource(seed))
	draw := func() int {
		u := rng.Float64()
		v := int(float64(n) * math.Pow(u, skew))
		if v >= n {
			v = n - 1
		}
		return v
	}
	seen := make(map[[3]int]bool, edges)
	t := &Tensor{N: n, entries: make([]Entry, 0, edges)}
	attempts := 0
	for len(t.entries) < edges {
		if attempts++; attempts > 100*edges+1000 {
			return nil, fmt.Errorf("sparse: could not place %d distinct skewed edges on n=%d", edges, n)
		}
		a, b, c := draw(), draw(), draw()
		i, j, k := a, b, c
		if i < j {
			i, j = j, i
		}
		if j < k {
			j, k = k, j
		}
		if i < j {
			i, j = j, i
		}
		if i == j || j == k {
			continue
		}
		key := [3]int{i, j, k}
		if seen[key] {
			continue
		}
		seen[key] = true
		t.entries = append(t.entries, Entry{I: i, J: j, K: k, V: 0.5})
	}
	sortEntries(t.entries)
	return t, nil
}

func sortEntries(entries []Entry) {
	sort.Slice(entries, func(a, b int) bool {
		ea, eb := entries[a], entries[b]
		if ea.I != eb.I {
			return ea.I < eb.I
		}
		if ea.J != eb.J {
			return ea.J < eb.J
		}
		return ea.K < eb.K
	})
}
