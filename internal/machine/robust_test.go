package machine

import (
	"errors"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestInboxFloodUnbounded(t *testing.T) {
	// Regression: a fixed-capacity inbox (historically 2P packets)
	// deadlocks any protocol whose in-flight message count exceeds it.
	// The default mailbox is unbounded, so flooding one rank with far
	// more than 2P messages before it receives a single one must
	// complete.
	const p = 4
	const perSender = 5 * p // 15 msgs/sender, 45 total into rank 0 > 2P = 8
	_, err := RunWith(p, RunConfig{Timeout: 5 * time.Second}, func(c *Comm) {
		if c.Rank() != 0 {
			for i := 0; i < perSender; i++ {
				c.Send(0, i, []float64{float64(c.Rank()), float64(i)})
			}
			c.Barrier()
			return
		}
		c.Barrier() // every sender has finished before rank 0 drains
		for from := 1; from < p; from++ {
			for i := 0; i < perSender; i++ {
				got := c.Recv(from, i)
				if int(got[0]) != from || int(got[1]) != i {
					t.Errorf("from %d tag %d: got %v", from, i, got)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInboxCapThrottlesButCompletes(t *testing.T) {
	// With a finite InboxCap senders block on a full mailbox, but as long
	// as the receiver drains, the run completes with identical meters.
	rep, err := RunWith(3, RunConfig{InboxCap: 1, Timeout: 5 * time.Second}, func(c *Comm) {
		if c.Rank() != 0 {
			for i := 0; i < 20; i++ {
				c.Send(0, 0, []float64{float64(i)})
			}
			return
		}
		for from := 1; from < 3; from++ {
			for i := 0; i < 20; i++ {
				if got := c.Recv(from, 0); int(got[0]) != i {
					t.Errorf("from %d msg %d: got %v", from, i, got)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecvMsgs[0] != 40 {
		t.Errorf("rank 0 received %d messages, want 40", rep.RecvMsgs[0])
	}
}

func TestInboxCapDeadlockIsDiagnosed(t *testing.T) {
	// A receiver that never drains while its peer delivers into a capped
	// mailbox stalls the machine; the watchdog must name both ranks.
	_, err := RunWith(2, RunConfig{InboxCap: 2, Timeout: 50 * time.Millisecond}, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.Send(1, 0, []float64{1})
			}
		} else {
			c.Recv(0, 99) // tag never sent; rank 1 buffers nothing
		}
	})
	var dead *DeadlockError
	if !errors.As(err, &dead) {
		t.Fatalf("err %T (%v), want *DeadlockError", err, err)
	}
}

func TestDeadlockErrorStructure(t *testing.T) {
	// Mutual receive: each rank waits on the other. The error must name
	// each blocked rank with the (peer, tag) it waits on.
	_, err := RunWith(3, RunConfig{Timeout: 50 * time.Millisecond}, func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Recv(1, 5)
		case 1:
			c.Recv(0, 6)
		case 2:
			// completes immediately
		}
	})
	var dead *DeadlockError
	if !errors.As(err, &dead) {
		t.Fatalf("err %T (%v), want *DeadlockError", err, err)
	}
	if dead.P != 3 || len(dead.Crashed) != 0 {
		t.Errorf("P=%d crashed=%v", dead.P, dead.Crashed)
	}
	if len(dead.Waits) != 2 {
		t.Fatalf("waits = %+v, want 2 entries", dead.Waits)
	}
	sort.Slice(dead.Waits, func(i, j int) bool { return dead.Waits[i].Rank < dead.Waits[j].Rank })
	for i, want := range []RankWait{
		{Rank: 0, Kind: BlockRecv, Peer: 1, Tag: 5},
		{Rank: 1, Kind: BlockRecv, Peer: 0, Tag: 6},
	} {
		got := dead.Waits[i]
		if got.Rank != want.Rank || got.Kind != want.Kind || got.Peer != want.Peer || got.Tag != want.Tag {
			t.Errorf("wait[%d] = %+v, want %+v", i, got, want)
		}
	}
	msg := dead.Error()
	for _, frag := range []string{"timed out", "rank 0", "rank 1", "tag 5", "tag 6"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error text %q missing %q", msg, frag)
		}
	}
}

func TestDeadlockErrorReportsPendingMessages(t *testing.T) {
	// A message delivered but never matched shows up in the blocked
	// receiver's pending-queue diagnostics.
	_, err := RunWith(2, RunConfig{Timeout: 50 * time.Millisecond}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 3, []float64{1, 2, 3, 4})
			c.Recv(1, 0) // never sent
		} else {
			c.Recv(0, 9) // wrong tag: buffers the tag-3 message, waits forever
		}
	})
	var dead *DeadlockError
	if !errors.As(err, &dead) {
		t.Fatalf("err %T (%v), want *DeadlockError", err, err)
	}
	var rank1 *RankWait
	for i := range dead.Waits {
		if dead.Waits[i].Rank == 1 {
			rank1 = &dead.Waits[i]
		}
	}
	if rank1 == nil {
		t.Fatalf("rank 1 not in waits: %+v", dead.Waits)
	}
	if len(rank1.Pending) != 1 || rank1.Pending[0].From != 0 || rank1.Pending[0].Tag != 3 ||
		rank1.Pending[0].Msgs != 1 || rank1.Pending[0].Words != 4 {
		t.Errorf("rank 1 pending = %+v, want one 4-word message from 0 tag 3", rank1.Pending)
	}
}

func TestTraceConcurrentSenders(t *testing.T) {
	// Every rank sends to every other rank concurrently; the trace must
	// capture each logical send exactly once (run under -race in CI).
	const p = 8
	var tr Trace
	rep, err := RunWith(p, RunConfig{Timeout: 5 * time.Second, Observer: tr.Observer()}, func(c *Comm) {
		for to := 0; to < p; to++ {
			if to != c.Rank() {
				c.Send(to, c.Rank(), []float64{float64(c.Rank())})
			}
		}
		for from := 0; from < p; from++ {
			if from != c.Rank() {
				c.Recv(from, from)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	events := tr.Sends()
	if len(events) != p*(p-1) {
		t.Fatalf("traced %d send events, want %d", len(events), p*(p-1))
	}
	seen := make(map[[2]int]int)
	for _, e := range events {
		if e.Tag != e.From || e.Words != 1 {
			t.Errorf("event %+v has wrong tag or size", e)
		}
		seen[[2]int{e.From, e.To}]++
	}
	for from := 0; from < p; from++ {
		for to := 0; to < p; to++ {
			if from == to {
				continue
			}
			if seen[[2]int{from, to}] != 1 {
				t.Errorf("pair %d→%d traced %d times", from, to, seen[[2]int{from, to}])
			}
		}
	}
	if rep.MaxSentMsgs() != p-1 || rep.MaxRecvMsgs() != p-1 {
		t.Errorf("meters: sent %d recv %d msgs, want %d", rep.MaxSentMsgs(), rep.MaxRecvMsgs(), p-1)
	}
}

func TestExchangeMultiTagOrdering(t *testing.T) {
	// Interleaved Exchange streams on several tags between both peers:
	// per-(sender, tag) FIFO must hold for each direction independently.
	const rounds = 30
	_, err := RunWith(2, RunConfig{Timeout: 5 * time.Second}, func(c *Comm) {
		next := map[int]int{0: 0, 1: 0, 2: 0}
		for i := 0; i < rounds; i++ {
			tag := i % 3
			got := c.Exchange(1-c.Rank(), tag, []float64{float64(tag), float64(next[tag])})
			if int(got[0]) != tag || int(got[1]) != next[tag] {
				t.Errorf("rank %d round %d tag %d: got %v, want seq %d",
					c.Rank(), i, tag, got, next[tag])
			}
			next[tag]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWireMetersMatchLogicalOnDirectTransport(t *testing.T) {
	// On the perfect wire with the direct transport, every logical
	// message is exactly one packet: wire and logical meters coincide and
	// overhead is zero.
	rep := mustRun(t, 4, func(c *Comm) {
		peer := c.Rank() ^ 1
		c.Exchange(peer, 0, make([]float64, 3+c.Rank()))
	})
	for i := 0; i < rep.P; i++ {
		if rep.WireSentWords[i] != rep.SentWords[i] || rep.WireSentMsgs[i] != rep.SentMsgs[i] ||
			rep.WireRecvWords[i] != rep.RecvWords[i] || rep.WireRecvMsgs[i] != rep.RecvMsgs[i] {
			t.Errorf("rank %d: wire meters diverge from logical on the direct transport", i)
		}
	}
	if rep.OverheadWords() != 0 {
		t.Errorf("OverheadWords = %d on a perfect wire", rep.OverheadWords())
	}
}

func TestReportStringAndMaxRecvMsgs(t *testing.T) {
	rep := &Report{
		P:         2,
		SentWords: []int64{10, 4},
		RecvWords: []int64{4, 10},
		SentMsgs:  []int64{2, 1},
		RecvMsgs:  []int64{1, 2},
	}
	if rep.MaxRecvMsgs() != 2 {
		t.Errorf("MaxRecvMsgs = %d", rep.MaxRecvMsgs())
	}
	s := rep.String()
	for _, frag := range []string{"P=2", "max sent 10w/2m", "max recv 10w/2m", "total 14w"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	if strings.Contains(s, "wire") {
		t.Errorf("String() = %q mentions wire meters that were not collected", s)
	}
	rep.WireSentWords = []int64{13, 4}
	rep.WireSentMsgs = []int64{4, 2}
	rep.WireRecvWords = []int64{4, 13}
	rep.WireRecvMsgs = []int64{2, 4}
	s = rep.String()
	for _, frag := range []string{"wire 17w", "+3w overhead", "6 packets"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
