package machine

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// BlockKind classifies what a rank is doing from the deadlock monitor's
// point of view.
type BlockKind int

const (
	// BlockNone: the rank is computing (not inside a machine operation).
	BlockNone BlockKind = iota
	// BlockSend: inside Send — under a reliable transport this means
	// waiting for an acknowledgement (or for mailbox space when capped).
	BlockSend
	// BlockRecv: inside Recv, waiting for a matching message.
	BlockRecv
	// BlockBarrier: waiting for the other ranks at a barrier.
	BlockBarrier
	// BlockDone: the rank's body returned normally.
	BlockDone
	// BlockCrashed: the rank's body panicked (fault-injected crash or a
	// genuine bug).
	BlockCrashed
	// BlockHost: inside AwaitHost — a resident body waiting for the host
	// to feed it the next operation. The watchdog treats a run in which
	// every unfinished rank is host-blocked as quiescent, not deadlocked.
	BlockHost
)

func (k BlockKind) String() string {
	switch k {
	case BlockNone:
		return "computing"
	case BlockSend:
		return "send"
	case BlockRecv:
		return "recv"
	case BlockBarrier:
		return "barrier"
	case BlockDone:
		return "done"
	case BlockCrashed:
		return "crashed"
	case BlockHost:
		return "awaiting host"
	}
	return fmt.Sprintf("BlockKind(%d)", int(k))
}

// PendingEntry summarizes messages a transport has buffered (pulled from
// the wire but not yet consumed by a logical Recv) for one (from, tag).
type PendingEntry struct {
	From, Tag, Msgs, Words int
}

// RankWait describes one unfinished rank in a stalled run.
type RankWait struct {
	Rank int
	Kind BlockKind
	// Peer and Tag identify the operation the rank is blocked on: the
	// message source for BlockRecv, the destination for BlockSend.
	// Meaningless for other kinds.
	Peer, Tag int
	// InboxPackets counts raw packets sitting undrained in the rank's
	// mailbox at the time of the snapshot.
	InboxPackets int
	// Pending lists messages the rank's transport buffered while waiting
	// for something else.
	Pending []PendingEntry
}

func (w RankWait) describe() string {
	var s string
	switch w.Kind {
	case BlockSend:
		s = fmt.Sprintf("blocked in send to rank %d (tag %d)", w.Peer, w.Tag)
	case BlockRecv:
		s = fmt.Sprintf("blocked in recv from rank %d (tag %d)", w.Peer, w.Tag)
	case BlockBarrier:
		s = "blocked in barrier"
	default:
		s = w.Kind.String()
	}
	s += fmt.Sprintf("; inbox holds %d packets", w.InboxPackets)
	if len(w.Pending) > 0 {
		parts := make([]string, len(w.Pending))
		for i, p := range w.Pending {
			parts[i] = fmt.Sprintf("from %d tag %d: %d msgs/%d words", p.From, p.Tag, p.Msgs, p.Words)
		}
		s += "; buffered {" + strings.Join(parts, "; ") + "}"
	}
	return s
}

// DeadlockError is returned by the progress monitor when no rank
// completes a logical operation for a full timeout window: each
// unfinished rank is named with the operation it is blocked on and the
// messages its transport has buffered, so a stuck protocol can be read
// off the error instead of debugged from a bare "timed out".
type DeadlockError struct {
	P       int
	Timeout time.Duration
	// Crashed lists ranks whose body panicked before the stall.
	Crashed []int
	// Waits describes every rank that had not finished, in rank order.
	Waits []RankWait
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine: run of %d ranks timed out after %v without progress (deadlock)", e.P, e.Timeout)
	if len(e.Crashed) > 0 {
		fmt.Fprintf(&b, "; crashed ranks %v", e.Crashed)
	}
	for _, w := range e.Waits {
		fmt.Fprintf(&b, "\n  rank %d: %s", w.Rank, w.describe())
	}
	return b.String()
}

// CrashError is the panic value a fault injector uses to kill a rank at a
// chosen point; the runner recognizes it and reports the crash as a
// structured error instead of a generic panic.
type CrashError struct {
	// Rank is the processor that crashed; Op is the wire-operation index
	// at which the injector fired.
	Rank, Op int
}

func (e CrashError) Error() string {
	return fmt.Sprintf("machine: rank %d crashed (fault injection at wire op %d)", e.Rank, e.Op)
}

// UnreachableError is the panic value a reliable transport uses when its
// bounded retransmission budget is exhausted without an acknowledgement —
// the symptom of a crashed or indefinitely stalled peer.
type UnreachableError struct {
	Rank, Peer, Tag, Attempts int
}

func (e UnreachableError) Error() string {
	return fmt.Sprintf("machine: rank %d could not reach rank %d (tag %d) after %d transmit attempts (peer crashed or stalled?)",
		e.Rank, e.Peer, e.Tag, e.Attempts)
}

// rankDiag is one rank's monitor-visible state. The owning rank updates
// it at blocking-operation boundaries; the watchdog reads it when a run
// stalls. All access goes through the mutex.
type rankDiag struct {
	mu        sync.Mutex
	kind      BlockKind
	peer, tag int
	pending   []PendingEntry
	panicVal  any
	// abortKind/abortPeer record the operation the rank was inside the
	// last time it parked for the host: BlockSend or BlockRecv when an
	// abort unwound it mid-exchange (setRunning never ran), BlockNone when
	// the previous operation completed cleanly. The recovery supervisor
	// consumes them to decide which transport pairs carry torn protocol
	// state and need a sequence reset.
	abortKind BlockKind
	abortPeer int
}

func (d *rankDiag) setBlocked(k BlockKind, peer, tag int) {
	d.mu.Lock()
	d.kind, d.peer, d.tag = k, peer, tag
	d.mu.Unlock()
}

// parkForHost atomically captures the abort context of the operation the
// rank is abandoning and transitions to BlockHost. Quiesce observing
// BlockHost therefore guarantees the context has been recorded.
func (d *rankDiag) parkForHost() {
	d.mu.Lock()
	if d.kind == BlockSend || d.kind == BlockRecv {
		d.abortKind, d.abortPeer = d.kind, d.peer
	}
	d.kind, d.peer, d.tag = BlockHost, -1, -1
	d.mu.Unlock()
}

// takeAbortContext returns and clears the recorded mid-exchange context.
func (d *rankDiag) takeAbortContext() (BlockKind, int) {
	d.mu.Lock()
	k, p := d.abortKind, d.abortPeer
	d.abortKind, d.abortPeer = BlockNone, 0
	d.mu.Unlock()
	return k, p
}

func (d *rankDiag) setRunning() {
	d.mu.Lock()
	d.kind = BlockNone
	d.mu.Unlock()
}

func (d *rankDiag) setPending(entries []PendingEntry) {
	d.mu.Lock()
	d.pending = entries
	d.mu.Unlock()
}

func (d *rankDiag) setDone() {
	d.mu.Lock()
	d.kind = BlockDone
	d.mu.Unlock()
}

// reset returns the slot to its launch state; the recovery supervisor
// calls it when respawning a crashed rank so the eventual machine report
// does not resurrect an already-recovered panic.
func (d *rankDiag) reset() {
	d.mu.Lock()
	d.kind = BlockNone
	d.peer, d.tag = 0, 0
	d.pending = nil
	d.panicVal = nil
	d.abortKind, d.abortPeer = BlockNone, 0
	d.mu.Unlock()
}

func (d *rankDiag) setPanic(v any) {
	d.mu.Lock()
	d.kind = BlockCrashed
	d.panicVal = v
	d.mu.Unlock()
}

func (d *rankDiag) panicValue() any {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.panicVal
}

func (d *rankDiag) snapshot() (BlockKind, int, int, []PendingEntry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kind, d.peer, d.tag, append([]PendingEntry(nil), d.pending...)
}
