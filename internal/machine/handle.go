package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Handle is a running simulated machine with supervisor access: beyond
// waiting for completion (the RunWith path), a supervisor can abort the
// current epoch, wait for the survivors to park, restart crashed ranks on
// fresh mailboxes, and roll the machine into a new epoch that fences all
// stale wire traffic. parallel.Session's crash-recovery loop is the
// intended caller; everything here assumes a resident body that parks in
// AwaitHost between host-fed operations.
//
// Supervisor methods (Abort, Quiesce, BeginEpoch, RestartRank,
// RestoreMeters, Emit) are called from one host goroutine; RankMeters is
// safe whenever the rank in question is parked, crashed, or done.
type Handle struct {
	m       *Machine
	cfg     RunConfig
	factory TransportFactory
	body    func(c *Comm)

	// Two completion stages: bodies counts returned (or panicked) rank
	// bodies; wg counts fully exited goroutines. Between the two, a rank
	// whose transport implements Idler lingers — answering peers'
	// retransmissions — until every body has returned, so a lost final
	// ack cannot strand a still-running sender. Crashed ranks do not
	// linger: their silence is the fault being modelled.
	bodies     sync.WaitGroup
	wg         sync.WaitGroup
	stopLinger chan struct{}
	stopOnce   sync.Once
	done       chan struct{}
	doneOnce   sync.Once
	alive      atomic.Int64 // outstanding rank goroutines
	ownedBE    Backend      // built by cfg.BackendFactory; closed with done
}

// StartWith launches body on the ranks this process owns (all P by
// default; cfg.LocalRanks restricts to a subset for distributed runs) and
// returns without waiting. RunWith is StartWith + Wait.
func StartWith(p int, cfg RunConfig, body func(c *Comm)) (*Handle, error) {
	if p < 1 {
		return nil, fmt.Errorf("machine: P = %d", p)
	}
	be := cfg.Backend
	var owned Backend // factory-built: closed when the last rank goroutine exits
	if be == nil && cfg.BackendFactory != nil {
		b, err := cfg.BackendFactory()
		if err != nil {
			return nil, fmt.Errorf("machine: backend factory: %w", err)
		}
		be, owned = b, b
	}
	if be == nil {
		be = NewSimBackend(cfg.InboxCap)
	}
	locals := cfg.LocalRanks
	if locals == nil {
		locals = make([]int, p)
		for i := range locals {
			locals[i] = i
		}
	}
	if len(locals) == 0 {
		return nil, fmt.Errorf("machine: no local ranks")
	}
	isLocal := make([]bool, p)
	for _, r := range locals {
		if r < 0 || r >= p {
			return nil, fmt.Errorf("machine: local rank %d of %d", r, p)
		}
		if isLocal[r] {
			return nil, fmt.Errorf("machine: local rank %d listed twice", r)
		}
		isLocal[r] = true
	}
	m := &Machine{
		p:           p,
		be:          be,
		raws:        make([]BackendWire, p),
		localRanks:  append([]int(nil), locals...),
		isLocal:     isLocal,
		distributed: len(locals) < p,
		sent:        make([]counter, p),
		recv:        make([]counter, p),
		wireSent:    make([]counter, p),
		wireRecv:    make([]counter, p),
		barrier:     newBarrier(len(locals)),
		observer:    cfg.Observer,
		wireEvents:  cfg.WireEvents,
		obsState:    make([]rankObsState, p),
		diags:       make([]rankDiag, p),
		abortCh:     make(chan struct{}),
		recovering:  cfg.OnRankDown != nil,
		start:       time.Now(),
	}
	m.epoch.Store(cfg.StartEpoch)
	for _, r := range locals {
		w, err := be.NewWire(r, p)
		if err != nil {
			if owned != nil {
				owned.Close()
			}
			return nil, err
		}
		m.raws[r] = w
	}
	factory := cfg.Transport
	if factory == nil {
		factory = NewDirectTransport
	}
	h := &Handle{
		m:          m,
		cfg:        cfg,
		factory:    factory,
		body:       body,
		stopLinger: make(chan struct{}),
		done:       make(chan struct{}),
		ownedBE:    owned,
	}
	h.alive.Add(int64(len(locals))) // before any goroutine can exit and close done
	for _, rank := range locals {
		h.spawnRank(rank)
	}
	go func() {
		h.bodies.Wait()
		h.endLinger()
	}()
	return h, nil
}

func (h *Handle) endLinger() { h.stopOnce.Do(func() { close(h.stopLinger) }) }

// spawnRank launches one rank's goroutine, maintaining the two
// completion stages and the done channel. The done channel closes when
// the outstanding goroutine count reaches zero; a RestartRank racing
// that close is impossible because restarts are only legal while the
// supervisor holds survivors parked (their goroutines are alive).
func (h *Handle) spawnRank(rank int) {
	h.bodies.Add(1)
	h.wg.Add(1)
	go h.runRank(rank)
}

func (h *Handle) runRank(rank int) {
	defer func() {
		h.wg.Done()
		if h.alive.Add(-1) == 0 {
			h.doneOnce.Do(func() {
				close(h.done)
				if h.ownedBE != nil {
					h.ownedBE.Close()
				}
			})
		}
	}()
	m := h.m
	d := &m.diags[rank]
	w := Wire(newLink(m, rank, m.raws[rank]))
	tp := h.factory(w)
	var panicVal any
	panicked := func() (panicked bool) {
		defer h.bodies.Done()
		defer func() {
			if r := recover(); r != nil {
				d.setPanic(r)
				panicVal = r
				panicked = true
			}
		}()
		h.body(&Comm{m: m, rank: rank, t: tp, diag: d, w: w, factory: h.factory})
		return false
	}()
	if panicked {
		if h.cfg.OnRankDown != nil {
			h.cfg.OnRankDown(rank, panicToError(rank, panicVal))
		}
		return
	}
	d.setDone()
	if idler, ok := tp.(Idler); ok {
		idler.Linger(h.stopLinger)
	}
}

// panicToError converts a rank's panic value into the structured error
// the run would surface for it.
func panicToError(rank int, v any) error {
	switch e := v.(type) {
	case CrashError:
		return e
	case UnreachableError:
		return e
	default:
		return fmt.Errorf("machine: rank %d panicked: %v", rank, v)
	}
}

// Wait blocks until every rank goroutine has exited (running the stall
// watchdog when configured) and returns the cumulative report. Call it
// exactly once, after the resident body has been released (op channels
// closed) or to collect a watchdog/crash failure.
func (h *Handle) Wait() (*Report, error) {
	if h.cfg.Timeout > 0 {
		if err := h.m.watch(h.done, h.cfg.Timeout); err != nil {
			h.endLinger() // release finished ranks still answering retransmits
			return nil, err
		}
	} else {
		<-h.done
	}
	if err := h.m.panicError(); err != nil {
		return nil, err
	}
	return h.m.reportNow(), nil
}

// Epoch returns the machine's current recovery epoch.
func (h *Handle) Epoch() int64 { return h.m.epoch.Load() }

// Abort starts unwinding the current epoch: every rank blocked inside a
// machine operation (Send ack-waits, Recv, Barrier) panics with the
// abort sentinel the moment it next touches the machine, and a resident
// body recovers the sentinel and re-parks. Parked ranks are unaffected —
// their AwaitHost wait is host input, not epoch work. Idempotent.
func (h *Handle) Abort() {
	m := h.m
	m.abortMu.Lock()
	if !m.aborting.Swap(true) {
		close(m.abortCh)
	}
	m.abortMu.Unlock()
	m.barrier.abort()
}

// Quiesce polls until every rank is parked (BlockHost), crashed, or done
// — the precondition for BeginEpoch/RestartRank — failing after timeout.
// Call it after Abort; survivors unwind to their park within a few
// scheduler quanta unless one is stuck in a long local compute.
func (h *Handle) Quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if h.quiescent() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("machine: ranks still unwinding after %v abort window", timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func (h *Handle) quiescent() bool {
	for _, r := range h.m.localRanks {
		kind, _, _, _ := h.m.diags[r].snapshot()
		switch kind {
		case BlockHost, BlockCrashed, BlockDone:
		default:
			return false
		}
	}
	return true
}

// CrashedRanks lists the local ranks whose bodies have panicked and not
// been restarted. A remote rank's death is an OS-process event its own
// supervisor observes; this machine only ever sees the silence.
func (h *Handle) CrashedRanks() []int {
	var out []int
	for _, r := range h.m.localRanks {
		kind, _, _, _ := h.m.diags[r].snapshot()
		if kind == BlockCrashed {
			out = append(out, r)
		}
	}
	return out
}

// BeginEpoch rolls the machine into a new epoch after an Abort has
// quiesced it: the abort flag clears, every mailbox is drained (stale
// packets from the aborted epoch would otherwise confuse fresh protocol
// state — and any that survive the drain in flight are fenced by their
// epoch stamp), the barrier re-arms, and every rank's trace phase scope
// resets (an aborted operation can die mid-phase, and the replay begins
// the phase again). Returns the new epoch. Drained payloads are never
// recycled into the payload pool: a pre-crash transport may still hold
// retransmission references to them.
func (h *Handle) BeginEpoch() int64 {
	m := h.m
	m.abortMu.Lock()
	m.aborting.Store(false)
	m.abortCh = make(chan struct{})
	epoch := m.epoch.Add(1)
	m.abortMu.Unlock()
	m.barrier.reset()
	for _, r := range m.localRanks {
		m.raws[r].Drain()
		st := &m.obsState[r]
		st.phase = ""
		st.op = ""
		st.opDepth = 0
	}
	return epoch
}

// RestartRank respawns a crashed rank's body on a fresh mailbox with
// fresh transport state, clearing its recorded panic so the eventual
// Wait does not resurrect an already-recovered crash. Call between
// BeginEpoch and the replay dispatch; the respawned body starts in the
// new epoch, parks, and sees no need to Rebind. The backend must be a
// RankResetter (SimBackend is); a socket backend's ranks are OS
// processes, restarted by the cluster supervisor, not here.
func (h *Handle) RestartRank(rank int) error {
	if rank < 0 || rank >= h.m.p {
		return fmt.Errorf("machine: restart of rank %d of %d", rank, h.m.p)
	}
	if !h.m.isLocal[rank] {
		return fmt.Errorf("machine: restart of remote rank %d", rank)
	}
	rr, ok := h.m.be.(RankResetter)
	if !ok {
		return fmt.Errorf("machine: backend %T cannot reset a rank in-process; respawn the rank's process instead", h.m.be)
	}
	kind, _, _, _ := h.m.diags[rank].snapshot()
	if kind != BlockCrashed {
		return fmt.Errorf("machine: restart of rank %d in state %v (want crashed)", rank, kind)
	}
	rr.ResetRank(rank)
	h.m.diags[rank].reset()
	// A crashed rank's goroutine has fully exited, so alive is strictly
	// below P here, and the parked survivors keep it above zero — the
	// increment cannot race the done close.
	h.alive.Add(1)
	h.spawnRank(rank)
	return nil
}

// RankMeters reads one rank's counter snapshot from the host. Valid
// whenever the rank cannot be mid-operation: parked, crashed, done — or
// the whole machine dead (unlike Comm.Meters, no live rank goroutine is
// needed, which is what the degraded-relaunch path relies on to carry
// counters across machines).
func (h *Handle) RankMeters(rank int) Meters {
	m := h.m
	return Meters{
		SentWords: m.sent[rank].words.Load(), RecvWords: m.recv[rank].words.Load(),
		SentMsgs: m.sent[rank].msgs.Load(), RecvMsgs: m.recv[rank].msgs.Load(),
		WireSentWords: m.wireSent[rank].words.Load(), WireRecvWords: m.wireRecv[rank].words.Load(),
		WireSentMsgs: m.wireSent[rank].msgs.Load(), WireRecvMsgs: m.wireRecv[rank].msgs.Load(),
	}
}

// RestoreMeters overwrites one rank's logical counters with mt — the
// rollback that makes logical meters count committed work exactly once.
// With wire set, the wire counters are overwritten too (the degraded
// relaunch carries cumulative wire totals onto the fresh machine);
// otherwise they keep accumulating, which is where recovery overhead is
// supposed to show.
func (h *Handle) RestoreMeters(rank int, mt Meters, wire bool) {
	m := h.m
	m.sent[rank].set(mt.SentWords, mt.SentMsgs)
	m.recv[rank].set(mt.RecvWords, mt.RecvMsgs)
	if wire {
		m.wireSent[rank].set(mt.WireSentWords, mt.WireSentMsgs)
		m.wireRecv[rank].set(mt.WireRecvWords, mt.WireRecvMsgs)
	}
}

// Emit injects a trace event on a rank's stream from the host — recovery
// markers (EventRankDown, EventRecoveryBegin, EventRecoveryEnd) land in
// the same (rank, seq) order as the rank's own events. Only legal while
// the rank is parked, crashed, or done.
func (h *Handle) Emit(rank int, e Event) {
	h.m.emit(rank, e)
}

// RankEventSeq returns the sequence number the rank's next emitted event
// will carry. A recovery supervisor records it at checkpoint time so a
// later rollback can mark — via the EventRecoveryEnd Step field — exactly
// which of the rank's events belong to the aborted attempt.
func (h *Handle) RankEventSeq(rank int) int64 {
	return h.m.obsState[rank].seq.Load()
}

// RestoreEventSeq overwrites a rank's event sequence counter. The
// degraded-relaunch path uses it to carry per-rank trace ordering onto a
// fresh machine, whose counters would otherwise restart at zero and
// scramble the canonical (rank, seq) event order.
func (h *Handle) RestoreEventSeq(rank int, seq int64) {
	h.m.obsState[rank].seq.Store(seq)
}

// TakeAbortContext returns and clears the operation the rank was unwound
// out of by the last abort: BlockSend or BlockRecv plus the peer when the
// rank re-parked mid-exchange, BlockNone when its previous operation
// completed cleanly. Valid after Quiesce (parking records the context
// before the rank becomes host-blocked).
func (h *Handle) TakeAbortContext(rank int) (BlockKind, int) {
	return h.m.diags[rank].takeAbortContext()
}

// RankPending snapshots the messages a rank's transport has buffered —
// pulled off the wire (or parked out of order) but never consumed by a
// logical Recv. After an abort these are conversations torn mid-flight;
// the recovery supervisor reads them to find disturbed transport pairs.
func (h *Handle) RankPending(rank int) []PendingEntry {
	_, _, _, pending := h.m.diags[rank].snapshot()
	return pending
}
