package machine

import (
	"runtime"
	"runtime/debug"
	"testing"
)

func TestClassSize(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16},
		{1023, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := classSize(c.n); got != c.want {
			t.Errorf("classSize(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPayloadPoolReuse(t *testing.T) {
	var pp payloadPool
	a := pp.get(5)
	if len(a) != 5 || cap(a) != 8 {
		t.Fatalf("get(5): len %d cap %d, want 5/8", len(a), cap(a))
	}
	pp.put(a)
	b := pp.get(7) // same class (8): must be the recycled buffer
	if len(b) != 7 || &b[0] != &a[0] {
		t.Fatal("get after put did not reuse the pooled buffer")
	}
	// Foreign capacities (not an exact class size) are rejected.
	pp.put(make([]float64, 5, 6))
	c := pp.get(5)
	if cap(c) != 8 {
		t.Fatalf("pool accepted a non-class-size buffer (cap %d)", cap(c))
	}
	if pp.get(0) != nil {
		t.Fatal("get(0) must be nil")
	}
}

func TestPayloadPoolClassBound(t *testing.T) {
	var pp payloadPool
	for i := 0; i < maxPooledPerClass+10; i++ {
		pp.put(make([]float64, 8))
	}
	if got := len(pp.classes[8]); got != maxPooledPerClass {
		t.Fatalf("class 8 holds %d buffers, want the %d cap", got, maxPooledPerClass)
	}
}

// TestSteadyStateExchangeZeroAlloc pins the machine-layer half of the
// session engine's zero-allocation guarantee: a Send/RecvInto/Barrier
// loop over the direct transport allocates nothing after one warm-up
// round, because Send draws its defensive copy from the payload pool and
// RecvInto recycles it on delivery.
func TestSteadyStateExchangeZeroAlloc(t *testing.T) {
	const p = 2
	const words = 96
	const rounds = 200
	var mallocs uint64
	rep, err := RunWith(p, RunConfig{}, func(c *Comm) {
		me := c.Rank()
		peer := 1 - me
		src := make([]float64, words)
		dst := make([]float64, words)
		exchange := func() {
			if me == 0 {
				c.Send(peer, 7, src)
				c.RecvInto(peer, 7, dst)
			} else {
				c.RecvInto(peer, 7, dst)
				c.Send(peer, 7, src)
			}
			c.Barrier()
		}
		for i := 0; i < 3; i++ { // warm the pool and the barrier path
			exchange()
		}
		c.Barrier()
		if me == 0 {
			// Measure from rank 0 only; rank 1 mirrors the same loop, so
			// any allocation on either side shows up in the global
			// malloc counter read after both ranks pass the barrier.
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			for i := 0; i < rounds; i++ {
				exchange()
			}
			runtime.ReadMemStats(&after)
			mallocs = after.Mallocs - before.Mallocs
		} else {
			for i := 0; i < rounds; i++ {
				exchange()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64((rounds + 3) * words); rep.SentWords[0] != want {
		t.Fatalf("sent words %d, want %d", rep.SentWords[0], want)
	}
	// ReadMemStats itself and the runtime's background activity can
	// account for a handful of mallocs; the loop moves 400 messages, so a
	// per-message allocation would show up as >=400.
	if mallocs > 50 {
		t.Fatalf("steady-state exchange performed %d mallocs over %d rounds, want ~0 — Send or RecvInto is allocating per message", mallocs, rounds)
	}
}
