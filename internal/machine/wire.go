package machine

import (
	"fmt"
	"sort"
	"time"
)

// PacketKind distinguishes raw wire datagrams.
type PacketKind int

const (
	// PacketData carries a logical message payload (or a transport's
	// retransmission of one).
	PacketData PacketKind = iota
	// PacketAck carries a transport acknowledgement. Acks move no logical
	// payload and are metered as zero-word wire messages.
	PacketAck
)

func (k PacketKind) String() string {
	switch k {
	case PacketData:
		return "data"
	case PacketAck:
		return "ack"
	}
	return fmt.Sprintf("PacketKind(%d)", int(k))
}

// Packet is one raw wire datagram. The logical Send/Recv API never sees
// packets; transports do, and fault injectors perturb them.
type Packet struct {
	From, To, Tag int
	// Seq is a transport-assigned per-(sender→receiver) sequence number
	// (0 under the direct transport, which needs none).
	Seq  int
	Kind PacketKind
	Data []float64
	// Check is a payload checksum set and verified by transports that
	// detect corruption; the direct transport ignores it.
	Check uint64
	// Epoch is the machine epoch the packet was delivered in, stamped by
	// the wire on Deliver. After a crash recovery advances the epoch
	// (Handle.BeginEpoch), packets stamped with an earlier epoch — stale
	// retransmissions from before the rollback — are fenced at the
	// receiving end and never reach a transport.
	Epoch int64
	// Recycle marks Data as eligible for the machine's payload pool once
	// the final consumer has copied it out (see Comm.RecvInto). Only a
	// transport that retains no reference to Data after delivery may set
	// it — the direct transport does; the reliable transport must not
	// (its retransmission window aliases the buffer), and a fault
	// injector duplicating a packet must clear it on the copy.
	Recycle bool
}

// Wire is a rank's raw endpoint on the simulated network: push a packet
// into any destination mailbox, pull the next packet addressed to this
// rank. Wire traffic is metered separately from the logical meters, so
// retransmissions and acks never perturb the communication counts the
// paper's theory bounds. Exactly one goroutine (the owning rank) may call
// Pull/PullTimeout on a given Wire.
type Wire interface {
	// Rank returns the owning processor's id in 0..P-1.
	Rank() int
	// Size returns P.
	Size() int
	// Deliver pushes pkt into the mailbox of pkt.To, metering wire words
	// and messages at the sender. It blocks while the destination mailbox
	// is at capacity (only possible with a finite InboxCap).
	Deliver(pkt Packet)
	// Pull blocks until a packet addressed to this rank arrives and
	// returns it, metering wire words at the receiver.
	Pull() Packet
	// PullTimeout is Pull with a deadline; ok is false on timeout.
	PullTimeout(d time.Duration) (Packet, bool)
	// Pending publishes a snapshot of the transport's buffered-but-
	// undelivered messages for the deadlock monitor's diagnostics.
	Pending(entries []PendingEntry)
	// Aborting reports whether the machine is unwinding the current epoch
	// (a crash-recovery abort). A transport looping on PullTimeout —
	// waiting for an acknowledgement, say — must check it each iteration
	// and call Aborted() to unwind, because PullTimeout itself never
	// panics (it also runs inside park/linger loops that must survive the
	// abort).
	Aborting() bool
	// Epoch returns the machine's current recovery epoch. A transport
	// incarnation records it at construction and must ignore packets
	// stamped with any other epoch: a parked pre-recovery incarnation
	// otherwise services a replay's fresh traffic with stale protocol
	// state (acknowledging a replayed sequence number as a duplicate and
	// discarding it — a silently lost message).
	Epoch() int64
}

// Transport mediates a rank's logical Send/Recv over the raw wire. The
// direct transport maps them 1:1 onto packets; package fault provides a
// reliable transport (acks, retransmission, dedup, reordering repair)
// that preserves logical semantics over a faulty wire.
type Transport interface {
	Send(to, tag int, data []float64)
	Recv(from, tag int) []float64
}

// TransportFactory builds one rank's transport around its raw wire
// endpoint. It is called once per rank, from that rank's goroutine.
type TransportFactory func(w Wire) Transport

// PayloadReceiver is an optional Transport extension that exposes payload
// buffer provenance: RecvPayload behaves like Recv but additionally
// reports whether the returned buffer may be recycled into the machine's
// payload pool once the caller has copied it out. Comm.RecvInto uses it;
// transports that retain or re-deliver payloads must either not implement
// it or return recycle == false.
type PayloadReceiver interface {
	Transport
	RecvPayload(from, tag int) (data []float64, recycle bool)
}

// EpochAdopter is an optional Transport extension for protocols that can
// carry their sequence state across a recovery epoch instead of being
// rebuilt from scratch. AdoptEpoch moves the transport into the given
// epoch and resets per-peer protocol state (sequence counters, parked
// out-of-order packets, undelivered buffered messages) for exactly the
// listed peers — the pairs the supervisor determined were disturbed by
// the aborted epoch. Pairs not listed keep their counters: a completed,
// acknowledged exchange advanced both ends consistently, so rebuilding
// them would discard valid state for nothing.
//
// Resets must be pair-symmetric: the supervisor computes one global set
// of disturbed pairs and hands each rank its side of it. A transport that
// resets a pair unilaterally while the peer keeps counting would either
// dedup-drop real messages or park them forever.
type EpochAdopter interface {
	Transport
	AdoptEpoch(epoch int64, resetPeers []int)
}

// Idler is an optional Transport extension for protocols that must keep
// servicing the wire while their rank is blocked outside Send/Recv. A
// reliable (ack-based) transport needs both hooks: without them, a lost
// acknowledgement strands the sender once the receiver stops pulling its
// mailbox — at a barrier, or after its body returns.
type Idler interface {
	Transport
	// Idle services incoming packets in full until stop is closed; the
	// machine calls it while the rank waits at a barrier.
	Idle(stop <-chan struct{})
	// Linger services protocol echoes only (e.g. re-acking duplicates of
	// already-delivered messages) until stop is closed; the machine calls
	// it after the rank's body returns, so peers retransmitting into this
	// rank's mailbox can still complete. A message the body never
	// received must NOT be acknowledged here — its sender is entitled to
	// an UnreachableError.
	Linger(stop <-chan struct{})
}

// link is the concrete Wire implementation: the machine's metering,
// epoch-stamping and abort-unwinding decorator over a backend's raw wire.
// Every backend — the in-memory SimBackend, a TCP or unix-socket netwire —
// gets identical Wire semantics because this layer is shared.
type link struct {
	m    *Machine
	rank int
	raw  BackendWire
	cost func(Packet) int64 // wire-meter pricing (PacketCoster or payload words)
}

func newLink(m *Machine, rank int, raw BackendWire) *link {
	l := &link{m: m, rank: rank, raw: raw}
	if pc, ok := raw.(PacketCoster); ok {
		l.cost = pc.PacketCost
	} else {
		l.cost = func(pkt Packet) int64 { return int64(len(pkt.Data)) }
	}
	if dr, ok := raw.(DropReporter); ok && m.wireEvents {
		// Promote the wire's loss reports into the structured event
		// stream: one EventDrop per lost datagram. Wire-only — drops never
		// touch the logical meters the paper's bounds are checked against.
		dr.OnDrop(func(pkt Packet, reason string) {
			m.emit(rank, Event{Kind: EventDrop, From: rank, To: pkt.To, Tag: pkt.Tag, Words: len(pkt.Data), Step: -1, Wire: true})
		})
	}
	return l
}

func (l *link) Rank() int { return l.rank }
func (l *link) Size() int { return l.m.p }

func (l *link) Deliver(pkt Packet) {
	if pkt.To < 0 || pkt.To >= l.m.p {
		panic(fmt.Sprintf("machine: deliver to rank %d of %d", pkt.To, l.m.p))
	}
	pkt.Epoch = l.m.epoch.Load()
	l.m.wireSent[l.rank].add(l.cost(pkt))
	if l.m.wireEvents {
		l.m.emit(l.rank, Event{Kind: EventSend, From: l.rank, To: pkt.To, Tag: pkt.Tag, Words: len(pkt.Data), Step: -1, Wire: true})
	}
	l.raw.Deliver(pkt)
}

func (l *link) Pull() Packet {
	for {
		if l.m.aborting.Load() {
			panic(abortPanic{})
		}
		pkt, ok := l.raw.Pull(l.m.abortChan())
		if !ok {
			continue // the abort channel woke us; the check above unwinds
		}
		if pkt.Epoch != l.m.epoch.Load() {
			continue // stale retransmission from a pre-recovery epoch
		}
		l.m.wireRecv[l.rank].add(l.cost(pkt))
		if l.m.wireEvents {
			l.m.emit(l.rank, Event{Kind: EventRecv, From: pkt.From, To: l.rank, Tag: pkt.Tag, Words: len(pkt.Data), Step: -1, Wire: true})
		}
		return pkt
	}
}

func (l *link) PullTimeout(d time.Duration) (Packet, bool) {
	pkt, ok := l.raw.PullTimeout(d)
	if ok && pkt.Epoch != l.m.epoch.Load() {
		// A stale-epoch packet reads as silence, never as a panic: this
		// path also serves the Idle/Linger/park loops, which must survive
		// an epoch abort intact.
		return Packet{}, false
	}
	if ok {
		l.m.wireRecv[l.rank].add(l.cost(pkt))
		if l.m.wireEvents {
			l.m.emit(l.rank, Event{Kind: EventRecv, From: pkt.From, To: l.rank, Tag: pkt.Tag, Words: len(pkt.Data), Step: -1, Wire: true})
		}
	}
	return pkt, ok
}

func (l *link) Aborting() bool { return l.m.aborting.Load() }

func (l *link) Epoch() int64 { return l.m.epoch.Load() }

func (l *link) Pending(entries []PendingEntry) {
	l.m.diags[l.rank].setPending(entries)
}

// barrier delegates a distributed barrier wait to the raw wire; ok is
// false when the wire does not support one.
func (l *link) barrier() (BarrierWire, bool) {
	bw, ok := l.raw.(BarrierWire)
	return bw, ok
}

// directTransport is the default transport: a logical message is exactly
// one packet, delivery is exact and in order (the simulated network is
// perfect), so no acks, sequence numbers, or retransmission are needed.
// Messages pulled while waiting for a specific (from, tag) are buffered
// per key, FIFO, preserving the per-(sender, tag) ordering guarantee.
type directTransport struct {
	w       Wire
	pending map[[2]int][]bufferedPayload
}

// bufferedPayload is one out-of-order payload held by a transport,
// remembering whether its buffer may still be recycled on consumption.
type bufferedPayload struct {
	data    []float64
	recycle bool
}

// NewDirectTransport returns the default transport over w. It is exported
// so fault injectors can compose it over a perturbed wire.
func NewDirectTransport(w Wire) Transport {
	return &directTransport{w: w, pending: make(map[[2]int][]bufferedPayload)}
}

func (t *directTransport) Send(to, tag int, data []float64) {
	// Recycle: the direct transport keeps no reference past Deliver, so
	// the receiver may return the buffer to the payload pool.
	t.w.Deliver(Packet{From: t.w.Rank(), To: to, Tag: tag, Kind: PacketData, Data: data, Recycle: true})
}

func (t *directTransport) Recv(from, tag int) []float64 {
	data, _ := t.RecvPayload(from, tag)
	return data
}

// RecvPayload implements PayloadReceiver: the returned flag propagates the
// packet's Recycle mark so Comm.RecvInto can pool the buffer.
func (t *directTransport) RecvPayload(from, tag int) ([]float64, bool) {
	key := [2]int{from, tag}
	if q := t.pending[key]; len(q) > 0 {
		bp := q[0]
		q[0] = bufferedPayload{}
		t.pending[key] = q[1:]
		t.w.Pending(summarizeBuffered(t.pending))
		return bp.data, bp.recycle
	}
	for {
		pkt := t.w.Pull()
		if pkt.From == from && pkt.Tag == tag {
			return pkt.Data, pkt.Recycle
		}
		k := [2]int{pkt.From, pkt.Tag}
		t.pending[k] = append(t.pending[k], bufferedPayload{data: pkt.Data, recycle: pkt.Recycle})
		t.w.Pending(summarizeBuffered(t.pending))
	}
}

// summarizeBuffered is SummarizePending for the direct transport's
// provenance-tracking pending map.
func summarizeBuffered(pending map[[2]int][]bufferedPayload) []PendingEntry {
	var out []PendingEntry
	for key, msgs := range pending {
		if len(msgs) == 0 {
			continue
		}
		words := 0
		for _, m := range msgs {
			words += len(m.data)
		}
		out = append(out, PendingEntry{From: key[0], Tag: key[1], Msgs: len(msgs), Words: words})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// SummarizePending condenses a transport's pending map (keyed by
// [2]int{from, tag}) into sorted diagnostic entries for Wire.Pending.
func SummarizePending(pending map[[2]int][][]float64) []PendingEntry {
	var out []PendingEntry
	for key, msgs := range pending {
		if len(msgs) == 0 {
			continue
		}
		words := 0
		for _, m := range msgs {
			words += len(m)
		}
		out = append(out, PendingEntry{From: key[0], Tag: key[1], Msgs: len(msgs), Words: words})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}
