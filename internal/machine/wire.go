package machine

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// PacketKind distinguishes raw wire datagrams.
type PacketKind int

const (
	// PacketData carries a logical message payload (or a transport's
	// retransmission of one).
	PacketData PacketKind = iota
	// PacketAck carries a transport acknowledgement. Acks move no logical
	// payload and are metered as zero-word wire messages.
	PacketAck
)

func (k PacketKind) String() string {
	switch k {
	case PacketData:
		return "data"
	case PacketAck:
		return "ack"
	}
	return fmt.Sprintf("PacketKind(%d)", int(k))
}

// Packet is one raw wire datagram. The logical Send/Recv API never sees
// packets; transports do, and fault injectors perturb them.
type Packet struct {
	From, To, Tag int
	// Seq is a transport-assigned per-(sender→receiver) sequence number
	// (0 under the direct transport, which needs none).
	Seq  int
	Kind PacketKind
	Data []float64
	// Check is a payload checksum set and verified by transports that
	// detect corruption; the direct transport ignores it.
	Check uint64
}

// Wire is a rank's raw endpoint on the simulated network: push a packet
// into any destination mailbox, pull the next packet addressed to this
// rank. Wire traffic is metered separately from the logical meters, so
// retransmissions and acks never perturb the communication counts the
// paper's theory bounds. Exactly one goroutine (the owning rank) may call
// Pull/PullTimeout on a given Wire.
type Wire interface {
	// Rank returns the owning processor's id in 0..P-1.
	Rank() int
	// Size returns P.
	Size() int
	// Deliver pushes pkt into the mailbox of pkt.To, metering wire words
	// and messages at the sender. It blocks while the destination mailbox
	// is at capacity (only possible with a finite InboxCap).
	Deliver(pkt Packet)
	// Pull blocks until a packet addressed to this rank arrives and
	// returns it, metering wire words at the receiver.
	Pull() Packet
	// PullTimeout is Pull with a deadline; ok is false on timeout.
	PullTimeout(d time.Duration) (Packet, bool)
	// Pending publishes a snapshot of the transport's buffered-but-
	// undelivered messages for the deadlock monitor's diagnostics.
	Pending(entries []PendingEntry)
}

// Transport mediates a rank's logical Send/Recv over the raw wire. The
// direct transport maps them 1:1 onto packets; package fault provides a
// reliable transport (acks, retransmission, dedup, reordering repair)
// that preserves logical semantics over a faulty wire.
type Transport interface {
	Send(to, tag int, data []float64)
	Recv(from, tag int) []float64
}

// TransportFactory builds one rank's transport around its raw wire
// endpoint. It is called once per rank, from that rank's goroutine.
type TransportFactory func(w Wire) Transport

// Idler is an optional Transport extension for protocols that must keep
// servicing the wire while their rank is blocked outside Send/Recv. A
// reliable (ack-based) transport needs both hooks: without them, a lost
// acknowledgement strands the sender once the receiver stops pulling its
// mailbox — at a barrier, or after its body returns.
type Idler interface {
	Transport
	// Idle services incoming packets in full until stop is closed; the
	// machine calls it while the rank waits at a barrier.
	Idle(stop <-chan struct{})
	// Linger services protocol echoes only (e.g. re-acking duplicates of
	// already-delivered messages) until stop is closed; the machine calls
	// it after the rank's body returns, so peers retransmitting into this
	// rank's mailbox can still complete. A message the body never
	// received must NOT be acknowledged here — its sender is entitled to
	// an UnreachableError.
	Linger(stop <-chan struct{})
}

// link is the concrete Wire implementation over the machine's mailboxes.
type link struct {
	m    *Machine
	rank int
}

func (l *link) Rank() int { return l.rank }
func (l *link) Size() int { return l.m.p }

func (l *link) Deliver(pkt Packet) {
	if pkt.To < 0 || pkt.To >= l.m.p {
		panic(fmt.Sprintf("machine: deliver to rank %d of %d", pkt.To, l.m.p))
	}
	l.m.wireSent[l.rank].words += int64(len(pkt.Data))
	l.m.wireSent[l.rank].msgs++
	if l.m.wireEvents {
		l.m.emit(l.rank, Event{Kind: EventSend, From: l.rank, To: pkt.To, Tag: pkt.Tag, Words: len(pkt.Data), Step: -1, Wire: true})
	}
	l.m.boxes[pkt.To].push(pkt)
}

func (l *link) Pull() Packet {
	pkt, _ := l.m.boxes[l.rank].pull(0)
	l.m.wireRecv[l.rank].words += int64(len(pkt.Data))
	l.m.wireRecv[l.rank].msgs++
	if l.m.wireEvents {
		l.m.emit(l.rank, Event{Kind: EventRecv, From: pkt.From, To: l.rank, Tag: pkt.Tag, Words: len(pkt.Data), Step: -1, Wire: true})
	}
	return pkt
}

func (l *link) PullTimeout(d time.Duration) (Packet, bool) {
	pkt, ok := l.m.boxes[l.rank].pull(d)
	if ok {
		l.m.wireRecv[l.rank].words += int64(len(pkt.Data))
		l.m.wireRecv[l.rank].msgs++
		if l.m.wireEvents {
			l.m.emit(l.rank, Event{Kind: EventRecv, From: pkt.From, To: l.rank, Tag: pkt.Tag, Words: len(pkt.Data), Step: -1, Wire: true})
		}
	}
	return pkt, ok
}

func (l *link) Pending(entries []PendingEntry) {
	l.m.diags[l.rank].setPending(entries)
}

// mailbox is an unbounded (or capacity-capped) FIFO packet queue with a
// single consumer and many producers. Unlike a fixed-capacity channel it
// cannot silently deadlock a protocol whose in-flight message count
// exceeds a preset buffer size.
type mailbox struct {
	mu     sync.Mutex
	space  *sync.Cond // producers wait here when capped and full
	q      []Packet
	cap    int           // <= 0 means unbounded
	notify chan struct{} // best-effort consumer wakeup
}

func newMailbox(capacity int) *mailbox {
	b := &mailbox{cap: capacity, notify: make(chan struct{}, 1)}
	b.space = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) push(p Packet) {
	b.mu.Lock()
	for b.cap > 0 && len(b.q) >= b.cap {
		b.space.Wait()
	}
	b.q = append(b.q, p)
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// pull removes the oldest packet, blocking indefinitely when d == 0 and
// giving up after d otherwise.
func (b *mailbox) pull(d time.Duration) (Packet, bool) {
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	for {
		b.mu.Lock()
		if len(b.q) > 0 {
			p := b.q[0]
			b.q[0] = Packet{}
			b.q = b.q[1:]
			if len(b.q) == 0 {
				b.q = nil
			}
			b.space.Signal()
			b.mu.Unlock()
			return p, true
		}
		b.mu.Unlock()
		if d == 0 {
			<-b.notify
			continue
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return Packet{}, false
		}
		t := time.NewTimer(remain)
		select {
		case <-b.notify:
			t.Stop()
		case <-t.C:
			return Packet{}, false
		}
	}
}

func (b *mailbox) depth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.q)
}

// directTransport is the default transport: a logical message is exactly
// one packet, delivery is exact and in order (the simulated network is
// perfect), so no acks, sequence numbers, or retransmission are needed.
// Messages pulled while waiting for a specific (from, tag) are buffered
// per key, FIFO, preserving the per-(sender, tag) ordering guarantee.
type directTransport struct {
	w       Wire
	pending map[[2]int][][]float64
}

// NewDirectTransport returns the default transport over w. It is exported
// so fault injectors can compose it over a perturbed wire.
func NewDirectTransport(w Wire) Transport {
	return &directTransport{w: w, pending: make(map[[2]int][][]float64)}
}

func (t *directTransport) Send(to, tag int, data []float64) {
	t.w.Deliver(Packet{From: t.w.Rank(), To: to, Tag: tag, Kind: PacketData, Data: data})
}

func (t *directTransport) Recv(from, tag int) []float64 {
	key := [2]int{from, tag}
	if q := t.pending[key]; len(q) > 0 {
		data := q[0]
		t.pending[key] = q[1:]
		t.w.Pending(SummarizePending(t.pending))
		return data
	}
	for {
		pkt := t.w.Pull()
		if pkt.From == from && pkt.Tag == tag {
			return pkt.Data
		}
		k := [2]int{pkt.From, pkt.Tag}
		t.pending[k] = append(t.pending[k], pkt.Data)
		t.w.Pending(SummarizePending(t.pending))
	}
}

// SummarizePending condenses a transport's pending map (keyed by
// [2]int{from, tag}) into sorted diagnostic entries for Wire.Pending.
func SummarizePending(pending map[[2]int][][]float64) []PendingEntry {
	var out []PendingEntry
	for key, msgs := range pending {
		if len(msgs) == 0 {
			continue
		}
		words := 0
		for _, m := range msgs {
			words += len(m)
		}
		out = append(out, PendingEntry{From: key[0], Tag: key[1], Msgs: len(msgs), Words: words})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}
