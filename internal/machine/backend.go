package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Backend supplies the raw packet layer a machine runs on: one BackendWire
// per local rank. The default SimBackend moves packets through in-memory
// mailboxes (the simulator the paper's meters were built on);
// internal/netwire provides TCP and unix-domain-socket backends that move
// the same packets through length-prefixed frames on real sockets, so the
// P ranks can run as separate OS processes.
//
// The seam sits below machine.Wire: a backend wire only moves packets.
// Everything the Wire contract promises on top — logical/wire metering,
// epoch stamping on Deliver and epoch fencing on Pull, abort unwinding,
// pending-state diagnostics — is layered on uniformly by the machine, so a
// TransportFactory (direct, reliable, fault-injected) composes unchanged
// over any backend.
type Backend interface {
	// NewWire returns rank's raw endpoint on a machine of the given size.
	// Called once per local rank at machine start; the wire stays valid
	// across rank restarts (SimBackend swaps the mailbox underneath it).
	NewWire(rank, size int) (BackendWire, error)
	// Close releases the backend's resources (sockets, listeners,
	// goroutines). The machine never calls it — the backend's creator
	// owns its lifecycle, because one backend may outlive several runs.
	Close() error
}

// BackendWire is one rank's raw packet endpoint as a Backend provides it:
// pure packet movement, with none of the Wire contract's metering or
// epoch semantics (the machine decorates those on).
type BackendWire interface {
	// Deliver pushes pkt toward pkt.To. It may block on backpressure (a
	// capped sim mailbox, a full TCP send buffer). Delivery to an
	// unreachable peer is dropped silently — lossy-close semantics; a
	// recovery supervisor, not the wire, resolves the resulting stall.
	Deliver(pkt Packet)
	// Pull blocks until a packet addressed to this rank arrives. A close
	// of the abort channel wakes the wait with ok == false.
	Pull(abort <-chan struct{}) (Packet, bool)
	// PullTimeout is Pull with a deadline; ok is false on timeout.
	PullTimeout(d time.Duration) (Packet, bool)
	// Depth reports the number of buffered undelivered packets (deadlock
	// diagnostics).
	Depth() int
	// Drain discards every buffered packet (epoch rollover).
	Drain()
}

// PacketCoster is an optional BackendWire extension that prices a packet
// for the wire meters. Without it a packet costs len(Data) words — the
// simulator's accounting. A real-network wire returns the framed size in
// 8-byte words (header, payload, and frame checksum included), so the
// Report's wire-vs-logical split measures what actually crossed the
// socket.
type PacketCoster interface {
	PacketCost(pkt Packet) int64
}

// BarrierWire is an optional BackendWire extension required for
// distributed runs (fewer local ranks than machine size): the in-process
// counting barrier cannot see remote ranks, so Comm.Barrier delegates to
// the wire. Barrier blocks until all size ranks of the given epoch have
// arrived and returns the global barrier generation (the trace's step
// identifier, identical on all participants and monotonic across epochs).
// A close of the abort channel — or a remote abort decision — wakes the
// wait with ok == false; the caller unwinds with the abort sentinel.
type BarrierWire interface {
	Barrier(epoch int64, abort <-chan struct{}) (gen int, ok bool)
}

// DropReporter is an optional BackendWire extension for lossy wires that
// can tell when they lose a datagram — a send to a dead peer, a write
// error, an injected chaos fault. The machine registers a hook that turns
// each loss into an EventDrop wire event, so dropped sends are countable
// in traces instead of only visible under ad-hoc debug logging. The hook
// is called from whatever goroutine performed the Deliver.
type DropReporter interface {
	OnDrop(fn func(pkt Packet, reason string))
}

// RankResetter is an optional Backend extension for backends that can
// hand a restarting rank a fresh inbound state (Handle.RestartRank).
// SimBackend implements it by swapping the rank's mailbox; a distributed
// backend typically does not — there a dead rank is a dead OS process,
// respawned by a process-level supervisor with a fresh backend of its own.
type RankResetter interface {
	ResetRank(rank int)
}

// PacketQueue is an unbounded (or capacity-capped) FIFO packet queue with
// a single consumer and many producers — the mailbox the simulator runs
// on, exported so socket backends can reuse it as their inbound queue.
// Unlike a fixed-capacity channel it cannot silently deadlock a protocol
// whose in-flight message count exceeds a preset buffer size; the backing
// array compacts in place, so a steady-state producer/consumer pair stops
// allocating once it has grown to the high-water depth.
type PacketQueue struct {
	mu     sync.Mutex
	space  *sync.Cond // producers wait here when capped and full
	q      []Packet
	head   int
	cap    int           // <= 0 means unbounded
	notify chan struct{} // best-effort consumer wakeup
}

// NewPacketQueue returns a queue holding at most capacity packets;
// capacity <= 0 means unbounded.
func NewPacketQueue(capacity int) *PacketQueue {
	b := &PacketQueue{cap: capacity, notify: make(chan struct{}, 1)}
	b.space = sync.NewCond(&b.mu)
	return b
}

// Push appends a packet, blocking while the queue is at capacity.
func (b *PacketQueue) Push(p Packet) {
	b.mu.Lock()
	for b.cap > 0 && len(b.q)-b.head >= b.cap {
		b.space.Wait()
	}
	if b.head > 0 && len(b.q) == cap(b.q) {
		// Reclaim the consumed prefix before growing the array.
		n := copy(b.q, b.q[b.head:])
		for i := n; i < len(b.q); i++ {
			b.q[i] = Packet{}
		}
		b.q = b.q[:n]
		b.head = 0
	}
	b.q = append(b.q, p)
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
}

// Pull removes the oldest packet, blocking until one arrives. A close of
// the abort channel (nil to wait forever) wakes the wait with ok == false
// so a rank blocked on an empty queue can unwind during an epoch abort.
func (b *PacketQueue) Pull(abort <-chan struct{}) (Packet, bool) {
	return b.pull(0, abort)
}

// PullTimeout is Pull with a deadline; ok is false on timeout.
func (b *PacketQueue) PullTimeout(d time.Duration) (Packet, bool) {
	if d <= 0 {
		d = time.Nanosecond
	}
	return b.pull(d, nil)
}

func (b *PacketQueue) pull(d time.Duration, abort <-chan struct{}) (Packet, bool) {
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	for {
		b.mu.Lock()
		if b.head < len(b.q) {
			p := b.q[b.head]
			b.q[b.head] = Packet{}
			b.head++
			if b.head == len(b.q) {
				b.q = b.q[:0]
				b.head = 0
			}
			b.space.Signal()
			b.mu.Unlock()
			return p, true
		}
		b.mu.Unlock()
		if d == 0 {
			select {
			case <-b.notify:
			case <-abort:
				return Packet{}, false
			}
			continue
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return Packet{}, false
		}
		t := time.NewTimer(remain)
		select {
		case <-b.notify:
			t.Stop()
		case <-t.C:
			return Packet{}, false
		}
	}
}

// Drain discards every queued packet. Discarded payloads go to the
// garbage collector, never back to the payload pool: a pre-crash sender's
// transport may still hold a retransmission reference to the buffer, so
// recycling here could alias a pooled buffer into a post-recovery Send.
func (b *PacketQueue) Drain() {
	b.mu.Lock()
	for i := range b.q {
		b.q[i] = Packet{}
	}
	b.q = b.q[:0]
	b.head = 0
	b.space.Broadcast()
	b.mu.Unlock()
}

// Depth returns the number of buffered packets.
func (b *PacketQueue) Depth() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.q) - b.head
}

// SimBackend is the default backend: per-rank in-memory mailboxes, exactly
// the simulated network the repo's communication meters were validated on.
// The zero value is unusable; use NewSimBackend. A SimBackend serves one
// machine at a time (its mailboxes are sized at the first NewWire).
type SimBackend struct {
	inboxCap int
	mu       sync.Mutex
	size     int
	boxes    []atomic.Pointer[PacketQueue]
}

// NewSimBackend returns an in-memory mailbox backend. inboxCap caps each
// rank's mailbox (senders block when full); <= 0 means unbounded.
func NewSimBackend(inboxCap int) *SimBackend {
	return &SimBackend{inboxCap: inboxCap}
}

// NewWire returns rank's mailbox endpoint, allocating the mailbox array on
// first use.
func (b *SimBackend) NewWire(rank, size int) (BackendWire, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.boxes == nil {
		b.size = size
		b.boxes = make([]atomic.Pointer[PacketQueue], size)
		for i := range b.boxes {
			b.boxes[i].Store(NewPacketQueue(b.inboxCap))
		}
	}
	if size != b.size {
		return nil, fmt.Errorf("machine: SimBackend sized for %d ranks, wire requested for machine of %d", b.size, size)
	}
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("machine: SimBackend wire for rank %d of %d", rank, size)
	}
	return &simWire{be: b, rank: rank}, nil
}

// Close is a no-op: mailboxes hold no OS resources.
func (b *SimBackend) Close() error { return nil }

// ResetRank swaps in a fresh mailbox for a restarting rank (RankResetter).
// The rank's existing wire picks the new mailbox up on its next Pull, and
// in-flight Delivers land in whichever mailbox the push resolves — exactly
// the pre-backend restart semantics (stale packets are epoch-fenced
// anyway).
func (b *SimBackend) ResetRank(rank int) {
	b.boxes[rank].Store(NewPacketQueue(b.inboxCap))
}

func (b *SimBackend) box(rank int) *PacketQueue { return b.boxes[rank].Load() }

// simWire is a rank's raw endpoint on the mailbox backend.
type simWire struct {
	be   *SimBackend
	rank int
}

func (w *simWire) Deliver(pkt Packet)                         { w.be.box(pkt.To).Push(pkt) }
func (w *simWire) Pull(abort <-chan struct{}) (Packet, bool)  { return w.be.box(w.rank).Pull(abort) }
func (w *simWire) PullTimeout(d time.Duration) (Packet, bool) { return w.be.box(w.rank).PullTimeout(d) }
func (w *simWire) Depth() int                                 { return w.be.box(w.rank).Depth() }
func (w *simWire) Drain()                                     { w.be.box(w.rank).Drain() }

// Cluster binds a machine size and backend into a reusable launcher —
// the NewWithBackend form of the run API. It exists so callers selecting
// a backend do it in one place:
//
//	cl, _ := machine.NewWithBackend(p, netBackend, machine.RunConfig{...})
//	rep, err := cl.Run(body)
//
// is RunWith with cfg.Backend set; Start is the supervised (Handle) form.
type Cluster struct {
	p   int
	be  Backend
	cfg RunConfig
}

// NewWithBackend returns a launcher for P ranks over the given backend
// (nil selects the in-memory SimBackend) under the base configuration.
// The cluster does not own the backend: close it after the last run.
func NewWithBackend(p int, be Backend, cfg RunConfig) (*Cluster, error) {
	if p < 1 {
		return nil, fmt.Errorf("machine: P = %d", p)
	}
	cfg.Backend = be
	return &Cluster{p: p, be: be, cfg: cfg}, nil
}

// Start launches body over the cluster's backend without waiting.
func (cl *Cluster) Start(body func(c *Comm)) (*Handle, error) {
	return StartWith(cl.p, cl.cfg, body)
}

// Run executes body over the cluster's backend and returns the metered
// report.
func (cl *Cluster) Run(body func(c *Comm)) (*Report, error) {
	return RunWith(cl.p, cl.cfg, body)
}

// Close closes the underlying backend (a no-op for the SimBackend).
func (cl *Cluster) Close() error {
	if cl.be == nil {
		return nil
	}
	return cl.be.Close()
}
