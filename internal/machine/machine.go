// Package machine simulates the α-β-γ (MPI-style) parallel machine of
// §3.1: P processors, each with private local memory, communicating over a
// fully connected network by sending and receiving messages.
//
// Because the paper's results are statements about counted communication —
// words sent and received per processor (bandwidth cost) and message counts
// (latency cost) — a simulator that executes the real data movement and
// meters it exactly reproduces the quantities the theory bounds. Each
// processor runs as a goroutine; messages are copied (distributed memory —
// no sharing), delivered through per-rank mailboxes, and metered at both
// endpoints.
//
// The package is layered: logical point-to-point Send/Recv with tags (plus
// a combined Exchange, barriers, and per-rank counters) ride on a pluggable
// Transport over a raw packet Wire. The default direct transport maps one
// logical message to one packet on the perfect simulated network; package
// fault perturbs the wire (drop/duplicate/reorder/corrupt/stall/crash) and
// provides a reliable transport that restores logical semantics on top.
// Logical and wire traffic are metered separately, so recovery overhead
// never contaminates the communication counts the theory is compared
// against. Collectives are layered on top in package collective.
package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Machine is the shared state of one simulated run.
type Machine struct {
	p           int
	be          Backend       // packet layer (SimBackend unless configured)
	raws        []BackendWire // per-rank raw endpoints; nil for remote ranks
	localRanks  []int         // ranks running in this process, ascending
	isLocal     []bool        // indexed by rank
	distributed bool          // len(localRanks) < p: peers live in other processes
	sent        []counter     // logical, metered at Send
	recv        []counter     // logical, metered at Recv
	wireSent    []counter     // raw packets pushed, retransmits and acks included
	wireRecv    []counter     // raw packets pulled
	barrier     *barrier
	observer    func(Event)
	wireEvents  bool
	obsState    []rankObsState
	diags       []rankDiag
	progress    atomic.Int64 // bumped on every completed logical operation
	pool        payloadPool  // recycles Send's payload copies (see pool.go)
	start       time.Time    // incarnation start; Event.Wall is measured from it

	// Crash-recovery state (see handle.go). epoch fences stale wire
	// traffic across recoveries; aborting/abortCh unwind blocked ranks out
	// of the current operation; recovering relaxes the watchdog's treatment
	// of crashed ranks, because a supervisor will restart them.
	epoch      atomic.Int64
	aborting   atomic.Bool
	abortMu    sync.Mutex
	abortCh    chan struct{}
	recovering bool
}

// abortChan returns the current epoch's abort channel; closed while an
// abort is in progress.
func (m *Machine) abortChan() <-chan struct{} {
	m.abortMu.Lock()
	ch := m.abortCh
	m.abortMu.Unlock()
	return ch
}

// checkAbort unwinds the calling rank out of the current operation when
// an epoch abort is in progress.
func (m *Machine) checkAbort() {
	if m.aborting.Load() {
		panic(abortPanic{})
	}
}

// abortPanic is the sentinel a rank panics with to unwind out of a
// blocking machine operation during an epoch abort. A resident body
// recovers it and re-parks; it is never a run error.
type abortPanic struct{}

// IsAbort reports whether a recovered panic value is the epoch-abort
// sentinel (see Handle.Abort). Resident bodies use it to tell "this
// operation was rolled back, re-park and wait for the replay" from a
// genuine rank death.
func IsAbort(v any) bool {
	_, ok := v.(abortPanic)
	return ok
}

// Aborted panics with the epoch-abort sentinel. Transports that loop on
// PullTimeout call it when Wire.Aborting reports an abort, since the
// timeout path deliberately never panics on its own.
func Aborted() {
	panic(abortPanic{})
}

// counter is one direction of a rank's traffic meter. The fields are
// atomic because a recovery supervisor reads (and rolls back) counters
// from the host while a parked rank's transport may still be servicing
// a peer's late retransmission; everything else is single-writer per
// rank.
type counter struct {
	words atomic.Int64
	msgs  atomic.Int64
}

func (c *counter) add(words int64) {
	c.words.Add(words)
	c.msgs.Add(1)
}

func (c *counter) set(words, msgs int64) {
	c.words.Store(words)
	c.msgs.Store(msgs)
}

// Comm is a rank's handle to the machine. Exactly one goroutine may use a
// given Comm.
type Comm struct {
	m       *Machine
	rank    int
	t       Transport
	diag    *rankDiag
	w       Wire             // raw endpoint, retained for Rebind
	factory TransportFactory // retained for Rebind
}

// Rank returns this processor's id in 0..P-1.
func (c *Comm) Rank() int { return c.rank }

// Size returns P.
func (c *Comm) Size() int { return c.m.p }

// Epoch returns the machine's current recovery epoch (0 until the first
// crash recovery). A resident body compares it against the epoch it last
// ran an operation in to decide whether its transport needs a Rebind.
func (c *Comm) Epoch() int64 { return c.m.epoch.Load() }

// Rebind rebuilds this rank's transport over its raw wire endpoint. A
// surviving rank calls it when it picks up the first operation of a new
// epoch: the old transport's protocol state (sequence numbers, parked
// out-of-order packets, retransmission windows) refers to conversations
// that were rolled back, and a respawned peer starts from fresh protocol
// state, so the two would disagree forever without the rebind.
func (c *Comm) Rebind() {
	c.t = c.factory(c.w)
}

// Refence moves this rank's transport into the current epoch with
// per-pair state resets limited to resetPeers, when the transport
// supports it (see EpochAdopter); otherwise it falls back to a full
// Rebind. It returns true when the partial path was taken. resetPeers
// must be the supervisor-computed symmetric set of disturbed pairs for
// this rank; every surviving rank must call Refence (or Rebind) on every
// epoch change even with an empty reset list, because a transport left
// on the old epoch ignores all new-epoch traffic.
func (c *Comm) Refence(resetPeers []int) bool {
	if a, ok := c.t.(EpochAdopter); ok {
		a.AdoptEpoch(c.m.epoch.Load(), resetPeers)
		return true
	}
	c.Rebind()
	return false
}

// Send transmits a copy of data to the destination rank with the given
// tag, metering len(data) words. Sending to self is an error by panic —
// local data never counts as communication in the model. Under the direct
// transport Send does not block; a reliable transport blocks until the
// message is acknowledged.
func (c *Comm) Send(to, tag int, data []float64) {
	if to == c.rank {
		panic(fmt.Sprintf("machine: rank %d sending to itself", to))
	}
	if to < 0 || to >= c.m.p {
		panic(fmt.Sprintf("machine: send to rank %d of %d", to, c.m.p))
	}
	c.m.checkAbort()
	cp := c.m.pool.get(len(data))
	copy(cp, data)
	c.m.sent[c.rank].add(int64(len(data)))
	c.m.emit(c.rank, Event{Kind: EventSend, From: c.rank, To: to, Tag: tag, Words: len(data), Step: -1})
	c.diag.setBlocked(BlockSend, to, tag)
	c.t.Send(to, tag, cp)
	c.diag.setRunning()
	c.m.progress.Add(1)
}

// Recv blocks until a message with the given source and tag arrives and
// returns its payload. Messages from the same (source, tag) are delivered
// in send order.
func (c *Comm) Recv(from, tag int) []float64 {
	c.m.checkAbort()
	c.diag.setBlocked(BlockRecv, from, tag)
	data := c.t.Recv(from, tag)
	c.diag.setRunning()
	c.m.recv[c.rank].add(int64(len(data)))
	c.m.emit(c.rank, Event{Kind: EventRecv, From: from, To: c.rank, Tag: tag, Words: len(data), Step: -1})
	c.m.progress.Add(1)
	return data
}

// RecvInto is Recv into a caller-owned buffer: it blocks until a message
// with the given source and tag arrives, copies the payload into dst, and
// returns the payload length. Metering and trace events are identical to
// Recv. When the payload is poolable (delivered by the direct transport,
// which holds no reference after delivery), the internal buffer is
// recycled for future Sends — after warm-up a steady-state exchange loop
// built on Send/RecvInto/Barrier allocates nothing.
//
// The payload must fit: a message longer than dst panics, because a
// receiver that preplans exact message sizes (parallel.Session) can only
// reach that state through a protocol bug.
func (c *Comm) RecvInto(from, tag int, dst []float64) int {
	c.m.checkAbort()
	c.diag.setBlocked(BlockRecv, from, tag)
	var data []float64
	recycle := false
	if pr, ok := c.t.(PayloadReceiver); ok {
		data, recycle = pr.RecvPayload(from, tag)
	} else {
		data = c.t.Recv(from, tag)
	}
	c.diag.setRunning()
	if len(data) > len(dst) {
		panic(fmt.Sprintf("machine: rank %d RecvInto(%d, %d): payload %d words, buffer %d",
			c.rank, from, tag, len(data), len(dst)))
	}
	c.m.recv[c.rank].add(int64(len(data)))
	c.m.emit(c.rank, Event{Kind: EventRecv, From: from, To: c.rank, Tag: tag, Words: len(data), Step: -1})
	copy(dst, data)
	if recycle {
		c.m.pool.put(data)
	}
	c.m.progress.Add(1)
	return len(data)
}

// Exchange sends data to peer and receives peer's message with the same
// tag — the bidirectional-link primitive of the model (a processor can
// send and receive one message at the same time).
func (c *Comm) Exchange(peer, tag int, data []float64) []float64 {
	c.Send(peer, tag, data)
	return c.Recv(peer, tag)
}

// Barrier blocks until all P ranks have entered it. A transport that
// implements Idler keeps servicing the wire while waiting, so peers
// retransmitting a message whose ack was lost are still answered.
//
// In a distributed run (some ranks in other processes) the in-process
// counting barrier cannot see the remote ranks, so the wait is delegated
// to the backend's BarrierWire — the coordinator counts all P arrivals
// and hands back the global generation. The Idler servicing loop still
// applies there: socket backends drain frames into the inbox on dedicated
// reader goroutines, but only the transport can acknowledge them, so a
// rank parked at the control-plane barrier without idling would strand
// any peer retransmitting a message whose ack was lost.
func (c *Comm) Barrier() {
	c.m.checkAbort()
	c.diag.setBlocked(BlockBarrier, -1, -1)
	var gen int
	if c.m.distributed {
		l, ok := c.w.(*link)
		if !ok {
			panic("machine: distributed barrier over a non-link wire")
		}
		bw, ok := l.barrier()
		if !ok {
			panic(fmt.Sprintf("machine: distributed run over %T, which provides no BarrierWire", l.raw))
		}
		epoch, abort := c.m.epoch.Load(), c.m.abortChan()
		var g int
		var bok bool
		if idler, ok := c.t.(Idler); ok {
			// BarrierWire.Barrier blocks on the control plane only, so it
			// is safe off the rank goroutine; the rank goroutine itself
			// keeps servicing the data plane (acks, dedup) until release.
			// The channel close orders g/bok before the reads below.
			done := make(chan struct{})
			go func() {
				defer close(done)
				g, bok = bw.Barrier(epoch, abort)
			}()
			idler.Idle(done)
		} else {
			g, bok = bw.Barrier(epoch, abort)
		}
		if !bok {
			panic(abortPanic{})
		}
		gen = g
	} else if idler, ok := c.t.(Idler); ok {
		ch, g := c.m.barrier.arriveChan()
		idler.Idle(ch)
		// An abort closes the release channel early; a barrier that
		// happened to complete at the same moment is retried with the rest
		// of the operation, which is harmless — the replay reruns it.
		c.m.checkAbort()
		gen = g
	} else {
		gen = c.m.barrier.await()
		if gen < 0 {
			panic(abortPanic{})
		}
	}
	c.diag.setRunning()
	c.m.emit(c.rank, Event{Kind: EventBarrier, From: c.rank, To: c.rank, Step: gen})
	c.m.progress.Add(1)
}

// AwaitHost runs wait with this rank parked as blocked on host input: a
// resident body (parallel.Session) calls it around its op-queue receive so
// the stall watchdog can tell an idle session — every unfinished rank
// waiting for the host to feed it work — from a genuine deadlock. wait
// typically blocks on a host-owned channel; returning from it counts as
// progress.
//
// Like Barrier, a parked rank keeps servicing the wire when the transport
// implements Idler: peers may still be finishing the previous operation
// (or retransmitting a message whose ack was lost), and a rank that went
// quiet the moment its own part completed would stall them forever.
func (c *Comm) AwaitHost(wait func()) {
	c.diag.parkForHost()
	if idler, ok := c.t.(Idler); ok {
		stop := make(chan struct{})
		go func() {
			wait()
			close(stop)
		}()
		idler.Idle(stop)
	} else {
		wait()
	}
	c.diag.setRunning()
	c.m.progress.Add(1)
}

// Meters is a point-in-time snapshot of one rank's eight traffic
// counters. A resident body can subtract two snapshots to attribute
// traffic to a single operation of a long-lived run.
type Meters struct {
	SentWords, RecvWords, SentMsgs, RecvMsgs                 int64
	WireSentWords, WireRecvWords, WireSentMsgs, WireRecvMsgs int64
}

// Sub returns the counter deltas m - o.
func (m Meters) Sub(o Meters) Meters {
	return Meters{
		SentWords: m.SentWords - o.SentWords, RecvWords: m.RecvWords - o.RecvWords,
		SentMsgs: m.SentMsgs - o.SentMsgs, RecvMsgs: m.RecvMsgs - o.RecvMsgs,
		WireSentWords: m.WireSentWords - o.WireSentWords, WireRecvWords: m.WireRecvWords - o.WireRecvWords,
		WireSentMsgs: m.WireSentMsgs - o.WireSentMsgs, WireRecvMsgs: m.WireRecvMsgs - o.WireRecvMsgs,
	}
}

// Meters returns this rank's current counter snapshot.
func (c *Comm) Meters() Meters {
	r := c.rank
	return Meters{
		SentWords: c.m.sent[r].words.Load(), RecvWords: c.m.recv[r].words.Load(),
		SentMsgs: c.m.sent[r].msgs.Load(), RecvMsgs: c.m.recv[r].msgs.Load(),
		WireSentWords: c.m.wireSent[r].words.Load(), WireRecvWords: c.m.wireRecv[r].words.Load(),
		WireSentMsgs: c.m.wireSent[r].msgs.Load(), WireRecvMsgs: c.m.wireRecv[r].msgs.Load(),
	}
}

// SentWords returns the words this rank has sent so far.
func (c *Comm) SentWords() int64 { return c.m.sent[c.rank].words.Load() }

// RecvWords returns the words this rank has received so far.
func (c *Comm) RecvWords() int64 { return c.m.recv[c.rank].words.Load() }

// SentMsgs returns the number of messages this rank has sent so far.
func (c *Comm) SentMsgs() int64 { return c.m.sent[c.rank].msgs.Load() }

// RecvMsgs returns the number of messages this rank has received so far.
func (c *Comm) RecvMsgs() int64 { return c.m.recv[c.rank].msgs.Load() }

// WireSentWords returns the raw words this rank has pushed onto the wire
// so far, retransmissions included.
func (c *Comm) WireSentWords() int64 { return c.m.wireSent[c.rank].words.Load() }

// barrier is a reusable counting barrier with two wait paths: a
// condition-variable path for plain transports (no allocation per
// generation — part of the zero-allocation steady-state exchange) and a
// release-channel path for Idler transports, which need something they can
// select on while servicing the wire. The channel is created lazily, only
// for generations in which a channel-waiter actually arrives, so direct-
// transport runs never pay for it.
type barrier struct {
	mu      sync.Mutex
	cond    sync.Cond
	p       int
	count   int
	gen     int
	release chan struct{} // nil until an Idler arrives this generation
	aborted bool          // epoch abort in progress: release everyone, arrivals void
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond.L = &b.mu
	return b
}

// arriveLocked registers one arrival; the last arriver releases both wait
// paths. Callers hold b.mu.
func (b *barrier) arriveLocked() {
	b.count++
	if b.count == b.p {
		b.count = 0
		b.gen++
		if b.release != nil {
			close(b.release)
			b.release = nil
		}
		b.cond.Broadcast()
	}
}

// await arrives and blocks until the generation completes, returning the
// generation index (identical for all P participants of one
// synchronization — the trace's step identifier). Allocation-free.
// Returns -1 when the wait was cut short by an epoch abort.
func (b *barrier) await() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		return -1
	}
	gen := b.gen
	b.arriveLocked()
	for b.gen == gen && !b.aborted {
		b.cond.Wait()
	}
	if b.gen == gen {
		return -1 // released by the abort, not by the last arriver
	}
	return gen
}

// arriveChan arrives and hands back the current generation's release
// channel — closed when the last rank arrives — so a waiting rank can
// select on it while doing other work (see Comm.Barrier).
func (b *barrier) arriveChan() (<-chan struct{}, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		ch := make(chan struct{})
		close(ch)
		return ch, -1
	}
	if b.release == nil {
		b.release = make(chan struct{})
	}
	ch, gen := b.release, b.gen
	b.arriveLocked()
	return ch, gen
}

// abort releases every waiter with a void generation; arrivals until
// reset are void too. The generation counter is NOT reset across
// recoveries — keeping it monotonic keeps barrier step identifiers
// globally unique in the trace, so a replayed operation's barriers are
// distinguishable from the aborted attempt's.
func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	if b.release != nil {
		close(b.release)
		b.release = nil
	}
	b.cond.Broadcast()
	b.mu.Unlock()
}

// reset re-arms the barrier for a new epoch: the partial arrivals of the
// aborted generation are discarded. Callers guarantee no rank is inside
// the barrier (Handle.Quiesce).
func (b *barrier) reset() {
	b.mu.Lock()
	b.aborted = false
	b.count = 0
	b.release = nil
	b.mu.Unlock()
}

// RunConfig bundles the optional knobs of a simulated run.
type RunConfig struct {
	// Timeout arms the stall watchdog: when positive and no rank
	// completes a logical operation for this long, the run aborts with a
	// *DeadlockError naming each blocked rank. Zero disables the
	// watchdog. (Unlike a global wall-clock limit, a run that keeps
	// making progress is never killed.)
	Timeout time.Duration
	// Observer receives every structured trace event, invoked
	// synchronously from the goroutine of the rank the event occurs on;
	// it must be safe for concurrent use (see obs.Recorder for a
	// ready-made collector). Logical send/recv events sum exactly to the
	// Report's logical meters; retransmissions and other recovery
	// traffic appear only as wire events (see WireEvents).
	Observer func(Event)
	// WireEvents additionally emits an event for every raw wire datagram
	// (Event.Wire == true): retransmissions, injected duplicates, and
	// zero-word acks. Off by default — wire traffic can dwarf the
	// logical trace under aggressive fault plans.
	WireEvents bool
	// Transport builds each rank's transport; nil selects the direct
	// transport (exact in-order delivery, no protocol overhead).
	Transport TransportFactory
	// InboxCap caps each rank's mailbox; a sender delivering to a full
	// mailbox blocks until the receiver drains it. Zero or negative
	// means unbounded (the default) — no correct protocol can deadlock
	// on mailbox space. Applies to the default SimBackend only; an
	// explicit Backend brings its own buffering policy.
	InboxCap int
	// Backend supplies the raw packet layer; nil selects the in-memory
	// SimBackend. See internal/netwire for TCP and unix-socket backends.
	// The machine does not close the backend — its creator does.
	Backend Backend
	// BackendFactory, consulted only when Backend is nil, builds a fresh
	// backend per machine incarnation. Unlike Backend, the machine owns
	// the factory's product and closes it when the incarnation's last
	// rank goroutine exits — the shape a session pool needs, where one
	// options template launches many concurrent machines and a shared
	// socket backend would cross their packet streams.
	BackendFactory func() (Backend, error)
	// LocalRanks names the ranks this process runs; nil means all P (the
	// single-process default). A distributed launcher starts one machine
	// per process, each naming its own rank(s) here over a shared
	// network backend; barriers then require the backend to provide a
	// BarrierWire, and the stall watchdog should stay disabled (it
	// cannot see remote progress).
	LocalRanks []int
	// StartEpoch is the recovery epoch the machine starts in (normally
	// zero). A respawned rank process sets it to the cluster's current
	// epoch so the first packets it sends are not fenced off by the
	// survivors.
	StartEpoch int64
	// OnRankDown, when set, is invoked once from a dying rank's goroutine
	// after its body panics with anything other than the epoch-abort
	// sentinel. Setting it marks the run as supervised: the stall watchdog
	// then treats crashed ranks as non-blocking while the survivors park,
	// because a supervisor (parallel.Session's recovery loop) is expected
	// to restart them. The callback must not block for long and must be
	// safe for concurrent invocation from multiple dying ranks.
	OnRankDown func(rank int, err error)
}

// RunWith is the single run entry point: it executes body on P simulated
// processors under the given configuration (transport selection, stall
// watchdog, trace observer, mailbox capacity) and returns the metered
// report. It is StartWith followed by Wait; callers that supervise the
// run — restarting crashed ranks, rolling epochs — use the Handle form
// directly (see handle.go).
func RunWith(p int, cfg RunConfig, body func(c *Comm)) (*Report, error) {
	h, err := StartWith(p, cfg, body)
	if err != nil {
		return nil, err
	}
	return h.Wait()
}

// report snapshots the machine's cumulative counters.
func (m *Machine) reportNow() *Report {
	p := m.p
	rep := &Report{
		P:             p,
		SentWords:     make([]int64, p),
		RecvWords:     make([]int64, p),
		SentMsgs:      make([]int64, p),
		RecvMsgs:      make([]int64, p),
		WireSentWords: make([]int64, p),
		WireRecvWords: make([]int64, p),
		WireSentMsgs:  make([]int64, p),
		WireRecvMsgs:  make([]int64, p),
	}
	for i := 0; i < p; i++ {
		rep.SentWords[i] = m.sent[i].words.Load()
		rep.RecvWords[i] = m.recv[i].words.Load()
		rep.SentMsgs[i] = m.sent[i].msgs.Load()
		rep.RecvMsgs[i] = m.recv[i].msgs.Load()
		rep.WireSentWords[i] = m.wireSent[i].words.Load()
		rep.WireRecvWords[i] = m.wireRecv[i].words.Load()
		rep.WireSentMsgs[i] = m.wireSent[i].msgs.Load()
		rep.WireRecvMsgs[i] = m.wireRecv[i].msgs.Load()
	}
	return rep
}

// watch is the per-rank progress monitor: it polls the global progress
// counter and declares deadlock only after a full window with no logical
// operation completing anywhere.
func (m *Machine) watch(done <-chan struct{}, timeout time.Duration) error {
	poll := timeout / 8
	if poll < 500*time.Microsecond {
		poll = 500 * time.Microsecond
	}
	if poll > 100*time.Millisecond {
		poll = 100 * time.Millisecond
	}
	last := m.progress.Load()
	lastChange := time.Now()
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return nil
		case <-ticker.C:
			if cur := m.progress.Load(); cur != last {
				last = cur
				lastChange = time.Now()
				continue
			}
			if time.Since(lastChange) >= timeout {
				if m.hostQuiescent() {
					// An idle resident session: every unfinished rank
					// is parked in AwaitHost, waiting for the host to
					// feed it work. Not a deadlock — the host holds
					// the ball.
					lastChange = time.Now()
					continue
				}
				return m.deadlockError(timeout)
			}
		}
	}
}

// hostQuiescent reports whether at least one local rank is parked in
// AwaitHost and every other unfinished local rank is too — the signature
// of an idle resident session rather than a stalled protocol. Remote
// ranks are invisible here, which is one of the reasons the watchdog
// stays off in distributed rank processes.
func (m *Machine) hostQuiescent() bool {
	idle := false
	for _, r := range m.localRanks {
		kind, _, _, _ := m.diags[r].snapshot()
		switch kind {
		case BlockDone:
		case BlockCrashed:
			// A crashed rank can never finish its operation, so parked
			// survivors are not "idle" — they are waiting for a completion
			// that will never come. Let the watchdog report it — unless a
			// supervisor is attached (OnRankDown), in which case the crash
			// is being handled and parked survivors really are idle.
			if !m.recovering {
				return false
			}
		case BlockHost:
			idle = true
		default:
			return false
		}
	}
	return idle
}

// deadlockError snapshots every unfinished local rank's diagnostic state.
func (m *Machine) deadlockError(timeout time.Duration) *DeadlockError {
	e := &DeadlockError{P: m.p, Timeout: timeout}
	for _, r := range m.localRanks {
		kind, peer, tag, pending := m.diags[r].snapshot()
		switch kind {
		case BlockDone:
			continue
		case BlockCrashed:
			e.Crashed = append(e.Crashed, r)
			continue
		}
		e.Waits = append(e.Waits, RankWait{
			Rank:         r,
			Kind:         kind,
			Peer:         peer,
			Tag:          tag,
			InboxPackets: m.raws[r].Depth(),
			Pending:      pending,
		})
	}
	return e
}

// panicError converts recorded rank panics into the run error, giving
// fault-typed panics (injected crashes, exhausted retransmission budgets)
// structured error values.
func (m *Machine) panicError() error {
	var generic error
	var unreach *UnreachableError
	var crash *CrashError
	for _, rank := range m.localRanks {
		pv := m.diags[rank].panicValue()
		switch v := pv.(type) {
		case nil:
		case CrashError:
			if crash == nil {
				c := v
				crash = &c
			}
		case UnreachableError:
			if unreach == nil {
				u := v
				unreach = &u
			}
		default:
			if generic == nil {
				generic = fmt.Errorf("machine: rank %d panicked: %v", rank, v)
			}
		}
	}
	switch {
	case crash != nil:
		return *crash
	case unreach != nil:
		return *unreach
	default:
		return generic
	}
}
