// Package machine simulates the α-β-γ (MPI-style) parallel machine of
// §3.1: P processors, each with private local memory, communicating over a
// fully connected network by sending and receiving messages.
//
// Because the paper's results are statements about counted communication —
// words sent and received per processor (bandwidth cost) and message counts
// (latency cost) — a simulator that executes the real data movement and
// meters it exactly reproduces the quantities the theory bounds. Each
// processor runs as a goroutine; messages are copied (distributed memory —
// no sharing), delivered through per-rank mailboxes, and metered at both
// endpoints.
//
// The package is deliberately small: point-to-point Send/Recv with tags,
// a combined Exchange, barriers, and per-rank counters. Collectives are
// layered on top in package collective.
package machine

import (
	"fmt"
	"sync"
	"time"
)

// message is an in-flight transfer.
type message struct {
	from, tag int
	data      []float64
}

// Machine is the shared state of one simulated run.
type Machine struct {
	p        int
	inbox    []chan message
	sent     []counter
	recv     []counter
	barrier  *barrier
	observer func(Event)
}

// Event records one message at send time.
type Event struct {
	From, To, Tag int
	Words         int
}

type counter struct {
	words int64
	msgs  int64
}

// Comm is a rank's handle to the machine. Exactly one goroutine may use a
// given Comm.
type Comm struct {
	m    *Machine
	rank int
	// pending holds messages drained from the inbox while waiting for a
	// specific (from, tag); keyed by sender and tag, FIFO per key.
	pending map[[2]int][]([]float64)
}

// Rank returns this processor's id in 0..P-1.
func (c *Comm) Rank() int { return c.rank }

// Size returns P.
func (c *Comm) Size() int { return c.m.p }

// Send transmits a copy of data to the destination rank with the given
// tag, metering len(data) words. Sending to self is an error by panic —
// local data never counts as communication in the model.
func (c *Comm) Send(to, tag int, data []float64) {
	if to == c.rank {
		panic(fmt.Sprintf("machine: rank %d sending to itself", to))
	}
	if to < 0 || to >= c.m.p {
		panic(fmt.Sprintf("machine: send to rank %d of %d", to, c.m.p))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	c.m.sent[c.rank].words += int64(len(data))
	c.m.sent[c.rank].msgs++
	if c.m.observer != nil {
		c.m.observer(Event{From: c.rank, To: to, Tag: tag, Words: len(data)})
	}
	c.m.inbox[to] <- message{from: c.rank, tag: tag, data: cp}
}

// Recv blocks until a message with the given source and tag arrives and
// returns its payload. Messages from the same (source, tag) are delivered
// in send order.
func (c *Comm) Recv(from, tag int) []float64 {
	key := [2]int{from, tag}
	if q := c.pending[key]; len(q) > 0 {
		data := q[0]
		c.pending[key] = q[1:]
		c.meterRecv(data)
		return data
	}
	for msg := range c.m.inbox[c.rank] {
		if msg.from == from && msg.tag == tag {
			c.meterRecv(msg.data)
			return msg.data
		}
		k := [2]int{msg.from, msg.tag}
		c.pending[k] = append(c.pending[k], msg.data)
	}
	panic("machine: inbox closed while receiving")
}

func (c *Comm) meterRecv(data []float64) {
	c.m.recv[c.rank].words += int64(len(data))
	c.m.recv[c.rank].msgs++
}

// Exchange sends data to peer and receives peer's message with the same
// tag — the bidirectional-link primitive of the model (a processor can
// send and receive one message at the same time).
func (c *Comm) Exchange(peer, tag int, data []float64) []float64 {
	c.Send(peer, tag, data)
	return c.Recv(peer, tag)
}

// Barrier blocks until all P ranks have entered it.
func (c *Comm) Barrier() { c.m.barrier.await() }

// SentWords returns the words this rank has sent so far.
func (c *Comm) SentWords() int64 { return c.m.sent[c.rank].words }

// RecvWords returns the words this rank has received so far.
func (c *Comm) RecvWords() int64 { return c.m.recv[c.rank].words }

// SentMsgs returns the number of messages this rank has sent so far.
func (c *Comm) SentMsgs() int64 { return c.m.sent[c.rank].msgs }

// barrier is a reusable counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	p     int
	count int
	gen   int
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.p {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// Report carries the per-rank communication meters of a completed run.
type Report struct {
	P         int
	SentWords []int64
	RecvWords []int64
	SentMsgs  []int64
	RecvMsgs  []int64
}

// MaxSentWords returns the maximum words sent by any rank.
func (r *Report) MaxSentWords() int64 { return maxOf(r.SentWords) }

// MaxRecvWords returns the maximum words received by any rank.
func (r *Report) MaxRecvWords() int64 { return maxOf(r.RecvWords) }

// MaxWords returns the bandwidth cost in the paper's sense: the maximum
// over ranks of the larger of words sent and words received (sends and
// receives overlap on bidirectional links).
func (r *Report) MaxWords() int64 {
	var m int64
	for i := range r.SentWords {
		v := r.SentWords[i]
		if r.RecvWords[i] > v {
			v = r.RecvWords[i]
		}
		if v > m {
			m = v
		}
	}
	return m
}

// TotalSentWords returns the total words moved through the network.
func (r *Report) TotalSentWords() int64 {
	var s int64
	for _, v := range r.SentWords {
		s += v
	}
	return s
}

// MaxSentMsgs returns the maximum message count sent by any rank (the
// latency cost proxy).
func (r *Report) MaxSentMsgs() int64 { return maxOf(r.SentMsgs) }

func maxOf(xs []int64) int64 {
	var m int64
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

// Run executes body on P simulated processors and returns the metered
// report. It panics with the first rank's panic value if any rank panics
// (after all ranks finish or deadlock-free teardown is impossible).
func Run(p int, body func(c *Comm)) *Report {
	r, err := RunTimeout(p, 0, body)
	if err != nil {
		panic(err)
	}
	return r
}

// RunTimeout is Run with a watchdog: when timeout > 0 and the run does not
// complete in time (a deadlocked protocol, for example), it returns an
// error instead of hanging forever. A zero timeout disables the watchdog.
func RunTimeout(p int, timeout time.Duration, body func(c *Comm)) (*Report, error) {
	return RunTraced(p, timeout, nil, body)
}

// RunTraced is RunTimeout with an observer invoked synchronously at every
// Send, from the sending rank's goroutine — the observer must be safe for
// concurrent use (see Trace for a ready-made collector). It is the hook
// used to check that executed communication conforms to a planned
// schedule.
func RunTraced(p int, timeout time.Duration, observer func(Event), body func(c *Comm)) (*Report, error) {
	if p < 1 {
		return nil, fmt.Errorf("machine: P = %d", p)
	}
	m := &Machine{
		p:        p,
		inbox:    make([]chan message, p),
		sent:     make([]counter, p),
		recv:     make([]counter, p),
		barrier:  newBarrier(p),
		observer: observer,
	}
	// Inbox capacity: the densest standard protocol (naive all-to-all)
	// has at most P-1 undrained messages per receiver; 2P gives headroom
	// so no correct protocol blocks on mailbox space.
	for i := range m.inbox {
		m.inbox[i] = make(chan message, 2*p)
	}

	panics := make([]interface{}, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for rank := 0; rank < p; rank++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[rank] = r
				}
			}()
			body(&Comm{m: m, rank: rank, pending: make(map[[2]int][]([]float64))})
		}(rank)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	if timeout > 0 {
		select {
		case <-done:
		case <-time.After(timeout):
			return nil, fmt.Errorf("machine: run of %d ranks timed out after %v (deadlock?)", p, timeout)
		}
	} else {
		<-done
	}
	for rank, pv := range panics {
		if pv != nil {
			return nil, fmt.Errorf("machine: rank %d panicked: %v", rank, pv)
		}
	}
	rep := &Report{
		P:         p,
		SentWords: make([]int64, p),
		RecvWords: make([]int64, p),
		SentMsgs:  make([]int64, p),
		RecvMsgs:  make([]int64, p),
	}
	for i := 0; i < p; i++ {
		rep.SentWords[i] = m.sent[i].words
		rep.RecvWords[i] = m.recv[i].words
		rep.SentMsgs[i] = m.sent[i].msgs
		rep.RecvMsgs[i] = m.recv[i].msgs
	}
	return rep, nil
}

// Trace is a thread-safe event collector for RunTraced.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// Observer returns the callback to pass to RunTraced.
func (t *Trace) Observer() func(Event) {
	return func(e Event) {
		t.mu.Lock()
		t.events = append(t.events, e)
		t.mu.Unlock()
	}
}

// Events returns a copy of the collected events (arbitrary interleaving
// order across ranks; per-(sender, tag) order is send order).
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}
