package machine

import "fmt"

// Report carries the per-rank communication meters of a completed run.
//
// The logical meters (SentWords, RecvWords, SentMsgs, RecvMsgs) count the
// payload of Send/Recv calls — the quantities the paper's lower bounds
// are about. The wire meters additionally count everything the transport
// put on the network: retransmissions, duplicates delivered by a fault
// injector, and acknowledgements. Under the direct transport on a
// fault-free wire the two coincide; under a reliable transport the
// difference is the recovery overhead, kept strictly apart so fault
// schedules can never perturb the metered logical communication.
type Report struct {
	P         int
	SentWords []int64
	RecvWords []int64
	SentMsgs  []int64
	RecvMsgs  []int64

	WireSentWords []int64
	WireRecvWords []int64
	WireSentMsgs  []int64
	WireRecvMsgs  []int64
}

// MaxSentWords returns the maximum words sent by any rank.
func (r *Report) MaxSentWords() int64 { return maxOf(r.SentWords) }

// MaxRecvWords returns the maximum words received by any rank.
func (r *Report) MaxRecvWords() int64 { return maxOf(r.RecvWords) }

// MaxWords returns the bandwidth cost in the paper's sense: the maximum
// over ranks of the larger of words sent and words received (sends and
// receives overlap on bidirectional links).
func (r *Report) MaxWords() int64 {
	var m int64
	for i := range r.SentWords {
		v := r.SentWords[i]
		if r.RecvWords[i] > v {
			v = r.RecvWords[i]
		}
		if v > m {
			m = v
		}
	}
	return m
}

// TotalSentWords returns the total words moved through the network.
func (r *Report) TotalSentWords() int64 { return sumOf(r.SentWords) }

// MaxSentMsgs returns the maximum message count sent by any rank (the
// latency cost proxy).
func (r *Report) MaxSentMsgs() int64 { return maxOf(r.SentMsgs) }

// MaxRecvMsgs returns the maximum message count received by any rank.
func (r *Report) MaxRecvMsgs() int64 { return maxOf(r.RecvMsgs) }

// TotalWireSentWords returns the total payload words that crossed the
// wire, retransmissions and duplicates included.
func (r *Report) TotalWireSentWords() int64 { return sumOf(r.WireSentWords) }

// MaxWireSentMsgs returns the maximum raw packet count (data + acks) any
// rank pushed onto the wire.
func (r *Report) MaxWireSentMsgs() int64 { return maxOf(r.WireSentMsgs) }

// OverheadWords returns the words the transport moved beyond the logical
// payload (retransmissions and injected duplicates; acks are zero-word).
// Zero when wire meters were not collected (hand-built reports).
func (r *Report) OverheadWords() int64 {
	if len(r.WireSentWords) == 0 {
		return 0
	}
	return r.TotalWireSentWords() - r.TotalSentWords()
}

// String renders a one-line summary of the meters.
func (r *Report) String() string {
	s := fmt.Sprintf("P=%d: max sent %dw/%dm, max recv %dw/%dm, total %dw",
		r.P, r.MaxSentWords(), r.MaxSentMsgs(), r.MaxRecvWords(), r.MaxRecvMsgs(), r.TotalSentWords())
	if len(r.WireSentWords) > 0 {
		s += fmt.Sprintf("; wire %dw (+%dw overhead, %d packets)",
			r.TotalWireSentWords(), r.OverheadWords(), sumOf(r.WireSentMsgs))
	}
	return s
}

func maxOf(xs []int64) int64 {
	var m int64
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

func sumOf(xs []int64) int64 {
	var s int64
	for _, v := range xs {
		s += v
	}
	return s
}
