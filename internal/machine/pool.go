package machine

import (
	"math/bits"
	"sync"
)

// payloadPool recycles message payload buffers so a steady-state exchange
// loop (a resident parallel.Session applying the same schedule over and
// over) performs no allocations: Send draws its defensive copy from the
// pool, and RecvInto returns the buffer once the receiver has copied the
// payload out.
//
// Buffers are grouped in power-of-two size classes. Only buffers whose
// capacity is an exact class size are accepted back — everything else is
// left to the garbage collector — so a recycled buffer can always serve
// any request that maps to its class.
//
// Safety under faults: a buffer re-enters the pool only via RecvInto, and
// only for packets whose Recycle flag is set. The direct transport sets
// the flag (it holds no reference after delivery); the reliable transport
// does not (it keeps payloads in its retransmission window), so a
// retransmitted or duplicated message can never alias a reused buffer.
type payloadPool struct {
	mu      sync.Mutex
	classes map[int][][]float64
}

// maxPooledPerClass bounds each size class so a burst can't pin memory
// forever; overflow buffers are dropped to the garbage collector.
const maxPooledPerClass = 1024

// classSize returns the power-of-two capacity class for a payload of n
// words (n >= 1).
func classSize(n int) int {
	return 1 << bits.Len(uint(n-1))
}

// get returns a length-n buffer, reusing a pooled one when available.
// Contents are unspecified; callers overwrite the full length.
func (pp *payloadPool) get(n int) []float64 {
	if n == 0 {
		return nil
	}
	cls := classSize(n)
	pp.mu.Lock()
	if list := pp.classes[cls]; len(list) > 0 {
		buf := list[len(list)-1]
		list[len(list)-1] = nil
		pp.classes[cls] = list[:len(list)-1]
		pp.mu.Unlock()
		return buf[:n]
	}
	pp.mu.Unlock()
	return make([]float64, n, cls)
}

// put returns a buffer to its size class. Buffers whose capacity is not an
// exact class size (callers may hand us foreign slices) are dropped.
func (pp *payloadPool) put(buf []float64) {
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	pp.mu.Lock()
	if pp.classes == nil {
		pp.classes = make(map[int][][]float64)
	}
	if list := pp.classes[c]; len(list) < maxPooledPerClass {
		pp.classes[c] = append(list, buf[:c])
	}
	pp.mu.Unlock()
}
