package machine

import (
	"strings"
	"testing"
	"time"
)

// TestNewWithBackendSim runs a ping over an explicitly-selected SimBackend
// and checks the report matches the default path exactly.
func TestNewWithBackendSim(t *testing.T) {
	body := func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			if got := c.Recv(0, 7); len(got) != 3 {
				t.Errorf("recv %v", got)
			}
		}
	}
	cl, err := NewWithBackend(2, NewSimBackend(0), RunConfig{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rep, err := cl.Run(body)
	if err != nil {
		t.Fatal(err)
	}
	def, err := RunWith(2, RunConfig{Timeout: 10 * time.Second}, body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SentWords[0] != def.SentWords[0] || rep.WireSentWords[0] != def.WireSentWords[0] {
		t.Errorf("backend run %+v != default run %+v", rep, def)
	}
}

// TestSimBackendSizeMismatch: one SimBackend serves one machine size.
func TestSimBackendSizeMismatch(t *testing.T) {
	be := NewSimBackend(0)
	if _, err := be.NewWire(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := be.NewWire(0, 3); err == nil || !strings.Contains(err.Error(), "sized for") {
		t.Errorf("want size-mismatch error, got %v", err)
	}
}

// TestPacketQueueAbortWake: a blocked Pull wakes with ok == false when the
// abort channel closes, and PullTimeout expires on silence.
func TestPacketQueueAbortWake(t *testing.T) {
	q := NewPacketQueue(0)
	abort := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := q.Pull(abort)
		done <- ok
	}()
	close(abort)
	select {
	case ok := <-done:
		if ok {
			t.Error("aborted Pull returned a packet")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("aborted Pull never woke")
	}
	if _, ok := q.PullTimeout(time.Millisecond); ok {
		t.Error("PullTimeout on empty queue returned a packet")
	}
	q.Push(Packet{Tag: 9})
	if pkt, ok := q.PullTimeout(time.Second); !ok || pkt.Tag != 9 {
		t.Errorf("PullTimeout got %+v ok=%v", pkt, ok)
	}
}

// TestRestartRankRequiresResetter: a backend without RankResetter reports
// a clear error instead of silently reusing a dead rank's queue.
func TestRestartRankRequiresResetter(t *testing.T) {
	h, err := StartWith(1, RunConfig{Backend: fixedBackend{NewSimBackend(0)}}, func(c *Comm) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := h.RestartRank(0); err == nil || !strings.Contains(err.Error(), "cannot reset") {
		t.Errorf("want resetter error, got %v", err)
	}
}

// fixedBackend hides SimBackend's RankResetter implementation.
type fixedBackend struct{ be *SimBackend }

func (f fixedBackend) NewWire(rank, size int) (BackendWire, error) { return f.be.NewWire(rank, size) }
func (f fixedBackend) Close() error                                { return f.be.Close() }
