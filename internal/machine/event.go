package machine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies the structured trace events a run can emit. The
// vocabulary covers everything the paper's cost model charges for: messages
// (latency and bandwidth), synchronization steps, and local ternary
// multiplications — plus the phase markers that scope each of them to a
// stage of Algorithm 5 (gather / local / reduce-scatter).
type EventKind int

const (
	// EventSend records a logical message being posted (one per
	// Comm.Send), or — with Event.Wire set — a raw datagram being pushed
	// onto the wire (retransmissions, duplicates and acks included).
	EventSend EventKind = iota
	// EventRecv records a logical message being delivered to its Recv
	// call, or — with Event.Wire set — a raw datagram being pulled.
	EventRecv
	// EventBarrier records a rank passing a global barrier. Event.Step
	// carries the barrier generation, identical across all P ranks of one
	// synchronization, so a replayer can reconstruct the step structure.
	EventBarrier
	// EventPhaseBegin and EventPhaseEnd bracket an algorithm phase on one
	// rank; every event in between carries the phase's label.
	EventPhaseBegin
	EventPhaseEnd
	// EventLocalCompute records a completed local-compute stage with its
	// ternary-multiplication count in Event.Ternary.
	EventLocalCompute
	// EventRankDown records a rank's body dying (an injected crash or a
	// genuine panic) as observed by a recovery supervisor; From and To
	// are the dead rank. Emitted from the host, not the dead rank's
	// goroutine.
	EventRankDown
	// EventRecoveryBegin and EventRecoveryEnd bracket one recovery span:
	// the supervisor's abort-rollback-restart sequence between the crash
	// and the replay dispatch. Step carries the retry attempt index
	// (1-based) on EventRecoveryBegin. Replay-transparent: the α-β-γ
	// engine ignores kinds it does not model.
	EventRecoveryBegin
	// EventRecoveryEnd marks the completion of a rollback on one rank.
	// Step carries the rank's event sequence number captured when the
	// restored checkpoint was taken (-1 when unknown): every logical event
	// the rank emitted at or after that sequence belongs to an aborted
	// attempt and is superseded by the replay that follows the marker.
	EventRecoveryEnd
	// EventRestoreVerify records a fingerprint verification pass over the
	// restored arenas after a rollback or a degraded relaunch; Words
	// carries the number of pages checked.
	EventRestoreVerify
	// EventRestoreMismatch records a page whose post-restore fingerprint
	// disagreed with the checkpoint-time fingerprint; From and To are the
	// affected rank and Step the failing page index. The supervisor turns
	// it into a RestoreMismatchError instead of replaying corrupt state.
	EventRestoreMismatch
	// EventDrop records a raw datagram the wire lost — a socket send to a
	// dead peer, a write error, or an injected chaos fault. Always a wire
	// event (Wire == true, emitted only when RunConfig.WireEvents is set);
	// it never enters the logical meters, which count only what the
	// Send/Recv layer commits.
	EventDrop
)

func (k EventKind) String() string {
	switch k {
	case EventSend:
		return "send"
	case EventRecv:
		return "recv"
	case EventBarrier:
		return "barrier"
	case EventPhaseBegin:
		return "phase-begin"
	case EventPhaseEnd:
		return "phase-end"
	case EventLocalCompute:
		return "local-compute"
	case EventRankDown:
		return "rank-down"
	case EventRecoveryBegin:
		return "recovery-begin"
	case EventRecoveryEnd:
		return "recovery-end"
	case EventRestoreVerify:
		return "restore-verify"
	case EventRestoreMismatch:
		return "restore-mismatch"
	case EventDrop:
		return "drop"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one structured trace record. Events are emitted synchronously
// from the goroutine of the rank they happen on; an observer collecting
// them must be safe for concurrent use (see obs.Recorder for a ready-made
// collector).
//
// Logical events (Wire == false) account exactly for the quantities the
// paper's theory bounds: summed per rank they equal the Report's logical
// meters, fault recovery included, because they are emitted at the
// Send/Recv layer the reliable transport restores. Wire events (Wire ==
// true, emitted only when RunConfig.WireEvents is set) additionally record
// every raw datagram — retransmissions, injected duplicates, and zero-word
// acks — and sum to the wire meters instead.
type Event struct {
	Kind EventKind
	// Rank is the processor the event occurred on.
	Rank int
	// From and To are the message endpoints for send/recv events; both
	// equal Rank for non-message events.
	From, To int
	// Tag is the message tag (send/recv events; 0 otherwise).
	Tag int
	// Words is the payload size of a send/recv event.
	Words int
	// Phase is the enclosing phase label ("" outside any phase).
	Phase string
	// Op is the enclosing collective operation ("" outside package
	// collective).
	Op string
	// Seq orders this rank's events: a per-rank counter starting at 0.
	Seq int64
	// Step is the global barrier generation for EventBarrier, -1
	// otherwise.
	Step int
	// Ternary is the ternary-multiplication count of an
	// EventLocalCompute.
	Ternary int64
	// Wire marks raw wire datagrams as opposed to logical messages.
	Wire bool
	// Epoch is the machine recovery epoch the event was emitted in (0
	// until the first crash recovery), so post-rollback replays are
	// distinguishable from the aborted attempts they supersede.
	Epoch int64
	// Wall is the wall-clock time of emission in nanoseconds since the
	// machine incarnation started. On the simulated backend it measures
	// host compute; on a socket backend it is real elapsed time, so a
	// trace's wall span can be compared against the α-β-γ replay
	// prediction (obs.Trace.WallSpan).
	Wall int64
}

// rankObsState is a rank's event-emission bookkeeping. The scope fields
// are touched only from the owning rank's goroutine (transports, including
// fault injectors and the reliable protocol's Idle/Linger loops, all run
// on that goroutine); seq is atomic because a recovery supervisor reads it
// from the host to segment committed from rolled-back events, and restores
// it across a degraded relaunch so per-rank ordering stays monotonic.
type rankObsState struct {
	phase   string
	op      string
	opDepth int
	seq     atomic.Int64
}

// emit stamps an event with the rank's phase scope and sequence number
// and hands it to the observer. No-op without an observer.
func (m *Machine) emit(rank int, e Event) {
	if m.observer == nil {
		return
	}
	st := &m.obsState[rank]
	e.Rank = rank
	if e.Phase == "" {
		e.Phase = st.phase
	}
	e.Op = st.op
	e.Epoch = m.epoch.Load()
	e.Seq = st.seq.Add(1) - 1
	e.Wall = int64(time.Since(m.start))
	m.observer(e)
}

// BeginPhase opens a named phase on this rank: an EventPhaseBegin is
// emitted and every subsequent event carries the label until EndPhase.
// Phases do not nest — a second BeginPhase before EndPhase panics, because
// phase-scoped meters would silently mis-attribute.
func (c *Comm) BeginPhase(label string) {
	st := &c.m.obsState[c.rank]
	if st.phase != "" {
		panic(fmt.Sprintf("machine: rank %d: BeginPhase(%q) inside phase %q", c.rank, label, st.phase))
	}
	st.phase = label
	c.m.emit(c.rank, Event{Kind: EventPhaseBegin, From: c.rank, To: c.rank, Step: -1})
}

// EndPhase closes the current phase, emitting an EventPhaseEnd that still
// carries the label.
func (c *Comm) EndPhase() {
	st := &c.m.obsState[c.rank]
	if st.phase == "" {
		panic(fmt.Sprintf("machine: rank %d: EndPhase outside any phase", c.rank))
	}
	c.m.emit(c.rank, Event{Kind: EventPhaseEnd, From: c.rank, To: c.rank, Step: -1})
	st.phase = ""
}

// Phase returns this rank's current phase label ("" outside any phase).
func (c *Comm) Phase() string { return c.m.obsState[c.rank].phase }

// BeginOp labels subsequent events with a collective-operation name; used
// by package collective so traces can attribute words to the collective
// that moved them. Ops nest (an all-reduce is a reduce plus a broadcast)
// and the outermost label wins.
func (c *Comm) BeginOp(name string) {
	st := &c.m.obsState[c.rank]
	st.opDepth++
	if st.opDepth == 1 {
		st.op = name
	}
}

// EndOp closes the innermost collective-operation scope.
func (c *Comm) EndOp() {
	st := &c.m.obsState[c.rank]
	if st.opDepth == 0 {
		panic(fmt.Sprintf("machine: rank %d: EndOp outside any op", c.rank))
	}
	st.opDepth--
	if st.opDepth == 0 {
		st.op = ""
	}
}

// LocalCompute records a completed local-compute stage of `ternary`
// ternary multiplications as an EventLocalCompute — the quantity the
// replay engine charges γ time units per.
func (c *Comm) LocalCompute(ternary int64) {
	c.m.emit(c.rank, Event{Kind: EventLocalCompute, From: c.rank, To: c.rank, Step: -1, Ternary: ternary})
}

// Trace is a minimal thread-safe event collector for RunConfig.Observer.
//
// Deprecated: package obs provides Recorder, whose Trace offers per-rank
// ordering, phase-scoped meters, α-β-γ replay, and exporters. Trace is
// kept for tests that only need the raw event slice.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// Observer returns the callback to pass to RunConfig.Observer.
func (t *Trace) Observer() func(Event) {
	return func(e Event) {
		t.mu.Lock()
		t.events = append(t.events, e)
		t.mu.Unlock()
	}
}

// Events returns a copy of the collected events (arbitrary interleaving
// order across ranks; per-rank order is emission order).
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Sends returns only the logical send events — the view the pre-redesign
// Trace collected.
func (t *Trace) Sends() []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Kind == EventSend && !e.Wire {
			out = append(out, e)
		}
	}
	return out
}
