package machine

import (
	"math"
	"strings"
	"testing"
	"time"
)

// mustRun routes every plain test run through the one RunWith entry
// point, with errors fatal and a generous watchdog.
func mustRun(tb testing.TB, p int, body func(c *Comm)) *Report {
	tb.Helper()
	rep, err := RunWith(p, RunConfig{Timeout: 30 * time.Second}, body)
	if err != nil {
		tb.Fatal(err)
	}
	return rep
}

// TestRunWithEntryPoint covers the single run entry point in its common
// configurations: bare, watchdog-armed, and with a trace observer.
func TestRunWithEntryPoint(t *testing.T) {
	body := func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2})
		} else {
			c.Recv(0, 0)
		}
	}
	if rep, err := RunWith(2, RunConfig{}, body); err != nil || rep.SentWords[0] != 2 {
		t.Errorf("RunWith: rep %v err %v", rep, err)
	}
	if rep, err := RunWith(2, RunConfig{Timeout: time.Second}, body); err != nil || rep.SentWords[0] != 2 {
		t.Errorf("RunWith timeout: rep %v err %v", rep, err)
	}
	var tr Trace
	if rep, err := RunWith(2, RunConfig{Timeout: time.Second, Observer: tr.Observer()}, body); err != nil || rep.SentWords[0] != 2 {
		t.Errorf("RunWith traced: rep %v err %v", rep, err)
	}
	if len(tr.Sends()) != 1 {
		t.Errorf("RunWith observer saw %d sends, want 1", len(tr.Sends()))
	}
}

func TestPingPong(t *testing.T) {
	rep := mustRun(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1, 2, 3})
			got := c.Recv(1, 0)
			if len(got) != 2 || got[0] != 4 {
				t.Errorf("rank 0 received %v", got)
			}
		} else {
			got := c.Recv(0, 0)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("rank 1 received %v", got)
			}
			c.Send(0, 0, []float64{4, 5})
		}
	})
	if rep.SentWords[0] != 3 || rep.SentWords[1] != 2 {
		t.Errorf("sent words %v", rep.SentWords)
	}
	if rep.RecvWords[0] != 2 || rep.RecvWords[1] != 3 {
		t.Errorf("recv words %v", rep.RecvWords)
	}
	if rep.SentMsgs[0] != 1 || rep.RecvMsgs[1] != 1 {
		t.Errorf("msg counts %v %v", rep.SentMsgs, rep.RecvMsgs)
	}
}

func TestMessageIsolation(t *testing.T) {
	// Distributed memory: mutating the sent buffer after Send must not
	// affect what the receiver sees.
	mustRun(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = -1
		} else {
			got := c.Recv(0, 0)
			if got[0] != 42 {
				t.Errorf("received %v after sender mutation", got)
			}
		}
	})
}

func TestTagsDisambiguate(t *testing.T) {
	// Receive tags out of arrival order.
	mustRun(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{7})
			c.Send(1, 8, []float64{8})
		} else {
			if got := c.Recv(0, 8); got[0] != 8 {
				t.Errorf("tag 8 got %v", got)
			}
			if got := c.Recv(0, 7); got[0] != 7 {
				t.Errorf("tag 7 got %v", got)
			}
		}
	})
}

func TestFIFOPerSenderTag(t *testing.T) {
	mustRun(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.Send(1, 0, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 10; i++ {
				if got := c.Recv(0, 0); got[0] != float64(i) {
					t.Errorf("message %d got %v", i, got)
				}
			}
		}
	})
}

func TestExchange(t *testing.T) {
	rep := mustRun(t, 4, func(c *Comm) {
		peer := c.Rank() ^ 1
		got := c.Exchange(peer, 0, []float64{float64(c.Rank())})
		if got[0] != float64(peer) {
			t.Errorf("rank %d exchanged, got %v", c.Rank(), got)
		}
	})
	if rep.MaxWords() != 1 {
		t.Errorf("MaxWords = %d", rep.MaxWords())
	}
	if rep.TotalSentWords() != 4 {
		t.Errorf("TotalSentWords = %d", rep.TotalSentWords())
	}
}

func TestBarrierOrdering(t *testing.T) {
	// After a barrier, all pre-barrier sends from every rank are in
	// flight; use phases to check no crosstalk between rounds.
	const p = 8
	mustRun(t, p, func(c *Comm) {
		for round := 0; round < 5; round++ {
			peer := (c.Rank() + 1 + round) % p
			if peer != c.Rank() {
				c.Send(peer, round, []float64{float64(round*100 + c.Rank())})
				from := (c.Rank() - 1 - round + 2*p) % p
				got := c.Recv(from, round)
				if int(got[0]) != round*100+from {
					t.Errorf("round %d rank %d got %v", round, c.Rank(), got)
				}
			}
			c.Barrier()
		}
	})
}

func TestConservation(t *testing.T) {
	// Total sent must equal total received in any completed run.
	rep := mustRun(t, 6, func(c *Comm) {
		for to := 0; to < c.Size(); to++ {
			if to != c.Rank() {
				c.Send(to, 0, make([]float64, c.Rank()+1))
			}
		}
		for from := 0; from < c.Size(); from++ {
			if from != c.Rank() {
				c.Recv(from, 0)
			}
		}
	})
	var sent, recv int64
	for i := 0; i < rep.P; i++ {
		sent += rep.SentWords[i]
		recv += rep.RecvWords[i]
	}
	if sent != recv {
		t.Errorf("sent %d != received %d", sent, recv)
	}
}

func TestSelfSendPanics(t *testing.T) {
	_, err := RunWith(2, RunConfig{Timeout: time.Second}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(0, 0, nil)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "itself") {
		t.Fatalf("err = %v", err)
	}
}

func TestOutOfRangeSendPanics(t *testing.T) {
	_, err := RunWith(2, RunConfig{Timeout: time.Second}, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(5, 0, nil)
		}
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestDeadlockDetection(t *testing.T) {
	_, err := RunWith(2, RunConfig{Timeout: 100 * time.Millisecond}, func(c *Comm) {
		c.Recv(1-c.Rank(), 0) // both wait forever
	})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsBadP(t *testing.T) {
	if _, err := RunWith(0, RunConfig{Timeout: 0}, func(c *Comm) {}); err == nil {
		t.Fatal("P=0 accepted")
	}
}

func TestCountersVisibleMidRun(t *testing.T) {
	mustRun(t, 2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 5))
			if c.SentWords() != 5 || c.SentMsgs() != 1 {
				t.Errorf("mid-run counters: %d words %d msgs", c.SentWords(), c.SentMsgs())
			}
		} else {
			c.Recv(0, 0)
			if c.RecvWords() != 5 {
				t.Errorf("mid-run recv words: %d", c.RecvWords())
			}
		}
	})
}

func TestReportAggregates(t *testing.T) {
	rep := &Report{
		P:         3,
		SentWords: []int64{5, 9, 2},
		RecvWords: []int64{10, 1, 5},
		SentMsgs:  []int64{1, 3, 2},
		RecvMsgs:  []int64{2, 2, 2},
	}
	if rep.MaxSentWords() != 9 {
		t.Errorf("MaxSentWords = %d", rep.MaxSentWords())
	}
	if rep.MaxRecvWords() != 10 {
		t.Errorf("MaxRecvWords = %d", rep.MaxRecvWords())
	}
	if rep.MaxWords() != 10 {
		t.Errorf("MaxWords = %d", rep.MaxWords())
	}
	if rep.TotalSentWords() != 16 {
		t.Errorf("TotalSentWords = %d", rep.TotalSentWords())
	}
	if rep.MaxSentMsgs() != 3 {
		t.Errorf("MaxSentMsgs = %d", rep.MaxSentMsgs())
	}
}

func TestManyRanksStress(t *testing.T) {
	// A ring reduction across 64 ranks; checks no lost or duplicated
	// messages at scale.
	const p = 64
	mustRun(t, p, func(c *Comm) {
		sum := float64(c.Rank())
		for step := 0; step < p-1; step++ {
			to := (c.Rank() + 1) % p
			from := (c.Rank() - 1 + p) % p
			c.Send(to, step, []float64{sum})
			sum += c.Recv(from, step)[0] - float64(c.Rank()) // accumulate ring values
			// simpler: track incoming value only
		}
	})
	// The arithmetic above is intentionally loose; the real assertion is
	// that the run completes without deadlock or loss. A strict ring
	// all-reduce correctness test follows.
	rep := mustRun(t, p, func(c *Comm) {
		val := float64(c.Rank() + 1)
		acc := val
		cur := val
		for step := 0; step < p-1; step++ {
			to := (c.Rank() + 1) % p
			from := (c.Rank() - 1 + p) % p
			c.Send(to, step, []float64{cur})
			cur = c.Recv(from, step)[0]
			acc += cur
		}
		want := float64(p*(p+1)) / 2
		if math.Abs(acc-want) > 1e-9 {
			t.Errorf("rank %d: ring sum %g, want %g", c.Rank(), acc, want)
		}
	})
	if rep.MaxSentMsgs() != p-1 {
		t.Errorf("MaxSentMsgs = %d, want %d", rep.MaxSentMsgs(), p-1)
	}
}

func BenchmarkExchange(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mustRun(b, 8, func(c *Comm) {
			peer := c.Rank() ^ 1
			c.Exchange(peer, 0, make([]float64, 64))
		})
	}
}
