// Package la provides the small dense linear algebra needed by the
// symmetric CP gradient computation (Algorithm 2) and its driver: column-
// major-free row-major matrices, Gram and Hadamard products, and basic
// vector operations. It is intentionally minimal — just the substrate the
// paper's applications require.
package la

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // Data[r*Cols+c]
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("la: NewMatrix(%d, %d)", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns m[r,c].
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns m[r,c].
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Col returns a copy of column c.
func (m *Matrix) Col(c int) []float64 {
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.Data[r*m.Cols+c]
	}
	return out
}

// SetCol overwrites column c.
func (m *Matrix) SetCol(c int, v []float64) {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("la: SetCol of length %d into %d rows", len(v), m.Rows))
	}
	for r := 0; r < m.Rows; r++ {
		m.Data[r*m.Cols+c] = v[r]
	}
}

// MatMul returns a·b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("la: MatMul %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Gram returns XᵀX for an n×r matrix X — the r×r factor Gram matrix used
// on line 3 of Algorithm 2.
func Gram(x *Matrix) *Matrix {
	out := NewMatrix(x.Cols, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Data[i*x.Cols : (i+1)*x.Cols]
		for a, va := range row {
			if va == 0 {
				continue
			}
			orow := out.Data[a*x.Cols : (a+1)*x.Cols]
			for b, vb := range row {
				orow[b] += va * vb
			}
		}
	}
	return out
}

// Hadamard returns the elementwise product a ∗ b.
func Hadamard(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("la: Hadamard %dx%d with %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Sub returns a − b.
func Sub(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("la: Sub %dx%d with %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, a.Cols)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Scale multiplies every entry by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// FrobeniusNorm returns ‖m‖_F.
func (m *Matrix) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// --- vector helpers ---

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: Dot of lengths %d and %d", len(x), len(y)))
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm returns ‖x‖₂.
func Norm(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Normalize scales x to unit norm in place and returns the original norm.
// A zero vector is left unchanged and reported as norm 0.
func Normalize(x []float64) float64 {
	n := Norm(x)
	if n == 0 {
		return 0
	}
	for i := range x {
		x[i] /= n
	}
	return n
}

// Axpy computes y += a·x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("la: Axpy of lengths %d and %d", len(x), len(y)))
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Scale multiplies x by s in place.
func Scale(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}
