package la

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatMul(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrix(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestGramMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := NewMatrix(7, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	// Gram == Xᵀ·X via explicit transpose multiply.
	xt := NewMatrix(4, 7)
	for i := 0; i < 7; i++ {
		for j := 0; j < 4; j++ {
			xt.Set(j, i, x.At(i, j))
		}
	}
	want := MatMul(xt, x)
	got := Gram(x)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("Gram differs at %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
	// Symmetry.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if got.At(i, j) != got.At(j, i) {
				t.Fatal("Gram not symmetric")
			}
		}
	}
}

func TestHadamardSubScale(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float64{5, 6, 7, 8})
	h := Hadamard(a, b)
	if h.Data[0] != 5 || h.Data[3] != 32 {
		t.Fatalf("Hadamard = %v", h.Data)
	}
	s := Sub(b, a)
	if s.Data[0] != 4 || s.Data[3] != 4 {
		t.Fatalf("Sub = %v", s.Data)
	}
	a.Scale(2)
	if a.Data[3] != 8 {
		t.Fatalf("Scale = %v", a.Data)
	}
}

func TestColSetCol(t *testing.T) {
	m := NewMatrix(3, 2)
	m.SetCol(1, []float64{1, 2, 3})
	got := m.Col(1)
	if got[0] != 1 || got[2] != 3 {
		t.Fatalf("Col = %v", got)
	}
	if m.Col(0)[0] != 0 {
		t.Fatal("SetCol leaked into other column")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(2, 2)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone aliases")
	}
}

func TestVectorOps(t *testing.T) {
	x := []float64{3, 4}
	if Norm(x) != 5 {
		t.Fatalf("Norm = %g", Norm(x))
	}
	if Dot(x, x) != 25 {
		t.Fatalf("Dot = %g", Dot(x, x))
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 {
		t.Fatalf("Scale = %v", y)
	}
	n := Normalize(x)
	if n != 5 || math.Abs(Norm(x)-1) > 1e-15 {
		t.Fatalf("Normalize: n=%g ‖x‖=%g", n, Norm(x))
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("Normalize of zero should report 0")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 2, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %g", got)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Dot":       func() { Dot([]float64{1}, []float64{1, 2}) },
		"Axpy":      func() { Axpy(1, []float64{1}, []float64{1, 2}) },
		"Hadamard":  func() { Hadamard(NewMatrix(1, 2), NewMatrix(2, 1)) },
		"Sub":       func() { Sub(NewMatrix(1, 2), NewMatrix(2, 1)) },
		"SetCol":    func() { NewMatrix(3, 1).SetCol(0, []float64{1}) },
		"NewMatrix": func() { NewMatrix(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
