package netwire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/machine"
)

func randPacket(rng *rand.Rand, nwords int) machine.Packet {
	pkt := machine.Packet{
		From:  rng.Intn(64),
		To:    rng.Intn(64),
		Tag:   rng.Intn(1 << 20),
		Seq:   int(rng.Int63()),
		Kind:  machine.PacketKind(rng.Intn(2)),
		Check: rng.Uint64(),
		Epoch: rng.Int63(),
	}
	if nwords > 0 {
		pkt.Data = make([]float64, nwords)
		for i := range pkt.Data {
			switch rng.Intn(8) {
			case 0:
				pkt.Data[i] = math.Inf(1)
			case 1:
				pkt.Data[i] = math.NaN()
			case 2:
				pkt.Data[i] = 0
			default:
				pkt.Data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
			}
		}
	}
	return pkt
}

func samePacket(a, b machine.Packet) bool {
	if a.From != b.From || a.To != b.To || a.Tag != b.Tag || a.Seq != b.Seq ||
		a.Kind != b.Kind || a.Check != b.Check || a.Epoch != b.Epoch || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// TestFrameRoundTrip: encode→decode is the identity for payload widths
// from empty to wide, with NaN/Inf payload bits preserved exactly.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	widths := []int{0, 1, 2, 7, 63, 1024, 4096}
	for _, n := range widths {
		for trial := 0; trial < 8; trial++ {
			pkt := randPacket(rng, n)
			frame := AppendFrame(nil, pkt)
			if want := FrameWords(n) * 8; int64(len(frame)) > want || int64(len(frame)) < want-7 {
				t.Fatalf("n=%d: frame %d bytes, FrameWords %d words", n, len(frame), FrameWords(n))
			}
			got, err := DecodeFrame(frame[framePrefixLen:])
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if !samePacket(pkt, got) {
				t.Fatalf("n=%d: round trip %+v != %+v", n, got, pkt)
			}
		}
	}
}

// TestFrameStreamRoundTrip: many frames back to back through ReadFrame's
// buffered reader, as the connection reader consumes them.
func TestFrameStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	var stream []byte
	var pkts []machine.Packet
	for i := 0; i < 200; i++ {
		pkt := randPacket(rng, rng.Intn(50))
		pkts = append(pkts, pkt)
		stream = AppendFrame(stream, pkt)
	}
	br := bufio.NewReaderSize(bytes.NewReader(stream), 97) // odd size to split frames across fills
	var scratch []byte
	for i, want := range pkts {
		got, err := ReadFrame(br, &scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !samePacket(want, got) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(br, &scratch); !errors.Is(err, io.EOF) {
		t.Fatalf("clean stream end: %v", err)
	}
}

// TestFrameCorruption: flipping any byte of the frame body is detected by
// the trailing checksum (or by a bounds check, for the length-adjacent
// payload-count field).
func TestFrameCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	pkt := randPacket(rng, 9)
	frame := AppendFrame(nil, pkt)
	for i := framePrefixLen; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		if _, err := DecodeFrame(mut[framePrefixLen:]); err == nil {
			t.Fatalf("corruption at byte %d went undetected", i)
		}
	}
}

// TestFrameTorn: truncation mid-prefix, mid-header and mid-payload all
// surface as errors, never as a silently short packet.
func TestFrameTorn(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	pkt := randPacket(rng, 16)
	frame := AppendFrame(nil, pkt)
	cuts := []int{1, 3, framePrefixLen + 5, framePrefixLen + frameHeaderLen + 3, len(frame) - 1}
	for _, cut := range cuts {
		br := bufio.NewReader(bytes.NewReader(frame[:cut]))
		var scratch []byte
		if _, err := ReadFrame(br, &scratch); err == nil {
			t.Fatalf("torn frame at byte %d read successfully", cut)
		} else if !strings.Contains(err.Error(), "torn") {
			t.Fatalf("torn frame at byte %d: %v", cut, err)
		}
	}
}

// TestFrameLengthBounds: a corrupted length prefix cannot drive a huge
// allocation or a zero-length body.
func TestFrameLengthBounds(t *testing.T) {
	for _, body := range []uint32{0, 7, frameHeaderLen + 8*MaxFrameWords + frameTrailerLen + 1, 1 << 31} {
		raw := binary.BigEndian.AppendUint32(nil, body)
		raw = append(raw, make([]byte, 64)...)
		br := bufio.NewReader(bytes.NewReader(raw))
		var scratch []byte
		if _, err := ReadFrame(br, &scratch); err == nil || !strings.Contains(err.Error(), "out of bounds") {
			t.Fatalf("length %d: %v", body, err)
		}
	}
}
