package netwire_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/netwire"
)

// TestDistributedClients drives the coordinator/client control plane with
// every "process" as a goroutine: p machines of one local rank each,
// exchanging over real TCP sockets with the control-plane barrier. This
// is the distributed machine seam without the process-spawning layer on
// top (internal/cluster owns that).
func TestDistributedClients(t *testing.T) {
	const p = 3
	co, err := netwire.NewCoordinator("tcp", "127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	clients := make([]*netwire.Client, p)
	for r := 0; r < p; r++ {
		cl, err := netwire.NewClient("tcp", co.Addr(), r, p)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		clients[r] = cl
	}
	for i := 0; i < p; i++ {
		ev := <-co.Events()
		if ev.Type != "hello" {
			t.Fatalf("event %d: %q, want hello", i, ev.Type)
		}
	}
	addrs, ok := co.Portmap()
	if !ok {
		t.Fatal("portmap incomplete after all hellos")
	}
	for _, cl := range clients {
		cl.Adopt(addrs)
	}

	results := make([][]float64, p)
	var wg sync.WaitGroup
	errs := make(chan error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rep, err := machine.RunWith(p, machine.RunConfig{
				Backend:    clients[r],
				LocalRanks: []int{r},
			}, func(c *machine.Comm) {
				me := c.Rank()
				next, prev := (me+1)%p, (me+p-1)%p
				data := []float64{float64(me), float64(me * 10)}
				for round := 0; round < 4; round++ {
					c.Send(next, round, data)
					got := c.Recv(prev, round)
					if len(got) != 2 || got[0] != float64(prev) {
						errs <- errf("rank %d round %d: got %v", me, round, got)
						return
					}
					c.Barrier()
					data = []float64{data[0], data[1] + 1}
				}
				results[me] = data
			})
			if err != nil {
				errs <- err
				return
			}
			if rep.SentMsgs[r] != 4 {
				errs <- errf("rank %d: %d sent msgs, want 4", r, rep.SentMsgs[r])
			}
		}(r)
	}
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(30 * time.Second):
		t.Fatal("distributed machines did not finish")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for r, got := range results {
		if got == nil {
			t.Fatalf("rank %d produced no result", r)
		}
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
