package netwire

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Coordinator is the control-plane rendezvous of a distributed run: every
// rank process keeps one persistent connection to it. The coordinator
// collects registrations (building the portmap the ranks resolve each
// other through), counts arrivals for the global barrier, and forwards
// lifecycle messages between the ranks and the embedding supervisor
// (internal/cluster), which owns the actual recovery policy. A rank whose
// control connection drops while registered is reported as down — that is
// how a kill -9 becomes a supervision event.
type Coordinator struct {
	p       int
	network string
	ln      net.Listener

	mu       sync.Mutex
	conns    map[int]*ctlConn
	addrs    map[int]string
	arrivals map[int64]map[int]bool // epoch → ranks arrived at the barrier
	fence    int64                  // epochs below this were aborted; their arrivals are ignored
	gen      int
	closed   bool

	events chan CtlEvent
	done   chan struct{}
	wg     sync.WaitGroup
}

// ctlConn is one rank's registered control connection; writes are
// serialized per connection.
type ctlConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
}

func (cc *ctlConn) send(m ctlMsg) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.enc.Encode(m)
}

// NewCoordinator listens for p rank registrations on addr ("tcp" or
// "unix" network).
func NewCoordinator(network, addr string, p int) (*Coordinator, error) {
	switch network {
	case "tcp", "unix":
	default:
		return nil, fmt.Errorf("netwire: coordinator network %q (want tcp or unix)", network)
	}
	if p < 1 {
		return nil, fmt.Errorf("netwire: coordinator for %d ranks", p)
	}
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("netwire: coordinator listen %s %s: %w", network, addr, err)
	}
	co := &Coordinator{
		p:        p,
		network:  network,
		ln:       ln,
		conns:    make(map[int]*ctlConn),
		addrs:    make(map[int]string),
		arrivals: make(map[int64]map[int]bool),
		events:   make(chan CtlEvent, 64),
		done:     make(chan struct{}),
	}
	co.wg.Add(1)
	go co.acceptLoop()
	return co, nil
}

// Addr returns the control endpoint ranks dial.
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Events delivers rank-originated control messages (hello, quiesced,
// ready, ckpt, result) plus synthesized "down" events when a registered
// rank's connection drops. The supervisor must keep draining it.
func (co *Coordinator) Events() <-chan CtlEvent { return co.events }

func (co *Coordinator) emit(ev CtlEvent) {
	select {
	case co.events <- ev:
	case <-co.done:
	}
}

func (co *Coordinator) acceptLoop() {
	defer co.wg.Done()
	for {
		c, err := co.ln.Accept()
		if err != nil {
			return
		}
		co.wg.Add(1)
		go co.serve(c)
	}
}

// serve handles one rank connection: a hello registers it, then messages
// flow until the connection dies. A registered rank's death is a down
// event; a connection replaced by a newer hello for the same rank dies
// silently.
func (co *Coordinator) serve(c net.Conn) {
	defer co.wg.Done()
	defer c.Close()
	dec := json.NewDecoder(c)
	var hello ctlMsg
	if err := dec.Decode(&hello); err != nil || hello.Type != "hello" || hello.Rank < 0 || hello.Rank >= co.p {
		return
	}
	rank := hello.Rank
	cc := &ctlConn{conn: c, enc: json.NewEncoder(c)}

	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return
	}
	if old := co.conns[rank]; old != nil {
		old.conn.Close()
	}
	co.conns[rank] = cc
	co.addrs[rank] = hello.Addr
	co.mu.Unlock()
	co.emit(eventOf(hello))

	for {
		var m ctlMsg
		if err := dec.Decode(&m); err != nil {
			break
		}
		m.Rank = rank // never trust a relabeled rank
		switch m.Type {
		case "barrier":
			co.arrive(rank, m.Epoch)
		case "quiesced", "ready", "ckpt", "result":
			co.emit(eventOf(m))
		}
	}

	co.mu.Lock()
	registered := co.conns[rank] == cc
	if registered {
		delete(co.conns, rank)
	}
	closed := co.closed
	co.mu.Unlock()
	if registered && !closed {
		co.emit(CtlEvent{Type: "down", Rank: rank})
	}
}

// arrive counts a barrier arrival; the p-th arrival of an epoch advances
// the global generation and releases everyone. Arrivals of fenced
// (aborted) epochs are discarded outright: without the fence, a barrier
// message that races AbortEpoch would re-create the epoch's arrival set,
// which nothing ever deletes — the map would grow by one dead entry per
// crash for the life of the coordinator.
func (co *Coordinator) arrive(rank int, epoch int64) {
	co.mu.Lock()
	if epoch < co.fence {
		co.mu.Unlock()
		return
	}
	set := co.arrivals[epoch]
	if set == nil {
		set = make(map[int]bool, co.p)
		co.arrivals[epoch] = set
	}
	set[rank] = true
	if len(set) < co.p {
		co.mu.Unlock()
		return
	}
	delete(co.arrivals, epoch)
	co.gen++
	gen := co.gen
	conns := co.snapshotLocked()
	co.mu.Unlock()
	for _, cc := range conns {
		cc.send(ctlMsg{Type: "release", Epoch: epoch, Gen: gen})
	}
}

func (co *Coordinator) snapshotLocked() []*ctlConn {
	out := make([]*ctlConn, 0, len(co.conns))
	for _, cc := range co.conns {
		out = append(out, cc)
	}
	return out
}

// broadcast sends m to every registered rank; a send that fails is
// ignored (the reader will surface the down event).
func (co *Coordinator) broadcast(m ctlMsg) {
	co.mu.Lock()
	conns := co.snapshotLocked()
	co.mu.Unlock()
	for _, cc := range conns {
		cc.send(m)
	}
}

// Portmap returns the current rank → data-address map; ok is false until
// all p ranks have said hello.
func (co *Coordinator) Portmap() ([]string, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if len(co.addrs) < co.p {
		return nil, false
	}
	addrs := make([]string, co.p)
	for r, a := range co.addrs {
		addrs[r] = a
	}
	return addrs, true
}

// Resume broadcasts the (re)start order: adopt the portmap, restore state
// as of iter (0 seeds fresh), reply ready. All p ranks must be registered.
func (co *Coordinator) Resume(epoch int64, iter int) error {
	addrs, ok := co.Portmap()
	if !ok {
		return fmt.Errorf("netwire: resume before all %d ranks registered", co.p)
	}
	co.broadcast(ctlMsg{Type: "resume", Epoch: epoch, Iter: iter, Addrs: addrs})
	return nil
}

// Go releases the ranks into the run once every one is ready.
func (co *Coordinator) Go(iter int) { co.broadcast(ctlMsg{Type: "go", Iter: iter}) }

// AbortEpoch fences the given epoch: survivors unwind, park, and report
// quiesced. Barrier arrivals of the epoch are discarded — the barrier can
// never complete once a participant is dead.
func (co *Coordinator) AbortEpoch(epoch int64) {
	co.mu.Lock()
	// Fence the epoch (and every earlier one — epochs only move forward)
	// so a straggling barrier message cannot resurrect its arrival state.
	if epoch >= co.fence {
		co.fence = epoch + 1
	}
	for e := range co.arrivals {
		if e < co.fence {
			delete(co.arrivals, e)
		}
	}
	co.mu.Unlock()
	co.broadcast(ctlMsg{Type: "abort", Epoch: epoch})
}

// Stop orders a clean shutdown of every rank.
func (co *Coordinator) Stop() { co.broadcast(ctlMsg{Type: "stop"}) }

// Close shuts the listener and every control connection. Safe to call
// more than once.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		return nil
	}
	co.closed = true
	conns := co.snapshotLocked()
	co.conns = map[int]*ctlConn{}
	co.mu.Unlock()
	close(co.done)
	co.ln.Close()
	for _, cc := range conns {
		cc.conn.Close()
	}
	co.wg.Wait()
	return nil
}
