package netwire

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseHosts(t *testing.T) {
	in := `
# rank 0 and 1 share a box, rank 2 has its own
10.0.0.1
10.0.0.1:7710

10.0.0.2   # trailing comment
`
	hosts, err := ParseHosts(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"10.0.0.1", "10.0.0.1:7710", "10.0.0.2"}
	if len(hosts) != len(want) {
		t.Fatalf("got %v, want %v", hosts, want)
	}
	for i := range want {
		if hosts[i] != want[i] {
			t.Fatalf("host %d: got %q, want %q", i, hosts[i], want[i])
		}
	}
}

func TestParseHostsRejects(t *testing.T) {
	for _, in := range []string{
		"",                    // no hosts at all
		"# only comments\n\n", // still no hosts
		"10.0.0.1 10.0.0.2",   // two hosts on one line
	} {
		if hosts, err := ParseHosts(strings.NewReader(in)); err == nil {
			t.Errorf("ParseHosts(%q) = %v, want error", in, hosts)
		}
	}
}

func TestLoadHosts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hosts")
	if err := os.WriteFile(path, []byte("127.0.0.1\n127.0.0.2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	hosts, err := LoadHosts(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 || hosts[0] != "127.0.0.1" || hosts[1] != "127.0.0.2" {
		t.Fatalf("got %v", hosts)
	}
	if _, err := LoadHosts(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("LoadHosts on a missing file succeeded")
	}
}
