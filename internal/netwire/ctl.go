package netwire

// The distributed control plane: one JSON object per line on a rank's
// persistent connection to the coordinator. The data plane (packet
// frames, node.go) never touches these connections.
//
// Rank → coordinator:
//
//	hello    {rank, addr}          — registration; addr is the data listener
//	barrier  {rank, epoch}         — arrival at the global barrier
//	quiesced {rank, epoch}         — survivors parked after an abort
//	ready    {rank, epoch}         — state restored, safe to resume
//	ckpt     {rank, iter}          — checkpoint at iter durably committed
//	result   {rank, …}             — final per-rank outcome + owned chunks
//
// Coordinator → rank:
//
//	resume   {epoch, iter, addrs}  — (re)start: adopt the portmap, restore
//	                                 iter (0 seeds fresh), reply ready
//	go       {iter}                — all ranks ready: run from iter
//	release  {epoch, gen}          — global barrier completed
//	abort    {epoch}               — epoch abort: unwind and quiesce
//	stop     {}                    — shut down cleanly
type ctlMsg struct {
	Type  string   `json:"type"`
	Rank  int      `json:"rank,omitempty"`
	Addr  string   `json:"addr,omitempty"`
	Addrs []string `json:"addrs,omitempty"`
	Epoch int64    `json:"epoch,omitempty"`
	Gen   int      `json:"gen,omitempty"`
	Iter  int      `json:"iter,omitempty"`

	// result payload; float64s travel as IEEE-754 bit patterns so the
	// assembled vector is bit-identical to the rank's arena.
	LambdaBits uint64   `json:"lambdaBits,omitempty"`
	Iterations int      `json:"iterations,omitempty"`
	Converged  bool     `json:"converged,omitempty"`
	Singular   bool     `json:"singular,omitempty"`
	ChunkBits  []uint64 `json:"chunkBits,omitempty"`
}

// CtlEvent is a control-plane message surfaced to the embedding
// supervisor (coordinator side: hello/quiesced/ready/ckpt/result;
// rank side: resume/go/abort/stop).
type CtlEvent struct {
	Type  string
	Rank  int
	Epoch int64
	Iter  int
	Addrs []string

	LambdaBits uint64
	Iterations int
	Converged  bool
	Singular   bool
	ChunkBits  []uint64
}

func eventOf(m ctlMsg) CtlEvent {
	return CtlEvent{
		Type: m.Type, Rank: m.Rank, Epoch: m.Epoch, Iter: m.Iter, Addrs: m.Addrs,
		LambdaBits: m.LambdaBits, Iterations: m.Iterations,
		Converged: m.Converged, Singular: m.Singular, ChunkBits: m.ChunkBits,
	}
}
