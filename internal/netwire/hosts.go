package netwire

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// ParseHosts reads a hosts file: one bind address per rank, rank order,
// `host` or `host:port` per line. Blank lines and `#` comments are
// skipped. The result indexes by rank — line i is rank i's address.
//
// A bare host binds an ephemeral port (the coordinator's portmap carries
// the resolved one); an explicit port pins it, for firewalled clusters.
func ParseHosts(r io.Reader) ([]string, error) {
	var hosts []string
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if strings.ContainsAny(text, " \t") {
			return nil, fmt.Errorf("netwire: hosts line %d: %q is not one host[:port]", line, text)
		}
		hosts = append(hosts, text)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netwire: reading hosts: %w", err)
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("netwire: hosts file lists no hosts")
	}
	return hosts, nil
}

// LoadHosts is ParseHosts over a file path.
func LoadHosts(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("netwire: open hosts file: %w", err)
	}
	defer f.Close()
	hosts, err := ParseHosts(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return hosts, nil
}
