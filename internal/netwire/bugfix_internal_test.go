package netwire

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/machine"
)

// TestBarrierSurvivesReleaseFlood is the regression test for the
// release-channel overflow: a coordinator that aborted many epochs after
// this rank arrived at their barriers floods the client with stale
// releases. The buggy readLoop dropped the INCOMING message when the
// buffer was full — so the one release that mattered, the current
// epoch's, was the one lost, and Barrier hung forever. The fix evicts the
// oldest buffered entry instead.
func TestBarrierSurvivesReleaseFlood(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		dec := json.NewDecoder(c)
		var hello ctlMsg
		if err := dec.Decode(&hello); err != nil || hello.Type != "hello" {
			return
		}
		enc := json.NewEncoder(c)
		// Far more stale releases than the buffer holds, then the live one.
		for i := 0; i < 200; i++ {
			enc.Encode(ctlMsg{Type: "release", Epoch: 1, Gen: i + 1})
		}
		enc.Encode(ctlMsg{Type: "release", Epoch: 5, Gen: 42})
		enc.Encode(ctlMsg{Type: "go"})
		io.Copy(io.Discard, c) // keep the control connection open
	}()

	cl, err := NewClient("tcp", ln.Addr().String(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The "go" event proves readLoop has sequenced past every release
	// above — whatever it was going to drop is already dropped.
	select {
	case ev := <-cl.Events():
		if ev.Type != "go" {
			t.Fatalf("event %q, want go", ev.Type)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no go event")
	}

	type result struct {
		gen int
		ok  bool
	}
	resCh := make(chan result, 1)
	go func() {
		g, ok := cl.wire.Barrier(5, nil)
		resCh <- result{g, ok}
	}()
	select {
	case r := <-resCh:
		if !r.ok || r.gen != 42 {
			t.Fatalf("Barrier = (%d, %v), want (42, true)", r.gen, r.ok)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Barrier starved: the current epoch's release was evicted by the stale flood")
	}
}

// TestAbortEpochClearsArrivals is the regression test for the coordinator
// barrier-state leak: a barrier message racing AbortEpoch used to
// re-create the aborted epoch's arrival set, which nothing ever deleted —
// one dead map entry per crash, forever. The epoch fence discards such
// stragglers outright.
func TestAbortEpochClearsArrivals(t *testing.T) {
	co, err := NewCoordinator("tcp", "127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	for e := int64(1); e <= 8; e++ {
		co.arrive(0, e)
		co.arrive(1, e)
		co.AbortEpoch(e)
		co.arrive(2, e) // straggler: must not resurrect the aborted epoch
	}
	co.mu.Lock()
	leaked := len(co.arrivals)
	co.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d aborted epochs leaked barrier arrival state", leaked)
	}

	// A fresh epoch past the fence still completes its barrier.
	co.arrive(0, 9)
	co.arrive(1, 9)
	co.arrive(2, 9)
	co.mu.Lock()
	gen, pending := co.gen, len(co.arrivals)
	co.mu.Unlock()
	if gen != 1 || pending != 0 {
		t.Fatalf("post-fence barrier: gen=%d pending=%d, want gen=1 pending=0", gen, pending)
	}
}

// TestDeadPeerSendFailsFast is the regression test for the dial stall: a
// send to a dead peer used to pay the full synchronous dial timeout on
// EVERY send. The negative dial cache makes subsequent sends fail
// immediately until the backoff interval elapses, and redials once it has.
func TestDeadPeerSendFailsFast(t *testing.T) {
	var dials atomic.Int32
	nd, err := newNode("tcp", "127.0.0.1:0", 0, func(peer int) (string, bool) {
		return "127.0.0.1:9", true
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.close()
	nd.dial = func(network, addr string, timeout time.Duration) (net.Conn, error) {
		dials.Add(1)
		time.Sleep(200 * time.Millisecond) // a slow, doomed dial
		return nil, errors.New("peer dead")
	}

	pkt := machine.Packet{From: 0, To: 1, Kind: machine.PacketData, Data: []float64{1}}
	if err := nd.send(1, pkt); err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	start := time.Now()
	if err := nd.send(1, pkt); err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("second send to dead peer took %v, want an immediate cached failure", d)
	}
	if got := dials.Load(); got != 1 {
		t.Fatalf("%d dials for two sends, want 1 (cached failure)", got)
	}

	// Past the initial backoff the peer is probed again.
	time.Sleep(dialRetryMin + 20*time.Millisecond)
	nd.send(1, pkt)
	if got := dials.Load(); got != 2 {
		t.Fatalf("%d dials after backoff expiry, want 2 (redial)", got)
	}
}

// TestSelfDeliveryCopiesPayload is the regression test for the
// self-delivery aliasing bug: a packet delivered to the sender's own rank
// used to enter the inbox still referencing the sender's buffer, which
// payload pooling could hand back and overwrite while the packet waited.
// Socket-crossing packets never alias (DecodeFrame allocates), so
// self-delivery must copy to match.
func TestSelfDeliveryCopiesPayload(t *testing.T) {
	nd, err := newNode("tcp", "127.0.0.1:0", 0, func(peer int) (string, bool) { return "", false })
	if err != nil {
		t.Fatal(err)
	}
	defer nd.close()
	w := &Wire{nd: nd}

	data := []float64{1, 2, 3}
	w.Deliver(machine.Packet{From: 0, To: 0, Tag: 9, Kind: machine.PacketData, Data: data, Recycle: true})
	for i := range data {
		data[i] = -777 // the pool recycled the buffer and a later send scribbled on it
	}
	pkt, ok := w.PullTimeout(time.Second)
	if !ok {
		t.Fatal("self-delivered packet never arrived")
	}
	want := []float64{1, 2, 3}
	for i, v := range want {
		if pkt.Data[i] != v {
			t.Fatalf("payload aliased the sender's buffer: got %v, want %v", pkt.Data, want)
		}
	}
}
