package netwire_test

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/netwire"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// chaosPlans is the seeded grid the socket fault layer is proven against:
// each class alone, then everything at once. Probabilities stay below the
// point where a bounded-retry transport could plausibly exhaust its
// budget; stalls use a tiny delay so the grid stays fast.
var chaosPlans = []fault.Plan{
	{Seed: 101, Drop: 0.2},
	{Seed: 202, Dup: 0.25},
	{Seed: 303, Reorder: 0.35},
	{Seed: 404, Reset: 0.12},
	{Seed: 505, Drop: 0.08, Dup: 0.08, Reorder: 0.08, Corrupt: 0.1, Reset: 0.08, Stall: 0.05, StallDelay: 200 * time.Microsecond},
}

// chaosTransport is the reliable transport every chaos-wired run needs:
// the plan argument is empty because the faults live below the codec, in
// the socket layer itself. The retry budget is generous — corrupt and
// reset faults tear whole connections, so a burst of losses must not
// exhaust it.
func chaosTransport() machine.TransportFactory {
	return fault.TransportOpts(fault.Plan{}, fault.ReliableOptions{MaxAttempts: 1 << 12})
}

func newChaosLoopback(t *testing.T, network string, plan fault.Plan) *netwire.Loopback {
	t.Helper()
	be, err := netwire.NewChaosLoopback(network, plan)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { be.Close() })
	return be
}

// TestSocketChaosConformance is the chaos acceptance gate: Algorithm 5
// applications at q∈{2,3} over TCP and unix loopbacks whose frames are
// dropped, duplicated, reordered, corrupted, torn and stalled by seeded
// plans still produce bit-identical Y and identical logical per-phase
// meters to the fault-free SimBackend run. The criterion is equality with
// the clean sim run — the reliable transport must erase every fault the
// socket layer injects.
func TestSocketChaosConformance(t *testing.T) {
	for _, q := range []int{2, 3} {
		part := sphericalPart(t, q)
		b := 2
		n := part.M * b
		rng := rand.New(rand.NewSource(int64(700 + q)))
		a := tensor.Random(n, rng)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ref := runApply(t, a, x, part, b, nil)
		for _, plan := range chaosPlans {
			for _, network := range networks {
				plan, network := plan, network
				t.Run(plan.String()+"/"+network+"/q="+string(rune('0'+q)), func(t *testing.T) {
					be := newChaosLoopback(t, network, plan)
					res, err := parallel.Run(a, x, parallel.Options{
						Part:   part,
						B:      b,
						Wiring: parallel.WiringP2P,
						Machine: machine.RunConfig{
							Timeout:   60 * time.Second,
							Backend:   be,
							Transport: chaosTransport(),
						},
					})
					if err != nil {
						t.Fatal(err)
					}
					if !bitsEqual(res.Y, ref.Y) {
						t.Error("Y differs from the fault-free sim run")
					}
					if len(res.Phases) != len(ref.Phases) {
						t.Fatalf("%d phases, sim %d", len(res.Phases), len(ref.Phases))
					}
					for i := range ref.Phases {
						rp, sp := res.Phases[i], ref.Phases[i]
						for r := 0; r < part.P; r++ {
							if rp.SentWords[r] != sp.SentWords[r] || rp.RecvWords[r] != sp.RecvWords[r] ||
								rp.SentMsgs[r] != sp.SentMsgs[r] || rp.RecvMsgs[r] != sp.RecvMsgs[r] {
								t.Errorf("phase %q rank %d: logical meters differ from sim", rp.Label, r)
							}
						}
					}
				})
			}
		}
	}
}

// TestSocketChaosCrashRecoveryComposition composes the socket fault layer
// with in-process crash recovery: a plan that both perturbs frames and
// crashes a rank mid-run, over a TCP loopback, with the recovery
// supervisor armed. The respawned rank's node (and its chaos clock)
// survives the restart, the survivors roll back, and the committed result
// still matches the fault-free sim bit for bit.
func TestSocketChaosCrashRecoveryComposition(t *testing.T) {
	part := sphericalPart(t, 2)
	b := 2
	n := part.M * b
	rng := rand.New(rand.NewSource(711))
	a := tensor.Random(n, rng)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := runApply(t, a, x, part, b, nil)

	plan := fault.Plan{Seed: 606, Drop: 0.1, Reorder: 0.1, Crash: map[int]int{1: 5}}
	be := newChaosLoopback(t, "tcp", plan)
	res, err := parallel.Run(a, x, parallel.Options{
		Part:   part,
		B:      b,
		Wiring: parallel.WiringP2P,
		Machine: machine.RunConfig{
			Timeout:   60 * time.Second,
			Backend:   be,
			Transport: chaosTransport(),
		},
		Recovery: &parallel.RecoveryOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(res.Y, ref.Y) {
		t.Error("Y differs from the fault-free sim run after crash recovery")
	}
}

// TestDistributedBarrierServicesTransport is the regression test for the
// barrier/Idler deadlock: rank 0 receives a message, sends the ack, the
// ack is lost, and rank 0 parks at the control-plane barrier. Rank 1 is
// still blocked in Send, retransmitting — only rank 0's Idle servicing
// loop can re-acknowledge the duplicate while the barrier blocks. Before
// the fix rank 0 sat in the coordinator barrier with its transport
// parked, rank 1 retransmitted into silence until its attempt budget
// died, and the run failed.
func TestDistributedBarrierServicesTransport(t *testing.T) {
	const p = 2
	co, err := netwire.NewCoordinator("tcp", "127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	clients := make([]*netwire.Client, p)
	for r := 0; r < p; r++ {
		var copt netwire.ClientOptions
		if r == 0 {
			// Drop exactly the first outbound frame from rank 0 — the ack
			// for rank 1's message. Every later frame passes.
			copt.FaultPlan = fault.Plan{Seed: 1, Drop: 1.0, MaxFaults: 1}
		}
		cl, err := netwire.NewClientOpts("tcp", co.Addr(), r, p, copt)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		clients[r] = cl
	}
	for i := 0; i < p; i++ {
		if ev := <-co.Events(); ev.Type != "hello" {
			t.Fatalf("event %d: %q, want hello", i, ev.Type)
		}
	}
	addrs, ok := co.Portmap()
	if !ok {
		t.Fatal("portmap incomplete after all hellos")
	}
	for _, cl := range clients {
		cl.Adopt(addrs)
	}

	var wg sync.WaitGroup
	errs := make(chan error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			_, err := machine.RunWith(p, machine.RunConfig{
				Backend:    clients[r],
				LocalRanks: []int{r},
				Timeout:    10 * time.Second,
				Transport:  fault.TransportOpts(fault.Plan{}, fault.ReliableOptions{MaxAttempts: 64, AckTimeout: 2 * time.Millisecond}),
			}, func(c *machine.Comm) {
				if c.Rank() == 1 {
					// Blocks until acked; the first ack is eaten by rank 0's
					// chaos layer, so completion needs rank 0 to service the
					// retransmission from inside its barrier wait.
					c.Send(0, 7, []float64{42})
				} else {
					got := c.Recv(1, 7)
					if len(got) != 1 || got[0] != 42 {
						errs <- errf("rank 0: got %v", got)
					}
				}
				c.Barrier()
			})
			if err != nil {
				errs <- errf("rank %d: %v", r, err)
			}
		}(r)
	}
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(30 * time.Second):
		t.Fatal("barrier never released: the transport was not serviced while blocked")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestMultiHostPortmap binds every rank to a distinct loopback address
// from a hosts list — the single-machine shape of a multi-host run — and
// checks that the coordinator's portmap advertises each rank's own
// address rather than assuming one shared loopback, and that the exchange
// over those addresses matches the sim meters.
func TestMultiHostPortmap(t *testing.T) {
	hosts := []string{"127.0.0.1", "127.0.0.2", "127.0.0.3"}
	for _, h := range hosts[1:] {
		ln, err := net.Listen("tcp", net.JoinHostPort(h, "0"))
		if err != nil {
			t.Skipf("cannot bind %s: %v (single-address loopback)", h, err)
		}
		ln.Close()
	}
	p := len(hosts)
	co, err := netwire.NewCoordinator("tcp", "127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	clients := make([]*netwire.Client, p)
	for r := 0; r < p; r++ {
		cl, err := netwire.NewClientOpts("tcp", co.Addr(), r, p, netwire.ClientOptions{Bind: hosts[r]})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		clients[r] = cl
	}
	for i := 0; i < p; i++ {
		if ev := <-co.Events(); ev.Type != "hello" {
			t.Fatalf("event %d: %q, want hello", i, ev.Type)
		}
	}
	addrs, ok := co.Portmap()
	if !ok {
		t.Fatal("portmap incomplete after all hellos")
	}
	for r, addr := range addrs {
		host, _, err := net.SplitHostPort(addr)
		if err != nil {
			t.Fatalf("rank %d advertises %q: %v", r, addr, err)
		}
		if host != hosts[r] {
			t.Errorf("rank %d advertises host %q, want %q", r, host, hosts[r])
		}
	}
	for _, cl := range clients {
		cl.Adopt(addrs)
	}

	body := func(c *machine.Comm) {
		me := c.Rank()
		next, prev := (me+1)%p, (me+p-1)%p
		for round := 0; round < 3; round++ {
			c.Send(next, round, []float64{float64(me), float64(round)})
			got := c.Recv(prev, round)
			if len(got) != 2 || got[0] != float64(prev) {
				t.Errorf("rank %d round %d: got %v", me, round, got)
			}
			c.Barrier()
		}
	}
	ref, err := machine.RunWith(p, machine.RunConfig{Timeout: 30 * time.Second}, body)
	if err != nil {
		t.Fatal(err)
	}

	reports := make([]*machine.Report, p)
	var wg sync.WaitGroup
	errs := make(chan error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rep, err := machine.RunWith(p, machine.RunConfig{
				Backend:    clients[r],
				LocalRanks: []int{r},
				Timeout:    30 * time.Second,
			}, body)
			if err != nil {
				errs <- errf("rank %d: %v", r, err)
				return
			}
			reports[r] = rep
		}(r)
	}
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(60 * time.Second):
		t.Fatal("multi-host exchange did not finish")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	for r := 0; r < p; r++ {
		rep := reports[r]
		if rep.SentWords[r] != ref.SentWords[r] || rep.RecvWords[r] != ref.RecvWords[r] ||
			rep.SentMsgs[r] != ref.SentMsgs[r] || rep.RecvMsgs[r] != ref.RecvMsgs[r] {
			t.Errorf("rank %d: logical meters (%d,%d,%d,%d) != sim (%d,%d,%d,%d)", r,
				rep.SentWords[r], rep.RecvWords[r], rep.SentMsgs[r], rep.RecvMsgs[r],
				ref.SentWords[r], ref.RecvWords[r], ref.SentMsgs[r], ref.RecvMsgs[r])
		}
	}
}
