package netwire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
)

// testFrame returns one valid 3-word frame, the torn-frame fixture.
func testFrame() []byte {
	return AppendFrame(nil, machine.Packet{
		From: 1, To: 2, Tag: 3, Seq: 4, Kind: machine.PacketData,
		Check: 0xfeedface, Epoch: 5, Data: []float64{1.5, -2.25, 3.75},
	})
}

// FuzzReadFrame feeds arbitrary byte streams to the frame reader: it must
// never panic and never grow its scratch buffer beyond the largest legal
// frame body, no matter what the length prefix claims.
func FuzzReadFrame(f *testing.F) {
	f.Add(testFrame())
	frame := testFrame()
	f.Add(frame[:len(frame)/2])                // torn mid-frame
	f.Add(append(testFrame(), testFrame()...)) // two frames back to back
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})      // absurd length prefix
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxBody = frameHeaderLen + 8*MaxFrameWords + frameTrailerLen
		br := bufio.NewReader(bytes.NewReader(data))
		var scratch []byte
		for {
			pkt, err := ReadFrame(br, &scratch)
			if cap(scratch) > maxBody {
				t.Fatalf("scratch grew to %d bytes, legal max body is %d", cap(scratch), maxBody)
			}
			if err != nil {
				return
			}
			if len(pkt.Data) > MaxFrameWords {
				t.Fatalf("decoded %d payload words, cap %d", len(pkt.Data), MaxFrameWords)
			}
			if pkt.Recycle {
				t.Fatal("decoded packet claims a pooled payload")
			}
		}
	})
}

// TestReadFrameTornAtEveryBoundary cuts a valid frame at every field
// boundary (and inside every field) and checks each truncation surfaces
// as an error — never a panic, never a silently wrong packet. The frame
// is 77 bytes: prefix 0–4, from 4–8, to 8–12, tag 12–16, seq 16–24, kind
// 24–25, check 25–33, epoch 33–41, nwords 41–45, payload 45–69, trailer
// 69–77.
func TestReadFrameTornAtEveryBoundary(t *testing.T) {
	frame := testFrame()
	if len(frame) != 77 {
		t.Fatalf("fixture frame is %d bytes, want 77", len(frame))
	}
	cuts := []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 25, 29, 33, 37, 41, 43, 45, 53, 61, 69, 73, 76}
	for _, cut := range cuts {
		br := bufio.NewReader(bytes.NewReader(frame[:cut]))
		var scratch []byte
		if _, err := ReadFrame(br, &scratch); err == nil {
			t.Errorf("cut at %d: torn frame decoded without error", cut)
		} else if !strings.Contains(err.Error(), "torn frame") {
			t.Errorf("cut at %d: error %q does not name the torn frame", cut, err)
		}
	}

	// A complete frame followed by a torn one: the first decodes intact,
	// the second errors.
	stream := append(append([]byte(nil), frame...), frame[:30]...)
	br := bufio.NewReader(bytes.NewReader(stream))
	var scratch []byte
	pkt, err := ReadFrame(br, &scratch)
	if err != nil {
		t.Fatalf("intact frame before the tear: %v", err)
	}
	if pkt.From != 1 || pkt.To != 2 || pkt.Tag != 3 || len(pkt.Data) != 3 {
		t.Fatalf("intact frame decoded wrong: %+v", pkt)
	}
	if _, err := ReadFrame(br, &scratch); err == nil {
		t.Error("torn second frame decoded without error")
	}
}
