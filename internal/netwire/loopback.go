package netwire

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/fault"
	"repro/internal/machine"
)

// Loopback is a machine.Backend that runs all P ranks of one process over
// real sockets — TCP on 127.0.0.1 or unix-domain sockets in a temporary
// directory. Every packet is framed, written to the kernel, read back and
// decoded, so the codec, connection management and framed wire metering
// are exercised exactly as in a distributed run, while the machine itself
// (and everything above it: transports, sessions, recovery) runs
// unchanged. This is the conformance configuration: logical meters and
// results must match the SimBackend bit for bit.
//
// Loopback implements machine.RankResetter, so the in-process crash
// recovery suite (Handle.RestartRank) runs over sockets too.
type Loopback struct {
	network string
	plan    fault.Plan
	mu      sync.Mutex
	size    int
	dir     string
	nodes   []*node
	wires   []*Wire
	addrs   []string
	closed  bool
}

// NewLoopback returns a single-process socket backend; network is "tcp"
// or "unix". Listeners are created lazily at the first NewWire, when the
// machine size is known.
func NewLoopback(network string) (*Loopback, error) {
	switch network {
	case "tcp", "unix":
	default:
		return nil, fmt.Errorf("netwire: loopback network %q (want tcp or unix)", network)
	}
	return &Loopback{network: network}, nil
}

// NewChaosLoopback is NewLoopback with a seeded fault plan applied to
// every rank's outbound frames at the socket level (see fault.Plan and
// the faultWire mapping of fault classes onto framed bytes). Plan seeds
// match the simulated injector's per-rank derivation, so the same plan
// perturbs sim and socket runs comparably.
func NewChaosLoopback(network string, plan fault.Plan) (*Loopback, error) {
	b, err := NewLoopback(network)
	if err != nil {
		return nil, err
	}
	b.plan = plan
	return b, nil
}

// NewWire returns rank's socket endpoint, setting up all P listeners on
// first use.
func (b *Loopback) NewWire(rank, size int) (machine.BackendWire, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, errNodeClosed
	}
	if b.nodes == nil {
		if err := b.setupLocked(size); err != nil {
			return nil, err
		}
	}
	if size != b.size {
		return nil, fmt.Errorf("netwire: loopback sized for %d ranks, wire requested for machine of %d", b.size, size)
	}
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("netwire: loopback wire for rank %d of %d", rank, size)
	}
	return b.wires[rank], nil
}

func (b *Loopback) setupLocked(size int) error {
	if size < 1 {
		return fmt.Errorf("netwire: loopback for %d ranks", size)
	}
	addrs := make([]string, size)
	resolve := func(peer int) (string, bool) {
		if peer < 0 || peer >= len(addrs) {
			return "", false
		}
		return addrs[peer], true
	}
	var dir string
	if b.network == "unix" {
		d, err := os.MkdirTemp("", "netwire")
		if err != nil {
			return err
		}
		dir = d
	}
	nodes := make([]*node, size)
	wires := make([]*Wire, size)
	for r := 0; r < size; r++ {
		listen := "127.0.0.1:0"
		if b.network == "unix" {
			listen = filepath.Join(dir, fmt.Sprintf("r%d.sock", r))
		}
		nd, err := newNode(b.network, listen, r, resolve)
		if err != nil {
			for _, p := range nodes[:r] {
				p.close()
			}
			if dir != "" {
				os.RemoveAll(dir)
			}
			return err
		}
		nd.chaos = newFaultWire(b.plan, r)
		nodes[r] = nd
		wires[r] = &Wire{nd: nd}
		addrs[r] = nd.addr()
	}
	b.size = size
	b.dir = dir
	b.nodes = nodes
	b.wires = wires
	b.addrs = addrs
	return nil
}

// ResetRank hands a restarting rank a fresh inbound queue
// (machine.RankResetter). In-flight frames already in kernel buffers
// still decode into the new queue, where the machine's epoch fence
// discards them — the same semantics the SimBackend's mailbox swap has.
func (b *Loopback) ResetRank(rank int) {
	b.mu.Lock()
	nd := b.nodes[rank]
	b.mu.Unlock()
	nd.resetInbox()
}

// Close shuts every listener and connection and removes unix socket
// files. Safe to call more than once.
func (b *Loopback) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	nodes := b.nodes
	dir := b.dir
	b.mu.Unlock()
	for _, nd := range nodes {
		nd.close()
	}
	if dir != "" {
		os.RemoveAll(dir)
	}
	return nil
}
