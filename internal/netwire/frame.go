// Package netwire moves machine packets over real sockets: a TCP and a
// unix-domain-socket implementation of machine.BackendWire with
// length-prefixed binary framing, per-peer persistent connections with
// lazy dial, and framed-byte wire metering. Loopback runs all P ranks of
// one process over real sockets (the conformance configuration); Client
// plus the rendezvous Coordinator run them as separate OS processes.
//
// The backend carries raw packets only. Everything the machine.Wire
// contract adds — logical/wire meters, epoch stamping and fencing, abort
// unwinding — is decorated on by the machine, identically to the
// in-memory SimBackend, so transports and the recovery protocol compose
// unchanged over sockets.
package netwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/machine"
)

// Frame layout, all integers big-endian:
//
//	u32  body length (everything below; excludes these 4 bytes)
//	i32  from
//	i32  to
//	i32  tag
//	i64  seq
//	u8   kind
//	u64  check   (transport payload checksum, opaque here)
//	i64  epoch
//	u32  nwords
//	      8·nwords bytes of float64 payload (IEEE-754 bits)
//	u64  frame checksum: FNV-1a over the body bytes above it
//
// The trailing checksum covers the header too, so a torn or corrupted
// frame is detected before any field is trusted; the connection is then
// dropped (lossy-close semantics — the recovery layer, not the codec,
// resolves the loss).
const (
	frameHeaderLen  = 41 // from .. nwords
	frameTrailerLen = 8  // FNV-1a checksum
	framePrefixLen  = 4  // body length

	// MaxFrameWords bounds a frame's payload so a corrupted length prefix
	// cannot make a reader allocate gigabytes. 1<<24 words = 128 MiB of
	// payload, far above any schedule step in this repo.
	MaxFrameWords = 1 << 24
)

// errChecksum reports a frame whose FNV-1a trailer does not match.
var errChecksum = errors.New("netwire: frame checksum mismatch")

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// FrameWords returns the full framed size — prefix, header, payload and
// trailer — of an n-word packet, in 8-byte words rounded up. This is what
// a netwire run's wire meters count, so the Report's wire-vs-logical
// split measures what actually crossed the socket.
func FrameWords(n int) int64 {
	bytes := framePrefixLen + frameHeaderLen + 8*n + frameTrailerLen
	return int64((bytes + 7) / 8)
}

// AppendFrame appends pkt's complete wire frame (length prefix included)
// to dst and returns the extended slice.
func AppendFrame(dst []byte, pkt machine.Packet) []byte {
	n := len(pkt.Data)
	body := frameHeaderLen + 8*n + frameTrailerLen
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(pkt.From)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(pkt.To)))
	dst = binary.BigEndian.AppendUint32(dst, uint32(int32(pkt.Tag)))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(pkt.Seq)))
	dst = append(dst, byte(pkt.Kind))
	dst = binary.BigEndian.AppendUint64(dst, pkt.Check)
	dst = binary.BigEndian.AppendUint64(dst, uint64(pkt.Epoch))
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	for _, v := range pkt.Data {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return binary.BigEndian.AppendUint64(dst, fnv1a(dst[start:]))
}

// DecodeFrame parses one frame body (the bytes after the length prefix).
// The payload is freshly allocated — the frame never aliases the read
// buffer, because packets outlive the reader's next fill.
func DecodeFrame(body []byte) (machine.Packet, error) {
	if len(body) < frameHeaderLen+frameTrailerLen {
		return machine.Packet{}, fmt.Errorf("netwire: frame body %d bytes, need at least %d", len(body), frameHeaderLen+frameTrailerLen)
	}
	sumAt := len(body) - frameTrailerLen
	if got := binary.BigEndian.Uint64(body[sumAt:]); got != fnv1a(body[:sumAt]) {
		return machine.Packet{}, errChecksum
	}
	pkt := machine.Packet{
		From:  int(int32(binary.BigEndian.Uint32(body[0:]))),
		To:    int(int32(binary.BigEndian.Uint32(body[4:]))),
		Tag:   int(int32(binary.BigEndian.Uint32(body[8:]))),
		Seq:   int(int64(binary.BigEndian.Uint64(body[12:]))),
		Kind:  machine.PacketKind(body[20]),
		Check: binary.BigEndian.Uint64(body[21:]),
		Epoch: int64(binary.BigEndian.Uint64(body[29:])),
	}
	n := int(binary.BigEndian.Uint32(body[37:]))
	if n > MaxFrameWords {
		return machine.Packet{}, fmt.Errorf("netwire: frame declares %d payload words, cap %d", n, MaxFrameWords)
	}
	if len(body) != frameHeaderLen+8*n+frameTrailerLen {
		return machine.Packet{}, fmt.Errorf("netwire: frame body %d bytes for %d payload words", len(body), n)
	}
	if n > 0 {
		pkt.Data = make([]float64, n)
		for i := range pkt.Data {
			pkt.Data[i] = math.Float64frombits(binary.BigEndian.Uint64(body[frameHeaderLen+8*i:]))
		}
	}
	return pkt, nil
}

// ReadFrame reads one length-prefixed frame from r, reusing *scratch as
// the body buffer across calls. A short read anywhere — mid-prefix,
// mid-header, mid-payload — surfaces as an error (io.EOF only when the
// stream ends cleanly between frames).
func ReadFrame(r *bufio.Reader, scratch *[]byte) (machine.Packet, error) {
	var prefix [framePrefixLen]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return machine.Packet{}, fmt.Errorf("netwire: torn frame prefix: %w", err)
		}
		return machine.Packet{}, err
	}
	body := int(binary.BigEndian.Uint32(prefix[:]))
	if body < frameHeaderLen+frameTrailerLen || body > frameHeaderLen+8*MaxFrameWords+frameTrailerLen {
		return machine.Packet{}, fmt.Errorf("netwire: frame length %d out of bounds", body)
	}
	if cap(*scratch) < body {
		*scratch = make([]byte, body)
	}
	buf := (*scratch)[:body]
	if _, err := io.ReadFull(r, buf); err != nil {
		return machine.Packet{}, fmt.Errorf("netwire: torn frame body: %w", err)
	}
	return DecodeFrame(buf)
}
