package netwire

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/machine"
)

// Client is one rank process's backend in a distributed run: a data-plane
// node (frames on sockets, like Loopback but hosting a single rank) plus
// a persistent control connection to the Coordinator. It implements
// machine.Backend for a machine whose LocalRanks is exactly this rank;
// the wire it hands out adds the BarrierWire the distributed machine
// requires, realized as a barrier/release round-trip on the control
// plane.
type Client struct {
	network string
	rank    int
	size    int
	dir     string // unix socket directory, "" for tcp

	nd   *node
	wire *clientWire

	ctl  net.Conn
	wmu  sync.Mutex // serializes control-plane writes
	enc  *json.Encoder
	port atomic.Pointer[[]string] // adopted portmap

	rel    chan ctlMsg   // barrier releases, consumed by Barrier
	events chan CtlEvent // resume / go / abort / stop, for the rank runtime
	done   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// ClientOptions configures a rank's data plane beyond the loopback
// defaults: where to bind, what address to advertise to peers, and an
// optional socket-level fault plan.
type ClientOptions struct {
	// Bind is the local address ("host" or "host:port") the rank's data
	// listener binds; empty means 127.0.0.1 with an ephemeral port. A
	// bare host gets an ephemeral port. tcp only; ignored for unix.
	Bind string
	// Advertise is the address peers dial to reach this rank, registered
	// with the coordinator's portmap. Empty advertises the bound listener
	// address; a bare host is joined with the listener's actual port —
	// the multi-host case, where a rank binds a NIC (or wildcard) and
	// advertises the name other hosts route to. tcp only.
	Advertise string
	// FaultPlan attaches seeded socket-level chaos (see fault.Plan) to
	// every outbound data frame. An inactive plan attaches nothing.
	FaultPlan fault.Plan
}

// NewClient creates rank's data listener, dials the coordinator at
// ctlAddr, and registers with hello. network is "tcp" or "unix"; for
// "unix" the data socket lives in a fresh temporary directory.
func NewClient(network, ctlAddr string, rank, size int) (*Client, error) {
	return NewClientOpts(network, ctlAddr, rank, size, ClientOptions{})
}

// NewClientOpts is NewClient with explicit bind/advertise addresses and
// an optional fault plan.
func NewClientOpts(network, ctlAddr string, rank, size int, opt ClientOptions) (*Client, error) {
	switch network {
	case "tcp", "unix":
	default:
		return nil, fmt.Errorf("netwire: client network %q (want tcp or unix)", network)
	}
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("netwire: client rank %d of %d", rank, size)
	}
	cl := &Client{
		network: network,
		rank:    rank,
		size:    size,
		rel:     make(chan ctlMsg, 64),
		events:  make(chan CtlEvent, 64),
		done:    make(chan struct{}),
	}
	listen := listenAddr(opt.Bind)
	if network == "unix" {
		dir, err := os.MkdirTemp("", "netwire")
		if err != nil {
			return nil, err
		}
		cl.dir = dir
		listen = filepath.Join(dir, fmt.Sprintf("r%d.sock", rank))
	}
	nd, err := newNode(network, listen, rank, cl.resolve)
	if err != nil {
		if cl.dir != "" {
			os.RemoveAll(cl.dir)
		}
		return nil, err
	}
	nd.chaos = newFaultWire(opt.FaultPlan, rank)
	cl.nd = nd
	cl.wire = &clientWire{Wire: &Wire{nd: nd}, cl: cl}

	advertise := nd.addr()
	if network == "tcp" && opt.Advertise != "" {
		advertise = advertiseAddr(opt.Advertise, nd.addr())
	}

	ctl, err := net.DialTimeout(network, ctlAddr, dialTimeout)
	if err != nil {
		cl.nd.close()
		if cl.dir != "" {
			os.RemoveAll(cl.dir)
		}
		return nil, fmt.Errorf("netwire: rank %d dial coordinator %s: %w", rank, ctlAddr, err)
	}
	cl.ctl = ctl
	cl.enc = json.NewEncoder(ctl)
	if err := cl.sendCtl(ctlMsg{Type: "hello", Rank: rank, Addr: advertise}); err != nil {
		cl.Close()
		return nil, err
	}
	cl.wg.Add(1)
	go cl.readLoop()
	return cl, nil
}

// listenAddr normalizes a tcp bind spec: empty means loopback ephemeral,
// a bare host gets an ephemeral port, host:port passes through.
func listenAddr(bind string) string {
	if bind == "" {
		return "127.0.0.1:0"
	}
	if _, _, err := net.SplitHostPort(bind); err == nil {
		return bind
	}
	return net.JoinHostPort(bind, "0")
}

// advertiseAddr resolves the address registered in the portmap: a full
// host:port passes through, a bare host is joined with the port the
// listener actually bound.
func advertiseAddr(advertise, bound string) string {
	if _, _, err := net.SplitHostPort(advertise); err == nil {
		return advertise
	}
	_, port, err := net.SplitHostPort(bound)
	if err != nil {
		return advertise
	}
	return net.JoinHostPort(advertise, port)
}

// Rank returns the rank this client hosts.
func (cl *Client) Rank() int { return cl.rank }

// DataAddr returns the rank's data-plane listener address.
func (cl *Client) DataAddr() string { return cl.nd.addr() }

// Events delivers coordinator orders: resume, go, abort, stop. The channel
// is closed when the control connection dies, which a rank process treats
// as an order to exit (an orphaned rank must not outlive its supervisor).
func (cl *Client) Events() <-chan CtlEvent { return cl.events }

func (cl *Client) resolve(peer int) (string, bool) {
	addrs := cl.port.Load()
	if addrs == nil || peer < 0 || peer >= len(*addrs) {
		return "", false
	}
	a := (*addrs)[peer]
	return a, a != ""
}

// Adopt installs a portmap (normally done automatically when a resume
// arrives). Peers whose address changed are redialed lazily on next send.
func (cl *Client) Adopt(addrs []string) {
	own := append([]string(nil), addrs...)
	cl.port.Store(&own)
}

func (cl *Client) sendCtl(m ctlMsg) error {
	cl.wmu.Lock()
	defer cl.wmu.Unlock()
	return cl.enc.Encode(m)
}

// Ready reports restored state for the epoch (reply to resume).
func (cl *Client) Ready(epoch int64) error {
	return cl.sendCtl(ctlMsg{Type: "ready", Rank: cl.rank, Epoch: epoch})
}

// Quiesced reports the rank parked after an epoch abort.
func (cl *Client) Quiesced(epoch int64) error {
	return cl.sendCtl(ctlMsg{Type: "quiesced", Rank: cl.rank, Epoch: epoch})
}

// Ckpt reports a durably committed checkpoint at iter.
func (cl *Client) Ckpt(iter int) error {
	return cl.sendCtl(ctlMsg{Type: "ckpt", Rank: cl.rank, Iter: iter})
}

// Result ships the rank's final outcome and owned iterate words.
func (cl *Client) Result(lambdaBits uint64, iterations int, converged, singular bool, chunkBits []uint64) error {
	return cl.sendCtl(ctlMsg{
		Type: "result", Rank: cl.rank,
		LambdaBits: lambdaBits, Iterations: iterations,
		Converged: converged, Singular: singular, ChunkBits: chunkBits,
	})
}

// readLoop demultiplexes the control stream: releases feed the barrier,
// everything else feeds the events channel.
func (cl *Client) readLoop() {
	defer cl.wg.Done()
	defer close(cl.events)
	dec := json.NewDecoder(cl.ctl)
	for {
		var m ctlMsg
		if err := dec.Decode(&m); err != nil {
			return
		}
		switch m.Type {
		case "release":
			// The buffer can fill with stale releases from epochs aborted
			// after this rank arrived at their barriers. Evict the OLDEST
			// entry when full — never the incoming message — so the release
			// for the current epoch is the one guaranteed to survive;
			// Barrier itself skips entries of non-matching epochs. The loop
			// terminates because readLoop is the only producer.
			for {
				select {
				case cl.rel <- m:
				default:
					select {
					case <-cl.rel:
					default:
					}
					continue
				}
				break
			}
		case "resume":
			cl.Adopt(m.Addrs)
			cl.deliver(eventOf(m))
		case "go", "abort", "stop":
			cl.deliver(eventOf(m))
		}
	}
}

func (cl *Client) deliver(ev CtlEvent) {
	select {
	case cl.events <- ev:
	case <-cl.done:
	}
}

// NewWire returns this rank's endpoint (machine.Backend). The same wire
// is valid across machine incarnations. Nothing is drained here: a peer
// whose machine starts first may already have delivered current-epoch
// packets, and the epoch fence above drops stale ones lazily on Pull.
func (cl *Client) NewWire(rank, size int) (machine.BackendWire, error) {
	if rank != cl.rank {
		return nil, fmt.Errorf("netwire: client hosts rank %d, wire requested for %d", cl.rank, rank)
	}
	if size != cl.size {
		return nil, fmt.Errorf("netwire: client sized for %d ranks, wire requested for machine of %d", cl.size, size)
	}
	return cl.wire, nil
}

// Close shuts the data node, the control connection, and the unix socket
// directory. Safe to call more than once.
func (cl *Client) Close() error {
	cl.once.Do(func() {
		close(cl.done)
		cl.ctl.Close()
		cl.nd.close()
		if cl.dir != "" {
			os.RemoveAll(cl.dir)
		}
		cl.wg.Wait()
	})
	return nil
}

// clientWire is the rank's BackendWire plus the control-plane barrier the
// distributed machine requires.
type clientWire struct {
	*Wire
	cl *Client
}

// Barrier arrives at the coordinator and blocks for the matching release.
// A close of the abort channel, a dead control connection, or a client
// close wakes it with ok == false; releases of other (aborted) epochs are
// skipped.
func (w *clientWire) Barrier(epoch int64, abort <-chan struct{}) (int, bool) {
	if err := w.cl.sendCtl(ctlMsg{Type: "barrier", Rank: w.cl.rank, Epoch: epoch}); err != nil {
		return 0, false
	}
	for {
		select {
		case m := <-w.cl.rel:
			if m.Epoch == epoch {
				return m.Gen, true
			}
		case <-abort:
			return 0, false
		case <-w.cl.done:
			return 0, false
		}
	}
}
