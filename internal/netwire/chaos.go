package netwire

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
)

// faultWire is the socket-level realization of a fault.Plan: it perturbs
// the framed bytes a node writes, below the codec and below the reliable
// transport, so retransmissions and acks cross a genuinely hostile wire.
// One faultWire decorates one node (one rank); its PRNG is seeded with
// the same per-rank formula as the simulated injector
// (plan.Seed ^ (0x9e3779b97f4a7c * (rank+1))), so the same plan seeds
// drive both the sim and the socket grids and the two runs are
// comparable.
//
// The fault vocabulary maps onto frames as follows:
//
//	drop     the frame is never written
//	dup      the frame is written twice
//	reorder  the frame is held and flushed after the next outbound frame
//	corrupt  one byte of the frame body is flipped; the receiver's FNV-1a
//	         trailer check fails and the whole connection is dropped
//	         (lossy-close semantics — heavier than the sim's single-packet
//	         corruption, and deliberately so)
//	stall    the sending rank sleeps StallDelay before the write
//	reset    half the frame is written, then the connection is torn down;
//	         the receiver sees a torn frame and drops the stream
//	crash    the rank panics with machine.CrashError at its Nth send
//
// Every class except stall destroys or delays delivery, so a chaos-wired
// run needs the reliable transport above it, exactly as in the simulator.
type faultWire struct {
	plan fault.Plan

	mu     sync.Mutex
	rng    *rand.Rand
	ops    int // send calls so far (crash clock)
	faults int // injected faults so far (MaxFaults budget)
	held   *heldFrame
}

// heldFrame is one reordered frame waiting for the next send.
type heldFrame struct {
	to    int
	frame []byte
	pkt   machine.Packet // for drop reporting if the flush write fails
}

// frameAction is one decided write: a destination, the bytes, and whether
// the write should be torn mid-frame with the connection closed after it.
type frameAction struct {
	to    int
	frame []byte
	reset bool
	pkt   machine.Packet
}

// newFaultWire returns the chaos state for one rank's node, or nil when
// the plan injects nothing.
func newFaultWire(plan fault.Plan, rank int) *faultWire {
	if !plan.Active() {
		return nil
	}
	return &faultWire{
		plan: plan,
		rng:  rand.New(rand.NewSource(plan.Seed ^ (0x9e3779b97f4a7c * int64(rank+1)))),
	}
}

// send perturbs and writes one outbound packet for nd. It mirrors the
// simulated injector's structure: every probability is drawn up front so
// the random stream advances identically regardless of which faults fire,
// the crash clock counts send calls, and MaxFaults caps the budget.
func (fw *faultWire) send(nd *node, to int, pkt machine.Packet) error {
	actions, crash := fw.decide(nd, to, pkt)
	if crash != nil {
		panic(*crash)
	}
	var firstErr error
	for _, a := range actions {
		err := nd.writeFrame(a.to, a.frame, a.reset)
		if a.reset {
			// The torn write is the fault, not a wire failure: the frame is
			// gone by design, which the drop hook records.
			nd.reportDrop(a.pkt, "reset")
			continue
		}
		if err != nil {
			nd.reportDrop(a.pkt, err.Error())
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// decide draws this send's fault decisions and returns the writes to
// perform. It holds fw.mu for the PRNG and the held-frame slot; the stall
// sleep happens under the lock, which only serializes this rank's own
// sends — the same semantics as the simulated injector sleeping on the
// sending goroutine.
func (fw *faultWire) decide(nd *node, to int, pkt machine.Packet) ([]frameAction, *machine.CrashError) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.ops++
	// The crash clock passes each op index exactly once, so == fires the
	// crash exactly once: a restarted rank reuses this node and continues
	// the count past the crash point instead of re-dying on every send.
	if at, ok := fw.plan.Crash[nd.rank]; ok && fw.ops == at {
		return nil, &machine.CrashError{Rank: nd.rank, Op: fw.ops}
	}
	rDrop := fw.rng.Float64()
	rDup := fw.rng.Float64()
	rReorder := fw.rng.Float64()
	rCorrupt := fw.rng.Float64()
	rStall := fw.rng.Float64()
	rReset := fw.rng.Float64()

	if rStall < fw.plan.Stall && fw.budget() {
		d := fw.plan.StallDelay
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	}

	var out []frameAction
	switch {
	case rDrop < fw.plan.Drop && fw.budget():
		nd.reportDrop(pkt, "chaos drop")
	case rReset < fw.plan.Reset && fw.budget():
		out = append(out, frameAction{to: to, frame: AppendFrame(nil, pkt), reset: true, pkt: pkt})
	default:
		frame := AppendFrame(nil, pkt)
		if rCorrupt < fw.plan.Corrupt && pkt.Kind == machine.PacketData && len(pkt.Data) > 0 && fw.budget() {
			// Flip one payload byte without fixing the trailer: the
			// receiver's checksum fails and the connection is dropped.
			idx := framePrefixLen + frameHeaderLen + fw.ops%(8*len(pkt.Data))
			frame[idx] ^= 0x81
		}
		out = append(out, frameAction{to: to, frame: frame, pkt: pkt})
		if rDup < fw.plan.Dup && fw.budget() {
			out = append(out, frameAction{to: to, frame: append([]byte(nil), frame...), pkt: pkt})
		}
	}
	if fw.held != nil {
		// Flush the held frame after the current one: the swap is the
		// reordering, and flushing on every send bounds the delay.
		out = append(out, frameAction{to: fw.held.to, frame: fw.held.frame, pkt: fw.held.pkt})
		fw.held = nil
	} else if len(out) == 1 && !out[0].reset && rReorder < fw.plan.Reorder && fw.budget() {
		fw.held = &heldFrame{to: out[0].to, frame: out[0].frame, pkt: out[0].pkt}
		out = nil
	}
	return out, nil
}

// budget consumes one fault from the per-rank allowance.
func (fw *faultWire) budget() bool {
	if fw.plan.MaxFaults > 0 && fw.faults >= fw.plan.MaxFaults {
		return false
	}
	fw.faults++
	return true
}
