package netwire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
)

// dialTimeout bounds a lazy dial; a peer that cannot be reached within it
// is treated as down and the packet is dropped (lossy-close semantics).
const dialTimeout = 5 * time.Second

var errNodeClosed = errors.New("netwire: node closed")

// resolver maps a peer rank to its current socket address. A static map
// for Loopback; the live portmap for a distributed Client, so a respawned
// rank's new address takes effect on the next dial.
type resolver func(peer int) (string, bool)

// node is one rank's socket endpoint: a listener whose inbound
// connections decode frames into the rank's packet queue, plus a cache of
// lazily dialed persistent outbound connections, one per peer.
type node struct {
	network string // "tcp" or "unix"
	rank    int
	ln      net.Listener
	resolve resolver
	inbox   atomic.Pointer[machine.PacketQueue] // swappable for ResetRank

	mu       sync.Mutex
	conns    map[int]*peerConn
	accepted map[net.Conn]struct{}
	closed   bool
	done     chan struct{}
	wg       sync.WaitGroup
}

// peerConn is one persistent outbound connection. Writes are serialized
// under mu; buf holds the frame being assembled so steady-state sends
// stop allocating once it reaches the high-water frame size.
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	addr string
	buf  []byte
}

// newNode listens on addr and starts the accept loop.
func newNode(network, addr string, rank int, resolve resolver) (*node, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("netwire: rank %d listen %s %s: %w", rank, network, addr, err)
	}
	nd := &node{
		network:  network,
		rank:     rank,
		ln:       ln,
		resolve:  resolve,
		conns:    make(map[int]*peerConn),
		accepted: make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	nd.inbox.Store(machine.NewPacketQueue(0))
	nd.wg.Add(1)
	go nd.acceptLoop()
	return nd, nil
}

func (nd *node) addr() string { return nd.ln.Addr().String() }

func (nd *node) acceptLoop() {
	defer nd.wg.Done()
	for {
		c, err := nd.ln.Accept()
		if err != nil {
			return // listener closed
		}
		nd.mu.Lock()
		if nd.closed {
			nd.mu.Unlock()
			c.Close()
			return
		}
		nd.accepted[c] = struct{}{}
		nd.wg.Add(1)
		nd.mu.Unlock()
		go nd.readLoop(c)
	}
}

// readLoop decodes frames off one inbound connection into the inbox. Any
// framing error — torn frame, checksum mismatch, reset — drops the whole
// connection: the stream past a corrupt length prefix is garbage, and a
// reliable transport (or the recovery supervisor) owns re-delivery.
func (nd *node) readLoop(c net.Conn) {
	defer nd.wg.Done()
	defer func() {
		nd.mu.Lock()
		delete(nd.accepted, c)
		nd.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	var scratch []byte
	for {
		pkt, err := ReadFrame(br, &scratch)
		if err != nil {
			return
		}
		select {
		case <-nd.done:
			return
		default:
		}
		nd.inbox.Load().Push(pkt)
	}
}

// send frames pkt onto the persistent connection to rank to, dialing it
// first if needed. The caller treats any error as a silent drop.
func (nd *node) send(to int, pkt machine.Packet) error {
	pc, err := nd.conn(to)
	if err != nil {
		return err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.buf = AppendFrame(pc.buf[:0], pkt)
	if _, err := pc.conn.Write(pc.buf); err != nil {
		nd.invalidate(to, pc)
		return err
	}
	return nil
}

// conn returns the cached connection to rank to, redialing when the cache
// is empty or the peer's address changed (its process was respawned).
func (nd *node) conn(to int) (*peerConn, error) {
	addr, ok := nd.resolve(to)
	if !ok {
		return nil, fmt.Errorf("netwire: no address for rank %d", to)
	}
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return nil, errNodeClosed
	}
	if pc := nd.conns[to]; pc != nil && pc.addr == addr {
		nd.mu.Unlock()
		return pc, nil
	}
	nd.mu.Unlock()

	c, err := net.DialTimeout(nd.network, addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency over batching: frames are whole writes
	}
	pc := &peerConn{conn: c, addr: addr}

	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		c.Close()
		return nil, errNodeClosed
	}
	if cur := nd.conns[to]; cur != nil {
		if cur.addr == addr {
			// A concurrent sender won the dial race; use its connection.
			nd.mu.Unlock()
			c.Close()
			return cur, nil
		}
		cur.conn.Close() // stale address: the peer moved
	}
	nd.conns[to] = pc
	nd.mu.Unlock()
	return pc, nil
}

// invalidate evicts a failed connection so the next send redials.
func (nd *node) invalidate(to int, pc *peerConn) {
	nd.mu.Lock()
	if nd.conns[to] == pc {
		delete(nd.conns, to)
	}
	nd.mu.Unlock()
	pc.conn.Close()
}

// resetInbox swaps in a fresh packet queue (rank restart); packets already
// decoded into the old queue are dropped with it.
func (nd *node) resetInbox() {
	old := nd.inbox.Swap(machine.NewPacketQueue(0))
	old.Drain()
}

// close shuts the listener, every connection in both directions, and
// waits for the reader goroutines to exit.
func (nd *node) close() {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return
	}
	nd.closed = true
	conns := nd.conns
	nd.conns = map[int]*peerConn{}
	accepted := make([]net.Conn, 0, len(nd.accepted))
	for c := range nd.accepted {
		accepted = append(accepted, c)
	}
	nd.mu.Unlock()
	close(nd.done)
	nd.ln.Close()
	for _, pc := range conns {
		pc.conn.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
	nd.wg.Wait()
}

// Wire is one rank's raw socket endpoint (machine.BackendWire). Its wire
// meters price packets at their framed size via PacketCost.
type Wire struct {
	nd *node
}

// Deliver frames pkt toward pkt.To. A send the network refuses — peer
// dead, address unknown, connection reset — is dropped silently: the
// socket layer is a lossy wire, and loss is resolved above it.
func (w *Wire) Deliver(pkt machine.Packet) {
	if pkt.To == w.nd.rank {
		w.nd.inbox.Load().Push(pkt)
		return
	}
	if err := w.nd.send(pkt.To, pkt); err != nil && debugDrops {
		fmt.Fprintf(os.Stderr, "netwire: rank %d -> %d tag %d: %v\n", w.nd.rank, pkt.To, pkt.Tag, err)
	}
}

// debugDrops surfaces silently dropped sends on stdout (debugging only).
var debugDrops = os.Getenv("NETWIRE_DEBUG") != ""

// Pull blocks for the next inbound packet; a closed abort channel wakes
// it with ok == false.
func (w *Wire) Pull(abort <-chan struct{}) (machine.Packet, bool) {
	return w.nd.inbox.Load().Pull(abort)
}

// PullTimeout is Pull with a deadline.
func (w *Wire) PullTimeout(d time.Duration) (machine.Packet, bool) {
	return w.nd.inbox.Load().PullTimeout(d)
}

// Depth reports the decoded-but-unpulled packet count.
func (w *Wire) Depth() int { return w.nd.inbox.Load().Depth() }

// Drain discards every decoded-but-unpulled packet.
func (w *Wire) Drain() { w.nd.inbox.Load().Drain() }

// PacketCost prices pkt at its framed size in 8-byte words
// (machine.PacketCoster), so wire meters count what crossed the socket.
func (w *Wire) PacketCost(pkt machine.Packet) int64 { return FrameWords(len(pkt.Data)) }
