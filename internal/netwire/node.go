package netwire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
)

// dialTimeout bounds a lazy dial; a peer that cannot be reached within it
// is treated as down and the packet is dropped (lossy-close semantics).
const dialTimeout = 5 * time.Second

// Failed dials are cached so a dead peer costs one dial timeout, not one
// per send: while the cache entry is live every send to that peer fails
// immediately, and the retry interval doubles from dialRetryMin up to
// dialRetryMax. The entry is keyed by the resolved address, so a
// respawned peer (new address in the portmap) is dialed right away.
const (
	dialRetryMin = 50 * time.Millisecond
	dialRetryMax = time.Second
)

var errNodeClosed = errors.New("netwire: node closed")

// resolver maps a peer rank to its current socket address. A static map
// for Loopback; the live portmap for a distributed Client, so a respawned
// rank's new address takes effect on the next dial.
type resolver func(peer int) (string, bool)

// dialer dials one peer connection; injectable so tests can model dead or
// slow peers without real unroutable addresses.
type dialer func(network, addr string, timeout time.Duration) (net.Conn, error)

// node is one rank's socket endpoint: a listener whose inbound
// connections decode frames into the rank's packet queue, plus a cache of
// lazily dialed persistent outbound connections, one per peer.
type node struct {
	network string // "tcp" or "unix"
	rank    int
	ln      net.Listener
	resolve resolver
	dial    dialer
	chaos   *faultWire                          // nil: faithful writes
	inbox   atomic.Pointer[machine.PacketQueue] // swappable for ResetRank
	onDrop  atomic.Pointer[func(machine.Packet, string)]

	mu       sync.Mutex
	conns    map[int]*peerConn
	down     map[int]*dialFailure
	accepted map[net.Conn]struct{}
	closed   bool
	done     chan struct{}
	wg       sync.WaitGroup
}

// peerConn is one persistent outbound connection. Writes are serialized
// under mu; buf holds the frame being assembled so steady-state sends
// stop allocating once it reaches the high-water frame size.
type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	addr string
	buf  []byte
}

// dialFailure is the negative dial cache entry for one peer.
type dialFailure struct {
	addr    string        // resolved address the dial failed against
	until   time.Time     // no redial before this
	backoff time.Duration // next entry's TTL (doubles up to dialRetryMax)
	err     error         // the dial error, replayed to fast-failed sends
}

// newNode listens on addr and starts the accept loop.
func newNode(network, addr string, rank int, resolve resolver) (*node, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("netwire: rank %d listen %s %s: %w", rank, network, addr, err)
	}
	nd := &node{
		network:  network,
		rank:     rank,
		ln:       ln,
		resolve:  resolve,
		dial:     net.DialTimeout,
		conns:    make(map[int]*peerConn),
		down:     make(map[int]*dialFailure),
		accepted: make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
	}
	nd.inbox.Store(machine.NewPacketQueue(0))
	nd.wg.Add(1)
	go nd.acceptLoop()
	return nd, nil
}

func (nd *node) addr() string { return nd.ln.Addr().String() }

// reportDrop surfaces a packet the socket layer lost — dial failure,
// write error, injected fault — to the registered hook (the machine's
// wire-event stream) and, under NETWIRE_DEBUG, to stderr.
func (nd *node) reportDrop(pkt machine.Packet, reason string) {
	if fn := nd.onDrop.Load(); fn != nil {
		(*fn)(pkt, reason)
	}
	if debugDrops {
		fmt.Fprintf(os.Stderr, "netwire: rank %d -> %d tag %d dropped: %s\n", nd.rank, pkt.To, pkt.Tag, reason)
	}
}

func (nd *node) acceptLoop() {
	defer nd.wg.Done()
	for {
		c, err := nd.ln.Accept()
		if err != nil {
			return // listener closed
		}
		nd.mu.Lock()
		if nd.closed {
			nd.mu.Unlock()
			c.Close()
			return
		}
		nd.accepted[c] = struct{}{}
		nd.wg.Add(1)
		nd.mu.Unlock()
		go nd.readLoop(c)
	}
}

// readLoop decodes frames off one inbound connection into the inbox. Any
// framing error — torn frame, checksum mismatch, reset — drops the whole
// connection: the stream past a corrupt length prefix is garbage, and a
// reliable transport (or the recovery supervisor) owns re-delivery.
func (nd *node) readLoop(c net.Conn) {
	defer nd.wg.Done()
	defer func() {
		nd.mu.Lock()
		delete(nd.accepted, c)
		nd.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReaderSize(c, 64<<10)
	var scratch []byte
	for {
		pkt, err := ReadFrame(br, &scratch)
		if err != nil {
			return
		}
		select {
		case <-nd.done:
			return
		default:
		}
		nd.inbox.Load().Push(pkt)
	}
}

// send frames pkt onto the persistent connection to rank to, dialing it
// first if needed. The caller treats any error as a silent drop. With a
// chaos plan attached the write is routed through the fault layer, which
// may drop, duplicate, reorder, corrupt or tear it.
func (nd *node) send(to int, pkt machine.Packet) error {
	if nd.chaos != nil {
		return nd.chaos.send(nd, to, pkt)
	}
	pc, err := nd.conn(to)
	if err != nil {
		return err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.buf = AppendFrame(pc.buf[:0], pkt)
	if _, err := pc.conn.Write(pc.buf); err != nil {
		nd.invalidate(to, pc)
		return err
	}
	return nil
}

// writeFrame writes pre-framed bytes to rank to. With reset set, only the
// first half of the frame is written and the connection is torn down —
// the receiver sees a torn frame and drops the stream (the chaos layer's
// connection-reset fault).
func (nd *node) writeFrame(to int, frame []byte, reset bool) error {
	pc, err := nd.conn(to)
	if err != nil {
		return err
	}
	pc.mu.Lock()
	if reset {
		pc.conn.Write(frame[:len(frame)/2])
		pc.mu.Unlock()
		nd.invalidate(to, pc)
		return nil
	}
	_, werr := pc.conn.Write(frame)
	pc.mu.Unlock()
	if werr != nil {
		nd.invalidate(to, pc)
		return werr
	}
	return nil
}

// conn returns the cached connection to rank to, redialing when the cache
// is empty or the peer's address changed (its process was respawned). A
// recent dial failure for the same address fails fast instead of paying
// another synchronous dial timeout.
func (nd *node) conn(to int) (*peerConn, error) {
	addr, ok := nd.resolve(to)
	if !ok {
		return nil, fmt.Errorf("netwire: no address for rank %d", to)
	}
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return nil, errNodeClosed
	}
	if pc := nd.conns[to]; pc != nil && pc.addr == addr {
		nd.mu.Unlock()
		return pc, nil
	}
	if df := nd.down[to]; df != nil && df.addr == addr && time.Now().Before(df.until) {
		nd.mu.Unlock()
		return nil, fmt.Errorf("netwire: rank %d down (dial backoff): %w", to, df.err)
	}
	nd.mu.Unlock()

	c, err := nd.dial(nd.network, addr, dialTimeout)
	if err != nil {
		nd.mu.Lock()
		df := nd.down[to]
		if df == nil || df.addr != addr {
			df = &dialFailure{addr: addr, backoff: dialRetryMin}
			nd.down[to] = df
		} else if df.backoff < dialRetryMax {
			df.backoff *= 2
			if df.backoff > dialRetryMax {
				df.backoff = dialRetryMax
			}
		}
		df.err = err
		df.until = time.Now().Add(df.backoff)
		nd.mu.Unlock()
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // latency over batching: frames are whole writes
	}
	pc := &peerConn{conn: c, addr: addr}

	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		c.Close()
		return nil, errNodeClosed
	}
	delete(nd.down, to) // the peer answered; drop any failure entry
	if cur := nd.conns[to]; cur != nil {
		if cur.addr == addr {
			// A concurrent sender won the dial race; use its connection.
			nd.mu.Unlock()
			c.Close()
			return cur, nil
		}
		cur.conn.Close() // stale address: the peer moved
	}
	nd.conns[to] = pc
	nd.mu.Unlock()
	return pc, nil
}

// invalidate evicts a failed connection so the next send redials.
func (nd *node) invalidate(to int, pc *peerConn) {
	nd.mu.Lock()
	if nd.conns[to] == pc {
		delete(nd.conns, to)
	}
	nd.mu.Unlock()
	pc.conn.Close()
}

// resetInbox swaps in a fresh packet queue (rank restart); packets already
// decoded into the old queue are dropped with it.
func (nd *node) resetInbox() {
	old := nd.inbox.Swap(machine.NewPacketQueue(0))
	old.Drain()
}

// close shuts the listener, every connection in both directions, and
// waits for the reader goroutines to exit.
func (nd *node) close() {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return
	}
	nd.closed = true
	conns := nd.conns
	nd.conns = map[int]*peerConn{}
	accepted := make([]net.Conn, 0, len(nd.accepted))
	for c := range nd.accepted {
		accepted = append(accepted, c)
	}
	nd.mu.Unlock()
	close(nd.done)
	nd.ln.Close()
	for _, pc := range conns {
		pc.conn.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
	nd.wg.Wait()
}

// Wire is one rank's raw socket endpoint (machine.BackendWire). Its wire
// meters price packets at their framed size via PacketCost.
type Wire struct {
	nd *node
}

// Deliver frames pkt toward pkt.To. A send the network refuses — peer
// dead, address unknown, connection reset — is dropped silently: the
// socket layer is a lossy wire, and loss is resolved above it.
func (w *Wire) Deliver(pkt machine.Packet) {
	if pkt.To == w.nd.rank {
		// A socket-crossing packet gets a freshly allocated payload in
		// DecodeFrame; a self-delivered one must match, or it would alias
		// the sender's buffer — which payload pooling may hand back to the
		// sender and mutate while the packet still sits in the inbox.
		if len(pkt.Data) > 0 {
			pkt.Data = append([]float64(nil), pkt.Data...)
		}
		w.nd.inbox.Load().Push(pkt)
		return
	}
	if err := w.nd.send(pkt.To, pkt); err != nil {
		w.nd.reportDrop(pkt, err.Error())
	}
}

// debugDrops surfaces silently dropped sends on stderr (debugging only);
// the structured path is OnDrop, which the machine wires into its event
// stream.
var debugDrops = os.Getenv("NETWIRE_DEBUG") != ""

// OnDrop registers fn to be called for every packet the socket layer
// loses, with a short reason (machine.DropReporter).
func (w *Wire) OnDrop(fn func(pkt machine.Packet, reason string)) {
	if fn == nil {
		w.nd.onDrop.Store(nil)
		return
	}
	w.nd.onDrop.Store(&fn)
}

// Pull blocks for the next inbound packet; a closed abort channel wakes
// it with ok == false.
func (w *Wire) Pull(abort <-chan struct{}) (machine.Packet, bool) {
	return w.nd.inbox.Load().Pull(abort)
}

// PullTimeout is Pull with a deadline.
func (w *Wire) PullTimeout(d time.Duration) (machine.Packet, bool) {
	return w.nd.inbox.Load().PullTimeout(d)
}

// Depth reports the decoded-but-unpulled packet count.
func (w *Wire) Depth() int { return w.nd.inbox.Load().Depth() }

// Drain discards every decoded-but-unpulled packet.
func (w *Wire) Drain() { w.nd.inbox.Load().Drain() }

// PacketCost prices pkt at its framed size in 8-byte words
// (machine.PacketCoster), so wire meters count what crossed the socket.
func (w *Wire) PacketCost(pkt machine.Packet) int64 { return FrameWords(len(pkt.Data)) }
