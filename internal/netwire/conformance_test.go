package netwire_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/netwire"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// loopbacks under test, alongside the nil (SimBackend) reference.
var networks = []string{"tcp", "unix"}

func newLoopback(t *testing.T, network string) *netwire.Loopback {
	t.Helper()
	be, err := netwire.NewLoopback(network)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { be.Close() })
	return be
}

// TestLoopbackMachineConformance runs a deterministic exchange body over
// the sim backend and both socket loopbacks: results and logical meters
// must agree exactly; socket wire meters must price frames, not payloads.
func TestLoopbackMachineConformance(t *testing.T) {
	const p = 4
	body := func(c *machine.Comm) {
		me := c.Rank()
		for round := 0; round < 3; round++ {
			peer := me ^ (round + 1) // perfect matchings for p = 4
			data := make([]float64, 5+me)
			for i := range data {
				data[i] = float64(me*100 + round*10 + i)
			}
			if me < peer {
				c.Send(peer, round, data)
				got := c.Recv(peer, round)
				if len(got) != 5+peer {
					t.Errorf("rank %d round %d: got %d words", me, round, len(got))
				}
			} else {
				got := c.Recv(peer, round)
				if len(got) != 5+peer {
					t.Errorf("rank %d round %d: got %d words", me, round, len(got))
				}
				c.Send(peer, round, data)
			}
			c.Barrier()
		}
	}
	ref, err := machine.RunWith(p, machine.RunConfig{Timeout: 30 * time.Second}, body)
	if err != nil {
		t.Fatal(err)
	}
	for _, network := range networks {
		be := newLoopback(t, network)
		rep, err := machine.RunWith(p, machine.RunConfig{Timeout: 30 * time.Second, Backend: be}, body)
		if err != nil {
			t.Fatalf("%s: %v", network, err)
		}
		for r := 0; r < p; r++ {
			if rep.SentWords[r] != ref.SentWords[r] || rep.RecvWords[r] != ref.RecvWords[r] ||
				rep.SentMsgs[r] != ref.SentMsgs[r] || rep.RecvMsgs[r] != ref.RecvMsgs[r] {
				t.Errorf("%s rank %d: logical meters (%d,%d,%d,%d) != sim (%d,%d,%d,%d)", network, r,
					rep.SentWords[r], rep.RecvWords[r], rep.SentMsgs[r], rep.RecvMsgs[r],
					ref.SentWords[r], ref.RecvWords[r], ref.SentMsgs[r], ref.RecvMsgs[r])
			}
			// Wire meters price the frame: each message adds exactly the
			// framing overhead over its payload words.
			wantWire := rep.SentWords[r] + netwire.FrameWords(0)*rep.WireSentMsgs[r]
			if rep.WireSentWords[r] != wantWire {
				t.Errorf("%s rank %d: wire sent %d words, want %d (framed)", network, r, rep.WireSentWords[r], wantWire)
			}
		}
	}
}

func sphericalPart(t testing.TB, q int) *partition.Tetrahedral {
	t.Helper()
	part, err := partition.NewSpherical(q)
	if err != nil {
		t.Fatal(err)
	}
	return part
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// runApply applies x once through a parallel session over the given
// backend (nil = sim) and returns the result.
func runApply(t *testing.T, a *tensor.Symmetric, x []float64, part *partition.Tetrahedral, b int, be machine.Backend) *parallel.Result {
	t.Helper()
	opts := parallel.Options{
		Part:    part,
		B:       b,
		Wiring:  parallel.WiringP2P,
		Machine: machine.RunConfig{Timeout: 60 * time.Second, Backend: be},
	}
	res, err := parallel.Run(a, x, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestLoopbackParallelConformance is the acceptance gate: Algorithm 5
// applications at q∈{2,3} over the TCP (and unix) loopback produce
// bit-identical Y and identical logical per-phase meters to the sim
// backend.
func TestLoopbackParallelConformance(t *testing.T) {
	for _, q := range []int{2, 3} {
		part := sphericalPart(t, q)
		b := q * (q + 1)
		n := part.M * b
		rng := rand.New(rand.NewSource(int64(90 + q)))
		a := tensor.Random(n, rng)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ref := runApply(t, a, x, part, b, nil)
		for _, network := range networks {
			res := runApply(t, a, x, part, b, newLoopback(t, network))
			if !bitsEqual(res.Y, ref.Y) {
				t.Errorf("q=%d %s: Y differs from sim", q, network)
			}
			if len(res.Phases) != len(ref.Phases) {
				t.Fatalf("q=%d %s: %d phases, sim %d", q, network, len(res.Phases), len(ref.Phases))
			}
			for i := range ref.Phases {
				rp, sp := res.Phases[i], ref.Phases[i]
				if rp.Label != sp.Label {
					t.Fatalf("q=%d %s: phase %d label %q != %q", q, network, i, rp.Label, sp.Label)
				}
				for r := 0; r < part.P; r++ {
					if rp.SentWords[r] != sp.SentWords[r] || rp.RecvWords[r] != sp.RecvWords[r] ||
						rp.SentMsgs[r] != sp.SentMsgs[r] || rp.RecvMsgs[r] != sp.RecvMsgs[r] {
						t.Errorf("q=%d %s phase %q rank %d: logical meters differ", q, network, rp.Label, r)
					}
				}
			}
		}
	}
}

// TestLoopbackPowerMethodConformance: a full power method (the workload
// the kill-9 suite recovers) is bit-identical over TCP at q=2.
func TestLoopbackPowerMethodConformance(t *testing.T) {
	part := sphericalPart(t, 2)
	b := 6
	n := part.M * b
	rng := rand.New(rand.NewSource(97))
	a := tensor.Random(n, rng)
	open := func(be machine.Backend) (*parallel.Session, error) {
		return parallel.OpenSession(a, parallel.Options{
			Part:    part,
			B:       b,
			Wiring:  parallel.WiringP2P,
			Machine: machine.RunConfig{Timeout: 60 * time.Second, Backend: be},
		})
	}
	sref, err := open(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sref.Close()
	ref, err := sref.PowerMethod(parallel.PowerOptions{MaxIter: 12, Tol: 1e-10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	snet, err := open(newLoopback(t, "tcp"))
	if err != nil {
		t.Fatal(err)
	}
	defer snet.Close()
	got, err := snet.PowerMethod(parallel.PowerOptions{MaxIter: 12, Tol: 1e-10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Lambda) != math.Float64bits(ref.Lambda) || got.Iterations != ref.Iterations {
		t.Errorf("tcp power method: λ=%v iters=%d, sim λ=%v iters=%d", got.Lambda, got.Iterations, ref.Lambda, ref.Iterations)
	}
	if !bitsEqual(got.X, ref.X) {
		t.Error("tcp power method: eigenvector differs from sim")
	}
}
