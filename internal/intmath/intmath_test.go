package intmath

import (
	"testing"
	"testing/quick"
)

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {4, 2, 6}, {5, 3, 10},
		{10, 4, 210}, {10, 10, 1}, {10, 11, 0}, {52, 5, 2598960},
		{30, 15, 155117520},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 2; n <= 40; n++ {
		for k := 1; k < n; k++ {
			if Binomial(n, k) != Binomial(n-1, k-1)+Binomial(n-1, k) {
				t.Fatalf("Pascal identity fails at n=%d k=%d", n, k)
			}
		}
	}
}

func TestBinomialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Binomial(-1, 2) did not panic")
		}
	}()
	Binomial(-1, 2)
}

func TestSimplexNumbers(t *testing.T) {
	for n := 0; n <= 100; n++ {
		if got, want := Triangular(n), Binomial(n+1, 2); got != want {
			t.Errorf("Triangular(%d) = %d, want %d", n, got, want)
		}
		if got, want := Tetrahedral(n), Binomial(n+2, 3); got != want {
			t.Errorf("Tetrahedral(%d) = %d, want %d", n, got, want)
		}
		if got, want := StrictTetrahedral(n), Binomial(n, 3); got != want {
			t.Errorf("StrictTetrahedral(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTetrahedralCountsLatticePoints(t *testing.T) {
	for n := 0; n <= 20; n++ {
		count, strict := 0, 0
		for i := 1; i <= n; i++ {
			for j := 1; j <= i; j++ {
				for k := 1; k <= j; k++ {
					count++
					if i > j && j > k {
						strict++
					}
				}
			}
		}
		if got := Tetrahedral(n); got != count {
			t.Errorf("Tetrahedral(%d) = %d, enumeration says %d", n, got, count)
		}
		if got := StrictTetrahedral(n); got != strict {
			t.Errorf("StrictTetrahedral(%d) = %d, enumeration says %d", n, got, strict)
		}
	}
}

func TestCeilDivAndRoundUp(t *testing.T) {
	cases := []struct{ a, b, ceil, round int }{
		{0, 1, 0, 0}, {1, 1, 1, 1}, {5, 2, 3, 6}, {6, 2, 3, 6},
		{7, 3, 3, 9}, {9, 3, 3, 9}, {10, 10, 1, 10}, {11, 10, 2, 20},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
		if got := RoundUp(c.a, c.b); got != c.round {
			t.Errorf("RoundUp(%d,%d) = %d, want %d", c.a, c.b, got, c.round)
		}
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{
		2: true, 3: true, 5: true, 7: true, 11: true, 13: true,
		97: true, 7919: true,
	}
	for n := -3; n <= 100; n++ {
		want := primes[n]
		if !want {
			// recompute by definition
			want = n >= 2
			for d := 2; d < n; d++ {
				if n%d == 0 {
					want = false
					break
				}
			}
		}
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestPrimePower(t *testing.T) {
	cases := []struct {
		n, p, k int
		ok      bool
	}{
		{1, 0, 0, false}, {2, 2, 1, true}, {3, 3, 1, true},
		{4, 2, 2, true}, {6, 0, 0, false}, {8, 2, 3, true},
		{9, 3, 2, true}, {12, 0, 0, false}, {16, 2, 4, true},
		{25, 5, 2, true}, {27, 3, 3, true}, {32, 2, 5, true},
		{36, 0, 0, false}, {49, 7, 2, true}, {64, 2, 6, true},
		{81, 3, 4, true}, {100, 0, 0, false}, {121, 11, 2, true},
		{125, 5, 3, true}, {128, 2, 7, true}, {169, 13, 2, true},
		{243, 3, 5, true}, {1024, 2, 10, true},
	}
	for _, c := range cases {
		p, k, ok := PrimePower(c.n)
		if p != c.p || k != c.k || ok != c.ok {
			t.Errorf("PrimePower(%d) = (%d,%d,%v), want (%d,%d,%v)",
				c.n, p, k, ok, c.p, c.k, c.ok)
		}
	}
}

func TestPrimePowerRoundTrip(t *testing.T) {
	f := func(pIdx, kRaw uint8) bool {
		primes := []int{2, 3, 5, 7, 11, 13}
		p := primes[int(pIdx)%len(primes)]
		k := int(kRaw)%5 + 1
		n := Pow(p, k)
		gp, gk, ok := PrimePower(n)
		return ok && gp == p && gk == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPow(t *testing.T) {
	if got := Pow(2, 10); got != 1024 {
		t.Errorf("Pow(2,10) = %d", got)
	}
	if got := Pow(7, 0); got != 1 {
		t.Errorf("Pow(7,0) = %d", got)
	}
	if got := Pow(0, 5); got != 0 {
		t.Errorf("Pow(0,5) = %d", got)
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6}, {-12, 18, 6},
		{17, 13, 1}, {100, 75, 25},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSortTriple(t *testing.T) {
	f := func(i, j, k int16) bool {
		a, b, c := SortTriple(int(i), int(j), int(k))
		if a < b || b < c {
			return false
		}
		// must be a permutation of the input: compare multisets via sums
		// of values and of squares and cubes.
		si := int64(i) + int64(j) + int64(k)
		so := int64(a) + int64(b) + int64(c)
		qi := int64(i)*int64(i) + int64(j)*int64(j) + int64(k)*int64(k)
		qo := int64(a)*int64(a) + int64(b)*int64(b) + int64(c)*int64(c)
		return si == so && qi == qo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassifyAndMultiplicity(t *testing.T) {
	cases := []struct {
		i, j, k int
		kind    TripleKind
		mult    int
	}{
		{3, 2, 1, TripleStrict, 6},
		{2, 2, 1, TriplePairHigh, 3},
		{2, 1, 1, TriplePairLow, 3},
		{2, 2, 2, TripleDiagonal, 1},
	}
	for _, c := range cases {
		if got := ClassifyTriple(c.i, c.j, c.k); got != c.kind {
			t.Errorf("ClassifyTriple(%d,%d,%d) = %v, want %v", c.i, c.j, c.k, got, c.kind)
		}
		if got := Multiplicity(c.i, c.j, c.k); got != c.mult {
			t.Errorf("Multiplicity(%d,%d,%d) = %d, want %d", c.i, c.j, c.k, got, c.mult)
		}
	}
}

func TestMultiplicitySumsToCube(t *testing.T) {
	// Sum of permutation multiplicities over the lower tetrahedron must be
	// exactly n^3 (every cube point is a permutation of exactly one sorted
	// triple).
	for n := 1; n <= 25; n++ {
		sum := 0
		for i := 1; i <= n; i++ {
			for j := 1; j <= i; j++ {
				for k := 1; k <= j; k++ {
					sum += Multiplicity(i, j, k)
				}
			}
		}
		if sum != n*n*n {
			t.Fatalf("n=%d: multiplicity sum = %d, want %d", n, sum, n*n*n)
		}
	}
}

func TestClassifyTriplePanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ClassifyTriple(1,2,3) did not panic")
		}
	}()
	ClassifyTriple(1, 2, 3)
}

func TestTripleKindString(t *testing.T) {
	kinds := map[TripleKind]string{
		TripleStrict:    "strict",
		TriplePairHigh:  "pair-high",
		TriplePairLow:   "pair-low",
		TripleDiagonal:  "diagonal",
		TripleKind(255): "TripleKind(255)",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 || Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Fatal("Min/Max incorrect")
	}
}
