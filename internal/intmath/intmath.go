// Package intmath provides the small integer utilities shared by the
// combinatorial layers of the library: binomial and simplex (triangular,
// tetrahedral) numbers used to size packed symmetric storage, primality and
// prime-power tests used to pick admissible Steiner-system parameters, and a
// few arithmetic helpers.
package intmath

import "fmt"

// Binomial returns C(n, k). It panics if n or k is negative. Values are
// computed with int64 intermediates; the result must fit in an int.
func Binomial(n, k int) int {
	if n < 0 || k < 0 {
		panic(fmt.Sprintf("intmath: Binomial(%d, %d) with negative argument", n, k))
	}
	if k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := int64(1)
	for i := 1; i <= k; i++ {
		r = r * int64(n-k+i) / int64(i)
	}
	return int(r)
}

// Triangular returns the n-th triangular number n(n+1)/2, the number of
// pairs (i, j) with n > i >= j >= 1 ... more precisely the count of
// lattice points {(i,j) : 1 <= j <= i <= n}.
func Triangular(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("intmath: Triangular(%d) with negative argument", n))
	}
	return n * (n + 1) / 2
}

// Tetrahedral returns the n-th tetrahedral number n(n+1)(n+2)/6: the number
// of lattice points {(i,j,k) : 1 <= k <= j <= i <= n}, which is the size of
// the (non-strict) lower tetrahedron of an n×n×n symmetric tensor.
func Tetrahedral(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("intmath: Tetrahedral(%d) with negative argument", n))
	}
	return n * (n + 1) * (n + 2) / 6
}

// StrictTetrahedral returns n(n-1)(n-2)/6: the number of lattice points
// {(i,j,k) : 1 <= k < j < i <= n}, the size of the strict lower tetrahedron.
func StrictTetrahedral(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("intmath: StrictTetrahedral(%d) with negative argument", n))
	}
	if n < 3 {
		return 0
	}
	return n * (n - 1) * (n - 2) / 6
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("intmath: CeilDiv(%d, %d) with non-positive divisor", a, b))
	}
	return (a + b - 1) / b
}

// RoundUp returns the smallest multiple of m that is >= n, for m > 0.
func RoundUp(n, m int) int {
	return CeilDiv(n, m) * m
}

// IsPrime reports whether n is prime, by trial division (intended for the
// small parameters q used in Steiner-system construction).
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n%2 == 0 {
		return n == 2
	}
	for d := 3; d*d <= n; d += 2 {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// PrimePower reports whether n = p^k for a prime p and k >= 1, returning
// the base p and exponent k. When n is not a prime power it returns
// (0, 0, false).
func PrimePower(n int) (p, k int, ok bool) {
	if n < 2 {
		return 0, 0, false
	}
	for d := 2; d*d <= n; d++ {
		if n%d != 0 {
			continue
		}
		// d is the smallest prime factor; n must be a power of d.
		p, k = d, 0
		for n > 1 {
			if n%d != 0 {
				return 0, 0, false
			}
			n /= d
			k++
		}
		return p, k, true
	}
	// n itself is prime.
	return n, 1, true
}

// Pow returns base**exp for non-negative exp, with int64 intermediates.
func Pow(base, exp int) int {
	if exp < 0 {
		panic(fmt.Sprintf("intmath: Pow(%d, %d) with negative exponent", base, exp))
	}
	r := int64(1)
	b := int64(base)
	for i := 0; i < exp; i++ {
		r *= b
	}
	return int(r)
}

// GCD returns the greatest common divisor of a and b (non-negative result).
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SortTriple returns the values of (i, j, k) reordered so that the first
// return is the largest and the last the smallest (i' >= j' >= k'). It is
// the index normalization used throughout for symmetric tensor access.
func SortTriple(i, j, k int) (int, int, int) {
	if i < j {
		i, j = j, i
	}
	if j < k {
		j, k = k, j
	}
	if i < j {
		i, j = j, i
	}
	return i, j, k
}

// TripleKind classifies an index triple of the lower tetrahedron.
type TripleKind int

const (
	// TripleStrict means i > j > k: an off-diagonal point with 6 distinct
	// permutations in the full cube.
	TripleStrict TripleKind = iota
	// TriplePairHigh means i == j > k (3 distinct permutations).
	TriplePairHigh
	// TriplePairLow means i > j == k (3 distinct permutations).
	TriplePairLow
	// TripleDiagonal means i == j == k (1 permutation).
	TripleDiagonal
)

func (t TripleKind) String() string {
	switch t {
	case TripleStrict:
		return "strict"
	case TriplePairHigh:
		return "pair-high"
	case TriplePairLow:
		return "pair-low"
	case TripleDiagonal:
		return "diagonal"
	}
	return fmt.Sprintf("TripleKind(%d)", int(t))
}

// ClassifyTriple reports the kind of a sorted triple i >= j >= k. It panics
// if the triple is not sorted.
func ClassifyTriple(i, j, k int) TripleKind {
	if i < j || j < k {
		panic(fmt.Sprintf("intmath: ClassifyTriple(%d, %d, %d) not sorted", i, j, k))
	}
	switch {
	case i == j && j == k:
		return TripleDiagonal
	case i == j:
		return TriplePairHigh
	case j == k:
		return TriplePairLow
	default:
		return TripleStrict
	}
}

// Multiplicity returns the number of distinct permutations of a sorted
// triple i >= j >= k: 6 when all differ, 3 when exactly two coincide, and 1
// on the central diagonal.
func Multiplicity(i, j, k int) int {
	switch ClassifyTriple(i, j, k) {
	case TripleStrict:
		return 6
	case TripleDiagonal:
		return 1
	default:
		return 3
	}
}
