// Package backendflag is the one shared definition of the CLI backend
// selection: every tool (sttsvrun, sttsvbench, sttsvserve) registers the
// same -backend=sim|tcp|unix flag (plus -addr and -rank for distributed
// runs) and builds the machine.Backend the same way, so "run this over
// real sockets" means the identical thing everywhere.
//
// Three shapes fall out of one flag set:
//
//   - -backend=sim (default): the in-memory SimBackend — nil Backend in
//     machine.RunConfig, exactly the pre-redesign behavior.
//   - -backend=tcp or -backend=unix alone: a single-process netwire
//     loopback — all P ranks in one process, every packet framed through
//     a real kernel socket. The conformance configuration.
//   - -backend=tcp|unix with -rank=K and -addr: this process hosts one
//     rank of a multi-process cluster run and dials the coordinator at
//     -addr (sttsvrun only; see its -dist coordinator mode).
package backendflag

import (
	"flag"
	"fmt"

	"repro/internal/machine"
	"repro/internal/netwire"
)

// Options is the parsed backend selection.
type Options struct {
	// Backend is "sim", "tcp" or "unix".
	Backend string
	// Addr is the coordinator control address a worker dials (-rank) or
	// the coordinator listens on (-dist); "" picks 127.0.0.1:0 for tcp.
	Addr string
	// Rank is the machine rank this process hosts, or -1 for
	// single-process modes.
	Rank int
	// Hosts is a hosts-file path for multi-host distributed runs: one
	// bind address per rank ("host" or "host:port", rank order). Empty
	// keeps the single-host default (every rank binds loopback with an
	// ephemeral port). tcp only.
	Hosts string
}

// Register installs the shared -backend flag on fs (the process-global
// flag.CommandLine in the CLIs) and returns the Options the parsed value
// lands in. Tools with a multi-process launcher use RegisterDistributed
// instead.
func Register(fs *flag.FlagSet) *Options {
	o := &Options{Rank: -1}
	fs.StringVar(&o.Backend, "backend", "sim", "packet backend for parallel runs: sim (in-memory mailboxes), tcp or unix (real sockets via internal/netwire)")
	return o
}

// RegisterDistributed installs -backend plus the distributed-launch flags
// -addr and -rank (sttsvrun, whose -dist coordinator mode forks -rank=K
// processes).
func RegisterDistributed(fs *flag.FlagSet) *Options {
	o := Register(fs)
	fs.StringVar(&o.Addr, "addr", "", "coordinator control address for distributed runs (with -rank or -dist; default 127.0.0.1:0 for tcp)")
	fs.IntVar(&o.Rank, "rank", -1, "host exactly this machine rank and join the coordinator at -addr (requires -backend=tcp|unix)")
	fs.StringVar(&o.Hosts, "hosts", "", "hosts file for multi-host distributed runs: one bind address per rank, in rank order (requires -backend=tcp with -rank or -dist)")
	return o
}

// Sim reports whether the in-memory simulator was selected.
func (o *Options) Sim() bool { return o.Backend == "sim" }

// Worker reports whether this process was launched as one rank of a
// multi-process run.
func (o *Options) Worker() bool { return o.Rank >= 0 }

// Validate checks the flag combination; distributed reports whether the
// calling tool supports -rank/-dist at all (only sttsvrun does).
func (o *Options) Validate(distributed bool) error {
	switch o.Backend {
	case "sim", "tcp", "unix":
	default:
		return fmt.Errorf("-backend=%q (want sim, tcp or unix)", o.Backend)
	}
	if !distributed {
		return nil
	}
	if o.Rank >= 0 {
		if o.Sim() {
			return fmt.Errorf("-rank requires -backend=tcp or -backend=unix")
		}
		if o.Addr == "" {
			return fmt.Errorf("-rank requires -addr (the coordinator's control address)")
		}
	}
	if o.Hosts != "" && o.Backend != "tcp" {
		return fmt.Errorf("-hosts requires -backend=tcp (per-rank bind addresses are TCP endpoints)")
	}
	return nil
}

// Apply installs the selection on a machine.RunConfig. For sim it leaves
// cfg untouched (nil Backend selects the in-memory SimBackend); for
// tcp/unix it sets a BackendFactory building a fresh netwire loopback per
// machine incarnation, which the machine closes itself — so the same cfg
// template is safe to launch many sequential or concurrent machines from
// (session pools included) without packet crosstalk or socket leaks.
func (o *Options) Apply(cfg *machine.RunConfig) {
	if o.Sim() {
		return
	}
	network := o.Backend
	cfg.BackendFactory = func() (machine.Backend, error) {
		return netwire.NewLoopback(network)
	}
}
