// Package gf implements arithmetic in small finite fields GF(p^k).
//
// The tetrahedral block partition of the STTSV paper is generated from
// Steiner (q²+1, q+1, 3) systems, which are the spherical geometries built
// from the action of PGL₂(q²) on the projective line over GF(q²)
// (Theorem 6.5 of the paper, citing Colbourn & Dinitz Example 3.23). That
// construction needs GF(q²) for an arbitrary prime power q = p^a, i.e.
// GF(p^{2a}), together with recognition of the subfield GF(q) inside it.
//
// Elements of GF(p^k) are represented as integers in [0, p^k): the base-p
// digits of an element are the coefficients of its polynomial
// representative over GF(p), modulo a monic irreducible polynomial found by
// exhaustive search. Because the fields involved are tiny (q <= 16 or so in
// practice, so p^k <= a few thousand), all arithmetic is table-driven.
package gf

import (
	"fmt"

	"repro/internal/intmath"
)

// Field is an arithmetic context for GF(p^k). The zero element is 0 and the
// multiplicative identity is 1 under the integer encoding.
type Field struct {
	// P is the characteristic (a prime) and K the extension degree, so the
	// field has Q = P^K elements encoded as integers 0..Q-1.
	P, K, Q int

	// Irreducible is the monic irreducible polynomial of degree K over
	// GF(P) used to define the field, as coefficients low-to-high with
	// Irreducible[K] == 1.
	Irreducible []int

	mul []uint16 // Q×Q multiplication table, row-major
	add []uint16 // Q×Q addition table, row-major
	inv []uint16 // multiplicative inverse, inv[0] unused
	neg []uint16 // additive inverse
}

// maxQ bounds the table sizes: Q² uint16 entries per table.
const maxQ = 4096

// New constructs GF(q) for the prime power q, searching for an irreducible
// polynomial deterministically (so the same q always yields the same field
// tables). It returns an error when q is not a prime power or too large.
func New(q int) (*Field, error) {
	p, k, ok := intmath.PrimePower(q)
	if !ok {
		return nil, fmt.Errorf("gf: %d is not a prime power", q)
	}
	if q > maxQ {
		return nil, fmt.Errorf("gf: field size %d exceeds limit %d", q, maxQ)
	}
	f := &Field{P: p, K: k, Q: q}
	irred, err := findIrreducible(p, k)
	if err != nil {
		return nil, err
	}
	f.Irreducible = irred
	f.buildTables()
	return f, nil
}

// MustNew is New but panics on error; for use with known-good constants.
func MustNew(q int) *Field {
	f, err := New(q)
	if err != nil {
		panic(err)
	}
	return f
}

// digits decodes the integer encoding of an element into its K base-P
// coefficients.
func (f *Field) digits(e int) []int {
	d := make([]int, f.K)
	for i := 0; i < f.K; i++ {
		d[i] = e % f.P
		e /= f.P
	}
	return d
}

// encode packs base-P coefficients back into the integer encoding. Extra
// leading zero coefficients are permitted.
func (f *Field) encode(d []int) int {
	e := 0
	for i := len(d) - 1; i >= 0; i-- {
		e = e*f.P + d[i]%f.P
	}
	return e
}

func (f *Field) buildTables() {
	q := f.Q
	f.add = make([]uint16, q*q)
	f.mul = make([]uint16, q*q)
	f.inv = make([]uint16, q)
	f.neg = make([]uint16, q)
	for a := 0; a < q; a++ {
		da := f.digits(a)
		for b := a; b < q; b++ {
			db := f.digits(b)
			// Addition: coefficient-wise mod p.
			sum := make([]int, f.K)
			for i := range sum {
				sum[i] = (da[i] + db[i]) % f.P
			}
			s := uint16(f.encode(sum))
			f.add[a*q+b] = s
			f.add[b*q+a] = s
			// Multiplication: polynomial product reduced mod Irreducible.
			prod := polyMul(da, db, f.P)
			prod = polyMod(prod, f.Irreducible, f.P)
			m := uint16(f.encode(prod))
			f.mul[a*q+b] = m
			f.mul[b*q+a] = m
		}
	}
	for a := 0; a < q; a++ {
		da := f.digits(a)
		negD := make([]int, f.K)
		for i := range negD {
			negD[i] = (f.P - da[i]) % f.P
		}
		f.neg[a] = uint16(f.encode(negD))
	}
	// Inverses by scanning the multiplication table rows.
	for a := 1; a < q; a++ {
		for b := 1; b < q; b++ {
			if f.mul[a*q+b] == 1 {
				f.inv[a] = uint16(b)
				break
			}
		}
	}
}

// Add returns a + b.
func (f *Field) Add(a, b int) int { return int(f.add[a*f.Q+b]) }

// Sub returns a - b.
func (f *Field) Sub(a, b int) int { return int(f.add[a*f.Q+int(f.neg[b])]) }

// Neg returns -a.
func (f *Field) Neg(a int) int { return int(f.neg[a]) }

// Mul returns a · b.
func (f *Field) Mul(a, b int) int { return int(f.mul[a*f.Q+b]) }

// Inv returns a⁻¹. It panics when a == 0.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return int(f.inv[a])
}

// Div returns a / b. It panics when b == 0.
func (f *Field) Div(a, b int) int { return f.Mul(a, f.Inv(b)) }

// Pow returns a**e for e >= 0 (with 0**0 == 1).
func (f *Field) Pow(a, e int) int {
	if e < 0 {
		panic("gf: negative exponent")
	}
	r := 1
	base := a
	for e > 0 {
		if e&1 == 1 {
			r = f.Mul(r, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return r
}

// Frobenius returns a**p, the image of a under the Frobenius automorphism.
func (f *Field) Frobenius(a int) int { return f.Pow(a, f.P) }

// Subfield returns the elements of the subfield of order sub, i.e. the
// fixed points of x -> x^sub, in increasing integer encoding. sub must be
// p^d for a divisor d of K; otherwise an error is returned.
func (f *Field) Subfield(sub int) ([]int, error) {
	p, d, ok := intmath.PrimePower(sub)
	if !ok || p != f.P || d <= 0 || f.K%d != 0 {
		return nil, fmt.Errorf("gf: GF(%d) is not a subfield of GF(%d)", sub, f.Q)
	}
	var els []int
	for a := 0; a < f.Q; a++ {
		if f.Pow(a, sub) == a {
			els = append(els, a)
		}
	}
	if len(els) != sub {
		return nil, fmt.Errorf("gf: internal error: found %d fixed points of x^%d, want %d",
			len(els), sub, sub)
	}
	return els, nil
}

// PrimitiveElement returns a generator of the multiplicative group, found
// by scanning element order (deterministic; fine for small fields).
func (f *Field) PrimitiveElement() int {
	for g := 2; g < f.Q; g++ {
		if f.orderOf(g) == f.Q-1 {
			return g
		}
	}
	if f.Q == 2 {
		return 1
	}
	panic("gf: no primitive element found")
}

func (f *Field) orderOf(a int) int {
	if a == 0 {
		return 0
	}
	x, ord := a, 1
	for x != 1 {
		x = f.Mul(x, a)
		ord++
		if ord > f.Q {
			panic("gf: order computation diverged")
		}
	}
	return ord
}

// String identifies the field and its defining polynomial.
func (f *Field) String() string {
	return fmt.Sprintf("GF(%d) = GF(%d^%d) mod %v", f.Q, f.P, f.K, f.Irreducible)
}

// --- polynomial arithmetic over GF(p) on int coefficient slices ---

// polyTrim removes leading zero coefficients.
func polyTrim(a []int) []int {
	n := len(a)
	for n > 0 && a[n-1] == 0 {
		n--
	}
	return a[:n]
}

// polyMul returns a·b over GF(p).
func polyMul(a, b []int, p int) []int {
	a, b = polyTrim(a), polyTrim(b)
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]int, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] = (out[i+j] + ai*bj) % p
		}
	}
	return polyTrim(out)
}

// polyMod returns a mod m over GF(p); m must be monic (leading coeff 1).
func polyMod(a, m []int, p int) []int {
	a = append([]int(nil), a...)
	a = polyTrim(a)
	m = polyTrim(m)
	if len(m) == 0 {
		panic("gf: polyMod by zero polynomial")
	}
	if m[len(m)-1] != 1 {
		panic("gf: polyMod modulus not monic")
	}
	dm := len(m) - 1
	for len(a)-1 >= dm && len(a) > 0 {
		lead := a[len(a)-1]
		shift := len(a) - 1 - dm
		for i := 0; i <= dm; i++ {
			a[shift+i] = ((a[shift+i]-lead*m[i])%p + p*p) % p
		}
		a = polyTrim(a)
	}
	return a
}

// polyIsIrreducible tests irreducibility of a monic polynomial f of degree
// >= 1 over GF(p) by trial division against every monic polynomial of
// degree 1..deg(f)/2. Exhaustive but entirely adequate for the tiny fields
// this package targets.
func polyIsIrreducible(f []int, p int) bool {
	f = polyTrim(f)
	deg := len(f) - 1
	if deg < 1 {
		return false
	}
	if deg == 1 {
		return true
	}
	for d := 1; d <= deg/2; d++ {
		// Enumerate monic divisor candidates of degree d: p^d of them.
		total := intmath.Pow(p, d)
		for c := 0; c < total; c++ {
			div := make([]int, d+1)
			cc := c
			for i := 0; i < d; i++ {
				div[i] = cc % p
				cc /= p
			}
			div[d] = 1
			if len(polyMod(f, div, p)) == 0 {
				return false
			}
		}
	}
	return true
}

// findIrreducible returns the lexicographically first monic irreducible
// polynomial of degree k over GF(p) (coefficients enumerated as base-p
// integers low-to-high).
func findIrreducible(p, k int) ([]int, error) {
	if k == 1 {
		return []int{0, 1}, nil // x, any degree-1 monic works; field is Z/p
	}
	total := intmath.Pow(p, k)
	for c := 0; c < total; c++ {
		f := make([]int, k+1)
		cc := c
		for i := 0; i < k; i++ {
			f[i] = cc % p
			cc /= p
		}
		f[k] = 1
		if polyIsIrreducible(f, p) {
			return f, nil
		}
	}
	return nil, fmt.Errorf("gf: no irreducible polynomial of degree %d over GF(%d)", k, p)
}
