package gf

import (
	"testing"
	"testing/quick"
)

// fieldSizes covers the prime and prime-power fields the Steiner layer uses:
// GF(q) and GF(q²) for q in {2,3,4,5,7,8,9}.
var fieldSizes = []int{2, 3, 4, 5, 7, 8, 9, 16, 25, 49, 64, 81}

func TestNewRejectsNonPrimePowers(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12, 15, 100} {
		if _, err := New(q); err == nil {
			t.Errorf("New(%d) succeeded, want error", q)
		}
	}
}

func TestNewRejectsTooLarge(t *testing.T) {
	if _, err := New(8192); err == nil {
		t.Error("New(8192) succeeded, want size-limit error")
	}
}

func TestFieldAxioms(t *testing.T) {
	for _, q := range fieldSizes {
		f := MustNew(q)
		t.Run(f.String(), func(t *testing.T) {
			// Commutativity, associativity, distributivity, identities,
			// inverses — exhaustively for small q, sampled for larger.
			step := 1
			if q > 32 {
				step = 5
			}
			for a := 0; a < q; a++ {
				if f.Add(a, 0) != a {
					t.Fatalf("a+0 != a for a=%d", a)
				}
				if f.Mul(a, 1) != a {
					t.Fatalf("a*1 != a for a=%d", a)
				}
				if f.Mul(a, 0) != 0 {
					t.Fatalf("a*0 != 0 for a=%d", a)
				}
				if f.Add(a, f.Neg(a)) != 0 {
					t.Fatalf("a + (-a) != 0 for a=%d", a)
				}
				if a != 0 && f.Mul(a, f.Inv(a)) != 1 {
					t.Fatalf("a * a^-1 != 1 for a=%d", a)
				}
				for b := 0; b < q; b += step {
					if f.Add(a, b) != f.Add(b, a) {
						t.Fatalf("add not commutative at %d,%d", a, b)
					}
					if f.Mul(a, b) != f.Mul(b, a) {
						t.Fatalf("mul not commutative at %d,%d", a, b)
					}
					if f.Sub(a, b) != f.Add(a, f.Neg(b)) {
						t.Fatalf("sub inconsistent at %d,%d", a, b)
					}
					for c := 0; c < q; c += step {
						if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
							t.Fatalf("add not associative at %d,%d,%d", a, b, c)
						}
						if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
							t.Fatalf("mul not associative at %d,%d,%d", a, b, c)
						}
						if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
							t.Fatalf("not distributive at %d,%d,%d", a, b, c)
						}
					}
				}
			}
		})
	}
}

func TestNoZeroDivisors(t *testing.T) {
	for _, q := range fieldSizes {
		f := MustNew(q)
		for a := 1; a < q; a++ {
			for b := 1; b < q; b++ {
				if f.Mul(a, b) == 0 {
					t.Fatalf("GF(%d): %d * %d == 0", q, a, b)
				}
			}
		}
	}
}

func TestFermat(t *testing.T) {
	// a^q == a for all a in GF(q).
	for _, q := range fieldSizes {
		f := MustNew(q)
		for a := 0; a < q; a++ {
			if f.Pow(a, q) != a {
				t.Fatalf("GF(%d): a^q != a for a=%d", q, a)
			}
		}
	}
}

func TestFrobeniusIsAdditiveAndMultiplicative(t *testing.T) {
	for _, q := range []int{4, 8, 9, 16, 25, 49} {
		f := MustNew(q)
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				if f.Frobenius(f.Add(a, b)) != f.Add(f.Frobenius(a), f.Frobenius(b)) {
					t.Fatalf("GF(%d): Frobenius not additive at %d,%d", q, a, b)
				}
				if f.Frobenius(f.Mul(a, b)) != f.Mul(f.Frobenius(a), f.Frobenius(b)) {
					t.Fatalf("GF(%d): Frobenius not multiplicative at %d,%d", q, a, b)
				}
			}
		}
	}
}

func TestSubfield(t *testing.T) {
	cases := []struct{ big, sub int }{
		{4, 2}, {9, 3}, {16, 2}, {16, 4}, {25, 5}, {49, 7},
		{64, 8}, {64, 4}, {64, 2}, {81, 9}, {81, 3},
	}
	for _, c := range cases {
		f := MustNew(c.big)
		els, err := f.Subfield(c.sub)
		if err != nil {
			t.Fatalf("GF(%d).Subfield(%d): %v", c.big, c.sub, err)
		}
		if len(els) != c.sub {
			t.Fatalf("GF(%d).Subfield(%d): got %d elements", c.big, c.sub, len(els))
		}
		in := make(map[int]bool, len(els))
		for _, e := range els {
			in[e] = true
		}
		if !in[0] || !in[1] {
			t.Fatalf("GF(%d).Subfield(%d) missing 0 or 1", c.big, c.sub)
		}
		// Closure under add and mul.
		for _, a := range els {
			for _, b := range els {
				if !in[f.Add(a, b)] || !in[f.Mul(a, b)] {
					t.Fatalf("GF(%d).Subfield(%d) not closed at %d,%d", c.big, c.sub, a, b)
				}
			}
		}
	}
}

func TestSubfieldErrors(t *testing.T) {
	f := MustNew(16)
	if _, err := f.Subfield(8); err == nil {
		t.Error("GF(16).Subfield(8) should fail (8 = 2^3, 3 does not divide 4)")
	}
	if _, err := f.Subfield(3); err == nil {
		t.Error("GF(16).Subfield(3) should fail (wrong characteristic)")
	}
}

func TestPrimitiveElement(t *testing.T) {
	for _, q := range fieldSizes {
		f := MustNew(q)
		g := f.PrimitiveElement()
		seen := make(map[int]bool)
		x := 1
		for i := 0; i < q-1; i++ {
			if seen[x] {
				t.Fatalf("GF(%d): %d is not primitive (cycle length %d)", q, g, i)
			}
			seen[x] = true
			x = f.Mul(x, g)
		}
		if x != 1 {
			t.Fatalf("GF(%d): g^(q-1) != 1", q)
		}
		if len(seen) != q-1 {
			t.Fatalf("GF(%d): primitive element generated %d elements", q, len(seen))
		}
	}
}

func TestDivPanicsOnZero(t *testing.T) {
	f := MustNew(5)
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	f.Div(3, 0)
}

func TestPowMatchesRepeatedMul(t *testing.T) {
	f := MustNew(27)
	check := func(a uint8, e uint8) bool {
		av := int(a) % f.Q
		ev := int(e) % 40
		want := 1
		for i := 0; i < ev; i++ {
			want = f.Mul(want, av)
		}
		return f.Pow(av, ev) == want
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestIrreduciblePolynomialHasNoRoots(t *testing.T) {
	for _, q := range fieldSizes {
		f := MustNew(q)
		if f.K == 1 {
			continue
		}
		// Evaluate the defining polynomial at every base-field element; an
		// irreducible polynomial of degree >= 2 has no roots in GF(p).
		for x := 0; x < f.P; x++ {
			val := 0
			pow := 1
			for _, c := range f.Irreducible {
				val = (val + c*pow) % f.P
				pow = pow * x % f.P
			}
			if val == 0 {
				t.Fatalf("GF(%d): irreducible %v has root %d in GF(%d)", q, f.Irreducible, x, f.P)
			}
		}
	}
}

func TestPolyHelpers(t *testing.T) {
	// (x+1)(x+1) = x^2 + 2x + 1 over GF(3)
	got := polyMul([]int{1, 1}, []int{1, 1}, 3)
	want := []int{1, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("polyMul: got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("polyMul: got %v want %v", got, want)
		}
	}
	// x^2 mod (x^2+1) = -1 = p-1 over GF(5)
	r := polyMod([]int{0, 0, 1}, []int{1, 0, 1}, 5)
	if len(r) != 1 || r[0] != 4 {
		t.Fatalf("polyMod: got %v want [4]", r)
	}
}

func TestPolyIsIrreducibleKnownCases(t *testing.T) {
	// x^2+1 is irreducible over GF(3) but reducible over GF(5) (2^2 = -1).
	if !polyIsIrreducible([]int{1, 0, 1}, 3) {
		t.Error("x^2+1 should be irreducible over GF(3)")
	}
	if polyIsIrreducible([]int{1, 0, 1}, 5) {
		t.Error("x^2+1 should be reducible over GF(5)")
	}
	// x^2+x+1 irreducible over GF(2).
	if !polyIsIrreducible([]int{1, 1, 1}, 2) {
		t.Error("x^2+x+1 should be irreducible over GF(2)")
	}
	// x^2 reducible anywhere.
	if polyIsIrreducible([]int{0, 0, 1}, 7) {
		t.Error("x^2 should be reducible")
	}
}

func BenchmarkFieldConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := New(81); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMul(b *testing.B) {
	f := MustNew(81)
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += f.Mul(i%80+1, (i*7)%80+1)
	}
	_ = s
}
