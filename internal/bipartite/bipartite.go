// Package bipartite provides bipartite-graph machinery used by the
// tetrahedral partition and the communication scheduler:
//
//   - Hopcroft–Karp maximum matching (cited in §6.1.3 and §7.2.1 of the
//     paper as the workhorse for finding the required assignments);
//   - Hall-condition certificates (Theorem 6.6, Hall's marriage theorem),
//     extracted from a failed matching;
//   - decomposition of a d-regular bipartite (multi)graph into d disjoint
//     perfect matchings (Lemma 7.1), which yields the communication steps
//     of Theorem 7.2;
//   - a greedy maximal-matching decomposition fallback for irregular
//     graphs.
//
// Vertices are 0-based: the left side X has NX vertices and the right side
// Y has NY vertices. Parallel edges are supported (the peer graph of the
// communication schedule is a multigraph).
package bipartite

import (
	"fmt"
	"sort"
)

// Graph is a bipartite multigraph.
type Graph struct {
	NX, NY int
	adj    [][]int // adj[x] lists y-neighbors, possibly with repetition
}

// NewGraph returns an empty bipartite graph with the given side sizes.
func NewGraph(nx, ny int) *Graph {
	if nx < 0 || ny < 0 {
		panic(fmt.Sprintf("bipartite: NewGraph(%d, %d) with negative size", nx, ny))
	}
	return &Graph{NX: nx, NY: ny, adj: make([][]int, nx)}
}

// AddEdge adds an edge between x in X and y in Y. Parallel edges accumulate.
func (g *Graph) AddEdge(x, y int) {
	if x < 0 || x >= g.NX || y < 0 || y >= g.NY {
		panic(fmt.Sprintf("bipartite: AddEdge(%d, %d) out of range (%d, %d)", x, y, g.NX, g.NY))
	}
	g.adj[x] = append(g.adj[x], y)
}

// Neighbors returns the y-neighbors of x (with multiplicities). The result
// aliases internal state.
func (g *Graph) Neighbors(x int) []int { return g.adj[x] }

// NumEdges returns the total edge count including parallel edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.adj {
		n += len(a)
	}
	return n
}

// DegreeX returns the degree of x (counting parallel edges).
func (g *Graph) DegreeX(x int) int { return len(g.adj[x]) }

// DegreeY returns the degree of y (counting parallel edges).
func (g *Graph) DegreeY(y int) int {
	n := 0
	for _, a := range g.adj {
		for _, v := range a {
			if v == y {
				n++
			}
		}
	}
	return n
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.NX, g.NY)
	for x, a := range g.adj {
		c.adj[x] = append([]int(nil), a...)
	}
	return c
}

const unmatched = -1

// Matching holds a matching as two mutually inverse maps. XtoY[x] == -1
// when x is unmatched, and likewise for YtoX.
type Matching struct {
	XtoY []int
	YtoX []int
}

// Size returns the number of matched pairs.
func (m *Matching) Size() int {
	n := 0
	for _, y := range m.XtoY {
		if y != unmatched {
			n++
		}
	}
	return n
}

// CoversX reports whether every X vertex is matched.
func (m *Matching) CoversX() bool {
	for _, y := range m.XtoY {
		if y == unmatched {
			return false
		}
	}
	return true
}

// MaximumMatching computes a maximum matching with the Hopcroft–Karp
// algorithm in O(E·√V).
func MaximumMatching(g *Graph) *Matching {
	matchX := make([]int, g.NX)
	matchY := make([]int, g.NY)
	for i := range matchX {
		matchX[i] = unmatched
	}
	for i := range matchY {
		matchY[i] = unmatched
	}

	const inf = int(^uint(0) >> 1)
	dist := make([]int, g.NX)
	queue := make([]int, 0, g.NX)

	bfs := func() bool {
		queue = queue[:0]
		for x := 0; x < g.NX; x++ {
			if matchX[x] == unmatched {
				dist[x] = 0
				queue = append(queue, x)
			} else {
				dist[x] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			x := queue[qi]
			for _, y := range g.adj[x] {
				nx := matchY[y]
				if nx == unmatched {
					found = true
				} else if dist[nx] == inf {
					dist[nx] = dist[x] + 1
					queue = append(queue, nx)
				}
			}
		}
		return found
	}

	var dfs func(x int) bool
	dfs = func(x int) bool {
		for _, y := range g.adj[x] {
			nx := matchY[y]
			if nx == unmatched || (dist[nx] == dist[x]+1 && dfs(nx)) {
				matchX[x] = y
				matchY[y] = x
				return true
			}
		}
		dist[x] = inf
		return false
	}

	for bfs() {
		for x := 0; x < g.NX; x++ {
			if matchX[x] == unmatched {
				dfs(x)
			}
		}
	}
	return &Matching{XtoY: matchX, YtoX: matchY}
}

// HallViolator returns a subset W of X with |N(W)| < |W| when the graph has
// no X-saturating matching, or nil when every X vertex can be matched
// (Hall's condition holds). The certificate is the set of X vertices
// reachable from an unmatched X vertex by alternating paths.
func HallViolator(g *Graph) []int {
	m := MaximumMatching(g)
	if m.CoversX() {
		return nil
	}
	// Alternating BFS from all unmatched X vertices: X→Y via non-matching
	// edges, Y→X via matching edges.
	inW := make([]bool, g.NX)
	seenY := make([]bool, g.NY)
	var queue []int
	for x := 0; x < g.NX; x++ {
		if m.XtoY[x] == unmatched {
			inW[x] = true
			queue = append(queue, x)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		x := queue[qi]
		for _, y := range g.adj[x] {
			if seenY[y] {
				continue
			}
			seenY[y] = true
			if nx := m.YtoX[y]; nx != unmatched && !inW[nx] {
				inW[nx] = true
				queue = append(queue, nx)
			}
		}
	}
	var w []int
	for x, ok := range inW {
		if ok {
			w = append(w, x)
		}
	}
	sort.Ints(w)
	return w
}

// DisjointPerfectMatchings decomposes a d-regular bipartite multigraph with
// NX == NY into exactly d edge-disjoint perfect matchings (Lemma 7.1 / the
// König edge-coloring theorem). It returns an error when the graph is not
// regular with the same side sizes.
func DisjointPerfectMatchings(g *Graph) ([]*Matching, error) {
	if g.NX != g.NY {
		return nil, fmt.Errorf("bipartite: sides differ: %d vs %d", g.NX, g.NY)
	}
	if g.NX == 0 {
		return nil, nil
	}
	d := g.DegreeX(0)
	for x := 0; x < g.NX; x++ {
		if g.DegreeX(x) != d {
			return nil, fmt.Errorf("bipartite: X vertex %d has degree %d, want %d", x, g.DegreeX(x), d)
		}
	}
	for y := 0; y < g.NY; y++ {
		if got := g.DegreeY(y); got != d {
			return nil, fmt.Errorf("bipartite: Y vertex %d has degree %d, want %d", y, got, d)
		}
	}
	work := g.Clone()
	matchings := make([]*Matching, 0, d)
	for r := 0; r < d; r++ {
		m := MaximumMatching(work)
		if !m.CoversX() {
			return nil, fmt.Errorf("bipartite: round %d: no perfect matching in remaining %d-regular graph", r, d-r)
		}
		matchings = append(matchings, m)
		removeMatching(work, m)
	}
	if work.NumEdges() != 0 {
		return nil, fmt.Errorf("bipartite: %d edges left after %d matchings", work.NumEdges(), d)
	}
	return matchings, nil
}

// MaximalMatchingDecomposition repeatedly extracts maximum matchings until
// no edges remain, returning the sequence. For a bipartite graph with
// maximum degree Δ this uses exactly Δ rounds (each maximum matching of a
// bipartite graph can be chosen to cover all maximum-degree vertices; with
// plain maximum matchings the bound Δ still holds empirically for our
// near-regular peer graphs, and correctness — every edge scheduled exactly
// once — holds for any graph). It is the scheduler's fallback for irregular
// communication patterns.
func MaximalMatchingDecomposition(g *Graph) []*Matching {
	work := g.Clone()
	var out []*Matching
	for work.NumEdges() > 0 {
		m := MaximumMatching(work)
		if m.Size() == 0 {
			panic("bipartite: nonempty graph with empty maximum matching")
		}
		out = append(out, m)
		removeMatching(work, m)
	}
	return out
}

// removeMatching deletes one copy of each matched edge from the graph.
func removeMatching(g *Graph, m *Matching) {
	for x, y := range m.XtoY {
		if y == unmatched {
			continue
		}
		a := g.adj[x]
		for i, v := range a {
			if v == y {
				a[i] = a[len(a)-1]
				g.adj[x] = a[:len(a)-1]
				break
			}
		}
	}
}

// ValidateDecomposition checks that the matchings partition the edge
// multiset of g exactly. Used by tests and by the schedule validator.
func ValidateDecomposition(g *Graph, ms []*Matching) error {
	remaining := make(map[[2]int]int)
	for x, a := range g.adj {
		for _, y := range a {
			remaining[[2]int{x, y}]++
		}
	}
	for mi, m := range ms {
		for x, y := range m.XtoY {
			if y == unmatched {
				continue
			}
			k := [2]int{x, y}
			if remaining[k] == 0 {
				return fmt.Errorf("bipartite: matching %d uses edge (%d,%d) not available", mi, x, y)
			}
			remaining[k]--
		}
	}
	for k, c := range remaining {
		if c != 0 {
			return fmt.Errorf("bipartite: edge (%d,%d) left unscheduled ×%d", k[0], k[1], c)
		}
	}
	return nil
}
