package bipartite

import (
	"math/rand"
	"testing"
)

func TestMaximumMatchingSmall(t *testing.T) {
	// Classic 3x3 with a perfect matching.
	g := NewGraph(3, 3)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 2)
	m := MaximumMatching(g)
	if m.Size() != 3 {
		t.Fatalf("matching size = %d, want 3", m.Size())
	}
	if !m.CoversX() {
		t.Fatal("matching does not cover X")
	}
	checkMatchingValid(t, g, m)
}

func TestMaximumMatchingNoPerfect(t *testing.T) {
	// Two X vertices share a single Y neighbor.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(1, 0)
	m := MaximumMatching(g)
	if m.Size() != 1 {
		t.Fatalf("matching size = %d, want 1", m.Size())
	}
	if m.CoversX() {
		t.Fatal("CoversX should be false")
	}
}

func TestMaximumMatchingEmpty(t *testing.T) {
	g := NewGraph(0, 0)
	m := MaximumMatching(g)
	if m.Size() != 0 {
		t.Fatal("empty graph should have empty matching")
	}
	g2 := NewGraph(3, 3)
	if MaximumMatching(g2).Size() != 0 {
		t.Fatal("edgeless graph should have empty matching")
	}
}

func checkMatchingValid(t *testing.T, g *Graph, m *Matching) {
	t.Helper()
	// Mutually inverse and edges exist.
	for x, y := range m.XtoY {
		if y == -1 {
			continue
		}
		if m.YtoX[y] != x {
			t.Fatalf("XtoY[%d]=%d but YtoX[%d]=%d", x, y, y, m.YtoX[y])
		}
		found := false
		for _, v := range g.Neighbors(x) {
			if v == y {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("matched pair (%d,%d) is not an edge", x, y)
		}
	}
}

// bruteMaxMatching computes maximum matching size by exhaustive search
// (for cross-checking on tiny graphs).
func bruteMaxMatching(g *Graph, x int, usedY []bool) int {
	if x == g.NX {
		return 0
	}
	best := bruteMaxMatching(g, x+1, usedY) // leave x unmatched
	for _, y := range g.Neighbors(x) {
		if !usedY[y] {
			usedY[y] = true
			if v := 1 + bruteMaxMatching(g, x+1, usedY); v > best {
				best = v
			}
			usedY[y] = false
		}
	}
	return best
}

func TestMaximumMatchingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nx := rng.Intn(6) + 1
		ny := rng.Intn(6) + 1
		g := NewGraph(nx, ny)
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(x, y)
				}
			}
		}
		m := MaximumMatching(g)
		checkMatchingValid(t, g, m)
		want := bruteMaxMatching(g, 0, make([]bool, ny))
		if m.Size() != want {
			t.Fatalf("trial %d: HK found %d, brute force %d", trial, m.Size(), want)
		}
	}
}

func TestHallViolator(t *testing.T) {
	// W = {0, 1, 2} all map only to {0, 1}: violator must contain a
	// subset with |N(W)| < |W|.
	g := NewGraph(4, 4)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 1)
	g.AddEdge(2, 0)
	g.AddEdge(2, 1)
	g.AddEdge(3, 2)
	w := HallViolator(g)
	if w == nil {
		t.Fatal("expected a Hall violator")
	}
	// Compute N(W) and check |N(W)| < |W|.
	ny := make(map[int]bool)
	for _, x := range w {
		for _, y := range g.Neighbors(x) {
			ny[y] = true
		}
	}
	if len(ny) >= len(w) {
		t.Fatalf("violator W=%v has |N(W)|=%d >= |W|=%d", w, len(ny), len(w))
	}
}

func TestHallViolatorNilWhenSaturating(t *testing.T) {
	g := NewGraph(3, 5)
	for x := 0; x < 3; x++ {
		g.AddEdge(x, x)
		g.AddEdge(x, x+2)
	}
	if w := HallViolator(g); w != nil {
		t.Fatalf("unexpected violator %v", w)
	}
}

// regularRandomBipartite builds a d-regular bipartite multigraph on n+n
// vertices as a union of d random permutations.
func regularRandomBipartite(n, d int, rng *rand.Rand) *Graph {
	g := NewGraph(n, n)
	for r := 0; r < d; r++ {
		perm := rng.Perm(n)
		for x := 0; x < n; x++ {
			g.AddEdge(x, perm[x])
		}
	}
	return g
}

func TestDisjointPerfectMatchings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(10) + 2
		d := rng.Intn(5) + 1
		g := regularRandomBipartite(n, d, rng)
		ms, err := DisjointPerfectMatchings(g)
		if err != nil {
			t.Fatalf("trial %d (n=%d d=%d): %v", trial, n, d, err)
		}
		if len(ms) != d {
			t.Fatalf("trial %d: got %d matchings, want %d", trial, len(ms), d)
		}
		for mi, m := range ms {
			if !m.CoversX() {
				t.Fatalf("trial %d: matching %d not perfect", trial, mi)
			}
		}
		if err := ValidateDecomposition(g, ms); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestDisjointPerfectMatchingsRejectsIrregular(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, err := DisjointPerfectMatchings(g); err == nil {
		t.Fatal("irregular graph accepted")
	}
	g2 := NewGraph(2, 3)
	if _, err := DisjointPerfectMatchings(g2); err == nil {
		t.Fatal("mismatched sides accepted")
	}
}

func TestDisjointPerfectMatchingsEmpty(t *testing.T) {
	ms, err := DisjointPerfectMatchings(NewGraph(0, 0))
	if err != nil || len(ms) != 0 {
		t.Fatalf("got (%v, %v)", ms, err)
	}
}

func TestMaximalMatchingDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		nx := rng.Intn(8) + 1
		ny := rng.Intn(8) + 1
		g := NewGraph(nx, ny)
		maxDeg := 0
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				for rng.Intn(4) == 0 { // occasionally parallel edges
					g.AddEdge(x, y)
					break
				}
			}
		}
		for x := 0; x < nx; x++ {
			if d := g.DegreeX(x); d > maxDeg {
				maxDeg = d
			}
		}
		for y := 0; y < ny; y++ {
			if d := g.DegreeY(y); d > maxDeg {
				maxDeg = d
			}
		}
		ms := MaximalMatchingDecomposition(g)
		if err := ValidateDecomposition(g, ms); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// König: bipartite edge chromatic number == Δ. Our repeated
		// maximum matchings may exceed Δ in contrived cases but must be
		// within 2Δ; treat > 2Δ as a bug.
		if maxDeg > 0 && len(ms) > 2*maxDeg {
			t.Fatalf("trial %d: %d rounds for max degree %d", trial, len(ms), maxDeg)
		}
	}
}

func TestDegreeAndClone(t *testing.T) {
	g := NewGraph(2, 3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1) // parallel
	g.AddEdge(1, 2)
	if g.NumEdges() != 3 || g.DegreeX(0) != 2 || g.DegreeY(1) != 2 || g.DegreeY(0) != 0 {
		t.Fatal("degree bookkeeping wrong")
	}
	c := g.Clone()
	c.AddEdge(1, 0)
	if g.NumEdges() != 3 || c.NumEdges() != 4 {
		t.Fatal("Clone is not independent")
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewGraph(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	g.AddEdge(1, 0)
}

func BenchmarkHopcroftKarp(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := regularRandomBipartite(200, 8, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximumMatching(g)
	}
}
