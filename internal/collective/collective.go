// Package collective layers MPI-style collective operations over the
// machine simulator: All-to-All (both the variable-size form and the
// fixed-width form whose cost the paper charges in §7.2), all-gather,
// reduce-scatter, broadcast, and all-reduce, all available on arbitrary
// process groups (sub-communicators).
//
// The All-to-All implementations use the P−1-step pairwise-exchange
// schedule that Thakur et al. describe as bandwidth-optimal — the algorithm
// the paper's All-to-All analysis assumes. In step r each member sends to
// the member r positions ahead and receives from the member r positions
// behind, so every rank sends and receives at most one message per step.
//
// Every collective labels the trace events it generates with its operation
// name (machine.Event.Op), so a recorded trace can attribute each word
// moved to the collective that moved it.
package collective

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// Group is a sub-communicator: an ordered subset of machine ranks that
// participate in a collective together. Every member must construct an
// equal Group (same ranks) and call the same collectives in the same order.
type Group struct {
	c     *machine.Comm
	ranks []int // sorted global ranks
	me    int   // index of c.Rank() in ranks
}

// NewGroup builds this rank's handle to the group consisting of the given
// global ranks (order-insensitive; duplicates are an error). The calling
// rank must be a member.
func NewGroup(c *machine.Comm, ranks []int) (*Group, error) {
	cp := append([]int(nil), ranks...)
	sort.Ints(cp)
	me := -1
	for i, r := range cp {
		if i > 0 && cp[i-1] == r {
			return nil, fmt.Errorf("collective: duplicate rank %d in group", r)
		}
		if r < 0 || r >= c.Size() {
			return nil, fmt.Errorf("collective: rank %d out of range %d", r, c.Size())
		}
		if r == c.Rank() {
			me = i
		}
	}
	if me < 0 {
		return nil, fmt.Errorf("collective: calling rank %d not in group %v", c.Rank(), cp)
	}
	return &Group{c: c, ranks: cp, me: me}, nil
}

// Comm returns the communicator this group was built over. Callers that
// cache a Group across machine incarnations compare it against their
// current Comm: a group built over a previous epoch's machine would
// unwind straight into that machine's aborted state.
func (g *Group) Comm() *machine.Comm { return g.c }

// World returns the group of all ranks.
func World(c *machine.Comm) *Group {
	ranks := make([]int, c.Size())
	for i := range ranks {
		ranks[i] = i
	}
	g, err := NewGroup(c, ranks)
	if err != nil {
		panic(err) // unreachable: world membership always holds
	}
	return g
}

// Size returns the number of group members.
func (g *Group) Size() int { return len(g.ranks) }

// GroupRank returns the caller's index within the group.
func (g *Group) GroupRank() int { return g.me }

// GlobalRank translates a group index to a machine rank.
func (g *Group) GlobalRank(i int) int { return g.ranks[i] }

// AllToAllV performs a personalized all-to-all exchange: send[i] is
// delivered to group member i, and the result's slot i holds what member i
// sent to the caller. send must have length Size(); send[me] is delivered
// locally without communication (and without being metered). Empty slices
// skip the wire entirely — only words that are actually needed move, which
// is what makes this the *optimal* wiring rather than the paper's
// fixed-width accounting (see AllToAllFixed).
func (g *Group) AllToAllV(tag int, send [][]float64) [][]float64 {
	g.c.BeginOp("all-to-all-v")
	defer g.c.EndOp()
	p := g.Size()
	if len(send) != p {
		panic(fmt.Sprintf("collective: AllToAllV with %d buffers for group of %d", len(send), p))
	}
	out := make([][]float64, p)
	out[g.me] = append([]float64(nil), send[g.me]...)
	for r := 1; r < p; r++ {
		to := (g.me + r) % p
		from := (g.me - r + p) % p
		if len(send[to]) > 0 {
			g.c.Send(g.ranks[to], tag, send[to])
		}
		if recvNeeded(send, from, g.me) {
			// The symmetric-schedule property of our use sites (each pair
			// exchanges equal-shaped data) lets the receiver know whether
			// a message is coming: member `from` sends to us exactly when
			// we send to them.
			out[from] = g.c.Recv(g.ranks[from], tag)
		}
	}
	return out
}

// recvNeeded reports whether group member `from` will have sent to `me`.
// AllToAllV requires the exchange pattern to be symmetric: member a sends a
// nonempty buffer to b exactly when b sends one to a. Both use sites in
// this repository (vector gather and result scatter of Algorithm 5) have
// this property by construction.
func recvNeeded(send [][]float64, from, me int) bool {
	return len(send[from]) > 0
}

// AllToAllFixed performs an all-to-all where every ordered pair exchanges
// exactly width words, padding short buffers and truncating is an error.
// This is the MPI_Alltoall-style fixed-width collective whose bandwidth the
// paper charges in §7.2: each of the P−1 steps costs width words even
// between pairs that share nothing, which is why Algorithm 5 wired this way
// costs twice the lower bound.
func (g *Group) AllToAllFixed(tag, width int, send [][]float64) [][]float64 {
	g.c.BeginOp("all-to-all")
	defer g.c.EndOp()
	p := g.Size()
	if len(send) != p {
		panic(fmt.Sprintf("collective: AllToAllFixed with %d buffers for group of %d", len(send), p))
	}
	padded := make([][]float64, p)
	for i, s := range send {
		if len(s) > width {
			panic(fmt.Sprintf("collective: buffer %d has %d words, width %d", i, len(s), width))
		}
		buf := make([]float64, width)
		copy(buf, s)
		padded[i] = buf
	}
	out := make([][]float64, p)
	out[g.me] = padded[g.me]
	for r := 1; r < p; r++ {
		to := (g.me + r) % p
		from := (g.me - r + p) % p
		g.c.Send(g.ranks[to], tag, padded[to])
		out[from] = g.c.Recv(g.ranks[from], tag)
	}
	return out
}

// AllToAllFixedInto is AllToAllFixed over caller-owned buffers: send[i]
// and recv[i] must all hold exactly width words (the caller pads once and
// reuses the buffers across calls), and incoming payloads are copied into
// recv via RecvInto so a steady-state loop performs no allocations. The
// wire traffic, metering, and trace labeling are identical to
// AllToAllFixed; the self slot is copied locally without communication.
func (g *Group) AllToAllFixedInto(tag, width int, send, recv [][]float64) {
	g.c.BeginOp("all-to-all")
	defer g.c.EndOp()
	p := g.Size()
	if len(send) != p || len(recv) != p {
		panic(fmt.Sprintf("collective: AllToAllFixedInto with %d/%d buffers for group of %d", len(send), len(recv), p))
	}
	for i := 0; i < p; i++ {
		if len(send[i]) != width || len(recv[i]) != width {
			panic(fmt.Sprintf("collective: AllToAllFixedInto slot %d has %d/%d words, width %d", i, len(send[i]), len(recv[i]), width))
		}
	}
	copy(recv[g.me], send[g.me])
	for r := 1; r < p; r++ {
		to := (g.me + r) % p
		from := (g.me - r + p) % p
		g.c.Send(g.ranks[to], tag, send[to])
		g.c.RecvInto(g.ranks[from], tag, recv[from])
	}
}

// AllGatherV gathers each member's buffer on every member: the result's
// slot i is member i's mine. Buffers may have different lengths.
func (g *Group) AllGatherV(tag int, mine []float64) [][]float64 {
	g.c.BeginOp("all-gather")
	defer g.c.EndOp()
	p := g.Size()
	out := make([][]float64, p)
	out[g.me] = append([]float64(nil), mine...)
	for r := 1; r < p; r++ {
		to := (g.me + r) % p
		from := (g.me - r + p) % p
		g.c.Send(g.ranks[to], tag, mine)
		out[from] = g.c.Recv(g.ranks[from], tag)
	}
	return out
}

// ReduceScatterSum reduces elementwise sums across the group and scatters
// the results: contrib[i] is this member's addend for member i's result,
// and the return value is Σ over members of their contrib[me]. All members
// must pass equal shapes for each destination slot.
func (g *Group) ReduceScatterSum(tag int, contrib [][]float64) []float64 {
	g.c.BeginOp("reduce-scatter")
	defer g.c.EndOp()
	p := g.Size()
	if len(contrib) != p {
		panic(fmt.Sprintf("collective: ReduceScatterSum with %d buffers for group of %d", len(contrib), p))
	}
	acc := append([]float64(nil), contrib[g.me]...)
	for r := 1; r < p; r++ {
		to := (g.me + r) % p
		from := (g.me - r + p) % p
		g.c.Send(g.ranks[to], tag, contrib[to])
		in := g.c.Recv(g.ranks[from], tag)
		if len(in) != len(acc) {
			panic(fmt.Sprintf("collective: ReduceScatterSum shape mismatch: %d vs %d", len(in), len(acc)))
		}
		for i, v := range in {
			acc[i] += v
		}
	}
	return acc
}

// Bcast distributes root's buffer (identified by group index) to all
// members along a binomial tree (⌈log₂ P⌉ rounds). Non-root callers pass
// nil and receive the data; root receives a copy of its own buffer.
func (g *Group) Bcast(tag, root int, data []float64) []float64 {
	g.c.BeginOp("bcast")
	defer g.c.EndOp()
	p := g.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: Bcast root %d of %d", root, p))
	}
	// Work in the rotated space where root is 0. Invariant: at the start
	// of the iteration for a given bit, exactly virtual ranks 0..bit-1
	// hold the data.
	vrank := (g.me - root + p) % p
	if vrank == 0 {
		data = append([]float64(nil), data...)
	}
	for bit := 1; bit < p; bit <<= 1 {
		switch {
		case vrank < bit:
			if vrank+bit < p {
				g.c.Send(g.ranks[(vrank+bit+root)%p], tag, data)
			}
		case vrank < 2*bit:
			data = g.c.Recv(g.ranks[(vrank-bit+root)%p], tag)
		}
	}
	return data
}

// AllReduceSum computes the elementwise sum of every member's buffer on all
// members (reduce to group member 0, then broadcast).
func (g *Group) AllReduceSum(tag int, mine []float64) []float64 {
	g.c.BeginOp("all-reduce")
	defer g.c.EndOp()
	acc := append([]float64(nil), mine...)
	if g.me == 0 {
		for r := 1; r < g.Size(); r++ {
			in := g.c.Recv(g.ranks[r], tag)
			if len(in) != len(acc) {
				panic(fmt.Sprintf("collective: AllReduceSum shape mismatch: %d vs %d", len(in), len(acc)))
			}
			for i, v := range in {
				acc[i] += v
			}
		}
	} else {
		g.c.Send(g.ranks[0], tag, acc)
	}
	return g.Bcast(tag, 0, acc)
}

// GatherV collects every member's buffer on the root (by group index):
// the root's result slot i holds member i's mine; non-root callers receive
// nil.
func (g *Group) GatherV(tag, root int, mine []float64) [][]float64 {
	g.c.BeginOp("gather-v")
	defer g.c.EndOp()
	p := g.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: GatherV root %d of %d", root, p))
	}
	if g.me != root {
		g.c.Send(g.ranks[root], tag, mine)
		return nil
	}
	out := make([][]float64, p)
	out[root] = append([]float64(nil), mine...)
	for i := 0; i < p; i++ {
		if i != root {
			out[i] = g.c.Recv(g.ranks[i], tag)
		}
	}
	return out
}

// ScatterV distributes root's per-member buffers: member i receives
// send[i]. Non-root callers pass nil and get their slice.
func (g *Group) ScatterV(tag, root int, send [][]float64) []float64 {
	g.c.BeginOp("scatter-v")
	defer g.c.EndOp()
	p := g.Size()
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: ScatterV root %d of %d", root, p))
	}
	if g.me != root {
		return g.c.Recv(g.ranks[root], tag)
	}
	if len(send) != p {
		panic(fmt.Sprintf("collective: ScatterV with %d buffers for group of %d", len(send), p))
	}
	for i := 0; i < p; i++ {
		if i != root {
			g.c.Send(g.ranks[i], tag, send[i])
		}
	}
	return append([]float64(nil), send[root]...)
}
