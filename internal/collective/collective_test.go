package collective

import (
	"math"
	"testing"
	"time"

	"repro/internal/machine"
)

// run executes body on p ranks with a deadlock watchdog.
func run(t *testing.T, p int, body func(c *machine.Comm)) *machine.Report {
	t.Helper()
	rep, err := machine.RunWith(p, machine.RunConfig{Timeout: 10 * time.Second}, body)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestWorldGroup(t *testing.T) {
	run(t, 5, func(c *machine.Comm) {
		g := World(c)
		if g.Size() != 5 || g.GroupRank() != c.Rank() || g.GlobalRank(3) != 3 {
			t.Errorf("world group wrong at rank %d", c.Rank())
		}
	})
}

func TestNewGroupValidation(t *testing.T) {
	run(t, 4, func(c *machine.Comm) {
		if c.Rank() != 0 {
			return
		}
		if _, err := NewGroup(c, []int{0, 0, 1}); err == nil {
			t.Error("duplicate ranks accepted")
		}
		if _, err := NewGroup(c, []int{0, 9}); err == nil {
			t.Error("out-of-range rank accepted")
		}
		if _, err := NewGroup(c, []int{1, 2}); err == nil {
			t.Error("non-member caller accepted")
		}
	})
}

func TestAllToAllV(t *testing.T) {
	const p = 6
	run(t, p, func(c *machine.Comm) {
		g := World(c)
		send := make([][]float64, p)
		for i := range send {
			// Rank r sends {100r + i} to member i.
			send[i] = []float64{float64(100*c.Rank() + i)}
		}
		got := g.AllToAllV(0, send)
		for i := range got {
			want := float64(100*i + c.Rank())
			if len(got[i]) != 1 || got[i][0] != want {
				t.Errorf("rank %d slot %d: %v, want %g", c.Rank(), i, got[i], want)
			}
		}
	})
}

func TestAllToAllVSkipsEmpty(t *testing.T) {
	// A symmetric sparse pattern: only adjacent even/odd pairs exchange.
	const p = 4
	rep := run(t, p, func(c *machine.Comm) {
		g := World(c)
		send := make([][]float64, p)
		peer := c.Rank() ^ 1
		send[peer] = []float64{float64(c.Rank()), 0, 0}
		got := g.AllToAllV(0, send)
		if got[peer][0] != float64(peer) {
			t.Errorf("rank %d: got %v", c.Rank(), got[peer])
		}
		for i := range got {
			if i != peer && i != c.Rank() && got[i] != nil {
				t.Errorf("rank %d: unexpected data from %d", c.Rank(), i)
			}
		}
	})
	// Each rank sent exactly 3 words (one message), not p-1 messages.
	for r, w := range rep.SentWords {
		if w != 3 {
			t.Errorf("rank %d sent %d words, want 3", r, w)
		}
	}
}

func TestAllToAllFixedPadsEveryPair(t *testing.T) {
	const p, width = 5, 4
	rep := run(t, p, func(c *machine.Comm) {
		g := World(c)
		send := make([][]float64, p)
		send[(c.Rank()+1)%p] = []float64{1} // almost everything empty
		got := g.AllToAllFixed(0, width, send)
		from := (c.Rank() - 1 + p) % p
		if got[from][0] != 1 {
			t.Errorf("rank %d: payload lost", c.Rank())
		}
		for i := range got {
			if len(got[i]) != width {
				t.Errorf("rank %d slot %d: len %d, want %d", c.Rank(), i, len(got[i]), width)
			}
		}
	})
	// Fixed-width semantics: every rank sends width·(p−1) words regardless
	// of payload — the §7.2 accounting.
	for r, w := range rep.SentWords {
		if w != width*(p-1) {
			t.Errorf("rank %d sent %d words, want %d", r, w, width*(p-1))
		}
	}
}

func TestAllGatherV(t *testing.T) {
	const p = 7
	run(t, p, func(c *machine.Comm) {
		g := World(c)
		mine := make([]float64, c.Rank()+1) // ragged sizes
		for i := range mine {
			mine[i] = float64(c.Rank())
		}
		got := g.AllGatherV(0, mine)
		for i := range got {
			if len(got[i]) != i+1 || (i > 0 && got[i][0] != float64(i)) {
				t.Errorf("rank %d slot %d: %v", c.Rank(), i, got[i])
			}
		}
	})
}

func TestReduceScatterSum(t *testing.T) {
	const p = 5
	run(t, p, func(c *machine.Comm) {
		g := World(c)
		contrib := make([][]float64, p)
		for i := range contrib {
			contrib[i] = []float64{float64(c.Rank() + i), 1}
		}
		got := g.ReduceScatterSum(0, contrib)
		// Σ_r (r + me) = p·me + p(p-1)/2; second slot sums to p.
		want0 := float64(p*c.Rank() + p*(p-1)/2)
		if math.Abs(got[0]-want0) > 1e-12 || math.Abs(got[1]-float64(p)) > 1e-12 {
			t.Errorf("rank %d: got %v, want [%g %d]", c.Rank(), got, want0, p)
		}
	})
}

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 13} {
		for root := 0; root < p; root += (p + 2) / 3 {
			rep := run(t, p, func(c *machine.Comm) {
				g := World(c)
				var data []float64
				if c.Rank() == root {
					data = []float64{3, 1, 4}
				}
				got := g.Bcast(0, root, data)
				if len(got) != 3 || got[0] != 3 || got[2] != 4 {
					t.Errorf("p=%d root=%d rank %d: got %v", p, root, c.Rank(), got)
				}
			})
			// Binomial tree latency: no rank sends more than ceil(log2 p)
			// messages.
			logp := 0
			for 1<<logp < p {
				logp++
			}
			if rep.MaxSentMsgs() > int64(logp) {
				t.Errorf("p=%d root=%d: max %d messages, want <= %d", p, root, rep.MaxSentMsgs(), logp)
			}
		}
	}
}

func TestAllReduceSum(t *testing.T) {
	const p = 6
	run(t, p, func(c *machine.Comm) {
		g := World(c)
		got := g.AllReduceSum(0, []float64{float64(c.Rank()), 1})
		if got[0] != float64(p*(p-1)/2) || got[1] != float64(p) {
			t.Errorf("rank %d: got %v", c.Rank(), got)
		}
	})
}

func TestSubGroupCollectives(t *testing.T) {
	// Two disjoint groups run independent collectives concurrently.
	const p = 8
	run(t, p, func(c *machine.Comm) {
		var ranks []int
		for r := c.Rank() % 2; r < p; r += 2 {
			ranks = append(ranks, r)
		}
		g, err := NewGroup(c, ranks)
		if err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
			return
		}
		got := g.AllReduceSum(0, []float64{1})
		if got[0] != float64(p/2) {
			t.Errorf("rank %d: group sum %g, want %d", c.Rank(), got[0], p/2)
		}
	})
}

func TestOverlappingGroupsSequential(t *testing.T) {
	// Row-block groups of Algorithm 5 overlap; verify two overlapping
	// groups can run collectives one after another with distinct tags.
	const p = 5
	run(t, p, func(c *machine.Comm) {
		mk := func(rs []int) *Group {
			for _, r := range rs {
				if r == c.Rank() {
					g, err := NewGroup(c, rs)
					if err != nil {
						t.Errorf("%v", err)
					}
					return g
				}
			}
			return nil
		}
		if g := mk([]int{0, 1, 2, 3}); g != nil {
			got := g.AllReduceSum(1, []float64{1})
			if got[0] != 4 {
				t.Errorf("group A sum %g", got[0])
			}
		}
		c.Barrier()
		if g := mk([]int{2, 3, 4}); g != nil {
			got := g.AllReduceSum(2, []float64{1})
			if got[0] != 3 {
				t.Errorf("group B sum %g", got[0])
			}
		}
	})
}

func TestAllToAllVConservation(t *testing.T) {
	const p = 9
	rep := run(t, p, func(c *machine.Comm) {
		g := World(c)
		send := make([][]float64, p)
		for i := range send {
			send[i] = make([]float64, (c.Rank()+i)%3+1)
		}
		g.AllToAllV(0, send)
	})
	var sent, recv int64
	for i := 0; i < p; i++ {
		sent += rep.SentWords[i]
		recv += rep.RecvWords[i]
	}
	if sent != recv {
		t.Fatalf("sent %d != recv %d", sent, recv)
	}
}

func BenchmarkAllToAllFixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := machine.RunWith(16, machine.RunConfig{Timeout: time.Minute}, func(c *machine.Comm) {
			g := World(c)
			send := make([][]float64, 16)
			g.AllToAllFixed(0, 32, send)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestGatherVScatterV(t *testing.T) {
	const p, root = 5, 2
	run(t, p, func(c *machine.Comm) {
		g := World(c)
		mine := []float64{float64(c.Rank() * 10)}
		got := g.GatherV(0, root, mine)
		if c.Rank() == root {
			for i := 0; i < p; i++ {
				if len(got[i]) != 1 || got[i][0] != float64(i*10) {
					t.Errorf("gather slot %d: %v", i, got[i])
				}
			}
			send := make([][]float64, p)
			for i := range send {
				send[i] = []float64{float64(i + 100)}
			}
			mine2 := g.ScatterV(1, root, send)
			if mine2[0] != float64(root+100) {
				t.Errorf("root scatter: %v", mine2)
			}
		} else {
			if got != nil {
				t.Errorf("non-root gather returned data")
			}
			mine2 := g.ScatterV(1, root, nil)
			if len(mine2) != 1 || mine2[0] != float64(c.Rank()+100) {
				t.Errorf("rank %d scatter: %v", c.Rank(), mine2)
			}
		}
	})
}

func TestGatherVBadRootPanics(t *testing.T) {
	_, err := machine.RunWith(2, machine.RunConfig{Timeout: time.Second}, func(c *machine.Comm) {
		World(c).GatherV(0, 5, nil)
	})
	if err == nil {
		t.Fatal("bad root accepted")
	}
}
