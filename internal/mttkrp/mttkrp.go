// Package mttkrp implements the symmetric Matricized-Tensor Times
// Khatri-Rao Product, the second future-work item of the paper (§8):
//
//	Y_iℓ = Σ_{j,k} a_ijk · X_jℓ · X_kℓ
//
// for a symmetric 3-tensor A and an n×r factor matrix X. For each fixed
// column ℓ this is exactly an STTSV computation, which is how the paper
// proposes to generalize its lower bound and algorithm.
//
// Two sequential realizations are provided:
//
//   - Columnwise: r independent STTSV calls (Algorithm 4 per column) — r
//     passes over the tensor;
//   - Fused: a single pass over the packed tensor updating all r columns
//     per element — the memory-traffic-friendly variant (the tensor, the
//     dominant operand at n³/6 words, is read once instead of r times).
//
// Both perform r·n²(n+1)/2 ternary multiplications; the ablation benchmark
// quantifies the traffic difference.
package mttkrp

import (
	"fmt"

	"repro/internal/la"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// Columnwise computes Y column by column with r STTSV calls.
func Columnwise(a *tensor.Symmetric, x *la.Matrix, stats *sttsv.Stats) *la.Matrix {
	if a.N != x.Rows {
		panic(fmt.Sprintf("mttkrp: tensor dimension %d, factor rows %d", a.N, x.Rows))
	}
	y := la.NewMatrix(x.Rows, x.Cols)
	for l := 0; l < x.Cols; l++ {
		y.SetCol(l, sttsv.Packed(a, x.Col(l), stats))
	}
	return y
}

// Fused computes Y in a single pass over the packed tensor, applying the
// Algorithm 4 update rules to all r columns at each element.
func Fused(a *tensor.Symmetric, x *la.Matrix, stats *sttsv.Stats) *la.Matrix {
	n, r := a.N, x.Cols
	if a.N != x.Rows {
		panic(fmt.Sprintf("mttkrp: tensor dimension %d, factor rows %d", a.N, x.Rows))
	}
	y := la.NewMatrix(n, r)
	xd := x.Data
	yd := y.Data
	idx := 0
	var count int64
	for i := 0; i < n; i++ {
		xi := xd[i*r : (i+1)*r]
		yi := yd[i*r : (i+1)*r]
		for j := 0; j < i; j++ {
			xj := xd[j*r : (j+1)*r]
			yj := yd[j*r : (j+1)*r]
			for k := 0; k < j; k++ {
				v := a.Data[idx]
				idx++
				if v == 0 {
					count += 3
					continue
				}
				xk := xd[k*r : (k+1)*r]
				yk := yd[k*r : (k+1)*r]
				v2 := 2 * v
				for l := 0; l < r; l++ {
					yi[l] += v2 * xj[l] * xk[l]
					yj[l] += v2 * xi[l] * xk[l]
					yk[l] += v2 * xi[l] * xj[l]
				}
				count += 3
			}
			// k == j: i > j == k.
			v := a.Data[idx]
			idx++
			for l := 0; l < r; l++ {
				yi[l] += v * xj[l] * xj[l]
				yj[l] += 2 * v * xi[l] * xj[l]
			}
			count += 2
		}
		// j == i row: k < i gives i == j > k; k == i central.
		for k := 0; k < i; k++ {
			v := a.Data[idx]
			idx++
			xk := xd[k*r : (k+1)*r]
			yk := yd[k*r : (k+1)*r]
			for l := 0; l < r; l++ {
				yi[l] += 2 * v * xi[l] * xk[l]
				yk[l] += v * xi[l] * xi[l]
			}
		}
		count += 2 * int64(i)
		v := a.Data[idx]
		idx++
		for l := 0; l < r; l++ {
			yi[l] += v * xi[l] * xi[l]
		}
		count++
	}
	if stats != nil {
		stats.TernaryMults += count * int64(r)
	}
	return y
}

// TernaryCount returns the exact operation count of symmetric MTTKRP:
// r·n²(n+1)/2 ternary multiplications.
func TernaryCount(n, r int) int64 {
	return int64(r) * sttsv.PackedTernaryCount(n)
}
