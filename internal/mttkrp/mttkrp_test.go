package mttkrp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

const tol = 1e-10

func randSetup(n, r int, seed int64) (*tensor.Symmetric, *la.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	a := tensor.Random(n, rng)
	x := la.NewMatrix(n, r)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return a, x
}

func TestColumnwiseMatchesDefinition(t *testing.T) {
	// Brute-force Y_il = Σ_jk a_ijk X_jl X_kl over the dense cube.
	n, r := 7, 3
	a, x := randSetup(n, r, 1)
	d := a.Dense()
	y := Columnwise(a, x, nil)
	for i := 0; i < n; i++ {
		for l := 0; l < r; l++ {
			want := 0.0
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					want += d.At(i, j, k) * x.At(j, l) * x.At(k, l)
				}
			}
			if math.Abs(y.At(i, l)-want) > tol {
				t.Fatalf("Y[%d,%d] = %g, want %g", i, l, y.At(i, l), want)
			}
		}
	}
}

func TestFusedMatchesColumnwise(t *testing.T) {
	for _, c := range []struct{ n, r int }{{5, 1}, {9, 4}, {16, 7}, {1, 3}} {
		a, x := randSetup(c.n, c.r, int64(c.n*10+c.r))
		want := Columnwise(a, x, nil)
		got := Fused(a, x, nil)
		for i := range want.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > tol {
				t.Fatalf("n=%d r=%d: Fused differs at %d: %g vs %g",
					c.n, c.r, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestOperationCounts(t *testing.T) {
	n, r := 10, 4
	a, x := randSetup(n, r, 3)
	var sc, sf sttsv.Stats
	Columnwise(a, x, &sc)
	Fused(a, x, &sf)
	want := TernaryCount(n, r)
	if sc.TernaryMults != want {
		t.Errorf("Columnwise counted %d, want %d", sc.TernaryMults, want)
	}
	if sf.TernaryMults != want {
		t.Errorf("Fused counted %d, want %d", sf.TernaryMults, want)
	}
}

func TestSingleColumnIsSTTSV(t *testing.T) {
	// §8: for fixed ℓ the computation is exactly an STTSV.
	n := 11
	a, x := randSetup(n, 1, 4)
	y := Fused(a, x, nil)
	want := sttsv.Packed(a, x.Col(0), nil)
	for i := 0; i < n; i++ {
		if math.Abs(y.At(i, 0)-want[i]) > tol {
			t.Fatalf("column-0 mismatch at %d", i)
		}
	}
}

func TestPanicsOnMismatch(t *testing.T) {
	a := tensor.NewSymmetric(4)
	x := la.NewMatrix(5, 2)
	for name, fn := range map[string]func(){
		"Columnwise": func() { Columnwise(a, x, nil) },
		"Fused":      func() { Fused(a, x, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkColumnwise(b *testing.B) {
	a, x := randSetup(64, 8, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Columnwise(a, x, nil)
	}
}

func BenchmarkFused(b *testing.B) {
	// Ablation: one tensor pass for all 8 columns vs 8 passes.
	a, x := randSetup(64, 8, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fused(a, x, nil)
	}
}
