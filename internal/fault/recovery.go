package fault

import (
	"sort"
	"sync"

	"repro/internal/machine"
)

// CrashRegistry remembers which ranks have already fired their scheduled
// crash, shared across every transport incarnation of a recovering
// session — the original launch, respawned ranks, and degraded
// relaunches all consult the same registry. Without it a respawned
// rank's fresh injector would reset its delivery clock and re-fire the
// same crash forever, so no retry budget could ever converge.
type CrashRegistry struct {
	mu    sync.Mutex
	fired map[int]bool
}

// claim consumes rank's one crash allowance; false if already fired.
func (cr *CrashRegistry) claim(rank int) bool {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	if cr.fired[rank] {
		return false
	}
	if cr.fired == nil {
		cr.fired = make(map[int]bool)
	}
	cr.fired[rank] = true
	return true
}

// Fired lists the ranks whose crash has fired, sorted.
func (cr *CrashRegistry) Fired() []int {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	out := make([]int, 0, len(cr.fired))
	for r := range cr.fired {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// InjectRecoverable is Inject with the plan's crash faults routed through
// reg: each rank's crash fires at most once for the registry's lifetime,
// however many times the rank's transport is rebuilt. A nil reg is plain
// Inject.
func InjectRecoverable(w machine.Wire, plan Plan, reg *CrashRegistry) machine.Wire {
	iw := Inject(w, plan)
	if i, ok := iw.(*injector); ok {
		i.reg = reg
	}
	return iw
}

// TransportRecoverable builds the transport factory for a crash-recovery
// session: the reliable protocol over the plan's injected wire, with all
// crash faults sharing one registry so a recovered rank stays recovered
// across respawns and degraded relaunches.
func TransportRecoverable(plan Plan, opt ReliableOptions) machine.TransportFactory {
	reg := &CrashRegistry{}
	return func(w machine.Wire) machine.Transport {
		return NewReliable(InjectRecoverable(w, plan, reg), opt)
	}
}
