package fault_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/machine"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestParsePlan(t *testing.T) {
	p, err := fault.ParsePlan("seed=42,drop=0.1,dup=0.05,reorder=0.2,corrupt=0.02,stall=0.01,stalldelay=2ms,crash=3@40,crash=1@7,maxfaults=100")
	if err != nil {
		t.Fatal(err)
	}
	want := fault.Plan{
		Seed: 42, Drop: 0.1, Dup: 0.05, Reorder: 0.2, Corrupt: 0.02,
		Stall: 0.01, StallDelay: 2 * time.Millisecond,
		Crash: map[int]int{3: 40, 1: 7}, MaxFaults: 100,
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if !p.Active() {
		t.Error("parsed plan not active")
	}
	// String() renders a spec ParsePlan accepts and round-trips.
	q, err := fault.ParsePlan(p.String())
	if err != nil {
		t.Fatalf("reparsing %q: %v", p.String(), err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("round trip %+v != %+v", q, p)
	}
}

func TestParsePlanEmptyAndErrors(t *testing.T) {
	if p, err := fault.ParsePlan(""); err != nil || p.Active() {
		t.Errorf("empty spec: plan %+v err %v", p, err)
	}
	for _, bad := range []string{"drop", "drop=2", "drop=-0.1", "wibble=1", "crash=3", "crash=x@1", "crash=-1@5", "stalldelay=zz"} {
		if _, err := fault.ParsePlan(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// recordWire captures deliveries for injector unit tests.
type recordWire struct {
	rank, size int
	delivered  []machine.Packet
}

func (w *recordWire) Rank() int                      { return w.rank }
func (w *recordWire) Size() int                      { return w.size }
func (w *recordWire) Deliver(p machine.Packet)       { w.delivered = append(w.delivered, p) }
func (w *recordWire) Pull() machine.Packet           { panic("recordWire: Pull") }
func (w *recordWire) Pending([]machine.PendingEntry) {}
func (w *recordWire) Aborting() bool                 { return false }
func (w *recordWire) Epoch() int64                   { return 0 }
func (w *recordWire) PullTimeout(time.Duration) (machine.Packet, bool) {
	return machine.Packet{}, false
}

func injectSequence(seed int64, n int) []machine.Packet {
	rec := &recordWire{rank: 0, size: 4}
	w := fault.Inject(rec, fault.Plan{Seed: seed, Drop: 0.3, Dup: 0.2, Reorder: 0.3, Corrupt: 0.2})
	for i := 0; i < n; i++ {
		w.Deliver(machine.Packet{From: 0, To: 1 + i%3, Tag: i, Seq: i + 1,
			Kind: machine.PacketData, Data: []float64{float64(i), float64(i * i)}})
	}
	return rec.delivered
}

func TestInjectorDeterministic(t *testing.T) {
	a := injectSequence(7, 200)
	b := injectSequence(7, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, same delivery sequence expected")
	}
	c := injectSequence(8, 200)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault patterns")
	}
	if len(a) == 200 {
		t.Error("no faults fired across 200 packets at these probabilities")
	}
}

func TestInjectorMaxFaultsBudget(t *testing.T) {
	rec := &recordWire{rank: 0, size: 2}
	w := fault.Inject(rec, fault.Plan{Seed: 3, Drop: 1, MaxFaults: 5})
	for i := 0; i < 50; i++ {
		w.Deliver(machine.Packet{From: 0, To: 1, Kind: machine.PacketData, Data: []float64{1}})
	}
	if got := len(rec.delivered); got != 45 {
		t.Fatalf("delivered %d of 50 with a 5-drop budget, want 45", got)
	}
}

func TestInjectorCrash(t *testing.T) {
	rec := &recordWire{rank: 4, size: 8}
	w := fault.Inject(rec, fault.Plan{Crash: map[int]int{4: 3}})
	for i := 0; i < 2; i++ {
		w.Deliver(machine.Packet{From: 4, To: 0, Kind: machine.PacketData})
	}
	defer func() {
		r := recover()
		ce, ok := r.(machine.CrashError)
		if !ok {
			t.Fatalf("panic value %T (%v), want machine.CrashError", r, r)
		}
		if ce.Rank != 4 || ce.Op != 3 {
			t.Fatalf("crash = %+v, want rank 4 op 3", ce)
		}
	}()
	w.Deliver(machine.Packet{From: 4, To: 0, Kind: machine.PacketData})
}

// reliableRun executes a ping-pong workload under the given plan and
// returns the report; every payload is verified inside the body.
func reliableRun(t *testing.T, factory machine.TransportFactory) *machine.Report {
	t.Helper()
	const rounds = 40
	rep, err := machine.RunWith(2, machine.RunConfig{Transport: factory, Timeout: time.Minute}, func(c *machine.Comm) {
		for i := 0; i < rounds; i++ {
			payload := []float64{float64(i), float64(c.Rank()), float64(i * 31)}
			got := c.Exchange(1-c.Rank(), i%3, payload)
			if len(got) != 3 || got[0] != float64(i) || got[1] != float64(1-c.Rank()) || got[2] != float64(i*31) {
				t.Errorf("rank %d round %d received %v", c.Rank(), i, got)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestReliableUnderEachFaultClass(t *testing.T) {
	clean := reliableRun(t, nil)
	for _, plan := range []fault.Plan{
		{Seed: 11, Drop: 0.4},
		{Seed: 12, Dup: 0.5},
		{Seed: 13, Reorder: 0.5},
		{Seed: 14, Corrupt: 0.4},
		{Seed: 15, Drop: 0.15, Dup: 0.15, Reorder: 0.15, Corrupt: 0.15, Stall: 0.05, StallDelay: 50 * time.Microsecond},
	} {
		plan := plan
		t.Run(plan.String(), func(t *testing.T) {
			rep := reliableRun(t, fault.Transport(plan))
			if !reflect.DeepEqual(rep.SentWords, clean.SentWords) || !reflect.DeepEqual(rep.RecvWords, clean.RecvWords) ||
				!reflect.DeepEqual(rep.SentMsgs, clean.SentMsgs) || !reflect.DeepEqual(rep.RecvMsgs, clean.RecvMsgs) {
				t.Errorf("logical meters differ from fault-free run:\n got %v/%v\nwant %v/%v",
					rep.SentWords, rep.SentMsgs, clean.SentWords, clean.SentMsgs)
			}
			if plan.Drop > 0 || plan.Corrupt > 0 {
				if rep.TotalWireSentWords() <= rep.TotalSentWords() {
					t.Errorf("expected retransmission overhead, wire %dw vs logical %dw",
						rep.TotalWireSentWords(), rep.TotalSentWords())
				}
			}
		})
	}
}

func TestReliableRestoresOrder(t *testing.T) {
	// One-directional stream under heavy reordering: FIFO per (sender,
	// tag) must survive.
	const msgs = 60
	_, err := machine.RunWith(2, machine.RunConfig{
		Transport: fault.Transport(fault.Plan{Seed: 21, Reorder: 0.6}),
		Timeout:   time.Minute,
	}, func(c *machine.Comm) {
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				c.Send(1, i%2, []float64{float64(i)})
			}
		} else {
			seen := [2]int{0, 1}
			for i := 0; i < msgs; i++ {
				tag := i % 2
				got := c.Recv(0, tag)
				if int(got[0]) != seen[tag] {
					t.Errorf("tag %d: received %v, want %d", tag, got, seen[tag])
				}
				seen[tag] += 2
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnreachablePeerIsStructured(t *testing.T) {
	// Rank 1 exits without ever receiving; rank 0's bounded retransmit
	// budget must exhaust into a structured UnreachableError.
	_, err := machine.RunWith(2, machine.RunConfig{
		Transport: fault.TransportOpts(fault.Plan{}, fault.ReliableOptions{
			MaxAttempts: 3, AckTimeout: time.Millisecond, MaxAckTimeout: 2 * time.Millisecond,
		}),
	}, func(c *machine.Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, []float64{1})
		}
	})
	var ue machine.UnreachableError
	if !errors.As(err, &ue) {
		t.Fatalf("error %T (%v), want machine.UnreachableError", err, err)
	}
	if ue.Rank != 0 || ue.Peer != 1 || ue.Attempts != 3 {
		t.Errorf("unreachable = %+v, want rank 0 → peer 1 after 3 attempts", ue)
	}
}
