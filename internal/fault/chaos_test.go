package fault_test

// The chaos-conformance suite: for a grid of seeded fault schedules ×
// parallel algorithms, the reliable transport must reproduce the
// fault-free run exactly — bit-identical results AND identical logical
// per-rank communication meters (the quantities compared against the
// paper's lower bounds) — with all recovery traffic confined to the wire
// meters. A rank-crash schedule must surface as a structured
// DeadlockError/CrashError naming the affected ranks, never a hang or a
// bare timeout.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/la"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/sttsv"
	"repro/internal/tensor"
)

// chaosAlgo runs one parallel algorithm under a machine configuration and
// returns its flattened numeric result plus the metered report.
type chaosAlgo struct {
	name string
	run  func(t *testing.T, cfg machine.RunConfig) ([]float64, *machine.Report)
}

func chaosSetup(t *testing.T) (*partition.Tetrahedral, *tensor.Symmetric, []float64, int) {
	t.Helper()
	part, err := partition.NewSpherical(2) // m=5, P=10
	if err != nil {
		t.Fatal(err)
	}
	const b = 3
	n := part.M * b
	rng := newRng(77)
	a := tensor.Random(n, rng)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return part, a, x, b
}

func chaosAlgos(t *testing.T) []chaosAlgo {
	part, a, x, b := chaosSetup(t)
	n := len(x)
	xmat := la.NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		xmat.Set(i, 0, x[i])
		xmat.Set(i, 1, x[(i+3)%n])
	}
	return []chaosAlgo{
		{"alg5-p2p", func(t *testing.T, cfg machine.RunConfig) ([]float64, *machine.Report) {
			res, err := parallel.Run(a, x, parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P, Machine: cfg})
			if err != nil {
				t.Fatal(err)
			}
			return res.Y, res.Report
		}},
		{"alg5-alltoall", func(t *testing.T, cfg machine.RunConfig) ([]float64, *machine.Report) {
			res, err := parallel.Run(a, x, parallel.Options{Part: part, B: b, Wiring: parallel.WiringAllToAll, Machine: cfg})
			if err != nil {
				t.Fatal(err)
			}
			return res.Y, res.Report
		}},
		{"mttkrp-r2", func(t *testing.T, cfg machine.RunConfig) ([]float64, *machine.Report) {
			y, res, err := parallel.RunMTTKRP(a, xmat, 2, parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P, Machine: cfg})
			if err != nil {
				t.Fatal(err)
			}
			flat := make([]float64, 0, n*2)
			for i := 0; i < n; i++ {
				flat = append(flat, y.At(i, 0), y.At(i, 1))
			}
			return flat, res.Report
		}},
		{"row-baseline", func(t *testing.T, cfg machine.RunConfig) ([]float64, *machine.Report) {
			res, err := parallel.RunRowBaselineWith(a, x, 6, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res.Y, res.Report
		}},
		{"sequence-baseline", func(t *testing.T, cfg machine.RunConfig) ([]float64, *machine.Report) {
			res, err := parallel.RunSequenceBaselineWith(a, x, 5, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res.Y, res.Report
		}},
		{"power-method", func(t *testing.T, cfg machine.RunConfig) ([]float64, *machine.Report) {
			res, err := parallel.RunPowerMethod(a,
				parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P, Machine: cfg},
				parallel.PowerOptions{MaxIter: 5, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			return append(append([]float64(nil), res.X...), res.Lambda), res.Report
		}},
	}
}

// The ≥4 distinct benign schedules of the acceptance grid, plus a mixed
// one that layers corruption over everything else.
var chaosPlans = []fault.Plan{
	{Seed: 101, Drop: 0.2},
	{Seed: 202, Dup: 0.25},
	{Seed: 303, Reorder: 0.35},
	{Seed: 404, Stall: 0.15, StallDelay: 100 * time.Microsecond},
	{Seed: 505, Drop: 0.08, Dup: 0.08, Reorder: 0.08, Corrupt: 0.1},
}

func TestChaosConformance(t *testing.T) {
	for _, algo := range chaosAlgos(t) {
		algo := algo
		t.Run(algo.name, func(t *testing.T) {
			t.Parallel()
			wantY, wantRep := algo.run(t, machine.RunConfig{})
			for _, plan := range chaosPlans {
				plan := plan
				t.Run(plan.String(), func(t *testing.T) {
					gotY, gotRep := algo.run(t, machine.RunConfig{
						Transport: fault.Transport(plan),
						Timeout:   time.Minute, // watchdog armed: a protocol bug fails fast with diagnostics
					})
					if len(gotY) != len(wantY) {
						t.Fatalf("result length %d, want %d", len(gotY), len(wantY))
					}
					for i := range wantY {
						if gotY[i] != wantY[i] {
							t.Fatalf("result[%d] = %g differs from fault-free %g", i, gotY[i], wantY[i])
						}
					}
					assertSameLogicalMeters(t, wantRep, gotRep)
					if got, want := gotRep.TotalWireSentWords(), gotRep.TotalSentWords(); got < want {
						t.Errorf("wire words %d below logical words %d", got, want)
					}
				})
			}
		})
	}
}

func assertSameLogicalMeters(t *testing.T, want, got *machine.Report) {
	t.Helper()
	check := func(name string, w, g []int64) {
		if len(w) != len(g) {
			t.Fatalf("%s: %d ranks vs %d", name, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Errorf("%s[rank %d] = %d under faults, %d fault-free", name, i, g[i], w[i])
			}
		}
	}
	check("SentWords", want.SentWords, got.SentWords)
	check("RecvWords", want.RecvWords, got.RecvWords)
	check("SentMsgs", want.SentMsgs, got.SentMsgs)
	check("RecvMsgs", want.RecvMsgs, got.RecvMsgs)
}

// TestChaosStallDirect: a stall-only schedule preserves delivery, so even
// the unrepaired direct transport must agree with the fault-free run.
func TestChaosStallDirect(t *testing.T) {
	part, a, x, b := chaosSetup(t)
	want := sttsv.Packed(a, x, nil)
	res, err := parallel.Run(a, x, parallel.Options{
		Part: part, B: b, Wiring: parallel.WiringP2P,
		Machine: machine.RunConfig{
			Transport: fault.Unreliable(fault.Plan{Seed: 9, Stall: 0.2, StallDelay: 50 * time.Microsecond}),
			Timeout:   time.Minute,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if diff := res.Y[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("Y[%d] differs by %g under stall-only faults", i, diff)
		}
	}
	if res.Report.OverheadWords() != 0 {
		t.Errorf("stall-only direct run has %d overhead words, want 0", res.Report.OverheadWords())
	}
}

// TestChaosCrash: a rank-crash schedule must produce a structured
// DeadlockError naming the crashed rank and the survivors' wait states —
// not a hang and not a bare "timed out" string.
func TestChaosCrash(t *testing.T) {
	part, a, x, b := chaosSetup(t)
	_, err := parallel.Run(a, x, parallel.Options{
		Part: part, B: b, Wiring: parallel.WiringP2P,
		Machine: machine.RunConfig{
			Transport: fault.TransportOpts(
				fault.Plan{Seed: 1, Crash: map[int]int{2: 5}},
				// A retry budget far beyond the watchdog window, so the
				// stall monitor — not retry exhaustion — classifies the
				// failure.
				fault.ReliableOptions{MaxAttempts: 1 << 20},
			),
			Timeout: 500 * time.Millisecond,
		},
	})
	if err == nil {
		t.Fatal("crash schedule completed without error")
	}
	var dead *machine.DeadlockError
	if !errors.As(err, &dead) {
		t.Fatalf("error %T is not a *machine.DeadlockError: %v", err, err)
	}
	if len(dead.Crashed) != 1 || dead.Crashed[0] != 2 {
		t.Errorf("crashed ranks %v, want [2]", dead.Crashed)
	}
	if len(dead.Waits) == 0 {
		t.Error("no blocked-rank diagnostics in DeadlockError")
	}
	for _, w := range dead.Waits {
		if w.Rank == 2 {
			t.Errorf("crashed rank 2 also listed as waiting: %+v", w)
		}
		if w.Kind != machine.BlockSend && w.Kind != machine.BlockRecv && w.Kind != machine.BlockBarrier {
			t.Errorf("rank %d has unexpected wait kind %v", w.Rank, w.Kind)
		}
	}
}

// TestChaosCrashAllToAll: the collective wiring must fail just as
// legibly.
func TestChaosCrashAllToAll(t *testing.T) {
	part, a, x, b := chaosSetup(t)
	_, err := parallel.Run(a, x, parallel.Options{
		Part: part, B: b, Wiring: parallel.WiringAllToAll,
		Machine: machine.RunConfig{
			Transport: fault.TransportOpts(
				fault.Plan{Seed: 4, Crash: map[int]int{7: 3}},
				fault.ReliableOptions{MaxAttempts: 1 << 20},
			),
			Timeout: 500 * time.Millisecond,
		},
	})
	var dead *machine.DeadlockError
	if !errors.As(err, &dead) {
		t.Fatalf("error %T is not a *machine.DeadlockError: %v", err, err)
	}
	if len(dead.Crashed) != 1 || dead.Crashed[0] != 7 {
		t.Errorf("crashed ranks %v, want [7]", dead.Crashed)
	}
}
