package fault

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/machine"
)

// Inject wraps a rank's raw wire endpoint with the plan's fault
// injectors. Faults fire on the delivery path (the sender's side of the
// wire), which keeps them deterministic: each rank's deliveries happen in
// its own program order, and each rank draws from its own PRNG seeded by
// (Seed, rank). Acks and retransmissions pass through the same injector
// as first transmissions — recovery traffic is not privileged.
//
// An injected wire violates the delivery guarantees the direct transport
// assumes; pair it with the reliable transport (see Transport) unless the
// plan is stall-only, the one fault class that preserves delivery.
func Inject(w machine.Wire, plan Plan) machine.Wire {
	if !plan.Active() {
		return w
	}
	return &injector{
		Wire: w,
		plan: plan,
		rng:  rand.New(rand.NewSource(plan.Seed ^ (0x9e3779b97f4a7c * int64(w.Rank()+1)))),
	}
}

type injector struct {
	machine.Wire
	plan   Plan
	rng    *rand.Rand
	ops    int            // Deliver calls so far (crash clock)
	faults int            // injected faults so far (MaxFaults budget)
	reg    *CrashRegistry // non-nil: crashes fire once per rank per registry
	held   *machine.Packet
}

// budget consumes one fault from the per-rank allowance.
func (i *injector) budget() bool {
	if i.plan.MaxFaults > 0 && i.faults >= i.plan.MaxFaults {
		return false
	}
	i.faults++
	return true
}

func (i *injector) Deliver(pkt machine.Packet) {
	i.ops++
	if at, ok := i.plan.Crash[i.Rank()]; ok && i.ops >= at {
		if i.reg == nil || i.reg.claim(i.Rank()) {
			panic(machine.CrashError{Rank: i.Rank(), Op: i.ops})
		}
	}
	// Draw every decision up front so the random stream advances the
	// same way regardless of which faults fire.
	rDrop := i.rng.Float64()
	rDup := i.rng.Float64()
	rReorder := i.rng.Float64()
	rCorrupt := i.rng.Float64()
	rStall := i.rng.Float64()
	rReset := i.rng.Float64()

	if rStall < i.plan.Stall && i.budget() {
		d := i.plan.StallDelay
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	}

	var out []machine.Packet
	if rDrop < i.plan.Drop && i.budget() {
		// Dropped: the packet vanishes before reaching the wire.
	} else if rReset < i.plan.Reset && i.budget() {
		// Connection reset: the simulated wire has no connections to tear,
		// so the packet is simply lost. The socket chaos layer
		// (internal/netwire) realizes the same plan key as a torn frame
		// plus a closed connection.
	} else {
		if rCorrupt < i.plan.Corrupt && pkt.Kind == machine.PacketData && len(pkt.Data) > 0 && i.budget() {
			pkt.Data = corrupt(pkt.Data, i.ops)
		}
		out = append(out, pkt)
		if rDup < i.plan.Dup && i.budget() {
			// The duplicate gets its own payload and must not carry the
			// Recycle mark: if both copies aliased one poolable buffer, the
			// receiver could recycle it after the first delivery and the
			// second would read reused memory.
			dup := pkt
			if len(pkt.Data) > 0 {
				dup.Data = append([]float64(nil), pkt.Data...)
			}
			dup.Recycle = false
			out = append(out, dup)
		}
	}
	if i.held != nil {
		// Deliver the held packet after the current one: the swap is the
		// reordering. Flushing on every call bounds the delay to one
		// delivery, so a held packet can never be lost outright.
		out = append(out, *i.held)
		i.held = nil
	} else if len(out) == 1 && rReorder < i.plan.Reorder && i.budget() {
		held := out[0]
		i.held = &held
		out = nil
	}
	for _, p := range out {
		i.Wire.Deliver(p)
	}
}

// corrupt returns a copy of data with one element bit-flipped (sign and
// low mantissa bit), leaving the caller's buffer — which a reliable
// transport may retransmit — intact.
func corrupt(data []float64, salt int) []float64 {
	cp := append([]float64(nil), data...)
	idx := salt % len(cp)
	cp[idx] = math.Float64frombits(math.Float64bits(cp[idx]) ^ 0x8000000000000001)
	return cp
}

// Unreliable is a transport factory that runs the plain direct transport
// over an injected wire: faults hit the algorithm unrepaired. Useful for
// stall-only plans (delay never violates delivery, so results stay
// exact) and for demonstrating why the reliable transport exists.
func Unreliable(plan Plan) machine.TransportFactory {
	return func(w machine.Wire) machine.Transport {
		return machine.NewDirectTransport(Inject(w, plan))
	}
}
