package fault_test

// The chaos-recovery suite: for a grid of seeded crash schedules ×
// wirings × partition sizes, a session opened with Options.Recovery must
// absorb rank deaths mid-run — respawn the dead ranks, fence the stale
// wire traffic behind a new epoch, roll every rank back to the last
// checkpoint, and replay — and still reproduce the crash-free session
// bit-identically: same Y bits, same per-phase meters, same logical
// per-rank communication counts. All recovery work is visible only on
// the wire meters, in RecoveryStats, and in the obs trace markers.

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/la"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// recoveryPlans are the seeded crash schedules of the acceptance grid:
// an early mid-operation crash, a late crash (second or third Apply,
// depending on machine size), a multi-rank crash, and a crash layered
// over packet loss (so recovery interleaves with retransmission).
var recoveryPlans = []fault.Plan{
	{Seed: 1, Crash: map[int]int{1: 4}},
	{Seed: 2, Crash: map[int]int{2: 60}},
	{Seed: 3, Crash: map[int]int{0: 10, 3: 25}},
	{Seed: 4, Drop: 0.05, Crash: map[int]int{1: 8}},
}

// recoverySetup builds a small deterministic problem for partition
// parameter q plus three distinct input vectors.
func recoverySetup(t *testing.T, q int) (*partition.Tetrahedral, *tensor.Symmetric, [][]float64, int) {
	t.Helper()
	part, err := partition.NewSpherical(q)
	if err != nil {
		t.Fatal(err)
	}
	const b = 2
	n := part.M * b
	rng := newRng(int64(1000 + q))
	a := tensor.Random(n, rng)
	xs := make([][]float64, 3)
	for k := range xs {
		xs[k] = make([]float64, n)
		for i := range xs[k] {
			xs[k][i] = rng.NormFloat64()
		}
	}
	return part, a, xs, b
}

// sessionOutcome is everything the suite compares between a crash-free
// and a recovering session.
type sessionOutcome struct {
	ys      [][]float64
	phases  [][]parallel.PhaseMeter
	reports []*machine.Report
	final   *machine.Report
	stats   parallel.RecoveryStats
}

// runSession applies each vector through one resident session and
// collects per-operation results plus the session-lifetime report.
func runSession(t *testing.T, opts parallel.Options, a *tensor.Symmetric, xs [][]float64) *sessionOutcome {
	t.Helper()
	s, err := parallel.OpenSession(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	out := &sessionOutcome{}
	for _, x := range xs {
		res, err := s.Apply(x)
		if err != nil {
			s.Close()
			t.Fatalf("Apply: %v", err)
		}
		out.ys = append(out.ys, res.Y)
		out.phases = append(out.phases, res.Phases)
		out.reports = append(out.reports, res.Report)
	}
	out.stats = s.RecoveryStats()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	out.final = s.Report()
	return out
}

// TestChaosRecoverySession is the tentpole acceptance check: under every
// seeded crash plan, both wirings, q ∈ {2, 3}, a recovering session
// reproduces the crash-free session bit-for-bit with unchanged logical
// meters, and the supervisor's interventions appear in RecoveryStats.
func TestChaosRecoverySession(t *testing.T) {
	for _, q := range []int{2, 3} {
		part, a, xs, b := recoverySetup(t, q)
		_ = part
		for _, wiring := range []parallel.Wiring{parallel.WiringP2P, parallel.WiringAllToAll} {
			name := "p2p"
			if wiring == parallel.WiringAllToAll {
				name = "alltoall"
			}
			t.Run(name+"/q="+string(rune('0'+q)), func(t *testing.T) {
				want := runSession(t, parallel.Options{Part: part, B: b, Wiring: wiring}, a, xs)
				for _, plan := range recoveryPlans {
					plan := plan
					t.Run(plan.String(), func(t *testing.T) {
						var rec obs.Recorder
						got := runSession(t, parallel.Options{
							Part: part, B: b, Wiring: wiring,
							Machine: machine.RunConfig{
								Transport: fault.TransportRecoverable(plan, fault.ReliableOptions{MaxAttempts: 1 << 20}),
								Timeout:   2 * time.Second,
								Observer:  rec.Observer(),
							},
							Recovery: &parallel.RecoveryOptions{},
						}, a, xs)

						for k := range want.ys {
							for i := range want.ys[k] {
								if got.ys[k][i] != want.ys[k][i] {
									t.Fatalf("apply %d: Y[%d] = %g differs from crash-free %g",
										k, i, got.ys[k][i], want.ys[k][i])
								}
							}
							if !reflect.DeepEqual(got.phases[k], want.phases[k]) {
								t.Errorf("apply %d: per-phase meters differ from crash-free session", k)
							}
							assertSameLogicalMeters(t, want.reports[k], got.reports[k])
						}
						// Session-lifetime wire meters carry the recovery
						// traffic; logical meters stay those of committed work.
						assertSameLogicalMeters(t, want.final, got.final)
						if gotW, wantW := got.final.TotalWireSentWords(), got.final.TotalSentWords(); gotW < wantW {
							t.Errorf("lifetime wire words %d below logical words %d", gotW, wantW)
						}
						if got.stats.RankDowns < 1 {
							t.Errorf("RecoveryStats.RankDowns = %d, want ≥ 1", got.stats.RankDowns)
						}
						if got.stats.Rollbacks < 1 {
							t.Errorf("RecoveryStats.Rollbacks = %d, want ≥ 1", got.stats.Rollbacks)
						}
						if got.stats.Retries < 1 {
							t.Errorf("RecoveryStats.Retries = %d, want ≥ 1", got.stats.Retries)
						}
						if got.stats.Verifications < got.stats.Rollbacks {
							t.Errorf("RecoveryStats.Verifications = %d below Rollbacks = %d: every restore must verify",
								got.stats.Verifications, got.stats.Rollbacks)
						}
						if got.stats.Mismatches != 0 {
							t.Errorf("RecoveryStats.Mismatches = %d on uncorrupted restores", got.stats.Mismatches)
						}
						// Epoch-aware trace conformance: with the aborted
						// attempts cut away at the per-rank rollback markers,
						// the committed logical trace must equal the
						// session-lifetime report exactly.
						if err := rec.Trace().CheckCommittedAgainstReport(got.final); err != nil {
							t.Errorf("committed trace conformance: %v", err)
						}
					})
				}
			})
		}
	}
}

// TestChaosRecoveryPowerMethod: a crash mid power-method must replay the
// interrupted iteration and converge to the crash-free result exactly —
// same λ, same eigenvector bits, same iteration count.
func TestChaosRecoveryPowerMethod(t *testing.T) {
	part, a, _, b := recoverySetup(t, 2)
	po := parallel.PowerOptions{MaxIter: 6, Seed: 3}
	runPM := func(opts parallel.Options) (*parallel.EigenResult, parallel.RecoveryStats) {
		s, err := parallel.OpenSession(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		res, err := s.PowerMethod(po)
		if err != nil {
			t.Fatal(err)
		}
		return res, s.RecoveryStats()
	}
	want, _ := runPM(parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P})
	got, stats := runPM(parallel.Options{
		Part: part, B: b, Wiring: parallel.WiringP2P,
		Machine: machine.RunConfig{
			Transport: fault.TransportRecoverable(fault.Plan{Seed: 5, Crash: map[int]int{2: 30}},
				fault.ReliableOptions{MaxAttempts: 1 << 20}),
			Timeout: 2 * time.Second,
		},
		Recovery: &parallel.RecoveryOptions{},
	})
	if got.Lambda != want.Lambda {
		t.Errorf("Lambda = %g, crash-free %g", got.Lambda, want.Lambda)
	}
	if got.Iterations != want.Iterations || got.Converged != want.Converged {
		t.Errorf("exit (%d iters, converged=%v), crash-free (%d, %v)",
			got.Iterations, got.Converged, want.Iterations, want.Converged)
	}
	for i := range want.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("X[%d] = %g differs from crash-free %g", i, got.X[i], want.X[i])
		}
	}
	if !reflect.DeepEqual(got.Phases, want.Phases) {
		t.Errorf("per-phase meters differ from crash-free power method")
	}
	if stats.RankDowns < 1 || stats.Rollbacks < 1 {
		t.Errorf("stats %+v: expected at least one rank death and rollback", stats)
	}
}

// mttkrpPlans are the dedicated crash schedules for the MTTKRP grid: an
// early single-rank crash inside the batched exchange, and a multi-rank
// crash layered over packet loss.
var mttkrpPlans = []fault.Plan{
	{Seed: 6, Crash: map[int]int{1: 5}},
	{Seed: 7, Drop: 0.05, Crash: map[int]int{0: 8, 3: 20}},
}

// TestChaosRecoveryMTTKRP: a crash mid-MTTKRP must replay the batched
// application and still reproduce the crash-free factor matrix
// bit-for-bit, with exactly-once logical meters — the x/y arenas are
// rebuilt from host staging on every attempt (dirtyNone), so the
// incremental checkpointer copies zero arena words here.
func TestChaosRecoveryMTTKRP(t *testing.T) {
	const rcols = 2
	for _, q := range []int{2, 3} {
		part, a, _, b := recoverySetup(t, q)
		n := part.M * b
		rng := newRng(int64(2000 + q))
		x := la.NewMatrix(n, rcols)
		for i := 0; i < n; i++ {
			for l := 0; l < rcols; l++ {
				x.Set(i, l, rng.NormFloat64())
			}
		}
		type mttkrpOutcome struct {
			y     *la.Matrix
			res   *parallel.Result
			final *machine.Report
			stats parallel.RecoveryStats
		}
		runM := func(t *testing.T, opts parallel.Options) *mttkrpOutcome {
			t.Helper()
			s, err := parallel.OpenSession(a, opts)
			if err != nil {
				t.Fatal(err)
			}
			y, res, err := s.MTTKRP(x, 0)
			if err != nil {
				s.Close()
				t.Fatalf("MTTKRP: %v", err)
			}
			stats := s.RecoveryStats()
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			return &mttkrpOutcome{y: y, res: res, final: s.Report(), stats: stats}
		}
		for _, wiring := range []parallel.Wiring{parallel.WiringP2P, parallel.WiringAllToAll} {
			name := "p2p"
			if wiring == parallel.WiringAllToAll {
				name = "alltoall"
			}
			t.Run(name+"/q="+string(rune('0'+q)), func(t *testing.T) {
				want := runM(t, parallel.Options{Part: part, B: b, Wiring: wiring})
				for _, plan := range mttkrpPlans {
					plan := plan
					t.Run(plan.String(), func(t *testing.T) {
						got := runM(t, parallel.Options{
							Part: part, B: b, Wiring: wiring,
							Machine: machine.RunConfig{
								Transport: fault.TransportRecoverable(plan, fault.ReliableOptions{MaxAttempts: 1 << 20}),
								Timeout:   2 * time.Second,
							},
							Recovery: &parallel.RecoveryOptions{},
						})
						for i := range want.y.Data {
							if got.y.Data[i] != want.y.Data[i] {
								t.Fatalf("Y.Data[%d] = %g differs from crash-free %g",
									i, got.y.Data[i], want.y.Data[i])
							}
						}
						if !reflect.DeepEqual(got.res.Phases, want.res.Phases) {
							t.Errorf("per-phase meters differ from crash-free MTTKRP")
						}
						assertSameLogicalMeters(t, want.res.Report, got.res.Report)
						assertSameLogicalMeters(t, want.final, got.final)
						if got.stats.RankDowns < 1 || got.stats.Rollbacks < 1 {
							t.Errorf("stats %+v: expected at least one rank death and rollback", got.stats)
						}
						if got.stats.CheckpointWords != 0 {
							t.Errorf("CheckpointWords = %d: MTTKRP checkpoints must copy no arena words",
								got.stats.CheckpointWords)
						}
					})
				}
			})
		}
	}
}

// TestChaosRecoveryObservability: recovery must be visible in the obs
// layer — rank-down and recovery span markers in the trace, an epoch
// fence > 0 after an in-place recovery, and a "recovery" scope record in
// the metrics export.
func TestChaosRecoveryObservability(t *testing.T) {
	part, a, xs, b := recoverySetup(t, 2)
	var rec obs.Recorder
	s, err := parallel.OpenSession(a, parallel.Options{
		Part: part, B: b, Wiring: parallel.WiringP2P,
		Machine: machine.RunConfig{
			Transport: fault.TransportRecoverable(fault.Plan{Seed: 1, Crash: map[int]int{1: 4}},
				fault.ReliableOptions{MaxAttempts: 1 << 20}),
			Timeout:  2 * time.Second,
			Observer: rec.Observer(),
		},
		Recovery: &parallel.RecoveryOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if _, err := s.Apply(x); err != nil {
			t.Fatal(err)
		}
	}
	stats := s.RecoveryStats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	tr := rec.Trace()
	rc := tr.RecoveryCounts()
	if rc.RankDowns < 1 || rc.Recoveries < 1 || rc.Rollbacks < 1 {
		t.Fatalf("trace recovery counts %+v: want every marker kind present", rc)
	}
	if rc.RankDowns != stats.RankDowns || rc.Rollbacks != stats.Rollbacks {
		t.Errorf("trace counts %+v disagree with RecoveryStats %+v", rc, stats)
	}
	if rc.MaxEpoch < 1 {
		t.Errorf("trace max epoch %d: in-place recovery must fence a new epoch", rc.MaxEpoch)
	}

	var buf bytes.Buffer
	if err := obs.WriteMetricsJSONL(&buf, tr, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"scope":"recovery"`) {
		t.Errorf("metrics export missing the recovery record:\n%s", buf.String())
	}

	// The JSONL trace round-trips the recovery markers (kind names and
	// epochs survive).
	buf.Reset()
	if err := obs.WriteTraceJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rc2 := back.RecoveryCounts(); rc2 != rc {
		t.Errorf("recovery counts changed across JSONL round-trip: %+v vs %+v", rc2, rc)
	}
}

// TestRecoveryDegradedRelaunchThenCrash walks the hardest lifecycle edge:
// a dispatch exhausts its retry budget (two crashes inside one Apply with
// MaxRetries = 1) and degrades to a full machine relaunch — and then a
// third rank crashes on the relaunched machine, which must absorb it with
// an ordinary in-place recovery. The crash registry persists across the
// relaunch, so each rank's scheduled crash fires exactly once for the
// session lifetime, and the whole run stays bit-identical to crash-free.
func TestRecoveryDegradedRelaunchThenCrash(t *testing.T) {
	part, a, _, b := recoverySetup(t, 2)
	n := part.M * b
	rng := newRng(77)
	xs := make([][]float64, 5)
	for k := range xs {
		xs[k] = make([]float64, n)
		for i := range xs[k] {
			xs[k][i] = rng.NormFloat64()
		}
	}
	want := runSession(t, parallel.Options{Part: part, B: b, Wiring: parallel.WiringP2P}, a, xs)

	plan := fault.Plan{Seed: 11, Crash: map[int]int{1: 4, 2: 30, 3: 65}}
	s, err := parallel.OpenSession(a, parallel.Options{
		Part: part, B: b, Wiring: parallel.WiringP2P,
		Machine: machine.RunConfig{
			Transport: fault.TransportRecoverable(plan, fault.ReliableOptions{MaxAttempts: 1 << 20}),
			Timeout:   2 * time.Second,
		},
		Recovery: &parallel.RecoveryOptions{MaxRetries: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var afterFirst parallel.RecoveryStats
	for k, x := range xs {
		res, err := s.Apply(x)
		if err != nil {
			t.Fatalf("apply %d: %v", k, err)
		}
		for i := range want.ys[k] {
			if res.Y[i] != want.ys[k][i] {
				t.Fatalf("apply %d: Y[%d] = %g differs from crash-free %g", k, i, res.Y[i], want.ys[k][i])
			}
		}
		assertSameLogicalMeters(t, want.reports[k], res.Report)
		if k == 0 {
			afterFirst = s.RecoveryStats()
		}
	}
	stats := s.RecoveryStats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	assertSameLogicalMeters(t, want.final, s.Report())

	if afterFirst.Relaunches != 1 {
		t.Fatalf("first Apply ended with %d relaunches, want the retry budget exhausted exactly once (stats %+v)",
			afterFirst.Relaunches, afterFirst)
	}
	if stats.Relaunches != 1 {
		t.Errorf("session ended with %d relaunches, want 1", stats.Relaunches)
	}
	if stats.RankDowns <= afterFirst.RankDowns {
		t.Errorf("no rank died after the relaunch: %d → %d rank downs", afterFirst.RankDowns, stats.RankDowns)
	}
	if stats.Restarts <= afterFirst.Restarts {
		t.Errorf("the post-relaunch crash was not recovered in place: %d → %d restarts",
			afterFirst.Restarts, stats.Restarts)
	}
	if stats.Epoch < 1 {
		t.Errorf("relaunched machine epoch %d: the in-place recovery after the relaunch must fence", stats.Epoch)
	}
	if stats.Verifications < stats.Rollbacks || stats.Mismatches != 0 {
		t.Errorf("verification accounting off: %+v", stats)
	}
}

// TestRecoveryStatsStableAfterClose: RecoveryStats must stay readable and
// frozen after Close — the documented post-mortem use.
func TestRecoveryStatsStableAfterClose(t *testing.T) {
	part, a, xs, b := recoverySetup(t, 2)
	s, err := parallel.OpenSession(a, parallel.Options{
		Part: part, B: b, Wiring: parallel.WiringP2P,
		Machine: machine.RunConfig{
			Transport: fault.TransportRecoverable(fault.Plan{Seed: 1, Crash: map[int]int{1: 4}},
				fault.ReliableOptions{MaxAttempts: 1 << 20}),
			Timeout: 2 * time.Second,
		},
		Recovery: &parallel.RecoveryOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if _, err := s.Apply(x); err != nil {
			t.Fatal(err)
		}
	}
	before := s.RecoveryStats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if after := s.RecoveryStats(); after != before {
		t.Errorf("RecoveryStats changed across Close:\nbefore %+v\nafter  %+v", before, after)
	}
	if err := s.Close(); err != nil { // idempotent Close keeps them readable
		t.Fatal(err)
	}
	if again := s.RecoveryStats(); again != before {
		t.Errorf("RecoveryStats changed after second Close:\nbefore %+v\nafter  %+v", before, again)
	}
}

// TestRecoveryDisabledStaysFailFast pins the opt-in contract: without
// Options.Recovery a session surfaces a crash as a structured error
// exactly like a one-shot run (TestChaosCrash), never a silent retry.
func TestRecoveryDisabledStaysFailFast(t *testing.T) {
	part, a, xs, b := recoverySetup(t, 2)
	s, err := parallel.OpenSession(a, parallel.Options{
		Part: part, B: b, Wiring: parallel.WiringP2P,
		Machine: machine.RunConfig{
			Transport: fault.TransportRecoverable(fault.Plan{Seed: 1, Crash: map[int]int{1: 4}},
				fault.ReliableOptions{MaxAttempts: 1 << 20}),
			Timeout: 2 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Apply(xs[0]); err == nil {
		t.Fatal("Apply succeeded under a crash plan with recovery disabled")
	}
}
