package fault

import (
	"math"
	"time"

	"repro/internal/machine"
)

// ReliableOptions tunes the recovery protocol.
type ReliableOptions struct {
	// MaxAttempts bounds transmissions of one message (first send
	// included); exhausting it panics with machine.UnreachableError.
	// Default 40.
	MaxAttempts int
	// AckTimeout is the initial retransmission timeout; it doubles per
	// retry (exponential backoff). Default 500µs.
	AckTimeout time.Duration
	// MaxAckTimeout caps the backoff. Default 50ms.
	MaxAckTimeout time.Duration
}

func (o ReliableOptions) withDefaults() ReliableOptions {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 40
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 500 * time.Microsecond
	}
	if o.MaxAckTimeout <= 0 {
		o.MaxAckTimeout = 50 * time.Millisecond
	}
	return o
}

// Transport returns a machine.TransportFactory that runs the reliable
// transport over a wire perturbed by plan — the standard way to wire
// fault injection into a simulated run:
//
//	machine.RunWith(p, machine.RunConfig{Transport: fault.Transport(plan)}, body)
//
// Logical results and logical communication meters are identical to the
// fault-free run for any benign plan (no crash); recovery traffic shows
// up only in the wire meters.
func Transport(plan Plan) machine.TransportFactory {
	return TransportOpts(plan, ReliableOptions{})
}

// TransportOpts is Transport with explicit protocol tuning.
func TransportOpts(plan Plan, opt ReliableOptions) machine.TransportFactory {
	return func(w machine.Wire) machine.Transport {
		return NewReliable(Inject(w, plan), opt)
	}
}

// NewReliable builds the reliable transport over an arbitrary wire. The
// protocol: every data packet carries a per-(sender→receiver) sequence
// number and a payload checksum; the receiver acknowledges every intact
// data packet (including duplicates), drops corrupt ones silently,
// de-duplicates by sequence number, and releases payloads strictly in
// sequence order, parking out-of-order arrivals until the gap fills. The
// sender blocks until its packet is acknowledged, retransmitting with
// exponential backoff, and services incoming data packets while it waits
// so that two ranks sending to each other cannot deadlock.
func NewReliable(w machine.Wire, opt ReliableOptions) machine.Transport {
	p := w.Size()
	r := &reliable{w: w, opt: opt.withDefaults(), epoch: w.Epoch(),
		nextSeq: make([]int, p),
		expect:  make([]int, p),
		parked:  make([]map[int]machine.Packet, p),
		pending: make(map[[2]int][][]float64),
	}
	base := seqBase(r.epoch)
	for i := 0; i < p; i++ {
		r.nextSeq[i] = base + 1
		r.expect[i] = base + 1
	}
	return r
}

// seqBase namespaces sequence numbers by recovery epoch: counters of
// epoch e live in [e<<32+1, (e+1)<<32). A pair reset at an epoch change
// rebases both ends to the new epoch's base, so any packet of a
// rolled-back conversation — retransmitted, duplicated, or reordered into
// the new epoch — sits below the receiver's expected sequence and is
// dedup-dropped, never confused with replay traffic.
func seqBase(epoch int64) int { return int(epoch) << 32 }

type reliable struct {
	w   machine.Wire
	opt ReliableOptions
	// epoch is the machine epoch this incarnation was built in. Packets
	// from any other epoch are ignored without acknowledgement: after a
	// crash recovery a parked pre-recovery incarnation would otherwise
	// service the replay's fresh traffic with stale sequence state —
	// dup-acking a replayed message and silently discarding it. Leaving
	// the packet unacknowledged makes the sender retransmit until this
	// rank rebinds into the new epoch.
	epoch int64
	// nextSeq[to] is the sequence number for the next message to rank to.
	nextSeq []int
	// expect[from] is the next in-order sequence number from rank from.
	expect []int
	// parked[from] holds intact packets that arrived ahead of sequence.
	parked []map[int]machine.Packet
	// pending holds released payloads not yet consumed by Recv, keyed by
	// [2]int{from, tag}, FIFO per key.
	pending map[[2]int][][]float64
}

func (r *reliable) Send(to, tag int, data []float64) {
	seq := r.nextSeq[to]
	r.nextSeq[to]++
	pkt := machine.Packet{
		From: r.w.Rank(), To: to, Tag: tag, Seq: seq,
		Kind: machine.PacketData, Data: data, Check: checksum(data),
	}
	r.w.Deliver(pkt)
	attempts := 1
	timeout := r.opt.AckTimeout
	for {
		if r.w.Aborting() {
			// The ack we are waiting for was rolled back with the rest of
			// the epoch; unwind instead of retransmitting into the fence.
			machine.Aborted()
		}
		in, ok := r.w.PullTimeout(timeout)
		if ok && in.Epoch != r.epoch {
			continue // cross-epoch packet: not ours to acknowledge
		}
		if !ok {
			if attempts >= r.opt.MaxAttempts {
				panic(machine.UnreachableError{Rank: r.w.Rank(), Peer: to, Tag: tag, Attempts: attempts})
			}
			attempts++
			r.w.Deliver(pkt)
			if timeout *= 2; timeout > r.opt.MaxAckTimeout {
				timeout = r.opt.MaxAckTimeout
			}
			continue
		}
		switch in.Kind {
		case machine.PacketAck:
			if in.From == to && in.Seq == seq {
				return // acknowledged
			}
			// Stale ack of an already-completed send (a duplicate, or the
			// ack of a retransmission that raced the original): ignore.
		case machine.PacketData:
			r.handleData(in)
		}
	}
}

func (r *reliable) Recv(from, tag int) []float64 {
	key := [2]int{from, tag}
	for {
		if q := r.pending[key]; len(q) > 0 {
			data := q[0]
			r.pending[key] = q[1:]
			r.publishPending()
			return data
		}
		in := r.w.Pull()
		if in.Kind == machine.PacketData && in.Epoch == r.epoch {
			r.handleData(in)
		}
		// Stray acks while not sending are duplicates; drop them.
	}
}

// handleData acknowledges, de-duplicates, order-restores and releases an
// incoming data packet.
func (r *reliable) handleData(pkt machine.Packet) {
	if pkt.Check != checksum(pkt.Data) {
		return // corrupted in flight: no ack, the sender will retransmit
	}
	r.w.Deliver(machine.Packet{
		From: r.w.Rank(), To: pkt.From, Tag: pkt.Tag, Seq: pkt.Seq,
		Kind: machine.PacketAck,
	})
	from := pkt.From
	switch {
	case pkt.Seq < r.expect[from]:
		// Duplicate of an already-released packet; the re-ack above is
		// all it needed.
	case pkt.Seq > r.expect[from]:
		if r.parked[from] == nil {
			r.parked[from] = make(map[int]machine.Packet)
		}
		r.parked[from][pkt.Seq] = pkt // idempotent for duplicates
		r.publishPending()
	default:
		r.release(pkt)
		r.expect[from]++
		for {
			next, ok := r.parked[from][r.expect[from]]
			if !ok {
				break
			}
			delete(r.parked[from], r.expect[from])
			r.release(next)
			r.expect[from]++
		}
	}
}

// Idle services the wire in full while the rank waits at a barrier:
// intact data packets are acknowledged, de-duplicated and buffered for
// later Recvs, exactly as during Send's ack-wait.
func (r *reliable) Idle(stop <-chan struct{}) { r.service(stop, false) }

// Linger answers retransmissions after the rank's body has returned: only
// duplicates of already-released packets are re-acked. A genuinely new
// message is left unacknowledged — its sender is entitled to an
// UnreachableError, because the receiving body really did exit without
// consuming it.
func (r *reliable) Linger(stop <-chan struct{}) { r.service(stop, true) }

var _ machine.Idler = (*reliable)(nil)

func (r *reliable) service(stop <-chan struct{}, dupOnly bool) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		in, ok := r.w.PullTimeout(200 * time.Microsecond)
		if !ok || in.Kind != machine.PacketData || in.Epoch != r.epoch {
			continue
		}
		if dupOnly && in.Seq >= r.expect[in.From] {
			continue
		}
		r.handleData(in)
	}
}

func (r *reliable) release(pkt machine.Packet) {
	key := [2]int{pkt.From, pkt.Tag}
	r.pending[key] = append(r.pending[key], pkt.Data)
	r.publishPending()
}

// publishPending publishes a diagnostics summary of everything this
// transport has buffered: released payloads awaiting a Recv plus parked
// out-of-order packets. The stall watchdog prints it, and the recovery
// supervisor reads it after an abort to find pairs with torn protocol
// state — a parked packet is exactly as much evidence of a disturbed
// conversation as an unconsumed released one, so both must be visible.
func (r *reliable) publishPending() {
	entries := machine.SummarizePending(r.pending)
	for from, parked := range r.parked {
		for _, pkt := range parked {
			entries = append(entries, machine.PendingEntry{From: from, Tag: pkt.Tag, Msgs: 1, Words: len(pkt.Data)})
		}
	}
	r.w.Pending(entries)
}

// AdoptEpoch moves the transport into a new recovery epoch in place.
// Sequence state is rebased to the new epoch's namespace only for the
// listed peers — the pairs the supervisor found disturbed by the aborted
// epoch; their parked packets and undelivered pending payloads belong to
// rolled-back conversations and are discarded. Untouched pairs keep their
// counters: every exchange they completed was acknowledged on both ends,
// so their state is consistent and the replay continues it seamlessly.
func (r *reliable) AdoptEpoch(epoch int64, resetPeers []int) {
	r.epoch = epoch
	base := seqBase(epoch)
	for _, p := range resetPeers {
		if p < 0 || p >= len(r.nextSeq) || p == r.w.Rank() {
			continue
		}
		r.nextSeq[p] = base + 1
		r.expect[p] = base + 1
		r.parked[p] = nil
		for key := range r.pending {
			if key[0] == p {
				delete(r.pending, key)
			}
		}
	}
	r.publishPending()
}

var _ machine.EpochAdopter = (*reliable)(nil)

// checksum is FNV-1a over the payload's IEEE-754 bit patterns.
func checksum(data []float64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, v := range data {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= 0x100000001b3
		}
	}
	return h
}
