// Package fault perturbs the simulated machine's wire deterministically
// and repairs the damage: seedable injectors for message drop,
// duplication, reordering, payload corruption, per-rank stall (bounded
// delay) and rank crash, plus a reliable transport (sequence numbers,
// acknowledgements, bounded retransmission with exponential backoff,
// idempotent receive-side dedup and order restoration) under which every
// algorithm in this repository produces bit-identical results and
// identical logical communication meters under any benign fault schedule.
//
// The layer exists to harden the repo's central claim: the communication
// counts compared against the paper's lower bounds are metered at the
// logical Send/Recv level, while retransmissions, duplicates and acks are
// metered separately as wire overhead — so a fault schedule can stretch a
// run but can never change what the theory is checked against.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Plan is a deterministic, seedable fault schedule. Probabilities are
// evaluated per wire packet by a per-rank PRNG derived from Seed, so a
// given plan perturbs a given protocol the same way on every run.
type Plan struct {
	// Seed derives each rank's injector PRNG. Two plans with different
	// seeds fault different packets.
	Seed int64
	// Drop, Dup, Reorder, Corrupt, Stall are per-packet fault
	// probabilities in [0, 1].
	Drop, Dup, Reorder, Corrupt, Stall float64
	// Reset is the per-packet probability of a connection reset. On a
	// socket wire (internal/netwire) the frame is torn mid-write and the
	// connection closed, so the receiver drops the stream; on the
	// simulated wire, which has no connections, it degenerates to a drop.
	Reset float64
	// StallDelay is the bounded delay a stall fault imposes on the
	// sending rank (default 1ms).
	StallDelay time.Duration
	// Crash maps a rank to the wire-operation index (counting that
	// rank's Deliver calls from 1) at which it panics with
	// machine.CrashError.
	Crash map[int]int
	// MaxFaults caps injected faults per rank (crashes excluded);
	// 0 means unlimited. A finite cap guarantees a bounded-retry
	// reliable transport always converges.
	MaxFaults int
}

// Active reports whether the plan injects anything at all.
func (p Plan) Active() bool {
	return p.Drop > 0 || p.Dup > 0 || p.Reorder > 0 || p.Corrupt > 0 ||
		p.Stall > 0 || p.Reset > 0 || len(p.Crash) > 0
}

// String renders the plan in the spec syntax ParsePlan accepts.
func (p Plan) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	add("drop", p.Drop)
	add("dup", p.Dup)
	add("reorder", p.Reorder)
	add("corrupt", p.Corrupt)
	add("stall", p.Stall)
	add("reset", p.Reset)
	if p.StallDelay > 0 {
		parts = append(parts, fmt.Sprintf("stalldelay=%v", p.StallDelay))
	}
	ranks := make([]int, 0, len(p.Crash))
	for r := range p.Crash {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		parts = append(parts, fmt.Sprintf("crash=%d@%d", r, p.Crash[r]))
	}
	if p.MaxFaults > 0 {
		parts = append(parts, fmt.Sprintf("maxfaults=%d", p.MaxFaults))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses a comma-separated fault-schedule spec, e.g.
//
//	seed=42,drop=0.1,dup=0.05,reorder=0.2,corrupt=0.02,stall=0.01,stalldelay=2ms,crash=3@40
//
// Keys: seed=<int>, drop/dup/reorder/corrupt/stall/reset=<prob in [0,1]>,
// stalldelay=<duration>, crash=<rank>@<op> (repeatable), maxfaults=<int>.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: field %q is not key=value", field)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			p.Drop, err = parseProb(val)
		case "dup":
			p.Dup, err = parseProb(val)
		case "reorder":
			p.Reorder, err = parseProb(val)
		case "corrupt":
			p.Corrupt, err = parseProb(val)
		case "stall":
			p.Stall, err = parseProb(val)
		case "reset":
			p.Reset, err = parseProb(val)
		case "stalldelay":
			p.StallDelay, err = time.ParseDuration(val)
		case "maxfaults":
			p.MaxFaults, err = strconv.Atoi(val)
		case "crash":
			rs, os, ok := strings.Cut(val, "@")
			if !ok {
				return Plan{}, fmt.Errorf("fault: crash spec %q is not rank@op", val)
			}
			var rank, op int
			if rank, err = strconv.Atoi(rs); err == nil {
				op, err = strconv.Atoi(os)
			}
			if err == nil {
				if rank < 0 || op < 1 {
					return Plan{}, fmt.Errorf("fault: crash spec %q needs rank >= 0 and op >= 1", val)
				}
				if p.Crash == nil {
					p.Crash = make(map[int]int)
				}
				p.Crash[rank] = op
			}
		default:
			return Plan{}, fmt.Errorf("fault: unknown key %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("fault: bad value for %s: %v", key, err)
		}
	}
	return p, nil
}

func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %g outside [0, 1]", v)
	}
	return v, nil
}
