// Package costmodel collects the closed-form communication and computation
// costs proved in the paper, so that experiments can compare measured
// counters against theory:
//
//   - Theorem 5.2's memory-independent communication lower bound;
//   - Algorithm 5's bandwidth cost with the direct point-to-point schedule
//     (§7.2.2), which matches the bound's leading term exactly;
//   - Algorithm 5's bandwidth cost when wired with fixed-width All-to-All
//     collectives (2× the leading term);
//   - the 1D row-partition baseline's Θ(n) cost;
//   - ternary-multiplication counts (§3, §7.1).
package costmodel

import (
	"math"

	"repro/internal/intmath"
)

// LowerBoundWords returns the Theorem 5.2 communication lower bound: with
// P processors, one copy of the inputs and outputs, and a load-balanced
// atomic algorithm, some processor communicates at least
// 2·(n(n−1)(n−2)/P)^{1/3} − 2n/P words.
func LowerBoundWords(n, p int) float64 {
	nn := float64(n)
	return 2*math.Cbrt(nn*(nn-1)*(nn-2)/float64(p)) - 2*nn/float64(p)
}

// LowerBoundLeading returns the bound's leading term 2n/P^{1/3}.
func LowerBoundLeading(n, p int) float64 {
	return 2 * float64(n) / math.Cbrt(float64(p))
}

// Processors returns P = q(q²+1), the machine size of the spherical-family
// partition for prime power q.
func Processors(q int) int { return q * (q*q + 1) }

// QForProcessors returns the prime power q with q(q²+1) == p, or ok=false
// when p is not of that form.
func QForProcessors(p int) (q int, ok bool) {
	for q = 1; Processors(q) <= p; q++ {
		if Processors(q) == p {
			_, _, isPP := intmath.PrimePower(q)
			return q, isPP
		}
	}
	return 0, false
}

// OptimalWords returns Algorithm 5's exact per-processor bandwidth cost
// with the point-to-point schedule (§7.2.2): 2·(n(q+1)/(q²+1) − n/P) words
// sent (and the same received), assuming q²+1 | n and q(q+1) | b.
func OptimalWords(n, q int) float64 {
	p := float64(Processors(q))
	return 2 * (float64(n)*float64(q+1)/float64(q*q+1) - float64(n)/p)
}

// AllToAllWords returns Algorithm 5's per-processor bandwidth cost when
// the two exchanges are performed with fixed-width All-to-All collectives
// (§7.2.2): 4n/(q+1)·(1 − 1/P) — asymptotically twice the lower bound's
// leading term.
func AllToAllWords(n, q int) float64 {
	p := float64(Processors(q))
	return 4 * float64(n) / float64(q+1) * (1 - 1/p)
}

// RowPartitionWords returns the per-processor bandwidth cost of the 1D
// row-partition baseline (symmetric storage, all-gather of x plus
// reduce-scatter of y): 2n(1 − 1/P) words — Θ(n) independent of P, versus
// Θ(n/P^{1/3}) for Algorithm 5.
func RowPartitionWords(n, p int) float64 {
	return 2 * float64(n) * (1 - 1/float64(p))
}

// SequenceApproachWordsLow returns the Ω(n) bandwidth lower bound (§8,
// citing Al Daas et al. 2022) for the two-step TTV-then-multiply approach
// when P <= n: communication at least on the order of n words because the
// intermediate matrix has n² entries.
func SequenceApproachWordsLow(n int) float64 { return float64(n) }

// TernaryTotal returns the total ternary multiplications of the
// symmetry-exploiting computation: n²(n+1)/2 (§3).
func TernaryTotal(n int) int64 {
	return int64(n) * int64(n) * int64(n+1) / 2
}

// TernaryPerProcessorBound returns the §7.1 per-processor computation
// bound for block edge b and parameter q:
// (q+1)q(q−1)/6·3b³ + q·3b²(b−1) + (3b(b−1)(b−2))/6 + 2b(b−1) + b, i.e.
// the off-diagonal, non-central diagonal and central diagonal terms for a
// processor that holds a central block.
func TernaryPerProcessorBound(q, b int) int64 {
	bb := int64(b)
	qq := int64(q)
	off := (qq + 1) * qq * (qq - 1) / 6 * 3 * bb * bb * bb
	non := qq * (3*bb*bb*(bb-1)/2 + 2*bb*bb)
	cen := 3*bb*(bb-1)*(bb-2)/6 + 2*bb*(bb-1) + bb
	return off + non + cen
}

// TernaryLeading returns the leading term n³/(2P) of the per-processor
// computational cost (§7.1).
func TernaryLeading(n, p int) float64 {
	nn := float64(n)
	return nn * nn * nn / (2 * float64(p))
}

// ElementaryOps returns the ≈ 2n³ elementary arithmetic operation count of
// the symmetry-exploiting STTSV (§8: each ternary multiplication needs two
// multiplications, plus an addition and often a further multiplication).
func ElementaryOps(n int) int64 { return 4 * TernaryTotal(n) }

// PaddedDimension returns the smallest multiple of q²+1 at least n (§6.1).
func PaddedDimension(n, q int) int { return intmath.RoundUp(n, q*q+1) }
