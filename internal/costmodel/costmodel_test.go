package costmodel

import (
	"math"
	"testing"
)

func TestProcessorsAndInverse(t *testing.T) {
	cases := map[int]int{2: 10, 3: 30, 4: 68, 5: 130, 7: 350, 8: 520, 9: 738}
	for q, p := range cases {
		if got := Processors(q); got != p {
			t.Errorf("Processors(%d) = %d, want %d", q, got, p)
		}
		gq, ok := QForProcessors(p)
		if !ok || gq != q {
			t.Errorf("QForProcessors(%d) = (%d, %v), want (%d, true)", p, gq, ok, q)
		}
	}
	for _, p := range []int{1, 9, 11, 29, 31, 100, 131} {
		if _, ok := QForProcessors(p); ok {
			t.Errorf("QForProcessors(%d) should fail", p)
		}
	}
	// 6(6²+1) = 222 has the right form but 6 is not a prime power.
	if _, ok := QForProcessors(222); ok {
		t.Error("QForProcessors(222) should fail: q=6 is not a prime power")
	}
}

func TestLowerBoundValues(t *testing.T) {
	// Spot value: n=120, P=30: 2(120·119·118/30)^{1/3} − 2·120/30.
	want := 2*math.Cbrt(120.0*119*118/30) - 8
	if got := LowerBoundWords(120, 30); math.Abs(got-want) > 1e-9 {
		t.Errorf("LowerBoundWords(120,30) = %g, want %g", got, want)
	}
	if got := LowerBoundLeading(120, 30); math.Abs(got-2*120/math.Cbrt(30)) > 1e-9 {
		t.Errorf("LowerBoundLeading = %g", got)
	}
}

func TestOptimalMatchesLowerBoundLeading(t *testing.T) {
	// §7.2.2: the optimal algorithm's cost has exactly the lower bound's
	// leading term: 2n(q+1)/(q²+1) ≈ 2n/P^{1/3}. The ratio tends to 1 as
	// q grows.
	var last float64
	for _, q := range []int{2, 3, 4, 5, 7, 9, 13, 16, 25} {
		n := (q*q + 1) * q * (q + 1) * 4
		ratio := OptimalWords(n, q) / LowerBoundLeading(n, Processors(q))
		if ratio < 0.95 || ratio > 1.25 {
			t.Errorf("q=%d: optimal/leading = %g, want near 1", q, ratio)
		}
		last = ratio
	}
	if math.Abs(last-1) > 0.05 {
		t.Errorf("ratio at q=25 is %g, not near 1", last)
	}
}

func TestAllToAllIsTwiceOptimal(t *testing.T) {
	// §7.2.2: the All-to-All wiring costs asymptotically 2× the optimal.
	for _, q := range []int{3, 5, 9, 16} {
		n := (q*q + 1) * q * (q + 1)
		ratio := AllToAllWords(n, q) / OptimalWords(n, q)
		if math.Abs(ratio-2) > 4.0/float64(q) {
			t.Errorf("q=%d: all-to-all/optimal = %g, want ≈ 2", q, ratio)
		}
	}
}

func TestRowPartitionIsWorseByCubeRootP(t *testing.T) {
	for _, q := range []int{3, 5, 9} {
		p := Processors(q)
		n := (q*q + 1) * q * (q + 1)
		ratio := RowPartitionWords(n, p) / OptimalWords(n, q)
		want := math.Cbrt(float64(p))
		if math.Abs(ratio-want)/want > 0.35 {
			t.Errorf("q=%d: baseline/optimal = %g, want ≈ P^(1/3) = %g", q, ratio, want)
		}
	}
}

func TestTernaryCounts(t *testing.T) {
	if got := TernaryTotal(10); got != 550 {
		t.Errorf("TernaryTotal(10) = %d", got)
	}
	// Per-processor bound times P approaches the total as q grows; check
	// it is an upper bound on the balanced share for a mid-size case.
	q, b := 3, 12
	n := (q*q + 1) * b
	p := Processors(q)
	bound := TernaryPerProcessorBound(q, b)
	share := float64(TernaryTotal(n)) / float64(p)
	if float64(bound) < share*0.99 {
		t.Errorf("per-processor bound %d below balanced share %g", bound, share)
	}
	// Leading term: bound/(n³/2P) → 1.
	lead := TernaryLeading(n, p)
	if r := float64(bound) / lead; r < 1 || r > 1.4 {
		t.Errorf("bound/leading = %g", r)
	}
}

func TestPaddedDimension(t *testing.T) {
	cases := []struct{ n, q, want int }{
		{100, 3, 100}, {101, 3, 110}, {9, 2, 10}, {10, 2, 10}, {11, 2, 15},
	}
	for _, c := range cases {
		if got := PaddedDimension(c.n, c.q); got != c.want {
			t.Errorf("PaddedDimension(%d, %d) = %d, want %d", c.n, c.q, got, c.want)
		}
	}
}

func TestElementaryOps(t *testing.T) {
	// ≈ 2n³ for large n.
	n := 200
	got := float64(ElementaryOps(n))
	want := 2 * math.Pow(float64(n), 3)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("ElementaryOps(%d) = %g, want ≈ %g", n, got, want)
	}
}

func TestSequenceApproachWordsLow(t *testing.T) {
	if SequenceApproachWordsLow(500) != 500 {
		t.Error("sequence bound wrong")
	}
}
