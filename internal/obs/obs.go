// Package obs is the observability layer over the simulated α-β-γ
// machine: it collects the structured trace events that machine.Comm,
// package collective, and package parallel emit (phase markers, logical
// and wire send/recv, barrier passings, local-compute completions),
// aggregates them into phase-scoped meters, replays them under a
// configurable α-β-γ time model into a per-rank timeline (critical path,
// Gantt spans, idle/overlap attribution), and exports both raw traces and
// derived metrics — Chrome trace_event JSON for chrome://tracing /
// Perfetto, and flat JSONL for ad-hoc tooling.
//
// The layer closes the loop between the closed-form cost model
// (internal/costmodel, internal/schedule) and measured runs: a trace of a
// fault-free point-to-point Algorithm 5 run replays to exactly the
// schedule's q³/2+3q²/2−1 barrier steps per phase and to the
// Σ(α + β·maxWords) makespan of schedule.Makespan, and its logical event
// sums reproduce the machine.Report meters bit-for-bit — per rank and per
// phase — even when a fault plan perturbs the wire underneath (the
// logical-vs-wire invariant of the fault layer).
package obs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/machine"
)

// Recorder is a thread-safe trace-event collector: pass Observer() as
// machine.RunConfig.Observer. The zero value is ready to use and may be
// reused across runs (events accumulate; call Reset between runs to
// separate them).
type Recorder struct {
	mu     sync.Mutex
	events []machine.Event
}

// Observer returns the callback to install as RunConfig.Observer.
func (r *Recorder) Observer() func(machine.Event) {
	return func(e machine.Event) {
		r.mu.Lock()
		r.events = append(r.events, e)
		r.mu.Unlock()
	}
}

// Reset discards every collected event.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// Trace returns the collected events as an analyzable Trace. Events are
// sorted into the canonical order (rank, then per-rank sequence number),
// which is deterministic for a deterministic rank program even though the
// raw collection interleaving across ranks is not.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	events := append([]machine.Event(nil), r.events...)
	r.mu.Unlock()
	return NewTrace(events)
}

// Trace is an ordered set of structured run events with aggregation
// helpers. Build one with Recorder.Trace, NewTrace, or ReadTraceJSONL.
type Trace struct {
	// Events holds every event in canonical (Rank, Seq) order.
	Events []machine.Event
	// P is the number of ranks that appear in the trace.
	P int
}

// NewTrace canonicalizes a raw event slice into a Trace.
func NewTrace(events []machine.Event) *Trace {
	cp := append([]machine.Event(nil), events...)
	sort.SliceStable(cp, func(i, j int) bool {
		if cp[i].Rank != cp[j].Rank {
			return cp[i].Rank < cp[j].Rank
		}
		return cp[i].Seq < cp[j].Seq
	})
	p := 0
	for _, e := range cp {
		if e.Rank+1 > p {
			p = e.Rank + 1
		}
	}
	return &Trace{Events: cp, P: p}
}

// PerRank splits the trace into per-rank event sequences (index = rank),
// each in emission order.
func (t *Trace) PerRank() [][]machine.Event {
	out := make([][]machine.Event, t.P)
	for _, e := range t.Events {
		out[e.Rank] = append(out[e.Rank], e)
	}
	return out
}

// WallSpan returns the measured wall-clock makespan of the traced run in
// seconds: the largest Event.Wall stamp, i.e. elapsed time from machine
// start to the last emitted event. Zero for traces without wall stamps
// (read back from JSONL written before the stamps existed). Compare it
// against Timeline.Makespan() to see how far reality is from the α-β-γ
// prediction on the backend the run used.
func (t *Trace) WallSpan() float64 {
	var max int64
	for _, e := range t.Events {
		if e.Wall > max {
			max = e.Wall
		}
	}
	return float64(max) / 1e9
}

// Logical returns the trace restricted to logical events (Wire == false).
func (t *Trace) Logical() *Trace {
	var out []machine.Event
	for _, e := range t.Events {
		if !e.Wire {
			out = append(out, e)
		}
	}
	return &Trace{Events: out, P: t.P}
}

// PhaseTotals aggregates one phase label's traffic across the whole
// trace: per-rank logical words/messages sent and received, barrier step
// count, and ternary multiplications. The same shape is produced for wire
// events by WireTotals.
type PhaseTotals struct {
	Label     string
	SentWords []int64
	RecvWords []int64
	SentMsgs  []int64
	RecvMsgs  []int64
	Ternary   []int64
	// Steps counts the distinct barrier generations passed inside the
	// phase (the §7.2 step count for a scheduled phase).
	Steps int
}

// newPhaseTotals allocates zeroed per-rank slices.
func newPhaseTotals(label string, p int) *PhaseTotals {
	return &PhaseTotals{
		Label:     label,
		SentWords: make([]int64, p),
		RecvWords: make([]int64, p),
		SentMsgs:  make([]int64, p),
		RecvMsgs:  make([]int64, p),
		Ternary:   make([]int64, p),
	}
}

// accumulate folds one event into the totals.
func (pt *PhaseTotals) accumulate(e machine.Event, steps map[int]bool) {
	switch e.Kind {
	case machine.EventSend:
		pt.SentWords[e.Rank] += int64(e.Words)
		pt.SentMsgs[e.Rank]++
	case machine.EventRecv:
		pt.RecvWords[e.Rank] += int64(e.Words)
		pt.RecvMsgs[e.Rank]++
	case machine.EventBarrier:
		steps[e.Step] = true
	case machine.EventLocalCompute:
		pt.Ternary[e.Rank] += e.Ternary
	}
}

// totalsOf aggregates events passing the filter, grouped by phase label.
func (t *Trace) totalsOf(wire bool) (map[string]*PhaseTotals, []string) {
	totals := make(map[string]*PhaseTotals)
	steps := make(map[string]map[int]bool)
	var order []string
	for _, e := range t.Events {
		if e.Wire != wire {
			continue
		}
		pt, ok := totals[e.Phase]
		if !ok {
			pt = newPhaseTotals(e.Phase, t.P)
			totals[e.Phase] = pt
			steps[e.Phase] = make(map[int]bool)
			order = append(order, e.Phase)
		}
		pt.accumulate(e, steps[e.Phase])
	}
	for label, pt := range totals {
		pt.Steps = len(steps[label])
	}
	return totals, order
}

// PhaseTotals aggregates the logical events by phase label (the label ""
// collects events outside any phase). The second return value lists the
// labels in first-appearance order.
func (t *Trace) PhaseTotals() (map[string]*PhaseTotals, []string) {
	return t.totalsOf(false)
}

// WireTotals aggregates the wire events by phase label; empty unless the
// run was configured with RunConfig.WireEvents.
func (t *Trace) WireTotals() (map[string]*PhaseTotals, []string) {
	return t.totalsOf(true)
}

// RankTotals sums the logical trace per rank across all phases, in the
// shape of a machine.Report's logical meters.
func (t *Trace) RankTotals() *PhaseTotals {
	out := newPhaseTotals("", t.P)
	steps := make(map[int]bool)
	for _, e := range t.Events {
		if e.Wire {
			continue
		}
		out.accumulate(e, steps)
	}
	out.Steps = len(steps)
	return out
}

// RecoveryCounts summarizes the recovery markers a supervised session
// left in the trace: rank deaths, recovery spans (one per replay
// attempt or degraded relaunch), completed rollbacks, restore
// fingerprint verifications and mismatches, and the highest wire epoch
// reached.
type RecoveryCounts struct {
	RankDowns  int
	Recoveries int // EventRecoveryBegin markers
	// Rollbacks counts completed checkpoint restorations. The supervisor
	// emits one EventRecoveryEnd marker per rank per restore (each
	// carrying that rank's committed-event boundary), so only rank 0's
	// markers are counted here.
	Rollbacks     int
	Verifications int // EventRestoreVerify markers
	Mismatches    int // EventRestoreMismatch markers
	MaxEpoch      int64
}

// RecoveryCounts scans the trace for recovery markers. All-zero for a
// crash-free run.
func (t *Trace) RecoveryCounts() RecoveryCounts {
	var rc RecoveryCounts
	for _, e := range t.Events {
		switch e.Kind {
		case machine.EventRankDown:
			rc.RankDowns++
		case machine.EventRecoveryBegin:
			rc.Recoveries++
		case machine.EventRecoveryEnd:
			if e.Rank == 0 {
				rc.Rollbacks++
			}
		case machine.EventRestoreVerify:
			rc.Verifications++
		case machine.EventRestoreMismatch:
			rc.Mismatches++
		}
		if e.Epoch > rc.MaxEpoch {
			rc.MaxEpoch = e.Epoch
		}
	}
	return rc
}

// CheckAgainstReport verifies the trace-conformance invariant: the summed
// logical trace events equal the report's logical meters exactly, per
// rank. A mismatch means the event stream and the counters disagree about
// the run — the one thing an observability layer must never do.
func (t *Trace) CheckAgainstReport(rep *machine.Report) error {
	return t.checkTotals(rep, t.RankTotals())
}

// CommittedTotals sums the logical trace per rank counting committed work
// exactly once: events a crash recovery rolled back are excluded. The
// supervisor marks each rollback with a per-rank EventRecoveryEnd whose
// Step field carries the rank's event sequence at the restored
// checkpoint; every logical event the rank emitted at or after that
// sequence belongs to an aborted attempt and is dropped. The filter is
// idempotent across retries of the same dispatch (each retry's marker
// re-drops from the same checkpoint boundary), and on a crash-free trace
// it degenerates to RankTotals.
func (t *Trace) CommittedTotals() *PhaseTotals {
	out := newPhaseTotals("", t.P)
	steps := make(map[int]bool)
	for _, evs := range t.PerRank() {
		kept := make([]machine.Event, 0, len(evs))
		for _, e := range evs {
			if e.Kind == machine.EventRecoveryEnd && e.Step >= 0 {
				ckSeq := int64(e.Step)
				for len(kept) > 0 && kept[len(kept)-1].Seq >= ckSeq {
					kept = kept[:len(kept)-1]
				}
				continue
			}
			kept = append(kept, e)
		}
		for _, e := range kept {
			if !e.Wire {
				out.accumulate(e, steps)
			}
		}
	}
	out.Steps = len(steps)
	return out
}

// CheckCommittedAgainstReport verifies the epoch-aware trace-conformance
// invariant for supervised runs: the committed logical events — aborted
// attempts excluded via the rollback markers — must equal the report's
// logical meters exactly, per rank, because the supervisor rolls the
// logical counters back to the same checkpoints it marks. For a
// crash-free run this is identical to CheckAgainstReport.
func (t *Trace) CheckCommittedAgainstReport(rep *machine.Report) error {
	return t.checkTotals(rep, t.CommittedTotals())
}

func (t *Trace) checkTotals(rep *machine.Report, tot *PhaseTotals) error {
	if t.P > rep.P {
		return fmt.Errorf("obs: trace has %d ranks, report %d", t.P, rep.P)
	}
	for r := 0; r < rep.P; r++ {
		var sw, rw, sm, rm int64
		if r < t.P {
			sw, rw, sm, rm = tot.SentWords[r], tot.RecvWords[r], tot.SentMsgs[r], tot.RecvMsgs[r]
		}
		if sw != rep.SentWords[r] || sm != rep.SentMsgs[r] {
			return fmt.Errorf("obs: rank %d sent %dw/%dm in trace, %dw/%dm in report",
				r, sw, sm, rep.SentWords[r], rep.SentMsgs[r])
		}
		if rw != rep.RecvWords[r] || rm != rep.RecvMsgs[r] {
			return fmt.Errorf("obs: rank %d recv %dw/%dm in trace, %dw/%dm in report",
				r, rw, rm, rep.RecvWords[r], rep.RecvMsgs[r])
		}
	}
	return nil
}
