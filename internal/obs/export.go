package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/machine"
)

// chromeEvent is one trace_event record in the Chrome/Perfetto JSON Array
// Format: "X" complete events with microsecond timestamps, pid = 0 (the
// simulated machine), tid = rank.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`  // microseconds
	Dur   float64        `json:"dur"` // microseconds
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeMeta is a metadata record ("M" phase) naming processes/threads.
type chromeMeta struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args"`
}

// WriteChromeTrace writes tl in the Chrome trace_event JSON Array Format,
// loadable in chrome://tracing and https://ui.perfetto.dev. Each rank
// becomes one thread row; phase spans contain the send/compute/wait
// slices replayed inside them. Timestamps are simulated microseconds
// under tl.Model, not wall-clock.
func WriteChromeTrace(w io.Writer, tl *Timeline) error {
	const usec = 1e6
	var records []any
	records = append(records, chromeMeta{
		Name: "process_name", Phase: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "simulated machine"},
	})
	for r := 0; r < tl.P; r++ {
		records = append(records, chromeMeta{
			Name: "thread_name", Phase: "M", Pid: 0, Tid: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
	}
	for r := 0; r < tl.P; r++ {
		for _, sp := range tl.Spans[r] {
			name := sp.Label
			if sp.Kind != SpanPhase {
				name = string(sp.Kind)
			}
			rec := chromeEvent{
				Name: name, Cat: string(sp.Kind), Phase: "X",
				Ts: sp.Start * usec, Dur: sp.Dur() * usec,
				Pid: 0, Tid: r,
			}
			if sp.Kind != SpanPhase && sp.Label != "" {
				rec.Args = map[string]any{"detail": sp.Label}
			}
			records = append(records, rec)
		}
	}
	// Hand-roll the array so each record sits on its own line: diffable,
	// and still valid trace_event JSON.
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, rec := range records {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(records)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// jsonlEvent is the stable on-disk shape of one trace event. Field names
// are part of the tooling contract; zero-valued optional fields are
// omitted to keep lines short.
type jsonlEvent struct {
	Kind    string `json:"kind"`
	Rank    int    `json:"rank"`
	From    int    `json:"from"`
	To      int    `json:"to"`
	Tag     int    `json:"tag,omitempty"`
	Words   int    `json:"words,omitempty"`
	Phase   string `json:"phase,omitempty"`
	Op      string `json:"op,omitempty"`
	Seq     int64  `json:"seq"`
	Step    int    `json:"step,omitempty"`
	Ternary int64  `json:"ternary,omitempty"`
	Wire    bool   `json:"wire,omitempty"`
	Epoch   int64  `json:"epoch,omitempty"`
	Wall    int64  `json:"wall_ns,omitempty"`
}

var kindNames = map[machine.EventKind]string{
	machine.EventSend:            "send",
	machine.EventRecv:            "recv",
	machine.EventBarrier:         "barrier",
	machine.EventPhaseBegin:      "phase-begin",
	machine.EventPhaseEnd:        "phase-end",
	machine.EventLocalCompute:    "local-compute",
	machine.EventRankDown:        "rank-down",
	machine.EventRecoveryBegin:   "recovery-begin",
	machine.EventRecoveryEnd:     "recovery-end",
	machine.EventRestoreVerify:   "restore-verify",
	machine.EventRestoreMismatch: "restore-mismatch",
	machine.EventDrop:            "drop",
}

var kindValues = func() map[string]machine.EventKind {
	m := make(map[string]machine.EventKind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// WriteTraceJSONL writes the trace as one JSON object per line in
// canonical (rank, seq) order — the flat interchange format read back by
// ReadTraceJSONL and by cmd/sttsvtrace.
func WriteTraceJSONL(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events {
		je := jsonlEvent{
			Kind: kindNames[e.Kind], Rank: e.Rank, From: e.From, To: e.To,
			Tag: e.Tag, Words: e.Words, Phase: e.Phase, Op: e.Op,
			Seq: e.Seq, Ternary: e.Ternary, Wire: e.Wire, Epoch: e.Epoch,
			Wall: e.Wall,
		}
		switch e.Kind {
		case machine.EventBarrier:
			je.Step = e.Step + 1 // shift so generation 0 survives omitempty
		case machine.EventRecoveryBegin:
			je.Step = e.Step // retry attempt index, 1-based
		case machine.EventRecoveryEnd:
			je.Step = e.Step + 1 // checkpoint event seq; shift so seq 0 survives omitempty
		case machine.EventRestoreMismatch:
			je.Step = e.Step + 1 // failing page index; shift so page 0 survives omitempty
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraceJSONL parses a JSONL trace written by WriteTraceJSONL.
func ReadTraceJSONL(r io.Reader) (*Trace, error) {
	var events []machine.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		kind, ok := kindValues[je.Kind]
		if !ok {
			return nil, fmt.Errorf("obs: trace line %d: unknown kind %q", line, je.Kind)
		}
		e := machine.Event{
			Kind: kind, Rank: je.Rank, From: je.From, To: je.To,
			Tag: je.Tag, Words: je.Words, Phase: je.Phase, Op: je.Op,
			Seq: je.Seq, Step: -1, Ternary: je.Ternary, Wire: je.Wire,
			Epoch: je.Epoch, Wall: je.Wall,
		}
		switch kind {
		case machine.EventBarrier:
			e.Step = je.Step - 1
		case machine.EventRecoveryBegin:
			e.Step = je.Step
		case machine.EventRecoveryEnd, machine.EventRestoreMismatch:
			e.Step = je.Step - 1
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewTrace(events), nil
}

// metricsRecord is one flat metrics line: a per-phase aggregate, a
// per-rank aggregate, the run's recovery summary, or a serving-tier
// aggregate. Scope is "phase", "rank", "recovery", "serving", or
// "tenant".
type metricsRecord struct {
	Scope     string  `json:"scope"`
	Phase     string  `json:"phase,omitempty"`
	Rank      int     `json:"rank"`
	SentWords int64   `json:"sent_words"`
	RecvWords int64   `json:"recv_words"`
	SentMsgs  int64   `json:"sent_msgs"`
	RecvMsgs  int64   `json:"recv_msgs"`
	Ternary   int64   `json:"ternary,omitempty"`
	Steps     int     `json:"steps,omitempty"`
	Finish    float64 `json:"finish_s,omitempty"`
	Compute   float64 `json:"compute_s,omitempty"`
	SendTime  float64 `json:"send_s,omitempty"`
	Idle      float64 `json:"idle_s,omitempty"`
	Overlap   float64 `json:"overlap_s,omitempty"`
	RankDowns int     `json:"rank_downs,omitempty"`
	Retries   int     `json:"retries,omitempty"`
	Rollbacks int     `json:"rollbacks,omitempty"`
	Verified  int     `json:"restore_verifications,omitempty"`
	Mismatch  int     `json:"restore_mismatches,omitempty"`
	MaxEpoch  int64   `json:"max_epoch,omitempty"`
}

// WriteMetricsJSONL writes flat per-phase-per-rank and per-rank metric
// records derived from the trace, one JSON object per line. When tl is
// non-nil the per-rank records also carry the replayed timeline's time
// attribution (finish, compute, send, idle, overlap seconds).
func WriteMetricsJSONL(w io.Writer, t *Trace, tl *Timeline) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	totals, order := t.PhaseTotals()
	for _, label := range order {
		pt := totals[label]
		for r := 0; r < t.P; r++ {
			rec := metricsRecord{
				Scope: "phase", Phase: label, Rank: r,
				SentWords: pt.SentWords[r], RecvWords: pt.RecvWords[r],
				SentMsgs: pt.SentMsgs[r], RecvMsgs: pt.RecvMsgs[r],
				Ternary: pt.Ternary[r], Steps: pt.Steps,
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	rank := t.RankTotals()
	for r := 0; r < t.P; r++ {
		rec := metricsRecord{
			Scope: "rank", Rank: r,
			SentWords: rank.SentWords[r], RecvWords: rank.RecvWords[r],
			SentMsgs: rank.SentMsgs[r], RecvMsgs: rank.RecvMsgs[r],
			Ternary: rank.Ternary[r],
		}
		if tl != nil && r < tl.P {
			rec.Finish = tl.Finish[r]
			rec.Compute = tl.Compute[r]
			rec.SendTime = tl.SendTime[r]
			rec.Idle = tl.Idle(r)
			rec.Overlap = tl.Overlap[r]
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	if rc := t.RecoveryCounts(); rc.RankDowns > 0 || rc.Recoveries > 0 || rc.Rollbacks > 0 {
		rec := metricsRecord{
			Scope:     "recovery",
			RankDowns: rc.RankDowns, Retries: rc.Recoveries, Rollbacks: rc.Rollbacks,
			Verified: rc.Verifications, Mismatch: rc.Mismatches,
			MaxEpoch: rc.MaxEpoch,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ServingTenant is one tenant's lifetime aggregate over a serving pool:
// its request count and its amortized share of the coalesced batches'
// traffic. Word and compute shares are exact (they scale linearly with
// batch columns); message shares are the fractional 1/cols split that
// coalescing buys, so they are reported as a float.
type ServingTenant struct {
	Tenant         string  `json:"tenant"`
	Requests       int64   `json:"requests"`
	Rejected       int64   `json:"rejected,omitempty"`
	SentWords      int64   `json:"sent_words"`
	SentMsgs       float64 `json:"sent_msgs"`
	QueueWaitAvgUs float64 `json:"queue_wait_avg_us"`
	QueueWaitMaxUs float64 `json:"queue_wait_max_us"`
}

// ServingSnapshot aggregates a serving pool's admission and batching
// counters at one instant: the dual-trigger flush split, batch occupancy,
// queue-wait and service-time attribution, and the per-tenant ledger.
// Produced by the serve package; exported here so serving metrics flow
// through the same JSONL metrics convention as run traces.
type ServingSnapshot struct {
	Sessions       int             `json:"sessions"`
	MaxCols        int             `json:"max_cols"`
	MaxWaitUs      float64         `json:"max_wait_us"`
	Requests       int64           `json:"requests"`
	Rejected       int64           `json:"rejected"`
	Batches        int64           `json:"batches"`
	BatchErrors    int64           `json:"batch_errors,omitempty"`
	SizeFlushes    int64           `json:"size_flushes"`
	WaitFlushes    int64           `json:"wait_flushes"`
	DrainFlushes   int64           `json:"drain_flushes"`
	AvgOccupancy   float64         `json:"avg_occupancy"`
	MaxOccupancy   int             `json:"max_occupancy"`
	QueueWaitAvgUs float64         `json:"queue_wait_avg_us"`
	QueueWaitMaxUs float64         `json:"queue_wait_max_us"`
	ServiceAvgUs   float64         `json:"service_avg_us"`
	ServiceMaxUs   float64         `json:"service_max_us"`
	Tenants        []ServingTenant `json:"tenants,omitempty"`
}

// servingRecord is the flat JSONL shape of serving metrics: one
// scope:"serving" line for the pool aggregate, then one scope:"tenant"
// line per tenant, matching the metricsRecord file convention.
type servingRecord struct {
	Scope          string  `json:"scope"`
	Tenant         string  `json:"tenant,omitempty"`
	Sessions       int     `json:"sessions,omitempty"`
	MaxCols        int     `json:"max_cols,omitempty"`
	MaxWaitUs      float64 `json:"max_wait_us,omitempty"`
	Requests       int64   `json:"requests"`
	Rejected       int64   `json:"rejected,omitempty"`
	Batches        int64   `json:"batches,omitempty"`
	BatchErrors    int64   `json:"batch_errors,omitempty"`
	SizeFlushes    int64   `json:"size_flushes,omitempty"`
	WaitFlushes    int64   `json:"wait_flushes,omitempty"`
	DrainFlushes   int64   `json:"drain_flushes,omitempty"`
	AvgOccupancy   float64 `json:"avg_occupancy,omitempty"`
	MaxOccupancy   int     `json:"max_occupancy,omitempty"`
	SentWords      int64   `json:"sent_words,omitempty"`
	SentMsgs       float64 `json:"sent_msgs,omitempty"`
	QueueWaitAvgUs float64 `json:"queue_wait_avg_us,omitempty"`
	QueueWaitMaxUs float64 `json:"queue_wait_max_us,omitempty"`
	ServiceAvgUs   float64 `json:"service_avg_us,omitempty"`
	ServiceMaxUs   float64 `json:"service_max_us,omitempty"`
}

// WriteServingMetricsJSONL writes a serving snapshot as flat JSONL metric
// records: the pool aggregate under scope "serving" followed by one
// "tenant" record per tenant, in the snapshot's (sorted) tenant order.
func WriteServingMetricsJSONL(w io.Writer, s *ServingSnapshot) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(servingRecord{
		Scope: "serving", Sessions: s.Sessions, MaxCols: s.MaxCols, MaxWaitUs: s.MaxWaitUs,
		Requests: s.Requests, Rejected: s.Rejected,
		Batches: s.Batches, BatchErrors: s.BatchErrors,
		SizeFlushes: s.SizeFlushes, WaitFlushes: s.WaitFlushes, DrainFlushes: s.DrainFlushes,
		AvgOccupancy: s.AvgOccupancy, MaxOccupancy: s.MaxOccupancy,
		QueueWaitAvgUs: s.QueueWaitAvgUs, QueueWaitMaxUs: s.QueueWaitMaxUs,
		ServiceAvgUs: s.ServiceAvgUs, ServiceMaxUs: s.ServiceMaxUs,
	}); err != nil {
		return err
	}
	for _, tn := range s.Tenants {
		if err := enc.Encode(servingRecord{
			Scope: "tenant", Tenant: tn.Tenant,
			Requests: tn.Requests, Rejected: tn.Rejected,
			SentWords: tn.SentWords, SentMsgs: tn.SentMsgs,
			QueueWaitAvgUs: tn.QueueWaitAvgUs, QueueWaitMaxUs: tn.QueueWaitMaxUs,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}
