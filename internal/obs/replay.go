package obs

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/machine"
)

// TimeModel is the α-β-γ cost model of §3.1 used to replay a logical
// trace on a simulated clock: a message of W words occupies its sender
// for Alpha + W·Beta seconds, a receiver proceeds once the message's
// transfer completes (sends and receives overlap on the bidirectional
// links of the model), and a local-compute stage of T ternary
// multiplications costs T·Gamma seconds. Barriers cost no time of their
// own — they only synchronize, exactly as the stepwise semantics of §7.2
// assume.
type TimeModel struct {
	// Alpha is the per-message latency in seconds.
	Alpha float64
	// Beta is the per-word inverse bandwidth in seconds.
	Beta float64
	// Gamma is the per-ternary-multiplication compute time in seconds.
	Gamma float64
}

// DefaultTimeModel returns a plausible commodity-cluster operating point:
// 2 µs message latency, 1.25 ns/word (≈ 6.4 GB/s for float64 payloads),
// and 0.25 ns per ternary multiplication (≈ 4·10⁹ ternary/s).
func DefaultTimeModel() TimeModel {
	return TimeModel{Alpha: 2e-6, Beta: 1.25e-9, Gamma: 2.5e-10}
}

// SpanKind classifies a timeline span.
type SpanKind string

const (
	// SpanPhase brackets a whole algorithm phase on one rank.
	SpanPhase SpanKind = "phase"
	// SpanSend is the Alpha+W·Beta interval a message occupies its sender.
	SpanSend SpanKind = "send"
	// SpanCompute is a local-compute interval (Ternary·Gamma).
	SpanCompute SpanKind = "compute"
	// SpanRecvWait is time spent waiting for a message still in flight.
	SpanRecvWait SpanKind = "recv-wait"
	// SpanBarrierWait is time spent waiting at a barrier for slower ranks.
	SpanBarrierWait SpanKind = "barrier-wait"
)

// Span is one interval of a rank's replayed timeline (seconds).
type Span struct {
	Rank  int
	Kind  SpanKind
	Label string // phase label, or detail like "→3 tag 100 6w"
	Start float64
	End   float64
}

// Dur returns the span length in seconds.
func (s Span) Dur() float64 { return s.End - s.Start }

// Timeline is the result of replaying a logical trace under a TimeModel:
// per-rank simulated clocks with full activity attribution — the
// step-by-step Gantt data the cost model of §7.2.2 predicts.
type Timeline struct {
	P     int
	Model TimeModel
	// Finish is each rank's critical-path completion time (seconds).
	Finish []float64
	// Compute, SendTime, RecvWait, BarrierWait attribute each rank's
	// timeline; Finish = Compute + SendTime + RecvWait + BarrierWait for
	// every rank (each simulated second is exactly one of the four).
	Compute     []float64
	SendTime    []float64
	RecvWait    []float64
	BarrierWait []float64
	// Overlap is the portion of each rank's received transfer time it did
	// not have to wait for — communication hidden behind the rank's own
	// sending/compute. Higher is better; RecvWait is its complement.
	Overlap []float64
	// Spans holds each rank's timeline intervals in time order
	// (phase spans first, then the fine-grained slices inside them).
	Spans [][]Span
	// PhaseSteps maps each phase label to the number of distinct barrier
	// generations passed inside it (the §7.2 communication step count).
	PhaseSteps map[string]int
	// PhaseOrder lists phase labels in first-appearance order.
	PhaseOrder []string
}

// Makespan returns the parallel completion time: max over ranks of
// Finish.
func (tl *Timeline) Makespan() float64 {
	m := 0.0
	for _, f := range tl.Finish {
		if f > m {
			m = f
		}
	}
	return m
}

// Idle returns rank r's total waiting time (recv + barrier).
func (tl *Timeline) Idle(r int) float64 { return tl.RecvWait[r] + tl.BarrierWait[r] }

// PhaseTime returns the maximum over ranks of the summed durations of the
// given phase's spans — the phase's contribution to the critical path
// (for repeated labels, e.g. one per power-method iteration, all
// occurrences are summed).
func (tl *Timeline) PhaseTime(label string) float64 {
	m := 0.0
	for r := 0; r < tl.P; r++ {
		s := 0.0
		for _, sp := range tl.Spans[r] {
			if sp.Kind == SpanPhase && sp.Label == label {
				s += sp.Dur()
			}
		}
		if s > m {
			m = s
		}
	}
	return m
}

// msgKey identifies a logical channel: messages with equal key are
// delivered in send order (the machine's ordering guarantee).
type msgKey struct{ from, to, tag int }

// transfer is one in-flight message's interval on the simulated clock.
type transfer struct{ start, finish float64 }

// Replay executes the logical events of t on a simulated clock under
// model m. The trace must be complete (every recv matched by a send,
// every barrier generation reached by all ranks) — the trace of any
// successful run is; a crashed or truncated trace yields an error naming
// the stuck ranks.
func Replay(t *Trace, m TimeModel) (*Timeline, error) {
	perRank := t.Logical().PerRank()
	p := t.P
	tl := &Timeline{
		P:           p,
		Model:       m,
		Finish:      make([]float64, p),
		Compute:     make([]float64, p),
		SendTime:    make([]float64, p),
		RecvWait:    make([]float64, p),
		BarrierWait: make([]float64, p),
		Overlap:     make([]float64, p),
		Spans:       make([][]Span, p),
		PhaseSteps:  make(map[string]int),
	}

	idx := make([]int, p)
	clock := make([]float64, p)
	inFlight := make(map[msgKey][]transfer)
	barrArrived := make(map[int][]bool)     // generation -> per-rank arrived
	barrArriveAt := make(map[int][]float64) // generation -> per-rank arrival clock
	barrCount := make(map[int]int)
	phaseStart := make([]float64, p)
	phaseStepSeen := make(map[string]map[int]bool)

	noteStep := func(label string, gen int) {
		seen, ok := phaseStepSeen[label]
		if !ok {
			seen = make(map[int]bool)
			phaseStepSeen[label] = seen
			if label != "" {
				tl.PhaseOrder = append(tl.PhaseOrder, label)
			}
		}
		seen[gen] = true
	}
	notePhase := func(label string) {
		if _, ok := phaseStepSeen[label]; !ok {
			phaseStepSeen[label] = make(map[int]bool)
			if label != "" {
				tl.PhaseOrder = append(tl.PhaseOrder, label)
			}
		}
	}

	// step processes rank r's next event; it returns false when the rank
	// is blocked (recv not yet sent, barrier generation incomplete).
	step := func(r int) bool {
		e := perRank[r][idx[r]]
		switch e.Kind {
		case machine.EventSend:
			dt := m.Alpha + m.Beta*float64(e.Words)
			tl.Spans[r] = append(tl.Spans[r], Span{Rank: r, Kind: SpanSend,
				Label: fmt.Sprintf("→%d tag %d %dw", e.To, e.Tag, e.Words),
				Start: clock[r], End: clock[r] + dt})
			k := msgKey{e.From, e.To, e.Tag}
			inFlight[k] = append(inFlight[k], transfer{clock[r], clock[r] + dt})
			clock[r] += dt
			tl.SendTime[r] += dt

		case machine.EventRecv:
			k := msgKey{e.From, e.To, e.Tag}
			q := inFlight[k]
			if len(q) == 0 {
				return false // sender not replayed yet
			}
			tr := q[0]
			inFlight[k] = q[1:]
			wait := tr.finish - clock[r]
			xfer := tr.finish - tr.start
			if wait > 0 {
				tl.Spans[r] = append(tl.Spans[r], Span{Rank: r, Kind: SpanRecvWait,
					Label: fmt.Sprintf("←%d tag %d %dw", e.From, e.Tag, e.Words),
					Start: clock[r], End: tr.finish})
				tl.RecvWait[r] += wait
				if xfer > wait {
					tl.Overlap[r] += xfer - wait
				}
				clock[r] = tr.finish
			} else {
				tl.Overlap[r] += xfer
			}

		case machine.EventBarrier:
			gen := e.Step
			if barrArrived[gen] == nil {
				barrArrived[gen] = make([]bool, p)
				barrArriveAt[gen] = make([]float64, p)
			}
			if !barrArrived[gen][r] {
				barrArrived[gen][r] = true
				barrArriveAt[gen][r] = clock[r]
				barrCount[gen]++
			}
			if barrCount[gen] < p {
				return false // wait for the stragglers
			}
			done := 0.0
			for _, at := range barrArriveAt[gen] {
				if at > done {
					done = at
				}
			}
			if wait := done - clock[r]; wait > 0 {
				tl.Spans[r] = append(tl.Spans[r], Span{Rank: r, Kind: SpanBarrierWait,
					Label: fmt.Sprintf("step %d", gen), Start: clock[r], End: done})
				tl.BarrierWait[r] += wait
				clock[r] = done
			}
			noteStep(e.Phase, gen)

		case machine.EventPhaseBegin:
			phaseStart[r] = clock[r]
			notePhase(e.Phase)

		case machine.EventPhaseEnd:
			tl.Spans[r] = append(tl.Spans[r], Span{Rank: r, Kind: SpanPhase,
				Label: e.Phase, Start: phaseStart[r], End: clock[r]})

		case machine.EventLocalCompute:
			dt := m.Gamma * float64(e.Ternary)
			tl.Spans[r] = append(tl.Spans[r], Span{Rank: r, Kind: SpanCompute,
				Label: fmt.Sprintf("%d ternary", e.Ternary),
				Start: clock[r], End: clock[r] + dt})
			clock[r] += dt
			tl.Compute[r] += dt
		}
		idx[r]++
		return true
	}

	for {
		progressed := false
		remaining := false
		for r := 0; r < p; r++ {
			for idx[r] < len(perRank[r]) {
				if !step(r) {
					break
				}
				progressed = true
			}
			if idx[r] < len(perRank[r]) {
				remaining = true
			}
		}
		if !remaining {
			break
		}
		if !progressed {
			var stuck []string
			for r := 0; r < p; r++ {
				if idx[r] < len(perRank[r]) {
					e := perRank[r][idx[r]]
					stuck = append(stuck, fmt.Sprintf("rank %d at %s (seq %d)", r, e.Kind, e.Seq))
				}
			}
			return nil, fmt.Errorf("obs: replay stuck — incomplete trace? %s", strings.Join(stuck, "; "))
		}
	}

	copy(tl.Finish, clock)
	for label, seen := range phaseStepSeen {
		tl.PhaseSteps[label] = len(seen)
	}
	// Phase spans were appended at EventPhaseEnd, after the slices inside
	// them; re-sort each rank's spans by (start, -end) so containers come
	// first — the order Chrome's trace viewer expects.
	for r := range tl.Spans {
		spans := tl.Spans[r]
		for i := 1; i < len(spans); i++ {
			for j := i; j > 0 && less(spans[j], spans[j-1]); j-- {
				spans[j], spans[j-1] = spans[j-1], spans[j]
			}
		}
	}
	return tl, nil
}

// less orders spans by start time, longer (containing) spans first on
// ties.
func less(a, b Span) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.End > b.End
}

// WriteGantt renders an ASCII Gantt chart of the timeline: one row per
// rank, `width` columns spanning the makespan. Cell glyphs: '#' compute,
// 's' sending, '.' recv wait, '-' barrier wait, ' ' outside any span.
func WriteGantt(w io.Writer, tl *Timeline, width int) error {
	if width < 10 {
		width = 10
	}
	span := tl.Makespan()
	if span <= 0 {
		span = 1
	}
	glyph := map[SpanKind]byte{SpanCompute: '#', SpanSend: 's', SpanRecvWait: '.', SpanBarrierWait: '-'}
	for r := 0; r < tl.P; r++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, sp := range tl.Spans[r] {
			g, ok := glyph[sp.Kind]
			if !ok {
				continue
			}
			lo := int(math.Floor(sp.Start / span * float64(width)))
			hi := int(math.Ceil(sp.End / span * float64(width)))
			if hi > width {
				hi = width
			}
			if hi == lo && lo < width {
				hi = lo + 1
			}
			for i := lo; i < hi; i++ {
				row[i] = g
			}
		}
		if _, err := fmt.Fprintf(w, "%4d |%s| %8.3gs idle %.1f%%\n", r, row, tl.Finish[r],
			100*tl.Idle(r)/math.Max(tl.Finish[r], 1e-300)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "     makespan %.4gs   (#=compute s=send .=recv-wait -=barrier-wait)\n", tl.Makespan())
	return err
}
