package obs

// LoadStats summarizes a per-rank load vector — nonzero counts, storage
// words, ternary multiplications — for balance reporting. Imbalance is
// the makespan ratio max/mean: 1.0 is perfect balance, and the nnz-aware
// partition benchmarks gate on it staying near 1 for skewed inputs.
type LoadStats struct {
	Min       int64   `json:"min"`
	Max       int64   `json:"max"`
	Mean      float64 `json:"mean"`
	Imbalance float64 `json:"imbalance"`
}

// ComputeLoadStats reduces a per-rank load vector. Empty or all-zero
// loads yield a zero Imbalance (no work to misbalance).
func ComputeLoadStats(loads []int64) LoadStats {
	var st LoadStats
	if len(loads) == 0 {
		return st
	}
	st.Min = loads[0]
	var total int64
	for _, l := range loads {
		if l < st.Min {
			st.Min = l
		}
		if l > st.Max {
			st.Max = l
		}
		total += l
	}
	st.Mean = float64(total) / float64(len(loads))
	if st.Mean > 0 {
		st.Imbalance = float64(st.Max) / st.Mean
	}
	return st
}
