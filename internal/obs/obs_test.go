package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
)

// runPipeline is a tiny deterministic phased program: rank 0 sends r
// words to each other rank inside phase "spread", everyone barriers,
// then each rank reports a local-compute stage inside phase "work".
func runPipeline(t *testing.T, p int) (*Trace, *machine.Report) {
	t.Helper()
	var rec Recorder
	rep, err := machine.RunWith(p, machine.RunConfig{
		Timeout:  5 * time.Second,
		Observer: rec.Observer(),
	}, func(c *machine.Comm) {
		c.BeginPhase("spread")
		if c.Rank() == 0 {
			for to := 1; to < p; to++ {
				c.Send(to, 7, make([]float64, to))
			}
		} else {
			c.Recv(0, 7)
		}
		c.Barrier()
		c.EndPhase()
		c.BeginPhase("work")
		c.LocalCompute(int64(100 * (c.Rank() + 1)))
		c.Barrier()
		c.EndPhase()
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Trace(), rep
}

func TestTraceCanonicalOrderAndPhaseTotals(t *testing.T) {
	const p = 4
	tr, rep := runPipeline(t, p)

	// Canonical order: per-rank Seq strictly increasing from 0.
	for r, evs := range tr.PerRank() {
		for i, e := range evs {
			if e.Seq != int64(i) {
				t.Fatalf("rank %d event %d has seq %d", r, i, e.Seq)
			}
		}
	}
	if err := tr.CheckAgainstReport(rep); err != nil {
		t.Fatal(err)
	}

	totals, order := tr.PhaseTotals()
	if len(order) != 2 || order[0] != "spread" || order[1] != "work" {
		t.Fatalf("phase order = %v", order)
	}
	spread := totals["spread"]
	wantSent := int64(0)
	for to := 1; to < p; to++ {
		wantSent += int64(to)
	}
	if spread.SentWords[0] != wantSent || spread.SentMsgs[0] != int64(p-1) {
		t.Errorf("spread rank 0 sent %dw/%dm, want %dw/%dm",
			spread.SentWords[0], spread.SentMsgs[0], wantSent, p-1)
	}
	for r := 1; r < p; r++ {
		if spread.RecvWords[r] != int64(r) || spread.RecvMsgs[r] != 1 {
			t.Errorf("spread rank %d recv %dw/%dm", r, spread.RecvWords[r], spread.RecvMsgs[r])
		}
	}
	if spread.Steps != 1 {
		t.Errorf("spread steps = %d, want 1", spread.Steps)
	}
	work := totals["work"]
	for r := 0; r < p; r++ {
		if work.Ternary[r] != int64(100*(r+1)) {
			t.Errorf("work rank %d ternary = %d", r, work.Ternary[r])
		}
	}
	if work.Steps != 1 {
		t.Errorf("work steps = %d, want 1", work.Steps)
	}
}

func TestReplayAnalytic(t *testing.T) {
	// Two ranks, one 4-word message 0→1 then a barrier: every clock is
	// computable by hand under α=1, β=0.5, γ=0.
	var rec Recorder
	_, err := machine.RunWith(2, machine.RunConfig{
		Timeout: 5 * time.Second, Observer: rec.Observer(),
	}, func(c *machine.Comm) {
		c.BeginPhase("p")
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float64, 4))
		} else {
			c.Recv(0, 0)
		}
		c.Barrier()
		c.EndPhase()
	})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Replay(rec.Trace(), TimeModel{Alpha: 1, Beta: 0.5, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Send occupies rank 0 for 1 + 4·0.5 = 3; rank 1 waits 3 for it; the
	// barrier then syncs both at 3.
	for r, want := range []float64{3, 3} {
		if math.Abs(tl.Finish[r]-want) > 1e-12 {
			t.Errorf("finish[%d] = %g, want %g", r, tl.Finish[r], want)
		}
	}
	if math.Abs(tl.SendTime[0]-3) > 1e-12 || tl.RecvWait[0] != 0 {
		t.Errorf("rank 0 attribution: send %g recvWait %g", tl.SendTime[0], tl.RecvWait[0])
	}
	if math.Abs(tl.RecvWait[1]-3) > 1e-12 {
		t.Errorf("rank 1 recvWait = %g, want 3", tl.RecvWait[1])
	}
	if tl.PhaseSteps["p"] != 1 {
		t.Errorf("phase steps = %v", tl.PhaseSteps)
	}
	if math.Abs(tl.Makespan()-3) > 1e-12 {
		t.Errorf("makespan = %g", tl.Makespan())
	}
	if math.Abs(tl.PhaseTime("p")-3) > 1e-12 {
		t.Errorf("PhaseTime(p) = %g", tl.PhaseTime("p"))
	}
}

func TestReplayAttributionInvariant(t *testing.T) {
	// Every simulated second is exactly one of compute/send/recv-wait/
	// barrier-wait: the four must sum to each rank's finish time.
	tr, _ := runPipeline(t, 5)
	tl, err := Replay(tr, DefaultTimeModel())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tl.P; r++ {
		sum := tl.Compute[r] + tl.SendTime[r] + tl.RecvWait[r] + tl.BarrierWait[r]
		if math.Abs(sum-tl.Finish[r]) > 1e-12*math.Max(1, tl.Finish[r]) {
			t.Errorf("rank %d: attribution sum %g != finish %g", r, sum, tl.Finish[r])
		}
	}
	// All ranks end at the final barrier, so all finishes coincide.
	for r := 1; r < tl.P; r++ {
		if math.Abs(tl.Finish[r]-tl.Finish[0]) > 1e-15 {
			t.Errorf("finish[%d] = %g != finish[0] = %g", r, tl.Finish[r], tl.Finish[0])
		}
	}
}

func TestReplayStuckOnTruncatedTrace(t *testing.T) {
	tr, _ := runPipeline(t, 3)
	// Drop every send: the first recv can never complete.
	var cut []machine.Event
	for _, e := range tr.Events {
		if e.Kind != machine.EventSend {
			cut = append(cut, e)
		}
	}
	_, err := Replay(NewTrace(cut), DefaultTimeModel())
	if err == nil || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("err = %v, want replay-stuck diagnosis", err)
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	tr, _ := runPipeline(t, 3)
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(tr.Events) || back.P != tr.P {
		t.Fatalf("round trip: %d events P=%d, want %d events P=%d",
			len(back.Events), back.P, len(tr.Events), tr.P)
	}
	for i, e := range tr.Events {
		if back.Events[i] != e {
			t.Fatalf("event %d: %+v != %+v", i, back.Events[i], e)
		}
	}
}

func TestMetricsJSONLWellFormed(t *testing.T) {
	tr, _ := runPipeline(t, 3)
	tl, err := Replay(tr, DefaultTimeModel())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMetricsJSONL(&buf, tr, tl); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	phases, ranks := 0, 0
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad metrics line %q: %v", sc.Text(), err)
		}
		switch rec["scope"] {
		case "phase":
			phases++
		case "rank":
			ranks++
		default:
			t.Fatalf("unknown scope in %q", sc.Text())
		}
	}
	if phases != 2*3 || ranks != 3 {
		t.Errorf("got %d phase and %d rank records, want 6 and 3", phases, ranks)
	}
}

func TestGanttSmoke(t *testing.T) {
	tr, _ := runPipeline(t, 3)
	tl, err := Replay(tr, DefaultTimeModel())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGantt(&buf, tl, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "\n") != tl.P+1 || !strings.Contains(out, "makespan") {
		t.Errorf("gantt output unexpected:\n%s", out)
	}
}

// fixtureTimeline replays a hand-built trace so the golden Chrome file is
// fully deterministic (no goroutine scheduling involved at all).
func fixtureTimeline(t *testing.T) *Timeline {
	t.Helper()
	mk := func(rank int, seq int64, kind machine.EventKind, e machine.Event) machine.Event {
		e.Kind = kind
		e.Rank = rank
		e.Seq = seq
		if e.Kind != machine.EventSend && e.Kind != machine.EventRecv {
			e.From, e.To = rank, rank
		}
		if e.Kind != machine.EventBarrier {
			e.Step = -1
		}
		return e
	}
	events := []machine.Event{
		mk(0, 0, machine.EventPhaseBegin, machine.Event{Phase: "gather"}),
		mk(0, 1, machine.EventSend, machine.Event{From: 0, To: 1, Tag: 100, Words: 6, Phase: "gather"}),
		mk(0, 2, machine.EventRecv, machine.Event{From: 1, To: 0, Tag: 100, Words: 6, Phase: "gather"}),
		mk(0, 3, machine.EventBarrier, machine.Event{Phase: "gather", Step: 0}),
		mk(0, 4, machine.EventPhaseEnd, machine.Event{Phase: "gather"}),
		mk(0, 5, machine.EventPhaseBegin, machine.Event{Phase: "local"}),
		mk(0, 6, machine.EventLocalCompute, machine.Event{Phase: "local", Ternary: 4000}),
		mk(0, 7, machine.EventPhaseEnd, machine.Event{Phase: "local"}),
		mk(1, 0, machine.EventPhaseBegin, machine.Event{Phase: "gather"}),
		mk(1, 1, machine.EventSend, machine.Event{From: 1, To: 0, Tag: 100, Words: 6, Phase: "gather"}),
		mk(1, 2, machine.EventRecv, machine.Event{From: 0, To: 1, Tag: 100, Words: 6, Phase: "gather"}),
		mk(1, 3, machine.EventBarrier, machine.Event{Phase: "gather", Step: 0}),
		mk(1, 4, machine.EventPhaseEnd, machine.Event{Phase: "gather"}),
		mk(1, 5, machine.EventPhaseBegin, machine.Event{Phase: "local"}),
		mk(1, 6, machine.EventLocalCompute, machine.Event{Phase: "local", Ternary: 8000}),
		mk(1, 7, machine.EventPhaseEnd, machine.Event{Phase: "local"}),
	}
	tl, err := Replay(NewTrace(events), TimeModel{Alpha: 1e-6, Beta: 1e-9, Gamma: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

// TestGoldenChromeTrace pins the exporter's schema-stable fields against
// testdata/golden_chrome_trace.json. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/obs -run TestGoldenChromeTrace.
func TestGoldenChromeTrace(t *testing.T) {
	tl := fixtureTimeline(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tl); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_chrome_trace.json")
	if updateGolden() {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	var gotRecs, wantRecs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &gotRecs); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v", err)
	}
	if err := json.Unmarshal(want, &wantRecs); err != nil {
		t.Fatalf("golden file invalid: %v", err)
	}
	if len(gotRecs) != len(wantRecs) {
		t.Fatalf("%d records, golden has %d", len(gotRecs), len(wantRecs))
	}
	// Compare schema-stable fields only: record identity and placement,
	// not incidental arg details.
	stable := []string{"name", "cat", "ph", "pid", "tid", "ts", "dur"}
	for i := range gotRecs {
		for _, k := range stable {
			g, w := gotRecs[i][k], wantRecs[i][k]
			if fmtJSON(g) != fmtJSON(w) {
				t.Errorf("record %d field %q: got %v, golden %v", i, k, g, w)
			}
		}
	}
}

func fmtJSON(v any) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func updateGolden() bool { return os.Getenv("UPDATE_GOLDEN") != "" }

func TestChromeTraceStructure(t *testing.T) {
	tl := fixtureTimeline(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tl); err != nil {
		t.Fatal(err)
	}
	var recs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("not a JSON array: %v", err)
	}
	threads := 0
	for _, rec := range recs {
		switch rec["ph"] {
		case "M":
			if rec["name"] == "thread_name" {
				threads++
			}
		case "X":
			if rec["ts"].(float64) < 0 || rec["dur"].(float64) < 0 {
				t.Errorf("negative ts/dur in %v", rec)
			}
		default:
			t.Errorf("unexpected ph %v", rec["ph"])
		}
	}
	if threads != tl.P {
		t.Errorf("%d thread_name metas, want %d", threads, tl.P)
	}
}

// TestServingMetricsJSONL: the serving snapshot must flatten into one
// scope:"serving" record plus one scope:"tenant" record per tenant, each
// a parseable JSON line carrying the dual-trigger flush split and the
// per-tenant amortized traffic shares.
func TestServingMetricsJSONL(t *testing.T) {
	snap := &ServingSnapshot{
		Sessions: 2, MaxCols: 8, MaxWaitUs: 500,
		Requests: 100, Rejected: 3, Batches: 14,
		SizeFlushes: 12, WaitFlushes: 2,
		AvgOccupancy: 100.0 / 14, MaxOccupancy: 8,
		QueueWaitAvgUs: 120, QueueWaitMaxUs: 900,
		ServiceAvgUs: 2400, ServiceMaxUs: 4100,
		Tenants: []ServingTenant{
			{Tenant: "a", Requests: 60, SentWords: 60 * 95, SentMsgs: 60 * 6.875, QueueWaitAvgUs: 110, QueueWaitMaxUs: 700},
			{Tenant: "b", Requests: 40, Rejected: 3, SentWords: 40 * 95, SentMsgs: 40 * 6.875, QueueWaitAvgUs: 135, QueueWaitMaxUs: 900},
		},
	}
	var buf bytes.Buffer
	if err := WriteServingMetricsJSONL(&buf, snap); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (serving + 2 tenants):\n%s", len(lines), buf.String())
	}
	var head map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &head); err != nil {
		t.Fatalf("serving record not JSON: %v", err)
	}
	if head["scope"] != "serving" || head["requests"] != float64(100) ||
		head["size_flushes"] != float64(12) || head["wait_flushes"] != float64(2) {
		t.Fatalf("serving record fields wrong: %v", head)
	}
	for i, want := range []struct {
		tenant string
		reqs   float64
	}{{"a", 60}, {"b", 40}} {
		var rec map[string]any
		if err := json.Unmarshal([]byte(lines[i+1]), &rec); err != nil {
			t.Fatalf("tenant line %d not JSON: %v", i, err)
		}
		if rec["scope"] != "tenant" || rec["tenant"] != want.tenant || rec["requests"] != want.reqs {
			t.Fatalf("tenant record %d wrong: %v", i, rec)
		}
	}
}
