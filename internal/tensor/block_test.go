package tensor

import (
	"math/rand"
	"testing"

	"repro/internal/intmath"
)

func TestKindOfBlock(t *testing.T) {
	cases := []struct {
		I, J, K int
		want    BlockKind
	}{
		{3, 2, 1, OffDiagonal},
		{2, 2, 1, DiagPairHigh},
		{2, 1, 1, DiagPairLow},
		{2, 2, 2, Central},
	}
	for _, c := range cases {
		if got := KindOfBlock(c.I, c.J, c.K); got != c.want {
			t.Errorf("KindOfBlock(%d,%d,%d) = %v, want %v", c.I, c.J, c.K, got, c.want)
		}
	}
}

func TestBlockLen(t *testing.T) {
	for b := 1; b <= 8; b++ {
		if got := BlockLen(OffDiagonal, b); got != b*b*b {
			t.Errorf("OffDiagonal b=%d: %d", b, got)
		}
		if got := BlockLen(DiagPairHigh, b); got != b*b*(b+1)/2 {
			t.Errorf("DiagPairHigh b=%d: %d", b, got)
		}
		if got := BlockLen(DiagPairLow, b); got != b*b*(b+1)/2 {
			t.Errorf("DiagPairLow b=%d: %d", b, got)
		}
		if got := BlockLen(Central, b); got != intmath.Tetrahedral(b) {
			t.Errorf("Central b=%d: %d", b, got)
		}
	}
}

func TestBlockOffsetBijective(t *testing.T) {
	// ForEach must visit offsets 0..len-1 in order, and offset() must
	// agree with the iteration order, for every kind.
	for _, coords := range [][3]int{{3, 2, 1}, {2, 2, 1}, {2, 1, 1}, {1, 1, 1}} {
		for b := 1; b <= 5; b++ {
			blk := NewBlock(coords[0], coords[1], coords[2], b)
			next := 0
			blk.ForEach(func(di, dj, dk int, _ float64) {
				if got := blk.offset(di, dj, dk); got != next {
					t.Fatalf("%v b=%d: offset(%d,%d,%d) = %d, want %d",
						blk.Kind, b, di, dj, dk, got, next)
				}
				next++
			})
			if next != len(blk.Data) {
				t.Fatalf("%v b=%d: visited %d of %d", blk.Kind, b, next, len(blk.Data))
			}
		}
	}
}

func TestBlockSetAt(t *testing.T) {
	blk := NewBlock(2, 2, 0, 3) // DiagPairHigh
	blk.Set(2, 1, 0, 7)
	if blk.At(2, 1, 0) != 7 {
		t.Fatal("Set/At disagree")
	}
}

func TestBlockOffsetPanicsOnInvalidLocal(t *testing.T) {
	cases := []struct {
		coords  [3]int
		d       [3]int
		mustErr bool
	}{
		{[3]int{2, 2, 1}, [3]int{0, 1, 0}, true},  // DiagPairHigh needs di >= dj
		{[3]int{2, 1, 1}, [3]int{0, 0, 1}, true},  // DiagPairLow needs dj >= dk
		{[3]int{1, 1, 1}, [3]int{0, 1, 0}, true},  // Central needs sorted
		{[3]int{3, 2, 1}, [3]int{0, 1, 2}, false}, // OffDiagonal free
	}
	for _, c := range cases {
		blk := NewBlock(c.coords[0], c.coords[1], c.coords[2], 3)
		func() {
			defer func() {
				if r := recover(); (r != nil) != c.mustErr {
					t.Errorf("block %v local %v: panic=%v, want %v", c.coords, c.d, r != nil, c.mustErr)
				}
			}()
			blk.At(c.d[0], c.d[1], c.d[2])
		}()
	}
}

func TestExtractBlockMatchesGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n, b := 12, 3 // m = 4 blocks per mode
	a := Random(n, rng)
	m := n / b
	BlocksOfTetrahedron(m, func(I, J, K int) {
		blk := ExtractBlock(a, I, J, K, b)
		blk.ForEach(func(di, dj, dk int, v float64) {
			i, j, k := blk.GlobalIndices(di, dj, dk)
			if want := a.At(i, j, k); v != want {
				t.Fatalf("block (%d,%d,%d) local (%d,%d,%d): %g want %g",
					I, J, K, di, dj, dk, v, want)
			}
		})
	})
}

func TestExtractBlockPadding(t *testing.T) {
	// n=10 padded to 12 with b=3: global indices 10, 11 read as zero.
	rng := rand.New(rand.NewSource(11))
	a := Random(10, rng)
	blk := ExtractBlock(a, 3, 3, 3, 3) // covers globals 9..11
	blk.ForEach(func(di, dj, dk int, v float64) {
		i, j, k := blk.GlobalIndices(di, dj, dk)
		if i >= 10 || j >= 10 || k >= 10 {
			if v != 0 {
				t.Fatalf("padded entry (%d,%d,%d) = %g, want 0", i, j, k, v)
			}
		} else if v != a.At(i, j, k) {
			t.Fatalf("in-range entry (%d,%d,%d) wrong", i, j, k)
		}
	})
}

func TestBlockStorageTotalsMatchTensor(t *testing.T) {
	// Summing stored sizes of all blocks in the block tetrahedron must
	// give exactly the packed size of the padded tensor: the partition
	// stores each lower-tetrahedron element exactly once.
	for _, c := range []struct{ m, b int }{{4, 3}, {5, 2}, {3, 4}, {10, 1}} {
		total := 0
		BlocksOfTetrahedron(c.m, func(I, J, K int) {
			total += BlockLen(KindOfBlock(I, J, K), c.b)
		})
		if want := intmath.Tetrahedral(c.m * c.b); total != want {
			t.Errorf("m=%d b=%d: block storage %d, tensor storage %d", c.m, c.b, total, want)
		}
	}
}

func TestGlobalIndicesAreLowerTetrahedral(t *testing.T) {
	// Every stored block entry corresponds to a sorted global triple.
	for _, coords := range [][3]int{{3, 2, 1}, {2, 2, 1}, {2, 1, 1}, {1, 1, 1}} {
		blk := NewBlock(coords[0], coords[1], coords[2], 4)
		blk.ForEach(func(di, dj, dk int, _ float64) {
			i, j, k := blk.GlobalIndices(di, dj, dk)
			if i < j || j < k {
				t.Fatalf("block %v local (%d,%d,%d): global (%d,%d,%d) not sorted",
					blk.Kind, di, dj, dk, i, j, k)
			}
		})
	}
}

func TestBlockKindString(t *testing.T) {
	for k, want := range map[BlockKind]string{
		OffDiagonal:   "off-diagonal",
		DiagPairHigh:  "diag-pair-high",
		DiagPairLow:   "diag-pair-low",
		Central:       "central",
		BlockKind(42): "BlockKind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d: %q != %q", int(k), got, want)
		}
	}
}
